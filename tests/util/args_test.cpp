#include "util/args.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace baps::util {
namespace {

// Builds a mutable argv from string literals; the vector keeps the storage
// alive for the duration of a parse() call.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    ptrs_.push_back(prog_.data());
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::string prog_ = "prog";
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(SplitTest, DropsEmptyItems) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b,", ','), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{}));
  EXPECT_EQ(split(",,,", ','), (std::vector<std::string>{}));
  EXPECT_EQ(split("single", ','), (std::vector<std::string>{"single"}));
}

TEST(ParseNumberTest, DoubleIsWholeStringStrict) {
  double v = 0.0;
  EXPECT_TRUE(parse_number("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(parse_number("-3", &v));
  EXPECT_DOUBLE_EQ(v, -3.0);
  EXPECT_FALSE(parse_number("", &v));
  EXPECT_FALSE(parse_number("1.5x", &v));
  EXPECT_FALSE(parse_number("x1.5", &v));
}

TEST(ParseNumberTest, Uint64RejectsSignsAndJunk) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_number("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_FALSE(parse_number("-1", &v));
  EXPECT_FALSE(parse_number("+1", &v));
  EXPECT_FALSE(parse_number("", &v));
  EXPECT_FALSE(parse_number("12a", &v));
}

TEST(ParseByteSizeTest, AcceptsSuffixesCaseInsensitively) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_byte_size("4096", &v));
  EXPECT_EQ(v, 4096u);
  EXPECT_TRUE(parse_byte_size("512k", &v));
  EXPECT_EQ(v, 512u << 10);
  EXPECT_TRUE(parse_byte_size("512K", &v));
  EXPECT_EQ(v, 512u << 10);
  EXPECT_TRUE(parse_byte_size("64m", &v));
  EXPECT_EQ(v, 64ull << 20);
  EXPECT_TRUE(parse_byte_size("2G", &v));
  EXPECT_EQ(v, 2ull << 30);
  EXPECT_TRUE(parse_byte_size("0k", &v));
  EXPECT_EQ(v, 0u);
}

TEST(ParseByteSizeTest, RejectsJunkAndBareSuffixes) {
  std::uint64_t v = 7;
  EXPECT_FALSE(parse_byte_size("", &v));
  EXPECT_FALSE(parse_byte_size("k", &v));
  EXPECT_FALSE(parse_byte_size("12kb", &v));
  EXPECT_FALSE(parse_byte_size("1.5m", &v));
  EXPECT_FALSE(parse_byte_size("-1k", &v));
  EXPECT_FALSE(parse_byte_size("12x", &v));
  EXPECT_EQ(v, 7u);  // failed parses leave the output untouched
}

TEST(ParseByteSizeTest, RejectsOverflowInsteadOfWrapping) {
  std::uint64_t v = 0;
  // 2^64 / 2^30 = 2^34; one above it must overflow with the g suffix.
  EXPECT_TRUE(parse_byte_size("17179869183g", &v));  // 2^34 - 1 fits
  EXPECT_FALSE(parse_byte_size("17179869185g", &v));
  EXPECT_FALSE(parse_byte_size("18446744073709551616", &v));  // 2^64 itself
  // The largest representable value still parses unsuffixed.
  EXPECT_TRUE(parse_byte_size("18446744073709551615", &v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ArgParserTest, BytesOptionParsesSuffixedCapacities) {
  std::uint64_t cap = 0;
  ArgParser parser("prog");
  parser.bytes("--store-capacity", &cap, "BYTES", "disk tier capacity");

  Argv argv({"--store-capacity", "512m"});
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), &error)) << error;
  EXPECT_EQ(cap, 512ull << 20);

  Argv bad({"--store-capacity", "512q"});
  EXPECT_FALSE(parser.parse(bad.argc(), bad.argv(), &error));
  EXPECT_NE(error.find("--store-capacity"), std::string::npos);
}

TEST(ArgParserTest, ParsesFlagsOptionsAndCustoms) {
  bool verbose = false;
  std::string name;
  double ratio = 0.0;
  std::uint64_t count = 0;
  std::vector<std::string> items;
  ArgParser parser("prog");
  parser.flag("--verbose", &verbose, "talk more")
      .option("--name", &name, "S", "a string")
      .option("--ratio", &ratio, "F", "a double")
      .option("--count", &count, "N", "a counter")
      .custom("--items", "LIST", "comma list",
              [&items](const std::string& v) {
                items = split(v, ',');
                return !items.empty();
              });

  Argv argv({"--verbose", "--name", "alice", "--ratio", "0.5", "--count",
             "42", "--items", "a,b"});
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), &error)) << error;
  EXPECT_FALSE(parser.help_requested());
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "alice");
  EXPECT_DOUBLE_EQ(ratio, 0.5);
  EXPECT_EQ(count, 42u);
  EXPECT_EQ(items, (std::vector<std::string>{"a", "b"}));
}

TEST(ArgParserTest, DefaultsSurviveWhenOptionsAreAbsent) {
  bool flag_value = false;
  std::string name = "default";
  ArgParser parser("prog");
  parser.flag("--flag", &flag_value, "").option("--name", &name, "S", "");
  Argv argv({});
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), &error)) << error;
  EXPECT_FALSE(flag_value);
  EXPECT_EQ(name, "default");
}

TEST(ArgParserTest, RejectsUnknownArgument) {
  ArgParser parser("prog");
  Argv argv({"--nope"});
  std::string error;
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv(), &error));
  EXPECT_NE(error.find("--nope"), std::string::npos);
}

TEST(ArgParserTest, RejectsMissingValue) {
  std::string name;
  ArgParser parser("prog");
  parser.option("--name", &name, "S", "");
  Argv argv({"--name"});
  std::string error;
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv(), &error));
  EXPECT_NE(error.find("needs a value"), std::string::npos);
}

TEST(ArgParserTest, RejectsMalformedNumber) {
  double ratio = 0.0;
  ArgParser parser("prog");
  parser.option("--ratio", &ratio, "F", "");
  Argv argv({"--ratio", "fast"});
  std::string error;
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv(), &error));
  EXPECT_NE(error.find("--ratio"), std::string::npos);
}

TEST(ArgParserTest, RejectsCustomValueTheCallbackRefuses) {
  ArgParser parser("prog");
  parser.custom("--mode", "M", "", [](const std::string& v) {
    return v == "good";
  });
  Argv bad({"--mode", "bad"});
  std::string error;
  EXPECT_FALSE(parser.parse(bad.argc(), bad.argv(), &error));
  EXPECT_NE(error.find("--mode"), std::string::npos);

  Argv good({"--mode", "good"});
  EXPECT_TRUE(parser.parse(good.argc(), good.argv(), &error));
}

TEST(ArgParserTest, BoundedOptionsEnforceTypeRange) {
  std::uint16_t port = 0;
  std::uint32_t count = 0;
  ArgParser parser("prog");
  parser.option("--port", &port, "P", "").option("--count", &count, "N", "");

  Argv ok({"--port", "65535", "--count", "4294967295"});
  std::string error;
  ASSERT_TRUE(parser.parse(ok.argc(), ok.argv(), &error)) << error;
  EXPECT_EQ(port, 65535u);
  EXPECT_EQ(count, 4294967295u);

  Argv too_big({"--port", "65536"});
  EXPECT_FALSE(parser.parse(too_big.argc(), too_big.argv(), &error));

  Argv negative({"--port", "-1"});
  EXPECT_FALSE(parser.parse(negative.argc(), negative.argv(), &error));
}

TEST(ArgParserTest, HelpShortCircuitsRemainingArgs) {
  std::string name;
  ArgParser parser("prog");
  parser.option("--name", &name, "S", "");
  // --help stops parsing, so the bogus argument after it is never seen.
  Argv argv({"--help", "--bogus"});
  std::string error;
  EXPECT_TRUE(parser.parse(argv.argc(), argv.argv(), &error));
  EXPECT_TRUE(parser.help_requested());

  ArgParser short_form("prog");
  Argv argv2({"-h"});
  EXPECT_TRUE(short_form.parse(argv2.argc(), argv2.argv(), &error));
  EXPECT_TRUE(short_form.help_requested());
}

TEST(ParseDurationTest, UnitsSuffixesAndRejections) {
  double s = -1.0;
  EXPECT_TRUE(parse_duration_seconds("1s", &s));
  EXPECT_DOUBLE_EQ(s, 1.0);
  EXPECT_TRUE(parse_duration_seconds("250ms", &s));
  EXPECT_DOUBLE_EQ(s, 0.25);
  EXPECT_TRUE(parse_duration_seconds("2m", &s));
  EXPECT_DOUBLE_EQ(s, 120.0);
  EXPECT_TRUE(parse_duration_seconds("0.5", &s));  // bare number = seconds
  EXPECT_DOUBLE_EQ(s, 0.5);
  EXPECT_TRUE(parse_duration_seconds("0s", &s));
  EXPECT_DOUBLE_EQ(s, 0.0);

  EXPECT_FALSE(parse_duration_seconds("", &s));
  EXPECT_FALSE(parse_duration_seconds("s", &s));
  EXPECT_FALSE(parse_duration_seconds("ms", &s));
  EXPECT_FALSE(parse_duration_seconds("-1s", &s));
  EXPECT_FALSE(parse_duration_seconds("1h", &s));  // no hours unit
  EXPECT_FALSE(parse_duration_seconds("1.5xs", &s));
}

TEST(ArgParserTest, DurationOptionParsesSuffixedValues) {
  double interval = 0.0;
  ArgParser parser("prog");
  parser.duration("--ts-interval", &interval, "DUR", "");
  Argv ok({"--ts-interval", "250ms"});
  std::string error;
  ASSERT_TRUE(parser.parse(ok.argc(), ok.argv(), &error)) << error;
  EXPECT_DOUBLE_EQ(interval, 0.25);

  Argv bad({"--ts-interval", "-2s"});
  EXPECT_FALSE(parser.parse(bad.argc(), bad.argv(), &error));
  EXPECT_NE(error.find("--ts-interval"), std::string::npos);
}

TEST(ArgParserTest, UsageListsEveryOptionAndHelp) {
  bool b = false;
  std::string s;
  ArgParser parser("prog", "A one-line summary.");
  parser.flag("--fast", &b, "go faster").option("--out", &s, "FILE", "where");
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("usage: prog"), std::string::npos);
  EXPECT_NE(usage.find("A one-line summary."), std::string::npos);
  EXPECT_NE(usage.find("--fast"), std::string::npos);
  EXPECT_NE(usage.find("go faster"), std::string::npos);
  EXPECT_NE(usage.find("--out FILE"), std::string::npos);
  EXPECT_NE(usage.find("--help, -h"), std::string::npos);
}

}  // namespace
}  // namespace baps::util
