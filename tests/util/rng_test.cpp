#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace baps {
namespace {

TEST(SplitMix64Test, DeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, UniformIsInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, UniformMeanIsNearHalf) {
  Xoshiro256 rng(99);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256Test, BelowRespectsBound) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256Test, BelowCoversAllResiduesOfSmallBound) {
  Xoshiro256 rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256Test, BelowIsRoughlyUniform) {
  Xoshiro256 rng(77);
  constexpr std::uint64_t kBound = 10;
  constexpr int kN = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kN; ++i) ++counts[rng.below(kBound)];
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kN / kBound, kN / kBound * 0.1);
  }
}

}  // namespace
}  // namespace baps
