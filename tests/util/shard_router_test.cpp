#include "util/shard_router.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace baps::util {
namespace {

TEST(ShardRouterTest, OneShardIsIdentity) {
  for (std::uint64_t key : {0ULL, 1ULL, 12345ULL, ~0ULL}) {
    EXPECT_EQ(shard_of(key, 1), 0u);
  }
}

TEST(ShardRouterTest, ZeroShardsThrows) {
  EXPECT_THROW(shard_of(7, 0), baps::InvariantError);
}

TEST(ShardRouterTest, StableAndInRange) {
  for (std::uint32_t n : {2u, 3u, 7u, 8u, 64u}) {
    for (std::uint64_t key = 0; key < 1000; ++key) {
      const std::uint32_t s = shard_of(key, n);
      EXPECT_LT(s, n);
      EXPECT_EQ(s, shard_of(key, n));  // pure function
    }
  }
}

TEST(ShardRouterTest, DenseKeysSpreadAcrossShards) {
  // Sequential ids must not stripe into one shard — that is the whole point
  // of hashing with the splitmix64 finalizer instead of key % n.
  const std::uint32_t n = 8;
  std::vector<std::uint64_t> counts(n, 0);
  const std::uint64_t keys = 10000;
  for (std::uint64_t key = 0; key < keys; ++key) ++counts[shard_of(key, n)];
  for (std::uint32_t s = 0; s < n; ++s) {
    EXPECT_GT(counts[s], keys / n / 2) << "shard " << s << " underloaded";
    EXPECT_LT(counts[s], keys / n * 2) << "shard " << s << " overloaded";
  }
}

TEST(ShardRouterTest, SliceBytesSumToTotal) {
  for (std::uint64_t total : {0ULL, 1ULL, 7ULL, 1000ULL, 0xDEADBEEFULL}) {
    for (std::uint32_t n : {1u, 2u, 3u, 7u, 8u}) {
      std::uint64_t sum = 0;
      for (std::uint32_t s = 0; s < n; ++s) sum += slice_bytes(total, s, n);
      EXPECT_EQ(sum, total) << total << " over " << n;
    }
  }
  // The N=1 slice IS the budget — the degenerate shard sees exactly the
  // unsharded capacity.
  EXPECT_EQ(slice_bytes(12345, 0, 1), 12345u);
}

TEST(ShardRouterTest, SliceBytesRejectsOutOfRangeShard) {
  EXPECT_THROW(slice_bytes(100, 2, 2), baps::InvariantError);
}

}  // namespace
}  // namespace baps::util
