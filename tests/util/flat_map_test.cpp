#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/small_vector.hpp"

namespace baps::util {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<std::uint64_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.insert(1, 100));
  EXPECT_TRUE(m.insert(2, 200));
  EXPECT_FALSE(m.insert(1, 999));  // duplicate leaves the map unchanged
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 100u);
  EXPECT_EQ(m.find(3), nullptr);
  EXPECT_EQ(m.size(), 2u);

  std::uint64_t removed = 0;
  EXPECT_TRUE(m.erase(2, &removed));
  EXPECT_EQ(removed, 200u);
  EXPECT_FALSE(m.erase(2));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, SentinelKeyRejected) {
  FlatMap<int> m;
  EXPECT_THROW(m.insert(FlatMap<int>::kEmptyKey, 1), InvariantError);
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  FlatMap<int> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(m.insert(k, 1));
  EXPECT_EQ(m.capacity(), cap);  // no growth mid-run
}

TEST(FlatMapTest, ReserveRejectsSizesThatWouldOverflowCapacity) {
  // `cap <<= 1` wraps to 0 before 3/4 of it can reach an `expected` near
  // SIZE_MAX — without the guard, reserve spun forever.
  FlatMap<int> m;
  EXPECT_THROW(m.reserve(std::size_t{1} << 63), InvariantError);
  EXPECT_THROW(m.reserve(~std::size_t{0}), InvariantError);
  EXPECT_EQ(m.capacity(), 0u);  // rejected reserve left the map untouched
  // A large-but-sane reserve still works and keeps the 3/4 load headroom.
  m.reserve(std::size_t{1} << 20);
  EXPECT_GE(m.capacity() / 4 * 3, std::size_t{1} << 20);
  EXPECT_TRUE(m.insert(1, 1));
}

TEST(FlatMapTest, MovedFromMapIsEmptyAndReusable) {
  FlatMap<int> a;
  a.insert(7, 70);
  FlatMap<int> b = std::move(a);
  ASSERT_NE(b.find(7), nullptr);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  EXPECT_TRUE(a.insert(8, 80));
  EXPECT_EQ(*a.find(8), 80);
}

// The core guarantee: identical observable behavior to std::unordered_map
// under a random mixed workload. Dense keys stress the backward-shift
// deletion (long probe chains of adjacent hashes).
TEST(FlatMapTest, DifferentialAgainstUnorderedMap) {
  FlatMap<std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Xoshiro256 rng(0xf1a7f1a7u);

  for (int op = 0; op < 100000; ++op) {
    const std::uint64_t key = rng.below(2048);  // dense: plenty of collisions
    switch (rng.below(4)) {
      case 0: {  // insert
        const std::uint64_t val = rng();
        const bool inserted = ref.try_emplace(key, val).second;
        EXPECT_EQ(flat.insert(key, val), inserted);
        break;
      }
      case 1: {  // find
        const auto it = ref.find(key);
        const std::uint64_t* p = flat.find(key);
        ASSERT_EQ(p != nullptr, it != ref.end());
        if (p != nullptr) {
          EXPECT_EQ(*p, it->second);
        }
        break;
      }
      case 2: {  // erase
        std::uint64_t removed = 0;
        const auto it = ref.find(key);
        const bool expect_erased = it != ref.end();
        const std::uint64_t expect_val = expect_erased ? it->second : 0;
        if (expect_erased) ref.erase(it);
        ASSERT_EQ(flat.erase(key, &removed), expect_erased);
        if (expect_erased) {
          EXPECT_EQ(removed, expect_val);
        }
        break;
      }
      default:  // size + full-content audit every so often
        ASSERT_EQ(flat.size(), ref.size());
        if (op % 9973 == 0) {
          std::size_t seen = 0;
          flat.for_each([&](std::uint64_t k, std::uint64_t v) {
            const auto it = ref.find(k);
            ASSERT_NE(it, ref.end());
            EXPECT_EQ(it->second, v);
            ++seen;
          });
          EXPECT_EQ(seen, ref.size());
        }
        break;
    }
  }
}

TEST(FlatSetTest, BasicMembership) {
  FlatSet s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.erase(3));
  EXPECT_FALSE(s.erase(3));
  EXPECT_TRUE(s.empty());
}

TEST(SmallVectorTest, StaysInlineUpToN) {
  SmallVector<std::uint32_t, 2> v;
  v.push_back(10);
  v.push_back(20);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10u);
  EXPECT_EQ(v[1], 20u);
}

TEST(SmallVectorTest, SpillsToHeapAndKeepsContents) {
  SmallVector<std::uint32_t, 2> v;
  for (std::uint32_t i = 0; i < 100; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, SwapEraseMatchesVectorSemantics) {
  SmallVector<std::uint32_t, 2> v;
  std::vector<std::uint32_t> ref;
  Xoshiro256 rng(42);
  for (int op = 0; op < 10000; ++op) {
    if (ref.empty() || rng.below(3) != 0) {
      const auto x = static_cast<std::uint32_t>(rng.below(1u << 20));
      v.push_back(x);
      ref.push_back(x);
    } else {
      const std::size_t i = rng.below(ref.size());
      // swap-erase: the BrowserIndex holder-list removal idiom
      v[i] = v[v.size() - 1];
      v.pop_back();
      ref[i] = ref.back();
      ref.pop_back();
    }
    ASSERT_EQ(v.size(), ref.size());
  }
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(v[i], ref[i]);
}

TEST(SmallVectorTest, MoveTransfersHeapStorage) {
  SmallVector<std::uint32_t, 2> v;
  for (std::uint32_t i = 0; i < 50; ++i) v.push_back(i);
  SmallVector<std::uint32_t, 2> w = std::move(v);
  ASSERT_EQ(w.size(), 50u);
  EXPECT_EQ(w[49], 49u);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

}  // namespace
}  // namespace baps::util
