#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace baps {
namespace {

TEST(RunningStatsTest, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of the classic example is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, MatchesDirectComputationOnRandomData) {
  Xoshiro256 rng(31);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform() * 100.0 - 50.0;
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(RatioCounterTest, EmptyRatioIsZero) {
  RatioCounter r;
  EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
}

TEST(RatioCounterTest, CountsHitsAndMisses) {
  RatioCounter r;
  r.hit();
  r.hit();
  r.miss();
  r.miss();
  EXPECT_EQ(r.hits(), 2u);
  EXPECT_EQ(r.total(), 4u);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.5);
  EXPECT_DOUBLE_EQ(r.percent(), 50.0);
}

TEST(RatioCounterTest, WeightedCountsModelByteRatios) {
  RatioCounter r;
  r.hit(1000);   // 1000 bytes hit
  r.miss(3000);  // 3000 bytes missed
  EXPECT_DOUBLE_EQ(r.ratio(), 0.25);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvariantError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvariantError);
}

TEST(HistogramTest, OutOfRangeLandsInUnderOverflowBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  h.add(10.0);  // hi is exclusive
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.buckets().front(), 0u);
  EXPECT_EQ(h.buckets().back(), 0u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, QuantileWellDefinedWithUnderOverflowMass) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);  // underflow
  h.add(5.1);   // interior
  h.add(99.0);  // overflow
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  // The median sample is the interior one.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
}

TEST(HistogramTest, MedianOfUniformIsCenter) {
  Histogram h(0.0, 1.0, 100);
  Xoshiro256 rng(8);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(HistogramTest, QuantileBoundsChecked) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_THROW(h.quantile(-0.1), InvariantError);
  EXPECT_THROW(h.quantile(1.1), InvariantError);
}

}  // namespace
}  // namespace baps
