#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace baps {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForTouchesEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(257);
  pool.parallel_for(touched.size(),
                    [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForAccumulatesCorrectSum) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("nope"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace baps
