#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace baps {
namespace {

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), InvariantError);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{1});
  t.row().cell("b").cell(std::uint64_t{22});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name   value"), std::string::npos);
  EXPECT_NE(s.find("alpha  1"), std::string::npos);
  EXPECT_NE(s.find("b      22"), std::string::npos);
}

TEST(TableTest, PercentCellFormatsRatio) {
  Table t({"p"});
  t.row().cell_percent(0.12345, 2);
  EXPECT_NE(t.to_string().find("12.35%"), std::string::npos);
}

TEST(TableTest, DoubleCellRespectsPrecision) {
  Table t({"x"});
  t.row().cell(3.14159, 3);
  EXPECT_NE(t.to_string().find("3.142"), std::string::npos);
}

TEST(TableTest, CellOverflowThrows) {
  Table t({"only"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), InvariantError);
}

TEST(TableTest, CellBeforeRowThrows) {
  Table t({"only"});
  EXPECT_THROW(t.cell("a"), InvariantError);
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.row().cell("x,y").cell("say \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(FormatBytesTest, PicksBinaryUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3u << 20), "3.00 MiB");
}

TEST(FormatSecondsTest, AdaptsUnits) {
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
  EXPECT_EQ(format_seconds(0.0025), "2.50 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.50 us");
  EXPECT_EQ(format_seconds(2.5e-8), "25.00 ns");
}

}  // namespace
}  // namespace baps
