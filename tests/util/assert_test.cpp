#include "util/assert.hpp"

#include <gtest/gtest.h>

namespace baps {
namespace {

TEST(AssertTest, RequirePassesOnTrue) {
  EXPECT_NO_THROW(BAPS_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(AssertTest, RequireThrowsInvariantErrorOnFalse) {
  EXPECT_THROW(BAPS_REQUIRE(false, "boom"), InvariantError);
}

TEST(AssertTest, EnsureThrowsInvariantErrorOnFalse) {
  EXPECT_THROW(BAPS_ENSURE(false, "boom"), InvariantError);
}

TEST(AssertTest, MessageMentionsExpressionFileAndText) {
  try {
    BAPS_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("assert_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

}  // namespace
}  // namespace baps
