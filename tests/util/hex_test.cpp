#include "util/hex.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace baps {
namespace {

TEST(HexTest, RoundTrips) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(bytes), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), bytes);
}

TEST(HexTest, AcceptsUppercase) {
  EXPECT_EQ(from_hex("AB"), std::vector<std::uint8_t>{0xab});
}

TEST(HexTest, EmptyIsEmpty) {
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(HexTest, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), InvariantError);
}

TEST(HexTest, RejectsNonHexCharacters) {
  EXPECT_THROW(from_hex("zz"), InvariantError);
}

}  // namespace
}  // namespace baps
