#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/runner.hpp"
#include "trace/presets.hpp"

namespace baps::obs {
namespace {

const trace::Trace& shared_trace() {
  static const trace::Trace t =
      trace::load_preset_scaled(trace::Preset::kNlanrUc, 0.05);
  return t;
}

std::vector<core::CacheSizePoint> shared_sweep() {
  core::RunSpec spec;
  spec.sizing = core::BrowserSizing::kMinimum;
  return core::sweep_cache_sizes(
      shared_trace(), {0.05, 0.10},
      {core::OrgKind::kProxyAndLocalBrowser, core::OrgKind::kBrowsersAware},
      spec);
}

TEST(MetricsJsonTest, CountersAreExactAndRatiosConsistent) {
  sim::Metrics m;
  m.hits.hit(3);
  m.hits.miss(1);
  m.byte_hits.hit(3000);
  m.byte_hits.miss(500);
  m.local_browser_hits = 1;
  m.proxy_hits = 1;
  m.remote_browser_hits = 1;
  m.misses = 1;

  const JsonValue j = metrics_to_json(m);
  EXPECT_EQ(j.at("hits").at("count").as_uint(), 3u);
  EXPECT_EQ(j.at("hits").at("total").as_uint(), 4u);
  EXPECT_DOUBLE_EQ(j.at("hits").at("ratio").as_double(), 0.75);
  EXPECT_EQ(j.at("locations").at("miss").at("count").as_uint(), 1u);
}

TEST(ReportTest, BuildsValidatesAndRoundTrips) {
  const auto points = shared_sweep();

  PhaseTimers phases;
  phases.add("sweep", 0.25);

  const ReportBuilder builder =
      ReportBuilder("report_test")
          .set_title("round trip")
          .set_trace(shared_trace())
          .add_phases(phases)
          .add_sweep(points)
          .set_registry(Registry::global().snapshot());
  const JsonValue report = builder.build();

  std::string error;
  EXPECT_TRUE(validate_report(report, &error)) << error;

  // Dump → parse → the emitted hit-ratio fields must match the in-memory
  // Metrics EXACTLY (%.17g doubles survive the round trip bit-for-bit).
  const auto parsed = json_parse(report.dump(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(validate_report(*parsed, &error)) << error;

  const JsonValue& sweep = *parsed->find("sweep");
  ASSERT_EQ(sweep.as_array().size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const JsonValue& entry = sweep.as_array()[i];
    EXPECT_EQ(entry.at("relative_cache_size").as_double(),
              points[i].relative_cache_size);
    const auto& orgs = entry.at("orgs").as_array();
    ASSERT_EQ(orgs.size(), points[i].by_org.size());
    for (const auto& org_entry : orgs) {
      const std::string org = org_entry.at("org").as_string();
      const sim::Metrics* m = nullptr;
      for (const auto& [kind, metrics] : points[i].by_org) {
        if (sim::org_name(kind) == org) m = &metrics;
      }
      ASSERT_NE(m, nullptr) << "unknown org " << org;
      const JsonValue& mj = org_entry.at("metrics");
      EXPECT_EQ(mj.at("hits").at("count").as_uint(), m->hits.hits());
      EXPECT_EQ(mj.at("hits").at("total").as_uint(), m->hits.total());
      EXPECT_EQ(mj.at("hits").at("ratio").as_double(), m->hit_ratio());
      EXPECT_EQ(mj.at("byte_hits").at("ratio").as_double(),
                m->byte_hit_ratio());
    }
  }

  // Phases survived.
  const JsonValue& ph = *parsed->find("phases");
  ASSERT_EQ(ph.as_array().size(), 1u);
  EXPECT_EQ(ph.as_array()[0].at("name").as_string(), "sweep");
}

TEST(ReportTest, WriteProducesAParseableFile) {
  const std::string path =
      ::testing::TempDir() + "/baps_report_test_out.json";
  std::string error;
  ASSERT_TRUE(ReportBuilder("report_test")
                  .add_sweep(shared_sweep())
                  .write(path, &error))
      << error;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = json_parse(buf.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(validate_report(*parsed, &error)) << error;
  EXPECT_EQ(parsed->at("tool").as_string(), "report_test");
}

TEST(ReportTest, ClientScalingSectionValidatesWithTraceLabels) {
  core::RunSpec spec;
  spec.relative_cache_size = 0.10;
  const auto points =
      core::client_scaling_sweep(shared_trace(), {0.5, 1.0}, spec);

  const JsonValue report = ReportBuilder("report_test")
                               .add_client_scaling(points, "NLANR-uc")
                               .build();
  std::string error;
  EXPECT_TRUE(validate_report(report, &error)) << error;
  const auto& entries = report.at("client_scaling").as_array();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].at("trace").as_string(), "NLANR-uc");
  EXPECT_EQ(entries[1].at("num_clients").as_uint(),
            points[1].num_clients);
}

TEST(ValidateTest, RejectsCorruptedReports) {
  std::string error;
  // Wrong schema id.
  JsonValue bad;
  bad.set("schema", JsonValue("nope.v0"));
  bad.set("tool", JsonValue("x"));
  EXPECT_FALSE(validate_report(bad, &error));

  // A tampered ratio must be caught by the recompute check.
  JsonValue report = ReportBuilder("report_test")
                         .add_sweep(shared_sweep())
                         .build();
  JsonValue& sweep = *report.find("sweep");
  JsonValue& metrics =
      *sweep.as_array()[0].find("orgs")->as_array()[0].find("metrics");
  metrics.find("hits")->set("ratio", JsonValue(0.123456));
  EXPECT_FALSE(validate_report(report, &error));
  EXPECT_NE(error.find("ratio"), std::string::npos) << error;
}

JsonValue counter_json(const std::string& name, JsonObject labels,
                       double value) {
  return json_object({{"name", JsonValue(name)},
                      {"labels", JsonValue(std::move(labels))},
                      {"value", JsonValue(value)}});
}

JsonValue report_with_counters(JsonArray counters) {
  JsonValue registry;
  registry.set("counters", JsonValue(std::move(counters)));
  registry.set("gauges", JsonValue(JsonArray{}));
  registry.set("histograms", JsonValue(JsonArray{}));
  JsonValue report;
  report.set("schema", JsonValue(kReportSchema));
  report.set("tool", JsonValue("transport_test"));
  report.set("registry", std::move(registry));
  return report;
}

TEST(TransportMetricsTest, AcceptsConsistentWireCounters) {
  const JsonValue report = report_with_counters({
      counter_json("wire_frames_total", {{"dir", "tx"}, {"kind", "hello"}},
                   3),
      counter_json("wire_frames_total", {{"dir", "tx"}, {"kind", "bye"}}, 2),
      counter_json("wire_frames_total", {{"dir", "rx"}, {"kind", "hello"}},
                   5),
      counter_json("wire_bytes_total", {{"dir", "tx"}}, 5 * 16 + 40),
      counter_json("wire_bytes_total", {{"dir", "rx"}}, 5 * 16),
      counter_json("netio_timeouts_total", {{"op", "read"}}, 1),
  });
  std::string error;
  EXPECT_TRUE(validate_transport_metrics(report, &error)) << error;
  EXPECT_TRUE(validate_report(report, &error)) << error;
}

TEST(TransportMetricsTest, RejectsBadDirLabel) {
  const JsonValue report = report_with_counters({
      counter_json("wire_frames_total", {{"dir", "up"}, {"kind", "hello"}},
                   1),
  });
  std::string error;
  EXPECT_FALSE(validate_transport_metrics(report, &error));
  EXPECT_NE(error.find("dir label"), std::string::npos) << error;
  EXPECT_FALSE(validate_report(report, &error));
}

TEST(TransportMetricsTest, RejectsFrameBytesBelowTheHeaderFloor) {
  // 10 frames can never cost fewer than 10 headers of bytes.
  const JsonValue report = report_with_counters({
      counter_json("wire_frames_total", {{"dir", "tx"}, {"kind", "hello"}},
                   10),
      counter_json("wire_bytes_total", {{"dir", "tx"}}, 100),
  });
  std::string error;
  EXPECT_FALSE(validate_transport_metrics(report, &error));
  EXPECT_NE(error.find("fewer bytes"), std::string::npos) << error;
}

TEST(TransportMetricsTest, RejectsNegativeTransportCounters) {
  const JsonValue report = report_with_counters({
      counter_json("netio_retries_total", {{"op", "fetch"}}, -1),
  });
  std::string error;
  EXPECT_FALSE(validate_transport_metrics(report, &error));
  EXPECT_NE(error.find("negative"), std::string::npos) << error;
}

TEST(TransportMetricsTest, MonotonicityAcceptsGrowthAndNewCounters) {
  const JsonValue earlier = report_with_counters({
      counter_json("wire_frames_total", {{"dir", "tx"}, {"kind", "hello"}},
                   3),
  });
  const JsonValue later = report_with_counters({
      counter_json("wire_frames_total", {{"dir", "tx"}, {"kind", "hello"}},
                   7),
      counter_json("netio_timeouts_total", {{"op", "read"}}, 2),
  });
  std::string error;
  EXPECT_TRUE(validate_transport_monotonicity(earlier, later, &error))
      << error;
}

TEST(TransportMetricsTest, MonotonicityRejectsACounterGoingBackwards) {
  const JsonValue earlier = report_with_counters({
      counter_json("wire_bytes_total", {{"dir", "rx"}}, 640),
  });
  const JsonValue later = report_with_counters({
      counter_json("wire_bytes_total", {{"dir", "rx"}}, 639),
  });
  std::string error;
  EXPECT_FALSE(validate_transport_monotonicity(earlier, later, &error));
  EXPECT_NE(error.find("backwards"), std::string::npos) << error;
}

TEST(TransportMetricsTest, MonotonicityDistinguishesLabelSets) {
  // tx dropping while rx grows must still fail: instances are matched by
  // their full label set, not just the name.
  const JsonValue earlier = report_with_counters({
      counter_json("wire_bytes_total", {{"dir", "tx"}}, 100),
      counter_json("wire_bytes_total", {{"dir", "rx"}}, 100),
  });
  const JsonValue later = report_with_counters({
      counter_json("wire_bytes_total", {{"dir", "tx"}}, 50),
      counter_json("wire_bytes_total", {{"dir", "rx"}}, 200),
  });
  std::string error;
  EXPECT_FALSE(validate_transport_monotonicity(earlier, later, &error));
  EXPECT_NE(error.find("dir=tx"), std::string::npos) << error;
}

TEST(TransportMetricsTest, ReportsWithoutWireCountersPassTrivially) {
  const JsonValue report = ReportBuilder("report_test")
                               .add_sweep(shared_sweep())
                               .build();
  std::string error;
  EXPECT_TRUE(validate_transport_metrics(report, &error)) << error;
  EXPECT_TRUE(
      validate_transport_monotonicity(report, report, &error))
      << error;
}

JsonValue report_with_gauges(JsonArray gauges) {
  JsonValue registry;
  registry.set("counters", JsonValue(JsonArray{}));
  registry.set("gauges", JsonValue(std::move(gauges)));
  registry.set("histograms", JsonValue(JsonArray{}));
  JsonValue report;
  report.set("schema", JsonValue(kReportSchema));
  report.set("tool", JsonValue("replay_test"));
  report.set("registry", std::move(registry));
  return report;
}

TEST(ReplayMetricsTest, AcceptsLabeledPositiveGauges) {
  const JsonValue report = report_with_gauges({
      counter_json("replay_requests_per_second",
                   {{"org", "browsers-aware-proxy-server"}}, 2.5e6),
      counter_json("replay_requests_per_second", {{"org", "proxy-cache-only"}},
                   7.1e6),
      counter_json("some_other_gauge", {}, 0.0),  // not the family: ignored
  });
  std::string error;
  EXPECT_TRUE(validate_replay_metrics(report, &error)) << error;
  EXPECT_TRUE(validate_report(report, &error)) << error;
}

TEST(ReplayMetricsTest, RejectsMissingOrgLabel) {
  const JsonValue report = report_with_gauges({
      counter_json("replay_requests_per_second", {}, 1.0e6),
  });
  std::string error;
  EXPECT_FALSE(validate_replay_metrics(report, &error));
  EXPECT_NE(error.find("org label"), std::string::npos) << error;
  EXPECT_FALSE(validate_report(report, &error));
}

TEST(ReplayMetricsTest, RejectsNonPositiveThroughput) {
  const JsonValue report = report_with_gauges({
      counter_json("replay_requests_per_second", {{"org", "proxy-cache-only"}},
                   0.0),
  });
  std::string error;
  EXPECT_FALSE(validate_replay_metrics(report, &error));
  EXPECT_NE(error.find("finite and positive"), std::string::npos) << error;
}

TEST(ReplayMetricsTest, ReportsWithoutReplayGaugesPassTrivially) {
  const JsonValue report =
      ReportBuilder("report_test").add_sweep(shared_sweep()).build();
  std::string error;
  EXPECT_TRUE(validate_replay_metrics(report, &error)) << error;
}

TEST(FaultMetricsTest, AcceptsKindLabeledFaultCounters) {
  const JsonValue report = report_with_counters({
      counter_json("fault_injected_total", {{"kind", "drop_frame"}}, 7),
      counter_json("fault_recovered_total", {{"kind", "drop_frame"}}, 7),
      counter_json("fault_injected_total", {{"kind", "peer_depart"}}, 3),
      counter_json("stale_index_hits_total", {}, 2),
  });
  std::string error;
  EXPECT_TRUE(validate_fault_metrics(report, &error)) << error;
  EXPECT_TRUE(validate_report(report, &error)) << error;
}

TEST(FaultMetricsTest, RejectsRecoveredExceedingInjected) {
  const JsonValue report = report_with_counters({
      counter_json("fault_injected_total", {{"kind", "corrupt_frame"}}, 2),
      counter_json("fault_recovered_total", {{"kind", "corrupt_frame"}}, 3),
  });
  std::string error;
  EXPECT_FALSE(validate_fault_metrics(report, &error));
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
  EXPECT_FALSE(validate_report(report, &error));
}

TEST(FaultMetricsTest, RejectsRecoveredForAKindNeverInjected) {
  const JsonValue report = report_with_counters({
      counter_json("fault_recovered_total", {{"kind", "slow_peer"}}, 1),
  });
  std::string error;
  EXPECT_FALSE(validate_fault_metrics(report, &error));
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
}

TEST(FaultMetricsTest, RejectsMissingKindLabel) {
  const JsonValue report = report_with_counters({
      counter_json("fault_injected_total", {}, 1),
  });
  std::string error;
  EXPECT_FALSE(validate_fault_metrics(report, &error));
  EXPECT_NE(error.find("kind label"), std::string::npos) << error;
}

TEST(FaultMetricsTest, RejectsNegativeStaleIndexHits) {
  const JsonValue report = report_with_counters({
      counter_json("stale_index_hits_total", {}, -1),
  });
  std::string error;
  EXPECT_FALSE(validate_fault_metrics(report, &error));
  EXPECT_NE(error.find("negative"), std::string::npos) << error;
}

TEST(FaultMetricsTest, ReportsWithoutFaultCountersPassTrivially) {
  const JsonValue report =
      ReportBuilder("report_test").add_sweep(shared_sweep()).build();
  std::string error;
  EXPECT_TRUE(validate_fault_metrics(report, &error)) << error;
}

JsonValue store_stage_json(const std::string& op, double count) {
  JsonObject labels;
  if (!op.empty()) labels.emplace_back("op", JsonValue(op));
  return json_object({{"name", JsonValue("store_stage_seconds")},
                      {"labels", JsonValue(std::move(labels))},
                      {"count", JsonValue(count)}});
}

JsonValue report_with_store_registry(JsonArray counters,
                                     JsonArray histograms) {
  JsonValue registry;
  registry.set("counters", JsonValue(std::move(counters)));
  registry.set("gauges", JsonValue(JsonArray{}));
  registry.set("histograms", JsonValue(std::move(histograms)));
  JsonValue report;
  report.set("schema", JsonValue(kReportSchema));
  report.set("tool", JsonValue("store_test"));
  report.set("registry", std::move(registry));
  return report;
}

TEST(StoreMetricsTest, AcceptsConsistentStoreFamily) {
  const JsonValue report = report_with_store_registry(
      {
          counter_json("store_probes_total", {}, 10),
          counter_json("store_hits_total", {}, 7),
          counter_json("store_misses_total", {}, 3),
          counter_json("store_demotions_total", {}, 12),
          counter_json("store_promotions_total", {}, 7),
          counter_json("store_integrity_failures_total", {}, 0),
          counter_json("store_bytes_total", {{"dir", "read"}}, 9000),
          counter_json("store_bytes_total", {{"dir", "written"}}, 15000),
      },
      {
          store_stage_json("probe", 10),
          store_stage_json("demote", 12),
          store_stage_json("promote", 7),
      });
  std::string error;
  EXPECT_TRUE(validate_store_metrics(report, &error)) << error;
  EXPECT_TRUE(validate_report(report, &error)) << error;
}

TEST(StoreMetricsTest, RejectsProbesNotSplittingIntoHitsAndMisses) {
  const JsonValue report = report_with_store_registry(
      {
          counter_json("store_probes_total", {}, 10),
          counter_json("store_hits_total", {}, 7),
          counter_json("store_misses_total", {}, 2),  // one probe unaccounted
      },
      {});
  std::string error;
  EXPECT_FALSE(validate_store_metrics(report, &error));
  EXPECT_NE(error.find("store_probes_total"), std::string::npos) << error;
  EXPECT_FALSE(validate_report(report, &error));
}

TEST(StoreMetricsTest, RejectsBytesWithoutReadOrWrittenDir) {
  const JsonValue report = report_with_store_registry(
      {
          counter_json("store_bytes_total", {{"dir", "sideways"}}, 100),
      },
      {});
  std::string error;
  EXPECT_FALSE(validate_store_metrics(report, &error));
  EXPECT_NE(error.find("read or written"), std::string::npos) << error;
}

TEST(StoreMetricsTest, RejectsNegativeStoreCounter) {
  const JsonValue report = report_with_store_registry(
      {
          counter_json("store_integrity_failures_total", {}, -1),
      },
      {});
  std::string error;
  EXPECT_FALSE(validate_store_metrics(report, &error));
  EXPECT_NE(error.find("negative"), std::string::npos) << error;
}

TEST(StoreMetricsTest, RejectsStageHistogramWithoutOpLabel) {
  const JsonValue report =
      report_with_store_registry({}, {store_stage_json("", 3)});
  std::string error;
  EXPECT_FALSE(validate_store_metrics(report, &error));
  EXPECT_NE(error.find("op label"), std::string::npos) << error;
}

TEST(StoreMetricsTest, StoreCountersJoinMonotonicityChecks) {
  const JsonValue earlier = report_with_store_registry(
      {counter_json("store_hits_total", {}, 5)}, {});
  const JsonValue later = report_with_store_registry(
      {counter_json("store_hits_total", {}, 4)}, {});
  std::string error;
  EXPECT_FALSE(validate_transport_monotonicity(earlier, later, &error));
  EXPECT_NE(error.find("store_hits_total"), std::string::npos) << error;
  EXPECT_TRUE(validate_transport_monotonicity(later, earlier, &error))
      << error;
}

TEST(StoreMetricsTest, ReportsWithoutStoreInstrumentsPassTrivially) {
  const JsonValue report =
      ReportBuilder("report_test").add_sweep(shared_sweep()).build();
  std::string error;
  EXPECT_TRUE(validate_store_metrics(report, &error)) << error;
}

JsonValue gauge_json(const std::string& name, JsonObject labels,
                     double value) {
  return json_object({{"name", JsonValue(name)},
                      {"labels", JsonValue(std::move(labels))},
                      {"value", JsonValue(value)}});
}

JsonValue report_with_netio_registry(JsonArray counters, JsonArray gauges) {
  JsonValue registry;
  registry.set("counters", JsonValue(std::move(counters)));
  registry.set("gauges", JsonValue(std::move(gauges)));
  registry.set("histograms", JsonValue(JsonArray{}));
  JsonValue report;
  report.set("schema", JsonValue(kReportSchema));
  report.set("tool", JsonValue("netio_test"));
  report.set("registry", std::move(registry));
  return report;
}

TEST(NetioMetricsTest, AcceptsConsistentConnloadFamily) {
  const JsonValue report = report_with_netio_registry(
      {
          counter_json("netio_connections_total", {}, 10000),
          counter_json("netio_epoll_wakeups_total", {}, 123456),
          counter_json("connload_established_total", {}, 10000),
          counter_json("connload_roundtrips_total", {}, 10000),
      },
      {
          gauge_json("netio_connections_active", {}, 0),
          gauge_json("connload_connections_peak", {}, 10000),
          gauge_json("connload_accept_rate_per_second", {}, 9360.4),
          gauge_json("connload_roundtrip_quantile_seconds", {{"q", "p50"}},
                     0.016),
          gauge_json("connload_roundtrip_quantile_seconds", {{"q", "p99"}},
                     0.048),
          gauge_json("connload_roundtrip_quantile_seconds", {{"q", "p999"}},
                     0.058),
      });
  std::string error;
  EXPECT_TRUE(validate_netio_metrics(report, &error)) << error;
  EXPECT_TRUE(validate_report(report, &error)) << error;
}

TEST(NetioMetricsTest, RejectsNonMonotoneQuantiles) {
  const JsonValue report = report_with_netio_registry(
      {},
      {
          gauge_json("connload_roundtrip_quantile_seconds", {{"q", "p50"}},
                     0.050),
          gauge_json("connload_roundtrip_quantile_seconds", {{"q", "p99"}},
                     0.048),
          gauge_json("connload_roundtrip_quantile_seconds", {{"q", "p999"}},
                     0.058),
      });
  std::string error;
  EXPECT_FALSE(validate_netio_metrics(report, &error));
  EXPECT_NE(error.find("monotone"), std::string::npos) << error;
}

TEST(NetioMetricsTest, RejectsALoneQuantileInstance) {
  const JsonValue report = report_with_netio_registry(
      {},
      {
          gauge_json("connload_roundtrip_quantile_seconds", {{"q", "p50"}},
                     0.016),
      });
  std::string error;
  EXPECT_FALSE(validate_netio_metrics(report, &error));
  EXPECT_NE(error.find("missing q="), std::string::npos) << error;
}

TEST(NetioMetricsTest, RejectsBadQuantileLabel) {
  const JsonValue report = report_with_netio_registry(
      {},
      {
          gauge_json("connload_roundtrip_quantile_seconds", {{"q", "p42"}},
                     0.016),
      });
  std::string error;
  EXPECT_FALSE(validate_netio_metrics(report, &error));
}

TEST(NetioMetricsTest, RejectsPeakAboveEstablished) {
  const JsonValue report = report_with_netio_registry(
      {
          counter_json("connload_established_total", {}, 100),
      },
      {
          gauge_json("connload_connections_peak", {}, 101),
      });
  std::string error;
  EXPECT_FALSE(validate_netio_metrics(report, &error));
  EXPECT_NE(error.find("peak"), std::string::npos) << error;
}

TEST(NetioMetricsTest, RejectsNegativeNetioGauge) {
  const JsonValue report = report_with_netio_registry(
      {},
      {
          gauge_json("netio_connections_active", {}, -1),
      });
  std::string error;
  EXPECT_FALSE(validate_netio_metrics(report, &error));
}

TEST(NetioMetricsTest, ReportsWithoutNetioInstrumentsPassTrivially) {
  const JsonValue report =
      ReportBuilder("report_test").add_sweep(shared_sweep()).build();
  std::string error;
  EXPECT_TRUE(validate_netio_metrics(report, &error)) << error;
}

}  // namespace
}  // namespace baps::obs
