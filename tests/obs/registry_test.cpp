#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/thread_pool.hpp"

namespace baps::obs {
namespace {

TEST(RegistryTest, CounterHandleIsStableAndSums) {
  Registry reg;
  Counter& c = reg.counter("requests_total");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name+labels resolves to the same instrument.
  EXPECT_EQ(&reg.counter("requests_total"), &c);
}

TEST(RegistryTest, LabelsDistinguishFamilyMembers) {
  Registry reg;
  Counter& a = reg.counter("hits", {{"org", "baps"}, {"loc", "proxy"}});
  // Label order must not matter: normalized by key.
  Counter& a2 = reg.counter("hits", {{"loc", "proxy"}, {"org", "baps"}});
  Counter& b = reg.counter("hits", {{"org", "baps"}, {"loc", "peer"}});
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
  a.inc(3);
  b.inc(5);

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  const auto* sa = snap.counter("hits", {{"loc", "proxy"}, {"org", "baps"}});
  ASSERT_NE(sa, nullptr);
  EXPECT_EQ(sa->value, 3u);
}

TEST(RegistryTest, ConcurrentIncrementsSumExactly) {
  Registry reg;
  Counter& c = reg.counter("bumps_total");
  Gauge& g = reg.gauge("accumulated");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncsPerThread = 10000;
  {
    ThreadPool pool(kThreads);
    pool.parallel_for(kThreads, [&](std::size_t) {
      for (std::size_t i = 0; i < kIncsPerThread; ++i) {
        c.inc();
        g.add(1.0);
      }
    });
  }
  EXPECT_EQ(c.value(), kThreads * kIncsPerThread);
  EXPECT_DOUBLE_EQ(reg.gauge("accumulated").value(),
                   static_cast<double>(kThreads * kIncsPerThread));
}

TEST(RegistryTest, HistogramUnderOverflowEdges) {
  Registry reg;
  Histogram& h = reg.histogram("lat", 0.0, 10.0, 10);
  h.observe(-0.5);  // below lo
  h.observe(0.0);   // first interior bucket edge
  h.observe(9.999);
  h.observe(10.0);  // hi is exclusive -> overflow
  h.observe(1e9);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(RegistryTest, Log10HistogramPlacesDecades) {
  Registry reg;
  Histogram& h = reg.histogram("t", -6.0, 3.0, 9, HistScale::kLog10);
  h.observe(1e-7);  // log10 = -7 -> underflow
  h.observe(1e-6);  // -6 -> bucket 0
  h.observe(1.0);   // 0 -> bucket 6
  h.observe(0.0);   // nonpositive -> underflow by convention
  h.observe(1e4);   // 4 -> overflow
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(6), 1u);
  EXPECT_EQ(h.count(), 5u);
}

TEST(RegistryTest, RegistryResetClearsValuesKeepsInstruments) {
  Registry reg;
  Counter& c = reg.counter("n");
  Gauge& g = reg.gauge("v");
  Histogram& h = reg.histogram("h", 0.0, 1.0, 4);
  c.inc(7);
  g.set(3.5);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&reg.counter("n"), &c);  // handle survives reset
}

TEST(RegistryTest, SnapshotExportsTextAndJson) {
  Registry reg;
  reg.counter("reqs", {{"org", "baps"}}).inc(2);
  reg.gauge("depth").set(1.5);
  reg.histogram("h", 0.0, 2.0, 2).observe(0.5);
  const Snapshot snap = reg.snapshot();

  const std::string text = to_text(snap);
  EXPECT_NE(text.find("reqs{org=\"baps\"} 2"), std::string::npos);
  EXPECT_NE(text.find("depth 1.5"), std::string::npos);

  const JsonValue j = to_json(snap);
  ASSERT_NE(j.find("counters"), nullptr);
  ASSERT_EQ(j.at("counters").as_array().size(), 1u);
  EXPECT_EQ(j.at("counters").as_array()[0].at("value").as_uint(), 2u);
  ASSERT_EQ(j.at("histograms").as_array().size(), 1u);
  EXPECT_EQ(j.at("histograms").as_array()[0].at("count").as_uint(), 1u);
}

TEST(RegistryTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(RegistryTest, ConcurrentGaugeAddSubLandsExactly) {
  // Gauge::add/sub must be a single atomic RMW (native fetch_add or the CAS
  // fallback): with adders and subtractors racing, a torn read-modify-write
  // would lose updates and the final value would drift off zero.
  Registry reg;
  Gauge& g = reg.gauge("contended");
  constexpr std::size_t kThreads = 8;  // half add, half sub
  constexpr std::size_t kOpsPerThread = 20000;
  {
    ThreadPool pool(kThreads);
    pool.parallel_for(kThreads, [&](std::size_t t) {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        if (t % 2 == 0) {
          g.add(1.5);
        } else {
          g.sub(1.5);
        }
      }
    });
  }
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(RegistryTest, AddDoubleCasFallbackMatchesNativePath) {
  // The CAS loop is the portability fallback for toolchains without
  // __cpp_lib_atomic_float; exercise it directly so the rarely-compiled
  // path stays correct on toolchains that never select it.
  std::atomic<double> v{1.25};
  detail::add_double_cas(v, 2.5);
  detail::add_double_cas(v, -0.75);
  EXPECT_DOUBLE_EQ(v.load(), 3.0);

  std::atomic<double> contended{0.0};
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 20000;
  {
    ThreadPool pool(kThreads);
    pool.parallel_for(kThreads, [&](std::size_t) {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        detail::add_double_cas(contended, 0.5);
      }
    });
  }
  EXPECT_DOUBLE_EQ(contended.load(),
                   0.5 * static_cast<double>(kThreads * kOpsPerThread));
}

}  // namespace
}  // namespace baps::obs
