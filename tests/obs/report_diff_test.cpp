#include "obs/report_diff.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace baps::obs {
namespace {

using OrgRps = std::vector<std::pair<std::string, double>>;

JsonValue make_report(const OrgRps& org_rps) {
  JsonArray gauges;
  for (const auto& [org, v] : org_rps) {
    gauges.push_back(json_object(
        {{"name", JsonValue("replay_requests_per_second")},
         {"labels", json_object({{"org", JsonValue(org)}})},
         {"value", JsonValue(v)}}));
  }
  JsonValue registry = json_object({});
  registry.set("gauges", JsonValue(std::move(gauges)));
  JsonValue doc = json_object({});
  doc.set("schema", JsonValue("baps.report.v1"));
  doc.set("registry", std::move(registry));
  return doc;
}

JsonValue make_hotpath(const OrgRps& org_rps) {
  JsonObject rps;
  for (const auto& [org, v] : org_rps) rps.emplace_back(org, JsonValue(v));
  JsonArray entries;
  entries.push_back(
      json_object({{"requests_per_second", JsonValue(std::move(rps))}}));
  JsonValue doc = json_object({});
  doc.set("schema", JsonValue("baps.bench_hotpath.v1"));
  doc.set("entries", JsonValue(std::move(entries)));
  return doc;
}

TEST(ReportDiffTest, ReportVsReportWithinToleranceOk) {
  const JsonValue base = make_report({{"proxy-cache-only", 100.0}});
  const JsonValue cur = make_report({{"proxy-cache-only", 95.0}});
  const ReportDiffResult r = diff_reports(base, cur);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.compared, 1u);
  EXPECT_TRUE(r.findings.empty());
}

TEST(ReportDiffTest, ReportVsReportRegressionBeyondToleranceFails) {
  const JsonValue base = make_report({{"proxy-cache-only", 100.0}});
  const JsonValue cur = make_report({{"proxy-cache-only", 70.0}});
  const ReportDiffResult r = diff_reports(base, cur);  // default 20%
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_NE(r.findings[0].find("regressed"), std::string::npos);
}

TEST(ReportDiffTest, ToleranceOptionsWidenTheBand) {
  const JsonValue base = make_report({{"proxy-cache-only", 100.0}});
  const JsonValue cur = make_report({{"proxy-cache-only", 70.0}});
  ReportDiffOptions wide;
  wide.tolerance_pct = 40.0;
  EXPECT_TRUE(diff_reports(base, cur, wide).ok);
  ReportDiffOptions per_metric;
  per_metric.metric_tolerances["replay_requests_per_second"] = 40.0;
  EXPECT_TRUE(diff_reports(base, cur, per_metric).ok);
  // The per-metric override wins over a tighter global tolerance.
  per_metric.tolerance_pct = 5.0;
  EXPECT_TRUE(diff_reports(base, cur, per_metric).ok);
}

TEST(ReportDiffTest, ReportVsReportInjectedRegressionTripsTheGate) {
  const JsonValue doc = make_report(
      {{"proxy-cache-only", 100.0}, {"browsers-aware-proxy-server", 400.0}});
  EXPECT_TRUE(diff_reports(doc, doc).ok);  // self-diff passes
  ReportDiffOptions inject;
  inject.inject_regression_pct = 75.0;
  const ReportDiffResult r = diff_reports(doc, doc, inject);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.findings.size(), 2u);
}

TEST(ReportDiffTest, InstancesMissingFromOneSideAreNotedNotCompared) {
  const JsonValue base =
      make_report({{"proxy-cache-only", 100.0}, {"base-only", 50.0}});
  const JsonValue cur =
      make_report({{"proxy-cache-only", 100.0}, {"cur-only", 60.0}});
  const ReportDiffResult r = diff_reports(base, cur);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.compared, 1u);
  EXPECT_EQ(r.notes.size(), 2u);
}

TEST(ReportDiffTest, HotpathUniformSlowdownCancelsOut) {
  const JsonValue base = make_hotpath(
      {{"alpha", 100.0}, {"beta", 200.0}, {"gamma", 400.0}});
  // A 4x slower machine with the same relative shape must pass: the gate
  // compares geomean-normalized values, not absolute req/s.
  const JsonValue cur =
      make_report({{"alpha", 25.0}, {"beta", 50.0}, {"gamma", 100.0}});
  const ReportDiffResult r = diff_reports(base, cur);
  EXPECT_TRUE(r.ok) << (r.findings.empty() ? "" : r.findings[0]);
  EXPECT_EQ(r.compared, 3u);
}

TEST(ReportDiffTest, HotpathLopsidedSlowdownFails) {
  const JsonValue base = make_hotpath(
      {{"alpha", 100.0}, {"beta", 200.0}, {"gamma", 400.0}});
  // gamma collapsed relative to its peers — exactly the regression shape
  // the normalized gate exists to catch.
  const JsonValue cur =
      make_report({{"alpha", 50.0}, {"beta", 100.0}, {"gamma", 20.0}});
  const ReportDiffResult r = diff_reports(base, cur);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_NE(r.findings[0].find("gamma"), std::string::npos);
}

TEST(ReportDiffTest, HotpathInjectedRegressionTripsTheGate) {
  const JsonValue base = make_hotpath({{"alpha", 100.0}, {"beta", 200.0}});
  const JsonValue cur = make_report({{"alpha", 100.0}, {"beta", 200.0}});
  EXPECT_TRUE(diff_reports(base, cur).ok);
  // Injected AFTER normalization: even a uniform seeded drop must fail,
  // proving the self-test cannot cancel out of the shape comparison.
  ReportDiffOptions inject;
  inject.inject_regression_pct = 75.0;
  const ReportDiffResult r = diff_reports(base, cur, inject);
  EXPECT_FALSE(r.ok);
}

TEST(ReportDiffTest, HotpathRestrictsToSharedOrgs) {
  const JsonValue base = make_hotpath(
      {{"alpha", 100.0}, {"beta", 200.0}, {"hotpath-only", 999.0}});
  const JsonValue cur =
      make_report({{"alpha", 100.0}, {"beta", 200.0}, {"report-only", 1.0}});
  const ReportDiffResult r = diff_reports(base, cur);
  EXPECT_TRUE(r.ok) << (r.findings.empty() ? "" : r.findings[0]);
  EXPECT_EQ(r.compared, 2u);
}

TEST(ReportDiffTest, NothingSharedOrUnknownSchemaFails) {
  const JsonValue base = make_hotpath({{"alpha", 100.0}});
  const JsonValue cur = make_report({{"omega", 100.0}});
  EXPECT_FALSE(diff_reports(base, cur).ok);

  JsonValue bogus = json_object({{"schema", JsonValue("something.else")}});
  EXPECT_FALSE(diff_reports(bogus, cur).ok);
}

TEST(ReportDiffTest, EmptyReportsCompareNothing) {
  const JsonValue a = make_report({});
  const ReportDiffResult r = diff_reports(a, a);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.compared, 0u);  // the CLI treats this as a failure
}

}  // namespace
}  // namespace baps::obs
