#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace baps::obs {
namespace {

const JsonValue* find_named(const JsonValue& rec, const char* section,
                            const std::string& name) {
  const JsonValue* arr = rec.find(section);
  if (arr == nullptr || !arr->is_array()) return nullptr;
  for (const JsonValue& e : arr->as_array()) {
    if (e.at("name").as_string() == name) return &e;
  }
  return nullptr;
}

std::vector<JsonValue> parse_lines(const std::string& jsonl) {
  std::vector<JsonValue> out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string error;
    auto parsed = json_parse(line, &error);
    EXPECT_TRUE(parsed.has_value()) << error << " in: " << line;
    if (parsed) out.push_back(std::move(*parsed));
  }
  return out;
}

TEST(TimeseriesRecordTest, FirstRecordDeltaEqualsValueWithZeroRate) {
  Snapshot cur;
  cur.counters.push_back({"requests_total", {}, 5});
  const JsonValue rec = timeseries_record(Snapshot{}, cur, 0.0, 12.5, 0);
  EXPECT_EQ(rec.at("schema").as_string(), kTimeSeriesSchema);
  EXPECT_EQ(rec.at("seq").as_uint(), 0u);
  const JsonValue* c = find_named(rec, "counters", "requests_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->at("value").as_uint(), 5u);
  EXPECT_EQ(c->at("delta").as_uint(), 5u);
  EXPECT_DOUBLE_EQ(c->at("per_second").as_double(), 0.0);
}

TEST(TimeseriesRecordTest, CounterDeltaAndRate) {
  Snapshot prev, cur;
  prev.counters.push_back({"requests_total", {}, 10});
  cur.counters.push_back({"requests_total", {}, 30});
  const JsonValue rec = timeseries_record(prev, cur, 2.0, 20.0, 3);
  const JsonValue* c = find_named(rec, "counters", "requests_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->at("delta").as_uint(), 20u);
  EXPECT_DOUBLE_EQ(c->at("per_second").as_double(), 10.0);
}

TEST(TimeseriesRecordTest, CounterResetRebaselines) {
  Snapshot prev, cur;
  prev.counters.push_back({"requests_total", {}, 100});
  cur.counters.push_back({"requests_total", {}, 5});
  const JsonValue rec = timeseries_record(prev, cur, 1.0, 1.0, 1);
  const JsonValue* c = find_named(rec, "counters", "requests_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->at("delta").as_uint(), 5u);
  EXPECT_DOUBLE_EQ(c->at("per_second").as_double(), 5.0);
}

TEST(TimeseriesRecordTest, InstrumentRegisteredMidIntervalDeltasAgainstZero) {
  Snapshot prev, cur;
  prev.counters.push_back({"alpha_total", {}, 7});
  cur.counters.push_back({"alpha_total", {}, 7});
  cur.counters.push_back({"beta_total", {}, 4});
  const JsonValue rec = timeseries_record(prev, cur, 1.0, 1.0, 1);
  const JsonValue* a = find_named(rec, "counters", "alpha_total");
  const JsonValue* b = find_named(rec, "counters", "beta_total");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->at("delta").as_uint(), 0u);
  EXPECT_EQ(b->at("delta").as_uint(), 4u);
}

TEST(TimeseriesRecordTest, HistogramDeltaQuantilesDescribeOnlyTheInterval) {
  Registry reg;
  Histogram& h = reg.histogram("latency_seconds", 0.0, 10.0, 10);
  // First interval: a cluster at 1s.
  for (int i = 0; i < 50; ++i) h.observe(1.0);
  const Snapshot prev = reg.snapshot();
  // Second interval: a cluster at 9s. The delta distribution must forget
  // the 1s samples entirely.
  for (int i = 0; i < 50; ++i) h.observe(9.0);
  const Snapshot cur = reg.snapshot();
  const JsonValue rec = timeseries_record(prev, cur, 1.0, 2.0, 1);
  const JsonValue* e = find_named(rec, "histograms", "latency_seconds");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->at("count").as_uint(), 100u);
  EXPECT_EQ(e->at("count_delta").as_uint(), 50u);
  EXPECT_NEAR(e->at("sum_delta").as_double(), 450.0, 1e-9);
  EXPECT_GE(e->at("p50").as_double(), 9.0);
  EXPECT_LE(e->at("p50").as_double(), 10.0);
  EXPECT_LE(e->at("p50").as_double(), e->at("p95").as_double());
  EXPECT_LE(e->at("p95").as_double(), e->at("p99").as_double());
}

TEST(TimeseriesRecordTest, HistogramResetTreatsPrevAsEmpty) {
  Registry reg;
  Histogram& h = reg.histogram("latency_seconds", 0.0, 10.0, 10);
  for (int i = 0; i < 5; ++i) h.observe(2.0);
  const Snapshot prev = reg.snapshot();
  h.reset();
  h.observe(4.0);
  h.observe(4.0);
  const Snapshot cur = reg.snapshot();
  const JsonValue rec = timeseries_record(prev, cur, 1.0, 2.0, 1);
  const JsonValue* e = find_named(rec, "histograms", "latency_seconds");
  ASSERT_NE(e, nullptr);
  // cur.count (2) < prev.count (5): the interval re-baselines to cur alone.
  EXPECT_EQ(e->at("count_delta").as_uint(), 2u);
  EXPECT_GE(e->at("p50").as_double(), 4.0);
  EXPECT_LE(e->at("p99").as_double(), 5.0);
}

TEST(TimeSeriesSamplerTest, ManualTicksExportAValidStream) {
  Registry reg;
  Counter& c = reg.counter("ticks_total");
  std::ostringstream sink;
  TimeSeriesSampler::Params params;
  params.interval_seconds = 3600.0;  // never fires on its own
  TimeSeriesSampler sampler(params, &reg);
  sampler.set_sink(&sink);
  sampler.sample_now();  // seq 0 baseline
  c.inc(10);
  sampler.sample_now();
  c.inc(5);
  sampler.sample_now();
  EXPECT_EQ(sampler.intervals_captured(), 3u);

  const std::vector<JsonValue> lines = parse_lines(sink.str());
  ASSERT_EQ(lines.size(), 3u);
  std::string error;
  EXPECT_TRUE(validate_timeseries_lines(lines, &error)) << error;
  const JsonValue* c1 = find_named(lines[1], "counters", "ticks_total");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->at("delta").as_uint(), 10u);
  const JsonValue* c2 = find_named(lines[2], "counters", "ticks_total");
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->at("delta").as_uint(), 5u);
  EXPECT_EQ(c2->at("value").as_uint(), 15u);
}

TEST(TimeSeriesSamplerTest, StartStopThreadProducesValidStream) {
  Registry reg;
  Counter& c = reg.counter("work_total");
  std::ostringstream sink;
  TimeSeriesSampler::Params params;
  params.interval_seconds = 0.01;
  TimeSeriesSampler sampler(params, &reg);
  sampler.set_sink(&sink);
  sampler.start();
  for (int i = 0; i < 5; ++i) {
    c.inc(100);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  sampler.stop();
  sampler.stop();  // idempotent

  const std::vector<JsonValue> lines = parse_lines(sink.str());
  // seq-0 baseline + the final flush tick, plus however many periodic ticks
  // the scheduler allowed (usually several at this interval).
  ASSERT_GE(lines.size(), 2u);
  std::string error;
  EXPECT_TRUE(validate_timeseries_lines(lines, &error)) << error;
  // The final tick captured the end state: all 500 increments accounted for.
  const JsonValue* last =
      find_named(lines.back(), "counters", "work_total");
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->at("value").as_uint(), 500u);
  // Process self-profiling rode along.
  const JsonValue* proc = lines.back().find("process");
  ASSERT_NE(proc, nullptr);
  EXPECT_TRUE(proc->find("cpu_seconds")->is_number());
}

TEST(TimeSeriesSamplerTest, WindowJsonBoundsAndOrdersTheRing) {
  Registry reg;
  Counter& c = reg.counter("n_total");
  TimeSeriesSampler::Params params;
  params.interval_seconds = 3600.0;
  params.ring_capacity = 4;
  TimeSeriesSampler sampler(params, &reg);
  for (int i = 0; i < 7; ++i) {
    c.inc();
    sampler.sample_now();
  }
  const JsonValue all = sampler.window_json();
  EXPECT_EQ(all.at("schema").as_string(), kTimeSeriesWindowSchema);
  ASSERT_EQ(all.at("intervals").as_array().size(), 4u);  // ring-capped
  // Oldest-first: seq strictly increasing across the window.
  const auto& intervals = all.at("intervals").as_array();
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_LT(intervals[i - 1].at("seq").as_uint(),
              intervals[i].at("seq").as_uint());
  }
  EXPECT_EQ(intervals.back().at("seq").as_uint(), 6u);

  const JsonValue two = sampler.window_json(2);
  ASSERT_EQ(two.at("intervals").as_array().size(), 2u);
  EXPECT_EQ(two.at("intervals").as_array().back().at("seq").as_uint(), 6u);
}

TEST(TimeseriesValidatorTest, RejectsEmptyAndBadFirstSeq) {
  std::string error;
  EXPECT_FALSE(validate_timeseries_lines({}, &error));

  Snapshot cur;
  cur.counters.push_back({"a_total", {}, 1});
  const JsonValue rec = timeseries_record(Snapshot{}, cur, 0.0, 1.0, 7);
  EXPECT_FALSE(validate_timeseries_lines({rec}, &error));
  EXPECT_NE(error.find("seq 0"), std::string::npos);
}

TEST(TimeseriesValidatorTest, RejectsDeltaInconsistentWithPreviousRecord) {
  Snapshot a, b, c;
  a.counters.push_back({"a_total", {}, 10});
  b.counters.push_back({"a_total", {}, 3});  // not what record 1 reported
  c.counters.push_back({"a_total", {}, 30});
  const JsonValue r0 = timeseries_record(Snapshot{}, a, 0.0, 1.0, 0);
  // This record's delta (27) disagrees with the cross-record expectation
  // (30 - 10 = 20): the stream lies about its own history.
  const JsonValue r1 = timeseries_record(b, c, 1.0, 2.0, 1);
  std::string error;
  EXPECT_FALSE(validate_timeseries_lines({r0, r1}, &error));
  EXPECT_NE(error.find("delta inconsistent"), std::string::npos);
}

TEST(TimeseriesValidatorTest, RejectsTimeGoingBackwards) {
  Snapshot a;
  a.counters.push_back({"a_total", {}, 1});
  const JsonValue r0 = timeseries_record(Snapshot{}, a, 0.0, 5.0, 0);
  const JsonValue r1 = timeseries_record(a, a, 1.0, 4.0, 1);
  std::string error;
  EXPECT_FALSE(validate_timeseries_lines({r0, r1}, &error));
  EXPECT_NE(error.find("backwards"), std::string::npos);
}

}  // namespace
}  // namespace baps::obs
