#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/registry.hpp"

namespace baps::obs {
namespace {

Tracer::Params always_on(std::uint64_t seed = 7) {
  Tracer::Params p;
  p.seed = seed;
  p.sample_rate = 1.0;
  p.service = "test";
  return p;
}

TEST(TraceSampledTest, EdgesAndDeterminism) {
  EXPECT_FALSE(trace_sampled(1, 0.0, 42));
  EXPECT_FALSE(trace_sampled(1, -0.5, 42));
  EXPECT_TRUE(trace_sampled(1, 1.0, 42));
  EXPECT_TRUE(trace_sampled(1, 1.5, 42));
  // Pure function: same inputs, same answer, every time.
  for (std::uint64_t id = 1; id < 200; ++id) {
    EXPECT_EQ(trace_sampled(9, 0.3, id), trace_sampled(9, 0.3, id));
  }
}

TEST(TraceSampledTest, RateMatchesSampledFraction) {
  const double rate = 0.25;
  int sampled = 0;
  const int n = 20000;
  for (int id = 1; id <= n; ++id) {
    if (trace_sampled(3, rate, static_cast<std::uint64_t>(id))) ++sampled;
  }
  const double fraction = static_cast<double>(sampled) / n;
  EXPECT_NEAR(fraction, rate, 0.02);
}

TEST(TraceSampledTest, TwoProcessesAgree) {
  // The cross-process contract: any two tracers configured with the same
  // seed make the same decision for a given trace id.
  Registry r1, r2;
  Tracer::Params p;
  p.seed = 11;
  p.sample_rate = 0.5;
  Tracer a(p, &r1);
  Tracer b(p, &r2);
  for (int i = 0; i < 100; ++i) {
    const TraceContext ctx = a.make_root_context();
    EXPECT_EQ(ctx.sampled,
              trace_sampled(p.seed, p.sample_rate, ctx.trace_id));
  }
}

TEST(TracerTest, RootContextsAreSeedDeterministic) {
  Registry r1, r2;
  Tracer a(always_on(21), &r1);
  Tracer b(always_on(21), &r2);
  for (int i = 0; i < 32; ++i) {
    const TraceContext ca = a.make_root_context();
    const TraceContext cb = b.make_root_context();
    EXPECT_EQ(ca.trace_id, cb.trace_id) << "root " << i;
    EXPECT_NE(ca.trace_id, 0u);
  }
}

TEST(TracerTest, SpanTreeSharesTraceIdAndParentLinks) {
  Registry reg;
  Tracer tracer(always_on(), &reg);
  Span root = tracer.start_root_span(SpanKind::kClientFetch);
  ASSERT_TRUE(root.recording());
  const TraceContext root_ctx = root.context();
  EXPECT_TRUE(root_ctx.sampled);

  Span child = tracer.start_span(SpanKind::kCacheProbe, root_ctx);
  const TraceContext child_ctx = child.context();
  EXPECT_EQ(child_ctx.trace_id, root_ctx.trace_id);
  EXPECT_NE(child_ctx.span_id, root_ctx.span_id);
  Span grandchild = tracer.start_span(SpanKind::kPeerTransfer, child_ctx);
  const TraceContext gc_ctx = grandchild.context();
  grandchild.end();
  child.end();
  root.end();

  const std::vector<SpanRecord> spans = tracer.recent_spans();
  ASSERT_EQ(spans.size(), 3u);
  std::map<std::uint64_t, SpanRecord> by_id;
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, root_ctx.trace_id);
    by_id[s.span_id] = s;
  }
  // Exactly one root; each child's parent resolves to a recorded span.
  EXPECT_EQ(by_id.at(root_ctx.span_id).parent_id, 0u);
  EXPECT_EQ(by_id.at(child_ctx.span_id).parent_id, root_ctx.span_id);
  EXPECT_EQ(by_id.at(gc_ctx.span_id).parent_id, child_ctx.span_id);
}

TEST(TracerTest, UnsampledTraceRecordsNothingButPropagates) {
  // A fractional rate leaves some traces unsampled; those must propagate a
  // coherent (unsampled) context while recording nothing.
  Registry reg;
  Tracer::Params p;
  p.seed = 5;
  p.sample_rate = 0.5;
  Tracer tracer(p, &reg);
  TraceContext ctx;
  for (int i = 0; i < 64 && !ctx.valid(); ++i) {
    const TraceContext candidate = tracer.make_root_context();
    if (!candidate.sampled) ctx = candidate;
  }
  ASSERT_TRUE(ctx.valid()) << "seed 5 produced no unsampled trace in 64";
  EXPECT_FALSE(ctx.sampled);
  Span child = tracer.start_span(SpanKind::kCacheProbe, ctx);
  EXPECT_FALSE(child.recording());
  // Callees still see the same (unsampled) context.
  EXPECT_EQ(child.context().trace_id, ctx.trace_id);
  child.end();
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  // And the registry is untouched — the bit-identical-metrics contract.
  const Snapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(TracerTest, DisabledTracerRootSpanIsInert) {
  // Rate 0 is "tracing off": start_root_span must not mint a context at
  // all — the one-branch cost contract bench_replay --overhead-guard times.
  Registry reg;
  Tracer::Params p;
  p.seed = 5;
  p.sample_rate = 0.0;
  Tracer tracer(p, &reg);
  Span root = tracer.start_root_span(SpanKind::kClientFetch);
  EXPECT_FALSE(root.recording());
  EXPECT_FALSE(root.context().valid());
  root.end();
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_TRUE(reg.snapshot().counters.empty());
}

TEST(TracerTest, RecordSpanAdoptsForeignContext) {
  // The receive path: context learned from decoded bytes, span timed by the
  // caller.
  Registry reg;
  Tracer tracer(always_on(), &reg);
  TraceContext foreign;
  foreign.trace_id = 0xABCDEF;
  foreign.span_id = 77;
  foreign.sampled = true;
  tracer.record_span(SpanKind::kFrameRecv, foreign, 100, 250);
  const std::vector<SpanRecord> spans = tracer.recent_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 0xABCDEFu);
  EXPECT_EQ(spans[0].parent_id, 77u);
  EXPECT_EQ(spans[0].duration_ns(), 150u);

  // Unsampled foreign contexts record nothing.
  foreign.sampled = false;
  tracer.record_span(SpanKind::kFrameRecv, foreign, 100, 250);
  EXPECT_EQ(tracer.spans_recorded(), 1u);
}

TEST(TracerTest, CountsAndStageHistogramsLand) {
  Registry reg;
  Tracer tracer(always_on(), &reg);
  for (int i = 0; i < 3; ++i) {
    Span root = tracer.start_root_span(SpanKind::kClientFetch);
    Span child = tracer.start_span(SpanKind::kOriginFetch, root.context());
  }
  const Snapshot snap = reg.snapshot();
  const CounterSample* fetches =
      snap.counter("trace_spans_total", {{"kind", "client_fetch"}});
  ASSERT_NE(fetches, nullptr);
  EXPECT_EQ(fetches->value, 3u);
  const CounterSample* origins =
      snap.counter("trace_spans_total", {{"kind", "origin_fetch"}});
  ASSERT_NE(origins, nullptr);
  EXPECT_EQ(origins->value, 3u);
  std::set<std::string> stages;
  for (const HistogramSample& h : snap.histograms) {
    if (h.name != "trace_stage_seconds") continue;
    EXPECT_EQ(h.count, 3u);
    for (const auto& [k, v] : h.labels) {
      if (k == "stage") stages.insert(v);
    }
  }
  EXPECT_EQ(stages, (std::set<std::string>{"client_fetch", "origin_fetch"}));
}

TEST(TracerTest, RecentRingEvictsOldestAndCounts) {
  Registry reg;
  Tracer::Params p = always_on();
  p.recent_capacity = 4;
  Tracer tracer(p, &reg);
  std::vector<std::uint64_t> trace_ids;
  for (int i = 0; i < 7; ++i) {
    Span root = tracer.start_root_span(SpanKind::kClientFetch);
    trace_ids.push_back(root.context().trace_id);
  }
  EXPECT_EQ(tracer.spans_recorded(), 7u);
  EXPECT_EQ(tracer.spans_evicted(), 3u);
  const std::vector<SpanRecord> spans = tracer.recent_spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first unwrap: the survivors are the last four, in order.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].trace_id, trace_ids[3 + i]) << "slot " << i;
  }
  // max_spans trims from the front (keeps the newest).
  const std::vector<SpanRecord> last_two = tracer.recent_spans(2);
  ASSERT_EQ(last_two.size(), 2u);
  EXPECT_EQ(last_two[1].trace_id, trace_ids.back());
}

TEST(TracerTest, SlowTracesKeepTheSlowestRoots) {
  Registry reg;
  Tracer::Params p = always_on();
  p.slow_trace_k = 2;
  Tracer tracer(p, &reg);
  // Synthesized root spans with controlled durations; record_span with a
  // parent-less sampled context produces parent_id 0 == a root.
  const std::uint64_t durations[] = {50, 500, 10, 300};
  std::uint64_t slowest = 0, second = 0;
  for (std::uint64_t d : durations) {
    TraceContext ctx = tracer.make_root_context();
    tracer.record_span(SpanKind::kClientFetch, ctx, 1000, 1000 + d);
    if (d >= 500) slowest = ctx.trace_id;
    if (d == 300) second = ctx.trace_id;
  }
  const std::vector<Tracer::SlowTrace> slow = tracer.slow_traces();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].trace_id, slowest);
  EXPECT_EQ(slow[0].root_duration_ns, 500u);
  EXPECT_EQ(slow[1].trace_id, second);
  ASSERT_EQ(slow[1].spans.size(), 1u);
}

TEST(TracerTest, ExportsSpanEventsToSink) {
  Registry reg;
  Tracer tracer(always_on(), &reg);
  MemorySink sink;
  tracer.set_sink(&sink);
  Span root = tracer.start_root_span(SpanKind::kClientFetch);
  const std::uint64_t trace_id = root.context().trace_id;
  root.end();
  const auto events = sink.named("span");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].str("service"), "test");
  EXPECT_EQ(events[0].str("kind"), "client_fetch");
  const FieldValue* tid = events[0].field("trace_id");
  ASSERT_NE(tid, nullptr);
  EXPECT_EQ(std::get<std::uint64_t>(*tid), trace_id);
}

TEST(SampleQuantileTest, InterpolatesAndClampsTails) {
  HistogramSample s;
  s.name = "h";
  s.lo = 0.0;
  s.hi = 10.0;
  s.scale = HistScale::kLinear;
  s.buckets = {10, 0, 0, 0, 0, 0, 0, 0, 0, 10};  // mass at both ends
  s.count = 20;
  EXPECT_EQ(sample_quantile(s, 0.0), 0.0);
  // Median falls between the two occupied buckets; anything in (1, 9) is a
  // defensible estimate, and the interpolation must stay inside the domain.
  const double p50 = sample_quantile(s, 0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_LE(sample_quantile(s, 1.0), 10.0);

  // Under/overflow mass resolves to the domain edges.
  HistogramSample t;
  t.lo = 1.0;
  t.hi = 2.0;
  t.buckets = {0, 0};
  t.underflow = 5;
  t.overflow = 5;
  t.count = 10;
  EXPECT_EQ(sample_quantile(t, 0.1), 1.0);
  EXPECT_EQ(sample_quantile(t, 0.9), 2.0);

  HistogramSample empty;
  empty.buckets = {0};
  EXPECT_EQ(sample_quantile(empty, 0.5), 0.0);
}

TEST(SampleQuantileTest, MonotoneInQ) {
  HistogramSample s;
  s.lo = 0.0;
  s.hi = 8.0;
  s.buckets = {1, 3, 7, 2, 5, 0, 4, 1};
  for (const std::uint64_t b : s.buckets) s.count += b;
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = sample_quantile(s, q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(WithLatencyQuantilesTest, DerivesSortedMonotoneGauges) {
  Registry reg;
  Tracer tracer(always_on(), &reg);
  TraceContext ctx = tracer.make_root_context();
  // A spread of durations so the quantiles differ.
  for (std::uint64_t us = 1; us <= 100; ++us) {
    tracer.record_span(SpanKind::kPeerTransfer, ctx, 0, us * 1000);
  }
  const Snapshot snap = with_latency_quantiles(reg.snapshot());
  std::vector<double> qs;
  for (const GaugeSample& g : snap.gauges) {
    if (g.name != "latency_quantile_seconds") continue;
    std::string q, stage;
    for (const auto& [k, v] : g.labels) {
      if (k == "q") q = v;
      if (k == "stage") stage = v;
    }
    EXPECT_EQ(stage, "peer_transfer");
    qs.push_back(g.value);
  }
  // Labels sort "p50" < "p95" < "p999" < "p99" lexically; collect by name
  // instead of relying on order for the monotonicity check.
  ASSERT_EQ(qs.size(), 4u);
  for (const double v : qs) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);  // all observations were under a millisecond * 100
  }
  // The snapshot stays sorted by (name, labels) after the append.
  for (std::size_t i = 1; i < snap.gauges.size(); ++i) {
    const auto& a = snap.gauges[i - 1];
    const auto& b = snap.gauges[i];
    EXPECT_LE(std::tie(a.name, a.labels), std::tie(b.name, b.labels));
  }
}

TEST(SortSnapshotTest, OrdersByNameThenLabels) {
  Registry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha", {{"x", "2"}}).inc();
  reg.counter("alpha", {{"x", "1"}}).inc();
  reg.gauge("mid").set(1.0);
  reg.gauge("aaa").set(2.0);
  const Snapshot snap = reg.snapshot();  // snapshot() sorts
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].labels, (Labels{{"x", "1"}}));
  EXPECT_EQ(snap.counters[1].labels, (Labels{{"x", "2"}}));
  EXPECT_EQ(snap.counters[2].name, "zeta");
  EXPECT_EQ(snap.gauges[0].name, "aaa");
  EXPECT_EQ(snap.gauges[1].name, "mid");
}

}  // namespace
}  // namespace baps::obs
