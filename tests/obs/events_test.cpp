#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/registry.hpp"
#include "runtime/system.hpp"

namespace baps::obs {
namespace {

TEST(EventTest, FieldAccessorsAndJson) {
  const Event e = Event("fetch")
                      .with("client", std::string("client0"))
                      .with("verified", true)
                      .with("url", std::uint64_t{77});
  EXPECT_EQ(e.str("client"), "client0");
  EXPECT_EQ(e.str("missing"), "");
  ASSERT_NE(e.field("verified"), nullptr);
  EXPECT_TRUE(std::get<bool>(*e.field("verified")));

  const JsonValue j = e.to_json();
  EXPECT_EQ(j.at("event").as_string(), "fetch");
  EXPECT_EQ(j.at("url").as_uint(), 77u);
}

TEST(EventTest, JsonlSinkWritesOneObjectPerLine) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.emit(Event("a").with("n", std::int64_t{1}));
  sink.emit(Event("b").with("s", std::string("x")));
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    std::string error;
    ASSERT_TRUE(json_parse(line, &error).has_value()) << error;
  }
  EXPECT_EQ(lines, 2u);
}

// --- BapsSystem event stream ----------------------------------------------

class SystemEventsTest : public ::testing::Test {
 protected:
  // client0 seeds kUrlX / kUrlY, then filler traffic evicts both from the
  // proxy cache so later cross-client fetches must go to the peer. The sink
  // attaches only after this setup: the audited stream holds exactly the
  // browses each test performs.
  SystemEventsTest() : system_(params()) {
    system_.browse(0, kUrlX);
    system_.browse(0, kUrlY);
    for (int i = 0; i < 64; ++i) {
      system_.browse(2, "http://filler.example/" + std::to_string(i));
    }
    system_.set_event_sink(&sink_);
  }

  static runtime::BapsSystem::Params params() {
    runtime::BapsSystem::Params p;
    p.num_clients = 3;
    p.proxy_cache_bytes = 8 << 10;  // small enough to evict under pressure
    p.browser_cache_bytes = 16 << 10;
    p.seed = 42;
    return p;
  }

  static constexpr const char* kUrlX = "http://a.example/x";
  static constexpr const char* kUrlY = "http://a.example/y";

  runtime::BapsSystem system_;
  MemorySink sink_;
};

TEST(MemorySinkTest, BoundedCapacityDropsNewestAndCounts) {
  Registry::global().counter("events_dropped_total").reset();
  MemorySink sink(/*capacity=*/3);
  EXPECT_EQ(sink.capacity(), 3u);
  for (int i = 0; i < 5; ++i) {
    sink.emit(Event("e").with("i", std::uint64_t(i)));
  }
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 2u);
  // Oldest retained: the buffer is evidence of how the run started.
  const auto events = sink.events();
  EXPECT_EQ(std::get<std::uint64_t>(*events[0].field("i")), 0u);
  EXPECT_EQ(std::get<std::uint64_t>(*events[2].field("i")), 2u);
  // The truncation is also visible in the global registry.
  const Snapshot snap = Registry::global().snapshot();
  const CounterSample* dropped = snap.counter("events_dropped_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value, 2u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(MemorySinkTest, ZeroCapacityClampsToOne) {
  MemorySink sink(0);
  EXPECT_EQ(sink.capacity(), 1u);
  sink.emit(Event("a"));
  sink.emit(Event("b"));
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.dropped(), 1u);
}

TEST(JsonlSinkTest, FlushesOnDestructionAndOnRequest) {
  std::ostringstream os;
  {
    JsonlSink sink(os);
    sink.emit(Event("first"));
    sink.flush();
    EXPECT_NE(os.str().find("first"), std::string::npos);
    sink.emit(Event("second"));
  }  // destructor flushes the second line
  const std::string out = os.str();
  EXPECT_NE(out.find("second"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST_F(SystemEventsTest, OneFetchEventPerBrowseWithOutcome) {
  ASSERT_TRUE(system_.client_has(0, kUrlX));
  system_.browse(0, kUrlX);  // local-browser hit
  const auto peer = system_.browse(1, kUrlX);
  EXPECT_EQ(peer.source, runtime::FetchOutcome::Source::kRemoteBrowser);
  system_.browse(1, "http://fresh.example/z");  // origin fetch

  const auto fetches = sink_.named("fetch");
  ASSERT_EQ(fetches.size(), 3u);
  EXPECT_EQ(fetches[0].str("source"), "local-browser");
  EXPECT_EQ(fetches[1].str("source"), "remote-browser");
  EXPECT_EQ(fetches[2].str("source"), "origin-server");
  for (const auto& f : fetches) {
    EXPECT_TRUE(std::get<bool>(*f.field("verified")));
    EXPECT_FALSE(std::get<bool>(*f.field("tamper_recovered")));
    EXPECT_FALSE(std::get<bool>(*f.field("false_forward")));
  }
  EXPECT_EQ(fetches[0].str("client"), "client0");
  EXPECT_EQ(fetches[1].str("client"), "client1");
}

TEST_F(SystemEventsTest, MessageEventsMirrorTheTrace) {
  const std::size_t already_logged = system_.messages().log().size();
  system_.browse(1, kUrlX);
  const auto messages = sink_.named("message");
  ASSERT_EQ(messages.size(),
            system_.messages().log().size() - already_logged);
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const auto& rec = system_.messages().log()[already_logged + i];
    EXPECT_EQ(messages[i].str("kind"), runtime::msg_kind_name(rec.kind));
    EXPECT_EQ(messages[i].str("from"), rec.from);
    EXPECT_EQ(messages[i].str("to"), rec.to);
  }
}

TEST_F(SystemEventsTest, TamperedPeerDeliveryIsFlaggedInTheStream) {
  system_.set_tampering(0, true);
  const auto out = system_.browse(1, kUrlX);
  EXPECT_TRUE(out.tamper_recovered);

  const auto fetches = sink_.named("fetch");
  ASSERT_EQ(fetches.size(), 1u);
  EXPECT_TRUE(std::get<bool>(*fetches[0].field("tamper_recovered")));
  EXPECT_TRUE(std::get<bool>(*fetches[0].field("verified")));
  EXPECT_EQ(fetches[0].str("source"), "origin-server");
}

TEST_F(SystemEventsTest, FalseForwardIsFlaggedInTheStream) {
  system_.drop_silently(0, kUrlX);
  const auto out = system_.browse(1, kUrlX);
  EXPECT_EQ(out.source, runtime::FetchOutcome::Source::kOrigin);

  const auto fetches = sink_.named("fetch");
  ASSERT_EQ(fetches.size(), 1u);
  EXPECT_TRUE(std::get<bool>(*fetches[0].field("false_forward")));
}

// The §6.2 anonymity property, audited on the emitted event stream: a
// peer-fetch names only the proxy and the holder. No field of any peer-fetch
// event may reference the requester.
TEST_F(SystemEventsTest, PeerFetchEventsCarryNoRequesterIdentity) {
  system_.browse(1, kUrlX);  // requester: client1, holder: client0
  system_.browse(2, kUrlY);  // requester: client2, holder: client0

  std::size_t peer_fetches = 0;
  for (const auto& m : sink_.named("message")) {
    if (m.str("kind") != "peer-fetch") continue;
    ++peer_fetches;
    EXPECT_EQ(m.str("from"), "proxy");
    EXPECT_EQ(m.str("to"), "client0");  // the holder
    // Exactly the envelope fields — nothing that could smuggle the
    // requester in.
    ASSERT_EQ(m.fields.size(), 4u);
    EXPECT_EQ(m.fields[0].first, "kind");
    EXPECT_EQ(m.fields[1].first, "from");
    EXPECT_EQ(m.fields[2].first, "to");
    EXPECT_EQ(m.fields[3].first, "url");
    for (const auto& [key, value] : m.fields) {
      if (const auto* s = std::get_if<std::string>(&value)) {
        EXPECT_NE(*s, "client1") << "peer-fetch leaked the requester";
        EXPECT_NE(*s, "client2") << "peer-fetch leaked the requester";
      }
    }
  }
  EXPECT_EQ(peer_fetches, 2u);
}

TEST_F(SystemEventsTest, DetachingTheSinkStopsTheStream) {
  system_.browse(0, kUrlX);
  const std::size_t before = sink_.size();
  system_.set_event_sink(nullptr);
  system_.browse(0, "http://fresh.example/z");
  EXPECT_EQ(sink_.size(), before);
}

}  // namespace
}  // namespace baps::obs
