#include "obs/snapshot_window.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/registry.hpp"

namespace baps::obs {
namespace {

Snapshot snap_with(const std::string& name, std::uint64_t value) {
  Snapshot s;
  s.counters.push_back({name, {}, value});
  return s;
}

double rate_of(const JsonValue& window, const std::string& name) {
  for (const JsonValue& r : window.at("rates").as_array()) {
    if (r.at("name").as_string() == name) {
      return r.at("per_second").as_double();
    }
  }
  ADD_FAILURE() << "no rate entry for " << name;
  return -1.0;
}

TEST(SnapshotWindowTest, WraparoundRatesOverTheRetainedSpanOnly) {
  SnapshotWindow window(3);
  // Five captures, one per second, counter climbing by 10 each: after
  // wraparound only t=3..5 remain, so the rate is over that 2s span.
  for (std::uint64_t i = 1; i <= 5; ++i) {
    window.capture(snap_with("requests_total", 10 * i),
                   static_cast<double>(i));
  }
  EXPECT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window.span_seconds(), 2.0);
  const JsonValue w = window.window_json();
  EXPECT_DOUBLE_EQ(w.at("window_seconds").as_double(), 2.0);
  EXPECT_EQ(w.at("captures").as_uint(), 3u);
  EXPECT_DOUBLE_EQ(rate_of(w, "requests_total"), 10.0);  // (50-30)/2
}

TEST(SnapshotWindowTest, IntervalShorterThanUpdateCadenceReadsZeroRate) {
  SnapshotWindow window(8);
  // The counter updates slower than the capture cadence: consecutive
  // captures see the same value and the rate honestly reads 0.
  window.capture(snap_with("slow_total", 7), 1.0);
  window.capture(snap_with("slow_total", 7), 1.01);
  window.capture(snap_with("slow_total", 7), 1.02);
  const JsonValue w = window.window_json();
  EXPECT_DOUBLE_EQ(rate_of(w, "slow_total"), 0.0);
}

TEST(SnapshotWindowTest, ZeroSpanReportsNoRates) {
  SnapshotWindow window(4);
  window.capture(snap_with("x_total", 1), 2.0);
  window.capture(snap_with("x_total", 5), 2.0);  // same timestamp
  const JsonValue w = window.window_json();
  EXPECT_DOUBLE_EQ(w.at("window_seconds").as_double(), 0.0);
  EXPECT_TRUE(w.at("rates").as_array().empty());
}

TEST(SnapshotWindowTest, CounterResetMidWindowClampsInsteadOfGoingNegative) {
  SnapshotWindow window(4);
  window.capture(snap_with("resetting_total", 100), 1.0);
  window.capture(snap_with("resetting_total", 150), 2.0);
  // Reset between captures: newest < oldest. The window clamps the delta to
  // zero; the next wraparound re-baselines.
  window.capture(snap_with("resetting_total", 3), 3.0);
  EXPECT_DOUBLE_EQ(rate_of(window.window_json(), "resetting_total"), 0.0);
  // Once the pre-reset capture ages out, rates resume from the new baseline.
  window.capture(snap_with("resetting_total", 23), 4.0);
  window.capture(snap_with("resetting_total", 43), 5.0);
  window.capture(snap_with("resetting_total", 63), 6.0);
  window.capture(snap_with("resetting_total", 83), 7.0);
  EXPECT_DOUBLE_EQ(rate_of(window.window_json(), "resetting_total"), 20.0);
}

TEST(SnapshotWindowTest, InstrumentAppearingMidWindowDeltasAgainstZero) {
  SnapshotWindow window(4);
  window.capture(snap_with("old_total", 5), 1.0);
  Snapshot both = snap_with("new_total", 12);
  both.counters.push_back({"old_total", {}, 5});
  sort_snapshot(both);
  window.capture(std::move(both), 3.0);
  // new_total was absent from the oldest capture: its whole value is the
  // window delta.
  EXPECT_DOUBLE_EQ(rate_of(window.window_json(), "new_total"), 6.0);
}

}  // namespace
}  // namespace baps::obs
