#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace baps::obs {
namespace {

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(JsonValue(std::uint64_t{18446744073709551615ULL}).dump(),
            "18446744073709551615");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj;
  obj.set("zeta", JsonValue(1));
  obj.set("alpha", JsonValue(2));
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2}");
}

TEST(JsonTest, SetReplacesExistingKey) {
  JsonValue obj;
  obj.set("k", JsonValue(1));
  obj.set("k", JsonValue(2));
  EXPECT_EQ(obj.dump(), "{\"k\":2}");
  ASSERT_EQ(obj.as_object().size(), 1u);
}

TEST(JsonTest, ParseRoundTripsStructure) {
  JsonValue doc;
  doc.set("name", JsonValue("sweep"));
  doc.set("count", JsonValue(std::uint64_t{12345678901234567ULL}));
  doc.set("ratio", JsonValue(0.1));
  doc.set("list", JsonValue(JsonArray{JsonValue(1), JsonValue("x"),
                                      JsonValue(nullptr)}));
  const std::string text = doc.dump(2);

  std::string error;
  const auto parsed = json_parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->at("name").as_string(), "sweep");
  EXPECT_EQ(parsed->at("count").as_uint(), 12345678901234567ULL);
  // %.17g guarantees doubles survive a round trip bit-exactly.
  EXPECT_EQ(parsed->at("ratio").as_double(), 0.1);
  ASSERT_EQ(parsed->at("list").as_array().size(), 3u);
  EXPECT_TRUE(parsed->at("list").as_array()[2].is_null());
  // Re-dumping the parsed value reproduces the original text.
  EXPECT_EQ(parsed->dump(2), text);
}

TEST(JsonTest, ParseHandlesEscapesAndUnicode) {
  const auto v = json_parse(R"({"s": "a\"\\\n\tAé"})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at("s").as_string(), "a\"\\\n\tA\xc3\xa9");
}

TEST(JsonTest, ParseNegativeAndOverflowingIntegers) {
  const auto v =
      json_parse(R"({"neg": -9223372036854775808, "big": 1e300})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at("neg").as_int(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_DOUBLE_EQ(v->at("big").as_double(), 1e300);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json_parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(json_parse("", &error).has_value());
  EXPECT_FALSE(json_parse("{\"a\": 1,}", &error).has_value());
  EXPECT_FALSE(json_parse("[1 2]", &error).has_value());
  EXPECT_FALSE(json_parse("nulL", &error).has_value());
  EXPECT_FALSE(json_parse("{} trailing", &error).has_value());
}

TEST(JsonTest, FindReturnsNullForMissingKey) {
  JsonValue obj;
  obj.set("present", JsonValue(1));
  EXPECT_NE(obj.find("present"), nullptr);
  EXPECT_EQ(obj.find("absent"), nullptr);
}

}  // namespace
}  // namespace baps::obs
