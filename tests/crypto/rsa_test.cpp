#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace baps::crypto {
namespace {

TEST(PrimalityTest, KnownSmallPrimesAndComposites) {
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 7919ULL, 1000000007ULL}) {
    EXPECT_TRUE(is_probable_prime(BigUInt(p), 20, 1)) << p;
  }
  for (std::uint64_t c : {0ULL, 1ULL, 4ULL, 100ULL, 7917ULL, 1000000001ULL}) {
    EXPECT_FALSE(is_probable_prime(BigUInt(c), 20, 1)) << c;
  }
}

TEST(PrimalityTest, CarmichaelNumbersAreRejected) {
  // Fermat pseudoprimes to every base; Miller–Rabin must still reject.
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 41041ULL, 825265ULL}) {
    EXPECT_FALSE(is_probable_prime(BigUInt(c), 20, 7)) << c;
  }
}

TEST(PrimeGenerationTest, HasExactBitLengthAndIsOdd) {
  for (std::size_t bits : {64u, 96u, 128u}) {
    const BigUInt p = generate_prime(bits, 42);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, 30, 99));
  }
}

TEST(PrimeGenerationTest, DeterministicInSeed) {
  EXPECT_EQ(generate_prime(64, 5), generate_prime(64, 5));
  EXPECT_NE(generate_prime(64, 5), generate_prime(64, 6));
}

class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    keys_ = new RsaKeyPair(generate_rsa_keypair(256, 2024));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }
  static RsaKeyPair* keys_;
};
RsaKeyPair* RsaTest::keys_ = nullptr;

TEST_F(RsaTest, KeypairIsDeterministicInSeed) {
  const RsaKeyPair again = generate_rsa_keypair(256, 2024);
  EXPECT_EQ(again.pub.n, keys_->pub.n);
  EXPECT_EQ(again.priv.d, keys_->priv.d);
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const Md5Digest d = md5("the quick brown fox");
  const BigUInt sig = rsa_sign_digest(d, keys_->priv);
  EXPECT_TRUE(rsa_verify_digest(d, sig, keys_->pub));
}

TEST_F(RsaTest, VerifyRejectsWrongDigest) {
  const BigUInt sig = rsa_sign_digest(md5("original"), keys_->priv);
  EXPECT_FALSE(rsa_verify_digest(md5("tampered"), sig, keys_->pub));
}

TEST_F(RsaTest, VerifyRejectsMangledSignature) {
  const Md5Digest d = md5("payload");
  BigUInt sig = rsa_sign_digest(d, keys_->priv);
  sig = sig + BigUInt(1);
  EXPECT_FALSE(rsa_verify_digest(d, sig, keys_->pub));
}

TEST_F(RsaTest, VerifyRejectsSignatureFromOtherKey) {
  const RsaKeyPair other = generate_rsa_keypair(256, 777);
  const Md5Digest d = md5("payload");
  const BigUInt sig = rsa_sign_digest(d, other.priv);
  EXPECT_FALSE(rsa_verify_digest(d, sig, keys_->pub));
}

TEST_F(RsaTest, VerifyRejectsOversizedSignature) {
  const Md5Digest d = md5("payload");
  EXPECT_FALSE(rsa_verify_digest(d, keys_->pub.n + BigUInt(1), keys_->pub));
}

TEST_F(RsaTest, TextbookIdentityHolds) {
  // m^(e*d) ≡ m (mod n) for m below n.
  const BigUInt m(123456789ULL);
  const BigUInt c = BigUInt::mod_pow(m, keys_->pub.e, keys_->pub.n);
  EXPECT_EQ(BigUInt::mod_pow(c, keys_->priv.d, keys_->priv.n), m);
}

TEST(RsaKeygenTest, RejectsTooSmallModulus) {
  EXPECT_THROW(generate_rsa_keypair(128, 1), baps::InvariantError);
}

}  // namespace
}  // namespace baps::crypto
