#include "crypto/md5.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/assert.hpp"

namespace baps::crypto {
namespace {

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(md5("").hex(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5("a").hex(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5("abc").hex(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5("message digest").hex(), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5("abcdefghijklmnopqrstuvwxyz").hex(),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      md5("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")
          .hex(),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5("1234567890123456789012345678901234567890123456789012345678"
                "9012345678901234567890")
                .hex(),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'x');
  Md5 h;
  // Deliberately awkward chunk sizes to cross block boundaries.
  std::size_t off = 0;
  for (std::size_t chunk : {1u, 63u, 64u, 65u, 7u, 128u}) {
    const std::size_t n = std::min(chunk, msg.size() - off);
    h.update(std::string_view(msg).substr(off, n));
    off += n;
  }
  h.update(std::string_view(msg).substr(off));
  EXPECT_EQ(h.finish().hex(), md5(msg).hex());
}

TEST(Md5Test, AllLengthsZeroTo130AgreeWithPaddingRule) {
  // Property: for every message length around the 64-byte block boundary the
  // incremental digest (byte at a time) equals the one-shot digest.
  for (std::size_t len = 0; len <= 130; ++len) {
    std::string msg(len, static_cast<char>('A' + (len % 26)));
    Md5 h;
    for (char c : msg) h.update(std::string_view(&c, 1));
    EXPECT_EQ(h.finish(), md5(msg)) << "length " << len;
  }
}

TEST(Md5Test, DigestDistinguishesNearbyInputs) {
  EXPECT_NE(md5("hello world"), md5("hello worle"));
  EXPECT_NE(md5(""), md5(std::string(1, '\0')));
}

TEST(Md5Test, FinishTwiceThrows) {
  Md5 h;
  h.update("abc");
  (void)h.finish();
  EXPECT_THROW(h.finish(), InvariantError);
}

TEST(Md5Test, UpdateAfterFinishThrows) {
  Md5 h;
  (void)h.finish();
  EXPECT_THROW(h.update("x"), InvariantError);
}

TEST(Md5DigestTest, Prefix64IsLittleEndianOfFirstEightBytes) {
  Md5Digest d;
  for (std::size_t i = 0; i < d.bytes.size(); ++i) {
    d.bytes[i] = static_cast<std::uint8_t>(i + 1);
  }
  EXPECT_EQ(d.prefix64(), 0x0807060504030201ULL);
}

TEST(Md5DigestTest, UsableAsUnorderedMapKey) {
  std::unordered_map<Md5Digest, int> m;
  m[md5("a")] = 1;
  m[md5("b")] = 2;
  EXPECT_EQ(m.at(md5("a")), 1);
  EXPECT_EQ(m.at(md5("b")), 2);
}

}  // namespace
}  // namespace baps::crypto
