#include "crypto/biguint.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::crypto {
namespace {

TEST(BigUIntTest, ZeroProperties) {
  BigUInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_TRUE(z.to_bytes().empty());
}

TEST(BigUIntTest, U64RoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 255ULL, 0x123456789abcdefULL, ~0ULL}) {
    EXPECT_EQ(BigUInt(v).to_u64(), v);
  }
}

TEST(BigUIntTest, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef";
  EXPECT_EQ(BigUInt::from_hex(hex).to_hex(), hex);
}

TEST(BigUIntTest, FromBytesBigEndian) {
  const std::vector<std::uint8_t> bytes = {0x01, 0x02, 0x03};
  EXPECT_EQ(BigUInt::from_bytes(bytes).to_u64(), 0x010203u);
  EXPECT_EQ(BigUInt::from_bytes(bytes).to_bytes(), bytes);
}

TEST(BigUIntTest, ArithmeticAgainstU64Reference) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng() >> 33;  // keep products in range
    const std::uint64_t b = rng() >> 33;
    EXPECT_EQ((BigUInt(a) + BigUInt(b)).to_u64(), a + b);
    EXPECT_EQ((BigUInt(std::max(a, b)) - BigUInt(std::min(a, b))).to_u64(),
              std::max(a, b) - std::min(a, b));
    EXPECT_EQ((BigUInt(a) * BigUInt(b)).to_u64(), a * b);
    if (b != 0) {
      EXPECT_EQ((BigUInt(a) / BigUInt(b)).to_u64(), a / b);
      EXPECT_EQ((BigUInt(a) % BigUInt(b)).to_u64(), a % b);
    }
  }
}

TEST(BigUIntTest, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt(1) - BigUInt(2), baps::InvariantError);
}

TEST(BigUIntTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigUInt::divmod(BigUInt(1), BigUInt()), baps::InvariantError);
}

TEST(BigUIntTest, DivmodIdentityHoldsOnWideValues) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 200; ++i) {
    // Build a ~192-bit numerator and ~96-bit denominator.
    BigUInt num = (BigUInt(rng()) * BigUInt(rng())) * BigUInt(rng());
    BigUInt den = BigUInt(rng()) * BigUInt(rng() | 1);
    auto [q, r] = BigUInt::divmod(num, den);
    EXPECT_TRUE(r < den);
    EXPECT_EQ(q * den + r, num);
  }
}

TEST(BigUIntTest, ShiftsAreInverse) {
  const BigUInt x = BigUInt::from_hex("123456789abcdef0123456789");
  for (std::size_t s : {1u, 7u, 32u, 33u, 95u}) {
    EXPECT_EQ(x.shifted_left(s).shifted_right(s), x) << "shift " << s;
  }
}

TEST(BigUIntTest, ShiftLeftMultipliesByPowerOfTwo) {
  EXPECT_EQ(BigUInt(5).shifted_left(3).to_u64(), 40u);
  EXPECT_EQ(BigUInt(1).shifted_left(100).shifted_right(100).to_u64(), 1u);
}

TEST(BigUIntTest, ComparisonOrdersByValue) {
  EXPECT_TRUE(BigUInt(3) < BigUInt(5));
  EXPECT_TRUE(BigUInt::from_hex("ffffffffffffffff") <
              BigUInt::from_hex("10000000000000000"));
  EXPECT_TRUE(BigUInt() < BigUInt(1));
}

TEST(BigUIntTest, ModPowSmallCases) {
  // 4^13 mod 497 = 445 (classic textbook example).
  EXPECT_EQ(BigUInt::mod_pow(BigUInt(4), BigUInt(13), BigUInt(497)).to_u64(),
            445u);
  EXPECT_EQ(BigUInt::mod_pow(BigUInt(2), BigUInt(10), BigUInt(1000)).to_u64(),
            24u);
  EXPECT_TRUE(
      BigUInt::mod_pow(BigUInt(7), BigUInt(0), BigUInt(13)) == BigUInt(1));
}

TEST(BigUIntTest, ModPowMatchesFermatOnPrimeModulus) {
  // a^(p-1) ≡ 1 mod p for prime p and a not divisible by p.
  const BigUInt p(1000000007ULL);
  Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) {
    const BigUInt a(rng.below(1000000006ULL) + 1);
    EXPECT_EQ(BigUInt::mod_pow(a, p - BigUInt(1), p), BigUInt(1));
  }
}

TEST(BigUIntTest, GcdMatchesReference) {
  EXPECT_EQ(BigUInt::gcd(BigUInt(48), BigUInt(18)).to_u64(), 6u);
  EXPECT_EQ(BigUInt::gcd(BigUInt(17), BigUInt(13)).to_u64(), 1u);
  EXPECT_EQ(BigUInt::gcd(BigUInt(), BigUInt(5)).to_u64(), 5u);
}

TEST(BigUIntTest, ModInverseProducesUnitProduct) {
  Xoshiro256 rng(41);
  const BigUInt m(1000000007ULL);  // prime modulus: everything invertible
  for (int i = 0; i < 100; ++i) {
    const BigUInt a(rng.below(1000000006ULL) + 1);
    const BigUInt inv = BigUInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigUInt(1));
  }
}

TEST(BigUIntTest, ModInverseOfNonInvertibleIsZero) {
  EXPECT_TRUE(BigUInt::mod_inverse(BigUInt(6), BigUInt(9)).is_zero());
}

}  // namespace
}  // namespace baps::crypto
