#include "crypto/watermark.hpp"

#include <gtest/gtest.h>

namespace baps::crypto {
namespace {

class WatermarkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    keys_ = new RsaKeyPair(generate_rsa_keypair(256, 11));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }
  static RsaKeyPair* keys_;
};
RsaKeyPair* WatermarkTest::keys_ = nullptr;

TEST_F(WatermarkTest, IntactDocumentVerifies) {
  const std::string body = "<html>cached page body</html>";
  const Watermark w = issue_watermark(body, keys_->priv);
  EXPECT_TRUE(verify_watermark(body, w, keys_->pub));
}

TEST_F(WatermarkTest, TamperedDocumentIsDetected) {
  const std::string body = "<html>cached page body</html>";
  const Watermark w = issue_watermark(body, keys_->priv);
  EXPECT_FALSE(verify_watermark("<html>cached page bodY</html>", w,
                                keys_->pub));
}

TEST_F(WatermarkTest, SingleBitFlipAnywhereIsDetected) {
  const std::string body = "peer-to-peer shared document";
  const Watermark w = issue_watermark(body, keys_->priv);
  for (std::size_t i = 0; i < body.size(); ++i) {
    std::string mutated = body;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    EXPECT_FALSE(verify_watermark(mutated, w, keys_->pub)) << "byte " << i;
  }
}

TEST_F(WatermarkTest, ClientCannotForgeWithoutPrivateKey) {
  // A malicious client who alters the body and re-signs with its *own* key
  // produces a watermark the proxy's public key rejects.
  const RsaKeyPair mallory = generate_rsa_keypair(256, 666);
  const Watermark forged = issue_watermark("evil body", mallory.priv);
  EXPECT_FALSE(verify_watermark("evil body", forged, keys_->pub));
}

TEST_F(WatermarkTest, WatermarkIsDeterministicPerDocument) {
  const Watermark a = issue_watermark("same doc", keys_->priv);
  const Watermark b = issue_watermark("same doc", keys_->priv);
  EXPECT_EQ(a, b);
}

TEST_F(WatermarkTest, EmptyDocumentStillProtected) {
  const Watermark w = issue_watermark("", keys_->priv);
  EXPECT_TRUE(verify_watermark("", w, keys_->pub));
  EXPECT_FALSE(verify_watermark("x", w, keys_->pub));
}

}  // namespace
}  // namespace baps::crypto
