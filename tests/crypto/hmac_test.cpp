#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include <string>

namespace baps::crypto {
namespace {

// RFC 2202 HMAC-MD5 test vectors.
TEST(HmacMd5Test, Rfc2202Vector1) {
  const std::string key(16, '\x0b');
  EXPECT_EQ(hmac_md5(key, "Hi There").hex(),
            "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(HmacMd5Test, Rfc2202Vector2) {
  EXPECT_EQ(hmac_md5("Jefe", "what do ya want for nothing?").hex(),
            "750c783e6ab0b503eaa86e310a5db738");
}

TEST(HmacMd5Test, Rfc2202Vector3) {
  const std::string key(16, '\xaa');
  const std::string msg(50, '\xdd');
  EXPECT_EQ(hmac_md5(key, msg).hex(), "56be34521d144c88dbb8c733f0e8b3f6");
}

TEST(HmacMd5Test, Rfc2202Vector6LongKey) {
  // 80-byte key: exercises the hash-the-key path.
  const std::string key(80, '\xaa');
  EXPECT_EQ(hmac_md5(key, "Test Using Larger Than Block-Size Key - Hash Key "
                          "First")
                .hex(),
            "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd");
}

TEST(HmacMd5Test, KeyAndMessageBothMatter) {
  EXPECT_NE(hmac_md5("k1", "msg"), hmac_md5("k2", "msg"));
  EXPECT_NE(hmac_md5("k1", "msg"), hmac_md5("k1", "msh"));
}

TEST(HmacMd5Test, HmacDiffersFromPlainHash) {
  EXPECT_NE(hmac_md5("key", "message"), md5("message"));
}

TEST(DigestEqualTest, ComparesFullWidth) {
  Md5Digest a = md5("x");
  Md5Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b.bytes[15] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
  b = a;
  b.bytes[0] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace baps::crypto
