#include "crypto/xtea.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace baps::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(XteaBlockTest, EncryptDecryptRoundTrip) {
  const XteaKey key = {0x01234567, 0x89abcdef, 0xfedcba98, 0x76543210};
  std::array<std::uint32_t, 2> v = {0xdeadbeef, 0xcafebabe};
  const auto original = v;
  xtea_encrypt_block(v, key);
  EXPECT_NE(v, original);
  xtea_decrypt_block(v, key);
  EXPECT_EQ(v, original);
}

TEST(XteaBlockTest, DifferentKeysGiveDifferentCiphertext) {
  std::array<std::uint32_t, 2> a = {1, 2}, b = {1, 2};
  xtea_encrypt_block(a, {1, 2, 3, 4});
  xtea_encrypt_block(b, {1, 2, 3, 5});
  EXPECT_NE(a, b);
}

TEST(XteaCtrTest, RoundTripsArbitraryLengths) {
  const XteaKey key = xtea_key_from_bytes(bytes_of("shared secret key"));
  baps::Xoshiro256 rng(404);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 100u, 4096u}) {
    std::vector<std::uint8_t> msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng());
    const auto ct = xtea_ctr_crypt(msg, key, 99);
    const auto pt = xtea_ctr_crypt(ct, key, 99);
    EXPECT_EQ(pt, msg) << "length " << len;
    if (len >= 8) {
      EXPECT_NE(ct, msg);
    }
  }
}

TEST(XteaCtrTest, DifferentNoncesProduceDifferentStreams) {
  const XteaKey key = xtea_key_from_bytes(bytes_of("k"));
  const auto msg = bytes_of("sixteen byte msg");
  EXPECT_NE(xtea_ctr_crypt(msg, key, 1), xtea_ctr_crypt(msg, key, 2));
}

TEST(XteaCtrTest, WrongKeyDoesNotDecrypt) {
  const auto msg = bytes_of("confidential document body");
  const auto ct = xtea_ctr_crypt(msg, xtea_key_from_bytes(bytes_of("right")), 5);
  const auto pt = xtea_ctr_crypt(ct, xtea_key_from_bytes(bytes_of("wrong")), 5);
  EXPECT_NE(pt, msg);
}

TEST(XteaKeyDerivationTest, FoldsLongInputs) {
  const XteaKey a = xtea_key_from_bytes(bytes_of("aaaaaaaaaaaaaaaaaaaaaaaa"));
  const XteaKey b = xtea_key_from_bytes(bytes_of("aaaaaaaaaaaaaaaaaaaaaaab"));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace baps::crypto
