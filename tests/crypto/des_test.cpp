#include "crypto/des.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::crypto {
namespace {

// The classic worked example (Ronald Rivest's / FIPS validation vector).
TEST(DesBlockTest, KnownAnswerVector) {
  const DesKeySchedule ks(0x133457799BBCDFF1ULL);
  EXPECT_EQ(des_encrypt_block(0x0123456789ABCDEFULL, ks),
            0x85E813540F0AB405ULL);
  EXPECT_EQ(des_decrypt_block(0x85E813540F0AB405ULL, ks),
            0x0123456789ABCDEFULL);
}

// Second published vector ("Applied Cryptography" validation pair).
TEST(DesBlockTest, SecondKnownAnswerVector) {
  const DesKeySchedule ks(0x0E329232EA6D0D73ULL);
  EXPECT_EQ(des_encrypt_block(0x8787878787878787ULL, ks), 0x0ULL);
  EXPECT_EQ(des_decrypt_block(0x0ULL, ks), 0x8787878787878787ULL);
}

TEST(DesBlockTest, EncryptDecryptRoundTripsRandomBlocks) {
  baps::Xoshiro256 rng(9);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng();
    const std::uint64_t pt = rng();
    const DesKeySchedule ks(key);
    EXPECT_EQ(des_decrypt_block(des_encrypt_block(pt, ks), ks), pt);
  }
}

TEST(DesBlockTest, ParityBitsDoNotAffectTheCipher) {
  // PC-1 drops bits 8,16,...,64; flipping them must not change the result.
  const std::uint64_t key = 0x133457799BBCDFF1ULL;
  const std::uint64_t parity_mask = 0x0101010101010101ULL;
  const DesKeySchedule a(key);
  const DesKeySchedule b(key ^ parity_mask);
  EXPECT_EQ(des_encrypt_block(0xDEADBEEFCAFEF00DULL, a),
            des_encrypt_block(0xDEADBEEFCAFEF00DULL, b));
}

TEST(DesBlockTest, ComplementationProperty) {
  // DES's famous symmetry: E_{~k}(~p) == ~E_k(p).
  const std::uint64_t key = 0x0123456789ABCDEFULL;
  const std::uint64_t pt = 0x456789ABCDEF0123ULL;
  const DesKeySchedule ks(key);
  const DesKeySchedule ks_bar(~key);
  EXPECT_EQ(des_encrypt_block(~pt, ks_bar), ~des_encrypt_block(pt, ks));
}

TEST(DesCbcTest, RoundTripsArbitraryLengths) {
  baps::Xoshiro256 rng(11);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    std::vector<std::uint8_t> msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng());
    const auto ct = des_cbc_encrypt(msg, 0x0E329232EA6D0D73ULL, 0xABCDEF);
    EXPECT_EQ(ct.size() % 8, 0u);
    EXPECT_GT(ct.size(), len);  // padding always added
    const auto pt = des_cbc_decrypt(ct, 0x0E329232EA6D0D73ULL, 0xABCDEF);
    EXPECT_EQ(pt, msg) << "length " << len;
  }
}

TEST(DesCbcTest, IvChangesCiphertext) {
  const std::vector<std::uint8_t> msg(32, 0x42);
  const auto a = des_cbc_encrypt(msg, 1, 100);
  const auto b = des_cbc_encrypt(msg, 1, 101);
  EXPECT_NE(a, b);
}

TEST(DesCbcTest, IdenticalBlocksProduceDistinctCiphertextBlocks) {
  // The whole point of CBC over ECB.
  const std::vector<std::uint8_t> msg(16, 0x00);  // two identical blocks
  const auto ct = des_cbc_encrypt(msg, 7, 9);
  ASSERT_GE(ct.size(), 16u);
  EXPECT_FALSE(std::equal(ct.begin(), ct.begin() + 8, ct.begin() + 8));
}

TEST(DesCbcTest, WrongKeyFailsPaddingOrGarbles) {
  const std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5};
  const auto ct = des_cbc_encrypt(msg, 111, 0);
  try {
    const auto pt = des_cbc_decrypt(ct, 222, 0);
    EXPECT_NE(pt, msg);  // if padding happened to validate, body must differ
  } catch (const baps::InvariantError&) {
    SUCCEED();  // corrupt padding detected
  }
}

TEST(DesCbcTest, RejectsBadCiphertextLengths) {
  std::vector<std::uint8_t> bad(7, 0);
  EXPECT_THROW(des_cbc_decrypt(bad, 1, 0), baps::InvariantError);
  EXPECT_THROW(des_cbc_decrypt(std::vector<std::uint8_t>{}, 1, 0),
               baps::InvariantError);
}

}  // namespace
}  // namespace baps::crypto
