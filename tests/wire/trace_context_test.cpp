// Backward/forward compatibility of the optional trace-context block in the
// frame header's once-reserved u16.
//
// LegacyDecode below replicates the pre-trace-context decoder bit for bit
// (reserved-must-be-zero, CRC over the payload alone) so these tests pin the
// actual compatibility story:
//   * untraced frames are byte-identical to the old format and decode the
//     same under both decoders;
//   * traced frames are cleanly REJECTED (not misparsed) by the old decoder
//     and round-trip under the new one;
//   * malformed or fuzzed trace-context bytes never crash the decoder and
//     never silently corrupt the payload.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/crc32.hpp"
#include "wire/frame.hpp"

namespace baps::wire {
namespace {

enum class LegacyStatus { kOk, kNeedMore, kBadHeader, kBadCrc };

struct LegacyFrame {
  FrameKind kind = FrameKind::kHello;
  std::string payload;
};

/// The decoder as it shipped before trace contexts existed: the u16 at
/// offset 6 was reserved and had to be zero, and the CRC covered exactly the
/// payload bytes.
LegacyStatus legacy_decode(std::string_view buf, LegacyFrame* out) {
  if (buf.size() < kHeaderSize) return LegacyStatus::kNeedMore;
  Reader r(buf);
  std::uint32_t magic = 0, payload_len = 0, crc = 0;
  std::uint16_t reserved = 0;
  std::uint8_t version = 0, kind = 0;
  r.u32(&magic);
  r.u8(&version);
  r.u8(&kind);
  r.u16(&reserved);
  r.u32(&payload_len);
  r.u32(&crc);
  if (magic != kMagic || version != kVersion || reserved != 0 ||
      !frame_kind_valid(kind)) {
    return LegacyStatus::kBadHeader;
  }
  if (buf.size() - kHeaderSize < payload_len) return LegacyStatus::kNeedMore;
  const std::string_view payload = buf.substr(kHeaderSize, payload_len);
  if (crc32(payload) != crc) return LegacyStatus::kBadCrc;
  out->kind = static_cast<FrameKind>(kind);
  out->payload.assign(payload);
  return LegacyStatus::kOk;
}

obs::TraceContext sampled_ctx() {
  obs::TraceContext ctx;
  ctx.trace_id = 0x1122334455667788ULL;
  ctx.span_id = 0x99AABBCCDDEEFF00ULL;
  ctx.sampled = true;
  return ctx;
}

TEST(TraceContextWireTest, UntracedFramesAreByteIdenticalToLegacy) {
  const std::string payload = "plain old payload";
  const std::string plain = encode_frame(FrameKind::kFetchRequest, payload);
  // The context overload with an invalid (empty) context emits the same
  // bytes as the plain encoder.
  const std::string via_ctx =
      encode_frame(FrameKind::kFetchRequest, payload, obs::TraceContext{});
  EXPECT_EQ(plain, via_ctx);

  LegacyFrame legacy;
  ASSERT_EQ(legacy_decode(plain, &legacy), LegacyStatus::kOk);
  EXPECT_EQ(legacy.kind, FrameKind::kFetchRequest);
  EXPECT_EQ(legacy.payload, payload);

  const DecodeResult modern = decode_frame(plain);
  ASSERT_EQ(modern.status, DecodeStatus::kOk);
  EXPECT_EQ(modern.frame.payload, payload);
  EXPECT_FALSE(modern.frame.trace.valid());
}

TEST(TraceContextWireTest, TracedFrameRoundTripsUnderNewDecoder) {
  const obs::TraceContext ctx = sampled_ctx();
  for (const std::string payload :
       {std::string{}, std::string{"body"}, std::string(64 << 10, 'x')}) {
    const std::string bytes =
        encode_frame(FrameKind::kFetchResponse, payload, ctx);
    ASSERT_EQ(bytes.size(), kHeaderSize + kTraceContextSize + payload.size());
    const DecodeResult result = decode_frame(bytes);
    ASSERT_EQ(result.status, DecodeStatus::kOk);
    EXPECT_EQ(result.frame.kind, FrameKind::kFetchResponse);
    EXPECT_EQ(result.frame.payload, payload);
    EXPECT_EQ(result.frame.trace, ctx);
    EXPECT_EQ(result.consumed, bytes.size());
  }
}

TEST(TraceContextWireTest, LegacyDecoderRejectsTracedFramesCleanly) {
  // An old receiver must refuse (and resync via its framing error path), not
  // misread 17 context bytes as payload.
  const std::string bytes =
      encode_frame(FrameKind::kFetchRequest, "payload", sampled_ctx());
  LegacyFrame legacy;
  EXPECT_EQ(legacy_decode(bytes, &legacy), LegacyStatus::kBadHeader);
}

TEST(TraceContextWireTest, UnsampledContextStillRoundTrips) {
  // The transports never put unsampled contexts on the wire, but the frame
  // layer itself must be able to carry one faithfully.
  obs::TraceContext ctx = sampled_ctx();
  ctx.sampled = false;
  const std::string bytes = encode_frame(FrameKind::kPeerFetch, "k", ctx);
  const DecodeResult result = decode_frame(bytes);
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.frame.trace, ctx);
  EXPECT_FALSE(result.frame.trace.sampled);
}

/// Hand-builds a frame with an arbitrary trace-context region (the CRC is
/// computed the way the encoder would, so only the tc_len/payload split is
/// unusual).
std::string raw_frame(FrameKind kind, std::string_view tc_bytes,
                      std::string_view payload) {
  std::string region(tc_bytes);
  region.append(payload.data(), payload.size());
  const std::uint16_t tc_len = static_cast<std::uint16_t>(tc_bytes.size());
  Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u16(tc_len);
  w.u32(static_cast<std::uint32_t>(region.size()));
  std::uint32_t crc = 0;
  if (tc_len == 0) {
    crc = crc32(region);
  } else {
    const std::uint8_t len_le[2] = {static_cast<std::uint8_t>(tc_len & 0xff),
                                    static_cast<std::uint8_t>(tc_len >> 8)};
    crc = crc32_update(crc32({len_le, 2}),
                       {reinterpret_cast<const std::uint8_t*>(region.data()),
                        region.size()});
  }
  w.u32(crc);
  std::string out = w.take();
  out.append(region);
  return out;
}

TEST(TraceContextWireTest, ShortContextBlocksAreSkippedNotMisparsed) {
  // A nonzero block shorter than this version's 17 bytes yields no context,
  // but the payload split must still be honored.
  for (std::size_t short_len = 1; short_len < kTraceContextSize; ++short_len) {
    const std::string tc(short_len, '\x5A');
    const std::string bytes = raw_frame(FrameKind::kHello, tc, "payload");
    const DecodeResult result = decode_frame(bytes);
    ASSERT_EQ(result.status, DecodeStatus::kOk) << "tc_len " << short_len;
    EXPECT_EQ(result.frame.payload, "payload");
    EXPECT_FALSE(result.frame.trace.valid());
  }
}

TEST(TraceContextWireTest, LongerContextBlocksKeepTheirPrefix) {
  // Forward compatibility: a newer sender may append fields to the block;
  // this version parses its 17-byte prefix and ignores the rest.
  const obs::TraceContext ctx = sampled_ctx();
  Writer tc;
  tc.u64(ctx.trace_id);
  tc.u64(ctx.span_id);
  tc.u8(1);
  std::string block = tc.take();
  block += "future-fields";
  const std::string bytes = raw_frame(FrameKind::kBye, block, "tail");
  const DecodeResult result = decode_frame(bytes);
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.frame.payload, "tail");
  EXPECT_EQ(result.frame.trace, ctx);
}

TEST(TraceContextWireTest, ContextLongerThanPayloadRejected) {
  std::string bytes = encode_frame(FrameKind::kHello, "");
  // Claim one context byte in an empty payload region.
  bytes[6] = 1;
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kBadTraceContext);
}

TEST(TraceContextWireTest, EveryBitFlipOfTracedFrameIsDetectedOrKindOnly) {
  // The traced twin of FrameTest.EveryBitFlipIsDetectedOrKindOnly: with a
  // context on board, flips in tc_len, the context bytes, and the payload
  // must all be caught; only kind-byte flips may still decode.
  const std::string payload = "the quick brown fox";
  const obs::TraceContext ctx = sampled_ctx();
  const std::string original =
      encode_frame(FrameKind::kFetchRequest, payload, ctx);
  for (std::size_t byte = 0; byte < original.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = original;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      const DecodeResult result = decode_frame(flipped);
      if (result.status == DecodeStatus::kOk) {
        EXPECT_EQ(byte, 5u) << "flip at byte " << byte << " bit " << bit;
        EXPECT_EQ(result.frame.payload, payload);
        EXPECT_EQ(result.frame.trace, ctx);
      }
    }
  }
}

TEST(TraceContextWireTest, FuzzedContextBytesNeverCrashOrCorrupt) {
  baps::SplitMix64 rng(0x7AACEu);
  for (int iter = 0; iter < 512; ++iter) {
    const std::size_t tc_len = rng.next() % 64;
    const std::size_t payload_len = rng.next() % 64;
    std::string tc(tc_len, '\0');
    for (auto& c : tc) c = static_cast<char>(rng.next() & 0xFF);
    std::string payload(payload_len, '\0');
    for (auto& c : payload) c = static_cast<char>(rng.next() & 0xFF);
    const std::string bytes = raw_frame(FrameKind::kFetchRequest, tc, payload);
    const DecodeResult result = decode_frame(bytes);
    // Well-formed CRC, arbitrary context bytes: must decode with the exact
    // payload, never crash, never leak context bytes into the payload.
    ASSERT_EQ(result.status, DecodeStatus::kOk) << "iteration " << iter;
    EXPECT_EQ(result.frame.payload, payload);
  }
}

TEST(TraceContextWireTest, FuzzedWholeFramesNeverDecodeToWrongPayload) {
  // Random mutations of a valid traced frame: any mutation that still
  // decodes must deliver the original payload (kind flips aside, nothing
  // mutable is outside the CRC).
  const std::string payload = "guarded payload bytes";
  const std::string original =
      encode_frame(FrameKind::kIndexUpdate, payload, sampled_ctx());
  baps::SplitMix64 rng(0xBEEFu);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = original;
    const int mutations = 1 + static_cast<int>(rng.next() % 3);
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.next() % mutated.size();
      mutated[pos] = static_cast<char>(rng.next() & 0xFF);
    }
    const DecodeResult result = decode_frame(mutated);
    if (result.status == DecodeStatus::kOk) {
      EXPECT_EQ(result.frame.payload, payload) << "iteration " << iter;
    }
  }
}

}  // namespace
}  // namespace baps::wire
