#include "wire/messages.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "wire/codec.hpp"

namespace baps::wire {
namespace {

// Strictness harness: a valid encoding must decode, every strict prefix of
// it must not (truncation), and neither must the encoding plus a trailing
// byte (a different message shape).
template <typename Msg>
void expect_strict(const std::string& payload) {
  Msg out;
  EXPECT_TRUE(decode(payload, &out));
  for (std::size_t len = 0; len < payload.size(); ++len) {
    Msg partial;
    EXPECT_FALSE(decode(std::string_view(payload).substr(0, len), &partial))
        << "prefix " << len << " of " << payload.size();
  }
  Msg extended;
  EXPECT_FALSE(decode(payload + '\0', &extended));
}

TEST(MessagesTest, HelloRoundTrip) {
  Hello in;
  in.client_id = 3;
  in.peer_port = 45123;
  Hello out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.client_id, in.client_id);
  EXPECT_EQ(out.peer_port, in.peer_port);
  expect_strict<Hello>(encode(in));

  in.client_id = kObserverClientId;
  in.peer_port = 0;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.client_id, kObserverClientId);
}

TEST(MessagesTest, HelloAckRoundTrip) {
  HelloAck in;
  in.rsa_n = {0x01, 0xFF, 0x00, 0x7A};
  in.rsa_e = {0x01, 0x00, 0x01};
  in.max_clients = 16;
  HelloAck out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.rsa_n, in.rsa_n);
  EXPECT_EQ(out.rsa_e, in.rsa_e);
  EXPECT_EQ(out.max_clients, in.max_clients);
  expect_strict<HelloAck>(encode(in));
}

TEST(MessagesTest, HelloAckRejectsOversizedKey) {
  Writer w;
  w.u32(kMaxKeyLen + 1);  // key-length prefix beyond the ceiling
  std::string payload = w.take();
  payload.append(kMaxKeyLen + 1, 'A');
  HelloAck out;
  EXPECT_FALSE(decode(payload, &out));
}

TEST(MessagesTest, FetchRequestRoundTrip) {
  FetchRequest in;
  in.url = "http://example.test/a/b/c?d=e";
  in.avoid_peers = true;
  FetchRequest out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.url, in.url);
  EXPECT_TRUE(out.avoid_peers);
  expect_strict<FetchRequest>(encode(in));
}

TEST(MessagesTest, FetchRequestRejectsNonBooleanFlag) {
  FetchRequest in;
  in.url = "u";
  std::string payload = encode(in);
  payload.back() = 2;  // the avoid_peers byte: anything but 0/1 is corruption
  FetchRequest out;
  EXPECT_FALSE(decode(payload, &out));
}

TEST(MessagesTest, FetchRequestRejectsOversizedUrl) {
  Writer w;
  w.str(std::string(kMaxUrlLen + 1, 'u'));
  w.u8(0);
  FetchRequest out;
  EXPECT_FALSE(decode(w.take(), &out));
}

TEST(MessagesTest, FetchResponseRoundTrip) {
  FetchResponse in;
  in.source = WireSource::kRemoteBrowser;
  in.false_forward = true;
  in.body = std::string(1024, 'b');
  in.watermark = {9, 8, 7};
  FetchResponse out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.source, in.source);
  EXPECT_TRUE(out.false_forward);
  EXPECT_EQ(out.body, in.body);
  EXPECT_EQ(out.watermark, in.watermark);
  expect_strict<FetchResponse>(encode(in));
}

TEST(MessagesTest, FetchResponseRejectsInvalidSource) {
  FetchResponse in;
  in.source = WireSource::kProxy;
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{4}, std::uint8_t{255}}) {
    std::string payload = encode(in);
    payload[0] = static_cast<char>(bad);
    FetchResponse out;
    EXPECT_FALSE(decode(payload, &out)) << "source " << static_cast<int>(bad);
  }
  EXPECT_FALSE(wire_source_valid(0));
  EXPECT_TRUE(wire_source_valid(1));
  EXPECT_TRUE(wire_source_valid(3));
  EXPECT_FALSE(wire_source_valid(4));
}

TEST(MessagesTest, IndexUpdateRoundTrip) {
  IndexUpdate in;
  in.is_add = true;
  in.key = 0xDEADBEEFCAFEF00Dull;
  for (std::size_t i = 0; i < in.mac.size(); ++i) {
    in.mac[i] = static_cast<std::uint8_t>(i * 17);
  }
  IndexUpdate out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.is_add, in.is_add);
  EXPECT_EQ(out.key, in.key);
  EXPECT_EQ(out.mac, in.mac);
  expect_strict<IndexUpdate>(encode(in));
}

TEST(MessagesTest, PeerFetchIsExactlyTheKey) {
  PeerFetch in;
  in.key = 0x0123456789ABCDEFull;
  const std::string payload = encode(in);
  // §6.2 structurally: eight key bytes, no room for a requester identity.
  EXPECT_EQ(payload.size(), 8u);
  PeerFetch out;
  ASSERT_TRUE(decode(payload, &out));
  EXPECT_EQ(out.key, in.key);
  expect_strict<PeerFetch>(payload);
}

TEST(MessagesTest, PeerDeliverRoundTrip) {
  PeerDeliver in;
  in.found = true;
  in.body = "document body";
  in.watermark = {1, 2, 3, 4};
  PeerDeliver out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.body, in.body);
  EXPECT_EQ(out.watermark, in.watermark);
  expect_strict<PeerDeliver>(encode(in));

  PeerDeliver miss;  // defaults: not found, empty body
  ASSERT_TRUE(decode(encode(miss), &out));
  EXPECT_FALSE(out.found);
  EXPECT_TRUE(out.body.empty());
}

TEST(MessagesTest, StatsRoundTrip) {
  EXPECT_TRUE(encode(StatsRequest{}).empty());
  StatsRequest req;
  EXPECT_TRUE(decode("", &req));
  EXPECT_FALSE(decode("x", &req));

  StatsResponse in;
  in.proxy_hits = 1;
  in.peer_hits = 2;
  in.origin_fetches = 3;
  in.false_forwards = 4;
  in.rejected_index_updates = 5;
  StatsResponse out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.proxy_hits, 1u);
  EXPECT_EQ(out.peer_hits, 2u);
  EXPECT_EQ(out.origin_fetches, 3u);
  EXPECT_EQ(out.false_forwards, 4u);
  EXPECT_EQ(out.rejected_index_updates, 5u);
  expect_strict<StatsResponse>(encode(in));
}

TEST(MessagesTest, TraceStatsRoundTrip) {
  TraceStatsRequest req;
  req.max_spans = 128;
  TraceStatsRequest req_out;
  ASSERT_TRUE(decode(encode(req), &req_out));
  EXPECT_EQ(req_out.max_spans, 128u);
  expect_strict<TraceStatsRequest>(encode(req));

  TraceStatsResponse in;
  in.json = "{\"schema\":\"baps.trace_stats.v1\",\"spans_recorded\":42}";
  TraceStatsResponse out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.json, in.json);
  expect_strict<TraceStatsResponse>(encode(in));

  TraceStatsResponse empty;
  ASSERT_TRUE(decode(encode(TraceStatsResponse{}), &empty));
  EXPECT_TRUE(empty.json.empty());
}

TEST(MessagesTest, TimeSeriesRoundTrip) {
  TimeSeriesRequest req;
  req.max_intervals = 16;
  TimeSeriesRequest req_out;
  ASSERT_TRUE(decode(encode(req), &req_out));
  EXPECT_EQ(req_out.max_intervals, 16u);
  expect_strict<TimeSeriesRequest>(encode(req));

  TimeSeriesResponse in;
  in.json =
      "{\"schema\":\"baps.timeseries_window.v1\",\"intervals\":[]}";
  TimeSeriesResponse out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.json, in.json);
  expect_strict<TimeSeriesResponse>(encode(in));

  TimeSeriesResponse empty;
  ASSERT_TRUE(decode(encode(TimeSeriesResponse{}), &empty));
  EXPECT_TRUE(empty.json.empty());
}

TEST(MessagesTest, ErrorAndByeRoundTrip) {
  ErrorMsg in{"client id out of range"};
  ErrorMsg out;
  ASSERT_TRUE(decode(encode(in), &out));
  EXPECT_EQ(out.message, in.message);
  expect_strict<ErrorMsg>(encode(in));

  EXPECT_TRUE(encode(Bye{}).empty());
  Bye bye;
  EXPECT_TRUE(decode("", &bye));
  EXPECT_FALSE(decode("z", &bye));
}

TEST(MessagesTest, MessageKindsMatchFrameKinds) {
  EXPECT_EQ(Hello::kKind, FrameKind::kHello);
  EXPECT_EQ(HelloAck::kKind, FrameKind::kHelloAck);
  EXPECT_EQ(FetchRequest::kKind, FrameKind::kFetchRequest);
  EXPECT_EQ(FetchResponse::kKind, FrameKind::kFetchResponse);
  EXPECT_EQ(IndexUpdate::kKind, FrameKind::kIndexUpdate);
  EXPECT_EQ(IndexAck::kKind, FrameKind::kIndexAck);
  EXPECT_EQ(PeerFetch::kKind, FrameKind::kPeerFetch);
  EXPECT_EQ(PeerDeliver::kKind, FrameKind::kPeerDeliver);
  EXPECT_EQ(StatsRequest::kKind, FrameKind::kStatsRequest);
  EXPECT_EQ(StatsResponse::kKind, FrameKind::kStatsResponse);
  EXPECT_EQ(ErrorMsg::kKind, FrameKind::kError);
  EXPECT_EQ(Bye::kKind, FrameKind::kBye);
  EXPECT_EQ(TraceStatsRequest::kKind, FrameKind::kTraceStatsRequest);
  EXPECT_EQ(TraceStatsResponse::kKind, FrameKind::kTraceStatsResponse);
  EXPECT_EQ(TimeSeriesRequest::kKind, FrameKind::kTimeSeriesRequest);
  EXPECT_EQ(TimeSeriesResponse::kKind, FrameKind::kTimeSeriesResponse);
}

}  // namespace
}  // namespace baps::wire
