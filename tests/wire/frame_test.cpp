#include "wire/frame.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"
#include "wire/crc32.hpp"

namespace baps::wire {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The classic IEEE CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t crc = 0;
  for (char c : data) {
    const auto byte = static_cast<std::uint8_t>(c);
    crc = crc32_update(crc, {&byte, 1});
  }
  EXPECT_EQ(crc, crc32(data));
}

TEST(FrameTest, RoundTripsEveryKind) {
  for (std::uint8_t k = kMinFrameKind; k <= kMaxFrameKind; ++k) {
    const auto kind = static_cast<FrameKind>(k);
    const std::string payload = "payload-" + frame_kind_name(kind);
    const std::string bytes = encode_frame(kind, payload);
    ASSERT_EQ(bytes.size(), kHeaderSize + payload.size());

    const DecodeResult result = decode_frame(bytes);
    ASSERT_EQ(result.status, DecodeStatus::kOk) << frame_kind_name(kind);
    EXPECT_EQ(result.frame.kind, kind);
    EXPECT_EQ(result.frame.payload, payload);
    EXPECT_EQ(result.consumed, bytes.size());
  }
}

TEST(FrameTest, RoundTripsEmptyAndLargePayloads) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{64 << 10}}) {
    std::string payload(n, '\0');
    for (std::size_t i = 0; i < n; ++i) {
      payload[i] = static_cast<char>(i * 131 + 7);
    }
    const std::string bytes = encode_frame(FrameKind::kFetchResponse, payload);
    const DecodeResult result = decode_frame(bytes);
    ASSERT_EQ(result.status, DecodeStatus::kOk) << "payload size " << n;
    EXPECT_EQ(result.frame.payload, payload);
  }
}

TEST(FrameTest, EveryTruncationAsksForMore) {
  const std::string bytes = encode_frame(FrameKind::kHello, "0123456789");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const DecodeResult result = decode_frame(std::string_view(bytes).substr(0, len));
    EXPECT_EQ(result.status, DecodeStatus::kNeedMore) << "prefix " << len;
    EXPECT_EQ(result.consumed, 0u);
  }
}

TEST(FrameTest, RejectsBadMagic) {
  std::string bytes = encode_frame(FrameKind::kBye, "");
  bytes[0] = 'X';
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kBadMagic);
}

TEST(FrameTest, RejectsBadVersion) {
  std::string bytes = encode_frame(FrameKind::kBye, "");
  bytes[4] = 2;
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kBadVersion);
}

TEST(FrameTest, RejectsTraceContextLongerThanPayload) {
  // The once-reserved u16 at offset 6 is now the trace-context length; a
  // frame whose trace context claims more bytes than the payload region
  // holds is structurally broken, whatever its CRC says.
  std::string bytes = encode_frame(FrameKind::kBye, "");
  bytes[6] = 1;
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kBadTraceContext);
}

TEST(FrameTest, RejectsUnknownKinds) {
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{17}, std::uint8_t{255}}) {
    std::string bytes = encode_frame(FrameKind::kBye, "");
    bytes[5] = static_cast<char>(bad);
    EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kBadKind)
        << "kind " << static_cast<int>(bad);
  }
}

TEST(FrameTest, RejectsOversizedBeforeReadingPayload) {
  // A header-only buffer claiming a 4 GiB payload must be rejected outright,
  // not answered with kNeedMore — otherwise a hostile peer could demand a
  // bottomless read / allocation.
  std::string bytes = encode_frame(FrameKind::kFetchResponse, "x");
  bytes[8] = '\xFF';
  bytes[9] = '\xFF';
  bytes[10] = '\xFF';
  bytes[11] = '\xFF';
  bytes.resize(kHeaderSize);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kOversized);
}

TEST(FrameTest, HonorsCustomPayloadCeiling) {
  const std::string bytes = encode_frame(FrameKind::kFetchRequest, "0123456789");
  EXPECT_EQ(decode_frame(bytes, /*max_payload=*/10).status, DecodeStatus::kOk);
  EXPECT_EQ(decode_frame(bytes, /*max_payload=*/9).status,
            DecodeStatus::kOversized);
}

TEST(FrameTest, RejectsCorruptedPayload) {
  std::string bytes = encode_frame(FrameKind::kPeerDeliver, "watermarked body");
  bytes[kHeaderSize + 3] = static_cast<char>(bytes[kHeaderSize + 3] ^ 0x20);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kBadCrc);
}

TEST(FrameTest, EveryBitFlipIsDetectedOrKindOnly) {
  // Flip every single bit of a valid frame. The only flips that may still
  // decode are in the kind byte (offset 5) landing on another valid kind —
  // the payload is CRC-protected and everything else is structurally
  // validated. Nothing may crash, and no flip may corrupt the payload
  // silently.
  const std::string payload = "the quick brown fox jumps over the lazy dog";
  const std::string original = encode_frame(FrameKind::kFetchRequest, payload);
  for (std::size_t byte = 0; byte < original.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = original;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      const DecodeResult result = decode_frame(flipped);
      if (result.status == DecodeStatus::kOk) {
        EXPECT_EQ(byte, 5u) << "flip at byte " << byte << " bit " << bit
                            << " decoded despite not being the kind byte";
        EXPECT_EQ(result.frame.payload, payload);
      }
    }
  }
}

TEST(FrameTest, RandomJunkNeverDecodes) {
  baps::SplitMix64 rng(0xF4A11u);
  for (int iter = 0; iter < 512; ++iter) {
    const std::size_t len = rng.next() % 96;
    std::string junk(len, '\0');
    for (std::size_t i = 0; i < len; ++i) {
      junk[i] = static_cast<char>(rng.next() & 0xFF);
    }
    const DecodeResult result = decode_frame(junk);
    EXPECT_NE(result.status, DecodeStatus::kOk) << "iteration " << iter;
  }
}

TEST(FrameTest, StreamingDecodeConsumesBackToBackFrames) {
  const std::string first = encode_frame(FrameKind::kHello, "aa");
  const std::string second = encode_frame(FrameKind::kBye, "");
  std::string buffer = first + second;

  DecodeResult r1 = decode_frame(buffer);
  ASSERT_EQ(r1.status, DecodeStatus::kOk);
  EXPECT_EQ(r1.frame.kind, FrameKind::kHello);
  EXPECT_EQ(r1.consumed, first.size());

  buffer.erase(0, r1.consumed);
  DecodeResult r2 = decode_frame(buffer);
  ASSERT_EQ(r2.status, DecodeStatus::kOk);
  EXPECT_EQ(r2.frame.kind, FrameKind::kBye);
  EXPECT_EQ(r2.consumed, buffer.size());
}

}  // namespace
}  // namespace baps::wire
