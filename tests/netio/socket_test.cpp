#include "netio/socket.hpp"

#include <gtest/gtest.h>

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "netio/retry.hpp"

namespace baps::netio {
namespace {

using Clock = std::chrono::steady_clock;

int elapsed_ms(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

TEST(TcpListenerTest, BindsEphemeralPortAndReportsIt) {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value()) << err.message;
  EXPECT_NE(listener->port(), 0);
}

TEST(TcpListenerTest, AcceptTimesOutWhenNobodyConnects) {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  const auto start = Clock::now();
  auto conn = listener->accept(/*timeout_ms=*/50, &err);
  EXPECT_FALSE(conn.has_value());
  EXPECT_EQ(err.status, NetStatus::kTimeout);
  EXPECT_LT(elapsed_ms(start), 2000);
}

TEST(TcpConnectionTest, ConnectToDeadPortIsRefusedQuickly) {
  // Bind and immediately close a listener so the port is known-dead.
  NetError err;
  std::uint16_t dead_port = 0;
  {
    auto listener = TcpListener::listen("127.0.0.1", 0, 1, &err);
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
  }
  const auto start = Clock::now();
  auto conn = TcpConnection::connect("127.0.0.1", dead_port, 1000, &err);
  EXPECT_FALSE(conn.has_value());
  EXPECT_EQ(err.status, NetStatus::kRefused);
  EXPECT_TRUE(err.transient());
  EXPECT_LT(elapsed_ms(start), 2000);
}

TEST(TcpConnectionTest, ConnectRejectsBadAddress) {
  NetError err;
  auto conn = TcpConnection::connect("not-an-address", 1, 100, &err);
  EXPECT_FALSE(conn.has_value());
  EXPECT_EQ(err.status, NetStatus::kError);
}

TEST(TcpConnectionTest, WriteReadRoundTrip) {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  ASSERT_TRUE(client.has_value()) << err.message;
  auto server = listener->accept(1000, &err);
  ASSERT_TRUE(server.has_value()) << err.message;

  // Large enough to exercise multiple poll/send rounds on small buffers.
  std::string sent(256 << 10, '\0');
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>(i * 31 + 1);
  }
  std::thread writer([&] {
    NetError werr;
    EXPECT_TRUE(client->write_all(sent.data(), sent.size(), 5000, &werr))
        << werr.message;
  });
  std::string received(sent.size(), '\0');
  EXPECT_TRUE(server->read_exact(received.data(), received.size(), 5000, &err))
      << err.message;
  writer.join();
  EXPECT_EQ(received, sent);
}

TEST(TcpConnectionTest, ReadTimesOutWithoutData) {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  ASSERT_TRUE(client.has_value());
  auto server = listener->accept(1000, &err);
  ASSERT_TRUE(server.has_value());

  char byte = 0;
  const auto start = Clock::now();
  EXPECT_FALSE(server->read_exact(&byte, 1, 50, &err));
  EXPECT_EQ(err.status, NetStatus::kTimeout);
  EXPECT_LT(elapsed_ms(start), 2000);
}

TEST(TcpConnectionTest, ReadSeesOrderlyClose) {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  ASSERT_TRUE(client.has_value());
  auto server = listener->accept(1000, &err);
  ASSERT_TRUE(server.has_value());

  client->close();
  char byte = 0;
  EXPECT_FALSE(server->read_exact(&byte, 1, 1000, &err));
  EXPECT_EQ(err.status, NetStatus::kClosed);
}

TEST(TcpConnectionTest, ShutdownUnblocksABlockedReader) {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  ASSERT_TRUE(client.has_value());
  auto server = listener->accept(1000, &err);
  ASSERT_TRUE(server.has_value());

  const auto start = Clock::now();
  std::thread reader([&] {
    NetError rerr;
    char byte = 0;
    EXPECT_FALSE(server->read_exact(&byte, 1, 10000, &rerr));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->shutdown_both();
  reader.join();
  EXPECT_LT(elapsed_ms(start), 5000);
}

TEST(PollFdTest, WritableSocketIsOkImmediately) {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  ASSERT_TRUE(client.has_value());
  const auto start = Clock::now();
  EXPECT_EQ(poll_fd(client->fd(), POLLOUT, 5000), NetStatus::kOk);
  EXPECT_LT(elapsed_ms(start), 1000);
}

TEST(PollFdTest, InvalidFdMapsToErrorNotReadiness) {
  // Regression: POLLNVAL (and POLLERR) arrive in revents without the
  // requested bit; treating "poll returned 1" as readiness made callers
  // loop on a dead descriptor. The mapping must say kError.
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  ASSERT_TRUE(client.has_value());
  const int fd = client->fd();
  client->close();
  EXPECT_EQ(poll_fd(fd, POLLIN, 100), NetStatus::kError);
}

TEST(PollFdTest, LoneHangupMapsToClosed) {
  // A pipe whose writer is gone raises POLLHUP with no POLLIN: that is an
  // orderly end of stream, not an error and not a timeout.
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[1]);
  EXPECT_EQ(poll_fd(fds[0], POLLIN, 1000), NetStatus::kClosed);
  ::close(fds[0]);
}

TEST(PollFdTest, RequestedReadinessWinsOverHangup) {
  // Peer sent a byte then closed: revents carries POLLIN|POLLHUP together.
  // The requested bit must win (kOk) so the caller's recv can harvest the
  // buffered byte; mapping HUP first would drop delivered data.
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  ASSERT_TRUE(client.has_value());
  auto server = listener->accept(1000, &err);
  ASSERT_TRUE(server.has_value());
  const char byte = 'x';
  ASSERT_TRUE(client->write_all(&byte, 1, 1000, &err));
  client->close();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(poll_fd(server->fd(), POLLIN, 1000), NetStatus::kOk);
  char got = 0;
  EXPECT_TRUE(server->read_exact(&got, 1, 1000, &err));
  EXPECT_EQ(got, 'x');
}

TEST(PollFdTest, QuietSocketTimesOut) {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  ASSERT_TRUE(client.has_value());
  auto server = listener->accept(1000, &err);
  ASSERT_TRUE(server.has_value());
  const auto start = Clock::now();
  EXPECT_EQ(poll_fd(server->fd(), POLLIN, 50), NetStatus::kTimeout);
  EXPECT_LT(elapsed_ms(start), 2000);
}

TEST(PollFdTest, HugeWaitOnReadyFdReturnsImmediately) {
  // Regression companion to the deadline clamp: a wait_ms near INT_MAX must
  // neither overflow nor round to "poll forever with no data ever".
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  ASSERT_TRUE(client.has_value());
  const auto start = Clock::now();
  EXPECT_EQ(poll_fd(client->fd(), POLLOUT, 2000000000), NetStatus::kOk);
  EXPECT_LT(elapsed_ms(start), 1000);
}

TEST(RaiseFdLimitTest, ReturnsAUsableLimitAtLeastTheSoftDefault) {
  // Best-effort: asking for more fds never lowers the limit and never
  // reports more than what was actually achieved.
  const std::size_t got = raise_fd_limit(4096);
  EXPECT_GE(got, 1024u);
  const std::size_t again = raise_fd_limit(got);
  EXPECT_GE(again, got);
}

TEST(RetryTest, RetriesTransientFailuresWithBoundedAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;

  int calls = 0;
  NetError err;
  const bool ok = retry_with_backoff(
      policy, "test",
      [&](NetError* e) {
        ++calls;
        if (calls < 3) {
          e->status = NetStatus::kRefused;
          return false;
        }
        e->status = NetStatus::kOk;
        return true;
      },
      &err);
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, DoesNotRetryTimeouts) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 1;

  int calls = 0;
  NetError err;
  const bool ok = retry_with_backoff(
      policy, "test",
      [&](NetError* e) {
        ++calls;
        e->status = NetStatus::kTimeout;
        return false;
      },
      &err);
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 1);  // a dead peer costs one deadline, not five
  EXPECT_EQ(err.status, NetStatus::kTimeout);
}

TEST(RetryTest, GivesUpAfterAttemptBudget) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;

  int calls = 0;
  NetError err;
  const bool ok = retry_with_backoff(
      policy, "test",
      [&](NetError* e) {
        ++calls;
        e->status = NetStatus::kReset;
        return false;
      },
      &err);
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(err.status, NetStatus::kReset);
}

}  // namespace
}  // namespace baps::netio
