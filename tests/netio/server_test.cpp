#include "netio/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netio/frame_channel.hpp"
#include "obs/registry.hpp"

namespace baps::netio {
namespace {

using Clock = std::chrono::steady_clock;

FrameServer::Params fast_params() {
  FrameServer::Params p;
  p.worker_threads = 2;
  p.accept_poll_ms = 10;
  p.deadlines = Deadlines{1000, 200, 1000};
  return p;
}

// Echoes every frame back until the connection drops.
FrameServer::ConnectionHandler echo_handler() {
  return [](FrameChannel& channel, const std::atomic<bool>& stop) {
    while (!stop.load()) {
      NetError err;
      const auto frame = channel.recv(&err);
      if (!frame.has_value()) {
        if (err.status == NetStatus::kTimeout) continue;
        return;
      }
      if (!channel.send(frame->kind, frame->payload, &err)) return;
    }
  };
}

std::optional<FrameChannel> dial(std::uint16_t port) {
  NetError err;
  auto conn = TcpConnection::connect("127.0.0.1", port, 1000, &err);
  if (!conn.has_value()) return std::nullopt;
  return FrameChannel(std::move(*conn), Deadlines{1000, 2000, 2000});
}

TEST(FrameServerTest, EchoesFramesOverRealSockets) {
  FrameServer server(fast_params(), echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  auto channel = dial(server.port());
  ASSERT_TRUE(channel.has_value());
  for (int i = 0; i < 10; ++i) {
    const std::string payload = "ping-" + std::to_string(i);
    NetError err;
    ASSERT_TRUE(channel->send(wire::FrameKind::kHello, payload, &err))
        << err.message;
    const auto reply = channel->recv(&err);
    ASSERT_TRUE(reply.has_value()) << err.message;
    EXPECT_EQ(reply->kind, wire::FrameKind::kHello);
    EXPECT_EQ(reply->payload, payload);
  }
  channel->close();
  server.stop();
  EXPECT_GE(server.sessions_handled(), 1u);
}

TEST(FrameServerTest, ServesConnectionsBeyondTheWorkerCount) {
  FrameServer server(fast_params(), echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // More sequential sessions than workers: each closes before the next, so
  // the queue drains and every one is served.
  for (int i = 0; i < 6; ++i) {
    auto channel = dial(server.port());
    ASSERT_TRUE(channel.has_value()) << "connection " << i;
    NetError err;
    ASSERT_TRUE(channel->send(wire::FrameKind::kBye, "x", &err));
    const auto reply = channel->recv(&err);
    ASSERT_TRUE(reply.has_value()) << err.message;
    channel->close();
  }
  server.stop();
  EXPECT_EQ(server.sessions_handled(), 6u);
}

TEST(FrameServerTest, StopUnblocksIdleSessionsQuickly) {
  FrameServer server(fast_params(), echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Connect and go silent: the session blocks in recv on its read deadline.
  auto channel = dial(server.port());
  ASSERT_TRUE(channel.has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = Clock::now();
  server.stop();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - start)
                           .count();
  EXPECT_LT(stop_ms, 5000) << "stop() must not wait out idle sessions";
  EXPECT_FALSE(server.running());
}

TEST(FrameServerTest, MalformedFramesDropTheConnection) {
  const auto decode_errors_before = [] {
    std::uint64_t total = 0;
    for (const auto& inst : obs::Registry::global().snapshot().counters) {
      if (inst.name == "wire_decode_errors_total") total += inst.value;
    }
    return total;
  };
  const std::uint64_t before = decode_errors_before();

  FrameServer server(fast_params(), echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  NetError err;
  auto conn = TcpConnection::connect("127.0.0.1", server.port(), 1000, &err);
  ASSERT_TRUE(conn.has_value());
  // Garbage that can never parse as a frame header.
  const std::string junk(64, 'Z');
  ASSERT_TRUE(conn->write_all(junk.data(), junk.size(), 1000, &err));
  // The server rejects the header and drops the session: our next read sees
  // EOF (possibly after the bytes in flight drain).
  char byte = 0;
  EXPECT_FALSE(conn->read_exact(&byte, 1, 2000, &err));
  EXPECT_NE(err.status, NetStatus::kTimeout) << "connection should be closed";
  server.stop();
  EXPECT_GT(decode_errors_before(), before);
}

TEST(FrameServerTest, RapidSessionChurnDoesNotShutDownRecycledFds) {
  // Regression for an fd-reuse race: the worker used to close a session's
  // fd (returning the number to the kernel) BEFORE erasing it from the
  // active-fd set. A new connection could be handed the recycled number in
  // that window, and a concurrent stop() — which shutdowns every fd still
  // in the set — would tear down the wrong session. Churn short sessions
  // from several threads while stop() fires mid-flight; TSan (the CI job
  // runs this binary under it) sees the lock-ordering, and any cross-kill
  // shows up as a hung or failed exchange.
  FrameServer server(fast_params(), echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const std::uint16_t port = server.port();

  std::atomic<bool> halt{false};
  std::atomic<int> exchanges{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      while (!halt.load()) {
        auto channel = dial(port);
        if (!channel.has_value()) continue;  // accept backlog under churn
        NetError err;
        if (!channel->send(wire::FrameKind::kHello, "churn", &err)) continue;
        if (channel->recv(&err).has_value()) exchanges.fetch_add(1);
        channel->close();  // next dial immediately recycles this fd number
      }
    });
  }
  // Let the churn run, then stop the server while dials are still in
  // flight — the window the race lived in.
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  while (exchanges.load() < 50 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.stop();
  halt.store(true);
  for (auto& c : clients) c.join();
  EXPECT_GT(exchanges.load(), 0);
  EXPECT_FALSE(server.running());
}

TEST(FrameServerTest, StartFailsOnUnbindablePort) {
  auto params = fast_params();
  FrameServer first(params, echo_handler());
  std::string error;
  ASSERT_TRUE(first.start(&error)) << error;

  params.port = first.port();  // already taken
  FrameServer second(params, echo_handler());
  EXPECT_FALSE(second.start(&error));
  EXPECT_FALSE(error.empty());
  first.stop();
}

}  // namespace
}  // namespace baps::netio
