#include "netio/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace baps::netio {
namespace {

std::vector<std::uint64_t> advance(TimerWheel& wheel, std::uint64_t now_ms) {
  std::vector<std::uint64_t> expired;
  wheel.advance(now_ms, &expired);
  return expired;
}

TEST(TimerWheelTest, FiresAtTheDeadlineAndDisarms) {
  TimerWheel wheel(10, 16);
  wheel.arm(7, 0, 50);
  EXPECT_TRUE(wheel.armed(7));
  EXPECT_TRUE(advance(wheel, 40).empty());
  const auto fired = advance(wheel, 50);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
  EXPECT_FALSE(wheel.armed(7));
  EXPECT_TRUE(advance(wheel, 200).empty()) << "a timer fires at most once";
}

TEST(TimerWheelTest, CancelledTimersNeverFire) {
  TimerWheel wheel(10, 16);
  wheel.arm(1, 0, 30);
  wheel.arm(2, 0, 30);
  wheel.cancel(1);
  EXPECT_FALSE(wheel.armed(1));
  const auto fired = advance(wheel, 100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 2u);
}

TEST(TimerWheelTest, RearmMovesTheDeadline) {
  TimerWheel wheel(10, 16);
  wheel.arm(3, 0, 30);
  wheel.arm(3, 20, 100);  // activity at t=20 pushes the deadline to 120
  EXPECT_TRUE(advance(wheel, 60).empty())
      << "the stale t=30 slot entry must not fire";
  const auto fired = advance(wheel, 120);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
  EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheelTest, DelaysBeyondOneRevolutionSurviveThePass) {
  // One revolution spans 10 * 8 = 80 ms; a 250 ms delay maps to a slot the
  // cursor crosses three times before the deadline actually passes.
  TimerWheel wheel(10, 8);
  wheel.arm(9, 0, 250);
  EXPECT_TRUE(advance(wheel, 80).empty());
  EXPECT_TRUE(advance(wheel, 160).empty());
  EXPECT_TRUE(advance(wheel, 240).empty());
  const auto fired = advance(wheel, 250);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 9u);
}

TEST(TimerWheelTest, ManyTimersExpireTogetherExactlyOnce) {
  TimerWheel wheel(10, 32);
  for (std::uint64_t id = 0; id < 100; ++id) {
    wheel.arm(id, 0, 10 + (id % 7) * 10);
  }
  EXPECT_EQ(wheel.armed_count(), 100u);
  std::vector<std::uint64_t> all;
  // Advance in uneven hops, including one far beyond a full revolution.
  for (const std::uint64_t now : {15u, 35u, 36u, 1000u}) {
    const auto fired = advance(wheel, now);
    all.insert(all.end(), fired.begin(), fired.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 100u);
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "an id fired twice";
  EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheelTest, PollBudgetReflectsArmedTimers) {
  TimerWheel wheel(25, 8);
  EXPECT_EQ(wheel.poll_budget_ms(), -1) << "no timers: sleep forever";
  wheel.arm(1, 0, 1000);
  EXPECT_EQ(wheel.poll_budget_ms(), 25);
  wheel.cancel(1);
  EXPECT_EQ(wheel.poll_budget_ms(), -1);
}

TEST(TimerWheelTest, TimeMovingBackwardIsANoOp) {
  TimerWheel wheel(10, 8);
  wheel.arm(1, 100, 50);
  EXPECT_TRUE(advance(wheel, 140).empty());
  EXPECT_TRUE(advance(wheel, 90).empty()) << "cursor never rewinds";
  const auto fired = advance(wheel, 150);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
}

}  // namespace
}  // namespace baps::netio
