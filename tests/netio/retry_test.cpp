// Regression tests for two netio timing bugs: the retry backoff that a zero
// initial_backoff_ms froze at 0ms forever (a hot retry spin), and the frame
// receive deadline that restarted in full for the payload read (a slow-loris
// peer could hold a worker for ~2x the configured timeout).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "netio/frame_channel.hpp"
#include "netio/retry.hpp"
#include "netio/socket.hpp"
#include "wire/frame.hpp"
#include "wire/messages.hpp"

namespace baps::netio {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

TEST(RetryBackoffTest, ZeroInitialBackoffStillBacksOff) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 0;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 250;

  int attempts = 0;
  const auto start = Clock::now();
  NetError err;
  const bool ok = retry_with_backoff(
      policy, "test_zero_backoff",
      [&attempts](NetError* e) {
        ++attempts;
        e->status = NetStatus::kRefused;  // transient: keeps retrying
        return false;
      },
      &err);
  const auto elapsed = ms_since(start);

  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 8);
  // Sleeps are 0,1,2,4,8,16,32ms once the clamp kicks in — 63ms minimum.
  // The frozen-at-zero bug finished in ~0ms.
  EXPECT_GE(elapsed, 50);
}

TEST(RetryBackoffTest, MultiplierBelowOneCannotStallAtZero) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;
  policy.multiplier = 0.1;  // rounds to 0 without the clamp
  policy.max_backoff_ms = 250;

  const auto start = Clock::now();
  NetError err;
  retry_with_backoff(
      policy, "test_tiny_multiplier",
      [](NetError* e) {
        e->status = NetStatus::kReset;
        return false;
      },
      &err);
  // 1 + 1 + 1 ms of clamped sleeps.
  EXPECT_GE(ms_since(start), 3);
}

TEST(RetryBackoffTest, NonTransientErrorFailsWithoutRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int attempts = 0;
  NetError err;
  EXPECT_FALSE(retry_with_backoff(
      policy, "test_hard_error",
      [&attempts](NetError* e) {
        ++attempts;
        e->status = NetStatus::kTimeout;
        return false;
      },
      &err));
  EXPECT_EQ(attempts, 1);
}

TEST(FrameDeadlineTest, PayloadReadDoesNotRestartTheDeadline) {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 1, &err);
  ASSERT_TRUE(listener.has_value()) << err.message;

  // The slow-loris peer: deliver the header late, then withhold the payload
  // the header promised forever.
  std::thread peer([port = listener->port()] {
    NetError perr;
    auto conn = TcpConnection::connect("127.0.0.1", port, 2000, &perr);
    if (!conn.has_value()) return;
    wire::Hello hello;
    const std::string frame =
        wire::encode_frame(wire::FrameKind::kHello, wire::encode(hello));
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    conn->write_all(frame.data(), wire::kHeaderSize, 1000, &perr);
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  });

  auto accepted = listener->accept(2000, &err);
  ASSERT_TRUE(accepted.has_value()) << err.message;
  FrameChannel channel(std::move(*accepted), Deadlines{2000, 500, 500});

  const auto start = Clock::now();
  const auto got = channel.recv(500, &err);
  const auto elapsed = ms_since(start);
  peer.join();

  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(err.status, NetStatus::kTimeout) << err.message;
  // One whole-frame deadline: ~500ms total. The restarted-deadline bug spent
  // ~300ms on the header and then a fresh 500ms on the payload (~800ms).
  EXPECT_LT(elapsed, 700) << "payload read restarted the deadline";
  EXPECT_GE(elapsed, 450);
}

}  // namespace
}  // namespace baps::netio
