// FrameChannel under traced and hostile trace-context traffic: sampled
// contexts must cross a real socket intact (with frame_send/frame_recv spans
// on both ends), and raw frames with arbitrary fuzzed context bytes must
// never crash the receiving channel or corrupt the delivered payload.
#include "netio/frame_channel.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/crc32.hpp"

namespace baps::netio {
namespace {

struct ChannelPair {
  FrameChannel client;
  FrameChannel server;
};

std::optional<ChannelPair> connect_pair() {
  NetError err;
  auto listener = TcpListener::listen("127.0.0.1", 0, 8, &err);
  if (!listener.has_value()) return std::nullopt;
  auto conn = TcpConnection::connect("127.0.0.1", listener->port(), 1000, &err);
  if (!conn.has_value()) return std::nullopt;
  auto accepted = listener->accept(1000, &err);
  if (!accepted.has_value()) return std::nullopt;
  const Deadlines deadlines{1000, 1000, 1000};
  return ChannelPair{FrameChannel(std::move(*conn), deadlines),
                     FrameChannel(std::move(*accepted), deadlines)};
}

obs::Tracer::Params always_on(const std::string& service) {
  obs::Tracer::Params p;
  p.seed = 7;
  p.sample_rate = 1.0;
  p.service = service;
  return p;
}

TEST(FrameChannelTraceTest, SampledContextCrossesTheSocketWithSpans) {
  auto pair = connect_pair();
  ASSERT_TRUE(pair.has_value());
  obs::Registry send_reg, recv_reg;
  obs::Tracer send_tracer(always_on("client"), &send_reg);
  obs::Tracer recv_tracer(always_on("proxyd"), &recv_reg);
  pair->client.set_tracer(&send_tracer);
  pair->server.set_tracer(&recv_tracer);

  obs::Span root = send_tracer.start_root_span(obs::SpanKind::kClientFetch);
  NetError err;
  ASSERT_TRUE(pair->client.send(wire::FrameKind::kFetchRequest, "payload",
                                root.context(), &err))
      << err.message;
  const auto frame = pair->server.recv(&err);
  ASSERT_TRUE(frame.has_value()) << err.message;
  EXPECT_EQ(frame->payload, "payload");
  ASSERT_TRUE(frame->trace.valid());
  EXPECT_EQ(frame->trace.trace_id, root.context().trace_id);
  EXPECT_EQ(frame->trace.span_id, root.context().span_id);
  root.end();

  // Both ends recorded channel spans in the same trace, and the receiver's
  // frame_recv span is parented to the sender's context.
  bool sent_span = false, recv_span = false;
  for (const auto& s : send_tracer.recent_spans()) {
    if (s.kind == obs::SpanKind::kFrameSend &&
        s.trace_id == root.context().trace_id) {
      sent_span = true;
    }
  }
  for (const auto& s : recv_tracer.recent_spans()) {
    if (s.kind == obs::SpanKind::kFrameRecv &&
        s.trace_id == root.context().trace_id) {
      recv_span = true;
      EXPECT_EQ(s.parent_id, root.context().span_id);
    }
  }
  EXPECT_TRUE(sent_span);
  EXPECT_TRUE(recv_span);
}

TEST(FrameChannelTraceTest, UntracedSendRecordsNothing) {
  auto pair = connect_pair();
  ASSERT_TRUE(pair.has_value());
  obs::Registry reg;
  obs::Tracer tracer(always_on("client"), &reg);
  pair->client.set_tracer(&tracer);
  pair->server.set_tracer(&tracer);
  NetError err;
  ASSERT_TRUE(pair->client.send(wire::FrameKind::kBye, "", &err));
  const auto frame = pair->server.recv(&err);
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(frame->trace.valid());
  EXPECT_EQ(tracer.spans_recorded(), 0u);
}

/// Builds a raw frame whose trace-context region is arbitrary bytes. The CRC
/// is computed the way the encoder would, so the frame is wire-valid and the
/// receiver must parse (or skip) the context without ever corrupting the
/// payload.
std::string raw_frame(wire::FrameKind kind, std::string_view tc_bytes,
                      std::string_view payload) {
  std::string region(tc_bytes);
  region.append(payload.data(), payload.size());
  const auto tc_len = static_cast<std::uint16_t>(tc_bytes.size());
  wire::Writer w;
  w.u32(wire::kMagic);
  w.u8(wire::kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u16(tc_len);
  w.u32(static_cast<std::uint32_t>(region.size()));
  std::uint32_t crc = 0;
  if (tc_len == 0) {
    crc = wire::crc32(region);
  } else {
    const std::uint8_t len_le[2] = {static_cast<std::uint8_t>(tc_len & 0xff),
                                    static_cast<std::uint8_t>(tc_len >> 8)};
    crc = wire::crc32_update(
        wire::crc32({len_le, 2}),
        {reinterpret_cast<const std::uint8_t*>(region.data()), region.size()});
  }
  w.u32(crc);
  std::string out = w.take();
  out.append(region);
  return out;
}

TEST(FrameChannelTraceTest, FuzzedContextBytesNeverCrashTheChannel) {
  auto pair = connect_pair();
  ASSERT_TRUE(pair.has_value());
  // A tracer on the receiver exercises the full parse-context-and-record
  // path against the hostile bytes, not just the skip path.
  obs::Registry reg;
  obs::Tracer tracer(always_on("proxyd"), &reg);
  pair->server.set_tracer(&tracer);

  baps::SplitMix64 rng(0xF0221u);
  for (int iter = 0; iter < 256; ++iter) {
    const std::size_t tc_len = rng.next() % 48;
    std::string tc(tc_len, '\0');
    for (auto& c : tc) c = static_cast<char>(rng.next() & 0xFF);
    std::string payload(rng.next() % 48, '\0');
    for (auto& c : payload) c = static_cast<char>(rng.next() & 0xFF);
    const std::string bytes =
        raw_frame(wire::FrameKind::kFetchRequest, tc, payload);
    NetError err;
    ASSERT_TRUE(pair->client.connection().write_all(bytes.data(), bytes.size(),
                                                    1000, &err))
        << err.message;
    const auto frame = pair->server.recv(&err);
    ASSERT_TRUE(frame.has_value()) << "iteration " << iter << ": "
                                   << err.message;
    EXPECT_EQ(frame->payload, payload) << "iteration " << iter;
  }
}

TEST(FrameChannelTraceTest, OversizedContextClaimIsAHardError) {
  auto pair = connect_pair();
  ASSERT_TRUE(pair.has_value());
  // tc_len says one context byte but the payload region is empty: the
  // receiver must surface a decode error, not hang or misread.
  std::string bytes = wire::encode_frame(wire::FrameKind::kHello, "");
  bytes[6] = 1;
  NetError err;
  ASSERT_TRUE(pair->client.connection().write_all(bytes.data(), bytes.size(),
                                                  1000, &err));
  const auto frame = pair->server.recv(&err);
  EXPECT_FALSE(frame.has_value());
  EXPECT_EQ(err.status, NetStatus::kError);
}

}  // namespace
}  // namespace baps::netio
