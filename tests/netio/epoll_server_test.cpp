// The epoll frame server against real sockets: echo semantics, partial-frame
// resume (bytes dribbled across many writes decode to the same frames), write
// backpressure bounds, idle-timeout reaping, graceful drain, per-connection
// handler state, and a concurrent many-connection sweep — the properties the
// edge-triggered loop must preserve versus the blocking reference server.
#include "netio/epoll_server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netio/frame_channel.hpp"
#include "netio/socket.hpp"
#include "wire/frame.hpp"

namespace baps::netio {
namespace {

using Clock = std::chrono::steady_clock;

EpollFrameServer::Params fast_params() {
  EpollFrameServer::Params p;
  p.drain_timeout_ms = 500;
  return p;
}

/// Echoes every frame back; the default handler for these tests.
EpollFrameServer::FrameHandler echo_handler() {
  return [](EpollFrameServer::Connection& conn, wire::Frame&& frame) {
    return conn.send(frame.kind, frame.payload);
  };
}

std::optional<FrameChannel> dial(std::uint16_t port) {
  NetError err;
  auto conn = TcpConnection::connect("127.0.0.1", port, 2000, &err);
  if (!conn.has_value()) return std::nullopt;
  return FrameChannel(std::move(*conn), Deadlines{2000, 5000, 5000});
}

TEST(EpollFrameServerTest, EchoesFramesOverRealSockets) {
  EpollFrameServer server(fast_params(), echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  auto channel = dial(server.port());
  ASSERT_TRUE(channel.has_value());
  for (int i = 0; i < 10; ++i) {
    const std::string payload = "ping-" + std::to_string(i);
    NetError err;
    ASSERT_TRUE(channel->send(wire::FrameKind::kHello, payload, &err));
    const auto frame = channel->recv(&err);
    ASSERT_TRUE(frame.has_value()) << err.message;
    EXPECT_EQ(frame->kind, wire::FrameKind::kHello);
    EXPECT_EQ(frame->payload, payload);
  }
  channel->close();
  server.stop();
  EXPECT_GE(server.sessions_handled(), 1u);
}

TEST(EpollFrameServerTest, PartialFramesResumeAcrossDribbledWrites) {
  EpollFrameServer server(fast_params(), echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  NetError err;
  auto conn = TcpConnection::connect("127.0.0.1", server.port(), 2000, &err);
  ASSERT_TRUE(conn.has_value()) << err.message;

  // Two frames encoded back to back, then pushed through the socket a few
  // bytes at a time: every chunk boundary lands mid-header or mid-payload at
  // some point, so the server's read FSM must park a partial frame and
  // resume it on the next readiness edge.
  const std::string p1(300, 'a');
  const std::string p2 = "tail-frame";
  std::string bytes = wire::encode_frame(wire::FrameKind::kHello, p1);
  bytes += wire::encode_frame(wire::FrameKind::kBye, p2);
  for (std::size_t off = 0; off < bytes.size();) {
    const std::size_t n = std::min<std::size_t>(7, bytes.size() - off);
    ASSERT_TRUE(conn->write_all(bytes.data() + off, n, 2000, &err));
    off += n;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  FrameChannel channel(std::move(*conn), Deadlines{2000, 5000, 5000});
  auto f1 = channel.recv(&err);
  ASSERT_TRUE(f1.has_value()) << err.message;
  EXPECT_EQ(f1->kind, wire::FrameKind::kHello);
  EXPECT_EQ(f1->payload, p1);
  auto f2 = channel.recv(&err);
  ASSERT_TRUE(f2.has_value()) << err.message;
  EXPECT_EQ(f2->kind, wire::FrameKind::kBye);
  EXPECT_EQ(f2->payload, p2);
  server.stop();
}

TEST(EpollFrameServerTest, CoalescedFramesAllReachTheHandler) {
  EpollFrameServer server(fast_params(), echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  NetError err;
  auto conn = TcpConnection::connect("127.0.0.1", server.port(), 2000, &err);
  ASSERT_TRUE(conn.has_value()) << err.message;
  // Many frames in ONE write: a single readiness edge carries them all, so
  // the decode loop must keep consuming until kNeedMore, not stop at one.
  std::string bytes;
  for (int i = 0; i < 32; ++i) {
    bytes += wire::encode_frame(wire::FrameKind::kStatsRequest,
                                "req-" + std::to_string(i));
  }
  ASSERT_TRUE(conn->write_all(bytes.data(), bytes.size(), 2000, &err));
  FrameChannel channel(std::move(*conn), Deadlines{2000, 5000, 5000});
  for (int i = 0; i < 32; ++i) {
    const auto frame = channel.recv(&err);
    ASSERT_TRUE(frame.has_value()) << "frame " << i << ": " << err.message;
    EXPECT_EQ(frame->payload, "req-" + std::to_string(i));
  }
  server.stop();
}

TEST(EpollFrameServerTest, HandlerFalseEndsSessionAfterFlushingReplies) {
  // Replies queued by the final frame must still reach the client (the
  // blocking server's "send error reply, then drop" pattern).
  EpollFrameServer server(
      fast_params(),
      [](EpollFrameServer::Connection& conn, wire::Frame&& frame) {
        conn.send(wire::FrameKind::kError, frame.payload);
        return false;
      });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto channel = dial(server.port());
  ASSERT_TRUE(channel.has_value());
  NetError err;
  ASSERT_TRUE(channel->send(wire::FrameKind::kHello, "doomed", &err));
  const auto reply = channel->recv(&err);
  ASSERT_TRUE(reply.has_value()) << err.message;
  EXPECT_EQ(reply->kind, wire::FrameKind::kError);
  EXPECT_EQ(reply->payload, "doomed");
  // Then the server closes: the next read sees EOF, not a timeout.
  EXPECT_FALSE(channel->recv(&err).has_value());
  EXPECT_EQ(err.status, NetStatus::kClosed);
  server.stop();
}

TEST(EpollFrameServerTest, PerConnectionStatePersistsAcrossFrames) {
  EpollFrameServer server(
      fast_params(),
      [](EpollFrameServer::Connection& conn, wire::Frame&&) {
        auto count = std::static_pointer_cast<int>(conn.state());
        if (count == nullptr) {
          count = std::make_shared<int>(0);
          conn.state() = count;
        }
        ++*count;
        return conn.send(wire::FrameKind::kStatsResponse,
                         std::to_string(*count));
      });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto a = dial(server.port());
  auto b = dial(server.port());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  NetError err;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(a->send(wire::FrameKind::kStatsRequest, "", &err));
    const auto fa = a->recv(&err);
    ASSERT_TRUE(fa.has_value());
    EXPECT_EQ(fa->payload, std::to_string(i)) << "state lost or shared";
  }
  // Connection b has its own counter: the state slot is per-connection.
  ASSERT_TRUE(b->send(wire::FrameKind::kStatsRequest, "", &err));
  const auto fb = b->recv(&err);
  ASSERT_TRUE(fb.has_value());
  EXPECT_EQ(fb->payload, "1");
  server.stop();
}

TEST(EpollFrameServerTest, IdleConnectionsAreReaped) {
  EpollFrameServer::Params params = fast_params();
  params.idle_timeout_ms = 150;
  EpollFrameServer server(params, echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto channel = dial(server.port());
  ASSERT_TRUE(channel.has_value());
  // Active traffic keeps the connection alive past the idle budget...
  NetError err;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(channel->send(wire::FrameKind::kHello, "tick", &err));
    ASSERT_TRUE(channel->recv(&err).has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  // ...then silence: the server must close it within a few timeouts.
  const auto frame = channel->recv(&err);
  EXPECT_FALSE(frame.has_value());
  EXPECT_EQ(err.status, NetStatus::kClosed);
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (server.connections_active() != 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.connections_active(), 0u);
  server.stop();
}

TEST(EpollFrameServerTest, StopDrainsQueuedWritesBeforeClosing) {
  // The handler replies with a large frame and the client reads slowly:
  // stop() must let the queued bytes flush (within drain_timeout_ms), so the
  // client still receives a complete, CRC-valid frame after stop() begins.
  const std::string big(2u << 20, 'x');
  EpollFrameServer::Params params = fast_params();
  params.drain_timeout_ms = 5000;
  EpollFrameServer server(
      params, [&big](EpollFrameServer::Connection& conn, wire::Frame&&) {
        conn.send(wire::FrameKind::kFetchResponse, big);
        conn.close_after_flush();
        return true;
      });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto channel = dial(server.port());
  ASSERT_TRUE(channel.has_value());
  NetError err;
  ASSERT_TRUE(channel->send(wire::FrameKind::kFetchRequest, "want", &err));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([&server] { server.stop(); });
  const auto frame = channel->recv(&err);
  stopper.join();
  ASSERT_TRUE(frame.has_value()) << err.message;
  EXPECT_EQ(frame->payload.size(), big.size());
  EXPECT_FALSE(server.running());
}

TEST(EpollFrameServerTest, ManyConcurrentConnectionsAllEcho) {
  EpollFrameServer server(fast_params(), echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Open a batch of connections FIRST, then exchange on all of them: the
  // server is demonstrably holding them concurrently, not serially.
  constexpr int kConns = 64;
  std::vector<FrameChannel> channels;
  channels.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    auto channel = dial(server.port());
    ASSERT_TRUE(channel.has_value()) << "dial " << i;
    channels.push_back(std::move(*channel));
  }
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (server.connections_active() < kConns && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.connections_active(), static_cast<std::size_t>(kConns));
  NetError err;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kConns; ++i) {
      const std::string payload =
          std::to_string(round) + ":" + std::to_string(i);
      ASSERT_TRUE(channels[static_cast<std::size_t>(i)].send(
          wire::FrameKind::kHello, payload, &err));
      const auto frame = channels[static_cast<std::size_t>(i)].recv(&err);
      ASSERT_TRUE(frame.has_value()) << err.message;
      EXPECT_EQ(frame->payload, payload);
    }
  }
  for (auto& c : channels) c.close();
  server.stop();
  EXPECT_GE(server.sessions_handled(), static_cast<std::uint64_t>(kConns));
}

TEST(EpollFrameServerTest, ConnectionCeilingParksAcceptUntilACloseFreesASlot) {
  EpollFrameServer::Params params = fast_params();
  params.max_connections = 2;
  EpollFrameServer server(params, echo_handler());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto a = dial(server.port());
  auto b = dial(server.port());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  NetError err;
  ASSERT_TRUE(a->send(wire::FrameKind::kHello, "a", &err));
  ASSERT_TRUE(a->recv(&err).has_value());
  ASSERT_TRUE(b->send(wire::FrameKind::kHello, "b", &err));
  ASSERT_TRUE(b->recv(&err).has_value());

  // A third dial connects at TCP level (backlog) but is not accepted: its
  // frame gets no echo while the ceiling holds.
  auto c = dial(server.port());
  ASSERT_TRUE(c.has_value());
  ASSERT_TRUE(c->send(wire::FrameKind::kHello, "c", &err));
  EXPECT_EQ(server.connections_active(), 2u);

  // Closing one parked-out connection frees the slot; the server un-parks
  // and finally serves c.
  a->close();
  const auto frame = c->recv(&err);
  ASSERT_TRUE(frame.has_value()) << err.message;
  EXPECT_EQ(frame->payload, "c");
  server.stop();
}

}  // namespace
}  // namespace baps::netio
