// Every documented metric family must exist in a registry snapshot taken
// right after the eager registration calls — BEFORE any traffic. A family
// that only appears once traffic touches it makes time-series streams and
// dashboards grow columns mid-run and makes fault-free reports silently
// omit the fault counters; eager registration pins the full schema from
// interval #0. Registry::global() is shared across tests in this binary, so
// these are presence assertions, not value assertions.
#include <gtest/gtest.h>

#include <string>

#include "fault/fault_plan.hpp"
#include "netio/netio_metrics.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sim/sharded_replay.hpp"
#include "store/tiered_store.hpp"

namespace baps {
namespace {

bool has_counter(const obs::Snapshot& snap, const std::string& name,
                 const obs::Labels& labels = {}) {
  return snap.counter(name, labels) != nullptr;
}

bool has_histogram(const obs::Snapshot& snap, const std::string& name,
                   const obs::Labels& labels) {
  for (const obs::HistogramSample& h : snap.histograms) {
    if (h.name == name && h.labels == labels) return true;
  }
  return false;
}

bool has_gauge(const obs::Snapshot& snap, const std::string& name) {
  for (const obs::GaugeSample& g : snap.gauges) {
    if (g.name == name) return true;
  }
  return false;
}

TEST(MetricFamiliesTest, EagerRegistrationCoversEveryDocumentedFamily) {
  store::register_store_metric_families();
  fault::register_fault_metric_families();
  obs::register_trace_metric_families();
  sim::register_shard_metric_families();
  const obs::Snapshot snap = obs::Registry::global().snapshot();

  // Durable store family (report_check's store validator needs probes,
  // hits, misses present together and both bytes directions).
  for (const char* name :
       {"store_probes_total", "store_hits_total", "store_misses_total",
        "store_demotions_total", "store_promotions_total",
        "store_integrity_failures_total"}) {
    EXPECT_TRUE(has_counter(snap, name)) << name;
  }
  EXPECT_TRUE(has_counter(snap, "store_bytes_total", {{"dir", "read"}}));
  EXPECT_TRUE(has_counter(snap, "store_bytes_total", {{"dir", "written"}}));
  for (const char* op : {"probe", "demote", "promote"}) {
    EXPECT_TRUE(has_histogram(snap, "store_stage_seconds", {{"op", op}}))
        << op;
  }

  // Fault-injection family: every kind, both directions, always labeled
  // (report_check rejects unlabeled fault counters).
  for (const char* kind :
       {"peer_disconnect", "peer_depart", "peer_join", "slow_peer",
        "drop_frame", "corrupt_frame", "proxy_restart"}) {
    EXPECT_TRUE(has_counter(snap, "fault_injected_total", {{"kind", kind}}))
        << kind;
    EXPECT_TRUE(has_counter(snap, "fault_recovered_total", {{"kind", kind}}))
        << kind;
  }
  EXPECT_TRUE(has_counter(snap, "stale_index_hits_total"));

  // Tracing family: every span kind as a labeled counter and a labeled
  // stage histogram.
  for (const char* kind :
       {"client_fetch", "index_lookup", "cache_probe", "peer_transfer",
        "origin_fetch", "frame_send", "frame_recv"}) {
    EXPECT_TRUE(has_counter(snap, "trace_spans_total", {{"kind", kind}}))
        << kind;
    EXPECT_TRUE(has_histogram(snap, "trace_stage_seconds", {{"stage", kind}}))
        << kind;
  }

  // Sharded-replay merge-contract counters.
  EXPECT_TRUE(has_counter(snap, "shard_requests_total"));
  EXPECT_TRUE(has_counter(snap, "shard_merged_requests_total"));
}

TEST(MetricFamiliesTest, NetioFamiliesRegisterEagerly) {
  netio::register_netio_metric_families();
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_TRUE(has_gauge(snap, "netio_connections_active"));
  for (const char* name :
       {"netio_connections_total", "netio_accept_errors_total",
        "netio_epoll_wakeups_total", "netio_epoll_accept_backpressure_total",
        "netio_epoll_writeq_stall_total", "netio_epoll_idle_closes_total",
        "netio_epoll_drained_total", "netio_pool_reuse_total",
        "netio_pool_dial_total", "netio_pool_discard_total"}) {
    EXPECT_TRUE(has_counter(snap, name)) << name;
  }

  // Idempotent like the other families: re-registering resolves the same
  // instruments instead of duplicating them.
  netio::register_netio_metric_families();
  const obs::Snapshot again = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counters.size(), again.counters.size());
  EXPECT_EQ(snap.gauges.size(), again.gauges.size());
}

TEST(MetricFamiliesTest, EagerRegistrationIsIdempotent) {
  store::register_store_metric_families();
  fault::register_fault_metric_families();
  obs::register_trace_metric_families();
  const obs::Snapshot before = obs::Registry::global().snapshot();
  store::register_store_metric_families();
  fault::register_fault_metric_families();
  obs::register_trace_metric_families();
  const obs::Snapshot after = obs::Registry::global().snapshot();
  // Re-registering resolves the same instruments; no duplicates appear.
  EXPECT_EQ(before.counters.size(), after.counters.size());
  EXPECT_EQ(before.histograms.size(), after.histograms.size());
  std::size_t store_probes = 0;
  for (const obs::CounterSample& c : after.counters) {
    if (c.name == "store_probes_total") ++store_probes;
  }
  EXPECT_EQ(store_probes, 1u);
}

}  // namespace
}  // namespace baps
