// Cross-module integration tests: full pipelines from workload generation
// through simulation to metrics, analytic cross-checks between independent
// code paths, and end-to-end determinism.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "runtime/system.hpp"
#include "trace/analysis.hpp"

namespace baps {
namespace {

using core::OrgKind;

const trace::Trace& shared_trace() {
  static const trace::Trace t =
      trace::load_preset_scaled(trace::Preset::kNlanrBo1, 0.1);
  return t;
}

TEST(PipelineTest, InfiniteCachesReachTheTraceStatsBound) {
  // Independent cross-check: a proxy-only organization with an infinite
  // cache must measure exactly the max hit ratio TraceStats computes — two
  // completely separate implementations of the same quantity.
  const trace::TraceStats stats = trace::compute_stats(shared_trace());
  sim::SimConfig cfg;
  cfg.proxy_cache_bytes = stats.total_bytes + 1;  // effectively infinite
  const sim::Metrics m =
      sim::run_organization(OrgKind::kProxyOnly, cfg, shared_trace());
  EXPECT_DOUBLE_EQ(m.hit_ratio(), stats.max_hit_ratio);
  EXPECT_DOUBLE_EQ(m.byte_hit_ratio(), stats.max_byte_hit_ratio);
}

TEST(PipelineTest, InfiniteBrowsersAwareAlsoReachesTheBound) {
  // With infinite browser caches AND an infinite proxy, BAPS can do no
  // better than the re-reference bound — and no worse.
  const trace::TraceStats stats = trace::compute_stats(shared_trace());
  sim::SimConfig cfg;
  cfg.proxy_cache_bytes = stats.total_bytes + 1;
  cfg.browser_cache_bytes.assign(stats.num_clients, stats.total_bytes + 1);
  const sim::Metrics m =
      sim::run_organization(OrgKind::kBrowsersAware, cfg, shared_trace());
  EXPECT_DOUBLE_EQ(m.hit_ratio(), stats.max_hit_ratio);
}

TEST(PipelineTest, NoOrganizationExceedsTheReReferenceBound) {
  const trace::TraceStats stats = trace::compute_stats(shared_trace());
  core::RunSpec spec;
  spec.relative_cache_size = 0.20;
  spec.sizing = core::BrowserSizing::kAverage;
  for (const OrgKind kind : sim::kAllOrganizations) {
    const sim::Metrics m =
        core::run_one(kind, shared_trace(), stats, spec);
    EXPECT_LE(m.hit_ratio(), stats.max_hit_ratio + 1e-12)
        << sim::org_name(kind);
    EXPECT_LE(m.byte_hit_ratio(), stats.max_byte_hit_ratio + 1e-12)
        << sim::org_name(kind);
  }
}

TEST(PipelineTest, SimulationIsFullyDeterministic) {
  const trace::TraceStats stats = trace::compute_stats(shared_trace());
  core::RunSpec spec;
  spec.relative_cache_size = 0.05;
  const sim::Metrics a =
      core::run_one(OrgKind::kBrowsersAware, shared_trace(), stats, spec);
  const sim::Metrics b =
      core::run_one(OrgKind::kBrowsersAware, shared_trace(), stats, spec);
  EXPECT_EQ(a.hits.hits(), b.hits.hits());
  EXPECT_EQ(a.remote_browser_hits, b.remote_browser_hits);
  EXPECT_DOUBLE_EQ(a.total_service_time_s, b.total_service_time_s);
  EXPECT_DOUBLE_EQ(a.remote_contention_time_s, b.remote_contention_time_s);
}

TEST(PipelineTest, TraceExportReimportPreservesSimulationResults) {
  // generator → plain-log writer → parser → simulator must agree with the
  // direct path (URL interning preserves document identity).
  std::stringstream buf;
  trace::write_plain_log(shared_trace(), buf);
  const trace::ParseResult parsed = trace::parse_plain_log(buf, "reimport");
  ASSERT_EQ(parsed.trace.size(), shared_trace().size());

  // Pin identical byte sizes for both runs: the reimported trace only
  // numbers clients that actually appear, so derived (per-N) sizing rules
  // would legitimately differ. With equal per-browser and proxy capacities
  // the simulations must agree exactly — ids are just labels.
  const trace::TraceStats stats = trace::compute_stats(shared_trace());
  const std::uint64_t proxy_bytes = sim::proxy_cache_bytes_for(stats, 0.05);
  const std::uint64_t browser_bytes =
      sim::min_browser_cache_bytes(proxy_bytes, stats.num_clients);

  sim::SimConfig direct_cfg;
  direct_cfg.proxy_cache_bytes = proxy_bytes;
  direct_cfg.browser_cache_bytes.assign(shared_trace().num_clients(),
                                        browser_bytes);
  sim::SimConfig reimport_cfg = direct_cfg;
  reimport_cfg.browser_cache_bytes.assign(parsed.trace.num_clients(),
                                          browser_bytes);

  const sim::Metrics direct = sim::run_organization(
      OrgKind::kBrowsersAware, direct_cfg, shared_trace());
  const sim::Metrics reimported = sim::run_organization(
      OrgKind::kBrowsersAware, reimport_cfg, parsed.trace);
  EXPECT_EQ(direct.hits.hits(), reimported.hits.hits());
  EXPECT_EQ(direct.byte_hits.hits(), reimported.byte_hits.hits());
  EXPECT_EQ(direct.remote_browser_hits, reimported.remote_browser_hits);
}

TEST(PipelineTest, LatencyQuantilesAreOrderedAndPlausible) {
  const trace::TraceStats stats = trace::compute_stats(shared_trace());
  core::RunSpec spec;
  spec.relative_cache_size = 0.10;
  const sim::Metrics m =
      core::run_one(OrgKind::kBrowsersAware, shared_trace(), stats, spec);
  const double p50 = m.latency_quantile(0.5);
  const double p99 = m.latency_quantile(0.99);
  EXPECT_LT(p50, p99);
  EXPECT_GT(p50, 1e-6);   // at least a memory read
  EXPECT_LT(p99, 1000.0); // below the histogram ceiling
  EXPECT_EQ(m.log_latency.count(), m.hits.total());
}

TEST(PipelineTest, ServiceTimeDecomposesByHitLocation) {
  // total_hit_latency + (total - hit) must equal total_service_time: miss
  // fetches are the only component excluded from hit latency.
  const trace::TraceStats stats = trace::compute_stats(shared_trace());
  core::RunSpec spec;
  spec.relative_cache_size = 0.10;
  for (const OrgKind kind : sim::kAllOrganizations) {
    const sim::Metrics m = core::run_one(kind, shared_trace(), stats, spec);
    double miss_time = 0.0;
    const sim::LatencyModel lat(spec.latency);
    // Recompute miss time from first principles over the trace is overkill;
    // instead verify the decomposition bound: hit latency ≤ total, and the
    // difference is consistent with per-miss origin costs (≥ RTT each).
    const double difference = m.total_service_time_s - m.total_hit_latency_s;
    miss_time = static_cast<double>(m.misses) * spec.latency.origin_rtt_s;
    EXPECT_GE(difference + 1e-9, miss_time) << sim::org_name(kind);
  }
}

TEST(PipelineTest, AnalysisAndStatsAgreeOnColdMisses) {
  // stack_distances_of's cold misses == unique docs... except mutations
  // never create new DocIds, so cold misses equal TraceStats::unique_docs.
  const trace::TraceStats stats = trace::compute_stats(shared_trace());
  const trace::StackDistanceHistogram h =
      trace::stack_distances_of(shared_trace());
  EXPECT_EQ(h.cold_misses, stats.unique_docs);
  EXPECT_EQ(h.cold_misses + h.rereferences, stats.num_requests);
}

TEST(PipelineTest, WatermarkSurvivesTraceDrivenReplayThroughRuntime) {
  // Replay a (tiny) slice of a generated trace through the live protocol
  // engine: every single delivery must verify, whatever path it took.
  runtime::BapsSystem::Params p;
  p.num_clients = shared_trace().num_clients() < 8
                      ? shared_trace().num_clients()
                      : 8;
  p.proxy_cache_bytes = 32 << 10;
  p.browser_cache_bytes = 32 << 10;
  runtime::BapsSystem sys(p);
  std::size_t replayed = 0;
  for (const trace::Request& r : shared_trace().requests()) {
    if (r.client >= p.num_clients) continue;
    const auto out =
        sys.browse(r.client, shared_trace().url_of(r.doc));
    ASSERT_TRUE(out.verified);
    if (++replayed >= 1500) break;
  }
  EXPECT_EQ(sys.tamper_detections(), 0u);
  EXPECT_EQ(sys.rejected_index_updates(), 0u);
  EXPECT_GT(sys.local_hits() + sys.proxy_hits() + sys.peer_hits(), 0u);
}

}  // namespace
}  // namespace baps
