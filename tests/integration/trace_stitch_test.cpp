// End-to-end distributed tracing over real sockets: a client-side tracer on
// the BapsSystem/TcpTransport and a proxy-side tracer on the ProxyServer,
// both seeded identically with sampling at 1.0. Every browse must produce
// one root client_fetch span whose trace id reappears in the proxy's spans
// (the context rode the FetchRequest frame), every parent link must resolve
// within the union of both sides' spans (the cross-process stitch), and a
// peer-served request must stitch all three roles — requester, proxy, and
// holder — into one trace. With sampling at 0 the same setup must record
// nothing on either side.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "runtime/proxy_server.hpp"
#include "runtime/system.hpp"
#include "runtime/tcp_transport.hpp"

namespace baps::runtime {
namespace {

constexpr std::uint64_t kSeed = 11;

ProxyServer::Params proxy_params(std::uint32_t clients,
                                 std::uint64_t proxy_cache) {
  ProxyServer::Params p;
  p.core.num_clients = clients;
  p.core.proxy_cache_bytes = proxy_cache;
  p.core.seed = kSeed;
  p.net.worker_threads = clients + 2;
  p.net.accept_poll_ms = 10;
  p.net.deadlines = netio::Deadlines{1000, 100, 1000};
  p.peer_deadlines = netio::Deadlines{300, 1000, 1000};
  return p;
}

obs::Tracer::Params tracer_params(double rate, const std::string& service) {
  obs::Tracer::Params p;
  p.seed = kSeed;
  p.sample_rate = rate;
  p.service = service;
  return p;
}

TEST(TraceStitchTest, OneTraceSpansClientProxyAndHolder) {
  // Tracers outlive the transport/system (channels keep raw pointers).
  obs::Registry client_reg, proxy_reg;
  obs::Tracer client_tracer(tracer_params(1.0, "client"), &client_reg);
  obs::Tracer proxy_tracer(tracer_params(1.0, "proxyd"), &proxy_reg);

  BapsSystem::Params params;
  params.num_clients = 3;
  params.seed = kSeed;
  // Proxy cache small enough that filler traffic evicts the target, forcing
  // a peer fetch for the final request.
  params.proxy_cache_bytes = 8 << 10;

  ProxyServer server(proxy_params(params.num_clients,
                                  params.proxy_cache_bytes));
  server.set_tracer(&proxy_tracer);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TcpTransport::Params tp;
  tp.proxy_port = server.port();
  TcpTransport transport(tp);
  BapsSystem sys(params, transport);
  sys.set_tracer(&client_tracer);

  const std::string url = "http://stitched.test/";
  sys.browse(0, url);  // origin fetch; client 0 becomes the holder
  for (int i = 0; i < 64; ++i) {
    sys.browse(1, "http://filler.test/" + std::to_string(i));
  }
  const FetchOutcome out = sys.browse(2, url);
  ASSERT_EQ(out.source, FetchOutcome::Source::kRemoteBrowser)
      << "setup failed to force a peer fetch";

  const std::vector<obs::SpanRecord> client_spans =
      client_tracer.recent_spans();
  const std::vector<obs::SpanRecord> proxy_spans =
      proxy_tracer.recent_spans();
  ASSERT_FALSE(client_spans.empty());
  ASSERT_FALSE(proxy_spans.empty());

  // One root per browse, all on the client side.
  std::map<std::uint64_t, std::size_t> roots_by_trace;
  std::set<std::uint64_t> client_traces;
  for (const obs::SpanRecord& s : client_spans) {
    client_traces.insert(s.trace_id);
    if (s.parent_id == 0) {
      EXPECT_EQ(s.kind, obs::SpanKind::kClientFetch);
      ++roots_by_trace[s.trace_id];
    }
  }
  EXPECT_EQ(roots_by_trace.size(), 66u);  // 1 + 64 + 1 browses
  for (const auto& [trace_id, roots] : roots_by_trace) {
    EXPECT_EQ(roots, 1u) << "trace " << trace_id;
  }
  for (const obs::SpanRecord& s : proxy_spans) {
    EXPECT_EQ(roots_by_trace.count(s.trace_id), 1u)
        << "proxy span of a trace no client started";
    EXPECT_NE(s.parent_id, 0u) << "proxy must never root a trace";
  }

  // Every browse reached the proxy, so every trace id must appear on both
  // sides — the wire really carried the context.
  std::set<std::uint64_t> proxy_traces;
  for (const obs::SpanRecord& s : proxy_spans) proxy_traces.insert(s.trace_id);
  EXPECT_EQ(proxy_traces.size(), client_traces.size());

  // Cross-process stitch: within each trace, every parent resolves to a
  // span recorded on one of the two sides.
  std::map<std::uint64_t, std::set<std::uint64_t>> span_ids;
  std::vector<obs::SpanRecord> all = client_spans;
  all.insert(all.end(), proxy_spans.begin(), proxy_spans.end());
  for (const obs::SpanRecord& s : all) {
    span_ids[s.trace_id].insert(s.span_id);
  }
  for (const obs::SpanRecord& s : all) {
    if (s.parent_id == 0) continue;
    EXPECT_EQ(span_ids[s.trace_id].count(s.parent_id), 1u)
        << "dangling parent " << s.parent_id << " in trace " << s.trace_id;
  }

  // The peer-served request stitches all three roles: the proxy recorded a
  // peer_transfer stage span AND the holder (client process) recorded a
  // peer_transfer serve span, in the same trace.
  const std::uint64_t peer_trace = [&] {
    for (const obs::SpanRecord& s : proxy_spans) {
      if (s.kind == obs::SpanKind::kPeerTransfer) return s.trace_id;
    }
    return std::uint64_t{0};
  }();
  ASSERT_NE(peer_trace, 0u) << "proxy recorded no peer_transfer span";
  bool holder_served = false;
  for (const obs::SpanRecord& s : client_spans) {
    if (s.kind == obs::SpanKind::kPeerTransfer && s.trace_id == peer_trace) {
      holder_served = true;
    }
  }
  EXPECT_TRUE(holder_served)
      << "holder side did not stitch into the peer-fetch trace";

  // Both registries saw per-stage metrics.
  EXPECT_NE(client_reg.snapshot().counter("trace_spans_total",
                                          {{"kind", "client_fetch"}}),
            nullptr);
  EXPECT_NE(proxy_reg.snapshot().counter("trace_spans_total",
                                         {{"kind", "cache_probe"}}),
            nullptr);
  server.stop();
}

TEST(TraceStitchTest, LiveStatsSnapshotServedFromRunningDaemon) {
  obs::Registry proxy_reg;
  obs::Tracer proxy_tracer(tracer_params(1.0, "proxyd"), &proxy_reg);

  BapsSystem::Params params;
  params.num_clients = 2;
  params.seed = kSeed;

  ProxyServer server(proxy_params(params.num_clients,
                                  params.proxy_cache_bytes));
  server.set_tracer(&proxy_tracer);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TcpTransport::Params tp;
  tp.proxy_port = server.port();
  TcpTransport transport(tp);
  BapsSystem sys(params, transport);
  // Client untraced: the proxy must still serve stats (its own tracer
  // only roots nothing, but records nothing either without sampled
  // contexts arriving — so seed traffic with a traced client below).
  obs::Registry client_reg;
  obs::Tracer client_tracer(tracer_params(1.0, "client"), &client_reg);
  sys.set_tracer(&client_tracer);

  sys.browse(0, "http://stats.test/a");
  sys.browse(1, "http://stats.test/a");
  server.capture_window_snapshot();

  const std::string json = transport.trace_stats(/*max_spans=*/16);
  ASSERT_FALSE(json.empty());
  const auto doc = obs::json_parse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->at("schema").as_string(), "baps.trace_stats.v1");
  // Live introspection: the registry section with derived quantile gauges,
  // the rolling window, and the tracer's own counters.
  ASSERT_NE(doc->find("registry"), nullptr);
  ASSERT_NE(doc->find("window"), nullptr);
  const obs::JsonValue* recorded = doc->find("spans_recorded");
  ASSERT_NE(recorded, nullptr);
  EXPECT_GT(recorded->as_uint(), 0u);
  const obs::JsonValue* spans = doc->find("recent_spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  EXPECT_FALSE(spans->as_array().empty());
  EXPECT_LE(spans->as_array().size(), 16u);
  ASSERT_NE(doc->find("slow_traces"), nullptr);
  server.stop();
}

TEST(TraceStitchTest, SamplingOffRecordsNothingOnEitherSide) {
  obs::Registry client_reg, proxy_reg;
  obs::Tracer client_tracer(tracer_params(0.0, "client"), &client_reg);
  obs::Tracer proxy_tracer(tracer_params(0.0, "proxyd"), &proxy_reg);

  BapsSystem::Params params;
  params.num_clients = 2;
  params.seed = kSeed;

  ProxyServer server(proxy_params(params.num_clients,
                                  params.proxy_cache_bytes));
  server.set_tracer(&proxy_tracer);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TcpTransport::Params tp;
  tp.proxy_port = server.port();
  TcpTransport transport(tp);
  BapsSystem sys(params, transport);
  sys.set_tracer(&client_tracer);

  for (int i = 0; i < 8; ++i) {
    sys.browse(static_cast<ClientId>(i % 2),
               "http://quiet.test/" + std::to_string(i));
  }
  EXPECT_EQ(client_tracer.spans_recorded(), 0u);
  EXPECT_EQ(proxy_tracer.spans_recorded(), 0u);
  EXPECT_TRUE(client_reg.snapshot().counters.empty());
  EXPECT_TRUE(proxy_reg.snapshot().counters.empty());
  server.stop();
}

}  // namespace
}  // namespace baps::runtime
