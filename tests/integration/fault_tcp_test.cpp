// Frame-fault injection over the real TCP stack: a corrupted peer-deliver
// frame is rejected by the proxy's CRC check and the request recovers from
// the origin; a dropped frame costs one bounded peer deadline. Both paths
// must leave the fault plan fully recovered.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "fault/fault_plan.hpp"
#include "runtime/proxy_server.hpp"
#include "runtime/system.hpp"
#include "runtime/tcp_transport.hpp"

namespace baps::runtime {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 5;
constexpr std::uint32_t kClients = 3;

ProxyServer::Params proxy_params() {
  ProxyServer::Params p;
  p.core.num_clients = kClients;
  // Small enough that filler traffic evicts the target document, forcing
  // the interesting request through the browser index.
  p.core.proxy_cache_bytes = 8 << 10;
  p.core.seed = kSeed;
  p.net.worker_threads = kClients + 2;
  p.net.accept_poll_ms = 10;
  p.net.deadlines = netio::Deadlines{1000, 100, 1000};
  p.peer_deadlines = netio::Deadlines{300, 1000, 1000};
  return p;
}

BapsSystem::Params system_params() {
  BapsSystem::Params params;
  params.num_clients = kClients;
  params.proxy_cache_bytes = 8 << 10;
  params.seed = kSeed;
  return params;
}

/// Runs `sys` to the point where `url` lives only in client 0's browser (the
/// proxy evicted it), so the next request must go through the peer path.
void stage_peer_only_copy(BapsSystem& sys, const Url& url) {
  sys.browse(0, url);
  for (int i = 0; i < 64; ++i) {
    sys.browse(2, "http://filler.test/" + std::to_string(i));
  }
  ASSERT_TRUE(sys.client_has(0, url));
}

class FaultTcpTest : public ::testing::Test {
 protected:
  FaultTcpTest() : server_(proxy_params()) {}

  void SetUp() override {
    std::string error;
    ASSERT_TRUE(server_.start(&error)) << error;
    TcpTransport::Params tp;
    tp.proxy_port = server_.port();
    transport_ = std::make_unique<TcpTransport>(tp);
    sys_ = std::make_unique<BapsSystem>(system_params(), *transport_);
  }

  void TearDown() override { server_.stop(); }

  ProxyServer server_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<BapsSystem> sys_;
};

TEST_F(FaultTcpTest, CorruptedPeerFrameIsRejectedAndRecoveredFromOrigin) {
  const Url url = "http://corrupt.test/doc";
  stage_peer_only_copy(*sys_, url);

  // Attach after staging so the setup traffic runs fault-free; every peer
  // deliver from here on is corrupted on the wire.
  fault::FaultRates rates;
  rates.of(fault::FaultKind::kCorruptFrame) = 1.0;
  fault::FaultPlan plan(21, rates);
  sys_->attach_fault_plan(&plan);

  const FetchOutcome out = sys_->browse(1, url);
  EXPECT_TRUE(out.verified);
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin)
      << "corrupted frame must fail the CRC and fall back to origin";
  EXPECT_EQ(out.body, sys_->browse(1, url).body);  // cached verified copy
  EXPECT_GE(plan.injected(fault::FaultKind::kCorruptFrame), 1u);
  EXPECT_TRUE(plan.fully_recovered());
  EXPECT_GE(sys_->false_forwards(), 1u);
}

TEST_F(FaultTcpTest, DroppedPeerFrameCostsOneBoundedDeadline) {
  const Url url = "http://drop.test/doc";
  stage_peer_only_copy(*sys_, url);

  fault::FaultRates rates;
  rates.of(fault::FaultKind::kDropFrame) = 1.0;
  fault::FaultPlan plan(22, rates);
  sys_->attach_fault_plan(&plan);

  const auto start = Clock::now();
  const FetchOutcome out = sys_->browse(1, url);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Clock::now() - start)
                      .count();
  EXPECT_TRUE(out.verified);
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin);
  EXPECT_LT(ms, 5000) << "dropped frame must cost one bounded wait";
  EXPECT_GE(plan.injected(fault::FaultKind::kDropFrame), 1u);
  EXPECT_TRUE(plan.fully_recovered());
}

TEST_F(FaultTcpTest, ZeroRatePlanLeavesTcpOutcomesUntouched) {
  const Url url = "http://clean.test/doc";
  stage_peer_only_copy(*sys_, url);

  fault::FaultPlan plan(23, fault::FaultRates{});
  sys_->attach_fault_plan(&plan);

  const FetchOutcome out = sys_->browse(1, url);
  EXPECT_EQ(out.source, FetchOutcome::Source::kRemoteBrowser);
  EXPECT_TRUE(out.verified);
  EXPECT_EQ(plan.injected_total(), 0u);
}

}  // namespace
}  // namespace baps::runtime
