// The epoll transport equivalence proof: the same 1000-request preset trace
// slice runs through two live TCP proxies — one on the blocking worker-pool
// FrameServer (the reference), one on the edge-triggered EpollFrameServer —
// and must produce
//
//   (1) byte-identical per-request outcomes (source, body, verification),
//   (2) equal final ProxyStats, and
//   (3) bit-identical wire metric deltas: the same wire_frames_total{kind,dir}
//       and wire_bytes_total{dir} increments, frame for frame and byte for
//       byte.
//
// (3) is the strong claim: both transports must count through the shared
// netio_metrics helpers at equivalent points (rx when a frame fully decodes,
// tx when its last byte hits the socket), so any divergence in framing,
// retries, or short-circuit paths shows up as a counter mismatch. Deltas are
// compared (not absolute values) because Registry::global() is shared across
// every test in this binary.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "runtime/proxy_server.hpp"
#include "runtime/system.hpp"
#include "runtime/tcp_transport.hpp"
#include "trace/presets.hpp"

namespace baps::runtime {
namespace {

constexpr std::uint32_t kClients = 8;
constexpr std::uint64_t kSeed = 11;
constexpr std::size_t kRequests = 1000;

struct Outcome {
  std::string source;
  std::string body;
  bool verified = false;

  bool operator==(const Outcome& o) const {
    return source == o.source && body == o.body && verified == o.verified;
  }
};

using WireCounts = std::map<std::string, std::uint64_t>;

/// Every wire_frames_total{kind,dir} and wire_bytes_total{dir} instance,
/// keyed by "name|kind|dir" so the map compares structurally.
WireCounts wire_counts() {
  WireCounts counts;
  for (const obs::CounterSample& c : obs::Registry::global().snapshot().counters) {
    if (c.name != "wire_frames_total" && c.name != "wire_bytes_total") {
      continue;
    }
    std::string key = c.name;
    for (const auto& [k, v] : c.labels) {
      key += "|" + k + "=" + v;
    }
    counts[key] += c.value;
  }
  return counts;
}

WireCounts delta(const WireCounts& before, const WireCounts& after) {
  WireCounts d;
  for (const auto& [key, value] : after) {
    const auto it = before.find(key);
    const std::uint64_t prev = it == before.end() ? 0 : it->second;
    if (value != prev) d[key] = value - prev;
  }
  return d;
}

ProxyServer::Params proxy_params(bool event_driven) {
  ProxyServer::Params p;
  p.core.num_clients = kClients;
  p.core.seed = kSeed;
  p.net.worker_threads = kClients + 2;
  p.net.accept_poll_ms = 10;
  p.net.deadlines = netio::Deadlines{1000, 100, 1000};
  p.peer_deadlines = netio::Deadlines{300, 1000, 1000};
  p.event_driven = event_driven;
  return p;
}

/// Runs the slice against a fresh proxy and reports outcomes, final proxy
/// stats, and the wire-counter delta attributable to the slice itself (the
/// snapshot window closes before teardown, so Bye/close traffic — which
/// races server shutdown — never enters the comparison).
void run_slice(bool event_driven, const trace::Trace& t,
               std::vector<Outcome>* outcomes, ProxyStats* stats,
               WireCounts* wire_delta) {
  const WireCounts before = wire_counts();
  ProxyServer server(proxy_params(event_driven));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TcpTransport::Params tp;
  tp.proxy_port = server.port();
  TcpTransport transport(tp);
  BapsSystem::Params sp;
  sp.num_clients = kClients;
  sp.seed = kSeed;
  BapsSystem system(sp, transport);

  std::size_t done = 0;
  for (const trace::Request& req : t.requests()) {
    if (done == kRequests) break;
    const auto client = static_cast<ClientId>(req.client % kClients);
    const FetchOutcome out = system.browse(client, t.url_of(req.doc));
    outcomes->push_back(
        Outcome{source_name(out.source), out.body, out.verified});
    ++done;
  }
  ASSERT_EQ(done, kRequests) << "preset slice shorter than expected";
  *stats = server.core().stats();
  // Close the measurement window while every counted frame is determined:
  // the client holds the last response, so both sides have already counted
  // everything the slice sent.
  *wire_delta = delta(before, wire_counts());
  server.stop();
}

TEST(EpollDifferentialTest, PresetSliceIsBitIdenticalAcrossTransports) {
  const trace::Trace t = trace::load_preset(trace::Preset::kBu95);

  std::vector<Outcome> blocking_outcomes;
  std::vector<Outcome> epoll_outcomes;
  ProxyStats blocking_stats;
  ProxyStats epoll_stats;
  WireCounts blocking_wire;
  WireCounts epoll_wire;
  run_slice(false, t, &blocking_outcomes, &blocking_stats, &blocking_wire);
  run_slice(true, t, &epoll_outcomes, &epoll_stats, &epoll_wire);

  // (1) Per-request outcomes.
  ASSERT_EQ(blocking_outcomes.size(), epoll_outcomes.size());
  for (std::size_t i = 0; i < blocking_outcomes.size(); ++i) {
    ASSERT_TRUE(blocking_outcomes[i] == epoll_outcomes[i])
        << "request " << i << " diverged: blocking="
        << blocking_outcomes[i].source
        << " epoll=" << epoll_outcomes[i].source;
  }

  // (2) Final proxy counters.
  EXPECT_EQ(blocking_stats.proxy_hits, epoll_stats.proxy_hits);
  EXPECT_EQ(blocking_stats.peer_hits, epoll_stats.peer_hits);
  EXPECT_EQ(blocking_stats.origin_fetches, epoll_stats.origin_fetches);
  EXPECT_EQ(blocking_stats.false_forwards, epoll_stats.false_forwards);
  EXPECT_EQ(blocking_stats.rejected_index_updates,
            epoll_stats.rejected_index_updates);

  // (3) Bit-identical wire metric deltas, instance by instance.
  ASSERT_EQ(blocking_wire.size(), epoll_wire.size())
      << "one transport touched a wire counter the other never did";
  for (const auto& [key, value] : blocking_wire) {
    const auto it = epoll_wire.find(key);
    ASSERT_NE(it, epoll_wire.end()) << "missing on epoll side: " << key;
    EXPECT_EQ(value, it->second) << key;
  }
}

}  // namespace
}  // namespace baps::runtime
