// End-to-end TCP transport tests against a live ProxyServer:
//
//  - a 1000-request preset trace slice produces byte-identical per-request
//    outcomes over TCP and over the in-process loopback (the tentpole
//    equivalence claim, at trace scale);
//  - a tampered frame is detected by the CRC and drops the session (§6.1 at
//    the wire level);
//  - a proxy-to-holder PeerFetch frame is captured raw off a test-owned
//    listener and is exactly header + the 8-byte document key — no requester
//    identity crosses the wire (§6.2);
//  - a holder whose peer port is dead costs one bounded wait and degrades to
//    an origin fetch, never a hang.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "crypto/hmac.hpp"
#include "netio/frame_channel.hpp"
#include "netio/socket.hpp"
#include "obs/registry.hpp"
#include "runtime/proxy_server.hpp"
#include "runtime/system.hpp"
#include "runtime/tcp_transport.hpp"
#include "trace/presets.hpp"
#include "wire/frame.hpp"
#include "wire/messages.hpp"

namespace baps::runtime {
namespace {

using Clock = std::chrono::steady_clock;

ProxyServer::Params proxy_params(std::uint32_t clients,
                                 std::uint64_t proxy_cache,
                                 std::uint64_t seed) {
  ProxyServer::Params p;
  p.core.num_clients = clients;
  p.core.proxy_cache_bytes = proxy_cache;
  p.core.seed = seed;
  p.net.worker_threads = clients + 2;
  p.net.accept_poll_ms = 10;
  p.net.deadlines = netio::Deadlines{1000, 100, 1000};
  p.peer_deadlines = netio::Deadlines{300, 1000, 1000};
  return p;
}

std::optional<netio::FrameChannel> dial(std::uint16_t port) {
  netio::NetError err;
  auto conn = netio::TcpConnection::connect("127.0.0.1", port, 2000, &err);
  if (!conn.has_value()) return std::nullopt;
  return netio::FrameChannel(std::move(*conn),
                             netio::Deadlines{2000, 5000, 5000});
}

/// Hello handshake for one raw client session.
std::optional<wire::HelloAck> handshake(netio::FrameChannel& channel,
                                        std::uint32_t client_id,
                                        std::uint16_t peer_port) {
  netio::NetError err;
  wire::Hello hello;
  hello.client_id = client_id;
  hello.peer_port = peer_port;
  if (!channel.send_msg(hello, &err)) return std::nullopt;
  return channel.recv_msg<wire::HelloAck>(&err);
}

/// The MAC a legitimate client puts on an index update (same derivation as
/// both daemons: keys from the shared seed, message "add:<sender>:<key>").
std::array<std::uint8_t, 16> index_mac(std::uint64_t seed,
                                       std::uint32_t num_clients,
                                       std::uint32_t sender, bool is_add,
                                       std::uint64_t key) {
  const auto keys = derive_client_mac_keys(seed, num_clients);
  std::string msg = is_add ? "add:" : "remove:";
  msg += std::to_string(sender);
  msg += ':';
  msg += std::to_string(key);
  return crypto::hmac_md5(keys[sender], msg).bytes;
}

/// Reads one whole frame off a raw connection, returning the exact bytes
/// that crossed the wire alongside the decode.
std::optional<wire::DecodeResult> read_frame_raw(netio::TcpConnection& conn,
                                                 std::string* raw) {
  netio::NetError err;
  std::string buf(wire::kHeaderSize, '\0');
  if (!conn.read_exact(buf.data(), buf.size(), 3000, &err)) {
    return std::nullopt;
  }
  const auto byte = [&buf](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]));
  };
  const std::uint32_t payload_len =
      byte(8) | (byte(9) << 8) | (byte(10) << 16) | (byte(11) << 24);
  if (payload_len > 0) {
    std::string payload(payload_len, '\0');
    if (!conn.read_exact(payload.data(), payload.size(), 3000, &err)) {
      return std::nullopt;
    }
    buf += payload;
  }
  *raw = buf;
  return wire::decode_frame(buf);
}

std::uint64_t decode_errors_total() {
  std::uint64_t total = 0;
  for (const auto& inst : obs::Registry::global().snapshot().counters) {
    if (inst.name == "wire_decode_errors_total") total += inst.value;
  }
  return total;
}

TEST(TcpLoopbackTest, PresetSliceSourcesMatchLoopbackExactly) {
  BapsSystem::Params params;
  params.num_clients = 8;
  params.seed = 11;

  BapsSystem loopback(params);

  ProxyServer server(
      proxy_params(params.num_clients, params.proxy_cache_bytes, params.seed));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TcpTransport::Params tp;
  tp.proxy_port = server.port();
  TcpTransport transport(tp);
  BapsSystem tcp(params, transport);

  const trace::Trace t = trace::load_preset(trace::Preset::kBu95);
  std::size_t done = 0;
  for (const trace::Request& req : t.requests()) {
    if (done == 1000) break;
    const auto client =
        static_cast<ClientId>(req.client % params.num_clients);
    const std::string url = t.url_of(req.doc);
    const FetchOutcome a = loopback.browse(client, url);
    const FetchOutcome b = tcp.browse(client, url);
    ASSERT_EQ(source_name(a.source), source_name(b.source))
        << "diverged at request " << done << " (client " << client << ", "
        << url << ")";
    ASSERT_EQ(a.body, b.body);
    ASSERT_EQ(a.verified, b.verified);
    ++done;
  }
  ASSERT_EQ(done, 1000u) << "preset slice shorter than expected";

  EXPECT_EQ(loopback.local_hits(), tcp.local_hits());
  EXPECT_EQ(loopback.proxy_hits(), tcp.proxy_hits());
  EXPECT_EQ(loopback.peer_hits(), tcp.peer_hits());
  EXPECT_EQ(loopback.origin_fetches(), tcp.origin_fetches());
  EXPECT_EQ(loopback.false_forwards(), tcp.false_forwards());
  server.stop();
}

TEST(TcpLoopbackTest, TamperedFrameIsDetectedAndDropsTheSession) {
  ProxyServer server(proxy_params(2, 256 << 10, 5));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const std::uint64_t errors_before = decode_errors_total();

  netio::NetError err;
  auto conn = netio::TcpConnection::connect("127.0.0.1", server.port(), 2000,
                                            &err);
  ASSERT_TRUE(conn.has_value()) << err.message;

  // A well-formed Hello whose payload is flipped in flight: the CRC in the
  // header no longer matches, so the proxy must reject it outright.
  wire::Hello hello;
  hello.client_id = 0;
  std::string frame = wire::encode_frame(wire::FrameKind::kHello,
                                         wire::encode(hello));
  frame.back() = static_cast<char>(frame.back() ^ 0x01);
  ASSERT_TRUE(conn->write_all(frame.data(), frame.size(), 2000, &err));

  // No HelloAck: the session is dropped, so the read sees EOF (or a reset),
  // never a successful byte and never an unbounded wait.
  char byte = 0;
  EXPECT_FALSE(conn->read_exact(&byte, 1, 3000, &err));
  EXPECT_NE(err.status, netio::NetStatus::kTimeout);
  EXPECT_GT(decode_errors_total(), errors_before);
  server.stop();
}

TEST(TcpLoopbackTest, PeerFetchFrameCarriesOnlyTheDocumentKey) {
  constexpr std::uint64_t kSeed = 5;
  constexpr std::uint32_t kClients = 3;
  // Proxy cache small enough that filler traffic evicts the target document,
  // forcing the interesting request through the browser index.
  ProxyServer server(proxy_params(kClients, 8 << 10, kSeed));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  netio::NetError err;
  auto peer_listener = netio::TcpListener::listen("127.0.0.1", 0, 4, &err);
  ASSERT_TRUE(peer_listener.has_value()) << err.message;

  // Client 0: fetch the document from origin and register it in the browser
  // index, advertising our raw listener as its peer-serving port.
  const std::string url = "http://anonymity.test/";
  const std::uint64_t key = url_key(url);
  auto holder = dial(server.port());
  ASSERT_TRUE(holder.has_value());
  ASSERT_TRUE(handshake(*holder, 0, peer_listener->port()).has_value());
  wire::FetchRequest fetch;
  fetch.url = url;
  ASSERT_TRUE(holder->send_msg(fetch, &err));
  const auto held = holder->recv_msg<wire::FetchResponse>(&err);
  ASSERT_TRUE(held.has_value()) << err.message;
  wire::IndexUpdate add;
  add.is_add = true;
  add.key = key;
  add.mac = index_mac(kSeed, kClients, 0, true, key);
  ASSERT_TRUE(holder->send_msg(add, &err));
  const auto ack = holder->recv_msg<wire::IndexAck>(&err);
  ASSERT_TRUE(ack.has_value());
  ASSERT_TRUE(ack->accepted);

  // Client 1: filler traffic pushes the target out of the proxy cache.
  auto filler = dial(server.port());
  ASSERT_TRUE(filler.has_value());
  ASSERT_TRUE(handshake(*filler, 1, 0).has_value());
  for (int i = 0; i < 64; ++i) {
    wire::FetchRequest f;
    f.url = "http://filler.test/" + std::to_string(i);
    ASSERT_TRUE(filler->send_msg(f, &err));
    ASSERT_TRUE(filler->recv_msg<wire::FetchResponse>(&err).has_value());
  }

  // Serve the holder side: capture the exact PeerFetch bytes the proxy
  // sends, then deliver the document it asked for.
  std::string captured_raw;
  std::optional<wire::DecodeResult> captured;
  std::thread peer_thread([&] {
    netio::NetError perr;
    auto conn = peer_listener->accept(5000, &perr);
    if (!conn.has_value()) return;
    captured = read_frame_raw(*conn, &captured_raw);
    if (!captured.has_value()) return;
    wire::PeerDeliver deliver;
    deliver.found = true;
    deliver.body = held->body;
    deliver.watermark = held->watermark;
    const std::string reply =
        wire::encode_frame(wire::FrameKind::kPeerDeliver,
                           wire::encode(deliver));
    conn->write_all(reply.data(), reply.size(), 3000, &perr);
  });

  // Client 2 requests the document: proxy cache misses, the index routes to
  // client 0, and the proxy opens a connection to our listener.
  auto requester = dial(server.port());
  ASSERT_TRUE(requester.has_value());
  ASSERT_TRUE(handshake(*requester, 2, 0).has_value());
  wire::FetchRequest want;
  want.url = url;
  ASSERT_TRUE(requester->send_msg(want, &err));
  const auto got = requester->recv_msg<wire::FetchResponse>(&err);
  peer_thread.join();

  ASSERT_TRUE(got.has_value()) << err.message;
  EXPECT_EQ(got->source, wire::WireSource::kRemoteBrowser);
  EXPECT_EQ(got->body, held->body);

  // §6.2: the frame that reached the holder is header + 8-byte key, nothing
  // else. In particular there is no room for the requester's identity.
  ASSERT_TRUE(captured.has_value()) << "no PeerFetch frame captured";
  ASSERT_EQ(captured->status, wire::DecodeStatus::kOk);
  EXPECT_EQ(captured->frame.kind, wire::FrameKind::kPeerFetch);
  EXPECT_EQ(captured->frame.payload.size(), 8u);
  EXPECT_EQ(captured_raw.size(), wire::kHeaderSize + 8);
  wire::PeerFetch decoded;
  ASSERT_TRUE(wire::decode(captured->frame.payload, &decoded));
  EXPECT_EQ(decoded.key, key);
  server.stop();
}

TEST(TcpLoopbackTest, DeadPeerPortDegradesToOriginBounded) {
  constexpr std::uint64_t kSeed = 5;
  constexpr std::uint32_t kClients = 3;
  ProxyServer server(proxy_params(kClients, 8 << 10, kSeed));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Bind-then-close: a port that is known dead.
  netio::NetError err;
  std::uint16_t dead_port = 0;
  {
    auto l = netio::TcpListener::listen("127.0.0.1", 0, 1, &err);
    ASSERT_TRUE(l.has_value());
    dead_port = l->port();
  }

  const std::string url = "http://dead-holder.test/";
  const std::uint64_t key = url_key(url);
  auto holder = dial(server.port());
  ASSERT_TRUE(holder.has_value());
  ASSERT_TRUE(handshake(*holder, 0, dead_port).has_value());
  wire::FetchRequest fetch;
  fetch.url = url;
  ASSERT_TRUE(holder->send_msg(fetch, &err));
  ASSERT_TRUE(holder->recv_msg<wire::FetchResponse>(&err).has_value());
  wire::IndexUpdate add;
  add.is_add = true;
  add.key = key;
  add.mac = index_mac(kSeed, kClients, 0, true, key);
  ASSERT_TRUE(holder->send_msg(add, &err));
  ASSERT_TRUE(holder->recv_msg<wire::IndexAck>(&err).has_value());

  auto filler = dial(server.port());
  ASSERT_TRUE(filler.has_value());
  ASSERT_TRUE(handshake(*filler, 1, 0).has_value());
  for (int i = 0; i < 64; ++i) {
    wire::FetchRequest f;
    f.url = "http://filler.test/" + std::to_string(i);
    ASSERT_TRUE(filler->send_msg(f, &err));
    ASSERT_TRUE(filler->recv_msg<wire::FetchResponse>(&err).has_value());
  }

  auto requester = dial(server.port());
  ASSERT_TRUE(requester.has_value());
  ASSERT_TRUE(handshake(*requester, 2, 0).has_value());
  wire::FetchRequest want;
  want.url = url;
  const auto start = Clock::now();
  ASSERT_TRUE(requester->send_msg(want, &err));
  const auto got = requester->recv_msg<wire::FetchResponse>(&err);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Clock::now() - start)
                      .count();
  ASSERT_TRUE(got.has_value()) << err.message;
  EXPECT_EQ(got->source, wire::WireSource::kOrigin);
  EXPECT_TRUE(got->false_forward);
  EXPECT_LT(ms, 5000) << "dead holder must cost one bounded wait";
  server.stop();
}

}  // namespace
}  // namespace baps::runtime
