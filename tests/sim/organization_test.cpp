// Behavioural tests of the five caching organizations on hand-built traces
// where every hit/miss can be reasoned out exactly.
#include "sim/organization.hpp"

#include <gtest/gtest.h>

#include "sim/orgs.hpp"
#include "trace/generator.hpp"
#include "util/assert.hpp"

namespace baps::sim {
namespace {

using trace::Request;
using trace::Trace;

SimConfig big_caches(std::uint32_t clients) {
  SimConfig cfg;
  cfg.proxy_cache_bytes = 1 << 30;
  cfg.browser_cache_bytes.assign(clients, 1 << 30);
  return cfg;
}

Trace make_trace(std::uint32_t clients, std::vector<Request> reqs) {
  trace::DocId max_doc = 0;
  for (auto& r : reqs) max_doc = std::max(max_doc, r.doc);
  return Trace("t", clients, max_doc + 1, std::move(reqs));
}

TEST(OrgNameTest, AllFiveNamed) {
  EXPECT_EQ(org_name(OrgKind::kProxyOnly), "proxy-cache-only");
  EXPECT_EQ(org_name(OrgKind::kBrowsersAware), "browsers-aware-proxy-server");
}

TEST(SizingTest, MinimumBrowserCacheRule) {
  // §3.2: C_browser = C_proxy / (10 N).
  EXPECT_EQ(min_browser_cache_bytes(1000, 10), 10u);
  EXPECT_EQ(min_browser_caches(1000, 4),
            std::vector<std::uint64_t>(4, 25u));
  EXPECT_THROW(min_browser_cache_bytes(1000, 0), baps::InvariantError);
}

TEST(ProxyOnlyTest, SecondRequestHitsRegardlessOfClient) {
  const Trace t = make_trace(2, {{0, 0, 7, 100}, {1, 1, 7, 100}});
  const Metrics m = run_organization(OrgKind::kProxyOnly, big_caches(2), t);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.proxy_hits, 1u);
  EXPECT_EQ(m.local_browser_hits, 0u);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.5);
}

TEST(LocalBrowserOnlyTest, NoCrossClientSharing) {
  const Trace t = make_trace(2, {{0, 0, 7, 100}, {1, 1, 7, 100}});
  const Metrics m =
      run_organization(OrgKind::kLocalBrowserOnly, big_caches(2), t);
  EXPECT_EQ(m.misses, 2u);  // client 1 cannot see client 0's copy
  EXPECT_EQ(m.local_browser_hits, 0u);
}

TEST(LocalBrowserOnlyTest, OwnRereferenceHits) {
  const Trace t = make_trace(1, {{0, 0, 7, 100}, {1, 0, 7, 100}});
  const Metrics m =
      run_organization(OrgKind::kLocalBrowserOnly, big_caches(1), t);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.local_browser_hits, 1u);
}

TEST(GlobalBrowsersOnlyTest, RemoteHitServedButNotCachedLocally) {
  const Trace t = make_trace(2, {{0, 0, 7, 100},
                                 {1, 1, 7, 100},
                                 {2, 1, 7, 100}});
  const Metrics m =
      run_organization(OrgKind::kGlobalBrowsersOnly, big_caches(2), t);
  // r2: remote hit from client 0. r3: client 1 did NOT cache it (§3.2), so
  // it is another remote hit, not a local one.
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.remote_browser_hits, 2u);
  EXPECT_EQ(m.local_browser_hits, 0u);
}

TEST(ProxyAndLocalTest, BrowserThenProxyHierarchy) {
  const Trace t = make_trace(2, {{0, 0, 7, 100},   // miss, fills proxy+b0
                                 {1, 0, 7, 100},   // local browser hit
                                 {2, 1, 7, 100},   // proxy hit, fills b1
                                 {3, 1, 7, 100}}); // local browser hit
  const Metrics m =
      run_organization(OrgKind::kProxyAndLocalBrowser, big_caches(2), t);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.local_browser_hits, 2u);
  EXPECT_EQ(m.proxy_hits, 1u);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.75);
}

TEST(BrowsersAwareTest, RemoteBrowserHitWhenProxyEvicted) {
  // Tiny proxy forces the shared copy out of the proxy while client 0's big
  // browser keeps it: the paper's first "type of miss" that BAPS converts
  // into a remote-browser hit.
  SimConfig cfg = big_caches(2);
  cfg.proxy_cache_bytes = 150;  // holds one 100-byte doc at a time
  const Trace t = make_trace(2, {{0, 0, 7, 100},   // miss: proxy+b0 cache it
                                 {1, 0, 8, 100},   // miss: proxy evicts 7
                                 {2, 1, 7, 100}}); // proxy miss, b0 has it!
  const Metrics m = run_organization(OrgKind::kBrowsersAware, cfg, t);
  EXPECT_EQ(m.misses, 2u);
  EXPECT_EQ(m.remote_browser_hits, 1u);
  EXPECT_EQ(m.remote_transfer_bytes, 100u);
  EXPECT_GT(m.remote_transfer_time_s, 0.0);
}

TEST(BrowsersAwareTest, SameConfigProxyAndLocalMissesThatCase) {
  SimConfig cfg = big_caches(2);
  cfg.proxy_cache_bytes = 150;
  const Trace t = make_trace(2, {{0, 0, 7, 100},
                                 {1, 0, 8, 100},
                                 {2, 1, 7, 100}});
  const Metrics m =
      run_organization(OrgKind::kProxyAndLocalBrowser, cfg, t);
  EXPECT_EQ(m.misses, 3u);  // the remote copy is invisible without the index
}

TEST(BrowsersAwareTest, RequesterCachesRemoteDelivery) {
  SimConfig cfg = big_caches(2);
  cfg.proxy_cache_bytes = 150;
  const Trace t = make_trace(2, {{0, 0, 7, 100},
                                 {1, 0, 8, 100},
                                 {2, 1, 7, 100},   // remote hit from b0
                                 {3, 1, 7, 100}}); // now a LOCAL hit at b1
  const Metrics m = run_organization(OrgKind::kBrowsersAware, cfg, t);
  EXPECT_EQ(m.remote_browser_hits, 1u);
  EXPECT_EQ(m.local_browser_hits, 1u);
}

TEST(BrowsersAwareTest, RelayViaProxyDoublesLanHops) {
  SimConfig direct = big_caches(2);
  direct.proxy_cache_bytes = 150;
  SimConfig relay = direct;
  relay.relay_via_proxy = true;
  const Trace t = make_trace(2, {{0, 0, 7, 100},
                                 {1, 0, 8, 100},
                                 {2, 1, 7, 100}});
  const Metrics md = run_organization(OrgKind::kBrowsersAware, direct, t);
  const Metrics mr = run_organization(OrgKind::kBrowsersAware, relay, t);
  EXPECT_EQ(mr.remote_transfer_bytes, 2 * md.remote_transfer_bytes);
  EXPECT_GT(mr.remote_transfer_time_s, md.remote_transfer_time_s);
  EXPECT_EQ(mr.remote_browser_hits, md.remote_browser_hits);
}

TEST(BrowsersAwareTest, OwnCopyIsNeverARemoteHit) {
  // Client 0 is the only holder; its own re-request after proxy eviction
  // must not loop back to itself. (Its browser still has it → local hit.)
  SimConfig cfg = big_caches(1);
  cfg.proxy_cache_bytes = 150;
  const Trace t = make_trace(1, {{0, 0, 7, 100}, {1, 0, 7, 100}});
  const Metrics m = run_organization(OrgKind::kBrowsersAware, cfg, t);
  EXPECT_EQ(m.remote_browser_hits, 0u);
  EXPECT_EQ(m.local_browser_hits, 1u);
}

TEST(SizeChangeRuleTest, ChangedSizeIsMissEverywhere) {
  for (const OrgKind kind : kAllOrganizations) {
    const Trace t = make_trace(1, {{0, 0, 7, 100}, {1, 0, 7, 150}});
    const Metrics m = run_organization(kind, big_caches(1), t);
    EXPECT_EQ(m.misses, 2u) << org_name(kind);
    EXPECT_GE(m.size_change_misses, 1u) << org_name(kind);
  }
}

TEST(SizeChangeRuleTest, RefreshedCopyHitsAgain) {
  const Trace t = make_trace(1, {{0, 0, 7, 100},
                                 {1, 0, 7, 150},
                                 {2, 0, 7, 150}});
  const Metrics m =
      run_organization(OrgKind::kProxyAndLocalBrowser, big_caches(1), t);
  EXPECT_EQ(m.misses, 2u);
  EXPECT_EQ(m.local_browser_hits, 1u);
}

TEST(BrowsersAwareTest, StaleRemoteCopyIsCountedAndMissed) {
  // Client 0 caches doc at size 100; the proxy then loses it; client 1
  // requests the doc at size 150 (mutated): the remote copy is stale.
  SimConfig cfg = big_caches(2);
  cfg.proxy_cache_bytes = 150;
  const Trace t = make_trace(2, {{0, 0, 7, 100},
                                 {1, 0, 8, 100},
                                 {2, 1, 7, 150}});
  const Metrics m = run_organization(OrgKind::kBrowsersAware, cfg, t);
  EXPECT_EQ(m.remote_browser_hits, 0u);
  EXPECT_EQ(m.stale_remote_probes, 1u);
  EXPECT_EQ(m.misses, 3u);
}

TEST(MetricsConsistencyTest, BreakdownsSumToTotals) {
  // Run every organization over a churny trace and check the books balance.
  std::vector<Request> reqs;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto doc = static_cast<trace::DocId>((i * 7) % 120);
    const std::uint64_t size = 50 + (doc % 11) * 37;
    reqs.push_back(Request{static_cast<double>(i),
                           static_cast<trace::ClientId>(i % 5), doc, size});
    total_bytes += size;
  }
  const Trace t = make_trace(5, std::move(reqs));
  for (const OrgKind kind : kAllOrganizations) {
    SimConfig cfg = big_caches(5);
    cfg.proxy_cache_bytes = 4000;   // small: force churn
    cfg.browser_cache_bytes.assign(5, 1200);
    const Metrics m = run_organization(kind, cfg, t);
    EXPECT_EQ(m.hits.total(), 4000u) << org_name(kind);
    EXPECT_EQ(m.local_browser_hits + m.proxy_hits + m.remote_browser_hits,
              m.hits.hits())
        << org_name(kind);
    EXPECT_EQ(m.hits.hits() + m.misses, 4000u) << org_name(kind);
    EXPECT_EQ(m.byte_hits.total(), total_bytes) << org_name(kind);
    EXPECT_EQ(m.local_browser_hit_bytes + m.proxy_hit_bytes +
                  m.remote_browser_hit_bytes,
              m.byte_hits.hits())
        << org_name(kind);
    EXPECT_EQ(m.memory_hit_bytes + m.disk_hit_bytes, m.byte_hits.hits())
        << org_name(kind);
    EXPECT_GT(m.total_service_time_s, 0.0) << org_name(kind);
    EXPECT_LE(m.total_hit_latency_s, m.total_service_time_s)
        << org_name(kind);
  }
}

TEST(PeriodicIndexTest, StaleIndexCausesFalseForwardsButFewerMessages) {
  // Churn browser caches hard under a lazy index: expect false forwards > 0
  // and far fewer index messages than the immediate protocol.
  // A generator trace gives per-client recency patterns that diverge from
  // global recency — the precondition for remote-browser lookups at all.
  trace::GeneratorParams gp;
  gp.num_requests = 12'000;
  gp.num_clients = 6;
  gp.shared_docs = 600;
  gp.private_docs_per_client = 60;
  gp.temporal_prob = 0.35;
  gp.mutation_prob = 0.0;
  const Trace t = trace::generate_trace("churn", gp, 77);
  SimConfig cfg;
  cfg.proxy_cache_bytes = 256 << 10;             // small: heavy proxy churn
  cfg.browser_cache_bytes.assign(6, 96 << 10);   // small browsers, much churn

  cfg.index_mode = IndexMode::kImmediate;
  const Metrics imm = run_organization(OrgKind::kBrowsersAware, cfg, t);
  cfg.index_mode = IndexMode::kPeriodic;
  cfg.index_threshold = 0.4;
  const Metrics per = run_organization(OrgKind::kBrowsersAware, cfg, t);

  ASSERT_GT(imm.remote_browser_hits, 0u);  // the scenario must be live
  EXPECT_EQ(imm.false_forwards, 0u);
  EXPECT_GT(per.false_forwards, 0u);
  EXPECT_LT(per.index_messages, imm.index_messages / 2);
  // Staleness loses remote hits (the tolerable degradation the paper cites
  // from Fan et al.).
  EXPECT_LT(per.remote_browser_hits, imm.remote_browser_hits);
}

TEST(BloomIndexModeTest, TracksExactIndexWithTinyMemoryAndFewFalseForwards) {
  trace::GeneratorParams gp;
  gp.num_requests = 12'000;
  gp.num_clients = 6;
  gp.shared_docs = 600;
  gp.private_docs_per_client = 60;
  gp.temporal_prob = 0.35;
  gp.mutation_prob = 0.0;
  const Trace t = trace::generate_trace("bloom", gp, 78);
  SimConfig cfg;
  cfg.proxy_cache_bytes = 256 << 10;
  cfg.browser_cache_bytes.assign(6, 96 << 10);

  cfg.index_kind = IndexKind::kExact;
  const Metrics exact = run_organization(OrgKind::kBrowsersAware, cfg, t);
  cfg.index_kind = IndexKind::kBloomSummary;
  cfg.bloom_expected_docs_per_client = 64;
  cfg.bloom_target_fp = 0.001;
  const Metrics bloom = run_organization(OrgKind::kBrowsersAware, cfg, t);

  ASSERT_GT(exact.remote_browser_hits, 0u);
  // A summary has no false negatives, but candidate order differs from the
  // exact index's round-robin, so cache trajectories diverge — compare
  // within a tolerance rather than request-by-request.
  EXPECT_EQ(bloom.hits.total(), exact.hits.total());
  EXPECT_NEAR(static_cast<double>(bloom.remote_browser_hits),
              static_cast<double>(exact.remote_browser_hits),
              0.05 * static_cast<double>(exact.remote_browser_hits) + 5.0);
  EXPECT_NEAR(bloom.hit_ratio(), exact.hit_ratio(), 0.01);
}

TEST(ConfigValidationTest, BrowserVectorMustMatchClients) {
  SimConfig cfg;
  cfg.proxy_cache_bytes = 1000;
  cfg.browser_cache_bytes.assign(3, 100);
  const Trace t = make_trace(2, {{0, 0, 1, 10}});
  EXPECT_THROW(run_organization(OrgKind::kProxyAndLocalBrowser, cfg, t),
               baps::InvariantError);
}

}  // namespace
}  // namespace baps::sim
