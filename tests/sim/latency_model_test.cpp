#include "sim/latency_model.hpp"

#include <gtest/gtest.h>

namespace baps::sim {
namespace {

TEST(LatencyModelTest, MemoryReadCountsSixteenByteBlocks) {
  LatencyModel m;
  // 100 bytes → ceil(100/16) = 7 blocks × 2 µs.
  EXPECT_NEAR(m.cache_read(100, cache::HitTier::kMemory), 7 * 2e-6, 1e-12);
  EXPECT_NEAR(m.cache_read(16, cache::HitTier::kMemory), 2e-6, 1e-12);
  EXPECT_NEAR(m.cache_read(17, cache::HitTier::kMemory), 4e-6, 1e-12);
}

TEST(LatencyModelTest, DiskReadCountsFourKilobytePages) {
  LatencyModel m;
  EXPECT_NEAR(m.cache_read(4096, cache::HitTier::kDisk), 10e-3, 1e-12);
  EXPECT_NEAR(m.cache_read(4097, cache::HitTier::kDisk), 20e-3, 1e-12);
  EXPECT_NEAR(m.cache_read(100, cache::HitTier::kDisk), 10e-3, 1e-12);
}

TEST(LatencyModelTest, MemoryIsOrdersOfMagnitudeFasterThanDisk) {
  LatencyModel m;
  const std::uint64_t size = 8192;
  EXPECT_LT(m.cache_read(size, cache::HitTier::kMemory) * 10.0,
            m.cache_read(size, cache::HitTier::kDisk));
}

TEST(LatencyModelTest, OriginFetchIncludesRttAndBandwidth) {
  LatencyModel m;  // 1 s RTT, 0.5 Mbps
  EXPECT_NEAR(m.origin_fetch(0), 1.0, 1e-12);
  EXPECT_NEAR(m.origin_fetch(62'500), 2.0, 1e-9);  // 0.5 Mb payload → +1 s
}

TEST(LatencyModelTest, OriginDwarfsLanAndCacheReads) {
  // The §5 overhead claim only makes sense if origin fetches dominate.
  LatencyModel m;
  EXPECT_GT(m.origin_fetch(8192), 10.0 * m.cache_read(8192,
                                                      cache::HitTier::kDisk));
}

}  // namespace
}  // namespace baps::sim
