#include "sim/hierarchy.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"
#include "util/assert.hpp"

namespace baps::sim {
namespace {

using trace::Request;
using trace::Trace;

Trace make(std::uint32_t clients, std::vector<Request> reqs) {
  trace::DocId max_doc = 0;
  for (auto& r : reqs) max_doc = std::max(max_doc, r.doc);
  return Trace("h", clients, max_doc + 1, std::move(reqs));
}

HierarchyConfig base_config(std::uint32_t clients) {
  HierarchyConfig cfg;
  cfg.num_leaf_proxies = 2;
  cfg.leaf_cache_bytes = 1 << 20;
  cfg.parent_cache_bytes = 4 << 20;
  cfg.browser_cache_bytes.assign(clients, 1 << 20);
  return cfg;
}

TEST(HierarchyTest, ValidatesConfig) {
  HierarchyConfig cfg = base_config(2);
  cfg.num_leaf_proxies = 0;
  EXPECT_THROW(HierarchySim(cfg, 2), baps::InvariantError);
  cfg = base_config(3);
  EXPECT_THROW(HierarchySim(cfg, 2), baps::InvariantError);
}

TEST(HierarchyTest, ClientsPartitionAcrossLeaves) {
  const HierarchySim sim(base_config(5), 5);
  EXPECT_EQ(sim.leaf_of(0), 0u);
  EXPECT_EQ(sim.leaf_of(1), 1u);
  EXPECT_EQ(sim.leaf_of(2), 0u);
}

TEST(HierarchyTest, SameLeafSecondClientHitsLeafProxy) {
  // Clients 0 and 2 share leaf 0.
  const Trace t = make(4, {{0, 0, 7, 100}, {1, 2, 7, 100}});
  const HierarchyMetrics m = run_hierarchy(base_config(4), t);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.leaf_proxy_hits, 1u);
}

TEST(HierarchyTest, CrossLeafWithoutCooperationGoesToParent) {
  // Clients 0 (leaf 0) and 1 (leaf 1): without sibling cooperation the
  // second request finds the doc only at the parent.
  const Trace t = make(2, {{0, 0, 7, 100}, {1, 1, 7, 100}});
  const HierarchyMetrics m = run_hierarchy(base_config(2), t);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.parent_proxy_hits, 1u);
  EXPECT_EQ(m.sibling_proxy_hits, 0u);
}

TEST(HierarchyTest, SiblingCooperationInterceptsBeforeParent) {
  HierarchyConfig cfg = base_config(2);
  cfg.sibling_cooperation = true;
  cfg.parent_cache_bytes = 1;  // parent can hold nothing
  const Trace t = make(2, {{0, 0, 7, 100}, {1, 1, 7, 100}});
  const HierarchyMetrics m = run_hierarchy(cfg, t);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.sibling_proxy_hits, 1u);
  EXPECT_EQ(m.parent_proxy_hits, 0u);
}

TEST(HierarchyTest, BrowsersAwareServesFromPeerWithinLeaf) {
  HierarchyConfig cfg = base_config(4);
  cfg.browsers_aware = true;
  cfg.leaf_cache_bytes = 150;   // leaf can hold one small doc
  cfg.parent_cache_bytes = 150;
  // Clients 0 and 2 share leaf 0: 0 fetches doc 7; churn doc 8 evicts it
  // from leaf and parent; client 2 then gets it from client 0's browser.
  const Trace t = make(4, {{0, 0, 7, 100},
                           {1, 0, 8, 100},
                           {2, 2, 7, 100}});
  const HierarchyMetrics m = run_hierarchy(cfg, t);
  EXPECT_EQ(m.remote_browser_hits, 1u);
  EXPECT_EQ(m.misses, 2u);
}

TEST(HierarchyTest, IndexIsScopedToTheLeaf) {
  // Client 1 is on leaf 1: client 0's browser copy (leaf 0) must NOT be
  // visible to it through the browsers-aware index.
  HierarchyConfig cfg = base_config(2);
  cfg.browsers_aware = true;
  cfg.leaf_cache_bytes = 150;
  cfg.parent_cache_bytes = 150;
  const Trace t = make(2, {{0, 0, 7, 100},
                           {1, 0, 8, 100},
                           {2, 1, 7, 100}});
  const HierarchyMetrics m = run_hierarchy(cfg, t);
  EXPECT_EQ(m.remote_browser_hits, 0u);
  EXPECT_EQ(m.misses, 3u);
}

TEST(HierarchyTest, SizeChangeIsMissAtEveryLevel) {
  HierarchyConfig cfg = base_config(2);
  cfg.sibling_cooperation = true;
  cfg.browsers_aware = true;
  const Trace t = make(2, {{0, 0, 7, 100}, {1, 0, 7, 150}, {2, 1, 7, 175}});
  const HierarchyMetrics m = run_hierarchy(cfg, t);
  EXPECT_EQ(m.misses, 3u);
}

TEST(HierarchyTest, AccountingBalances) {
  trace::GeneratorParams gp;
  gp.num_requests = 15'000;
  gp.num_clients = 12;
  gp.shared_docs = 2'000;
  gp.private_docs_per_client = 150;
  const Trace t = trace::generate_trace("hb", gp, 44);
  HierarchyConfig cfg = base_config(12);
  cfg.num_leaf_proxies = 3;
  cfg.leaf_cache_bytes = 128 << 10;
  cfg.parent_cache_bytes = 512 << 10;
  cfg.browser_cache_bytes.assign(12, 32 << 10);
  cfg.sibling_cooperation = true;
  cfg.browsers_aware = true;
  const HierarchyMetrics m = run_hierarchy(cfg, t);
  EXPECT_EQ(m.hits.total(), t.size());
  EXPECT_EQ(m.local_browser_hits + m.leaf_proxy_hits +
                m.remote_browser_hits + m.sibling_proxy_hits +
                m.parent_proxy_hits,
            m.hits.hits());
  EXPECT_EQ(m.hits.hits() + m.misses, t.size());
  EXPECT_GT(m.total_service_time_s, 0.0);
}

TEST(HierarchyTest, EachMechanismMonotonicallyHelps) {
  trace::GeneratorParams gp;
  gp.num_requests = 25'000;
  gp.num_clients = 16;
  gp.shared_docs = 6'000;
  gp.private_docs_per_client = 250;
  const Trace t = trace::generate_trace("hm", gp, 45);
  HierarchyConfig cfg = base_config(16);
  cfg.num_leaf_proxies = 4;
  cfg.leaf_cache_bytes = 96 << 10;
  cfg.parent_cache_bytes = 256 << 10;
  cfg.browser_cache_bytes.assign(16, 48 << 10);

  const double plain = run_hierarchy(cfg, t).hit_ratio();
  cfg.sibling_cooperation = true;
  const double with_icp = run_hierarchy(cfg, t).hit_ratio();
  cfg.browsers_aware = true;
  const double with_both = run_hierarchy(cfg, t).hit_ratio();

  EXPECT_GE(with_icp, plain);
  EXPECT_GT(with_both, with_icp);
}

}  // namespace
}  // namespace baps::sim
