#include "sim/ttl_study.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"
#include "util/assert.hpp"

namespace baps::sim {
namespace {

using trace::Request;
using trace::Trace;

Trace make(std::uint32_t clients, std::vector<Request> reqs) {
  trace::DocId max_doc = 0;
  for (auto& r : reqs) max_doc = std::max(max_doc, r.doc);
  return Trace("ttl", clients, max_doc + 1, std::move(reqs));
}

TtlStudyConfig big_config(std::uint32_t clients) {
  TtlStudyConfig cfg;
  cfg.proxy_cache_bytes = 1 << 20;
  cfg.browser_cache_bytes.assign(clients, 1 << 20);
  return cfg;
}

TEST(TtlStudyTest, ValidatesConfig) {
  TtlStudyConfig cfg = big_config(1);
  cfg.ttl_seconds = 0.0;
  EXPECT_THROW(run_ttl_study(cfg, make(1, {{0, 0, 1, 10}})),
               baps::InvariantError);
  cfg = big_config(3);
  EXPECT_THROW(run_ttl_study(cfg, make(2, {{0, 0, 1, 10}})),
               baps::InvariantError);
}

TEST(TtlStudyTest, WithoutOracleStaleCopiesAreServed) {
  // Doc 7 mutates (size 100 → 150) at t=2; the cached copy keeps being
  // served: the oracle-less cache cannot see the change.
  const Trace t = make(1, {{0.0, 0, 7, 100},
                           {2.0, 0, 7, 150},
                           {4.0, 0, 7, 150}});
  const TtlStudyMetrics m = run_ttl_study(big_config(1), t);
  EXPECT_EQ(m.hits.hits(), 2u);
  EXPECT_EQ(m.stale_hits, 2u);
  EXPECT_EQ(m.fresh_hits, 0u);
}

TEST(TtlStudyTest, TtlBoundsStaleness) {
  // Same mutation, but a 1-second TTL: by t=2 the copy expired, so the
  // request refetches the fresh version; t=2.5 hits it fresh.
  TtlStudyConfig cfg = big_config(1);
  cfg.ttl_seconds = 1.0;
  const Trace t = make(1, {{0.0, 0, 7, 100},
                           {2.0, 0, 7, 150},
                           {2.5, 0, 7, 150}});
  const TtlStudyMetrics m = run_ttl_study(cfg, t);
  EXPECT_EQ(m.stale_hits, 0u);
  EXPECT_EQ(m.fresh_hits, 1u);
  EXPECT_EQ(m.hits.hits(), 1u);
  EXPECT_GT(m.expirations, 0u);
}

TEST(TtlStudyTest, StaleCopiesPropagatePeerToPeer) {
  // Client 0 caches doc 7 (size 100); the doc mutates; client 1 gets the
  // stale copy peer-to-peer after the proxy dropped its own copy — §6's
  // exact worry about sharing browser data.
  TtlStudyConfig cfg = big_config(2);
  cfg.proxy_cache_bytes = 150;  // one small doc at a time
  const Trace t = make(2, {{0.0, 0, 7, 100},
                           {1.0, 0, 8, 100},   // proxy evicts 7
                           {2.0, 1, 7, 150}}); // mutated; remote copy stale
  const TtlStudyMetrics m = run_ttl_study(cfg, t);
  EXPECT_EQ(m.remote_hits, 1u);
  EXPECT_EQ(m.stale_remote_hits, 1u);
}

TEST(TtlStudyTest, ExpiredRemoteCopyRepairsIndexAndMisses) {
  TtlStudyConfig cfg = big_config(2);
  cfg.proxy_cache_bytes = 150;
  cfg.ttl_seconds = 1.5;
  const Trace t = make(2, {{0.0, 0, 7, 100},
                           {1.0, 0, 8, 100},
                           {3.0, 1, 7, 100}});  // holder's copy expired at 1.5
  const TtlStudyMetrics m = run_ttl_study(cfg, t);
  EXPECT_EQ(m.remote_hits, 0u);
  EXPECT_EQ(m.hits.hits(), 0u);  // everything missed
}

TEST(TtlStudyTest, TradeoffSweepIsMonotone) {
  // Property over a mutating workload: shorter TTLs can only reduce both
  // the stale-hit fraction and the hit ratio.
  trace::GeneratorParams gp;
  gp.num_requests = 15'000;
  gp.num_clients = 8;
  gp.shared_docs = 1'200;
  gp.private_docs_per_client = 100;
  gp.mutation_prob = 0.01;
  gp.mean_interarrival = 0.25;
  const Trace t = trace::generate_trace("ttlsweep", gp, 99);

  TtlStudyConfig cfg;
  cfg.proxy_cache_bytes = 512 << 10;
  cfg.browser_cache_bytes.assign(8, 64 << 10);

  double prev_hit = 1.0, prev_stale = 1.0;
  for (const double ttl : {1e9, 600.0, 120.0, 20.0}) {
    cfg.ttl_seconds = ttl;
    const TtlStudyMetrics m = run_ttl_study(cfg, t);
    EXPECT_LE(m.hit_ratio(), prev_hit + 1e-9) << "ttl " << ttl;
    EXPECT_LE(m.stale_hit_fraction(), prev_stale + 1e-9) << "ttl " << ttl;
    prev_hit = m.hit_ratio();
    prev_stale = m.stale_hit_fraction();
  }
  // The sweep must actually exercise both regimes.
  EXPECT_LT(prev_hit, 1.0);
}

TEST(TtlStudyTest, NoMutationMeansNoStaleHits) {
  trace::GeneratorParams gp;
  gp.num_requests = 8'000;
  gp.num_clients = 6;
  gp.shared_docs = 800;
  gp.private_docs_per_client = 80;
  gp.mutation_prob = 0.0;
  const Trace t = trace::generate_trace("nostale", gp, 100);
  TtlStudyConfig cfg;
  cfg.proxy_cache_bytes = 512 << 10;
  cfg.browser_cache_bytes.assign(6, 64 << 10);
  const TtlStudyMetrics m = run_ttl_study(cfg, t);
  EXPECT_EQ(m.stale_hits, 0u);
  EXPECT_GT(m.fresh_hits, 0u);
}

TEST(TtlStudyTest, BrowsersAwareServesMoreButStalenessRidesAlong) {
  trace::GeneratorParams gp;
  gp.num_requests = 15'000;
  gp.num_clients = 8;
  gp.shared_docs = 1'200;
  gp.private_docs_per_client = 100;
  gp.mutation_prob = 0.01;
  const Trace t = trace::generate_trace("aware", gp, 101);
  TtlStudyConfig cfg;
  cfg.proxy_cache_bytes = 256 << 10;
  cfg.browser_cache_bytes.assign(8, 96 << 10);

  cfg.browsers_aware = false;
  const TtlStudyMetrics plain = run_ttl_study(cfg, t);
  cfg.browsers_aware = true;
  const TtlStudyMetrics aware = run_ttl_study(cfg, t);
  EXPECT_GT(aware.hit_ratio(), plain.hit_ratio());
  EXPECT_GT(aware.remote_hits, 0u);
  EXPECT_EQ(plain.remote_hits, 0u);
}

}  // namespace
}  // namespace baps::sim
