// Organization-level golden test: all five organizations replayed over the
// BU-95 preset at --scale 0.05 with the default RunSpec must reproduce the
// metrics captured before the flat-memory hot-path rewrite. Integer counters
// are compared exactly — hit/miss/eviction sequences are the simulator's
// contract, and any change to LRU tie-breaking, index round-robin order, or
// the size-change rule shows up here. Accumulated latencies are doubles, so
// they get a tight relative tolerance instead (summation order is part of
// the contract too, but we leave one knob for future compiler FP changes).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/runner.hpp"
#include "sim/orgs.hpp"
#include "trace/presets.hpp"
#include "trace/stats.hpp"

namespace baps::sim {
namespace {

struct Golden {
  OrgKind kind;
  std::uint64_t hits, misses;
  std::uint64_t byte_hits;
  std::uint64_t local, proxy, remote;
  std::uint64_t local_b, proxy_b, remote_b, miss_b;
  std::uint64_t mem_b, disk_b;
  std::uint64_t size_miss, idx_msgs, false_fwd, stale, remote_xfer_b;
  double svc, hitlat, rxfer, rcont;
};

// Captured from the pre-rewrite simulator (BU-95, scale 0.05, defaults).
constexpr std::uint64_t kRequests = 7500;
constexpr std::uint64_t kByteTotal = 194421333;
const Golden kGolden[] = {
    {OrgKind::kProxyOnly, 4965, 2535, 16581174, 0, 4965, 0, 0, 16581174, 0,
     177840159, 10585955, 5995219, 6, 0, 0, 0, 0, 5918.5232012000815,
     538.08065719998979, 0.0, 0.0},
    {OrgKind::kLocalBrowserOnly, 1806, 5694, 3245285, 1806, 0, 0, 3245285, 0,
     0, 191176048, 560123, 2685162, 0, 0, 0, 0, 0, 8765.1075080001283,
     12.290739999999785, 0.0, 0.0},
    // Re-captured when BrowserIndex round-robin became per-doc (the global
    // cursor coupled holder choice across documents, which blocked doc
    // sharding); only this organization leans on multi-holder rotation.
    {OrgKind::kGlobalBrowsersOnly, 3126, 4374, 4213960, 1280, 0, 1846,
     3023661, 0, 1190299, 190207373, 1015076, 3198884, 0, 0, 0, 7, 1190299,
     7630.1183249329715, 212.80035693286547, 185.55223919999798,
     13.079809732863296},
    {OrgKind::kProxyAndLocalBrowser, 4967, 2533, 16665490, 1806, 3161, 0,
     3245285, 13420205, 0, 177755843, 8014636, 8650854, 6, 0, 0, 0, 0,
     5743.4933400001119, 366.39985199999154, 0.0, 0.0},
    {OrgKind::kBrowsersAware, 4977, 2523, 16684691, 1804, 3159, 14, 3244796,
     13411528, 28367, 177736642, 8009156, 8675535, 6, 10279, 0, 1, 28367,
     5734.5311920001113, 367.74491999999151, 1.4226936000000001, 0.0},
};

void expect_near_rel(double actual, double expected, const char* what) {
  const double tol = expected == 0.0 ? 1e-12 : std::abs(expected) * 1e-9;
  EXPECT_NEAR(actual, expected, tol) << what;
}

TEST(GoldenMetricsTest, AllFiveOrganizationsMatchSeedCapture) {
  const trace::Trace t =
      trace::load_preset_scaled(trace::Preset::kBu95, 0.05);
  const trace::TraceStats stats = trace::compute_stats(t);
  const core::RunSpec spec;  // defaults: LRU, minimum sizing, 10%

  for (const Golden& g : kGolden) {
    SCOPED_TRACE(org_name(g.kind));
    const Metrics m = run_organization(g.kind, core::build_config(stats, spec), t);

    EXPECT_EQ(m.hits.total(), kRequests);
    EXPECT_EQ(m.hits.hits(), g.hits);
    EXPECT_EQ(m.byte_hits.total(), kByteTotal);
    EXPECT_EQ(m.byte_hits.hits(), g.byte_hits);
    EXPECT_EQ(m.misses, g.misses);
    EXPECT_EQ(m.local_browser_hits, g.local);
    EXPECT_EQ(m.proxy_hits, g.proxy);
    EXPECT_EQ(m.remote_browser_hits, g.remote);
    EXPECT_EQ(m.local_browser_hit_bytes, g.local_b);
    EXPECT_EQ(m.proxy_hit_bytes, g.proxy_b);
    EXPECT_EQ(m.remote_browser_hit_bytes, g.remote_b);
    EXPECT_EQ(m.miss_bytes, g.miss_b);
    EXPECT_EQ(m.memory_hit_bytes, g.mem_b);
    EXPECT_EQ(m.disk_hit_bytes, g.disk_b);
    EXPECT_EQ(m.size_change_misses, g.size_miss);
    EXPECT_EQ(m.index_messages, g.idx_msgs);
    EXPECT_EQ(m.false_forwards, g.false_fwd);
    EXPECT_EQ(m.stale_remote_probes, g.stale);
    EXPECT_EQ(m.remote_transfer_bytes, g.remote_xfer_b);

    expect_near_rel(m.total_service_time_s, g.svc, "total_service_time_s");
    expect_near_rel(m.total_hit_latency_s, g.hitlat, "total_hit_latency_s");
    expect_near_rel(m.remote_transfer_time_s, g.rxfer,
                    "remote_transfer_time_s");
    expect_near_rel(m.remote_contention_time_s, g.rcont,
                    "remote_contention_time_s");
  }
}

}  // namespace
}  // namespace baps::sim
