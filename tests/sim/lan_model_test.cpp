#include "net/lan_model.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace baps::net {
namespace {

TEST(LanModelTest, TransferTimeIsSetupPlusSerialization) {
  LanModel lan;  // 10 Mbps, 0.1 s setup
  // 1 MB at 10 Mbps = 0.8388608 s + 0.1 s setup.
  EXPECT_NEAR(lan.transfer_time(1 << 20), 0.1 + 8.0 * 1048576 / 10e6, 1e-9);
  EXPECT_NEAR(lan.transfer_time(0), 0.1, 1e-12);
}

TEST(LanModelTest, NoContentionWhenBusIdle) {
  LanModel lan;
  const auto r = lan.transfer(5.0, 12'500);  // 0.01 s serialization
  EXPECT_DOUBLE_EQ(r.wait_s, 0.0);
  EXPECT_NEAR(r.transfer_s, 0.11, 1e-9);
  EXPECT_NEAR(r.finish_time, 5.11, 1e-9);
}

TEST(LanModelTest, BackToBackTransfersContend) {
  LanModel lan;
  lan.transfer(0.0, 1'250'000);  // occupies the bus until 1.1 s
  const auto r = lan.transfer(0.5, 1'250);
  EXPECT_NEAR(r.wait_s, 0.6, 1e-9);  // waits from 0.5 to 1.1
  EXPECT_NEAR(lan.total_contention_time(), 0.6, 1e-9);
}

TEST(LanModelTest, SpacedTransfersDoNotContend) {
  LanModel lan;
  lan.transfer(0.0, 1'250);
  const auto r = lan.transfer(10.0, 1'250);
  EXPECT_DOUBLE_EQ(r.wait_s, 0.0);
  EXPECT_DOUBLE_EQ(lan.total_contention_time(), 0.0);
}

TEST(LanModelTest, AccumulatesTotals) {
  LanModel lan;
  lan.transfer(0.0, 1000);
  lan.transfer(0.0, 2000);
  EXPECT_EQ(lan.transfer_count(), 2u);
  EXPECT_EQ(lan.bytes_moved(), 3000u);
  EXPECT_GT(lan.total_transfer_time(), 0.2);  // two setups at least
}

TEST(LanModelTest, RejectsBadParams) {
  EXPECT_THROW(LanModel(LanParams{0.0, 0.1}), baps::InvariantError);
  EXPECT_THROW(LanModel(LanParams{10e6, -1.0}), baps::InvariantError);
}

}  // namespace
}  // namespace baps::net
