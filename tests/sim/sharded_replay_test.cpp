// Differential tests for the shared-nothing sharded replay engine: the
// layered determinism contract from sim/sharded_replay.hpp, checked with
// bit-exact comparisons (sim::bit_identical — doubles by bit pattern,
// histograms bucket by bucket).
//
//   1. one shard == unsharded, on any config (including capacity pressure
//      and evictions): routing degenerates and the merge replays the
//      original addition order.
//   2. parallel == sequential shard execution, any N, any config: shards
//      share nothing, so the schedule cannot change an outcome.
//   3. N shards == unsharded for N in {1,2,3,7,8} across all five
//      organizations on a decoupled config (caches sized so nothing ever
//      evicts, one memory tier, immediate exact index) — per-request
//      outcomes are then per-doc decomposable, which is the regime where
//      exact equivalence is even well-defined under doc partitioning.
//   4. the client-routed organization (local-browser-only) is exact under
//      ANY config — whole browsers move with their shard.
//   5. churn: the externally driven schedule reproduces the unsharded
//      churn replay on the decoupled config.
//   6. under capacity pressure (no exact equivalence), the sum(shard) ==
//      merged counter invariants still hold.
#include "sim/sharded_replay.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/runner.hpp"
#include "sim/orgs.hpp"
#include "trace/generator.hpp"
#include "trace/presets.hpp"
#include "trace/stats.hpp"

namespace baps::sim {
namespace {

const std::vector<OrgKind> kAllOrgs = {
    OrgKind::kProxyOnly, OrgKind::kLocalBrowserOnly,
    OrgKind::kGlobalBrowsersOnly, OrgKind::kProxyAndLocalBrowser,
    OrgKind::kBrowsersAware};

/// Down-scaled BU-95 — the same workload the golden pins replay.
const trace::Trace& bu95_small() {
  static const trace::Trace t =
      trace::load_preset_scaled(trace::Preset::kBu95, 0.05);
  return t;
}

/// Default RunSpec config: 10% relative sizing → real capacity pressure,
/// evictions, disk tiers. Exact sharding equivalence is NOT expected here
/// (except N=1 and the client-routed org); determinism contracts are.
SimConfig pressured_config(const trace::Trace& t) {
  return core::build_config(trace::compute_stats(t), core::RunSpec{});
}

/// Decoupled config: every cache slice larger than the whole trace (16x
/// the infinite-cache size covers any slice at N <= 8 twice over), one
/// memory tier, immediate exact index. No evictions anywhere → per-request
/// outcomes are per-doc decomposable and sharding must be EXACT.
SimConfig decoupled_config(const trace::Trace& t, double churn_rate = 0.0,
                           std::uint64_t churn_seed = 0) {
  const trace::TraceStats stats = trace::compute_stats(t);
  core::RunSpec spec;
  spec.memory_fraction = 1.0;
  spec.churn_rate = churn_rate;
  spec.churn_seed = churn_seed;
  SimConfig cfg = core::build_config(stats, spec);
  const std::uint64_t huge = stats.infinite_cache_bytes * 16;
  cfg.proxy_cache_bytes = huge;
  for (auto& bytes : cfg.browser_cache_bytes) bytes = huge;
  return cfg;
}

ShardedReplayResult run_sharded(OrgKind kind, const SimConfig& cfg,
                                const trace::Trace& t, std::uint32_t shards,
                                bool parallel = true) {
  ShardedReplayOptions opts;
  opts.shards = shards;
  opts.parallel = parallel;
  return run_organization_sharded(kind, cfg, t, opts);
}

TEST(ShardedReplayTest, OneShardBitIdenticalToUnshardedUnderPressure) {
  const trace::Trace& t = bu95_small();
  const SimConfig cfg = pressured_config(t);
  for (const OrgKind kind : kAllOrgs) {
    SCOPED_TRACE(org_name(kind));
    const Metrics unsharded = run_organization(kind, cfg, t);
    const ShardedReplayResult r = run_sharded(kind, cfg, t, 1);
    EXPECT_TRUE(bit_identical(r.merged, unsharded));
    ASSERT_EQ(r.per_shard.size(), 1u);
    EXPECT_TRUE(bit_identical(r.per_shard[0], unsharded));
  }
}

TEST(ShardedReplayTest, ParallelBitIdenticalToSequentialUnderPressure) {
  const trace::Trace& t = bu95_small();
  const SimConfig cfg = pressured_config(t);
  for (const OrgKind kind : kAllOrgs) {
    SCOPED_TRACE(org_name(kind));
    const ShardedReplayResult par =
        run_sharded(kind, cfg, t, 4, /*parallel=*/true);
    const ShardedReplayResult seq =
        run_sharded(kind, cfg, t, 4, /*parallel=*/false);
    EXPECT_TRUE(bit_identical(par.merged, seq.merged));
    for (std::uint32_t s = 0; s < 4; ++s) {
      EXPECT_TRUE(bit_identical(par.per_shard[s], seq.per_shard[s]))
          << "shard " << s;
    }
  }
}

TEST(ShardedReplayTest, DecoupledConfigExactForAllShardCounts) {
  const trace::Trace& t = bu95_small();
  const SimConfig cfg = decoupled_config(t);
  for (const OrgKind kind : kAllOrgs) {
    SCOPED_TRACE(org_name(kind));
    const Metrics unsharded = run_organization(kind, cfg, t);
    for (const std::uint32_t n : {1u, 2u, 3u, 7u, 8u}) {
      SCOPED_TRACE(n);
      const ShardedReplayResult r = run_sharded(kind, cfg, t, n);
      EXPECT_TRUE(bit_identical(r.merged, unsharded)) << n << " shards";
    }
  }
}

TEST(ShardedReplayTest, ClientRoutedOrgExactUnderAnyConfig) {
  // Local-browser-only routes by client: whole browsers (capacity included)
  // live in one shard, so even eviction behavior decomposes exactly — no
  // decoupling needed.
  const trace::Trace& t = bu95_small();
  const SimConfig cfg = pressured_config(t);
  const Metrics unsharded =
      run_organization(OrgKind::kLocalBrowserOnly, cfg, t);
  for (const std::uint32_t n : {2u, 5u, 8u}) {
    SCOPED_TRACE(n);
    const ShardedReplayResult r =
        run_sharded(OrgKind::kLocalBrowserOnly, cfg, t, n);
    EXPECT_TRUE(bit_identical(r.merged, unsharded)) << n << " shards";
  }
}

TEST(ShardedReplayTest, ChurnScheduleReproducesUnshardedChurn) {
  const trace::Trace& t = bu95_small();
  const SimConfig cfg = decoupled_config(t, /*churn_rate=*/0.01,
                                         /*churn_seed=*/1234);
  for (const OrgKind kind : kAllOrgs) {
    SCOPED_TRACE(org_name(kind));
    const Metrics unsharded = run_organization(kind, cfg, t);
    EXPECT_GT(unsharded.churn_departures, 0u);  // churn actually happened
    for (const std::uint32_t n : {1u, 3u}) {
      SCOPED_TRACE(n);
      const ShardedReplayResult r = run_sharded(kind, cfg, t, n);
      EXPECT_TRUE(bit_identical(r.merged, unsharded)) << n << " shards";
    }
  }
}

TEST(ShardedReplayTest, RandomizedTracesExactOnDecoupledConfig) {
  // Fresh seeded workloads (different popularity draws, session shapes,
  // mutation points) — the decomposability argument must not depend on
  // anything BU-95-specific.
  trace::GeneratorParams params;
  params.num_requests = 4000;
  params.num_clients = 24;
  params.shared_docs = 1200;
  params.private_docs_per_client = 120;
  for (const std::uint64_t seed : {7ULL, 99ULL, 2026ULL}) {
    const trace::Trace t = trace::generate_trace("rand", params, seed);
    const SimConfig cfg = decoupled_config(t);
    for (const OrgKind kind : kAllOrgs) {
      SCOPED_TRACE(org_name(kind));
      const Metrics unsharded = run_organization(kind, cfg, t);
      for (const std::uint32_t n : {2u, 7u}) {
        const ShardedReplayResult r = run_sharded(kind, cfg, t, n);
        EXPECT_TRUE(bit_identical(r.merged, unsharded))
            << "seed " << seed << ", " << n << " shards";
      }
    }
  }
}

TEST(ShardedReplayTest, ShardCountersSumToMergedUnderPressure) {
  // Under capacity pressure N>1 models an N-node cooperative cache — not
  // the unsharded single cache — but the merged metrics must still be
  // exactly the sum of the shard parts.
  const trace::Trace& t = bu95_small();
  const SimConfig cfg = pressured_config(t);
  for (const OrgKind kind : kAllOrgs) {
    SCOPED_TRACE(org_name(kind));
    const ShardedReplayResult r = run_sharded(kind, cfg, t, 4);
    std::uint64_t requests = 0, hits = 0, misses = 0, remote_bytes = 0;
    std::uint64_t hist_count = 0;
    for (const Metrics& m : r.per_shard) {
      requests += m.hits.total();
      hits += m.hits.hits();
      misses += m.misses;
      remote_bytes += m.remote_transfer_bytes;
      hist_count += m.log_latency.count();
    }
    EXPECT_EQ(requests, r.merged.hits.total());
    EXPECT_EQ(requests, t.requests().size());
    EXPECT_EQ(hits, r.merged.hits.hits());
    EXPECT_EQ(misses, r.merged.misses);
    EXPECT_EQ(remote_bytes, r.merged.remote_transfer_bytes);
    EXPECT_EQ(hist_count, r.merged.log_latency.count());
    std::uint64_t routed = 0;
    for (const std::uint64_t n : r.shard_requests) routed += n;
    EXPECT_EQ(routed, t.requests().size());
  }
}

TEST(ShardedReplayTest, TimingFieldsArePopulated) {
  const trace::Trace& t = bu95_small();
  const ShardedReplayResult r =
      run_sharded(OrgKind::kBrowsersAware, pressured_config(t), t, 2);
  EXPECT_EQ(r.shards, 2u);
  EXPECT_GT(r.replay_seconds, 0.0);
  EXPECT_GT(r.merge_seconds, 0.0);
  EXPECT_GT(r.critical_path_seconds(), 0.0);
  EXPECT_GT(r.critical_path_requests_per_second(), 0.0);
  for (const double s : r.shard_seconds) EXPECT_GT(s, 0.0);
}

TEST(ShardedReplayTest, RoutesByClientOnlyForLocalBrowserOnly) {
  EXPECT_TRUE(routes_by_client(OrgKind::kLocalBrowserOnly));
  EXPECT_FALSE(routes_by_client(OrgKind::kProxyOnly));
  EXPECT_FALSE(routes_by_client(OrgKind::kGlobalBrowsersOnly));
  EXPECT_FALSE(routes_by_client(OrgKind::kProxyAndLocalBrowser));
  EXPECT_FALSE(routes_by_client(OrgKind::kBrowsersAware));
}

}  // namespace
}  // namespace baps::sim
