#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace baps::sim {
namespace {

TEST(MetricsTest, EmptyMetricsAreZero) {
  const Metrics m;
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.byte_hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.memory_byte_hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.remote_overhead_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(m.contention_fraction_of_comm(), 0.0);
}

TEST(MetricsTest, MemoryByteHitRatioNormalizesByTotalBytes) {
  Metrics m;
  m.byte_hits.hit(600);
  m.byte_hits.miss(400);  // total = 1000 bytes requested
  m.memory_hit_bytes = 250;
  m.disk_hit_bytes = 350;
  EXPECT_DOUBLE_EQ(m.memory_byte_hit_ratio(), 0.25);
}

TEST(MetricsTest, OverheadFractionsCompose) {
  Metrics m;
  m.total_service_time_s = 100.0;
  m.remote_transfer_time_s = 0.9;
  m.remote_contention_time_s = 0.1;
  EXPECT_DOUBLE_EQ(m.remote_overhead_fraction(), 0.01);
  EXPECT_DOUBLE_EQ(m.contention_fraction_of_comm(), 0.1);
}

TEST(MetricsTest, LatencyQuantilesRecoverObservations) {
  Metrics m;
  // 99 fast requests (1 ms) and one slow (10 s).
  for (int i = 0; i < 99; ++i) m.observe_latency(1e-3);
  m.observe_latency(10.0);
  EXPECT_NEAR(m.latency_quantile(0.5), 1e-3, 5e-4);
  EXPECT_GT(m.latency_quantile(0.999), 1.0);
  EXPECT_EQ(m.log_latency.count(), 100u);
}

TEST(MetricsTest, ObserveLatencyClampsPathologicalInputs) {
  Metrics m;
  m.observe_latency(0.0);       // log10 would blow up without the clamp
  m.observe_latency(1e9);       // beyond the histogram ceiling
  EXPECT_EQ(m.log_latency.count(), 2u);
  EXPECT_GE(m.latency_quantile(0.0), 0.0);
}

TEST(MetricsTest, SubMicrosecondLatenciesCountAsUnderflow) {
  Metrics m;
  // Below the 1 µs histogram floor: must not be silently folded into the
  // first interior bucket (the old 1e-9 clamp landed below the domain).
  m.observe_latency(1e-8);
  m.observe_latency(1e-7);
  EXPECT_EQ(m.log_latency.underflow(), 2u);
  EXPECT_EQ(m.log_latency.count(), 2u);
  // Quantiles stay pinned to the domain edges, never below 1 µs.
  EXPECT_DOUBLE_EQ(m.latency_quantile(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(m.latency_quantile(1.0), 1e-6);
}

}  // namespace
}  // namespace baps::sim
