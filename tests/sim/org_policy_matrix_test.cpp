// Parameterized property matrix: every (organization × replacement policy)
// combination must satisfy the simulator's global invariants on a shared
// workload. This is the broad-coverage net under the per-organization
// behavioural tests.
#include <gtest/gtest.h>

#include "sim/organization.hpp"
#include "trace/generator.hpp"
#include "trace/stats.hpp"

namespace baps::sim {
namespace {

using MatrixParam = std::tuple<OrgKind, cache::PolicyKind>;

class OrgPolicyMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static const trace::Trace& shared_trace() {
    static const trace::Trace t = [] {
      trace::GeneratorParams p;
      p.num_requests = 20'000;
      p.num_clients = 12;
      p.shared_docs = 4'000;
      p.private_docs_per_client = 300;
      p.mutation_prob = 0.01;
      return trace::generate_trace("matrix", p, 314);
    }();
    return t;
  }

  static Metrics run(OrgKind org, cache::PolicyKind policy) {
    SimConfig cfg;
    cfg.policy = policy;
    cfg.proxy_cache_bytes = 512 << 10;
    cfg.browser_cache_bytes.assign(12, 64 << 10);
    return run_organization(org, cfg, shared_trace());
  }
};

TEST_P(OrgPolicyMatrix, InvariantsHold) {
  const auto [org, policy] = GetParam();
  const Metrics m = run(org, policy);
  const trace::TraceStats stats = trace::compute_stats(shared_trace());

  // Every request accounted exactly once.
  EXPECT_EQ(m.hits.total(), shared_trace().size());
  EXPECT_EQ(m.hits.hits() + m.misses, shared_trace().size());
  EXPECT_EQ(
      m.local_browser_hits + m.proxy_hits + m.remote_browser_hits,
      m.hits.hits());
  // Byte books balance.
  EXPECT_EQ(m.byte_hits.total(), stats.total_bytes);
  EXPECT_EQ(m.memory_hit_bytes + m.disk_hit_bytes, m.byte_hits.hits());
  // No cache scheme beats the re-reference bound.
  EXPECT_LE(m.hit_ratio(), stats.max_hit_ratio + 1e-12);
  EXPECT_LE(m.byte_hit_ratio(), stats.max_byte_hit_ratio + 1e-12);
  // Latency accounting: every request observed, hit latency ≤ total.
  EXPECT_EQ(m.log_latency.count(), shared_trace().size());
  EXPECT_LE(m.total_hit_latency_s, m.total_service_time_s + 1e-9);
  // With mutations in the workload, size-change misses must appear for any
  // organization that caches at all.
  EXPECT_GT(m.size_change_misses, 0u);
}

TEST_P(OrgPolicyMatrix, DeterministicAcrossRuns) {
  const auto [org, policy] = GetParam();
  const Metrics a = run(org, policy);
  const Metrics b = run(org, policy);
  EXPECT_EQ(a.hits.hits(), b.hits.hits());
  EXPECT_EQ(a.byte_hits.hits(), b.byte_hits.hits());
  EXPECT_EQ(a.remote_browser_hits, b.remote_browser_hits);
  EXPECT_EQ(a.size_change_misses, b.size_change_misses);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, OrgPolicyMatrix,
    ::testing::Combine(::testing::ValuesIn(kAllOrganizations),
                       ::testing::ValuesIn(cache::kAllPolicies)),
    [](const auto& param_info) {
      std::string name =
          org_name(std::get<0>(param_info.param)) + "_" +
          cache::policy_name(std::get<1>(param_info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace baps::sim
