// Churned-replay tests: every organization must survive seeded client churn
// (§5's join/leave dynamics) serving every request, the churn stream must be
// deterministic per seed, and zero churn must leave the simulator untouched.
#include <gtest/gtest.h>

#include <vector>

#include "sim/organization.hpp"
#include "sim/orgs.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace baps::sim {
namespace {

using trace::Request;
using trace::Trace;

/// A few thousand zipf-ish requests over a small universe: enough rereference
/// for remote-browser hits, enough requests for churn to fire often.
Trace churn_trace(std::uint32_t clients, std::size_t n) {
  Xoshiro256 rng(0xC0FFEE);
  std::vector<Request> reqs;
  reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.timestamp = static_cast<double>(i);
    r.client = static_cast<trace::ClientId>(rng.below(clients));
    r.doc = rng.below(40);
    r.size = 100 + 10 * (r.doc % 7);
    reqs.push_back(r);
  }
  return Trace("churn-synth", clients, 40, std::move(reqs));
}

SimConfig churn_config(std::uint32_t clients, double rate,
                       std::uint64_t seed) {
  SimConfig cfg;
  cfg.proxy_cache_bytes = 1 << 12;  // small: force index-routed requests
  cfg.browser_cache_bytes.assign(clients, 1 << 16);
  cfg.churn_rate = rate;
  cfg.churn_seed = seed;
  return cfg;
}

TEST(ChurnReplayTest, EveryOrganizationServesEveryRequestUnderChurn) {
  const Trace t = churn_trace(6, 4000);
  for (const OrgKind kind : kAllOrganizations) {
    const Metrics m =
        run_organization(kind, churn_config(6, 0.3, 17), t);
    EXPECT_EQ(m.hits.total(), t.size()) << org_name(kind);
    EXPECT_GT(m.churn_departures, 0u) << org_name(kind);
    EXPECT_GT(m.churn_rejoins, 0u) << org_name(kind);
  }
}

TEST(ChurnReplayTest, SameChurnSeedReproducesTheRun) {
  const Trace t = churn_trace(6, 3000);
  const SimConfig cfg = churn_config(6, 0.25, 99);
  const Metrics a = run_organization(OrgKind::kBrowsersAware, cfg, t);
  const Metrics b = run_organization(OrgKind::kBrowsersAware, cfg, t);
  EXPECT_EQ(a.churn_departures, b.churn_departures);
  EXPECT_EQ(a.churn_rejoins, b.churn_rejoins);
  EXPECT_EQ(a.hits.hits(), b.hits.hits());
  EXPECT_EQ(a.false_forwards, b.false_forwards);
  EXPECT_EQ(a.index_messages, b.index_messages);
  EXPECT_EQ(a.remote_browser_hits, b.remote_browser_hits);
}

TEST(ChurnReplayTest, ZeroChurnRateMatchesTheChurnFreeSimulator) {
  const Trace t = churn_trace(4, 2000);
  SimConfig off = churn_config(4, 0.0, 1);
  SimConfig never_set = churn_config(4, 0.0, 0);
  never_set.churn_seed = 12345;  // seed is irrelevant when rate is 0
  const Metrics a = run_organization(OrgKind::kBrowsersAware, off, t);
  const Metrics b = run_organization(OrgKind::kBrowsersAware, never_set, t);
  EXPECT_EQ(a.hits.hits(), b.hits.hits());
  EXPECT_EQ(a.byte_hits.hits(), b.byte_hits.hits());
  EXPECT_EQ(a.false_forwards, b.false_forwards);
  EXPECT_EQ(a.index_messages, b.index_messages);
  EXPECT_EQ(a.churn_departures, 0u);
  EXPECT_EQ(a.churn_rejoins, 0u);
}

TEST(ChurnReplayTest, DeparturesCreateStaleEntriesThatBecomeFalseForwards) {
  // Browsers-aware with impolite departures: a departed client's index
  // entries go stale, so a churned run sees false forwards a churn-free run
  // of the same trace does not need.
  const Trace t = churn_trace(6, 4000);
  const Metrics churned =
      run_organization(OrgKind::kBrowsersAware, churn_config(6, 0.4, 7), t);
  EXPECT_GT(churned.churn_wiped_docs, 0u);
  EXPECT_GT(churned.false_forwards, 0u);
  // Every request is still answered — staleness degrades the hit ratio, not
  // correctness.
  EXPECT_EQ(churned.hits.total(), t.size());
}

TEST(ChurnReplayTest, GlobalBrowsersIndexStaysInSyncUnderChurn) {
  // GlobalBrowsersOnlyOrg asserts its replicated immediate index never
  // disagrees with the browser caches; a churn wipe must preserve that.
  const Trace t = churn_trace(5, 5000);
  const Metrics m = run_organization(OrgKind::kGlobalBrowsersOnly,
                                     churn_config(5, 0.5, 3), t);
  EXPECT_EQ(m.hits.total(), t.size());
  EXPECT_GT(m.churn_departures, 0u);
}

}  // namespace
}  // namespace baps::sim
