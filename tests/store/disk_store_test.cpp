// DiskStore behaviour on a healthy disk: round-trips, generation supersede,
// index rebuild across clean and crash reopens, torn-tail truncation, FIFO
// segment reclamation under capacity, and the small-print (oversized
// records, erase, empty-segment hygiene).
#include "store/disk_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/biguint.hpp"
#include "store/segment.hpp"
#include "store_test_util.hpp"

namespace baps::store {
namespace {

using store_test::TempDir;
using store_test::make_doc;
using store_test::segment_files;

DiskStoreConfig small_config(const TempDir& dir,
                             std::uint64_t capacity = 1 << 20,
                             std::uint64_t segment = 256 << 10) {
  DiskStoreConfig config;
  config.dir = dir.str();
  config.capacity_bytes = capacity;
  config.segment_bytes = segment;
  return config;
}

TEST(DiskStoreTest, PutGetRoundTripWithWatermark) {
  TempDir dir("baps-store-roundtrip");
  DiskStore store(small_config(dir));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  ASSERT_TRUE(store.put(1, make_doc("the body", 0xdeadbeefULL)));
  EXPECT_TRUE(store.contains(1));
  EXPECT_EQ(store.count(), 1u);

  runtime::Document out;
  EXPECT_EQ(store.get(1, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, "the body");
  EXPECT_EQ(out.mark.signature, crypto::BigUInt(0xdeadbeefULL));

  EXPECT_EQ(store.get(99, &out), DiskStore::Load::kMiss);
  EXPECT_FALSE(store.contains(99));

  store.sync();
  EXPECT_EQ(store.stats().appends, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_GE(store.stats().syncs, 1u);
}

TEST(DiskStoreTest, ZeroWatermarkSignatureRoundTrips) {
  TempDir dir("baps-store-zeromark");
  DiskStore store(small_config(dir));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  // BigUInt(0).to_bytes() is empty: the record carries no mark bytes at all.
  ASSERT_TRUE(store.put(7, make_doc("unmarked", 0)));
  runtime::Document out;
  ASSERT_EQ(store.get(7, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, "unmarked");
  EXPECT_EQ(out.mark.signature, crypto::BigUInt(0));
}

TEST(DiskStoreTest, OverwriteSupersedesOlderGeneration) {
  TempDir dir("baps-store-overwrite");
  DiskStore store(small_config(dir));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  ASSERT_TRUE(store.put(5, make_doc("version one", 1)));
  ASSERT_TRUE(store.put(5, make_doc("version two", 2)));
  EXPECT_EQ(store.count(), 1u);

  runtime::Document out;
  ASSERT_EQ(store.get(5, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, "version two");
  // Both records are on disk; only the newest is live.
  EXPECT_GT(store.total_bytes(), store.live_bytes());
}

TEST(DiskStoreTest, CleanReopenRebuildsIndexFromHeaders) {
  TempDir dir("baps-store-reopen");
  std::string error;
  {
    DiskStore store(small_config(dir));
    ASSERT_TRUE(store.open(&error)) << error;
    for (std::uint64_t key = 1; key <= 10; ++key) {
      ASSERT_TRUE(store.put(key, make_doc("body-" + std::to_string(key), key)));
    }
    ASSERT_TRUE(store.put(3, make_doc("body-3-updated", 33)));
    store.close();
  }

  DiskStore store(small_config(dir));
  ASSERT_TRUE(store.open(&error)) << error;
  EXPECT_EQ(store.count(), 10u);
  EXPECT_EQ(store.stats().truncated_tails, 0u);
  EXPECT_EQ(store.stats().integrity_failures, 0u);

  const std::vector<DiskStore::Key> expected = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(store.keys(), expected);

  runtime::Document out;
  ASSERT_EQ(store.get(3, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, "body-3-updated");  // newest generation won the rebuild
  EXPECT_EQ(out.mark.signature, crypto::BigUInt(33));
  for (std::uint64_t key = 1; key <= 10; ++key) {
    if (key == 3) continue;
    ASSERT_EQ(store.get(key, &out), DiskStore::Load::kHit) << key;
    EXPECT_EQ(out.body, "body-" + std::to_string(key));
  }
}

TEST(DiskStoreTest, CrashReopenKeepsAcceptedRecords) {
  TempDir dir("baps-store-crash");
  DiskStore store(small_config(dir));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;
  for (std::uint64_t key = 0; key < 6; ++key) {
    ASSERT_TRUE(store.put(key, make_doc(std::string(100, 'a'), key + 1)));
  }

  // reopen() drops every in-RAM structure without a clean sync and rebuilds
  // purely from the files — the crash-restart path.
  ASSERT_TRUE(store.reopen(&error)) << error;
  EXPECT_EQ(store.count(), 6u);
  runtime::Document out;
  for (std::uint64_t key = 0; key < 6; ++key) {
    EXPECT_EQ(store.get(key, &out), DiskStore::Load::kHit) << key;
  }
}

TEST(DiskStoreTest, ShortGarbageTailTruncatedOnOpen) {
  TempDir dir("baps-store-shorttail");
  std::string error;
  std::uintmax_t clean_size = 0;
  {
    DiskStore store(small_config(dir));
    ASSERT_TRUE(store.open(&error)) << error;
    ASSERT_TRUE(store.put(1, make_doc("first", 1)));
    ASSERT_TRUE(store.put(2, make_doc("second", 2)));
    store.close();
    clean_size = std::filesystem::file_size(segment_files(dir.path()).front());
  }
  {
    // A torn append: fewer bytes than a record header landed on disk.
    std::ofstream f(segment_files(dir.path()).front(),
                    std::ios::binary | std::ios::app);
    f.write("torn-tail!", 10);
  }

  DiskStore store(small_config(dir));
  ASSERT_TRUE(store.open(&error)) << error;
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.stats().truncated_tails, 1u);
  EXPECT_EQ(store.stats().integrity_failures, 0u);  // torn, not damaged
  EXPECT_EQ(std::filesystem::file_size(segment_files(dir.path()).front()),
            clean_size);
  runtime::Document out;
  EXPECT_EQ(store.get(1, &out), DiskStore::Load::kHit);
  EXPECT_EQ(store.get(2, &out), DiskStore::Load::kHit);
}

TEST(DiskStoreTest, GarbageHeaderTailCountsAsIntegrityFailure) {
  TempDir dir("baps-store-garbagetail");
  std::string error;
  {
    DiskStore store(small_config(dir));
    ASSERT_TRUE(store.open(&error)) << error;
    ASSERT_TRUE(store.put(1, make_doc("kept", 1)));
    store.close();
  }
  {
    // A full header's worth of bytes that is not a header: damage, not a
    // torn append.
    std::ofstream f(segment_files(dir.path()).front(),
                    std::ios::binary | std::ios::app);
    const std::string junk(kRecordHeaderSize + 8, '\xff');
    f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }

  DiskStore store(small_config(dir));
  ASSERT_TRUE(store.open(&error)) << error;
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.stats().truncated_tails, 1u);
  EXPECT_EQ(store.stats().integrity_failures, 1u);
  runtime::Document out;
  EXPECT_EQ(store.get(1, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, "kept");
}

TEST(DiskStoreTest, FifoReclamationEvictsOldestSegmentsFirst) {
  TempDir dir("baps-store-fifo");
  // ~949-byte records, two per 2 KiB segment, four segments of capacity.
  DiskStore store(small_config(dir, /*capacity=*/8 << 10, /*segment=*/2 << 10));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  const std::uint64_t total = 40;
  for (std::uint64_t key = 1; key <= total; ++key) {
    ASSERT_TRUE(store.put(key, make_doc(std::string(900, 'x'), key)));
    EXPECT_LE(store.total_bytes(), store.capacity_bytes());
  }

  EXPECT_GT(store.stats().segments_reclaimed, 0u);
  EXPECT_GT(store.stats().reclaimed_records, 0u);
  EXPECT_LT(store.count(), total);

  // FIFO at slab granularity: the newest keys survive, the oldest are gone.
  runtime::Document out;
  EXPECT_EQ(store.get(total, &out), DiskStore::Load::kHit);
  EXPECT_EQ(store.get(1, &out), DiskStore::Load::kMiss);
  const auto keys = store.keys();
  ASSERT_FALSE(keys.empty());
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);  // keys() is sorted
  }
  EXPECT_EQ(keys.back(), total);
}

TEST(DiskStoreTest, RecordLargerThanSegmentRejected) {
  TempDir dir("baps-store-oversize");
  DiskStore store(small_config(dir, /*capacity=*/4 << 10, /*segment=*/1 << 10));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  EXPECT_FALSE(store.put(1, make_doc(std::string(2000, 'x'), 1)));
  EXPECT_EQ(store.stats().rejected_too_large, 1u);
  EXPECT_EQ(store.count(), 0u);
  EXPECT_FALSE(store.contains(1));
}

TEST(DiskStoreTest, EraseDropsIndexEntryNotBytes) {
  TempDir dir("baps-store-erase");
  DiskStore store(small_config(dir));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  ASSERT_TRUE(store.put(1, make_doc("one", 1)));
  ASSERT_TRUE(store.put(2, make_doc("two", 2)));
  EXPECT_TRUE(store.erase(1));
  EXPECT_FALSE(store.erase(1));
  EXPECT_FALSE(store.contains(1));
  runtime::Document out;
  EXPECT_EQ(store.get(1, &out), DiskStore::Load::kMiss);
  EXPECT_EQ(store.get(2, &out), DiskStore::Load::kHit);
  // The record's bytes stay until its segment is reclaimed.
  EXPECT_GT(store.total_bytes(), store.live_bytes());
}

TEST(DiskStoreTest, EmptySegmentFilesDoNotAccumulateAcrossReopens) {
  TempDir dir("baps-store-empty");
  std::string error;
  {
    DiskStore store(small_config(dir));
    ASSERT_TRUE(store.open(&error)) << error;
    ASSERT_TRUE(store.put(1, make_doc("data", 1)));
    store.close();
  }
  for (int cycle = 0; cycle < 5; ++cycle) {
    DiskStore store(small_config(dir));
    ASSERT_TRUE(store.open(&error)) << error;
    EXPECT_EQ(store.count(), 1u);
    store.close();
  }
  // One data segment plus at most the freshly created (empty) active one.
  EXPECT_LE(segment_files(dir.path()).size(), 2u);
}

}  // namespace
}  // namespace baps::store
