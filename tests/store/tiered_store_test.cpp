// TieredObjectStore tier-movement policy: demotion on RAM eviction,
// promotion on disk hit, straight-to-disk for oversized documents, warm
// restart from the disk tier — and the store-off mode leaving the metrics
// registry untouched so a RAM-only run stays bit-identical.
#include "store/tiered_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "obs/registry.hpp"
#include "store_test_util.hpp"

namespace baps::store {
namespace {

using store_test::TempDir;
using store_test::make_doc;

TieredObjectStore::Params params_for(const TempDir& dir,
                                     std::uint64_t ram_bytes) {
  TieredObjectStore::Params params;
  params.ram_bytes = ram_bytes;
  params.disk.dir = dir.str();
  params.disk.capacity_bytes = 1 << 20;
  params.disk.segment_bytes = 64 << 10;
  return params;
}

/// Every store_* counter instance (name + labels) and the total number of
/// store_stage_seconds observations — the full metrics surface of the store.
struct StoreMetrics {
  std::map<std::string, std::uint64_t> counters;
  std::uint64_t stage_observations = 0;

  static StoreMetrics capture() {
    StoreMetrics out;
    const auto snapshot = obs::Registry::global().snapshot();
    for (const auto& c : snapshot.counters) {
      if (c.name.rfind("store_", 0) != 0) continue;
      std::string key = c.name;
      for (const auto& [label, value] : c.labels) {
        key += "|" + label + "=" + value;
      }
      out.counters[key] = c.value;
    }
    for (const auto& h : snapshot.histograms) {
      if (h.name == "store_stage_seconds") out.stage_observations += h.count;
    }
    return out;
  }

  std::uint64_t counter(const std::string& key) const {
    const auto it = counters.find(key);
    return it == counters.end() ? 0 : it->second;
  }
};

TEST(TieredStoreTest, StoreOffModeTouchesNoMetrics) {
  const StoreMetrics before = StoreMetrics::capture();

  TieredObjectStore store(TieredObjectStore::Params{2048, DiskStoreConfig{}});
  EXPECT_FALSE(store.disk_enabled());
  EXPECT_EQ(store.disk(), nullptr);
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  // Work the cache hard enough to force evictions, hits, and misses.
  for (std::uint64_t key = 1; key <= 6; ++key) {
    ASSERT_TRUE(store.put(key, make_doc(std::string(900, 'r'), key)));
  }
  EXPECT_TRUE(store.get(6).has_value());
  EXPECT_FALSE(store.get(1).has_value());  // evicted, and nowhere to demote
  EXPECT_TRUE(store.contains(6));
  EXPECT_TRUE(store.erase(6));
  store.sync();
  ASSERT_TRUE(store.restart(&error)) << error;

  // Bit-identity contract: not one store_* instrument moved (or appeared).
  const StoreMetrics after = StoreMetrics::capture();
  EXPECT_EQ(after.counters, before.counters);
  EXPECT_EQ(after.stage_observations, before.stage_observations);
}

TEST(TieredStoreTest, RamEvictionDemotesToDisk) {
  TempDir dir("baps-tiered-demote");
  const StoreMetrics before = StoreMetrics::capture();
  TieredObjectStore store(params_for(dir, /*ram_bytes=*/2048));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  // Two 900-byte documents fit in RAM; the third evicts (and demotes) the
  // least recently used.
  ASSERT_TRUE(store.put(1, make_doc(std::string(900, 'a'), 1)));
  ASSERT_TRUE(store.put(2, make_doc(std::string(900, 'b'), 2)));
  ASSERT_TRUE(store.put(3, make_doc(std::string(900, 'c'), 3)));

  EXPECT_FALSE(store.ram().contains(1));
  ASSERT_NE(store.disk(), nullptr);
  EXPECT_TRUE(store.disk()->contains(1));
  EXPECT_TRUE(store.contains(1));

  const StoreMetrics after = StoreMetrics::capture();
  EXPECT_GE(after.counter("store_demotions_total") -
                before.counter("store_demotions_total"),
            1u);
  EXPECT_GE(after.counter("store_bytes_total|dir=written") -
                before.counter("store_bytes_total|dir=written"),
            900u);
}

TEST(TieredStoreTest, DiskHitPromotesBackIntoRam) {
  TempDir dir("baps-tiered-promote");
  TieredObjectStore store(params_for(dir, /*ram_bytes=*/2048));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  ASSERT_TRUE(store.put(1, make_doc(std::string(900, 'a'), 1)));
  ASSERT_TRUE(store.put(2, make_doc(std::string(900, 'b'), 2)));
  ASSERT_TRUE(store.put(3, make_doc(std::string(900, 'c'), 3)));
  ASSERT_FALSE(store.ram().contains(1));

  const StoreMetrics before = StoreMetrics::capture();
  const auto doc = store.get(1);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->body, std::string(900, 'a'));
  EXPECT_TRUE(store.ram().contains(1));  // promoted
  EXPECT_EQ(store.disk()->stats().hits, 1u);

  // The second read is a pure RAM hit: the disk tier is not probed again.
  EXPECT_TRUE(store.get(1).has_value());
  EXPECT_EQ(store.disk()->stats().hits, 1u);

  const StoreMetrics after = StoreMetrics::capture();
  EXPECT_EQ(after.counter("store_probes_total") -
                before.counter("store_probes_total"),
            1u);
  EXPECT_EQ(after.counter("store_hits_total") -
                before.counter("store_hits_total"),
            1u);
  EXPECT_EQ(after.counter("store_promotions_total") -
                before.counter("store_promotions_total"),
            1u);
  EXPECT_EQ(after.counter("store_bytes_total|dir=read") -
                before.counter("store_bytes_total|dir=read"),
            900u);
}

TEST(TieredStoreTest, FullMissCountsAgainstProbes) {
  TempDir dir("baps-tiered-miss");
  TieredObjectStore store(params_for(dir, 2048));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  const StoreMetrics before = StoreMetrics::capture();
  EXPECT_FALSE(store.get(12345).has_value());
  const StoreMetrics after = StoreMetrics::capture();
  EXPECT_EQ(after.counter("store_probes_total") -
                before.counter("store_probes_total"),
            1u);
  EXPECT_EQ(after.counter("store_misses_total") -
                before.counter("store_misses_total"),
            1u);
  // Family invariant the report checker enforces: hits + misses == probes.
  EXPECT_EQ(after.counter("store_hits_total") + after.counter(
                "store_misses_total"),
            after.counter("store_probes_total"));
}

TEST(TieredStoreTest, OversizedDocumentGoesStraightToDisk) {
  TempDir dir("baps-tiered-oversize");
  TieredObjectStore store(params_for(dir, /*ram_bytes=*/512));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  // 2000 bytes can never fit the 512-byte RAM tier.
  ASSERT_TRUE(store.put(7, make_doc(std::string(2000, 'z'), 7)));
  EXPECT_FALSE(store.ram().contains(7));
  EXPECT_TRUE(store.disk()->contains(7));

  // A hit still serves it; promotion silently fails (still too large) and
  // the document keeps living on disk.
  const auto doc = store.get(7);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->body.size(), 2000u);
  EXPECT_FALSE(store.ram().contains(7));
  EXPECT_TRUE(store.disk()->contains(7));
}

TEST(TieredStoreTest, EraseRemovesFromBothTiers) {
  TempDir dir("baps-tiered-erase");
  TieredObjectStore store(params_for(dir, 2048));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  ASSERT_TRUE(store.put(1, make_doc(std::string(900, 'a'), 1)));
  ASSERT_TRUE(store.put(2, make_doc(std::string(900, 'b'), 2)));
  ASSERT_TRUE(store.put(3, make_doc(std::string(900, 'c'), 3)));  // 1 demoted

  EXPECT_TRUE(store.erase(1));  // disk-resident
  EXPECT_FALSE(store.contains(1));
  EXPECT_TRUE(store.erase(3));  // RAM-resident
  EXPECT_FALSE(store.contains(3));
  EXPECT_FALSE(store.erase(99));
}

TEST(TieredStoreTest, RestartWarmStartsFromDiskTier) {
  TempDir dir("baps-tiered-restart");
  TieredObjectStore store(params_for(dir, /*ram_bytes=*/2048));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  // Keys 1..4 get demoted to disk as 5 and 6 displace them; 5 and 6 are
  // RAM-only when the "crash" hits.
  for (std::uint64_t key = 1; key <= 6; ++key) {
    ASSERT_TRUE(
        store.put(key, make_doc("body-" + std::to_string(key) +
                                    std::string(890, 'd'),
                                key)));
  }
  store.sync();
  const std::uint64_t failures_before = obs::Registry::global()
                                            .counter(
                                                "store_integrity_failures_total")
                                            .value();

  ASSERT_TRUE(store.restart(&error)) << error;
  EXPECT_EQ(store.ram().count(), 0u);

  // The disk survivors warm-start; the RAM-only tail of the LRU is lost.
  for (std::uint64_t key = 1; key <= 4; ++key) {
    const auto doc = store.get(key);
    ASSERT_TRUE(doc.has_value()) << key;
    EXPECT_EQ(doc->body.substr(0, 6), "body-" + std::to_string(key));
  }
  EXPECT_FALSE(store.get(5).has_value());
  EXPECT_FALSE(store.get(6).has_value());

  // Nothing on disk was corrupt: the crash lost data, it never invented any.
  EXPECT_EQ(obs::Registry::global()
                .counter("store_integrity_failures_total")
                .value(),
            failures_before);
}

}  // namespace
}  // namespace baps::store
