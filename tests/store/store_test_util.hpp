// Shared fixtures for the durable-store tests: a self-cleaning scratch
// directory, document builders, and on-disk segment inspection helpers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "crypto/biguint.hpp"
#include "runtime/doc_store.hpp"

namespace baps::store_test {

/// Scratch directory under the system temp dir, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    std::random_device rd;
    const auto base = std::filesystem::temp_directory_path();
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::filesystem::path candidate =
          base / (tag + "-" + std::to_string(rd()));
      std::error_code ec;
      if (std::filesystem::create_directory(candidate, ec)) {
        path_ = std::move(candidate);
        return;
      }
    }
    throw std::runtime_error("cannot create scratch dir for " + tag);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// A document with the given body and watermark signature value.
inline runtime::Document make_doc(std::string body, std::uint64_t sig) {
  runtime::Document doc;
  doc.body = std::move(body);
  doc.mark.signature = crypto::BigUInt(sig);
  return doc;
}

/// Big-endian byte footprint of a signature value as stored on disk.
inline std::uint64_t mark_bytes_of(std::uint64_t sig) {
  return crypto::BigUInt(sig).to_bytes().size();
}

/// Segment files currently in `dir`, sorted by name (equivalently, by id).
inline std::vector<std::filesystem::path> segment_files(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".baps") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// XORs one byte of a file in place (the bit-flip corruption primitive).
/// Returns false on I/O failure so tests can ASSERT on it.
inline bool flip_file_byte(const std::filesystem::path& path,
                           std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return false;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  if (!f.read(&byte, 1)) return false;
  byte = static_cast<char>(byte ^ 0x01);
  f.seekp(static_cast<std::streamoff>(offset));
  return static_cast<bool>(f.write(&byte, 1));
}

}  // namespace baps::store_test
