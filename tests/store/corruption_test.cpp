// Crash-recovery corruption drills for the disk tier: bit-flipped records
// are quarantined (counted, never served), damaged tails are truncated at
// the open-time scan, truncated files recover their intact prefix, and a
// quarantined key heals on the next put.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "obs/registry.hpp"
#include "store/disk_store.hpp"
#include "store/segment.hpp"
#include "store_test_util.hpp"

namespace baps::store {
namespace {

using store_test::TempDir;
using store_test::flip_file_byte;
using store_test::make_doc;
using store_test::mark_bytes_of;
using store_test::segment_files;

DiskStoreConfig config_for(const TempDir& dir) {
  DiskStoreConfig config;
  config.dir = dir.str();
  config.capacity_bytes = 1 << 20;
  config.segment_bytes = 256 << 10;
  return config;
}

std::uint64_t footprint(const std::string& body, std::uint64_t sig) {
  return record_size(body.size(), mark_bytes_of(sig));
}

std::uint64_t global_integrity_failures() {
  return obs::Registry::global()
      .counter("store_integrity_failures_total")
      .value();
}

TEST(CorruptionTest, BitFlippedRecordQuarantinedAtLoad) {
  TempDir dir("baps-corrupt-load");
  DiskStore store(config_for(dir));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  const std::string bodies[] = {"alpha-record-one", "bravo-record-two",
                                "charlie-record-three"};
  for (std::uint64_t key = 1; key <= 3; ++key) {
    ASSERT_TRUE(store.put(key, make_doc(bodies[key - 1], 0x0100 + key)));
  }
  store.sync();

  // Flip one body byte of record 2, in place, while the store is open (the
  // descriptors read the same inode).
  const std::uint64_t rec2_body =
      footprint(bodies[0], 0x0101) + kRecordHeaderSize + 3;
  ASSERT_TRUE(flip_file_byte(segment_files(dir.path()).front(), rec2_body));

  const std::uint64_t failures_before = global_integrity_failures();
  runtime::Document out;
  EXPECT_EQ(store.get(2, &out), DiskStore::Load::kCorrupt);
  EXPECT_EQ(store.stats().integrity_failures, 1u);
  EXPECT_EQ(global_integrity_failures(), failures_before + 1);

  // Quarantined: the key is gone from the index and never served again.
  EXPECT_FALSE(store.contains(2));
  EXPECT_EQ(store.get(2, &out), DiskStore::Load::kMiss);

  // The neighbours are untouched.
  ASSERT_EQ(store.get(1, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, bodies[0]);
  ASSERT_EQ(store.get(3, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, bodies[2]);
}

TEST(CorruptionTest, MidSegmentDamageSurvivesScanButNeverServes) {
  TempDir dir("baps-corrupt-midscan");
  std::string error;
  const std::string bodies[] = {"first-doc-body", "second-doc-body",
                                "third-doc-body"};
  {
    DiskStore store(config_for(dir));
    ASSERT_TRUE(store.open(&error)) << error;
    for (std::uint64_t key = 1; key <= 3; ++key) {
      ASSERT_TRUE(store.put(key, make_doc(bodies[key - 1], 0x0200 + key)));
    }
    store.close();
  }
  const std::uint64_t rec2_body =
      footprint(bodies[0], 0x0201) + kRecordHeaderSize + 1;
  ASSERT_TRUE(flip_file_byte(segment_files(dir.path()).front(), rec2_body));

  // The open-time scan walks headers only, so a mid-segment body flip is
  // invisible to it: the record stays indexed...
  DiskStore store(config_for(dir));
  ASSERT_TRUE(store.open(&error)) << error;
  EXPECT_EQ(store.count(), 3u);
  EXPECT_EQ(store.stats().truncated_tails, 0u);
  EXPECT_TRUE(store.contains(2));

  // ...but the load-time watermark check refuses to serve it.
  runtime::Document out;
  EXPECT_EQ(store.get(2, &out), DiskStore::Load::kCorrupt);
  EXPECT_FALSE(store.contains(2));
  ASSERT_EQ(store.get(1, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, bodies[0]);
  ASSERT_EQ(store.get(3, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, bodies[2]);
}

TEST(CorruptionTest, DamagedFinalRecordTruncatedAtScan) {
  TempDir dir("baps-corrupt-tail");
  std::string error;
  {
    DiskStore store(config_for(dir));
    ASSERT_TRUE(store.open(&error)) << error;
    ASSERT_TRUE(store.put(1, make_doc("survivor", 0x0301)));
    ASSERT_TRUE(store.put(2, make_doc("torn-victim", 0x0302)));
    store.close();
  }
  // Flip a body byte of the FINAL record: a crash that landed exactly on a
  // plausible record length. The scan verifies the final record and cuts it.
  const std::uint64_t rec2_body =
      footprint("survivor", 0x0301) + kRecordHeaderSize + 2;
  ASSERT_TRUE(flip_file_byte(segment_files(dir.path()).front(), rec2_body));

  DiskStore store(config_for(dir));
  ASSERT_TRUE(store.open(&error)) << error;
  EXPECT_EQ(store.count(), 1u);
  EXPECT_FALSE(store.contains(2));
  EXPECT_EQ(store.stats().truncated_tails, 1u);
  EXPECT_EQ(store.stats().integrity_failures, 1u);
  EXPECT_EQ(std::filesystem::file_size(segment_files(dir.path()).front()),
            footprint("survivor", 0x0301));

  runtime::Document out;
  ASSERT_EQ(store.get(1, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, "survivor");
}

TEST(CorruptionTest, TruncatedFileRecoversIntactPrefix) {
  TempDir dir("baps-corrupt-truncate");
  std::string error;
  {
    DiskStore store(config_for(dir));
    ASSERT_TRUE(store.open(&error)) << error;
    ASSERT_TRUE(store.put(1, make_doc("intact-prefix", 0x0401)));
    ASSERT_TRUE(store.put(2, make_doc("lost-to-the-crash", 0x0402)));
    store.close();
  }
  const std::uint64_t rec1 = footprint("intact-prefix", 0x0401);
  std::filesystem::resize_file(segment_files(dir.path()).front(), rec1 + 20);

  DiskStore store(config_for(dir));
  ASSERT_TRUE(store.open(&error)) << error;
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.stats().truncated_tails, 1u);
  EXPECT_EQ(store.stats().integrity_failures, 0u);  // torn, not damaged
  EXPECT_EQ(std::filesystem::file_size(segment_files(dir.path()).front()),
            rec1);
  runtime::Document out;
  ASSERT_EQ(store.get(1, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, "intact-prefix");
  EXPECT_EQ(store.get(2, &out), DiskStore::Load::kMiss);
}

TEST(CorruptionTest, QuarantinedKeyHealsOnNextPut) {
  TempDir dir("baps-corrupt-heal");
  DiskStore store(config_for(dir));
  std::string error;
  ASSERT_TRUE(store.open(&error)) << error;

  ASSERT_TRUE(store.put(1, make_doc("damaged-soon", 0x0501)));
  store.sync();
  ASSERT_TRUE(
      flip_file_byte(segment_files(dir.path()).front(), kRecordHeaderSize));

  runtime::Document out;
  EXPECT_EQ(store.get(1, &out), DiskStore::Load::kCorrupt);
  EXPECT_EQ(store.get(1, &out), DiskStore::Load::kMiss);

  // A fresh copy re-enters under a newer generation and serves cleanly.
  ASSERT_TRUE(store.put(1, make_doc("healed", 0x0502)));
  ASSERT_EQ(store.get(1, &out), DiskStore::Load::kHit);
  EXPECT_EQ(out.body, "healed");
  EXPECT_EQ(out.mark.signature, crypto::BigUInt(0x0502));
}

}  // namespace
}  // namespace baps::store
