// Differential test: the simulator's inclusive two-tier cache model
// (cache::TieredCache, the §4.2 memory-byte-hit machinery) against the
// runtime's real RAM+disk store (store::TieredObjectStore), both driven by
// the same synthetic trace with matched capacities.
//
// The models are deliberately different — the sim layers a small LRU memory
// tier over one full-capacity cache, while the runtime demotes RAM evictions
// into a FIFO-reclaimed slab log — so the curves cannot match exactly. What
// must hold is that the byte-hit-ratio and memory-byte-hit-ratio each land
// in the same neighbourhood: a real disk tier is a faithful realization of
// the model the paper's numbers come from, not a different animal.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "cache/tiered_cache.hpp"
#include "store/tiered_store.hpp"
#include "store_test_util.hpp"
#include "trace/generator.hpp"

namespace baps::store {
namespace {

using store_test::TempDir;
using store_test::make_doc;

struct ByteRatios {
  double total = 0.0;   ///< hit bytes / requested bytes
  double memory = 0.0;  ///< memory-tier hit bytes / requested bytes
};

/// Bound sizes so the runtime side's bodies stay cheap to materialize while
/// keeping the generator's skew (deterministic in the trace).
std::uint64_t clamped_size(std::uint64_t size) { return 64 + size % 1500; }

ByteRatios drive_sim(const trace::Trace& tr, std::uint64_t ram_bytes,
                     std::uint64_t disk_bytes) {
  cache::TieredCache tiered(
      ram_bytes + disk_bytes,
      static_cast<double>(ram_bytes) /
          static_cast<double>(ram_bytes + disk_bytes),
      cache::PolicyKind::kLru);
  double requested = 0, hit = 0, memory = 0;
  for (const auto& req : tr.requests()) {
    const std::uint64_t size = clamped_size(req.size);
    requested += static_cast<double>(size);
    const auto probe = tiered.touch_expected(req.doc, size);
    if (probe.outcome == cache::LookupOutcome::kHit) {
      hit += static_cast<double>(size);
      if (probe.tier == cache::HitTier::kMemory) {
        memory += static_cast<double>(size);
      }
      continue;
    }
    if (probe.outcome == cache::LookupOutcome::kStale) tiered.erase(req.doc);
    tiered.insert(req.doc, size);
  }
  return ByteRatios{hit / requested, memory / requested};
}

ByteRatios drive_runtime(const trace::Trace& tr, std::uint64_t ram_bytes,
                         std::uint64_t disk_bytes, const std::string& dir) {
  TieredObjectStore::Params params;
  params.ram_bytes = ram_bytes;
  params.disk.dir = dir;
  params.disk.capacity_bytes = disk_bytes;
  params.disk.segment_bytes = 16 << 10;
  TieredObjectStore store(params);
  std::string error;
  EXPECT_TRUE(store.open(&error)) << error;

  double requested = 0, hit = 0, memory = 0;
  for (const auto& req : tr.requests()) {
    const std::uint64_t size = clamped_size(req.size);
    requested += static_cast<double>(size);
    const bool in_ram = store.ram().contains(req.doc);
    auto doc = store.get(req.doc);
    if (doc.has_value() && doc->body.size() == size) {
      hit += static_cast<double>(size);
      if (in_ram) memory += static_cast<double>(size);
      continue;
    }
    // Miss, or a stale copy whose size changed under mutation: refetch.
    if (doc.has_value()) store.erase(req.doc);
    store.put(req.doc, make_doc(std::string(size, 'x'), req.doc + 1));
  }
  return ByteRatios{hit / requested, memory / requested};
}

TEST(SimDifferentialTest, MemoryByteHitCurvesAgreeAcrossModels) {
  trace::GeneratorParams gen;
  gen.num_requests = 6000;
  gen.num_clients = 8;
  gen.shared_docs = 300;
  gen.private_docs_per_client = 50;
  const trace::Trace tr = trace::generate_trace("store-diff", gen, 1234);

  const std::uint64_t ram = 32 << 10;
  const std::uint64_t disk = 256 << 10;
  const ByteRatios sim = drive_sim(tr, ram, disk);
  TempDir dir("baps-store-diff");
  const ByteRatios rt = drive_runtime(tr, ram, disk, dir.str());

  // Both models must actually exercise both tiers on this workload.
  EXPECT_GT(sim.total, 0.05);
  EXPECT_LT(sim.total, 0.95);
  EXPECT_GT(rt.total, 0.05);
  EXPECT_LT(rt.total, 0.95);
  EXPECT_GT(sim.memory, 0.0);
  EXPECT_GT(rt.memory, 0.0);
  // Memory-tier bytes are a subset of hit bytes by construction.
  EXPECT_LE(sim.memory, sim.total + 1e-9);
  EXPECT_LE(rt.memory, rt.total + 1e-9);

  // The agreement bound: loose, because LRU-over-one-cache vs
  // RAM-LRU-plus-FIFO-slabs genuinely differ at the margins.
  EXPECT_LT(std::abs(sim.total - rt.total), 0.15)
      << "sim=" << sim.total << " runtime=" << rt.total;
  EXPECT_LT(std::abs(sim.memory - rt.memory), 0.15)
      << "sim=" << sim.memory << " runtime=" << rt.memory;
}

TEST(SimDifferentialTest, BiggerMemoryTierServesMoreMemoryBytes) {
  trace::GeneratorParams gen;
  gen.num_requests = 4000;
  gen.num_clients = 6;
  gen.shared_docs = 200;
  gen.private_docs_per_client = 30;
  const trace::Trace tr = trace::generate_trace("store-diff-mono", gen, 77);

  const std::uint64_t disk = 192 << 10;
  TempDir small_dir("baps-store-diff-small");
  TempDir large_dir("baps-store-diff-large");
  const ByteRatios small =
      drive_runtime(tr, 16 << 10, disk, small_dir.str());
  const ByteRatios large =
      drive_runtime(tr, 64 << 10, disk, large_dir.str());

  // The runtime curve moves the right way as the RAM tier grows — the
  // qualitative shape behind the paper's Figure 7 memory-byte argument.
  EXPECT_GT(large.memory, small.memory);
}

}  // namespace
}  // namespace baps::store
