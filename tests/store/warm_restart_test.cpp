// End-to-end crash recovery through the whole protocol engine: a loopback
// BapsSystem browsing a fixed schedule while the embedded proxy crash-
// restarts. With a durable store directory the proxy warm-starts from the
// disk tier and keeps serving proxy hits; without one every restart is a
// cold start. Either way no corrupt object is ever served (every browse
// watermark-verifies) and the integrity-failure counter stays flat.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/registry.hpp"
#include "runtime/system.hpp"
#include "store_test_util.hpp"

namespace baps::store {
namespace {

using store_test::TempDir;

std::vector<runtime::Url> schedule_urls() {
  std::vector<runtime::Url> urls;
  for (int i = 0; i < 30; ++i) {
    urls.push_back("https://example.test/doc/" + std::to_string(i));
  }
  return urls;
}

runtime::BapsSystem::Params params_with_store(const std::string& store_dir) {
  runtime::BapsSystem::Params params;
  params.num_clients = 3;
  // Small proxy RAM (a handful of ~1 KiB documents) so the working set
  // overflows into the disk tier; tiny browser caches so peers can't mask
  // the proxy's recovery.
  params.proxy_cache_bytes = 8 << 10;
  params.browser_cache_bytes = 1 << 10;
  params.seed = 11;
  if (!store_dir.empty()) {
    params.store.dir = store_dir;
    params.store.capacity_bytes = 1 << 20;
    params.store.segment_bytes = 32 << 10;
  }
  return params;
}

/// Four rounds over the same 30 URLs with a proxy crash-restart between
/// rounds. Returns the proxy hit count; asserts every response verified.
std::uint64_t run_restart_schedule(const std::string& store_dir) {
  runtime::BapsSystem sys(params_with_store(store_dir));
  const auto urls = schedule_urls();
  for (int round = 0; round < 4; ++round) {
    if (round > 0) sys.restart_proxy();
    for (std::size_t i = 0; i < urls.size(); ++i) {
      const auto out =
          sys.browse(static_cast<runtime::ClientId>(i % 3), urls[i]);
      EXPECT_TRUE(out.verified) << "round " << round << " url " << urls[i];
      EXPECT_FALSE(out.body.empty());
    }
  }
  EXPECT_EQ(sys.tamper_detections(), 0u);
  return sys.proxy_hits();
}

std::uint64_t global_integrity_failures() {
  return obs::Registry::global()
      .counter("store_integrity_failures_total")
      .value();
}

TEST(WarmRestartTest, DurableStoreRecoversHitRatioAcrossRestarts) {
  const std::uint64_t cold_hits = run_restart_schedule("");

  TempDir dir("baps-warm-restart");
  const std::uint64_t failures_before = global_integrity_failures();
  const std::uint64_t warm_hits = run_restart_schedule(dir.str());

  // The tentpole claim: a warm start from the disk tier recovers hits a
  // cold-started proxy has to refetch from the origin.
  EXPECT_GT(warm_hits, cold_hits)
      << "warm=" << warm_hits << " cold=" << cold_hits;
  // And recovery never served damage: zero integrity failures.
  EXPECT_EQ(global_integrity_failures(), failures_before);
}

TEST(WarmRestartTest, FaultPlanRestartsRecoverWithStore) {
  // Same comparison, but the restarts come from the seeded fault plan (the
  // kProxyRestart kind) instead of explicit calls — the schedule is a pure
  // function of (seed, rates), so both runs crash at the same points.
  fault::FaultRates rates;
  rates.of(fault::FaultKind::kProxyRestart) = 0.05;

  const auto run = [&](const std::string& store_dir) {
    runtime::BapsSystem sys(params_with_store(store_dir));
    fault::FaultPlan plan(/*seed=*/42, rates);
    sys.attach_fault_plan(&plan);
    const auto urls = schedule_urls();
    for (int round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < urls.size(); ++i) {
        const auto out =
            sys.browse(static_cast<runtime::ClientId>(i % 3), urls[i]);
        EXPECT_TRUE(out.verified);
      }
    }
    EXPECT_GT(plan.injected(fault::FaultKind::kProxyRestart), 0u);
    return sys.proxy_hits();
  };

  const std::uint64_t cold_hits = run("");
  TempDir dir("baps-warm-faultplan");
  const std::uint64_t failures_before = global_integrity_failures();
  const std::uint64_t warm_hits = run(dir.str());

  EXPECT_GT(warm_hits, cold_hits)
      << "warm=" << warm_hits << " cold=" << cold_hits;
  EXPECT_EQ(global_integrity_failures(), failures_before);
}

}  // namespace
}  // namespace baps::store
