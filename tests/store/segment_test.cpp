// Unit tests of the on-disk record format: encode/decode round-trips, the
// header rejection rules the open-time scan relies on, and the MD5 storage
// watermark catching any flipped byte.
#include "store/segment.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace baps::store {
namespace {

TEST(SegmentRecordTest, EncodeDecodeRoundTrip) {
  const std::string body = "hello, watermarked world";
  const std::string mark = "\x01\x02\x03";
  const std::string rec = encode_record(42, 7, body, mark);
  ASSERT_EQ(rec.size(), record_size(body.size(), mark.size()));

  const auto header = decode_record_header(rec);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->key, 42u);
  EXPECT_EQ(header->generation, 7u);
  EXPECT_EQ(header->body_len, static_cast<std::uint32_t>(body.size()));
  EXPECT_EQ(header->mark_len, static_cast<std::uint32_t>(mark.size()));
  EXPECT_EQ(rec.substr(kRecordHeaderSize, body.size()), body);
  EXPECT_EQ(rec.substr(kRecordHeaderSize + body.size(), mark.size()), mark);
  EXPECT_TRUE(verify_record(rec));
}

TEST(SegmentRecordTest, EmptyPayloadsRoundTrip) {
  const std::string rec = encode_record(1, 1, "", "");
  ASSERT_EQ(rec.size(), record_size(0, 0));
  ASSERT_EQ(rec.size(), kRecordHeaderSize + kRecordDigestSize);
  const auto header = decode_record_header(rec);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->body_len, 0u);
  EXPECT_EQ(header->mark_len, 0u);
  EXPECT_TRUE(verify_record(rec));
}

TEST(SegmentRecordTest, LargeKeyAndGenerationSurvive) {
  const std::uint64_t key = 0xfedcba9876543210ULL;
  const std::uint64_t generation = 0x0123456789abcdefULL;
  const std::string rec = encode_record(key, generation, "x", "y");
  const auto header = decode_record_header(rec);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->key, key);
  EXPECT_EQ(header->generation, generation);
}

TEST(SegmentRecordTest, BadMagicRejected) {
  std::string rec = encode_record(3, 1, "body", "");
  rec[0] = static_cast<char>(rec[0] ^ 0x40);
  EXPECT_FALSE(decode_record_header(rec).has_value());
}

TEST(SegmentRecordTest, NonzeroReservedRejected) {
  std::string rec = encode_record(3, 1, "body", "");
  rec[12] = 0x01;  // reserved word at header offset 12
  EXPECT_FALSE(decode_record_header(rec).has_value());
}

TEST(SegmentRecordTest, FlippedBodyByteFailsVerification) {
  std::string rec = encode_record(9, 2, "the quick brown fox", "mk");
  rec[kRecordHeaderSize + 4] = static_cast<char>(rec[kRecordHeaderSize + 4] ^ 1);
  // The header is untouched, so the scan would still walk past this record —
  // only the watermark check catches the damage.
  EXPECT_TRUE(decode_record_header(rec).has_value());
  EXPECT_FALSE(verify_record(rec));
}

TEST(SegmentRecordTest, FlippedMarkByteFailsVerification) {
  const std::string body = "doc";
  std::string rec = encode_record(9, 2, body, "signature");
  const std::size_t mark_at = kRecordHeaderSize + body.size();
  rec[mark_at] = static_cast<char>(rec[mark_at] ^ 1);
  EXPECT_FALSE(verify_record(rec));
}

TEST(SegmentRecordTest, FlippedDigestByteFailsVerification) {
  std::string rec = encode_record(9, 2, "doc", "sig");
  rec.back() = static_cast<char>(rec.back() ^ 1);
  EXPECT_FALSE(verify_record(rec));
}

}  // namespace
}  // namespace baps::store
