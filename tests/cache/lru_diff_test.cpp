// Differential test: the slab-backed LruPolicy against a std::list reference
// implementation (the pre-flat-memory design). The eviction ORDER is part of
// the simulator's contract — golden metrics depend on exact victim
// sequences — so the two implementations must agree on every victim across a
// long randomized mixed workload, not just on hit/miss behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/lru.hpp"
#include "util/rng.hpp"

namespace baps::cache {
namespace {

/// The previous implementation, verbatim in spirit: list of docs in recency
/// order plus doc -> iterator map.
class ListLru {
 public:
  void insert(DocId doc) {
    order_.push_front(doc);
    where_[doc] = order_.begin();
  }
  void hit(DocId doc) {
    const auto it = where_.find(doc);
    ASSERT_NE(it, where_.end());
    order_.splice(order_.begin(), order_, it->second);
  }
  void remove(DocId doc) {
    const auto it = where_.find(doc);
    ASSERT_NE(it, where_.end());
    order_.erase(it->second);
    where_.erase(it);
  }
  DocId victim() const { return order_.back(); }
  bool empty() const { return order_.empty(); }
  std::size_t size() const { return order_.size(); }

 private:
  std::list<DocId> order_;
  std::unordered_map<DocId, std::list<DocId>::iterator> where_;
};

TEST(LruDiffTest, SlabMatchesListReferenceOnRandomWorkload) {
  LruPolicy slab;
  ListLru ref;
  std::vector<DocId> resident;  // for picking random residents
  std::unordered_map<DocId, std::size_t> pos;
  Xoshiro256 rng(0x10e5);

  const auto add_resident = [&](DocId d) {
    pos[d] = resident.size();
    resident.push_back(d);
  };
  const auto drop_resident = [&](DocId d) {
    const std::size_t i = pos.at(d);
    pos[resident.back()] = i;
    resident[i] = resident.back();
    resident.pop_back();
    pos.erase(d);
  };

  for (int op = 0; op < 100000; ++op) {
    switch (rng.below(5)) {
      case 0:
      case 1: {  // insert a new doc
        const DocId d = static_cast<DocId>(rng.below(4096));
        if (pos.count(d) != 0) break;
        slab.on_insert(d, 1);
        ref.insert(d);
        add_resident(d);
        break;
      }
      case 2: {  // hit a random resident
        if (resident.empty()) break;
        const DocId d = resident[rng.below(resident.size())];
        slab.on_hit(d, 1);
        ref.hit(d);
        break;
      }
      case 3: {  // explicit remove of a random resident
        if (resident.empty()) break;
        const DocId d = resident[rng.below(resident.size())];
        slab.on_remove(d);
        ref.remove(d);
        drop_resident(d);
        break;
      }
      default: {  // evict: victims must match exactly
        if (ref.empty()) break;
        const DocId expect = ref.victim();
        ASSERT_EQ(slab.victim(), expect) << "victim diverged at op " << op;
        ASSERT_EQ(slab.pop_victim(), expect);
        ref.remove(expect);
        drop_resident(expect);
        break;
      }
    }
  }

  // Drain both: the full remaining eviction sequences must agree.
  while (!ref.empty()) {
    const DocId expect = ref.victim();
    ASSERT_EQ(slab.pop_victim(), expect);
    ref.remove(expect);
  }
}

TEST(LruDiffTest, SlabReusesSlotsAfterChurn) {
  LruPolicy slab;
  // Repeated insert/evict cycles at a small working set must not grow the
  // slab: slot recycling keeps victim order correct through reuse.
  for (int round = 0; round < 1000; ++round) {
    slab.on_insert(static_cast<DocId>(round % 8), 1);
    ASSERT_EQ(slab.pop_victim(), static_cast<DocId>(round % 8));
  }
}

TEST(LruDiffTest, PopVictimEquivalentToVictimPlusRemove) {
  LruPolicy a, b;
  for (DocId d = 0; d < 16; ++d) {
    a.on_insert(d, 1);
    b.on_insert(d, 1);
  }
  a.on_hit(3, 1);
  b.on_hit(3, 1);
  for (int i = 0; i < 16; ++i) {
    const DocId va = b.victim();
    b.on_remove(va);
    ASSERT_EQ(a.pop_victim(), va);
  }
}

}  // namespace
}  // namespace baps::cache
