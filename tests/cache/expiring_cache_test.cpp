#include "cache/expiring_cache.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace baps::cache {
namespace {

TEST(ExpiringCacheTest, UnexpiredEntryHits) {
  ExpiringCache c(1000, PolicyKind::kLru);
  c.insert(1, 100, /*expires_at=*/10.0);
  EXPECT_TRUE(c.contains(1, 5.0));
  EXPECT_EQ(c.touch(1, 5.0), std::optional<std::uint64_t>(100));
  EXPECT_EQ(c.ttl_remaining(1, 4.0), std::optional<double>(6.0));
}

TEST(ExpiringCacheTest, ExpiredEntryMissesAndIsReclaimed) {
  ExpiringCache c(1000, PolicyKind::kLru);
  c.insert(1, 100, 10.0);
  DocId expired_doc = 0;
  c.set_expiry_listener([&](DocId d) { expired_doc = d; });
  EXPECT_FALSE(c.contains(1, 10.0));  // boundary: expires AT its deadline
  EXPECT_EQ(c.touch(1, 10.0), std::nullopt);
  EXPECT_EQ(expired_doc, 1u);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.used_bytes(), 0u);
}

TEST(ExpiringCacheTest, NeverExpiresLivesForever) {
  ExpiringCache c(1000, PolicyKind::kLru);
  c.insert(1, 100, ExpiringCache::kNeverExpires);
  EXPECT_TRUE(c.contains(1, 1e18));
  EXPECT_TRUE(c.ttl_remaining(1, 1e18).has_value());
}

TEST(ExpiringCacheTest, PurgeReclaimsOnlyExpired) {
  ExpiringCache c(1000, PolicyKind::kLru);
  c.insert(1, 10, 5.0);
  c.insert(2, 10, 15.0);
  c.insert(3, 10, 8.0);
  int expired = 0;
  c.set_expiry_listener([&](DocId) { ++expired; });
  EXPECT_EQ(c.purge_expired(9.0), 2u);
  EXPECT_EQ(expired, 2);
  EXPECT_FALSE(c.contains(1, 9.0));
  EXPECT_TRUE(c.contains(2, 9.0));
  EXPECT_FALSE(c.contains(3, 9.0));
}

TEST(ExpiringCacheTest, CapacityEvictionDropsExpiryRecord) {
  ExpiringCache c(100, PolicyKind::kLru);
  std::vector<DocId> evicted;
  c.set_eviction_listener([&](DocId d, std::uint64_t) {
    evicted.push_back(d);
  });
  c.insert(1, 80, 100.0);
  c.insert(2, 80, 100.0);  // evicts 1
  EXPECT_EQ(evicted, std::vector<DocId>{1});
  // Re-inserting doc 1 must not trip the resident-doc precondition.
  EXPECT_TRUE(c.insert(1, 10, 50.0));
  EXPECT_EQ(c.ttl_remaining(1, 0.0), std::optional<double>(50.0));
}

TEST(ExpiringCacheTest, EraseRemovesEverything) {
  ExpiringCache c(1000, PolicyKind::kLru);
  c.insert(1, 100, 10.0);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_TRUE(c.insert(1, 100, 20.0));
}

TEST(ExpiringCacheTest, DoubleInsertThrows) {
  ExpiringCache c(1000, PolicyKind::kLru);
  c.insert(1, 100, 10.0);
  EXPECT_THROW(c.insert(1, 100, 20.0), baps::InvariantError);
}

TEST(ExpiringCacheTest, ExpiryListenerNotFiredForEvictionOrErase) {
  ExpiringCache c(100, PolicyKind::kLru);
  int expiries = 0;
  c.set_expiry_listener([&](DocId) { ++expiries; });
  c.insert(1, 80, 1000.0);
  c.insert(2, 80, 1000.0);  // capacity-evicts 1
  c.erase(2);
  EXPECT_EQ(expiries, 0);
}

TEST(ExpiringCacheTest, OversizedInsertRejectedCleanly) {
  ExpiringCache c(50, PolicyKind::kLru);
  EXPECT_FALSE(c.insert(1, 100, 10.0));
  EXPECT_FALSE(c.contains(1, 0.0));
  // No orphan expiry record: purging finds nothing.
  EXPECT_EQ(c.purge_expired(1e9), 0u);
}

}  // namespace
}  // namespace baps::cache
