// Per-policy ordering semantics plus a parameterized contract suite every
// policy must satisfy.
#include "cache/policy.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::cache {
namespace {

TEST(PolicyNameTest, AllKindsNamed) {
  EXPECT_EQ(policy_name(PolicyKind::kLru), "LRU");
  EXPECT_EQ(policy_name(PolicyKind::kFifo), "FIFO");
  EXPECT_EQ(policy_name(PolicyKind::kLfu), "LFU");
  EXPECT_EQ(policy_name(PolicyKind::kSize), "SIZE");
  EXPECT_EQ(policy_name(PolicyKind::kGdsf), "GDSF");
}

TEST(LruSemanticsTest, EvictsLeastRecentlyUsed) {
  auto p = make_policy(PolicyKind::kLru);
  p->on_insert(1, 10);
  p->on_insert(2, 10);
  p->on_insert(3, 10);
  EXPECT_EQ(p->victim(), 1u);
  p->on_hit(1, 10);  // 2 is now coldest
  EXPECT_EQ(p->victim(), 2u);
}

TEST(FifoSemanticsTest, HitsDoNotRejuvenate) {
  auto p = make_policy(PolicyKind::kFifo);
  p->on_insert(1, 10);
  p->on_insert(2, 10);
  p->on_hit(1, 10);
  EXPECT_EQ(p->victim(), 1u);  // still oldest by insertion
}

TEST(LfuSemanticsTest, EvictsLowestFrequencyWithLruTiebreak) {
  auto p = make_policy(PolicyKind::kLfu);
  p->on_insert(1, 10);
  p->on_insert(2, 10);
  p->on_insert(3, 10);
  p->on_hit(1, 10);
  p->on_hit(1, 10);
  p->on_hit(3, 10);
  EXPECT_EQ(p->victim(), 2u);  // freq 1 < freq 2 and 3
  p->on_hit(2, 10);
  p->on_hit(2, 10);
  p->on_hit(2, 10);
  EXPECT_EQ(p->victim(), 3u);  // now lowest freq (2)
}

TEST(LfuSemanticsTest, TiebreakPrefersOlderUntouched) {
  auto p = make_policy(PolicyKind::kLfu);
  p->on_insert(1, 10);
  p->on_insert(2, 10);
  // Both freq 1; doc 1 has the older tick.
  EXPECT_EQ(p->victim(), 1u);
}

TEST(SizeSemanticsTest, EvictsLargestFirst) {
  auto p = make_policy(PolicyKind::kSize);
  p->on_insert(1, 500);
  p->on_insert(2, 9000);
  p->on_insert(3, 100);
  EXPECT_EQ(p->victim(), 2u);
  p->on_remove(2);
  EXPECT_EQ(p->victim(), 1u);
}

TEST(GdsfSemanticsTest, FrequencyBeatsEqualSize) {
  auto p = make_policy(PolicyKind::kGdsf);
  p->on_insert(1, 100);
  p->on_insert(2, 100);
  p->on_hit(1, 100);
  EXPECT_EQ(p->victim(), 2u);
}

TEST(GdsfSemanticsTest, SmallDocBeatsLargeDocAtEqualFrequency) {
  auto p = make_policy(PolicyKind::kGdsf);
  p->on_insert(1, 100);
  p->on_insert(2, 100000);
  EXPECT_EQ(p->victim(), 2u);  // 1/100000 < 1/100
}

TEST(GdsfSemanticsTest, InflationAgesOutFormerlyHotDocs) {
  auto p = make_policy(PolicyKind::kGdsf);
  p->on_insert(1, 100);
  for (int i = 0; i < 5; ++i) p->on_hit(1, 100);  // priority 0.06
  // Churn one cheap doc through: it is evicted (0.04 < 0.06) and inflates
  // L to 0.04.
  p->on_insert(2, 25);
  EXPECT_EQ(p->victim(), 2u);
  p->on_remove(2);
  // A fresh doc now enters at L + 0.04 = 0.08 > 0.06: the formerly hot but
  // no-longer-touched doc 1 becomes the victim. That is GDSF aging.
  p->on_insert(3, 25);
  EXPECT_EQ(p->victim(), 1u);
}

// ---------------------------------------------------------------------------
// Contract properties every policy must satisfy.

class PolicyContract : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyContract, VictimIsAlwaysResident) {
  auto p = make_policy(GetParam());
  baps::Xoshiro256 rng(7);
  std::unordered_set<DocId> resident;
  DocId next = 0;
  for (int step = 0; step < 5000; ++step) {
    const double u = rng.uniform();
    if (resident.empty() || u < 0.4) {
      const DocId d = next++;
      p->on_insert(d, 1 + rng.below(10000));
      resident.insert(d);
    } else if (u < 0.7) {
      // hit a random resident doc
      auto it = resident.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.below(resident.size())));
      p->on_hit(*it, 0);
    } else {
      const DocId v = p->victim();
      EXPECT_TRUE(resident.contains(v)) << policy_name(GetParam());
      p->on_remove(v);
      resident.erase(v);
    }
  }
  while (!resident.empty()) {
    const DocId v = p->victim();
    ASSERT_TRUE(resident.contains(v));
    p->on_remove(v);
    resident.erase(v);
  }
}

TEST_P(PolicyContract, DoubleInsertThrows) {
  auto p = make_policy(GetParam());
  p->on_insert(1, 10);
  EXPECT_THROW(p->on_insert(1, 10), baps::InvariantError);
}

TEST_P(PolicyContract, RemoveOfUntrackedThrows) {
  auto p = make_policy(GetParam());
  EXPECT_THROW(p->on_remove(42), baps::InvariantError);
}

TEST_P(PolicyContract, VictimOnEmptyThrows) {
  auto p = make_policy(GetParam());
  EXPECT_THROW(p->victim(), baps::InvariantError);
}

TEST_P(PolicyContract, HitOnUntrackedThrowsUnlessHitAgnostic) {
  auto p = make_policy(GetParam());
  // FIFO and SIZE legitimately ignore hits; the others must detect the bug.
  if (GetParam() == PolicyKind::kFifo || GetParam() == PolicyKind::kSize) {
    EXPECT_NO_THROW(p->on_hit(42, 0));
  } else {
    EXPECT_THROW(p->on_hit(42, 0), baps::InvariantError);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyContract,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& param_info) {
                           return policy_name(param_info.param);
                         });

}  // namespace
}  // namespace baps::cache
