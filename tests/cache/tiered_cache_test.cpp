#include "cache/tiered_cache.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::cache {
namespace {

TEST(TieredCacheTest, MemoryTierIsFractionOfCapacity) {
  TieredCache c(1000, 0.1, PolicyKind::kLru);
  EXPECT_EQ(c.capacity_bytes(), 1000u);
  EXPECT_EQ(c.memory_capacity_bytes(), 100u);
}

TEST(TieredCacheTest, RejectsBadFraction) {
  EXPECT_THROW(TieredCache(1000, 0.0, PolicyKind::kLru),
               baps::InvariantError);
  EXPECT_THROW(TieredCache(1000, 1.5, PolicyKind::kLru),
               baps::InvariantError);
}

TEST(TieredCacheTest, FreshInsertHitsInMemory) {
  TieredCache c(1000, 0.1, PolicyKind::kLru);
  c.insert(1, 50);
  const auto hit = c.touch(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tier, HitTier::kMemory);
  EXPECT_EQ(hit->size, 50u);
}

TEST(TieredCacheTest, ColdDocumentHitsOnDiskThenPromotes) {
  TieredCache c(1000, 0.1, PolicyKind::kLru);  // memory = 100 bytes
  c.insert(1, 80);
  c.insert(2, 80);  // pushes 1 out of the 100-byte memory tier
  const auto first = c.touch(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tier, HitTier::kDisk);
  const auto second = c.touch(1);  // promoted by the first touch
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tier, HitTier::kMemory);
}

TEST(TieredCacheTest, DocumentLargerThanMemoryTierServesFromDisk) {
  TieredCache c(1000, 0.1, PolicyKind::kLru);
  c.insert(1, 500);  // bigger than the 100-byte memory tier
  const auto hit = c.touch(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tier, HitTier::kDisk);
}

TEST(TieredCacheTest, TieringNeverChangesHitDecisions) {
  // The same access stream against a TieredCache and a plain ObjectCache of
  // equal capacity must produce identical hit/miss outcomes.
  TieredCache tiered(10'000, 0.1, PolicyKind::kLru);
  ObjectCache flat(10'000, PolicyKind::kLru);
  baps::Xoshiro256 rng(3);
  for (int i = 0; i < 20'000; ++i) {
    const DocId d = rng.below(400);
    const auto t = tiered.touch(d);
    const auto f = flat.touch(d);
    ASSERT_EQ(t.has_value(), f.has_value()) << "step " << i;
    if (!t) {
      const std::uint64_t s = 1 + rng.below(500);
      ASSERT_EQ(tiered.insert(d, s), flat.insert(d, s));
    }
  }
}

TEST(TieredCacheTest, EvictionFromFullCacheAlsoEvictsMemory) {
  TieredCache c(200, 0.5, PolicyKind::kLru);  // memory = 100
  c.insert(1, 90);
  c.insert(2, 90);  // both fit on disk; 1 pushed from memory by 2
  c.insert(3, 90);  // disk evicts 1 entirely
  EXPECT_FALSE(c.contains(1));
  const auto hit = c.touch(2);
  ASSERT_TRUE(hit.has_value());
}

TEST(TieredCacheTest, UserEvictionListenerStillFires) {
  TieredCache c(100, 0.5, PolicyKind::kLru);
  DocId evicted = 0;
  c.set_eviction_listener([&](DocId d, std::uint64_t) { evicted = d; });
  c.insert(1, 80);
  c.insert(2, 80);
  EXPECT_EQ(evicted, 1u);
}

TEST(TieredCacheTest, EraseRemovesFromBothTiers) {
  TieredCache c(1000, 0.5, PolicyKind::kLru);
  c.insert(1, 50);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.contains(1));
  EXPECT_FALSE(c.touch(1).has_value());
  EXPECT_FALSE(c.erase(1));
}

TEST(TieredCacheTest, MemoryHitShareGrowsWithMemoryFraction) {
  // Sanity for the §4.2 experiment: a larger RAM share must serve a larger
  // share of hit bytes from memory on the same access stream.
  const auto memory_hit_share = [](double fraction) {
    TieredCache c(20'000, fraction, PolicyKind::kLru);
    baps::Xoshiro256 rng(9);
    std::uint64_t mem = 0, total = 0;
    for (int i = 0; i < 30'000; ++i) {
      const DocId d = rng.below(300);
      if (const auto hit = c.touch(d)) {
        ++total;
        if (hit->tier == HitTier::kMemory) ++mem;
      } else {
        c.insert(d, 1 + rng.below(200));
      }
    }
    return static_cast<double>(mem) / static_cast<double>(total);
  };
  EXPECT_GT(memory_hit_share(0.5), memory_hit_share(0.05) + 0.05);
}

}  // namespace
}  // namespace baps::cache
