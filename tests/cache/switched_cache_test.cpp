#include "cache/switched_cache.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace baps::cache {
namespace {

TEST(SwitchedCacheTest, RejectsEmptyPartitionList) {
  EXPECT_THROW(SwitchedCache({}, PolicyKind::kLru), baps::InvariantError);
}

TEST(SwitchedCacheTest, InsertGoesToActivePartition) {
  SwitchedCache c({100, 100}, PolicyKind::kLru);
  EXPECT_EQ(c.active_partition(), 0u);
  c.insert(1, 50);
  c.switch_to(1);
  c.insert(2, 50);
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.used_bytes(), 100u);
  EXPECT_EQ(c.capacity_bytes(), 200u);
}

TEST(SwitchedCacheTest, LookupsHitInactivePartitions) {
  SwitchedCache c({100, 100}, PolicyKind::kLru);
  c.insert(1, 60);
  c.switch_to(1);
  EXPECT_EQ(c.touch(1), std::optional<std::uint64_t>(60));
  EXPECT_EQ(c.peek_size(1), std::optional<std::uint64_t>(60));
}

TEST(SwitchedCacheTest, InactivePartitionSurvivesChurn) {
  // The whole point of the switch: the work-cache content outlives a burst
  // of leisure browsing that would have flushed a unified cache.
  SwitchedCache switched({300, 300}, PolicyKind::kLru);
  ObjectCache unified(600, PolicyKind::kLru);

  for (DocId d = 0; d < 3; ++d) {       // "work" docs, 100 B each
    switched.insert(d, 100);
    unified.insert(d, 100);
  }
  switched.switch_to(1);
  for (DocId d = 100; d < 110; ++d) {   // leisure burst, 10 × 100 B
    switched.insert(d, 100);
    unified.insert(d, 100);
  }
  for (DocId d = 0; d < 3; ++d) {
    EXPECT_TRUE(switched.contains(d)) << d;   // parked partition intact
    EXPECT_FALSE(unified.contains(d)) << d;   // unified cache lost them
  }
}

TEST(SwitchedCacheTest, ReinsertMovesDocToActivePartition) {
  SwitchedCache c({200, 200}, PolicyKind::kLru);
  c.insert(7, 50);
  c.switch_to(1);
  c.insert(7, 80);  // refreshed copy lands in partition 1, old one dropped
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.peek_size(7), std::optional<std::uint64_t>(80));
}

TEST(SwitchedCacheTest, EraseFindsAnyPartition) {
  SwitchedCache c({100, 100}, PolicyKind::kLru);
  c.insert(1, 50);
  c.switch_to(1);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_FALSE(c.contains(1));
}

TEST(SwitchedCacheTest, EvictionListenerCoversAllPartitions) {
  SwitchedCache c({100, 100}, PolicyKind::kLru);
  std::vector<DocId> evicted;
  c.set_eviction_listener([&](DocId d, std::uint64_t) {
    evicted.push_back(d);
  });
  c.insert(1, 80);
  c.insert(2, 80);  // evicts 1 from partition 0
  c.switch_to(1);
  c.insert(3, 80);
  c.insert(4, 80);  // evicts 3 from partition 1
  EXPECT_EQ(evicted, (std::vector<DocId>{1, 3}));
}

TEST(SwitchedCacheTest, SwitchToOutOfRangeThrows) {
  SwitchedCache c({100}, PolicyKind::kLru);
  EXPECT_THROW(c.switch_to(1), baps::InvariantError);
}

}  // namespace
}  // namespace baps::cache
