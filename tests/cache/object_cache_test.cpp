#include "cache/object_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::cache {
namespace {

TEST(ObjectCacheTest, InsertThenTouchHits) {
  ObjectCache c(1000, PolicyKind::kLru);
  EXPECT_TRUE(c.insert(1, 100));
  EXPECT_EQ(c.touch(1), std::optional<std::uint64_t>(100));
  EXPECT_EQ(c.used_bytes(), 100u);
  EXPECT_EQ(c.count(), 1u);
}

TEST(ObjectCacheTest, MissReturnsNullopt) {
  ObjectCache c(1000, PolicyKind::kLru);
  EXPECT_EQ(c.touch(7), std::nullopt);
}

TEST(ObjectCacheTest, EvictsLruVictimsUntilFit) {
  ObjectCache c(300, PolicyKind::kLru);
  c.insert(1, 100);
  c.insert(2, 100);
  c.insert(3, 100);
  c.touch(1);          // heat doc 1; 2 is now coldest
  c.insert(4, 150);    // must evict 2 and 3
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_FALSE(c.contains(3));
  EXPECT_TRUE(c.contains(4));
  EXPECT_EQ(c.used_bytes(), 250u);
}

TEST(ObjectCacheTest, OversizedDocumentIsNotCached) {
  ObjectCache c(100, PolicyKind::kLru);
  c.insert(1, 50);
  EXPECT_FALSE(c.insert(2, 101));
  EXPECT_TRUE(c.contains(1));  // nothing evicted for the failed insert
  EXPECT_EQ(c.used_bytes(), 50u);
}

TEST(ObjectCacheTest, ExactCapacityFits) {
  ObjectCache c(100, PolicyKind::kLru);
  EXPECT_TRUE(c.insert(1, 100));
  EXPECT_EQ(c.used_bytes(), 100u);
}

TEST(ObjectCacheTest, DoubleInsertThrows) {
  ObjectCache c(100, PolicyKind::kLru);
  c.insert(1, 10);
  EXPECT_THROW(c.insert(1, 10), baps::InvariantError);
}

TEST(ObjectCacheTest, EraseFreesBytes) {
  ObjectCache c(100, PolicyKind::kLru);
  c.insert(1, 60);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_TRUE(c.insert(2, 100));
}

TEST(ObjectCacheTest, PeekDoesNotDisturbRecency) {
  ObjectCache c(200, PolicyKind::kLru);
  c.insert(1, 100);
  c.insert(2, 100);
  // Peeking doc 1 must not heat it: the next insert still evicts doc 1.
  EXPECT_EQ(c.peek_size(1), std::optional<std::uint64_t>(100));
  c.insert(3, 100);
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(ObjectCacheTest, EvictionListenerFiresOnCapacityEvictionOnly) {
  ObjectCache c(100, PolicyKind::kLru);
  std::vector<std::pair<DocId, std::uint64_t>> evicted;
  c.set_eviction_listener([&](DocId d, std::uint64_t s) {
    evicted.emplace_back(d, s);
  });
  c.insert(1, 60);
  c.insert(2, 60);  // evicts 1
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (std::pair<DocId, std::uint64_t>{1, 60}));
  c.erase(2);  // explicit erase: no callback
  EXPECT_EQ(evicted.size(), 1u);
}

TEST(ObjectCacheTest, SizeChangeHandledByCaller) {
  // The simulator's rule: a hit on a size-changed doc is a miss; the stale
  // copy is replaced. The cache provides the primitives.
  ObjectCache c(1000, PolicyKind::kLru);
  c.insert(1, 100);
  const auto cached = c.touch(1);
  ASSERT_TRUE(cached.has_value());
  const std::uint64_t new_size = 150;
  ASSERT_NE(*cached, new_size);
  c.erase(1);
  c.insert(1, new_size);
  EXPECT_EQ(c.peek_size(1), std::optional<std::uint64_t>(150));
  EXPECT_EQ(c.used_bytes(), 150u);
}

class CacheAccountingProperty : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(CacheAccountingProperty, BytesNeverExceedCapacityUnderChurn) {
  ObjectCache c(50'000, GetParam());
  baps::Xoshiro256 rng(11);
  std::uint64_t listener_bytes = 0;
  std::uint64_t listener_count = 0;
  c.set_eviction_listener([&](DocId, std::uint64_t s) {
    listener_bytes += s;
    ++listener_count;
  });
  std::uint64_t inserted_bytes = 0, erased_bytes = 0, rejected = 0;
  for (int i = 0; i < 20'000; ++i) {
    const DocId d = rng.below(5'000);
    const double u = rng.uniform();
    if (u < 0.6) {
      if (!c.contains(d)) {
        const std::uint64_t s = 1 + rng.below(3'000);
        if (c.insert(d, s)) {
          inserted_bytes += s;
        } else {
          ++rejected;
        }
      } else {
        c.touch(d);
      }
    } else if (u < 0.8) {
      c.touch(d);
    } else if (const auto s = c.peek_size(d); s && c.erase(d)) {
      erased_bytes += *s;
    }
    ASSERT_LE(c.used_bytes(), c.capacity_bytes());
  }
  // Conservation: bytes in = bytes resident + bytes evicted + bytes erased.
  EXPECT_EQ(inserted_bytes, c.used_bytes() + listener_bytes + erased_bytes);
  EXPECT_EQ(rejected, 0u);  // sizes are all below capacity here
  EXPECT_GT(listener_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CacheAccountingProperty,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& param_info) {
                           return policy_name(param_info.param);
                         });

}  // namespace
}  // namespace baps::cache
