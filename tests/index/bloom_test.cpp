#include "index/bloom.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::index {
namespace {

TEST(BloomFilterTest, RejectsDegenerateDimensions) {
  EXPECT_THROW(BloomFilter(0, 3), baps::InvariantError);
  EXPECT_THROW(BloomFilter(64, 0), baps::InvariantError);
  EXPECT_THROW(BloomFilter::sized_for(0, 0.01), baps::InvariantError);
  EXPECT_THROW(BloomFilter::sized_for(10, 0.0), baps::InvariantError);
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter f = BloomFilter::sized_for(1000, 0.01);
  for (std::uint64_t k = 0; k < 1000; ++k) f.add(k * 7919);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(f.maybe_contains(k * 7919)) << k;
  }
}

TEST(BloomFilterTest, MeasuredFpRateNearTarget) {
  constexpr double kTarget = 0.01;
  BloomFilter f = BloomFilter::sized_for(10'000, kTarget);
  for (std::uint64_t k = 0; k < 10'000; ++k) f.add(k);
  std::uint64_t fp = 0;
  constexpr std::uint64_t kProbes = 100'000;
  for (std::uint64_t k = 0; k < kProbes; ++k) {
    if (f.maybe_contains(1'000'000 + k)) ++fp;
  }
  const double measured = static_cast<double>(fp) / kProbes;
  EXPECT_LT(measured, 3.0 * kTarget);
  EXPECT_NEAR(measured, f.expected_fp_rate(), 0.01);
}

TEST(BloomFilterTest, ClearEmptiesFilter) {
  BloomFilter f(1024, 4);
  f.add(42);
  ASSERT_TRUE(f.maybe_contains(42));
  f.clear();
  EXPECT_FALSE(f.maybe_contains(42));
  EXPECT_EQ(f.items_added(), 0u);
}

TEST(BloomFilterTest, ByteSizeMatchesBits) {
  EXPECT_EQ(BloomFilter(1024, 4).byte_size(), 128u);
  EXPECT_EQ(BloomFilter(1025, 4).byte_size(), 129u);
}

TEST(BloomFilterTest, SizingFollowsTheoryRoughly) {
  // m ≈ -n ln p / (ln 2)^2 → for n=1000, p=0.01: m ≈ 9585 bits.
  BloomFilter f = BloomFilter::sized_for(1000, 0.01);
  EXPECT_NEAR(static_cast<double>(f.bit_count()), 9585.0, 10.0);
  EXPECT_EQ(f.hash_count(), 7u);  // k ≈ m/n ln2 ≈ 6.6 → 7
}

TEST(CountingBloomTest, AddRemoveRestoresAbsence) {
  CountingBloomFilter f(4096, 4);
  baps::Xoshiro256 rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng());
  for (auto k : keys) f.add(k);
  for (auto k : keys) EXPECT_TRUE(f.maybe_contains(k));
  for (auto k : keys) f.remove(k);
  EXPECT_EQ(f.items(), 0u);
  // With all counters back to zero there can be no false positives at all.
  for (auto k : keys) EXPECT_FALSE(f.maybe_contains(k));
}

TEST(CountingBloomTest, InterleavedChurnKeepsResidentsVisible) {
  CountingBloomFilter f = CountingBloomFilter::sized_for(500, 0.02);
  // Sliding window: holds [i-500, i).
  for (std::uint64_t i = 0; i < 5000; ++i) {
    f.add(i);
    if (i >= 500) f.remove(i - 500);
  }
  for (std::uint64_t i = 4500; i < 5000; ++i) {
    EXPECT_TRUE(f.maybe_contains(i)) << i;  // no false negatives, ever
  }
  EXPECT_EQ(f.items(), 500u);
}

TEST(CountingBloomTest, RemoveFromEmptyThrows) {
  CountingBloomFilter f(64, 2);
  EXPECT_THROW(f.remove(1), baps::InvariantError);
}

TEST(CountingBloomTest, SaturationIsSticky) {
  CountingBloomFilter f(4, 1);  // tiny: collisions guaranteed
  for (int i = 0; i < 100; ++i) f.add(static_cast<std::uint64_t>(i));
  EXPECT_TRUE(f.overflowed());
}

TEST(CountingBloomTest, FourBitsPerCounter) {
  EXPECT_EQ(CountingBloomFilter(100, 3).byte_size(), 50u);
  EXPECT_EQ(CountingBloomFilter(101, 3).byte_size(), 51u);
}

}  // namespace
}  // namespace baps::index
