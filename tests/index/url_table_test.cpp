#include "index/url_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/record.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::index {
namespace {

std::vector<std::string> sample_urls() {
  return {
      "http://www.example.com/index.html",
      "http://www.example.com/img/logo.gif",
      "http://www.example.com/img/banner.gif",
      "http://www.example.com/docs/a.html",
      "http://www.example.com/docs/b.html",
      "http://news.example.org/today",
      "http://news.example.org/yesterday",
  };
}

TEST(UrlTableTest, StoresSortedDeduplicated) {
  auto urls = sample_urls();
  urls.push_back(urls.front());  // duplicate
  const UrlTable t(urls);
  EXPECT_EQ(t.size(), 7u);
  std::string prev;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string u = t.at(i);
    EXPECT_GT(u, prev);
    prev = u;
  }
}

TEST(UrlTableTest, AtRoundTripsEveryUrl) {
  const auto urls = sample_urls();
  const UrlTable t(urls);
  auto sorted = urls;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(t.at(i), sorted[i]) << i;
  }
  EXPECT_THROW(t.at(sorted.size()), baps::InvariantError);
}

TEST(UrlTableTest, FindLocatesMembersAndRejectsOthers) {
  const UrlTable t(sample_urls());
  for (const std::string& u : sample_urls()) {
    const auto idx = t.find(u);
    ASSERT_TRUE(idx.has_value()) << u;
    EXPECT_EQ(t.at(*idx), u);
  }
  EXPECT_FALSE(t.contains("http://www.example.com/"));
  EXPECT_FALSE(t.contains("http://www.example.com/zzz"));
  EXPECT_FALSE(t.contains("a"));      // before every head
  EXPECT_FALSE(t.contains("zzzz"));   // after everything
  EXPECT_FALSE(t.contains(""));
}

TEST(UrlTableTest, EmptyTable) {
  const UrlTable t({});
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.contains("anything"));
}

TEST(UrlTableTest, CompressesSharedPrefixes) {
  // 1000 synthetic URLs over ten hosts (synthetic_url assigns host by
  // doc % 997): plenty of shared prefixes for front coding to exploit.
  std::vector<std::string> urls;
  for (trace::DocId host = 0; host < 10; ++host) {
    for (trace::DocId i = 0; i < 100; ++i) {
      urls.push_back(trace::synthetic_url(host + 997 * i));
    }
  }
  const UrlTable t(urls);
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_LT(t.compressed_bytes(), t.raw_bytes());
  EXPECT_GT(t.compression_ratio(), 1.5);
}

TEST(UrlTableTest, BucketSizeSweepPreservesCorrectness) {
  std::vector<std::string> urls;
  for (trace::DocId d = 0; d < 257; ++d) {
    urls.push_back(trace::synthetic_url(d * 3));
  }
  auto sorted = urls;
  std::sort(sorted.begin(), sorted.end());
  for (const std::size_t bucket : {1u, 2u, 7u, 16u, 64u, 1000u}) {
    const UrlTable t(urls, bucket);
    ASSERT_EQ(t.size(), sorted.size());
    for (std::size_t i = 0; i < sorted.size(); i += 13) {
      EXPECT_EQ(t.at(i), sorted[i]) << "bucket " << bucket;
      EXPECT_EQ(t.find(sorted[i]), std::optional<std::size_t>(i))
          << "bucket " << bucket;
    }
    EXPECT_FALSE(t.contains("http://nonexistent.example/"));
  }
}

TEST(UrlTableTest, RandomizedFindAgainstLinearScan) {
  baps::Xoshiro256 rng(15);
  std::vector<std::string> urls;
  for (int i = 0; i < 500; ++i) {
    urls.push_back(trace::synthetic_url(rng.below(10'000)));
  }
  const UrlTable t(urls);
  auto sorted = urls;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (int probe = 0; probe < 500; ++probe) {
    const std::string u = trace::synthetic_url(rng.below(10'000));
    const bool expected = std::binary_search(sorted.begin(), sorted.end(), u);
    EXPECT_EQ(t.contains(u), expected) << u;
  }
}

TEST(UrlTableTest, ZeroBucketSizeThrows) {
  EXPECT_THROW(UrlTable({"a"}, 0), baps::InvariantError);
}

}  // namespace
}  // namespace baps::index
