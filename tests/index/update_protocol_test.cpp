#include "index/update_protocol.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace baps::index {
namespace {

TEST(ImmediateProtocolTest, AppliesEveryEventAtOnce) {
  BrowserIndex idx(2);
  ImmediateUpdateProtocol proto(idx);
  proto.on_cache_insert(0, 7);
  EXPECT_TRUE(idx.holds(0, 7));
  proto.on_cache_remove(0, 7);
  EXPECT_FALSE(idx.holds(0, 7));
  EXPECT_EQ(proto.messages_sent(), 2u);
  EXPECT_EQ(proto.updates_applied(), 2u);
}

TEST(PeriodicProtocolTest, RejectsBadThreshold) {
  BrowserIndex idx(1);
  EXPECT_THROW(PeriodicUpdateProtocol(idx, 1, 0.0), baps::InvariantError);
  EXPECT_THROW(PeriodicUpdateProtocol(idx, 1, 1.5), baps::InvariantError);
}

TEST(PeriodicProtocolTest, DelaysUntilThreshold) {
  BrowserIndex idx(1);
  // Threshold 0.5: with population ~10, a flush needs ~5 changed docs.
  PeriodicUpdateProtocol proto(idx, 1, 0.5);
  for (DocId d = 0; d < 10; ++d) proto.on_cache_insert(0, d);
  proto.flush_all();
  for (DocId d = 0; d < 10; ++d) EXPECT_TRUE(idx.holds(0, d));

  // Two fresh inserts: 2 < 0.5 * (12+1) → still pending.
  proto.on_cache_insert(0, 100);
  proto.on_cache_insert(0, 101);
  EXPECT_FALSE(idx.holds(0, 100));
  const auto flushes_before = proto.flush_count();
  // Enough further churn crosses the threshold (changed ≥ 0.5·(pop+1),
  // with pop growing alongside) and flushes automatically.
  for (DocId d = 102; d < 120; ++d) proto.on_cache_insert(0, d);
  EXPECT_GT(proto.flush_count(), flushes_before);
  EXPECT_TRUE(idx.holds(0, 100));
}

TEST(PeriodicProtocolTest, InsertThenRemoveCancelsOut) {
  BrowserIndex idx(1);
  PeriodicUpdateProtocol proto(idx, 1, 1.0);
  proto.on_cache_insert(0, 5);
  proto.on_cache_remove(0, 5);
  proto.flush_all();
  EXPECT_FALSE(idx.holds(0, 5));
  // The cancelled pair must not have been applied as two updates.
  EXPECT_EQ(proto.updates_applied(), 0u);
}

TEST(PeriodicProtocolTest, StaleViewUntilFlush) {
  BrowserIndex idx(1);
  PeriodicUpdateProtocol proto(idx, 1, 1.0);  // flush essentially only manually
  // Build a resident population so single events stay below the threshold.
  for (DocId d = 0; d < 10; ++d) proto.on_cache_insert(0, d);
  proto.flush_all();
  ASSERT_TRUE(idx.holds(0, 0));

  proto.on_cache_insert(0, 50);
  // The proxy does not yet know about doc 50: a lost remote hit.
  EXPECT_FALSE(idx.holds(0, 50));
  proto.on_cache_remove(0, 0);
  // The proxy still believes client 0 holds doc 0: a false forward.
  EXPECT_TRUE(idx.holds(0, 0));
  proto.flush_all();
  EXPECT_TRUE(idx.holds(0, 50));
  EXPECT_FALSE(idx.holds(0, 0));
}

TEST(PeriodicProtocolTest, BatchingSendsFarFewerMessages) {
  BrowserIndex idx_imm(1), idx_per(1);
  ImmediateUpdateProtocol imm(idx_imm);
  PeriodicUpdateProtocol per(idx_per, 1, 0.10);
  for (DocId d = 0; d < 1000; ++d) {
    imm.on_cache_insert(0, d);
    per.on_cache_insert(0, d);
  }
  imm.flush_all();
  per.flush_all();
  EXPECT_EQ(imm.messages_sent(), 1000u);
  EXPECT_LT(per.messages_sent(), 100u);
  // Both end with an identical index.
  for (DocId d = 0; d < 1000; ++d) {
    EXPECT_TRUE(idx_per.holds(0, d));
  }
}

TEST(PeriodicProtocolTest, RemoveWithoutInsertThrows) {
  BrowserIndex idx(1);
  PeriodicUpdateProtocol proto(idx, 1, 0.5);
  EXPECT_THROW(proto.on_cache_remove(0, 9), baps::InvariantError);
}

TEST(PeriodicProtocolTest, LowerThresholdTracksMoreClosely) {
  // Property: after identical event streams (no manual flush), a tighter
  // threshold leaves fewer discrepancies between truth and the proxy view.
  const auto discrepancies = [](double threshold) {
    BrowserIndex idx(1);
    PeriodicUpdateProtocol proto(idx, 1, threshold);
    std::uint64_t wrong = 0;
    // Sliding window of 50 docs: insert d, remove d-50.
    for (DocId d = 0; d < 500; ++d) {
      proto.on_cache_insert(0, d);
      if (d >= 50) proto.on_cache_remove(0, d - 50);
    }
    for (DocId d = 0; d < 500; ++d) {
      const bool truth = d >= 450;
      if (idx.holds(0, d) != truth) ++wrong;
    }
    return wrong;
  };
  EXPECT_LE(discrepancies(0.02), discrepancies(0.5));
}

}  // namespace
}  // namespace baps::index
