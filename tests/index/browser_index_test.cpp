#include "index/browser_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace baps::index {
namespace {

TEST(BrowserIndexTest, RejectsZeroClients) {
  EXPECT_THROW(BrowserIndex(0), baps::InvariantError);
}

TEST(BrowserIndexTest, AddThenHolds) {
  BrowserIndex idx(4);
  idx.add(1, 100);
  EXPECT_TRUE(idx.holds(1, 100));
  EXPECT_FALSE(idx.holds(2, 100));
  EXPECT_FALSE(idx.holds(1, 101));
  EXPECT_EQ(idx.entry_count(), 1u);
}

TEST(BrowserIndexTest, AddIsIdempotent) {
  BrowserIndex idx(4);
  idx.add(1, 100);
  idx.add(1, 100);
  EXPECT_EQ(idx.entry_count(), 1u);
  EXPECT_EQ(idx.holders(100).size(), 1u);
}

TEST(BrowserIndexTest, RemoveIsIdempotent) {
  BrowserIndex idx(4);
  idx.add(1, 100);
  idx.remove(1, 100);
  idx.remove(1, 100);
  EXPECT_FALSE(idx.holds(1, 100));
  EXPECT_EQ(idx.entry_count(), 0u);
  EXPECT_TRUE(idx.holders(100).empty());
}

TEST(BrowserIndexTest, FindHolderExcludesRequester) {
  BrowserIndex idx(4);
  idx.add(2, 100);
  EXPECT_EQ(idx.find_holder(100, 1), std::optional<ClientId>(2));
  // The only holder is the requester itself → no remote hit.
  EXPECT_EQ(idx.find_holder(100, 2), std::nullopt);
}

TEST(BrowserIndexTest, FindHolderOnUnknownDocIsEmpty) {
  BrowserIndex idx(4);
  EXPECT_EQ(idx.find_holder(999, 0), std::nullopt);
}

TEST(BrowserIndexTest, RoundRobinSpreadsAcrossHolders) {
  BrowserIndex idx(5);
  idx.add(1, 100);
  idx.add(2, 100);
  idx.add(3, 100);
  std::set<ClientId> seen;
  for (int i = 0; i < 12; ++i) {
    const auto h = idx.find_holder(100, 0);
    ASSERT_TRUE(h.has_value());
    EXPECT_NE(*h, 0u);
    seen.insert(*h);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three holders get picked
}

// The round-robin cursor is per-document: interleaving lookups of other
// docs must not perturb a doc's own holder rotation. This is what makes
// holder choice a pure function of that doc's lookup history, which the
// sharded replay engine (sim/sharded_replay) relies on for doc
// decomposability.
TEST(BrowserIndexTest, RoundRobinIsPerDocument) {
  const auto sequence = [](bool interleave) {
    BrowserIndex idx(8, /*doc_universe=*/0);  // sparse path
    for (ClientId c = 1; c <= 3; ++c) idx.add(c, 100);
    for (ClientId c = 4; c <= 6; ++c) idx.add(c, 200);
    std::vector<ClientId> picks;
    for (int i = 0; i < 9; ++i) {
      if (interleave) idx.find_holder(200, 0);
      picks.push_back(*idx.find_holder(100, 0));
    }
    return picks;
  };
  EXPECT_EQ(sequence(false), sequence(true));

  // Same property on the dense (in-universe) path.
  const auto dense_sequence = [](bool interleave) {
    BrowserIndex idx(8, /*doc_universe=*/512);
    for (ClientId c = 1; c <= 3; ++c) idx.add(c, 100);
    for (ClientId c = 4; c <= 6; ++c) idx.add(c, 200);
    std::vector<ClientId> picks;
    for (int i = 0; i < 9; ++i) {
      if (interleave) idx.find_holder(200, 0);
      picks.push_back(*idx.find_holder(100, 0));
    }
    return picks;
  };
  EXPECT_EQ(dense_sequence(false), dense_sequence(true));
}

// When a doc's holder list empties its cursor resets, so a re-populated
// doc starts its rotation from scratch — the index behaves as if the doc
// entry were brand new (same on dense and sparse paths).
TEST(BrowserIndexTest, CursorResetsWhenDocEmpties) {
  BrowserIndex idx(8, /*doc_universe=*/512);
  idx.add(1, 100);
  idx.add(2, 100);
  const ClientId first = *idx.find_holder(100, 0);
  idx.find_holder(100, 0);  // advance the cursor
  idx.remove(1, 100);
  idx.remove(2, 100);
  idx.add(1, 100);
  idx.add(2, 100);
  EXPECT_EQ(*idx.find_holder(100, 0), first);
}

TEST(BrowserIndexTest, MultiDocMultiClientBookkeeping) {
  BrowserIndex idx(3);
  idx.add(0, 1);
  idx.add(0, 2);
  idx.add(1, 1);
  idx.add(2, 3);
  EXPECT_EQ(idx.entry_count(), 4u);
  EXPECT_EQ(idx.client_entry_count(0), 2u);
  EXPECT_EQ(idx.client_entry_count(1), 1u);
  auto h = idx.holders(1);
  std::sort(h.begin(), h.end());
  EXPECT_EQ(h, (std::vector<ClientId>{0, 1}));
  idx.remove(0, 1);
  EXPECT_EQ(idx.holders(1), std::vector<ClientId>{1});
}

TEST(BrowserIndexTest, OutOfRangeClientThrows) {
  BrowserIndex idx(2);
  EXPECT_THROW(idx.add(2, 1), baps::InvariantError);
  EXPECT_THROW(idx.remove(5, 1), baps::InvariantError);
  EXPECT_THROW(idx.holds(2, 1), baps::InvariantError);
  EXPECT_THROW(idx.client_entry_count(2), baps::InvariantError);
}

}  // namespace
}  // namespace baps::index
