#include "index/summary_index.hpp"

#include <gtest/gtest.h>

#include "index/footprint.hpp"
#include "util/assert.hpp"

namespace baps::index {
namespace {

TEST(SummaryIndexTest, FindsRealHolders) {
  SummaryIndex idx(4, 1000, 0.01);
  idx.add(2, 42);
  const auto c = idx.find_candidate(42, 0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 2u);
  EXPECT_TRUE(idx.maybe_holds(2, 42));
}

TEST(SummaryIndexTest, ExcludesRequester) {
  SummaryIndex idx(2, 1000, 0.01);
  idx.add(1, 42);
  EXPECT_EQ(idx.find_candidate(42, 1), std::nullopt);
}

TEST(SummaryIndexTest, RemoveClearsMembership) {
  SummaryIndex idx(2, 1000, 0.01);
  idx.add(0, 7);
  idx.remove(0, 7);
  EXPECT_FALSE(idx.maybe_holds(0, 7));
}

TEST(SummaryIndexTest, CandidatesListAllHolders) {
  SummaryIndex idx(5, 1000, 0.001);
  idx.add(1, 9);
  idx.add(3, 9);
  const auto c = idx.candidates(9, 0);
  EXPECT_EQ(c, (std::vector<ClientId>{1, 3}));
}

TEST(SummaryIndexTest, FalseForwardRateTracksTarget) {
  constexpr std::uint32_t kClients = 10;
  constexpr std::uint64_t kDocsPerClient = 2000;
  SummaryIndex idx(kClients, kDocsPerClient, 0.01);
  // Each client holds a disjoint range.
  for (ClientId c = 0; c < kClients; ++c) {
    for (std::uint64_t d = 0; d < kDocsPerClient; ++d) {
      idx.add(c, c * 1'000'000 + d);
    }
  }
  // Probe documents nobody holds; measure how often a candidate appears.
  std::uint64_t false_forwards = 0;
  constexpr std::uint64_t kProbes = 20'000;
  for (std::uint64_t p = 0; p < kProbes; ++p) {
    if (idx.find_candidate(99'000'000 + p, 0).has_value()) ++false_forwards;
  }
  // Probability any of 9 foreign filters fires ≈ 1-(1-p)^9 ≈ 9%.
  const double rate = static_cast<double>(false_forwards) / kProbes;
  EXPECT_LT(rate, 0.25);
  EXPECT_GT(rate, 0.005);
}

TEST(SummaryIndexTest, MemoryFarBelowExactIndex) {
  constexpr std::uint32_t kClients = 100;
  constexpr std::uint64_t kDocs = 12'800;  // 100MB browser / 8KB docs
  SummaryIndex idx(kClients, kDocs, 0.01);
  FootprintParams fp;
  fp.num_clients = kClients;
  fp.browser_cache_bytes = 100ULL << 20;
  fp.avg_doc_bytes = 8ULL << 10;
  const FootprintEstimate est = estimate_footprint(fp);
  EXPECT_LT(idx.byte_size(), est.exact_index_bytes);
}

TEST(FootprintTest, PaperExampleArithmetic) {
  // §5: ~100 clients, ~1K-10K pages per browser, 16-byte MD5 signatures →
  // a whole-index footprint in the tens of MB, and ~2 MB with compression.
  FootprintParams p;  // defaults: 100 clients, 8MB caches, 8KB docs
  const FootprintEstimate e = estimate_footprint(p);
  EXPECT_EQ(e.docs_per_browser, 1024u);
  EXPECT_EQ(e.total_entries, 102'400u);
  EXPECT_EQ(e.exact_index_bytes, 102'400u * 24);
  EXPECT_LT(e.bloom_index_bytes, e.exact_index_bytes / 5);
}

TEST(FootprintTest, RejectsZeroDocSize) {
  FootprintParams p;
  p.avg_doc_bytes = 0;
  EXPECT_THROW(estimate_footprint(p), baps::InvariantError);
}

}  // namespace
}  // namespace baps::index
