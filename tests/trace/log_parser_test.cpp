#include "trace/log_parser.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/generator.hpp"

namespace baps::trace {
namespace {

TEST(SquidParserTest, ParsesNativeFormat) {
  std::istringstream in(
      "947891000.123 250 badc0ffee TCP_MISS/200 4312 GET "
      "http://example.com/a.html - DIRECT/10.0.0.1 text/html\n"
      "947891001.456 10 badc0ffee TCP_HIT/200 900 GET "
      "http://example.com/b.gif - NONE/- image/gif\n"
      "947891002.000 90 feedface TCP_MISS/200 4312 GET "
      "http://example.com/a.html - DIRECT/10.0.0.1 text/html\n");
  const ParseResult r = parse_squid_log(in, "squid");
  EXPECT_EQ(r.lines_parsed, 3u);
  EXPECT_EQ(r.lines_skipped, 0u);
  ASSERT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace.num_clients(), 2u);
  EXPECT_EQ(r.trace.num_docs(), 2u);
  // Same URL from different clients interns to the same doc id.
  EXPECT_EQ(r.trace.requests()[0].doc, r.trace.requests()[2].doc);
  EXPECT_NE(r.trace.requests()[0].client, r.trace.requests()[2].client);
  // Timestamps are rebased to trace start.
  EXPECT_DOUBLE_EQ(r.trace.requests()[0].timestamp, 0.0);
  EXPECT_NEAR(r.trace.requests()[1].timestamp, 1.333, 1e-3);
  EXPECT_EQ(r.trace.requests()[0].size, 4312u);
  EXPECT_EQ(r.trace.url_of(r.trace.requests()[0].doc),
            "http://example.com/a.html");
}

TEST(SquidParserTest, SkipsNonGetAndBodylessEntries) {
  std::istringstream in(
      "1.0 1 c TCP_MISS/200 100 GET http://e/a - D/h text/html\n"
      "2.0 1 c TCP_MISS/200 100 POST http://e/b - D/h text/html\n"
      "3.0 1 c TCP_MISS/304 0 GET http://e/c - D/h text/html\n"
      "garbage line\n");
  const ParseResult r = parse_squid_log(in, "s");
  EXPECT_EQ(r.lines_parsed, 1u);
  EXPECT_EQ(r.lines_skipped, 3u);
  EXPECT_EQ(r.trace.size(), 1u);
}

TEST(SquidParserTest, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n1.0 1 c TCP_MISS/200 5 GET u - D/h t\n");
  const ParseResult r = parse_squid_log(in, "s");
  EXPECT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.lines_skipped, 0u);
}

TEST(PlainParserTest, ParsesAndRebasesTimestamps) {
  std::istringstream in(
      "# comment\n"
      "100.5 alice http://a/1 1000\n"
      "101.0 bob http://a/2 2000\n"
      "102.5 alice http://a/1 1000\n");
  const ParseResult r = parse_plain_log(in, "plain");
  ASSERT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace.num_clients(), 2u);
  EXPECT_EQ(r.trace.num_docs(), 2u);
  EXPECT_DOUBLE_EQ(r.trace.requests()[0].timestamp, 0.0);
  EXPECT_DOUBLE_EQ(r.trace.requests()[2].timestamp, 2.0);
}

TEST(PlainParserTest, SkipsMalformedAndNonPositiveSizes) {
  std::istringstream in(
      "1.0 c http://a 100\n"
      "2.0 c http://b\n"
      "3.0 c http://d 0\n");
  const ParseResult r = parse_plain_log(in, "p");
  EXPECT_EQ(r.lines_parsed, 1u);
  EXPECT_EQ(r.lines_skipped, 2u);
}

TEST(SquidParserTest, SkipsTruncatedLines) {
  // A line cut off before the URL field (the 7th) can never be a record:
  // each truncation is skipped with the counter bumped, never half-parsed
  // and never a crash.
  const std::vector<std::string> fields = {
      "1.0", "250", "cafe", "TCP_MISS/200", "4312", "GET", "http://e/a"};
  for (std::size_t k = 1; k < fields.size(); ++k) {
    std::string line;
    for (std::size_t i = 0; i < k; ++i) {
      if (i > 0) line += ' ';
      line += fields[i];
    }
    std::istringstream in(line + "\n");
    const ParseResult r = parse_squid_log(in, "trunc");
    EXPECT_EQ(r.lines_parsed, 0u) << "first " << k << " fields";
    EXPECT_EQ(r.lines_skipped, 1u) << "first " << k << " fields";
  }
}

TEST(SquidParserTest, SkipsNonNumericFields) {
  std::istringstream in(
      "abc 250 c TCP_MISS/200 100 GET http://e/a - D/h t\n"  // time
      "1.0 xyz c TCP_MISS/200 100 GET http://e/a - D/h t\n"  // elapsed
      "1.0 250 c TCP_MISS/200 many GET http://e/a - D/h t\n"  // bytes
      "nan 250 c TCP_MISS/200 100 GET http://e/a - D/h t\n"  // non-finite
      "inf 250 c TCP_MISS/200 100 GET http://e/a - D/h t\n"
      "2.0 250 c TCP_MISS/200 100 GET http://e/b - D/h t\n");  // valid
  const ParseResult r = parse_squid_log(in, "nonnum");
  EXPECT_EQ(r.lines_parsed, 1u);
  EXPECT_EQ(r.lines_skipped, 5u);
  EXPECT_EQ(r.trace.size(), 1u);
}

TEST(SquidParserTest, SkipsLinesWithEmbeddedNuls) {
  std::string log =
      "1.0 250 cafe TCP_MISS/200 100 GET http://e/a - D/h t\n"
      "2.0 250 cafe TCP_MISS/200 100 GET http://e/Xb - D/h t\n";
  const std::size_t nul = log.find('X');
  ASSERT_NE(nul, std::string::npos);
  log[nul] = '\0';
  std::istringstream in(log);
  const ParseResult r = parse_squid_log(in, "nul");
  EXPECT_EQ(r.lines_parsed, 1u);
  EXPECT_EQ(r.lines_skipped, 1u);
  // The NUL-bearing URL never reached the intern tables.
  EXPECT_EQ(r.trace.num_docs(), 1u);
  EXPECT_EQ(r.trace.url_of(r.trace.requests()[0].doc), "http://e/a");
}

TEST(PlainParserTest, SkipsTruncatedLines) {
  const std::vector<std::string> fields = {"100.5", "alice", "http://a/1",
                                           "1000"};
  for (std::size_t k = 1; k < fields.size(); ++k) {
    std::string line;
    for (std::size_t i = 0; i < k; ++i) {
      if (i > 0) line += ' ';
      line += fields[i];
    }
    std::istringstream in(line + "\n");
    const ParseResult r = parse_plain_log(in, "trunc");
    EXPECT_EQ(r.lines_parsed, 0u) << "first " << k << " fields";
    EXPECT_EQ(r.lines_skipped, 1u) << "first " << k << " fields";
  }
}

TEST(PlainParserTest, SkipsNonNumericAndNonFiniteFields) {
  std::istringstream in(
      "soon alice http://a/1 1000\n"
      "1.0 alice http://a/1 lots\n"
      "nan alice http://a/1 1000\n"
      "2.0 bob http://a/2 500\n");
  const ParseResult r = parse_plain_log(in, "nonnum");
  EXPECT_EQ(r.lines_parsed, 1u);
  EXPECT_EQ(r.lines_skipped, 3u);
}

TEST(PlainParserTest, SkipsLinesWithEmbeddedNuls) {
  std::string log =
      "1.0 alice http://a/1 1000\n"
      "2.0 bXob http://a/2 500\n";
  log[log.find('X')] = '\0';
  std::istringstream in(log);
  const ParseResult r = parse_plain_log(in, "nul");
  EXPECT_EQ(r.lines_parsed, 1u);
  EXPECT_EQ(r.lines_skipped, 1u);
  EXPECT_EQ(r.trace.num_clients(), 1u);
}

TEST(PlainFormatTest, WriteThenParseRoundTrips) {
  GeneratorParams p;
  p.num_requests = 500;
  p.num_clients = 5;
  p.shared_docs = 100;
  p.private_docs_per_client = 20;
  const Trace t = generate_trace("rt", p, 33);

  std::stringstream buf;
  write_plain_log(t, buf);
  const ParseResult r = parse_plain_log(buf, "rt2");
  ASSERT_EQ(r.trace.size(), t.size());
  EXPECT_EQ(r.trace.num_clients(), t.num_clients());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(r.trace.requests()[i].size, t.requests()[i].size);
    // URL identity must survive: equal doc ids in the original must map to
    // equal doc ids in the round-tripped trace.
    EXPECT_EQ(r.trace.url_of(r.trace.requests()[i].doc),
              t.url_of(t.requests()[i].doc));
  }
}

}  // namespace
}  // namespace baps::trace
