#include "trace/binary_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"
#include "trace/log_parser.hpp"
#include "util/assert.hpp"

namespace baps::trace {
namespace {

Trace small_synthetic() {
  GeneratorParams p;
  p.num_requests = 2'000;
  p.num_clients = 8;
  p.shared_docs = 500;
  p.private_docs_per_client = 50;
  return generate_trace("bin", p, 55);
}

TEST(BinaryIoTest, SyntheticTraceRoundTripsBitExact) {
  const Trace t = small_synthetic();
  std::stringstream buf;
  write_binary(t, buf);
  const Trace back = read_binary(buf);
  EXPECT_EQ(back.name(), t.name());
  EXPECT_EQ(back.num_clients(), t.num_clients());
  EXPECT_EQ(back.num_docs(), t.num_docs());
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Request& a = t.requests()[i];
    const Request& b = back.requests()[i];
    EXPECT_DOUBLE_EQ(a.timestamp, b.timestamp);  // bit-exact, unlike text
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.doc, b.doc);
    EXPECT_EQ(a.size, b.size);
  }
  // Synthetic traces carry no URL table; URLs regenerate identically.
  EXPECT_EQ(back.url_of(3), t.url_of(3));
}

TEST(BinaryIoTest, ParsedTraceKeepsItsUrlTable) {
  std::istringstream log(
      "1.5 alice http://real.example/a 100\n"
      "2.5 bob http://real.example/b 200\n");
  const Trace t = parse_plain_log(log, "parsed").trace;
  std::stringstream buf;
  write_binary(t, buf);
  const Trace back = read_binary(buf);
  EXPECT_EQ(back.url_of(0), "http://real.example/a");
  EXPECT_EQ(back.url_of(1), "http://real.example/b");
}

TEST(BinaryIoTest, EmptyTraceRoundTrips) {
  std::stringstream buf;
  write_binary(Trace{}, buf);
  const Trace back = read_binary(buf);
  EXPECT_TRUE(back.empty());
}

TEST(BinaryIoTest, RejectsBadMagic) {
  std::istringstream junk("definitely not a trace file");
  EXPECT_THROW(read_binary(junk), baps::InvariantError);
}

TEST(BinaryIoTest, RejectsTruncation) {
  const Trace t = small_synthetic();
  std::stringstream buf;
  write_binary(t, buf);
  const std::string full = buf.str();
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{20}, full.size() / 2, full.size() - 3}) {
    std::istringstream cut(full.substr(0, keep));
    EXPECT_THROW(read_binary(cut), baps::InvariantError) << keep;
  }
}

TEST(BinaryIoTest, BinaryIsSmallerThanText) {
  const Trace t = small_synthetic();
  std::stringstream bin, text;
  write_binary(t, bin);
  write_plain_log(t, text);
  EXPECT_LT(bin.str().size(), text.str().size());
}

}  // namespace
}  // namespace baps::trace
