#include "trace/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::trace {
namespace {

TEST(ZipfTest, RejectsEmptyUniverse) {
  EXPECT_THROW(ZipfSampler(0, 1.0), baps::InvariantError);
}

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfSampler z(1000, 0.8);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < z.n(); ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  const ZipfSampler z(100, 0.7);
  for (std::uint64_t r = 1; r < z.n(); ++r) {
    EXPECT_LE(z.pmf(r), z.pmf(r - 1)) << "rank " << r;
  }
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  const ZipfSampler z(10, 0.0);
  for (std::uint64_t r = 0; r < 10; ++r) EXPECT_NEAR(z.pmf(r), 0.1, 1e-12);
}

TEST(ZipfTest, PmfRatioMatchesPowerLaw) {
  const double alpha = 0.75;
  const ZipfSampler z(1000, alpha);
  // pmf(r) / pmf(2r+1) should equal ((2r+2)/(r+1))^alpha = 2^alpha.
  EXPECT_NEAR(z.pmf(0) / z.pmf(1), std::pow(2.0, alpha), 1e-9);
  EXPECT_NEAR(z.pmf(4) / z.pmf(9), std::pow(2.0, alpha), 1e-9);
}

TEST(ZipfTest, SamplesStayInRange) {
  const ZipfSampler z(50, 0.9);
  baps::Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 50u);
}

TEST(ZipfTest, EmpiricalFrequenciesMatchPmf) {
  const ZipfSampler z(20, 0.8);
  baps::Xoshiro256 rng(2);
  constexpr int kN = 200000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::uint64_t r = 0; r < 20; ++r) {
    const double expected = z.pmf(r) * kN;
    EXPECT_NEAR(counts[r], expected, 5.0 * std::sqrt(expected) + 5.0)
        << "rank " << r;
  }
}

class ZipfAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaSweep, HeadMassGrowsWithAlpha) {
  const double alpha = GetParam();
  const ZipfSampler z(10000, alpha);
  // The top-1% ranks must hold at least their uniform share, growing in
  // alpha; sanity property across the sweep.
  double head = 0.0;
  for (std::uint64_t r = 0; r < 100; ++r) head += z.pmf(r);
  EXPECT_GE(head, 0.01 - 1e-12);
  if (alpha >= 0.8) {
    EXPECT_GT(head, 0.2);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweep,
                         ::testing::Values(0.0, 0.4, 0.6, 0.8, 1.0, 1.2));

}  // namespace
}  // namespace baps::trace
