#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace baps::trace {
namespace {

Trace tiny_trace() {
  // Hand-built trace exercising all the Table-1 accounting rules:
  //   t=0: c0 requests doc0 (100 B)    — cold miss
  //   t=1: c1 requests doc0 (100 B)    — infinite-cache hit
  //   t=2: c0 requests doc1 (200 B)    — cold miss
  //   t=3: c0 requests doc0 (150 B)    — size changed → miss, refresh
  //   t=4: c1 requests doc0 (150 B)    — hit at the new size
  std::vector<Request> reqs = {
      {0.0, 0, 0, 100}, {1.0, 1, 0, 100}, {2.0, 0, 1, 200},
      {3.0, 0, 0, 150}, {4.0, 1, 0, 150},
  };
  return Trace("tiny", 2, 2, std::move(reqs));
}

TEST(TraceStatsTest, CountsRequestsAndBytes) {
  const TraceStats s = compute_stats(tiny_trace());
  EXPECT_EQ(s.num_requests, 5u);
  EXPECT_EQ(s.total_bytes, 100u + 100 + 200 + 150 + 150);
  EXPECT_EQ(s.num_clients, 2u);
  EXPECT_EQ(s.unique_docs, 2u);
  EXPECT_DOUBLE_EQ(s.duration_seconds, 4.0);
}

TEST(TraceStatsTest, InfiniteCacheUsesLastSize) {
  const TraceStats s = compute_stats(tiny_trace());
  EXPECT_EQ(s.infinite_cache_bytes, 150u + 200u);
}

TEST(TraceStatsTest, MaxHitRatioCountsSizeChangeAsMiss) {
  const TraceStats s = compute_stats(tiny_trace());
  // Hits: t=1 (same size) and t=4 (same size after refresh). t=3 is a miss
  // because the size changed.
  EXPECT_DOUBLE_EQ(s.max_hit_ratio, 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.max_byte_hit_ratio, (100.0 + 150.0) / 700.0);
}

TEST(TraceStatsTest, PerClientInfiniteBrowserBytes) {
  const TraceStats s = compute_stats(tiny_trace());
  ASSERT_EQ(s.infinite_browser_bytes.size(), 2u);
  // c0 requested doc0 (final size 150) and doc1 (200).
  EXPECT_EQ(s.infinite_browser_bytes[0], 350u);
  // c1 requested doc0 only; its copy refreshed to 150.
  EXPECT_EQ(s.infinite_browser_bytes[1], 150u);
  EXPECT_EQ(s.avg_infinite_browser_bytes(), (350u + 150u) / 2);
}

TEST(TraceStatsTest, EmptyTraceIsAllZero) {
  const TraceStats s = compute_stats(Trace{});
  EXPECT_EQ(s.num_requests, 0u);
  EXPECT_DOUBLE_EQ(s.max_hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(s.max_byte_hit_ratio, 0.0);
}

TEST(TraceStatsTest, MaxHitRatioBoundsHoldOnSyntheticTrace) {
  GeneratorParams p;
  p.num_requests = 30'000;
  p.num_clients = 20;
  p.shared_docs = 15'000;
  p.private_docs_per_client = 800;
  const Trace t = generate_trace("g", p, 21);
  const TraceStats s = compute_stats(t);
  EXPECT_GT(s.max_hit_ratio, 0.0);
  EXPECT_LT(s.max_hit_ratio, 1.0);
  EXPECT_GT(s.max_byte_hit_ratio, 0.0);
  EXPECT_LT(s.max_byte_hit_ratio, 1.0);
  // Hit ratio exceeds byte hit ratio for web-like workloads (popular docs
  // skew small relative to the byte-weighted mix).
  EXPECT_GT(s.max_hit_ratio, s.max_byte_hit_ratio);
  // Infinite cache cannot exceed total traffic.
  EXPECT_LT(s.infinite_cache_bytes, s.total_bytes + 1);
  // Browser infinite sizes decompose the universe per client: their sum is
  // at least the global infinite size (shared docs counted once globally,
  // once per sharing client).
  std::uint64_t sum = 0;
  for (auto b : s.infinite_browser_bytes) sum += b;
  EXPECT_GE(sum, s.infinite_cache_bytes);
}

}  // namespace
}  // namespace baps::trace
