#include "trace/presets.hpp"

#include <gtest/gtest.h>

#include <cctype>

#include "trace/stats.hpp"
#include "util/assert.hpp"

namespace baps::trace {
namespace {

// Preset generation at full size is exercised by bench_table1; tests use the
// scaled loader to stay fast while checking the same invariants.
class PresetTest : public ::testing::TestWithParam<Preset> {};

TEST_P(PresetTest, ScaledPresetHasSaneTableOneShape) {
  const Trace t = load_preset_scaled(GetParam(), 0.08);
  const TraceStats s = compute_stats(t);
  EXPECT_GT(s.num_requests, 1000u);
  EXPECT_GT(s.num_clients, 0u);
  EXPECT_GT(s.total_bytes, 0u);
  EXPECT_GT(s.infinite_cache_bytes, 0u);
  EXPECT_LT(s.infinite_cache_bytes, s.total_bytes);
  // Every web trace in Table 1 shows nontrivial but bounded re-reference.
  EXPECT_GT(s.max_hit_ratio, 0.15);
  EXPECT_LT(s.max_hit_ratio, 0.95);
  EXPECT_GT(s.max_byte_hit_ratio, 0.05);
  EXPECT_LT(s.max_byte_hit_ratio, s.max_hit_ratio);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest,
                         ::testing::ValuesIn(all_presets()),
                         [](const auto& param_info) {
                           std::string n = preset_name(param_info.param);
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(PresetCatalogTest, FiveDistinctPresets) {
  const auto all = all_presets();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(preset_name(Preset::kCanet2), "CA*netII");
}

TEST(PresetCatalogTest, ClientCountsMatchPaper) {
  // CA*netII is the 3-client limit case (Fig. 7); BU-95 used 37 machines.
  EXPECT_EQ(preset_params(Preset::kCanet2).num_clients, 3u);
  EXPECT_EQ(preset_params(Preset::kBu95).num_clients, 37u);
  EXPECT_GT(preset_params(Preset::kNlanrUc).num_clients, 100u);
}

TEST(PresetCatalogTest, Bu95HasStrongerLocalityThanBu98) {
  // Barford et al.: hit ratios dropped from 1995 to 1998. The presets encode
  // that via sharing and temporal-locality knobs; verify it survives into
  // measured max hit ratios.
  const TraceStats s95 = compute_stats(load_preset_scaled(Preset::kBu95, 0.15));
  const TraceStats s98 = compute_stats(load_preset_scaled(Preset::kBu98, 0.15));
  EXPECT_GT(s95.max_hit_ratio, s98.max_hit_ratio);
}

TEST(PresetCatalogTest, ScaledLoaderValidatesFactor) {
  EXPECT_THROW(load_preset_scaled(Preset::kBu95, 0.0), baps::InvariantError);
  EXPECT_THROW(load_preset_scaled(Preset::kBu95, 2.0), baps::InvariantError);
}

}  // namespace
}  // namespace baps::trace
