#include "trace/size_model.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace baps::trace {
namespace {

TEST(SizeModelTest, DeterministicPerDocAndSeed) {
  const SizeModel m(SizeModelParams{}, 42);
  EXPECT_EQ(m.size_of(7), m.size_of(7));
  const SizeModel m2(SizeModelParams{}, 42);
  EXPECT_EQ(m.size_of(7), m2.size_of(7));
}

TEST(SizeModelTest, DifferentSeedsDecorrelate) {
  const SizeModel a(SizeModelParams{}, 1);
  const SizeModel b(SizeModelParams{}, 2);
  int same = 0;
  for (DocId d = 0; d < 200; ++d) {
    if (a.size_of(d) == b.size_of(d)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(SizeModelTest, VersionChangesSize) {
  const SizeModel m(SizeModelParams{}, 9);
  int changed = 0;
  for (DocId d = 0; d < 100; ++d) {
    if (m.size_of(d, 0) != m.size_of(d, 1)) ++changed;
  }
  // Sizes are continuous draws; essentially every mutation changes the size.
  EXPECT_GT(changed, 95);
}

TEST(SizeModelTest, RespectsBounds) {
  SizeModelParams p;
  p.min_size = 100;
  p.max_size = 1 << 20;
  const SizeModel m(p, 3);
  for (DocId d = 0; d < 20000; ++d) {
    const std::uint64_t s = m.size_of(d);
    EXPECT_GE(s, p.min_size);
    EXPECT_LE(s, p.max_size);
  }
}

TEST(SizeModelTest, MedianNearLognormalMedian) {
  const SizeModelParams p;  // mu = 8.5 → median ≈ e^8.5 ≈ 4915 bytes
  const SizeModel m(p, 5);
  std::vector<std::uint64_t> sizes;
  for (DocId d = 0; d < 20000; ++d) sizes.push_back(m.size_of(d));
  std::nth_element(sizes.begin(), sizes.begin() + 10000, sizes.end());
  const double median = static_cast<double>(sizes[10000]);
  EXPECT_GT(median, 3500.0);
  EXPECT_LT(median, 7000.0);
}

TEST(SizeModelTest, HeavyTailExists) {
  const SizeModel m(SizeModelParams{}, 6);
  baps::RunningStats s;
  for (DocId d = 0; d < 50000; ++d) {
    s.add(static_cast<double>(m.size_of(d)));
  }
  // Mean far above median and max far above mean are the heavy-tail
  // signatures the byte-hit-ratio experiments depend on.
  EXPECT_GT(s.mean(), 8000.0);
  EXPECT_GT(s.max(), 50.0 * s.mean());
}

}  // namespace
}  // namespace baps::trace
