#include "trace/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.hpp"
#include "util/assert.hpp"

namespace baps::trace {
namespace {

Trace make(std::uint32_t clients, std::vector<Request> reqs) {
  DocId max_doc = 0;
  for (auto& r : reqs) max_doc = std::max(max_doc, r.doc);
  return Trace("t", clients, max_doc + 1, std::move(reqs));
}

TEST(PopularityTest, CountsAndOrder) {
  const Trace t = make(1, {{0, 0, 5, 1},
                           {1, 0, 5, 1},
                           {2, 0, 5, 1},
                           {3, 0, 7, 1},
                           {4, 0, 9, 1},
                           {5, 0, 9, 1}});
  const PopularityCurve p = popularity_of(t);
  EXPECT_EQ(p.total_requests, 6u);
  EXPECT_EQ(p.counts, (std::vector<std::uint64_t>{3, 2, 1}));
}

TEST(PopularityTest, HeadMassOfUniformIsProportional) {
  std::vector<Request> reqs;
  for (DocId d = 0; d < 100; ++d) {
    reqs.push_back({static_cast<double>(d), 0, d, 1});
  }
  const PopularityCurve p = popularity_of(make(1, std::move(reqs)));
  EXPECT_NEAR(p.head_mass(0.25), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(p.head_mass(1.0), 1.0);
  EXPECT_THROW(p.head_mass(1.5), baps::InvariantError);
}

TEST(PopularityTest, FittedAlphaRecoversExactPowerLaw) {
  // counts[r] = round(C * (r+1)^-0.8): the regression must recover ~0.8.
  std::vector<Request> reqs;
  double ts = 0.0;
  for (DocId d = 0; d < 200; ++d) {
    const auto n = static_cast<std::uint64_t>(std::max(
        1.0,
        std::round(10000.0 *
                   std::pow(static_cast<double>(d) + 1.0, -0.8))));
    for (std::uint64_t i = 0; i < n; ++i) {
      reqs.push_back({ts += 1.0, 0, d, 1});
    }
  }
  const PopularityCurve p = popularity_of(make(1, std::move(reqs)));
  EXPECT_NEAR(p.fitted_zipf_alpha(100), 0.8, 0.05);
}

TEST(PopularityTest, GeneratorTraceFitsItsConfiguredAlpha) {
  GeneratorParams gp;
  gp.num_requests = 80'000;
  gp.num_clients = 20;
  gp.shared_docs = 20'000;
  gp.private_docs_per_client = 0;   // isolate the shared popularity law
  gp.temporal_prob = 0.0;           // no stack re-references
  gp.shared_alpha = 0.75;
  const PopularityCurve p = popularity_of(generate_trace("z", gp, 3));
  EXPECT_NEAR(p.fitted_zipf_alpha(300), 0.75, 0.12);
}

TEST(StackDistanceTest, HandComputedDistances) {
  // Access pattern: A B C A  →  A's re-reference has distance 2 (B, C).
  const Trace t = make(1, {{0, 0, 0, 1}, {1, 0, 1, 1}, {2, 0, 2, 1},
                           {3, 0, 0, 1}});
  const StackDistanceHistogram h = stack_distances_of(t);
  EXPECT_EQ(h.cold_misses, 3u);
  EXPECT_EQ(h.rereferences, 1u);
  // Distance 2 → distance+1 = 3 → bucket 1 ([2,4)).
  ASSERT_GE(h.buckets.size(), 2u);
  EXPECT_EQ(h.buckets[1], 1u);
}

TEST(StackDistanceTest, ImmediateRereferenceIsDistanceZero) {
  const Trace t = make(1, {{0, 0, 0, 1}, {1, 0, 0, 1}, {2, 0, 0, 1}});
  const StackDistanceHistogram h = stack_distances_of(t);
  EXPECT_EQ(h.cold_misses, 1u);
  EXPECT_EQ(h.rereferences, 2u);
  ASSERT_GE(h.buckets.size(), 1u);
  EXPECT_EQ(h.buckets[0], 2u);  // distance 0 → bucket 0
}

TEST(StackDistanceTest, TotalsBalance) {
  GeneratorParams gp;
  gp.num_requests = 20'000;
  gp.num_clients = 10;
  gp.shared_docs = 5'000;
  gp.private_docs_per_client = 200;
  const Trace t = generate_trace("s", gp, 5);
  const StackDistanceHistogram h = stack_distances_of(t);
  EXPECT_EQ(h.cold_misses + h.rereferences, t.size());
  std::uint64_t bucketed = 0;
  for (auto b : h.buckets) bucketed += b;
  EXPECT_EQ(bucketed, h.rereferences);
}

TEST(StackDistanceTest, TemporalLocalityShrinksMedianDistance) {
  GeneratorParams cold;
  cold.num_requests = 30'000;
  cold.num_clients = 10;
  cold.shared_docs = 10'000;
  cold.private_docs_per_client = 0;
  cold.temporal_prob = 0.0;
  GeneratorParams warm = cold;
  warm.temporal_prob = 0.45;
  const auto hc = stack_distances_of(generate_trace("c", cold, 6));
  const auto hw = stack_distances_of(generate_trace("w", warm, 6));
  EXPECT_LT(hw.median_distance(), hc.median_distance());
}

TEST(SharingTest, HandComputedSharing) {
  const Trace t = make(3, {{0, 0, 10, 1},   // doc 10: clients {0,1}
                           {1, 1, 10, 1},
                           {2, 1, 20, 1},   // doc 20: client {1} only
                           {3, 2, 10, 1}}); // doc 10 third client
  const SharingStats s = sharing_of(t);
  EXPECT_EQ(s.unique_docs, 2u);
  EXPECT_EQ(s.shared_docs, 1u);
  EXPECT_EQ(s.requests_to_shared, 3u);
  EXPECT_DOUBLE_EQ(s.shared_doc_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(s.shared_request_fraction(), 0.75);
  EXPECT_DOUBLE_EQ(s.mean_clients_per_doc, 2.0);
}

TEST(SharingTest, PrivateDocsReduceSharing) {
  GeneratorParams open;
  open.num_requests = 20'000;
  open.num_clients = 10;
  open.shared_docs = 4'000;
  open.private_docs_per_client = 0;
  GeneratorParams closed = open;
  closed.private_docs_per_client = 2'000;
  closed.shared_prob = 0.3;
  const SharingStats so = sharing_of(generate_trace("o", open, 7));
  const SharingStats sc = sharing_of(generate_trace("c", closed, 7));
  EXPECT_GT(so.shared_request_fraction(), sc.shared_request_fraction());
}

TEST(SharingTest, EmptyTraceIsZeroed) {
  const SharingStats s = sharing_of(Trace{});
  EXPECT_EQ(s.unique_docs, 0u);
  EXPECT_DOUBLE_EQ(s.shared_doc_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(s.shared_request_fraction(), 0.0);
}

}  // namespace
}  // namespace baps::trace
