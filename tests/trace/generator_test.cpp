#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"

namespace baps::trace {
namespace {

GeneratorParams small_params() {
  GeneratorParams p;
  p.num_requests = 20'000;
  p.num_clients = 10;
  p.shared_docs = 12'000;
  p.private_docs_per_client = 600;
  return p;
}

TEST(GeneratorTest, DeterministicInSeed) {
  const Trace a = generate_trace("t", small_params(), 99);
  const Trace b = generate_trace("t", small_params(), 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.requests()[i].doc, b.requests()[i].doc);
    EXPECT_EQ(a.requests()[i].client, b.requests()[i].client);
    EXPECT_EQ(a.requests()[i].size, b.requests()[i].size);
    EXPECT_DOUBLE_EQ(a.requests()[i].timestamp, b.requests()[i].timestamp);
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentStreams) {
  const Trace a = generate_trace("t", small_params(), 1);
  const Trace b = generate_trace("t", small_params(), 2);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.requests()[i].doc == b.requests()[i].doc) ++same;
  }
  EXPECT_LT(same, a.size() / 2);
}

TEST(GeneratorTest, TimestampsAreMonotone) {
  const Trace t = generate_trace("t", small_params(), 3);
  double prev = -1.0;
  for (const Request& r : t.requests()) {
    EXPECT_GE(r.timestamp, prev);
    prev = r.timestamp;
  }
}

TEST(GeneratorTest, AllIdsWithinUniverse) {
  const GeneratorParams p = small_params();
  const Trace t = generate_trace("t", p, 4);
  const DocId universe =
      p.shared_docs + static_cast<DocId>(p.num_clients) *
                          p.private_docs_per_client;
  EXPECT_EQ(t.num_docs(), universe);
  for (const Request& r : t.requests()) {
    EXPECT_LT(r.doc, universe);
    EXPECT_LT(r.client, p.num_clients);
    EXPECT_GT(r.size, 0u);
  }
}

TEST(GeneratorTest, EveryClientIssuesRequests) {
  const Trace t = generate_trace("t", small_params(), 5);
  std::unordered_set<ClientId> seen;
  for (const Request& r : t.requests()) seen.insert(r.client);
  EXPECT_EQ(seen.size(), small_params().num_clients);
}

TEST(GeneratorTest, ClientRatesAreSkewed) {
  GeneratorParams p = small_params();
  p.client_rate_alpha = 0.8;
  const Trace t = generate_trace("t", p, 6);
  std::unordered_map<ClientId, std::uint64_t> counts;
  for (const Request& r : t.requests()) ++counts[r.client];
  std::uint64_t lo = ~0ULL, hi = 0;
  for (const auto& [c, n] : counts) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  // Zipf(0.8) over 10 clients: the busiest client is several times busier
  // than the quietest — the different-replacement-pace effect needs this.
  EXPECT_GT(hi, 3 * lo);
}

TEST(GeneratorTest, PrivateDocsStayPrivate) {
  const GeneratorParams p = small_params();
  const Trace t = generate_trace("t", p, 7);
  // A private document (id >= shared_docs) must only ever be requested by
  // its owning client.
  for (const Request& r : t.requests()) {
    if (r.doc >= p.shared_docs) {
      const auto owner = static_cast<ClientId>(
          (r.doc - p.shared_docs) / p.private_docs_per_client);
      EXPECT_EQ(r.client, owner) << "doc " << r.doc;
    }
  }
}

TEST(GeneratorTest, TemporalLocalityRaisesRereferenceRate) {
  GeneratorParams cold = small_params();
  cold.temporal_prob = 0.0;
  GeneratorParams warm = small_params();
  warm.temporal_prob = 0.5;

  const auto rereference_fraction = [](const Trace& t) {
    std::unordered_set<DocId> seen;
    std::uint64_t re = 0;
    for (const Request& r : t.requests()) {
      if (!seen.insert(r.doc).second) ++re;
    }
    return static_cast<double>(re) / static_cast<double>(t.size());
  };
  EXPECT_GT(rereference_fraction(generate_trace("w", warm, 8)),
            rereference_fraction(generate_trace("c", cold, 8)) + 0.05);
}

TEST(GeneratorTest, MutationChangesObservedSizes) {
  GeneratorParams p = small_params();
  p.mutation_prob = 0.05;
  const Trace t = generate_trace("t", p, 9);
  std::unordered_map<DocId, std::uint64_t> last;
  std::uint64_t changes = 0, revisits = 0;
  for (const Request& r : t.requests()) {
    auto [it, inserted] = last.try_emplace(r.doc, r.size);
    if (!inserted) {
      ++revisits;
      if (it->second != r.size) ++changes;
      it->second = r.size;
    }
  }
  ASSERT_GT(revisits, 0u);
  const double change_rate =
      static_cast<double>(changes) / static_cast<double>(revisits);
  EXPECT_GT(change_rate, 0.01);
  EXPECT_LT(change_rate, 0.4);
}

TEST(GeneratorTest, ZeroMutationMeansStableSizes) {
  GeneratorParams p = small_params();
  p.mutation_prob = 0.0;
  const Trace t = generate_trace("t", p, 10);
  std::unordered_map<DocId, std::uint64_t> last;
  for (const Request& r : t.requests()) {
    auto [it, inserted] = last.try_emplace(r.doc, r.size);
    if (!inserted) {
      EXPECT_EQ(it->second, r.size);
    }
  }
}

TEST(GeneratorTest, RejectsInvalidParams) {
  GeneratorParams p = small_params();
  p.num_clients = 0;
  EXPECT_THROW(generate_trace("t", p, 1), baps::InvariantError);
  p = small_params();
  p.temporal_prob = 1.0;
  EXPECT_THROW(generate_trace("t", p, 1), baps::InvariantError);
  p = small_params();
  p.mean_interarrival = 0.0;
  EXPECT_THROW(generate_trace("t", p, 1), baps::InvariantError);
}

TEST(TraceTest, RestrictClientsKeepsPrefixPopulation) {
  const Trace t = generate_trace("t", small_params(), 11);
  const Trace half = t.restrict_clients(0.5);
  EXPECT_EQ(half.num_clients(), 5u);
  std::size_t expected = 0;
  for (const Request& r : t.requests()) {
    if (r.client < 5) ++expected;
  }
  EXPECT_EQ(half.size(), expected);
  for (const Request& r : half.requests()) EXPECT_LT(r.client, 5u);
}

TEST(TraceTest, RestrictClientsValidatesFraction) {
  const Trace t = generate_trace("t", small_params(), 12);
  EXPECT_THROW(t.restrict_clients(0.0), baps::InvariantError);
  EXPECT_THROW(t.restrict_clients(1.5), baps::InvariantError);
}

TEST(TraceTest, SyntheticUrlsAreStableAndDistinct) {
  const Trace t = generate_trace("t", small_params(), 13);
  EXPECT_EQ(t.url_of(0), t.url_of(0));
  EXPECT_NE(t.url_of(0), t.url_of(1));
  EXPECT_NE(t.url_of(0).find("http://"), std::string::npos);
}

}  // namespace
}  // namespace baps::trace
