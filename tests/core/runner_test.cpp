#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"
#include "trace/presets.hpp"
#include "util/assert.hpp"

namespace baps::core {
namespace {

// One shared scaled-down preset keeps the suite fast; the full-size runs
// live in the bench binaries.
const trace::Trace& shared_trace() {
  static const trace::Trace t =
      trace::load_preset_scaled(trace::Preset::kNlanrUc, 0.12);
  return t;
}

const trace::TraceStats& shared_stats() {
  static const trace::TraceStats s = trace::compute_stats(shared_trace());
  return s;
}

TEST(BuildConfigTest, MinimumSizingFollowsRule) {
  RunSpec spec;
  spec.relative_cache_size = 0.10;
  spec.sizing = BrowserSizing::kMinimum;
  const sim::SimConfig cfg = build_config(shared_stats(), spec);
  EXPECT_EQ(cfg.proxy_cache_bytes,
            sim::proxy_cache_bytes_for(shared_stats(), 0.10));
  ASSERT_EQ(cfg.browser_cache_bytes.size(), shared_stats().num_clients);
  EXPECT_EQ(cfg.browser_cache_bytes[0],
            sim::min_browser_cache_bytes(cfg.proxy_cache_bytes,
                                         shared_stats().num_clients));
}

TEST(BuildConfigTest, AverageSizingScalesWithRelativeSize) {
  RunSpec small, large;
  small.sizing = large.sizing = BrowserSizing::kAverage;
  small.relative_cache_size = 0.05;
  large.relative_cache_size = 0.20;
  const auto cs = build_config(shared_stats(), small);
  const auto cl = build_config(shared_stats(), large);
  EXPECT_GT(cl.browser_cache_bytes[0], cs.browser_cache_bytes[0]);
  EXPECT_GT(cl.proxy_cache_bytes, cs.proxy_cache_bytes);
}

// --- the paper's headline qualitative claims, end to end -------------------

TEST(HeadlineTest, BapsBeatsProxyAndLocalBrowser) {
  RunSpec spec;
  spec.relative_cache_size = 0.10;
  spec.sizing = BrowserSizing::kMinimum;
  const Metrics baps = run_one(OrgKind::kBrowsersAware, shared_trace(),
                               shared_stats(), spec);
  const Metrics pal = run_one(OrgKind::kProxyAndLocalBrowser, shared_trace(),
                              shared_stats(), spec);
  EXPECT_GT(baps.hit_ratio(), pal.hit_ratio());
  EXPECT_GT(baps.byte_hit_ratio(), pal.byte_hit_ratio());
  EXPECT_GT(baps.remote_browser_hits, 0u);
}

TEST(HeadlineTest, OrganizationOrderingMatchesPaper) {
  // §4.1: BAPS is best; P+LB only slightly beats proxy-only;
  // local-browser-only is worst (minimum cache sizes).
  RunSpec spec;
  spec.relative_cache_size = 0.10;
  spec.sizing = BrowserSizing::kMinimum;
  std::map<OrgKind, Metrics> m;
  for (const OrgKind k : sim::kAllOrganizations) {
    m.emplace(k, run_one(k, shared_trace(), shared_stats(), spec));
  }
  const auto hr = [&](OrgKind k) { return m.at(k).hit_ratio(); };
  EXPECT_GT(hr(OrgKind::kBrowsersAware), hr(OrgKind::kProxyAndLocalBrowser));
  // "proxy-and-local-browser only slightly outperforms proxy-cache-only":
  // with minimum browser caches they are near-identical — allow noise.
  EXPECT_GE(hr(OrgKind::kProxyAndLocalBrowser),
            hr(OrgKind::kProxyOnly) - 0.005);
  EXPECT_GT(hr(OrgKind::kProxyOnly), hr(OrgKind::kLocalBrowserOnly));
  EXPECT_GT(hr(OrgKind::kBrowsersAware), hr(OrgKind::kGlobalBrowsersOnly));
}

TEST(SweepTest, CacheSizeSweepIsMonotoneInSizePerOrg) {
  RunSpec spec;
  spec.sizing = BrowserSizing::kMinimum;
  const std::vector<double> sizes = {0.02, 0.10, 0.25};
  const auto points = sweep_cache_sizes(
      shared_trace(), sizes,
      {OrgKind::kProxyAndLocalBrowser, OrgKind::kBrowsersAware}, spec);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    for (const auto& [org, m] : points[i].by_org) {
      // Bigger caches can only help on these workloads.
      EXPECT_GE(m.hit_ratio() + 0.01,
                points[i - 1].by_org.at(org).hit_ratio())
          << sim::org_name(org) << " at size " << sizes[i];
    }
  }
}

TEST(SweepTest, ParallelAndSequentialSweepsAgreeExactly) {
  RunSpec spec;
  spec.sizing = BrowserSizing::kMinimum;
  const std::vector<double> sizes = {0.05, 0.15};
  const std::vector<OrgKind> orgs = {OrgKind::kProxyOnly,
                                     OrgKind::kBrowsersAware};
  const auto seq = sweep_cache_sizes(shared_trace(), sizes, orgs, spec);
  ThreadPool pool(4);
  const auto par = sweep_cache_sizes(shared_trace(), sizes, orgs, spec, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    for (const OrgKind org : orgs) {
      const Metrics& a = seq[i].by_org.at(org);
      const Metrics& b = par[i].by_org.at(org);
      EXPECT_EQ(a.hits.hits(), b.hits.hits());
      EXPECT_EQ(a.byte_hits.hits(), b.byte_hits.hits());
      EXPECT_EQ(a.remote_browser_hits, b.remote_browser_hits);
      EXPECT_DOUBLE_EQ(a.total_service_time_s, b.total_service_time_s);
    }
  }
}

TEST(SweepTest, RejectsEmptyInputs) {
  RunSpec spec;
  EXPECT_THROW(
      sweep_cache_sizes(shared_trace(), {}, {OrgKind::kProxyOnly}, spec),
      baps::InvariantError);
  EXPECT_THROW(sweep_cache_sizes(shared_trace(), {0.1}, {}, spec),
               baps::InvariantError);
  EXPECT_THROW(client_scaling_sweep(shared_trace(), {}, spec),
               baps::InvariantError);
}

TEST(ClientScalingTest, IncrementGrowsWithPopulation) {
  RunSpec spec;
  spec.relative_cache_size = 0.10;
  spec.sizing = BrowserSizing::kAverage;
  ThreadPool pool(4);
  const auto points = client_scaling_sweep(
      shared_trace(), {0.25, 1.0}, spec, &pool);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LT(points[0].num_clients, points[1].num_clients);
  // Figure 8's shape: more clients → more sharable browser space → larger
  // BAPS increment.
  EXPECT_GT(points[1].hit_ratio_increment_pct,
            points[0].hit_ratio_increment_pct);
  EXPECT_GT(points[1].hit_ratio_increment_pct, 0.0);
}

TEST(ClientScalingTest, SmallPopulationGainIsSmall) {
  // Figure 7's limit case: 3 clients → accumulated browser space is tiny
  // relative to the proxy → increment nearly vanishes.
  const trace::Trace canet = trace::load_preset_scaled(
      trace::Preset::kCanet2, 0.15);
  RunSpec spec;
  spec.relative_cache_size = 0.10;
  spec.sizing = BrowserSizing::kAverage;
  const auto points = client_scaling_sweep(canet, {1.0}, spec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].num_clients, 3u);
  EXPECT_LT(points[0].hit_ratio_increment_pct, 5.0);
  EXPECT_GE(points[0].hit_ratio_increment_pct, -0.5);
}

}  // namespace
}  // namespace baps::core
