#include "runtime/transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "runtime/loopback_transport.hpp"
#include "runtime/proxy_server.hpp"
#include "runtime/system.hpp"
#include "runtime/tcp_transport.hpp"

namespace baps::runtime {
namespace {

BapsSystem::Params small_params() {
  BapsSystem::Params p;
  p.num_clients = 3;
  p.proxy_cache_bytes = 8 << 10;  // small enough to evict under pressure
  p.browser_cache_bytes = 16 << 10;
  p.seed = 42;
  return p;
}

// Pushes the target document out of the proxy cache so the next request for
// it must route through the browser index (same idiom as system_test.cpp).
void evict_proxy_cache(BapsSystem& sys, ClientId filler_client) {
  for (int i = 0; i < 64; ++i) {
    sys.browse(filler_client, "http://filler.example/" + std::to_string(i));
  }
}

ProxyServer::Params server_params(const BapsSystem::Params& p) {
  ProxyServer::Params sp;
  sp.core.num_clients = p.num_clients;
  sp.core.proxy_cache_bytes = p.proxy_cache_bytes;
  sp.core.seed = p.seed;
  sp.core.rsa_modulus_bits = p.rsa_modulus_bits;
  sp.net.worker_threads = 4;
  sp.net.accept_poll_ms = 10;
  sp.net.deadlines = netio::Deadlines{1000, 100, 1000};
  sp.peer_deadlines = netio::Deadlines{200, 500, 500};
  return sp;
}

TcpTransport::Params transport_params(std::uint16_t port) {
  TcpTransport::Params tp;
  tp.proxy_port = port;
  tp.deadlines = netio::Deadlines{1000, 2000, 2000};
  return tp;
}

// A deterministic little workload with re-references (peer/proxy/local hits),
// spread across clients.
std::vector<std::pair<ClientId, std::string>> workload(std::uint32_t clients,
                                                       int n) {
  std::vector<std::pair<ClientId, std::string>> ops;
  for (int i = 0; i < n; ++i) {
    const auto c =
        static_cast<ClientId>(static_cast<std::uint32_t>(i * 7 + i / 5) %
                              clients);
    const int url = (i * 13) % 17;
    ops.emplace_back(c, "http://doc" + std::to_string(url) + ".test/");
  }
  return ops;
}

TEST(TransportTest, LoopbackExposesEmbeddedProxyState) {
  BapsSystem sys(small_params());
  sys.browse(0, "http://a.test/");
  EXPECT_EQ(sys.origin_fetches(), 1u);
  EXPECT_EQ(sys.origin().fetch_count(), 1u);
  EXPECT_TRUE(sys.browser_index().holds(0, url_key("http://a.test/")));
}

TEST(TransportTest, TcpProxyPublicKeyMatchesTheCore) {
  const auto params = small_params();
  ProxyServer server(server_params(params));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TcpTransport transport(transport_params(server.port()));
  const crypto::RsaPublicKey over_wire = transport.proxy_public_key();
  EXPECT_EQ(over_wire.n, server.core().public_key().n);
  EXPECT_EQ(over_wire.e, server.core().public_key().e);
  server.stop();
}

TEST(TransportTest, TcpFetchOutcomesMatchLoopbackExactly) {
  const auto params = small_params();

  BapsSystem loopback(params);

  ProxyServer server(server_params(params));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TcpTransport transport(transport_params(server.port()));
  BapsSystem tcp(params, transport);

  for (const auto& [client, url] : workload(params.num_clients, 120)) {
    const FetchOutcome a = loopback.browse(client, url);
    const FetchOutcome b = tcp.browse(client, url);
    ASSERT_EQ(source_name(a.source), source_name(b.source))
        << "diverged at client " << client << " url " << url;
    ASSERT_EQ(a.body, b.body);
    ASSERT_EQ(a.verified, b.verified);
    ASSERT_EQ(a.tamper_recovered, b.tamper_recovered);
  }

  EXPECT_EQ(loopback.local_hits(), tcp.local_hits());
  EXPECT_EQ(loopback.proxy_hits(), tcp.proxy_hits());
  EXPECT_EQ(loopback.peer_hits(), tcp.peer_hits());
  EXPECT_EQ(loopback.origin_fetches(), tcp.origin_fetches());
  EXPECT_EQ(loopback.false_forwards(), tcp.false_forwards());
  server.stop();
}

TEST(TransportTest, TcpTamperedPeerDeliveryIsDetectedAndRecovered) {
  auto params = small_params();
  ProxyServer server(server_params(params));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TcpTransport transport(transport_params(server.port()));
  BapsSystem sys(params, transport);

  const std::string url = "http://tampered.test/";
  sys.browse(0, url);  // client0 now holds the document
  evict_proxy_cache(sys, 2);
  sys.set_tampering(0, true);

  const FetchOutcome out = sys.browse(1, url);
  EXPECT_TRUE(out.verified);
  EXPECT_TRUE(out.tamper_recovered);
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin);
  EXPECT_GE(sys.tamper_detections(), 1u);
  server.stop();
}

TEST(TransportTest, TcpSpoofedIndexRemoveIsRejected) {
  auto params = small_params();
  ProxyServer server(server_params(params));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TcpTransport transport(transport_params(server.port()));
  BapsSystem sys(params, transport);

  const std::string url = "http://victim.test/";
  sys.browse(1, url);  // client1 registers the document
  evict_proxy_cache(sys, 0);
  EXPECT_FALSE(sys.spoof_index_remove(/*attacker=*/2, /*victim=*/1, url));
  EXPECT_EQ(sys.rejected_index_updates(), 1u);
  // The victim's registration survived: client2's request is served by peer.
  const FetchOutcome out = sys.browse(2, url);
  EXPECT_EQ(out.source, FetchOutcome::Source::kRemoteBrowser);
  server.stop();
}

TEST(TransportTest, DeadPeerDegradesToOriginWithinDeadline) {
  auto params = small_params();
  auto sp = server_params(params);
  ProxyServer server(sp);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TcpTransport transport(transport_params(server.port()));
  BapsSystem sys(params, transport);

  const std::string url = "http://dying-peer.test/";
  sys.browse(0, url);  // client0 holds + registers the document
  evict_proxy_cache(sys, 2);
  transport.kill_peer_server(0);

  // The proxy's index still routes to client0's (now dead) peer port. The
  // fetch must not hang: one bounded connect failure, then origin.
  const auto start = std::chrono::steady_clock::now();
  const FetchOutcome out = sys.browse(1, url);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin);
  EXPECT_TRUE(out.verified);
  EXPECT_EQ(sys.false_forwards(), 1u);
  EXPECT_LT(ms, 5000) << "dead peer must cost a bounded wait, not a hang";

  // The stale entry was dropped: the next miss goes straight to origin
  // without another false forward.
  sys.browse(2, url);
  EXPECT_EQ(sys.false_forwards(), 1u);
  server.stop();
}

TEST(TransportTest, ObserverConnectionsRegisterNothing) {
  auto params = small_params();
  ProxyServer server(server_params(params));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TcpTransport transport(transport_params(server.port()));
  BapsSystem sys(params, transport);

  sys.browse(0, "http://stats.test/");
  const ProxyStats stats = transport.stats();  // transient observer session
  EXPECT_EQ(stats.origin_fetches, 1u);
  EXPECT_EQ(stats.proxy_hits, 0u);
  server.stop();
}

}  // namespace
}  // namespace baps::runtime
