// Fault-injection tests for the runtime protocol engine: deterministic
// schedules, graceful degradation (every faulted request is still served
// verified content), the stale-index departure path, and proxy restart with
// index rebuild.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/registry.hpp"
#include "runtime/system.hpp"

namespace baps::runtime {
namespace {

BapsSystem::Params small_params() {
  BapsSystem::Params p;
  p.num_clients = 3;
  p.proxy_cache_bytes = 8 << 10;  // small enough to evict under pressure
  p.browser_cache_bytes = 16 << 10;
  p.seed = 42;
  return p;
}

fault::FaultRates recoverable_rates() {
  fault::FaultRates rates;
  rates.of(fault::FaultKind::kPeerDisconnect) = 0.3;
  rates.of(fault::FaultKind::kSlowPeer) = 0.3;
  rates.of(fault::FaultKind::kDropFrame) = 0.2;
  rates.of(fault::FaultKind::kCorruptFrame) = 0.2;
  rates.of(fault::FaultKind::kProxyRestart) = 0.05;
  rates.slow_peer_budget_ms = 25;  // below the 50ms delay: undelivered
  return rates;
}

fault::FaultRates all_rates() {
  fault::FaultRates rates = recoverable_rates();
  rates.of(fault::FaultKind::kPeerDepart) = 0.1;
  rates.of(fault::FaultKind::kPeerJoin) = 0.5;
  return rates;
}

/// A deterministic request stream with enough rereference across clients to
/// exercise proxy hits, peer fetches, and origin fallbacks. The 25-doc
/// universe is coprime to the 3-client round-robin so every client revisits
/// every document (a multiple of 3 would partition the docs per client and
/// starve the peer path).
std::string stream_url(int i) {
  return "http://stream.example/" + std::to_string((i * 7) % 25);
}

TEST(FaultInjectionTest, SameSeedReproducesScheduleAndCounters) {
  BapsSystem a(small_params());
  BapsSystem b(small_params());
  fault::FaultPlan plan_a(1234, all_rates());
  fault::FaultPlan plan_b(1234, all_rates());
  a.attach_fault_plan(&plan_a);
  b.attach_fault_plan(&plan_b);

  for (int i = 0; i < 300; ++i) {
    const auto client = static_cast<ClientId>(i % 3);
    const FetchOutcome oa = a.browse(client, stream_url(i));
    const FetchOutcome ob = b.browse(client, stream_url(i));
    ASSERT_EQ(source_name(oa.source), source_name(ob.source))
        << "diverged at request " << i;
    ASSERT_EQ(oa.verified, ob.verified);
    ASSERT_EQ(oa.body, ob.body);
  }
  for (std::size_t k = 0; k < fault::kNumFaultKinds; ++k) {
    const auto kind = static_cast<fault::FaultKind>(k);
    EXPECT_EQ(plan_a.injected(kind), plan_b.injected(kind))
        << fault_kind_name(kind);
    EXPECT_EQ(plan_a.recovered(kind), plan_b.recovered(kind))
        << fault_kind_name(kind);
  }
  EXPECT_GT(plan_a.injected_total(), 0u);
  EXPECT_EQ(a.false_forwards(), b.false_forwards());
  EXPECT_EQ(a.origin_fetches(), b.origin_fetches());
}

TEST(FaultInjectionTest, ZeroRatePlanIsBehaviourallyTransparent) {
  BapsSystem bare(small_params());
  BapsSystem planned(small_params());
  fault::FaultPlan zero(77, fault::FaultRates{});
  planned.attach_fault_plan(&zero);

  for (int i = 0; i < 200; ++i) {
    const auto client = static_cast<ClientId>(i % 3);
    const FetchOutcome oa = bare.browse(client, stream_url(i));
    const FetchOutcome ob = planned.browse(client, stream_url(i));
    ASSERT_EQ(source_name(oa.source), source_name(ob.source))
        << "zero-rate plan changed request " << i;
    ASSERT_EQ(oa.body, ob.body);
  }
  EXPECT_EQ(bare.local_hits(), planned.local_hits());
  EXPECT_EQ(bare.proxy_hits(), planned.proxy_hits());
  EXPECT_EQ(bare.peer_hits(), planned.peer_hits());
  EXPECT_EQ(bare.origin_fetches(), planned.origin_fetches());
  EXPECT_EQ(bare.false_forwards(), planned.false_forwards());
  EXPECT_EQ(zero.injected_total(), 0u);
}

TEST(FaultInjectionTest, FaultedRunServesEveryRequestAndRecoversAll) {
  BapsSystem sys(small_params());
  fault::FaultPlan plan(99, all_rates());
  sys.attach_fault_plan(&plan);

  for (int i = 0; i < 400; ++i) {
    const FetchOutcome out =
        sys.browse(static_cast<ClientId>(i % 3), stream_url(i));
    ASSERT_TRUE(out.verified) << "request " << i << " served unverified";
    ASSERT_FALSE(out.body.empty());
  }
  EXPECT_GT(plan.injected_total(), 0u);
  EXPECT_TRUE(plan.fully_recovered())
      << "injected=" << plan.injected_total()
      << " recovered=" << plan.recovered_total();
  // The recoverable kinds each fired at these rates over 400 requests.
  EXPECT_GT(plan.injected(fault::FaultKind::kPeerDisconnect), 0u);
  EXPECT_GT(plan.injected(fault::FaultKind::kPeerDepart), 0u);
}

class DepartureTest : public ::testing::Test {
 protected:
  DepartureTest() : sys_(small_params()) {
    sys_.browse(0, kUrl);
    // Flood the proxy cache until the shared doc is evicted from it; only
    // client 0's browser (and the index entry pointing at it) remain.
    for (int i = 0; i < 64; ++i) {
      sys_.browse(2, "http://filler.example/" + std::to_string(i));
    }
  }
  static constexpr const char* kUrl = "http://depart.example/doc";
  BapsSystem sys_;
};

TEST_F(DepartureTest, ImpoliteDepartureLeavesStaleIndexEntry) {
  ASSERT_TRUE(sys_.browser_index().holds(0, url_key(kUrl)));
  const std::uint64_t stale_before =
      obs::Registry::global().counter("stale_index_hits_total").value();

  sys_.depart_client(0, /*polite=*/false);
  EXPECT_TRUE(sys_.client_departed(0));
  // Crash semantics: the proxy still believes client 0 holds the doc.
  EXPECT_TRUE(sys_.browser_index().holds(0, url_key(kUrl)));

  const FetchOutcome out = sys_.browse(1, kUrl);
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin);
  EXPECT_TRUE(out.verified);
  EXPECT_EQ(sys_.false_forwards(), 1u);
  EXPECT_EQ(obs::Registry::global().counter("stale_index_hits_total").value(),
            stale_before + 1);
  // The false forward repaired the index: the stale entry is gone.
  EXPECT_FALSE(sys_.browser_index().holds(0, url_key(kUrl)));
}

TEST_F(DepartureTest, PoliteDepartureLeavesNoStaleEntries) {
  sys_.depart_client(0, /*polite=*/true);
  EXPECT_FALSE(sys_.browser_index().holds(0, url_key(kUrl)));
  const FetchOutcome out = sys_.browse(1, kUrl);
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin);
  EXPECT_EQ(sys_.false_forwards(), 0u);
}

TEST_F(DepartureTest, RejoinedClientComesBackCold) {
  sys_.depart_client(0, /*polite=*/false);
  sys_.rejoin_client(0);
  EXPECT_FALSE(sys_.client_departed(0));
  EXPECT_FALSE(sys_.client_has(0, kUrl));  // departure emptied the cache
  // It participates again: a fresh fetch refills browser and index.
  sys_.browse(0, kUrl);
  EXPECT_TRUE(sys_.client_has(0, kUrl));
}

TEST(ProxyRestartTest, RestartRebuildsIndexFromPresentClients) {
  BapsSystem sys(small_params());
  const Url url = "http://restart.example/doc";
  sys.browse(0, url);
  ASSERT_TRUE(sys.client_has(0, url));

  sys.restart_proxy();
  // The crash lost cache and index; the rebuild re-announced client 0's
  // holdings, so the next request routes to the peer, not the origin.
  ASSERT_TRUE(sys.browser_index().holds(0, url_key(url)));
  const FetchOutcome out = sys.browse(1, url);
  EXPECT_EQ(out.source, FetchOutcome::Source::kRemoteBrowser);
  EXPECT_TRUE(out.verified);
}

TEST(ProxyRestartTest, DepartedClientsAreNotRebuilt) {
  BapsSystem sys(small_params());
  const Url url = "http://restart.example/gone";
  sys.browse(0, url);
  sys.depart_client(0, /*polite=*/false);
  sys.restart_proxy();
  EXPECT_FALSE(sys.browser_index().holds(0, url_key(url)));
  const FetchOutcome out = sys.browse(1, url);
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin);
  // No stale entry survived the rebuild, so no false forward either.
  EXPECT_EQ(sys.false_forwards(), 0u);
}

}  // namespace
}  // namespace baps::runtime
