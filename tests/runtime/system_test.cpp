// End-to-end protocol tests: caching behaviour, data integrity (§6.1), and
// communication anonymity (§6.2) of the runtime BAPS engine.
#include "runtime/system.hpp"

#include <gtest/gtest.h>

namespace baps::runtime {
namespace {

BapsSystem::Params small_params() {
  BapsSystem::Params p;
  p.num_clients = 3;
  p.proxy_cache_bytes = 8 << 10;   // small enough to evict under pressure
  p.browser_cache_bytes = 16 << 10;
  p.seed = 42;
  return p;
}

TEST(BapsSystemTest, FirstFetchComesFromOriginAndVerifies) {
  BapsSystem sys(small_params());
  const FetchOutcome out = sys.browse(0, "http://a.example/page.html");
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin);
  EXPECT_TRUE(out.verified);
  EXPECT_FALSE(out.body.empty());
  EXPECT_EQ(sys.origin_fetches(), 1u);
}

TEST(BapsSystemTest, RepeatFetchHitsLocalBrowser) {
  BapsSystem sys(small_params());
  sys.browse(0, "http://a.example/p");
  const FetchOutcome out = sys.browse(0, "http://a.example/p");
  EXPECT_EQ(out.source, FetchOutcome::Source::kLocalBrowser);
  EXPECT_TRUE(out.verified);
  EXPECT_EQ(sys.origin_fetches(), 1u);
}

TEST(BapsSystemTest, SecondClientHitsProxyCache) {
  BapsSystem sys(small_params());
  sys.browse(0, "http://a.example/p");
  const FetchOutcome out = sys.browse(1, "http://a.example/p");
  EXPECT_EQ(out.source, FetchOutcome::Source::kProxy);
  EXPECT_EQ(sys.origin_fetches(), 1u);
}

TEST(BapsSystemTest, PeerServesWhenProxyEvicted) {
  BapsSystem sys(small_params());
  const Url url = "http://a.example/shared";
  sys.browse(0, url);
  // Flood the proxy cache until the shared doc is evicted from it; client
  // 0's browser still holds it.
  for (int i = 0; i < 64; ++i) {
    sys.browse(2, "http://filler.example/" + std::to_string(i));
  }
  ASSERT_TRUE(sys.client_has(0, url));
  const FetchOutcome out = sys.browse(1, url);
  EXPECT_EQ(out.source, FetchOutcome::Source::kRemoteBrowser);
  EXPECT_TRUE(out.verified);
  EXPECT_GE(sys.peer_hits(), 1u);
  // The requester keeps a verified copy.
  EXPECT_TRUE(sys.client_has(1, url));
}

TEST(BapsSystemTest, BodiesMatchOriginContent) {
  BapsSystem sys(small_params());
  const Url url = "http://a.example/content";
  const std::string direct = sys.origin().fetch(url);
  EXPECT_EQ(sys.browse(0, url).body, direct);
  EXPECT_EQ(sys.browse(1, url).body, direct);
}

// --- §6.1 data integrity ----------------------------------------------------

class TamperTest : public ::testing::Test {
 protected:
  TamperTest() : sys_(small_params()) {
    sys_.browse(0, kUrl);
    for (int i = 0; i < 64; ++i) {
      sys_.browse(2, "http://filler.example/" + std::to_string(i));
    }
    sys_.set_tampering(0, true);  // client 0 corrupts what it serves
  }
  static constexpr const char* kUrl = "http://a.example/target";
  BapsSystem sys_;
};

TEST_F(TamperTest, TamperedPeerDeliveryIsDetectedAndRecovered) {
  const FetchOutcome out = sys_.browse(1, kUrl);
  EXPECT_TRUE(out.tamper_recovered);
  EXPECT_TRUE(out.verified);  // final copy verifies
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin);
  EXPECT_EQ(sys_.tamper_detections(), 1u);
  // The recovered body is the genuine one.
  EXPECT_EQ(out.body, sys_.origin().fetch(kUrl));
}

TEST_F(TamperTest, VictimCachesOnlyTheVerifiedCopy) {
  sys_.browse(1, kUrl);
  const FetchOutcome again = sys_.browse(1, kUrl);
  EXPECT_EQ(again.source, FetchOutcome::Source::kLocalBrowser);
  EXPECT_TRUE(again.verified);
}

TEST(IntegrityTest, NoClientCanForgeWatermarks) {
  // The watermark key pair lives in the proxy; a client-side forgery is
  // exactly the crypto-level test in watermark_test.cpp. Here: an honest
  // system never reports tamper detections.
  BapsSystem sys(small_params());
  for (int i = 0; i < 50; ++i) {
    sys.browse(static_cast<ClientId>(i % 3),
               "http://site.example/" + std::to_string(i % 10));
  }
  EXPECT_EQ(sys.tamper_detections(), 0u);
}

// --- stale index / false forwards -------------------------------------------

TEST(FalseForwardTest, SilentDropCausesFalseForwardThenRecovery) {
  BapsSystem sys(small_params());
  const Url url = "http://a.example/vanishing";
  sys.browse(0, url);
  for (int i = 0; i < 64; ++i) {
    sys.browse(2, "http://filler.example/" + std::to_string(i));
  }
  sys.drop_silently(0, url);  // proxy index now stale
  const FetchOutcome out = sys.browse(1, url);
  EXPECT_EQ(sys.false_forwards(), 1u);
  EXPECT_EQ(out.source, FetchOutcome::Source::kOrigin);
  EXPECT_TRUE(out.verified);
  // The recovery re-filled the proxy cache, so the index is not consulted
  // until the proxy evicts the doc again. After that, client 1's silently
  // dropped copy produces the second false forward — and the repaired index
  // (client 0's entry was removed above) has no other holder to try.
  sys.drop_silently(1, url);
  for (int i = 64; i < 128; ++i) {
    sys.browse(2, "http://filler.example/" + std::to_string(i));
  }
  sys.browse(2, url);
  EXPECT_EQ(sys.false_forwards(), 2u);
}

// --- §6.2 communication anonymity --------------------------------------------

TEST(AnonymityTest, PeerFetchNeverNamesTheRequester) {
  BapsSystem sys(small_params());
  const Url url = "http://a.example/secret";
  sys.browse(0, url);
  for (int i = 0; i < 64; ++i) {
    sys.browse(2, "http://filler.example/" + std::to_string(i));
  }
  sys.messages().clear();
  const FetchOutcome out = sys.browse(1, url);
  ASSERT_EQ(out.source, FetchOutcome::Source::kRemoteBrowser);

  // Audit every message the holder (client0) saw: all of it comes from the
  // proxy, none of it from or mentioning client1.
  bool saw_peer_fetch = false;
  for (const MsgRecord& m : sys.messages().log()) {
    if (m.to == "client0") {
      EXPECT_EQ(m.from, "proxy") << msg_kind_name(m.kind);
      saw_peer_fetch |= (m.kind == MsgKind::kPeerFetch);
    }
    if (m.kind == MsgKind::kPeerFetch || m.kind == MsgKind::kPeerDeliver) {
      EXPECT_NE(m.from, "client1");
      EXPECT_NE(m.to, "client1");
    }
  }
  EXPECT_TRUE(saw_peer_fetch);
}

TEST(AnonymityTest, RequesterOnlyEverTalksToProxy) {
  BapsSystem sys(small_params());
  const Url url = "http://a.example/secret";
  sys.browse(0, url);
  for (int i = 0; i < 64; ++i) {
    sys.browse(2, "http://filler.example/" + std::to_string(i));
  }
  sys.messages().clear();
  sys.browse(1, url);
  for (const MsgRecord& m : sys.messages().log()) {
    if (m.from == "client1") {
      EXPECT_EQ(m.to, "proxy");
    }
    if (m.to == "client1") {
      EXPECT_EQ(m.from, "proxy");
    }
  }
}

// --- index maintenance traffic ----------------------------------------------

TEST(IndexTrafficTest, InsertsAndEvictionsProduceIndexMessages) {
  BapsSystem sys(small_params());
  for (int i = 0; i < 40; ++i) {
    sys.browse(0, "http://churn.example/" + std::to_string(i));
  }
  EXPECT_GT(sys.messages().count(MsgKind::kIndexAdd), 0u);
  EXPECT_GT(sys.messages().count(MsgKind::kIndexRemove), 0u);
  // The index mirrors the browser caches: every indexed doc is really held.
  for (int i = 0; i < 40; ++i) {
    const Url url = "http://churn.example/" + std::to_string(i);
    EXPECT_EQ(sys.browser_index().holds(0, url_key(url)),
              sys.client_has(0, url))
        << url;
  }
}

// --- authenticated index updates ---------------------------------------------

TEST(IndexAuthTest, SpoofedRemovalIsRejected) {
  BapsSystem sys(small_params());
  const Url url = "http://a.example/precious";
  sys.browse(0, url);
  ASSERT_TRUE(sys.browser_index().holds(0, url_key(url)));

  // Client 2 tries to knock client 0's entry out of the index.
  EXPECT_FALSE(sys.spoof_index_remove(/*attacker=*/2, /*victim=*/0, url));
  EXPECT_EQ(sys.rejected_index_updates(), 1u);
  EXPECT_TRUE(sys.browser_index().holds(0, url_key(url)));
}

TEST(IndexAuthTest, LegitimateUpdatesStillFlow) {
  BapsSystem sys(small_params());
  for (int i = 0; i < 40; ++i) {
    sys.browse(1, "http://churn.example/" + std::to_string(i));
  }
  // Plenty of adds and eviction-driven removes, none rejected.
  EXPECT_EQ(sys.rejected_index_updates(), 0u);
  EXPECT_GT(sys.messages().count(MsgKind::kIndexRemove), 0u);
}

TEST(IndexAuthTest, SelfRemovalWithOwnKeyIsAccepted) {
  // The "attack" degenerates to a legitimate update when attacker == victim.
  BapsSystem sys(small_params());
  const Url url = "http://a.example/mine";
  sys.browse(1, url);
  EXPECT_TRUE(sys.spoof_index_remove(1, 1, url));
  EXPECT_FALSE(sys.browser_index().holds(1, url_key(url)));
}

TEST(SourceNameTest, AllSourcesNamed) {
  EXPECT_EQ(source_name(FetchOutcome::Source::kLocalBrowser), "local-browser");
  EXPECT_EQ(source_name(FetchOutcome::Source::kOrigin), "origin-server");
}

}  // namespace
}  // namespace baps::runtime
