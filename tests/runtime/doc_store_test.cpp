#include "runtime/doc_store.hpp"

#include <gtest/gtest.h>

namespace baps::runtime {
namespace {

Document doc(const std::string& body) { return Document{body, {}}; }

TEST(DocStoreTest, PutGetRoundTrip) {
  DocStore s(1024);
  EXPECT_TRUE(s.put(1, doc("hello")));
  const auto d = s.get(1);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->body, "hello");
  EXPECT_EQ(s.used_bytes(), 5u);
}

TEST(DocStoreTest, MissReturnsNullopt) {
  DocStore s(1024);
  EXPECT_FALSE(s.get(42).has_value());
}

TEST(DocStoreTest, PutReplacesExistingBody) {
  DocStore s(1024);
  s.put(1, doc("old body"));
  s.put(1, doc("new"));
  EXPECT_EQ(s.get(1)->body, "new");
  EXPECT_EQ(s.used_bytes(), 3u);
  EXPECT_EQ(s.count(), 1u);
}

TEST(DocStoreTest, OversizedBodyRejected) {
  DocStore s(4);
  EXPECT_FALSE(s.put(1, doc("way too large")));
  EXPECT_FALSE(s.contains(1));
}

TEST(DocStoreTest, LruEvictionWithListener) {
  DocStore s(10);
  std::vector<DocStore::Key> evicted;
  std::vector<std::string> bodies;
  s.set_eviction_listener([&](DocStore::Key k, const Document& d) {
    evicted.push_back(k);
    bodies.push_back(d.body);  // the listener sees the body pre-erase
  });
  s.put(1, doc("aaaa"));
  s.put(2, doc("bbbb"));
  s.get(1);               // heat 1; 2 becomes the victim
  s.put(3, doc("cccc"));  // evicts 2
  EXPECT_EQ(evicted, std::vector<DocStore::Key>{2});
  EXPECT_EQ(bodies, std::vector<std::string>{"bbbb"});
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
}

TEST(DocStoreTest, EraseIsSilent) {
  DocStore s(100);
  int evictions = 0;
  s.set_eviction_listener([&](DocStore::Key, const Document&) { ++evictions; });
  s.put(1, doc("abc"));
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_EQ(evictions, 0);
}

TEST(DocStoreTest, CorruptFlipsStoredBody) {
  DocStore s(100);
  s.put(1, doc("payload"));
  EXPECT_TRUE(s.corrupt(1));
  EXPECT_NE(s.get(1)->body, "payload");
  EXPECT_FALSE(s.corrupt(99));  // absent key
}

}  // namespace
}  // namespace baps::runtime
