// Tests for the decentralized layered-anonymity protocol: correct peeling,
// endpoint hiding, and tamper behaviour.
#include "runtime/onion.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/assert.hpp"

namespace baps::runtime {
namespace {

struct Relay {
  RelayKeys keys;
  crypto::RsaPrivateKey priv;
};

/// Builds n relays with deterministic keys.
std::vector<Relay> make_relays(std::uint32_t n) {
  std::vector<Relay> relays;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto kp = crypto::generate_rsa_keypair(256, 1000 + i);
    relays.push_back(Relay{RelayKeys{i, kp.pub}, kp.priv});
  }
  return relays;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

class OnionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { relays_ = new std::vector<Relay>(make_relays(4)); }
  static void TearDownTestSuite() {
    delete relays_;
    relays_ = nullptr;
  }
  static std::vector<Relay>* relays_;
};
std::vector<Relay>* OnionTest::relays_ = nullptr;

TEST_F(OnionTest, SingleHopDeliversPayloadToExit) {
  const auto& exit_relay = (*relays_)[2];
  const auto onion =
      build_onion({exit_relay.keys}, bytes_of("hello exit"), 5);
  const auto peeled = peel_onion(onion, exit_relay.priv);
  ASSERT_TRUE(peeled.has_value());
  EXPECT_FALSE(peeled->next.has_value());
  EXPECT_EQ(peeled->blob, bytes_of("hello exit"));
}

TEST_F(OnionTest, ThreeHopPathRoutesAndDelivers) {
  const std::vector<RelayKeys> path = {(*relays_)[0].keys, (*relays_)[2].keys,
                                       (*relays_)[3].keys};
  auto blob = build_onion(path, bytes_of("the payload"), 6);

  // Hop 1 (relay 0): learns only that the next hop is relay 2.
  auto l1 = peel_onion(blob, (*relays_)[0].priv);
  ASSERT_TRUE(l1.has_value());
  ASSERT_TRUE(l1->next.has_value());
  EXPECT_EQ(*l1->next, 2u);

  // Hop 2 (relay 2): learns only that the next hop is relay 3.
  auto l2 = peel_onion(l1->blob, (*relays_)[2].priv);
  ASSERT_TRUE(l2.has_value());
  ASSERT_TRUE(l2->next.has_value());
  EXPECT_EQ(*l2->next, 3u);

  // Exit (relay 3): gets the payload, no further hop.
  auto l3 = peel_onion(l2->blob, (*relays_)[3].priv);
  ASSERT_TRUE(l3.has_value());
  EXPECT_FALSE(l3->next.has_value());
  EXPECT_EQ(l3->blob, bytes_of("the payload"));
}

TEST_F(OnionTest, WrongRelayCannotPeel) {
  const std::vector<RelayKeys> path = {(*relays_)[0].keys, (*relays_)[1].keys};
  const auto blob = build_onion(path, bytes_of("x"), 7);
  // Relays 1..3 cannot open the outer layer meant for relay 0.
  for (std::uint32_t r = 1; r < 4; ++r) {
    EXPECT_FALSE(peel_onion(blob, (*relays_)[r].priv).has_value()) << r;
  }
}

TEST_F(OnionTest, IntermediateLayersRevealNoEndpoints) {
  // The bytes relay 1 handles must not contain the payload in the clear and
  // must not be peelable by the exit relay directly (so the exit cannot
  // learn it was relay 1's predecessor who originated).
  const std::vector<RelayKeys> path = {(*relays_)[1].keys, (*relays_)[3].keys};
  const std::string payload = "SECRET-DOCUMENT-BODY";
  const auto blob = build_onion(path, bytes_of(payload), 8);

  const auto as_string = [](std::span<const std::uint8_t> b) {
    return std::string(b.begin(), b.end());
  };
  EXPECT_EQ(as_string(blob).find(payload), std::string::npos);
  EXPECT_FALSE(peel_onion(blob, (*relays_)[3].priv).has_value());

  const auto l1 = peel_onion(blob, (*relays_)[1].priv);
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(as_string(l1->blob).find(payload), std::string::npos);
}

TEST_F(OnionTest, TamperedBlobIsDropped) {
  const auto blob0 =
      build_onion({(*relays_)[0].keys}, bytes_of("payload"), 9);
  for (std::size_t i = 0; i < blob0.size(); i += 7) {
    auto tampered = blob0;
    tampered[i] = static_cast<std::uint8_t>(tampered[i] ^ 0xFF);
    const auto peeled = peel_onion(tampered, (*relays_)[0].priv);
    // Either dropped outright, or (only for flips inside the payload bytes
    // of the exit layer) delivered with a garbled body — never a crash.
    if (peeled.has_value()) {
      EXPECT_NE(peeled->blob, bytes_of("payload")) << "flip at " << i;
    }
  }
}

TEST_F(OnionTest, TruncatedBlobIsDropped) {
  const auto blob =
      build_onion({(*relays_)[0].keys}, bytes_of("payload"), 10);
  for (const std::size_t keep : {0u, 1u, 2u, 9u, 20u}) {
    if (keep >= blob.size()) continue;
    const std::span<const std::uint8_t> cut(blob.data(), keep);
    EXPECT_FALSE(peel_onion(cut, (*relays_)[0].priv).has_value()) << keep;
  }
}

TEST_F(OnionTest, DifferentSeedsProduceUnlinkableOnions) {
  // Same path, same payload, different session seeds: ciphertexts differ,
  // so repeated requests cannot be linked by content.
  const std::vector<RelayKeys> path = {(*relays_)[0].keys, (*relays_)[1].keys};
  const auto a = build_onion(path, bytes_of("same"), 1);
  const auto b = build_onion(path, bytes_of("same"), 2);
  EXPECT_NE(a, b);
}

TEST_F(OnionTest, EmptyPathRejected) {
  EXPECT_THROW(build_onion({}, bytes_of("x"), 1), baps::InvariantError);
}

TEST_F(OnionTest, EmptyPayloadRoundTrips) {
  const auto blob = build_onion({(*relays_)[0].keys}, {}, 11);
  const auto peeled = peel_onion(blob, (*relays_)[0].priv);
  ASSERT_TRUE(peeled.has_value());
  EXPECT_TRUE(peeled->blob.empty());
}

}  // namespace
}  // namespace baps::runtime
