// FaultPlan unit tests: spec parsing, per-kind stream determinism, and the
// injected/recovered accounting contract.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fault/churn.hpp"
#include "util/assert.hpp"

namespace baps::fault {
namespace {

FaultRates all_at(double rate) {
  FaultRates rates;
  rates.rate.fill(rate);
  return rates;
}

TEST(FaultKindTest, NamesAndRecoverability) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kPeerDisconnect), "peer_disconnect");
  EXPECT_STREQ(fault_kind_name(FaultKind::kProxyRestart), "proxy_restart");
  EXPECT_TRUE(fault_kind_recoverable(FaultKind::kDropFrame));
  EXPECT_TRUE(fault_kind_recoverable(FaultKind::kCorruptFrame));
  EXPECT_FALSE(fault_kind_recoverable(FaultKind::kPeerDepart));
  EXPECT_FALSE(fault_kind_recoverable(FaultKind::kPeerJoin));
}

TEST(FaultRatesTest, ParsesFullSpec) {
  std::string error;
  const auto rates = FaultRates::parse(
      "disconnect=0.1,depart=0.01,join=0.5,slow=0.2,drop=0.05,"
      "corrupt=0.02,restart=0.001,slow_ms=80,slow_budget_ms=40,polite=1,"
      "drop_holders=1",
      &error);
  ASSERT_TRUE(rates.has_value()) << error;
  EXPECT_DOUBLE_EQ(rates->of(FaultKind::kPeerDisconnect), 0.1);
  EXPECT_DOUBLE_EQ(rates->of(FaultKind::kPeerJoin), 0.5);
  EXPECT_DOUBLE_EQ(rates->of(FaultKind::kProxyRestart), 0.001);
  EXPECT_EQ(rates->slow_peer_delay_ms, 80);
  EXPECT_EQ(rates->slow_peer_budget_ms, 40);
  EXPECT_TRUE(rates->polite_departures);
  EXPECT_TRUE(rates->drop_failed_holders);
  EXPECT_TRUE(rates->any());
}

TEST(FaultRatesTest, EmptySpecIsAllZero) {
  std::string error;
  const auto rates = FaultRates::parse("", &error);
  ASSERT_TRUE(rates.has_value()) << error;
  EXPECT_FALSE(rates->any());
}

TEST(FaultRatesTest, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(FaultRates::parse("bogus=0.1", &error).has_value());
  EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
  EXPECT_FALSE(FaultRates::parse("drop=1.5", &error).has_value());
  EXPECT_FALSE(FaultRates::parse("drop=abc", &error).has_value());
  EXPECT_FALSE(FaultRates::parse("noequals", &error).has_value());
}

TEST(FaultPlanTest, SameSeedSameSchedule) {
  FaultPlan a(99, all_at(0.3));
  FaultPlan b(99, all_at(0.3));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.decide(FaultKind::kDropFrame), b.decide(FaultKind::kDropFrame));
    EXPECT_EQ(a.pick(FaultKind::kPeerDepart, 7),
              b.pick(FaultKind::kPeerDepart, 7));
  }
  FaultPlan c(100, all_at(0.3));
  int diverged = 0;
  for (int i = 0; i < 500; ++i) {
    diverged += a.decide(FaultKind::kSlowPeer) != c.decide(FaultKind::kSlowPeer);
  }
  EXPECT_GT(diverged, 0) << "different seeds must not share a schedule";
}

TEST(FaultPlanTest, InterleavingNeverShiftsAKindsStream) {
  // Plan a consults only drop_frame; plan b interleaves every other kind
  // between the drop decisions. The drop schedules must be identical.
  FaultPlan a(7, all_at(0.5));
  FaultPlan b(7, all_at(0.5));
  std::vector<bool> pure, interleaved;
  for (int i = 0; i < 200; ++i) {
    pure.push_back(a.decide(FaultKind::kDropFrame));
    b.decide(FaultKind::kSlowPeer);
    b.decide(FaultKind::kPeerDisconnect);
    b.pick(FaultKind::kPeerJoin, 3);
    interleaved.push_back(b.decide(FaultKind::kDropFrame));
    b.decide(FaultKind::kProxyRestart);
  }
  EXPECT_EQ(pure, interleaved);
}

TEST(FaultPlanTest, ZeroRateNeverFiresButStreamsStayAligned) {
  FaultRates rates = all_at(0.0);
  rates.of(FaultKind::kCorruptFrame) = 0.5;
  FaultPlan mixed(13, rates);
  FaultPlan corrupt_only(13, rates);
  for (int i = 0; i < 300; ++i) {
    // The zero-rate kinds consume their own streams, never the corrupt one.
    EXPECT_FALSE(mixed.decide(FaultKind::kDropFrame));
    EXPECT_FALSE(mixed.should_inject(FaultKind::kSlowPeer));
    EXPECT_EQ(mixed.decide(FaultKind::kCorruptFrame),
              corrupt_only.decide(FaultKind::kCorruptFrame));
  }
  EXPECT_EQ(mixed.injected_total(), 0u);
}

TEST(FaultPlanTest, PickStaysInBounds) {
  FaultPlan plan(3, all_at(1.0));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(plan.pick(FaultKind::kPeerDepart, 5), 5u);
  }
  EXPECT_EQ(plan.pick(FaultKind::kPeerDepart, 1), 0u);
  EXPECT_THROW(plan.pick(FaultKind::kPeerDepart, 0), InvariantError);
}

TEST(FaultPlanTest, RecoveryWindowPromotesPendingOnSuccess) {
  FaultPlan plan(1, all_at(1.0));
  plan.begin_request();
  EXPECT_TRUE(plan.should_inject(FaultKind::kDropFrame));
  EXPECT_TRUE(plan.should_inject(FaultKind::kCorruptFrame));
  EXPECT_EQ(plan.injected(FaultKind::kDropFrame), 1u);
  EXPECT_EQ(plan.recovered(FaultKind::kDropFrame), 0u);
  EXPECT_FALSE(plan.fully_recovered());
  plan.end_request_ok();
  EXPECT_EQ(plan.recovered(FaultKind::kDropFrame), 1u);
  EXPECT_EQ(plan.recovered(FaultKind::kCorruptFrame), 1u);
  EXPECT_TRUE(plan.fully_recovered());
  EXPECT_EQ(plan.injected_total(), plan.recovered_total());
}

TEST(FaultPlanTest, AbandonedRequestLeavesFaultsUnrecovered) {
  FaultPlan plan(1, all_at(1.0));
  plan.begin_request();
  plan.should_inject(FaultKind::kPeerDisconnect);
  // The next request starts before the first ever completed: the pending
  // injection is dropped, not promoted.
  plan.begin_request();
  plan.end_request_ok();
  EXPECT_EQ(plan.injected(FaultKind::kPeerDisconnect), 1u);
  EXPECT_EQ(plan.recovered(FaultKind::kPeerDisconnect), 0u);
  EXPECT_FALSE(plan.fully_recovered());
}

TEST(FaultPlanTest, ChurnKindsAreNotPartOfTheRecoveryContract) {
  FaultPlan plan(1, all_at(1.0));
  plan.begin_request();
  plan.note_injected(FaultKind::kPeerDepart);
  plan.note_injected(FaultKind::kPeerJoin);
  plan.end_request_ok();
  EXPECT_EQ(plan.injected(FaultKind::kPeerDepart), 1u);
  EXPECT_EQ(plan.recovered(FaultKind::kPeerDepart), 0u);
  // Depart/join are membership events; they never block full recovery.
  EXPECT_TRUE(plan.fully_recovered());
}

// --- ChurnModel ------------------------------------------------------------

TEST(ChurnModelTest, SameSeedSameMembershipHistory) {
  ChurnModel a(5, 0.4, 8);
  ChurnModel b(5, 0.4, 8);
  for (std::uint32_t r = 0; r < 2000; ++r) {
    const std::uint32_t requester = r % 8;
    EXPECT_EQ(a.ensure_present(requester), b.ensure_present(requester));
    const auto ea = a.tick(requester);
    const auto eb = b.tick(requester);
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (ea.has_value()) {
      EXPECT_EQ(ea->kind, eb->kind);
      EXPECT_EQ(ea->client, eb->client);
    }
  }
  EXPECT_EQ(a.departed_count(), b.departed_count());
}

TEST(ChurnModelTest, ZeroRateIsInert) {
  ChurnModel m(5, 0.0, 4);
  for (std::uint32_t r = 0; r < 100; ++r) {
    EXPECT_FALSE(m.ensure_present(r % 4));
    EXPECT_FALSE(m.tick(r % 4).has_value());
  }
  EXPECT_EQ(m.departed_count(), 0u);
}

TEST(ChurnModelTest, RequesterNeverDepartsAndStateStaysConsistent) {
  ChurnModel m(11, 1.0, 6);
  for (std::uint32_t r = 0; r < 5000; ++r) {
    const std::uint32_t requester = r % 6;
    m.ensure_present(requester);
    if (const auto ev = m.tick(requester)) {
      if (ev->kind == ChurnModel::Event::Kind::kDepart) {
        EXPECT_NE(ev->client, requester);
        EXPECT_TRUE(m.departed(ev->client));
      } else {
        EXPECT_FALSE(m.departed(ev->client));
      }
    }
    EXPECT_LT(m.departed_count(), m.num_clients());
  }
}

TEST(ChurnModelTest, DepartedRequesterRejoinsOnItsNextRequest) {
  ChurnModel m(2, 1.0, 2);
  // With two clients and rate 1, every tick churns; force client 1 out.
  std::uint32_t victim = 2;
  for (int r = 0; r < 100 && victim == 2; ++r) {
    if (const auto ev = m.tick(0);
        ev.has_value() && ev->kind == ChurnModel::Event::Kind::kDepart) {
      victim = ev->client;
    }
  }
  ASSERT_EQ(victim, 1u);
  ASSERT_TRUE(m.departed(1));
  EXPECT_TRUE(m.ensure_present(1));  // its own request brings it back
  EXPECT_FALSE(m.departed(1));
  EXPECT_FALSE(m.ensure_present(1));
}

}  // namespace
}  // namespace baps::fault
