// §5 overhead estimation, three parts:
//
//  1. Remote-transfer overhead: data-transfer + bus-contention time for
//     remote-browser hits on a 10 Mbps Ethernet with 0.1 s connection setup,
//     as a fraction of the total workload service time. Paper: < 1.2%
//     overall, with contention ≤ 0.12% of the communication time.
//  2. Index update staleness: hit-ratio degradation and message savings as
//     the periodic-update threshold sweeps 1%–50% (the Fan et al. delay
//     rule). Paper: ~0.2–1.7% degradation at the 10% threshold.
//  3. Index storage footprint: the 16-byte-MD5 arithmetic of §5's example
//     plus measured Bloom-summary sizes.
#include "bench_common.hpp"

#include "index/footprint.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  // --- Part 1: remote transfer + contention across all presets -------------
  {
    Table table({"Trace", "Remote Transfers", "Remote Bytes", "Comm Time",
                 "Contention", "Comm/Total Service", "Contention/Comm"});
    for (const trace::Preset preset : trace::all_presets()) {
      const trace::Trace t = bench::load(preset, args);
      const trace::TraceStats stats = trace::compute_stats(t);
      core::RunSpec spec;
      spec.relative_cache_size = 0.10;
      spec.sizing = core::BrowserSizing::kMinimum;
      const sim::Metrics m =
          core::run_one(core::OrgKind::kBrowsersAware, t, stats, spec);
      table.row()
          .cell(trace::preset_name(preset))
          .cell(m.remote_browser_hits)
          .cell(format_bytes(m.remote_transfer_bytes))
          .cell(format_seconds(m.remote_transfer_time_s))
          .cell(format_seconds(m.remote_contention_time_s))
          .cell_percent(m.remote_overhead_fraction(), 3)
          .cell_percent(m.contention_fraction_of_comm(), 3);
    }
    std::cout << "Section 5, part 1: remote-browser communication overhead "
                 "(paper: comm/total < 1.2%, contention/comm <= 0.12%)\n";
    bench::emit(table, args);
  }

  // --- Part 2: index update staleness sweep --------------------------------
  {
    const trace::Trace t = bench::load(trace::Preset::kNlanrUc, args);
    const trace::TraceStats stats = trace::compute_stats(t);
    core::RunSpec spec;
    spec.relative_cache_size = 0.10;
    spec.sizing = core::BrowserSizing::kMinimum;
    const sim::Metrics exact =
        core::run_one(core::OrgKind::kBrowsersAware, t, stats, spec);

    Table table({"Update Threshold", "Hit Ratio", "Degradation (pts)",
                 "False Forwards", "Index Messages", "Message Savings"});
    table.row()
        .cell("immediate")
        .cell_percent(exact.hit_ratio())
        .cell(0.0, 3)
        .cell(exact.false_forwards)
        .cell(exact.index_messages)
        .cell("1.0x");
    for (const double threshold : {0.01, 0.05, 0.10, 0.25, 0.50}) {
      core::RunSpec lazy = spec;
      lazy.index_mode = sim::IndexMode::kPeriodic;
      lazy.index_threshold = threshold;
      const sim::Metrics m =
          core::run_one(core::OrgKind::kBrowsersAware, t, stats, lazy);
      const double savings =
          m.index_messages > 0
              ? static_cast<double>(exact.index_messages) /
                    static_cast<double>(m.index_messages)
              : 0.0;
      table.row()
          .cell(std::to_string(static_cast<int>(threshold * 100)) + "%")
          .cell_percent(m.hit_ratio())
          .cell(100.0 * (exact.hit_ratio() - m.hit_ratio()), 3)
          .cell(m.false_forwards)
          .cell(m.index_messages)
          .cell(std::to_string(savings).substr(0, 5) + "x");
    }
    std::cout << "\nSection 5, part 2: index staleness sweep, NLANR-uc "
                 "(paper: 10% threshold costs ~0.2-1.7% hit ratio)\n";
    bench::emit(table, args);
  }

  // --- Part 3: index storage footprint --------------------------------------
  {
    index::FootprintParams p;  // the paper's example: 100 clients, 8MB caches
    const index::FootprintEstimate e = index::estimate_footprint(p);
    Table table({"Quantity", "Value"});
    table.row().cell("clients").cell(std::uint64_t{p.num_clients});
    table.row().cell("browser cache").cell(format_bytes(p.browser_cache_bytes));
    table.row().cell("avg document").cell(format_bytes(p.avg_doc_bytes));
    table.row().cell("pages per browser").cell(e.docs_per_browser);
    table.row().cell("total index entries").cell(e.total_entries);
    table.row()
        .cell("exact index (16B MD5 + meta)")
        .cell(format_bytes(e.exact_index_bytes));
    table.row()
        .cell("bloom-compressed index")
        .cell(format_bytes(e.bloom_index_bytes));
    std::cout << "\nSection 5, part 3: browser index storage footprint\n";
    bench::emit(table, args);
  }
  return 0;
}
