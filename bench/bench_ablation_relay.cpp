// Ablation (the paper's two §2 delivery alternatives): direct client→client
// forwarding vs fetch-and-forward through the proxy. Hit behaviour is
// identical; the relay costs a second LAN hop per remote hit (double
// transfer time and bus occupancy) in exchange for the stronger centralized
// anonymity of §6.2.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::Trace t = bench::load(trace::Preset::kNlanrUc, args);
  const trace::TraceStats stats = trace::compute_stats(t);

  Table table({"Delivery", "Hit Ratio", "Remote Hits", "Remote Bytes Moved",
               "Comm Time", "Contention", "Comm/Total Service"});
  for (const bool relay : {false, true}) {
    core::RunSpec spec;
    spec.relative_cache_size = 0.10;
    spec.sizing = core::BrowserSizing::kMinimum;
    spec.relay_via_proxy = relay;
    const sim::Metrics m =
        core::run_one(core::OrgKind::kBrowsersAware, t, stats, spec);
    table.row()
        .cell(relay ? "proxy relay (2 hops)" : "direct forward (1 hop)")
        .cell_percent(m.hit_ratio())
        .cell(m.remote_browser_hits)
        .cell(format_bytes(m.remote_transfer_bytes))
        .cell(format_seconds(m.remote_transfer_time_s))
        .cell(format_seconds(m.remote_contention_time_s))
        .cell_percent(m.remote_overhead_fraction(), 3);
  }
  std::cout << "Ablation: the two remote-delivery alternatives of Section 2, "
               "NLANR-uc @ 10%\n";
  bench::emit(table, args);
  std::cout << "Hit ratios are identical by construction; the relay doubles "
               "LAN cost per\nremote hit but keeps peers mutually hidden "
               "without extra machinery.\n";
  return 0;
}
