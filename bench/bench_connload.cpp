// bench_connload — connection-scale load for the epoll proxy: drives N
// concurrent TCP clients (default 10000) through a baps_proxyd, each doing
// Hello/HelloAck then `--reps` StatsRequest/StatsResponse frame roundtrips,
// then HOLDING its connection open until every client has finished — so the
// proxy really is carrying N established sessions at once, not N serial
// ones. Reports accept rate and p50/p99/p999 frame-roundtrip latency as
// baps.report.v1 gauges (validated by report_check, visible in baps_top).
//
// The client engine is a single-threaded epoll loop of its own: non-blocking
// connects ramped in batches (so the listener backlog is never overrun),
// per-connection state machines with incremental frame decode — the same
// discipline as the server side, exercised from the other end of the wire.
//
// Against an external daemon (the 10k-connection setting — two processes,
// each holding N fds):
//   baps_proxyd --event-driven --port 4160 &
//   bench_connload --port 4160 --connections 10000
// Self-contained smoke (in-process proxy, both ends' fds in one process —
// keep N a few thousand or less):
//   bench_connload --connections 500 --server epoll
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "netio/netio_metrics.hpp"
#include "netio/socket.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/timer.hpp"
#include "runtime/proxy_server.hpp"
#include "util/args.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/messages.hpp"

namespace {

using namespace baps;

struct Conn {
  enum class State {
    kConnecting,
    kAwaitHelloAck,
    kAwaitStats,
    kHolding,
    kDone,
    kFailed,
  };
  int fd = -1;
  State state = State::kConnecting;
  std::string rbuf;
  std::size_t roff = 0;
  std::string wbuf;
  std::size_t woff = 0;
  std::uint32_t reps_left = 0;
  double t_send = 0.0;
  bool registered_out = false;
};

struct Engine {
  std::string host;
  std::uint16_t port = 0;
  std::size_t target = 0;
  std::size_t ramp_batch = 0;
  std::uint32_t reps = 1;
  double deadline = 0.0;

  int ep = -1;
  std::vector<Conn> conns;
  std::size_t started = 0;
  std::size_t connecting = 0;
  std::size_t established_total = 0;
  std::size_t active = 0;
  std::size_t peak_active = 0;
  std::size_t finished = 0;  // kDone + kFailed
  std::size_t failures = 0;
  std::vector<double> latencies;
  double t_first_connect = 0.0;
  double t_last_established = 0.0;

  bool done() const { return finished >= target; }
  bool all_roundtrips_done() const {
    return finished + holding() >= target;
  }
  std::size_t holding_count = 0;
  std::size_t holding() const { return holding_count; }
};

void set_epoll(Engine& e, Conn& c, std::size_t idx, bool want_out) {
  if (c.registered_out == want_out) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
  ev.data.u64 = idx;
  ::epoll_ctl(e.ep, EPOLL_CTL_MOD, c.fd, &ev);
  c.registered_out = want_out;
}

void finish(Engine& e, Conn& c, bool failed) {
  if (c.state == Conn::State::kDone || c.state == Conn::State::kFailed) return;
  if (c.state == Conn::State::kConnecting) {
    e.connecting--;
  } else {
    e.active--;
  }
  if (c.state == Conn::State::kHolding) e.holding_count--;
  c.state = failed ? Conn::State::kFailed : Conn::State::kDone;
  if (failed) e.failures++;
  e.finished++;
  if (c.fd >= 0) {
    ::epoll_ctl(e.ep, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
  }
}

void queue_frame(Engine& e, Conn& c, std::size_t idx, wire::FrameKind kind,
                 const std::string& payload) {
  c.wbuf.append(wire::encode_frame(kind, payload));
  // Eager flush; leftovers wait for EPOLLOUT.
  while (c.woff < c.wbuf.size()) {
    const ssize_t rc = ::send(c.fd, c.wbuf.data() + c.woff,
                              c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (rc > 0) {
      c.woff += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (rc < 0 && errno == EINTR) continue;
    finish(e, c, /*failed=*/true);
    return;
  }
  if (c.woff == c.wbuf.size()) {
    c.wbuf.clear();
    c.woff = 0;
    set_epoll(e, c, idx, false);
  } else {
    set_epoll(e, c, idx, true);
  }
}

void start_roundtrip(Engine& e, Conn& c, std::size_t idx) {
  c.t_send = obs::monotonic_seconds();
  c.state = Conn::State::kAwaitStats;
  queue_frame(e, c, idx, wire::StatsRequest::kKind,
              wire::encode(wire::StatsRequest{}));
}

void on_frame(Engine& e, Conn& c, std::size_t idx, const wire::Frame& frame) {
  switch (c.state) {
    case Conn::State::kAwaitHelloAck: {
      wire::HelloAck ack;
      if (frame.kind != wire::HelloAck::kKind ||
          !wire::decode(frame.payload, &ack)) {
        finish(e, c, /*failed=*/true);
        return;
      }
      start_roundtrip(e, c, idx);
      return;
    }
    case Conn::State::kAwaitStats: {
      wire::StatsResponse stats;
      if (frame.kind != wire::StatsResponse::kKind ||
          !wire::decode(frame.payload, &stats)) {
        finish(e, c, /*failed=*/true);
        return;
      }
      e.latencies.push_back(obs::monotonic_seconds() - c.t_send);
      if (--c.reps_left > 0) {
        start_roundtrip(e, c, idx);
      } else {
        // Hold the established session open until the whole fleet is done —
        // this is what makes "peak concurrent connections" a real claim.
        c.state = Conn::State::kHolding;
        e.holding_count++;
      }
      return;
    }
    default:
      finish(e, c, /*failed=*/true);  // unexpected traffic
      return;
  }
}

void read_drain(Engine& e, Conn& c, std::size_t idx) {
  char buf[16 * 1024];
  for (;;) {
    const ssize_t rc = ::recv(c.fd, buf, sizeof(buf), 0);
    if (rc > 0) {
      c.rbuf.append(buf, static_cast<std::size_t>(rc));
      for (;;) {
        const std::string_view view(c.rbuf.data() + c.roff,
                                    c.rbuf.size() - c.roff);
        if (view.empty()) break;
        wire::DecodeResult r = wire::decode_frame(view);
        if (r.status == wire::DecodeStatus::kNeedMore) break;
        if (r.status != wire::DecodeStatus::kOk) {
          finish(e, c, /*failed=*/true);
          return;
        }
        c.roff += r.consumed;
        on_frame(e, c, idx, r.frame);
        if (c.fd < 0) return;
      }
      if (c.roff > 0 && c.roff == c.rbuf.size()) {
        c.rbuf.clear();
        c.roff = 0;
      }
      continue;
    }
    if (rc == 0) {
      finish(e, c, c.state != Conn::State::kHolding);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    finish(e, c, /*failed=*/true);
    return;
  }
}

void flush_writes(Engine& e, Conn& c, std::size_t idx) {
  while (c.woff < c.wbuf.size()) {
    const ssize_t rc = ::send(c.fd, c.wbuf.data() + c.woff,
                              c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (rc > 0) {
      c.woff += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (rc < 0 && errno == EINTR) continue;
    finish(e, c, /*failed=*/true);
    return;
  }
  c.wbuf.clear();
  c.woff = 0;
  set_epoll(e, c, idx, false);
}

void start_connect(Engine& e) {
  const std::size_t idx = e.started;
  Conn& c = e.conns[idx];
  e.started++;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    c.state = Conn::State::kFailed;
    e.failures++;
    e.finished++;
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(e.port);
  ::inet_pton(AF_INET, e.host.c_str(), &addr.sin_addr);
  c.fd = fd;
  c.reps_left = e.reps;
  if (e.t_first_connect == 0.0) e.t_first_connect = obs::monotonic_seconds();
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    c.fd = -1;
    c.state = Conn::State::kFailed;
    e.failures++;
    e.finished++;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.u64 = idx;
  c.registered_out = true;
  ::epoll_ctl(e.ep, EPOLL_CTL_ADD, fd, &ev);
  e.connecting++;
}

void on_connected(Engine& e, Conn& c, std::size_t idx) {
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
      so_error != 0) {
    finish(e, c, /*failed=*/true);
    return;
  }
  e.connecting--;
  e.active++;
  e.established_total++;
  e.peak_active = std::max(e.peak_active, e.active);
  e.t_last_established = obs::monotonic_seconds();
  c.state = Conn::State::kAwaitHelloAck;
  // Observer sessions register nothing at the proxy: 10k of them cost the
  // proxy only their connection state, which is exactly what this bench
  // measures.
  wire::Hello hello;
  hello.client_id = wire::kObserverClientId;
  set_epoll(e, c, idx, false);
  queue_frame(e, c, idx, wire::Hello::kKind, wire::encode(hello));
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t connections = 10000;
  std::uint64_t ramp_batch = 500;
  std::uint64_t reps = 1;
  std::uint64_t max_seconds = 120;
  std::string server_mode = "epoll";
  std::uint64_t min_peak = 0;
  std::string metrics_out;

  util::ArgParser parser(
      "bench_connload",
      "Drive N concurrent connections through a BAPS proxy and report "
      "accept rate and frame-roundtrip latency quantiles.");
  parser.option("--host", &host, "H", "proxy host (default 127.0.0.1)")
      .option("--port", &port, "P",
              "proxy port; 0 (default) spawns an in-process proxy — use an "
              "external baps_proxyd for the full 10k run so each process "
              "keeps its fd table to itself")
      .option("--connections", &connections, "N",
              "concurrent connections to establish (default 10000)")
      .option("--ramp-batch", &ramp_batch, "N",
              "connects in flight at once during ramp (default 500, keeps "
              "the listener backlog under somaxconn)")
      .option("--reps", &reps, "N",
              "StatsRequest roundtrips per connection (default 1)")
      .option("--max-seconds", &max_seconds, "S",
              "abort the run after S seconds (default 120)")
      .option("--server", &server_mode, "MODE",
              "in-process proxy transport when --port 0: epoll | blocking "
              "(default epoll)")
      .option("--min-peak", &min_peak, "N",
              "exit nonzero unless peak concurrent connections reaches N "
              "(CI gate; default 0: report only)")
      .option("--metrics-out", &metrics_out, "FILE",
              "write a baps.report.v1 JSON report");

  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  if (connections == 0 || reps == 0) {
    std::cerr << "--connections and --reps must be at least 1\n";
    return 2;
  }
  if (server_mode != "epoll" && server_mode != "blocking") {
    std::cerr << "--server must be epoll or blocking\n";
    return 2;
  }

  // Both ends in one process need 2 fds per connection plus slack.
  netio::raise_fd_limit(port == 0 ? connections * 2 + 256
                                  : connections + 256);
  netio::register_netio_metric_families();

  std::unique_ptr<runtime::ProxyServer> local;
  if (port == 0) {
    runtime::ProxyServer::Params params;
    params.core.num_clients = 4;
    params.event_driven = server_mode == "epoll";
    if (!params.event_driven) {
      // The blocking pool parks one worker per held session: without a
      // matching pool the holding fleet would just sit out --max-seconds.
      // (That a thread-per-connection pool is what bounds the blocking
      // transport is precisely the point of this bench.)
      params.net.worker_threads = connections + 2;
    }
    local = std::make_unique<runtime::ProxyServer>(params);
    if (!local->start(&error)) {
      std::cerr << "cannot start in-process proxy: " << error << "\n";
      return 1;
    }
    port = local->port();
  }

  Engine e;
  e.host = host;
  e.port = port;
  e.target = connections;
  e.ramp_batch = ramp_batch;
  e.reps = static_cast<std::uint32_t>(reps);
  e.conns.resize(e.target);
  e.latencies.reserve(e.target * reps);
  e.ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (e.ep < 0) {
    std::cerr << "epoll_create1: " << std::strerror(errno) << "\n";
    return 1;
  }

  const double t_start = obs::monotonic_seconds();
  e.deadline = t_start + static_cast<double>(max_seconds);
  std::vector<epoll_event> events(4096);
  bool released = false;
  while (!e.done()) {
    const double now = obs::monotonic_seconds();
    if (now >= e.deadline) break;
    while (e.started < e.target && e.connecting < e.ramp_batch) {
      start_connect(e);
    }
    // Everyone connected and measured: release the holding fleet.
    if (!released && e.started == e.target && e.all_roundtrips_done()) {
      released = true;
      for (std::size_t i = 0; i < e.conns.size(); ++i) {
        Conn& c = e.conns[i];
        if (c.state == Conn::State::kHolding) {
          queue_frame(e, c, i, wire::Bye::kKind, wire::encode(wire::Bye{}));
          if (c.fd >= 0) finish(e, c, /*failed=*/false);
        }
      }
      continue;
    }
    const int n = ::epoll_wait(e.ep, events.data(),
                               static_cast<int>(events.size()), 50);
    if (n < 0 && errno != EINTR) break;
    const std::size_t nev = static_cast<std::size_t>(std::max(n, 0));
    for (std::size_t i = 0; i < nev; ++i) {
      const std::size_t idx = static_cast<std::size_t>(events[i].data.u64);
      Conn& c = e.conns[idx];
      if (c.fd < 0) continue;
      const std::uint32_t evs = events[i].events;
      if (c.state == Conn::State::kConnecting) {
        if ((evs & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
          on_connected(e, c, idx);
        }
        continue;
      }
      if ((evs & EPOLLOUT) != 0) flush_writes(e, c, idx);
      if (c.fd >= 0 && (evs & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
        read_drain(e, c, idx);
      }
    }
  }
  const double elapsed = obs::monotonic_seconds() - t_start;
  // Whatever is still open at the deadline failed to finish.
  for (std::size_t i = 0; i < e.conns.size(); ++i) {
    if (e.conns[i].fd >= 0) finish(e, e.conns[i], /*failed=*/true);
  }
  ::close(e.ep);
  if (local != nullptr) local->stop();

  std::sort(e.latencies.begin(), e.latencies.end());
  const double p50 = quantile(e.latencies, 0.50);
  const double p99 = quantile(e.latencies, 0.99);
  const double p999 = quantile(e.latencies, 0.999);
  const double ramp_span =
      e.t_last_established > e.t_first_connect
          ? e.t_last_established - e.t_first_connect
          : elapsed;
  const double accept_rate =
      ramp_span > 0.0 ? static_cast<double>(e.established_total) / ramp_span
                      : 0.0;

  auto& reg = obs::Registry::global();
  reg.gauge("connload_connections_target")
      .set(static_cast<double>(e.target));
  reg.gauge("connload_connections_peak")
      .set(static_cast<double>(e.peak_active));
  reg.gauge("connload_accept_rate_per_second").set(accept_rate);
  reg.counter("connload_established_total").inc(e.established_total);
  reg.counter("connload_connect_failures_total").inc(e.failures);
  reg.counter("connload_roundtrips_total").inc(e.latencies.size());
  reg.gauge("connload_roundtrip_quantile_seconds", {{"q", "p50"}}).set(p50);
  reg.gauge("connload_roundtrip_quantile_seconds", {{"q", "p99"}}).set(p99);
  reg.gauge("connload_roundtrip_quantile_seconds", {{"q", "p999"}}).set(p999);
  auto& hist = reg.histogram("connload_roundtrip_seconds", -7.0, 3.0, 50,
                             obs::HistScale::kLog10);
  for (const double v : e.latencies) hist.observe(v);

  std::cout << "connload: target=" << e.target << " peak=" << e.peak_active
            << " established=" << e.established_total
            << " failures=" << e.failures
            << " roundtrips=" << e.latencies.size()
            << " accept_rate=" << accept_rate << "/s"
            << " p50=" << p50 * 1e3 << "ms"
            << " p99=" << p99 * 1e3 << "ms"
            << " p999=" << p999 * 1e3 << "ms"
            << " elapsed=" << elapsed << "s\n";

  if (!metrics_out.empty()) {
    const bool ok = obs::ReportBuilder("bench_connload")
                        .set_title("concurrent connection load")
                        .set_args(argc, argv)
                        .set_registry(reg.snapshot())
                        .write(metrics_out, &error);
    if (!ok) {
      std::cerr << "cannot write " << metrics_out << ": " << error << "\n";
      return 1;
    }
    std::cerr << "wrote " << metrics_out << "\n";
  }
  if (min_peak != 0 && e.peak_active < min_peak) {
    std::cerr << "FAIL: peak concurrent connections " << e.peak_active
              << " < required " << min_peak << "\n";
    return 1;
  }
  return 0;
}
