// Ablation (workload-model design evidence): where does sharable browser
// locality come from? Sweeping the generator's mean browsing-session length
// shows that bursty clients — whose browser caches freeze during idle
// periods while the proxy churns — are what leaves documents in browser
// caches after the proxy has replaced them. With iid clients (session = 1)
// browser recency is a subset of proxy recency and remote hits nearly
// vanish; the paper's "different replacement pace" argument, measured.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  trace::GeneratorParams gp = trace::preset_params(trace::Preset::kNlanrUc);
  if (args.scale < 1.0) {
    gp.num_requests = static_cast<std::uint64_t>(
        static_cast<double>(gp.num_requests) * args.scale);
    gp.shared_docs = static_cast<trace::DocId>(
        static_cast<double>(gp.shared_docs) * args.scale);
    gp.private_docs_per_client = static_cast<trace::DocId>(
        static_cast<double>(gp.private_docs_per_client) * args.scale);
  }

  Table table({"Mean Session Length", "BAPS Hit", "Hierarchy Hit",
               "Gain (pts)", "Remote Hits", "Remote Hit Share"});
  for (const double session : {1.0, 5.0, 20.0, 40.0, 100.0, 400.0}) {
    gp.session_mean_requests = session;
    const trace::Trace t = trace::generate_trace("sessions", gp, 777);
    const trace::TraceStats stats = trace::compute_stats(t);
    core::RunSpec spec;
    spec.relative_cache_size = 0.10;
    spec.sizing = core::BrowserSizing::kMinimum;
    const sim::Metrics baps_m =
        core::run_one(core::OrgKind::kBrowsersAware, t, stats, spec);
    const sim::Metrics pal_m = core::run_one(
        core::OrgKind::kProxyAndLocalBrowser, t, stats, spec);
    table.row()
        .cell(session, 0)
        .cell_percent(baps_m.hit_ratio())
        .cell_percent(pal_m.hit_ratio())
        .cell(100.0 * (baps_m.hit_ratio() - pal_m.hit_ratio()), 2)
        .cell(baps_m.remote_browser_hits)
        .cell_percent(static_cast<double>(baps_m.remote_browser_hits) /
                      static_cast<double>(baps_m.hits.total()));
  }
  std::cout << "Ablation: browsing-session burstiness vs browsers-aware "
               "gain (NLANR-uc shape @ 10%)\n";
  bench::emit(table, args);
  return 0;
}
