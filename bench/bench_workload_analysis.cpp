// Workload characterization of the five presets: the published properties
// of the paper's traces (Zipf-like popularity, strong temporal locality,
// substantial cross-client sharing) measured on our stand-ins. This is the
// calibration evidence behind the Table 1 substitution (DESIGN.md §2).
#include "bench_common.hpp"

#include "trace/analysis.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Table table({"Trace", "Fitted Zipf alpha", "Top-1% Doc Mass",
               "Median Stack Distance", "Cold Miss %", "Shared Docs %",
               "Shared Request %", "Mean Clients/Doc"});
  for (const trace::Preset preset : trace::all_presets()) {
    const trace::Trace t = bench::load(preset, args);
    const trace::PopularityCurve pop = trace::popularity_of(t);
    const trace::StackDistanceHistogram sd = trace::stack_distances_of(t);
    const trace::SharingStats sh = trace::sharing_of(t);
    table.row()
        .cell(trace::preset_name(preset))
        .cell(pop.fitted_zipf_alpha(), 3)
        .cell_percent(pop.head_mass(0.01))
        .cell(sd.median_distance(), 0)
        .cell_percent(static_cast<double>(sd.cold_misses) /
                      static_cast<double>(t.size()))
        .cell_percent(sh.shared_doc_fraction())
        .cell_percent(sh.shared_request_fraction())
        .cell(sh.mean_clients_per_doc, 2);
  }
  std::cout << "Workload characterization of the Table 1 presets\n";
  bench::emit(table, args);
  std::cout << "\nReference points: proxy traces of the era fit Zipf alpha "
               "~0.6-0.9; the top 1%\nof documents draw a double-digit share "
               "of requests; a large fraction of\nrequests touch documents "
               "multiple clients ask for (the sharable locality the\n"
               "browsers-aware proxy harvests).\n";
  return 0;
}
