// Ablation (beyond the paper): compressing the browser index with per-client
// counting Bloom filters (Summary Cache style). Sweeps the target
// false-positive rate and reports index memory against the measured
// false-forward rate, replaying the NLANR-uc browsers' cache contents.
#include <unordered_set>

#include "bench_common.hpp"
#include "index/footprint.hpp"
#include "index/summary_index.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::Trace t = bench::load(trace::Preset::kNlanrUc, args);
  const trace::TraceStats stats = trace::compute_stats(t);

  // Replay browser caches (minimum sizing at the 10% point) to get a
  // realistic per-client population, mirroring what BAPS would index.
  const std::uint64_t proxy_bytes = sim::proxy_cache_bytes_for(stats, 0.10);
  const std::uint64_t browser_bytes =
      sim::min_browser_cache_bytes(proxy_bytes, stats.num_clients);
  std::vector<cache::ObjectCache> browsers;
  browsers.reserve(stats.num_clients);
  for (std::uint32_t c = 0; c < stats.num_clients; ++c) {
    browsers.emplace_back(browser_bytes, cache::PolicyKind::kLru);
  }
  for (const trace::Request& r : t.requests()) {
    cache::ObjectCache& b = browsers[r.client];
    if (const auto s = b.peek_size(r.doc)) {
      if (*s != r.size) {
        b.erase(r.doc);
        b.insert(r.doc, r.size);
      } else {
        b.touch(r.doc);
      }
    } else {
      b.insert(r.doc, r.size);
    }
  }

  std::uint64_t exact_entries = 0;
  std::uint64_t max_per_client = 0;
  for (const auto& b : browsers) {
    exact_entries += b.count();
    max_per_client = std::max<std::uint64_t>(max_per_client, b.count());
  }
  const std::uint64_t exact_bytes = exact_entries * (16 + 4 + 4);

  Table table({"Target FP Rate", "Index Memory", "vs Exact Index",
               "Measured False-Forward Rate"});
  table.row().cell("exact (16B MD5)").cell(format_bytes(exact_bytes))
      .cell("1.00x").cell("0.00%");
  for (const double fp : {0.10, 0.03, 0.01, 0.001}) {
    index::SummaryIndex summary(stats.num_clients,
                                std::max<std::uint64_t>(1, max_per_client),
                                fp);
    std::vector<std::unordered_set<trace::DocId>> truth(stats.num_clients);
    for (std::uint32_t c = 0; c < stats.num_clients; ++c) {
      browsers[c].for_each([&](trace::DocId doc, std::uint64_t) {
        summary.add(c, doc);
        truth[c].insert(doc);
      });
    }
    // Probe: for each request, ask the summary for a candidate holder and
    // check it against ground truth.
    std::uint64_t probes = 0, false_forwards = 0;
    for (const trace::Request& r : t.requests()) {
      if (const auto cand = summary.find_candidate(r.doc, r.client)) {
        ++probes;
        if (!truth[*cand].contains(r.doc)) ++false_forwards;
      }
    }
    const double rate = probes
                            ? static_cast<double>(false_forwards) /
                                  static_cast<double>(probes)
                            : 0.0;
    const double ratio = static_cast<double>(summary.byte_size()) /
                         static_cast<double>(exact_bytes);
    table.row()
        .cell(std::to_string(fp).substr(0, 5))
        .cell(format_bytes(summary.byte_size()))
        .cell(std::to_string(ratio).substr(0, 4) + "x")
        .cell_percent(rate);
  }
  std::cout << "Ablation: Bloom-compressed browser index, NLANR-uc @ 10% "
               "(memory vs false forwards)\n";
  bench::emit(table, args);

  // Full-simulation comparison: BAPS with the exact index vs the Bloom
  // summary in the loop (false forwards now cost real probes).
  Table sim_table({"Index", "Hit Ratio", "Remote Hits", "False Forwards",
                   "Index Messages"});
  for (const bool bloom : {false, true}) {
    core::RunSpec spec;
    spec.relative_cache_size = 0.10;
    spec.sizing = core::BrowserSizing::kMinimum;
    if (bloom) {
      spec.index_kind = sim::IndexKind::kBloomSummary;
      spec.bloom_expected_docs_per_client =
          std::max<std::uint64_t>(16, max_per_client);
      spec.bloom_target_fp = 0.001;
    }
    const sim::Metrics m =
        core::run_one(core::OrgKind::kBrowsersAware, t, stats, spec);
    sim_table.row()
        .cell(bloom ? "bloom summary (fp 0.1%)" : "exact (16B MD5)")
        .cell_percent(m.hit_ratio())
        .cell(m.remote_browser_hits)
        .cell(m.false_forwards)
        .cell(m.index_messages);
  }
  std::cout << "\nFull-simulation comparison (browsers-aware organization):\n";
  bench::emit(sim_table, args);
  return 0;
}
