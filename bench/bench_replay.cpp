// Trace-replay throughput harness for the flat-memory hot path.
//
// Replays the BU-95 preset end to end through all five organizations and
// reports requests/second per organization. Each organization is timed
// --reps times and the best run wins: single-core containers time noisily,
// and the minimum is the measurement least polluted by scheduler
// interference. The simulated Metrics are emitted as a one-point sweep in
// the baps.report.v1 report (so report_check recomputes every ratio), and
// throughput lands in the registry as replay_requests_per_second{org=...}
// gauges, which report_check validates as a family. BENCH_hotpath.json at
// the repo root records the committed history of these numbers.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  bench::BenchArgs args;
  args.argc = argc;
  args.argv = argv;
  std::uint64_t reps = 5;
  util::ArgParser parser(argv[0]);
  parser.flag("--csv", &args.csv, "emit CSV instead of an aligned table")
      .option("--scale", &args.scale, "F",
              "shrink the preset trace by F in (0,1]")
      .option("--metrics-out", &args.metrics_out, "FILE",
              "write a baps.report.v1 JSON report of the runs")
      .option("--reps", &reps, "N",
              "time N replays per organization and keep the best")
      .option("--churn-rate", &args.churn_rate, "P",
              "per-request client churn probability in [0,1] (default 0)")
      .option("--churn-seed", &args.churn_seed, "S",
              "seed for the churn event stream");
  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  if (args.scale <= 0.0 || args.scale > 1.0) {
    std::cerr << "--scale must be in (0,1]\n";
    return 2;
  }
  if (reps == 0) {
    std::cerr << "--reps must be >= 1\n";
    return 2;
  }
  if (args.churn_rate < 0.0 || args.churn_rate > 1.0) {
    std::cerr << "--churn-rate must be in [0,1]\n";
    return 2;
  }

  obs::PhaseTimers phases;
  trace::Trace t;
  {
    const auto scope = phases.scope("load_trace");
    t = bench::load(trace::Preset::kBu95, args);
  }
  const trace::TraceStats stats = trace::compute_stats(t);
  core::RunSpec spec;  // paper defaults: LRU, minimum browser sizing, 10%
  spec.churn_rate = args.churn_rate;
  spec.churn_seed = args.churn_seed;
  const sim::SimConfig cfg = core::build_config(stats, spec);

  core::CacheSizePoint point;
  point.relative_cache_size = spec.relative_cache_size;

  Table table(
      {"Organization", "Requests", "Best Seconds", "Requests/s", "Hit Ratio"});
  {
    const auto scope = phases.scope("replay");
    for (const core::OrgKind kind : sim::kAllOrganizations) {
      double best_secs = 0.0;
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        // Construction (including the capacity reservations) counts as part
        // of the replay: it is work a fresh simulation always pays.
        // run_organization dispatches to the concrete organization once, so
        // the per-request loop is free of virtual calls.
        const double start = obs::monotonic_seconds();
        const sim::Metrics m = sim::run_organization(kind, cfg, t);
        const double secs = obs::monotonic_seconds() - start;
        if (rep == 0 || secs < best_secs) best_secs = secs;
        if (rep + 1 == reps) point.by_org.emplace(kind, m);
      }
      const double rps = static_cast<double>(t.size()) / best_secs;
      obs::Registry::global()
          .gauge("replay_requests_per_second", {{"org", sim::org_name(kind)}})
          .set(rps);
      const sim::Metrics& m = point.by_org.at(kind);
      table.row()
          .cell(sim::org_name(kind))
          .cell(static_cast<std::uint64_t>(t.size()))
          .cell(best_secs, 4)
          .cell(rps, 0)
          .cell_percent(m.hit_ratio());
    }
  }

  std::cout << "Trace-replay throughput, " << trace::preset_name(trace::Preset::kBu95)
            << ", best of " << reps << " run(s), default RunSpec\n";
  bench::emit(table, args);
  bench::write_report(args, "bench_replay", "Trace-replay throughput, BU-95",
                      t, {point}, phases);
  return 0;
}
