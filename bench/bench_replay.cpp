// Trace-replay throughput harness for the flat-memory hot path.
//
// Replays the BU-95 preset end to end through all five organizations and
// reports requests/second per organization. Each organization is timed
// --reps times and the best run wins: single-core containers time noisily,
// and the minimum is the measurement least polluted by scheduler
// interference. The simulated Metrics are emitted as a one-point sweep in
// the baps.report.v1 report (so report_check recomputes every ratio), and
// throughput lands in the registry as replay_requests_per_second{org=...}
// gauges plus replay_latency_quantile_seconds{org=...,q=p50|p99} from the
// simulated latency distribution, which report_check validates as families.
// BENCH_hotpath.json at the repo root records the committed history of
// these numbers.
//
// --overhead-guard PCT re-times the hot organization with a sampling-off
// tracer paying one root-span check per request — the exact cost a rate-0
// tracer adds to the runtime engine — and fails unless the simulated
// metrics stay bit-identical and the throughput regression stays under
// PCT percent. CI runs this to keep tracing free when it is off.
// --store-dir DIR adds a disk-tier replay phase: the same trace pushed
// through the runtime two-tier object store (RAM DocStore + durable slab
// segments under DIR), publishing the store_* metric family and a
// store_replay_requests_per_second gauge so the durable tier's throughput is
// tracked alongside the simulated organizations.
#include <algorithm>

#include "bench_common.hpp"
#include "obs/span.hpp"
#include "store/tiered_store.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  bench::BenchArgs args;
  args.argc = argc;
  args.argv = argv;
  std::uint64_t reps = 5;
  double overhead_guard = 0.0;
  std::string store_dir;
  std::uint64_t store_capacity = 16 << 20;
  std::uint64_t store_ram = 256 << 10;
  util::ArgParser parser(argv[0]);
  parser.flag("--csv", &args.csv, "emit CSV instead of an aligned table")
      .option("--overhead-guard", &overhead_guard, "PCT",
              "fail if a sampling-off tracer costs more than PCT percent "
              "throughput (default 0: guard off)")
      .option("--scale", &args.scale, "F",
              "shrink the preset trace by F in (0,1]")
      .option("--metrics-out", &args.metrics_out, "FILE",
              "write a baps.report.v1 JSON report of the runs")
      .option("--reps", &reps, "N",
              "time N replays per organization and keep the best")
      .option("--churn-rate", &args.churn_rate, "P",
              "per-request client churn probability in [0,1] (default 0)")
      .option("--churn-seed", &args.churn_seed, "S",
              "seed for the churn event stream")
      .option("--store-dir", &store_dir, "DIR",
              "also replay through the runtime disk tier rooted at DIR")
      .bytes("--store-capacity", &store_capacity, "BYTES",
              "disk tier capacity for --store-dir, k/m/g ok (default 16m)")
      .bytes("--store-ram", &store_ram, "BYTES",
              "RAM tier in front of --store-dir, k/m/g ok (default 256k)");
  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  if (args.scale <= 0.0 || args.scale > 1.0) {
    std::cerr << "--scale must be in (0,1]\n";
    return 2;
  }
  if (reps == 0) {
    std::cerr << "--reps must be >= 1\n";
    return 2;
  }
  if (args.churn_rate < 0.0 || args.churn_rate > 1.0) {
    std::cerr << "--churn-rate must be in [0,1]\n";
    return 2;
  }

  obs::PhaseTimers phases;
  trace::Trace t;
  {
    const auto scope = phases.scope("load_trace");
    t = bench::load(trace::Preset::kBu95, args);
  }
  const trace::TraceStats stats = trace::compute_stats(t);
  core::RunSpec spec;  // paper defaults: LRU, minimum browser sizing, 10%
  spec.churn_rate = args.churn_rate;
  spec.churn_seed = args.churn_seed;
  const sim::SimConfig cfg = core::build_config(stats, spec);

  core::CacheSizePoint point;
  point.relative_cache_size = spec.relative_cache_size;

  Table table(
      {"Organization", "Requests", "Best Seconds", "Requests/s", "Hit Ratio"});
  {
    const auto scope = phases.scope("replay");
    for (const core::OrgKind kind : sim::kAllOrganizations) {
      double best_secs = 0.0;
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        // Construction (including the capacity reservations) counts as part
        // of the replay: it is work a fresh simulation always pays.
        // run_organization dispatches to the concrete organization once, so
        // the per-request loop is free of virtual calls.
        const double start = obs::monotonic_seconds();
        const sim::Metrics m = sim::run_organization(kind, cfg, t);
        const double secs = obs::monotonic_seconds() - start;
        if (rep == 0 || secs < best_secs) best_secs = secs;
        if (rep + 1 == reps) point.by_org.emplace(kind, m);
      }
      const double rps = static_cast<double>(t.size()) / best_secs;
      obs::Registry::global()
          .gauge("replay_requests_per_second", {{"org", sim::org_name(kind)}})
          .set(rps);
      const sim::Metrics& m = point.by_org.at(kind);
      if (m.log_latency.count() > 0) {
        const std::pair<const char*, double> quantiles[] = {{"p50", 0.5},
                                                            {"p99", 0.99}};
        for (const auto& [qname, q] : quantiles) {
          obs::Registry::global()
              .gauge("replay_latency_quantile_seconds",
                     {{"org", sim::org_name(kind)}, {"q", qname}})
              .set(m.latency_quantile(q));
        }
      }
      table.row()
          .cell(sim::org_name(kind))
          .cell(static_cast<std::uint64_t>(t.size()))
          .cell(best_secs, 4)
          .cell(rps, 0)
          .cell_percent(m.hit_ratio());
    }
  }

  std::cout << "Trace-replay throughput, " << trace::preset_name(trace::Preset::kBu95)
            << ", best of " << reps << " run(s), default RunSpec\n";
  bench::emit(table, args);

  if (!store_dir.empty()) {
    // Disk-tier replay: every request probes the two-tier store and a miss
    // installs the document (RAM first, demotions spilling to the slab log).
    // Bodies are synthetic ('x' * size) — the store times byte movement, not
    // origin fetches — and the watermark is a cheap stand-in signature; RSA
    // issuance is benchmarked elsewhere.
    const auto scope = phases.scope("store_replay");
    store::TieredObjectStore::Params sp;
    sp.ram_bytes = store_ram;
    sp.disk.dir = store_dir;
    sp.disk.capacity_bytes = store_capacity;
    store::TieredObjectStore tiered(sp);
    if (!tiered.open(&error)) {
      std::cerr << "cannot open store: " << error << "\n";
      return 1;
    }
    std::uint64_t hits = 0;
    const double start = obs::monotonic_seconds();
    for (const trace::Request& req : t.requests()) {
      if (tiered.get(req.doc).has_value()) {
        ++hits;
        continue;
      }
      runtime::Document doc;
      doc.body.assign(req.size, 'x');
      doc.mark.signature = crypto::BigUInt(req.doc);
      tiered.put(req.doc, std::move(doc));
    }
    tiered.sync();
    const double secs = obs::monotonic_seconds() - start;
    const double rps =
        secs > 0.0 ? static_cast<double>(t.size()) / secs : 0.0;
    obs::Registry::global()
        .gauge("store_replay_requests_per_second")
        .set(rps);
    std::cout << "store replay: requests=" << t.size() << " hits=" << hits
              << " seconds=" << secs << " requests/s=" << rps
              << " segments=" << tiered.disk()->segment_count()
              << " disk_bytes=" << tiered.disk()->total_bytes() << "\n";
  }

  if (overhead_guard > 0.0) {
    // A/B on the hot organization: a plain replay against the same replay
    // plus the per-request cost a sampling-off tracer adds to the runtime
    // engine (one root-span start per request, which collapses to a single
    // branch when the sampler is off — no id minting, no clock read, no
    // registry write).
    const auto scope = phases.scope("overhead_guard");
    const core::OrgKind kind = core::OrgKind::kBrowsersAware;
    obs::Tracer::Params tp;
    tp.seed = 1;
    tp.sample_rate = 0.0;
    tp.service = "bench";
    obs::Tracer tracer(tp);
    // The percentage budget is tight (default 2%), so each timing sample
    // must dwarf clock/scheduler noise: batch enough replays per sample to
    // fill ~100ms, sized from a calibration run (which also provides the
    // metrics for the bit-identity check below).
    double start = obs::monotonic_seconds();
    const sim::Metrics plain_metrics = sim::run_organization(kind, cfg, t);
    const double calib_secs = obs::monotonic_seconds() - start;
    const sim::Metrics traced_metrics = sim::run_organization(kind, cfg, t);
    std::uint64_t iters = 1;
    if (calib_secs > 0.0 && calib_secs < 0.1) {
      iters = static_cast<std::uint64_t>(0.1 / calib_secs) + 1;
    }
    const std::uint64_t guard_reps = reps < 5 ? 5 : reps;
    double best_plain = 0.0, best_traced = 0.0;
    for (std::uint64_t rep = 0; rep < guard_reps; ++rep) {
      start = obs::monotonic_seconds();
      for (std::uint64_t it = 0; it < iters; ++it) {
        sim::run_organization(kind, cfg, t);
      }
      const double plain_secs = obs::monotonic_seconds() - start;
      start = obs::monotonic_seconds();
      for (std::uint64_t it = 0; it < iters; ++it) {
        sim::run_organization(kind, cfg, t);
        for (std::size_t i = 0; i < t.size(); ++i) {
          obs::Span root = tracer.start_root_span(obs::SpanKind::kClientFetch);
        }
      }
      const double traced_secs = obs::monotonic_seconds() - start;
      if (rep == 0 || plain_secs < best_plain) best_plain = plain_secs;
      if (rep == 0 || traced_secs < best_traced) best_traced = traced_secs;
    }
    // Bit-identical first: an unsampled tracer must not perturb a single
    // simulated counter, histogram bucket, or derived ratio.
    const std::string plain_json = obs::metrics_to_json(plain_metrics).dump();
    const std::string traced_json =
        obs::metrics_to_json(traced_metrics).dump();
    if (plain_json != traced_json) {
      std::cerr << "overhead-guard: metrics differ with a sampling-off "
                   "tracer present\n";
      return 1;
    }
    const double regression_pct =
        best_plain > 0.0 ? (best_traced - best_plain) / best_plain * 100.0
                         : 0.0;
    obs::Registry::global()
        .gauge("replay_tracing_overhead_pct",
               {{"org", sim::org_name(kind)}})
        .set(regression_pct);
    std::cout << "overhead-guard: sampling-off tracer costs "
              << regression_pct << "% (budget " << overhead_guard << "%)\n";
    if (regression_pct > overhead_guard) {
      std::cerr << "overhead-guard: regression " << regression_pct
                << "% exceeds budget " << overhead_guard << "%\n";
      return 1;
    }
  }

  bench::write_report(args, "bench_replay", "Trace-replay throughput, BU-95",
                      t, {point}, phases);
  return 0;
}
