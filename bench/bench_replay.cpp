// Trace-replay throughput harness for the flat-memory hot path.
//
// Replays the BU-95 preset end to end through all five organizations and
// reports requests/second per organization. Each organization is timed
// --reps times and the best run wins: single-core containers time noisily,
// and the minimum is the measurement least polluted by scheduler
// interference. The simulated Metrics are emitted as a one-point sweep in
// the baps.report.v1 report (so report_check recomputes every ratio), and
// throughput lands in the registry as replay_requests_per_second{org=...}
// gauges plus replay_latency_quantile_seconds{org=...,q=p50|p99} from the
// simulated latency distribution, which report_check validates as families.
// BENCH_hotpath.json at the repo root records the committed history of
// these numbers.
//
// --overhead-guard PCT re-times the hot organization with a sampling-off
// tracer paying one root-span check per request — the exact cost a rate-0
// tracer adds to the runtime engine — and fails unless the simulated
// metrics stay bit-identical and the throughput regression stays under
// PCT percent. CI runs this to keep tracing free when it is off.
// --ts-interval/--ts-out run the continuous TimeSeriesSampler over the whole
// bench and export its baps.timeseries.v1 JSONL; --ts-overhead-guard PCT is
// the matching budget check — it A/B-times the hot organization with the
// sampler running against a sampler-free baseline and fails unless the
// simulated metrics stay bit-identical and the throughput cost stays under
// PCT percent. CI runs this to keep continuous telemetry within its 2%
// budget (and provably zero when off).
// --store-dir DIR adds a disk-tier replay phase: the same trace pushed
// through the runtime two-tier object store (RAM DocStore + durable slab
// segments under DIR), publishing the store_* metric family and a
// store_replay_requests_per_second gauge so the durable tier's throughput is
// tracked alongside the simulated organizations.
//
// --shards LIST (e.g. "1,2,4,8") adds a multi-core section: each listed N
// replays every organization through the shared-nothing sharded engine
// (sim/sharded_replay.hpp) and publishes two gauges per (org, N) —
// replay_requests_per_second{org,shards,mode=wall} for end-to-end wall
// clock on THIS machine's affinity mask, and {mode=critical_path} for
// route + slowest-shard + merge, the time an N-core mask converges to.
// The engine's shard_requests_total / shard_merged_requests_total counters
// ride along, and report_check verifies sum(shards) == merged.
// --shard-differential is the correctness gate behind those numbers: it
// byte-compares the merged sharded metrics against the unsharded engine
// (N=1 on the pressured config; N=1 and N=4 on an eviction-free config,
// where doc partitioning must be EXACT) and exits nonzero on any mismatch.
// Note --threads does not exist here: sweep threads parallelize across
// independent simulations in the figure benches, while this harness times
// single replays — use --shards for parallelism inside a replay.
#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "sim/sharded_replay.hpp"
#include "store/tiered_store.hpp"

namespace {

/// "1,2,4,8" → {1,2,4,8}; empty/garbage/0 entries are parse errors.
bool parse_shard_list(const std::string& csv,
                      std::vector<std::uint32_t>* out, std::string* error) {
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      const unsigned long v = std::stoul(item);
      if (v == 0 || v > 1024) {
        *error = "--shards entries must be in [1,1024], got '" + item + "'";
        return false;
      }
      out->push_back(static_cast<std::uint32_t>(v));
    } catch (const std::exception&) {
      *error = "--shards expects a comma-separated list of counts, got '" +
               item + "'";
      return false;
    }
  }
  if (out->empty()) {
    *error = "--shards expects a non-empty list, e.g. 1,2,4,8";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace baps;
  bench::BenchArgs args;
  args.argc = argc;
  args.argv = argv;
  std::uint64_t reps = 5;
  double overhead_guard = 0.0;
  std::string shards_csv;
  bool shard_differential = false;
  std::string threads_str;
  std::string store_dir;
  std::uint64_t store_capacity = 16 << 20;
  std::uint64_t store_ram = 256 << 10;
  double ts_interval = 0.0;
  std::string ts_out;
  double ts_overhead_guard = 0.0;
  util::ArgParser parser(argv[0]);
  parser.flag("--csv", &args.csv, "emit CSV instead of an aligned table")
      .option("--overhead-guard", &overhead_guard, "PCT",
              "fail if a sampling-off tracer costs more than PCT percent "
              "throughput (default 0: guard off)")
      .option("--scale", &args.scale, "F",
              "shrink the preset trace by F in (0,1]")
      .option("--metrics-out", &args.metrics_out, "FILE",
              "write a baps.report.v1 JSON report of the runs")
      .option("--reps", &reps, "N",
              "time N replays per organization and keep the best")
      .option("--churn-rate", &args.churn_rate, "P",
              "per-request client churn probability in [0,1] (default 0)")
      .option("--churn-seed", &args.churn_seed, "S",
              "seed for the churn event stream")
      .option("--shards", &shards_csv, "LIST",
              "also time the sharded engine at each N in LIST (e.g. 1,2,4,8)")
      .flag("--shard-differential", &shard_differential,
            "verify sharded merged metrics match the unsharded engine "
            "byte-for-byte, exit nonzero on mismatch")
      .option("--threads", &threads_str, "N",
              "rejected: this harness times single replays; use --shards")
      .option("--store-dir", &store_dir, "DIR",
              "also replay through the runtime disk tier rooted at DIR")
      .bytes("--store-capacity", &store_capacity, "BYTES",
              "disk tier capacity for --store-dir, k/m/g ok (default 16m)")
      .bytes("--store-ram", &store_ram, "BYTES",
              "RAM tier in front of --store-dir, k/m/g ok (default 256k)")
      .duration("--ts-interval", &ts_interval, "DUR",
                "run the continuous time-series sampler over the bench, "
                "e.g. 1s / 250ms (default 0: sampler off)")
      .option("--ts-out", &ts_out, "FILE",
              "write baps.timeseries.v1 interval records as JSONL "
              "(requires --ts-interval)")
      .option("--ts-overhead-guard", &ts_overhead_guard, "PCT",
              "fail if a running time-series sampler costs more than PCT "
              "percent throughput or perturbs the simulated metrics "
              "(default 0: guard off)");
  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  if (args.scale <= 0.0 || args.scale > 1.0) {
    std::cerr << "--scale must be in (0,1]\n";
    return 2;
  }
  if (reps == 0) {
    std::cerr << "--reps must be >= 1\n";
    return 2;
  }
  if (args.churn_rate < 0.0 || args.churn_rate > 1.0) {
    std::cerr << "--churn-rate must be in [0,1]\n";
    return 2;
  }
  if (!threads_str.empty()) {
    std::cerr << "--threads parallelizes independent sweep points in the "
                 "figure benches; bench_replay times one replay at a time. "
                 "Use --shards N[,N...] to parallelize inside a replay.\n";
    return 2;
  }
  std::vector<std::uint32_t> shard_list;
  if (!shards_csv.empty() &&
      !parse_shard_list(shards_csv, &shard_list, &error)) {
    std::cerr << error << "\n";
    return 2;
  }
  if (!shard_list.empty() && overhead_guard > 0.0) {
    std::cerr << "--overhead-guard A/B-times the unsharded engine; combining "
                 "it with --shards would compare different engines. Run the "
                 "guard and the shard sweep as separate invocations.\n";
    return 2;
  }
  if (!ts_out.empty() && ts_interval <= 0.0) {
    std::cerr << "--ts-out requires --ts-interval > 0\n";
    return 2;
  }
  // Eager: the shard_* families appear (zero-valued) in every report this
  // harness writes, sharded run or not, so report_check can always apply
  // the sum(shards) == merged invariant.
  sim::register_shard_metric_families();

  // Continuous telemetry over the bench. Families are pre-registered so the
  // seq-0 baseline already carries the full schema.
  std::unique_ptr<obs::TimeSeriesSampler> ts_sampler;
  std::ofstream ts_stream;
  if (ts_interval > 0.0 || ts_overhead_guard > 0.0) {
    store::register_store_metric_families();
    fault::register_fault_metric_families();
    obs::register_trace_metric_families();
  }
  if (ts_interval > 0.0) {
    obs::TimeSeriesSampler::Params sp;
    sp.interval_seconds = ts_interval;
    ts_sampler = std::make_unique<obs::TimeSeriesSampler>(sp);
    if (!ts_out.empty()) {
      ts_stream.open(ts_out);
      if (!ts_stream) {
        std::cerr << "cannot open " << ts_out << "\n";
        return 1;
      }
      ts_sampler->set_sink(&ts_stream);
    }
    ts_sampler->start();
  }

  obs::PhaseTimers phases;
  trace::Trace t;
  {
    const auto scope = phases.scope("load_trace");
    t = bench::load(trace::Preset::kBu95, args);
  }
  const trace::TraceStats stats = trace::compute_stats(t);
  core::RunSpec spec;  // paper defaults: LRU, minimum browser sizing, 10%
  spec.churn_rate = args.churn_rate;
  spec.churn_seed = args.churn_seed;
  const sim::SimConfig cfg = core::build_config(stats, spec);

  core::CacheSizePoint point;
  point.relative_cache_size = spec.relative_cache_size;

  Table table(
      {"Organization", "Requests", "Best Seconds", "Requests/s", "Hit Ratio"});
  {
    const auto scope = phases.scope("replay");
    for (const core::OrgKind kind : sim::kAllOrganizations) {
      double best_secs = 0.0;
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        // Construction (including the capacity reservations) counts as part
        // of the replay: it is work a fresh simulation always pays.
        // run_organization dispatches to the concrete organization once, so
        // the per-request loop is free of virtual calls.
        const double start = obs::monotonic_seconds();
        const sim::Metrics m = sim::run_organization(kind, cfg, t);
        const double secs = obs::monotonic_seconds() - start;
        if (rep == 0 || secs < best_secs) best_secs = secs;
        if (rep + 1 == reps) point.by_org.emplace(kind, m);
      }
      const double rps = static_cast<double>(t.size()) / best_secs;
      obs::Registry::global()
          .gauge("replay_requests_per_second", {{"org", sim::org_name(kind)}})
          .set(rps);
      const sim::Metrics& m = point.by_org.at(kind);
      if (m.log_latency.count() > 0) {
        const std::pair<const char*, double> quantiles[] = {{"p50", 0.5},
                                                            {"p99", 0.99}};
        for (const auto& [qname, q] : quantiles) {
          obs::Registry::global()
              .gauge("replay_latency_quantile_seconds",
                     {{"org", sim::org_name(kind)}, {"q", qname}})
              .set(m.latency_quantile(q));
        }
      }
      table.row()
          .cell(sim::org_name(kind))
          .cell(static_cast<std::uint64_t>(t.size()))
          .cell(best_secs, 4)
          .cell(rps, 0)
          .cell_percent(m.hit_ratio());
    }
  }

  std::cout << "Trace-replay throughput, " << trace::preset_name(trace::Preset::kBu95)
            << ", best of " << reps << " run(s), default RunSpec\n";
  bench::emit(table, args);

  if (!shard_list.empty()) {
    // Multi-core section: same trace, same config, shared-nothing shards.
    // Wall req/s is honest end-to-end time under THIS process's CPU affinity
    // mask; critical-path req/s is route + slowest shard + merge — what the
    // wall time converges to once the mask actually spans N cores. The
    // critical path is timed on the SEQUENTIAL schedule (bit-identical to
    // the parallel one by the engine's determinism contract): when the
    // affinity mask holds fewer cores than shards, concurrent shard threads
    // timeshare and each shard's wall clock absorbs descheduled time, which
    // would inflate max(shard_seconds) toward the serial total. Back-to-back
    // execution times each shard's actual work instead.
    const auto scope = phases.scope("sharded_replay");
    Table stable({"Organization", "Shards", "Best Seconds", "Wall req/s",
                  "Critical-path req/s", "CP speedup"});
    for (const core::OrgKind kind : sim::kAllOrganizations) {
      double cp_baseline = 0.0;  // critical-path req/s at the smallest N
      for (const std::uint32_t n : shard_list) {
        sim::ShardedReplayOptions opts;
        opts.shards = n;
        double best_secs = 0.0, best_cp_rps = 0.0;
        for (std::uint64_t rep = 0; rep < reps; ++rep) {
          const double start = obs::monotonic_seconds();
          sim::run_organization_sharded(kind, cfg, t, opts);
          const double secs = obs::monotonic_seconds() - start;
          if (rep == 0 || secs < best_secs) best_secs = secs;
          sim::ShardedReplayOptions seq = opts;
          seq.parallel = false;
          const sim::ShardedReplayResult r =
              sim::run_organization_sharded(kind, cfg, t, seq);
          best_cp_rps =
              std::max(best_cp_rps, r.critical_path_requests_per_second());
        }
        const double wall_rps = static_cast<double>(t.size()) / best_secs;
        auto& reg = obs::Registry::global();
        reg.gauge("replay_requests_per_second",
                  {{"org", sim::org_name(kind)},
                   {"shards", std::to_string(n)},
                   {"mode", "wall"}})
            .set(wall_rps);
        reg.gauge("replay_requests_per_second",
                  {{"org", sim::org_name(kind)},
                   {"shards", std::to_string(n)},
                   {"mode", "critical_path"}})
            .set(best_cp_rps);
        if (cp_baseline == 0.0) cp_baseline = best_cp_rps;
        stable.row()
            .cell(sim::org_name(kind))
            .cell(static_cast<std::uint64_t>(n))
            .cell(best_secs, 4)
            .cell(wall_rps, 0)
            .cell(best_cp_rps, 0)
            .cell(cp_baseline > 0.0 ? best_cp_rps / cp_baseline : 0.0, 2);
      }
    }
    std::cout << "\nSharded replay (shared-nothing, doc-hash routed; "
                 "local-browser-only routes by client), best of "
              << reps << " run(s)\n";
    bench::emit(stable, args);
  }

  if (shard_differential) {
    // The correctness gate: merged sharded metrics must reproduce the
    // unsharded engine byte for byte in every regime where that is defined
    // (see the determinism contract in sim/sharded_replay.hpp). Comparison
    // is on the serialized metrics JSON — the same bit-identity test the
    // overhead guard uses.
    const auto scope = phases.scope("shard_differential");
    // Eviction-free config: caches big enough that nothing evicts, one
    // memory tier — the regime where doc partitioning must be EXACT for
    // every organization and any N.
    core::RunSpec dspec = spec;
    dspec.memory_fraction = 1.0;
    sim::SimConfig dcfg = core::build_config(stats, dspec);
    const std::uint64_t huge = stats.infinite_cache_bytes * 16;
    dcfg.proxy_cache_bytes = huge;
    for (auto& bytes : dcfg.browser_cache_bytes) bytes = huge;

    bool ok = true;
    const auto check = [&](core::OrgKind kind, const sim::SimConfig& c,
                           std::uint32_t n, const std::string& expect,
                           const char* what) {
      sim::ShardedReplayOptions opts;
      opts.shards = n;
      const std::string got = obs::metrics_to_json(
          sim::run_organization_sharded(kind, c, t, opts).merged).dump();
      if (got != expect) {
        std::cerr << "shard-differential: " << sim::org_name(kind) << " "
                  << what << " (N=" << n << ") diverges from the unsharded "
                  << "engine\n";
        ok = false;
      }
    };
    for (const core::OrgKind kind : sim::kAllOrganizations) {
      const std::string pressured =
          obs::metrics_to_json(sim::run_organization(kind, cfg, t)).dump();
      check(kind, cfg, 1, pressured, "pressured config");
      const std::string decoupled =
          obs::metrics_to_json(sim::run_organization(kind, dcfg, t)).dump();
      check(kind, dcfg, 1, decoupled, "eviction-free config");
      check(kind, dcfg, 4, decoupled, "eviction-free config");
    }
    if (!ok) return 1;
    std::cout << "shard-differential: merged metrics bit-identical to the "
                 "unsharded engine (N=1 pressured; N=1 and N=4 "
                 "eviction-free) across all five organizations\n";
  }

  if (!store_dir.empty()) {
    // Disk-tier replay: every request probes the two-tier store and a miss
    // installs the document (RAM first, demotions spilling to the slab log).
    // Bodies are synthetic ('x' * size) — the store times byte movement, not
    // origin fetches — and the watermark is a cheap stand-in signature; RSA
    // issuance is benchmarked elsewhere.
    const auto scope = phases.scope("store_replay");
    store::TieredObjectStore::Params sp;
    sp.ram_bytes = store_ram;
    sp.disk.dir = store_dir;
    sp.disk.capacity_bytes = store_capacity;
    store::TieredObjectStore tiered(sp);
    if (!tiered.open(&error)) {
      std::cerr << "cannot open store: " << error << "\n";
      return 1;
    }
    std::uint64_t hits = 0;
    const double start = obs::monotonic_seconds();
    for (const trace::Request& req : t.requests()) {
      if (tiered.get(req.doc).has_value()) {
        ++hits;
        continue;
      }
      runtime::Document doc;
      doc.body.assign(req.size, 'x');
      doc.mark.signature = crypto::BigUInt(req.doc);
      tiered.put(req.doc, std::move(doc));
    }
    tiered.sync();
    const double secs = obs::monotonic_seconds() - start;
    const double rps =
        secs > 0.0 ? static_cast<double>(t.size()) / secs : 0.0;
    obs::Registry::global()
        .gauge("store_replay_requests_per_second")
        .set(rps);
    std::cout << "store replay: requests=" << t.size() << " hits=" << hits
              << " seconds=" << secs << " requests/s=" << rps
              << " segments=" << tiered.disk()->segment_count()
              << " disk_bytes=" << tiered.disk()->total_bytes() << "\n";
  }

  if (overhead_guard > 0.0) {
    // A/B on the hot organization: a plain replay against the same replay
    // plus the per-request cost a sampling-off tracer adds to the runtime
    // engine (one root-span start per request, which collapses to a single
    // branch when the sampler is off — no id minting, no clock read, no
    // registry write).
    const auto scope = phases.scope("overhead_guard");
    const core::OrgKind kind = core::OrgKind::kBrowsersAware;
    obs::Tracer::Params tp;
    tp.seed = 1;
    tp.sample_rate = 0.0;
    tp.service = "bench";
    obs::Tracer tracer(tp);
    // The percentage budget is tight (default 2%), so each timing sample
    // must dwarf clock/scheduler noise: batch enough replays per sample to
    // fill ~100ms, sized from a calibration run (which also provides the
    // metrics for the bit-identity check below).
    double start = obs::monotonic_seconds();
    const sim::Metrics plain_metrics = sim::run_organization(kind, cfg, t);
    const double calib_secs = obs::monotonic_seconds() - start;
    const sim::Metrics traced_metrics = sim::run_organization(kind, cfg, t);
    std::uint64_t iters = 1;
    if (calib_secs > 0.0 && calib_secs < 0.1) {
      iters = static_cast<std::uint64_t>(0.1 / calib_secs) + 1;
    }
    const std::uint64_t guard_reps = reps < 5 ? 5 : reps;
    double best_plain = 0.0, best_traced = 0.0;
    for (std::uint64_t rep = 0; rep < guard_reps; ++rep) {
      start = obs::monotonic_seconds();
      for (std::uint64_t it = 0; it < iters; ++it) {
        sim::run_organization(kind, cfg, t);
      }
      const double plain_secs = obs::monotonic_seconds() - start;
      start = obs::monotonic_seconds();
      for (std::uint64_t it = 0; it < iters; ++it) {
        sim::run_organization(kind, cfg, t);
        for (std::size_t i = 0; i < t.size(); ++i) {
          obs::Span root = tracer.start_root_span(obs::SpanKind::kClientFetch);
        }
      }
      const double traced_secs = obs::monotonic_seconds() - start;
      if (rep == 0 || plain_secs < best_plain) best_plain = plain_secs;
      if (rep == 0 || traced_secs < best_traced) best_traced = traced_secs;
    }
    // Bit-identical first: an unsampled tracer must not perturb a single
    // simulated counter, histogram bucket, or derived ratio.
    const std::string plain_json = obs::metrics_to_json(plain_metrics).dump();
    const std::string traced_json =
        obs::metrics_to_json(traced_metrics).dump();
    if (plain_json != traced_json) {
      std::cerr << "overhead-guard: metrics differ with a sampling-off "
                   "tracer present\n";
      return 1;
    }
    const double regression_pct =
        best_plain > 0.0 ? (best_traced - best_plain) / best_plain * 100.0
                         : 0.0;
    obs::Registry::global()
        .gauge("replay_tracing_overhead_pct",
               {{"org", sim::org_name(kind)}})
        .set(regression_pct);
    std::cout << "overhead-guard: sampling-off tracer costs "
              << regression_pct << "% (budget " << overhead_guard << "%)\n";
    if (regression_pct > overhead_guard) {
      std::cerr << "overhead-guard: regression " << regression_pct
                << "% exceeds budget " << overhead_guard << "%\n";
      return 1;
    }
  }

  // The export sampler has covered every bench phase by now. Stop it before
  // the ts guard so the guard's sampler-free baseline is actually
  // sampler-free, and before write_report so the final interval record is
  // flushed ahead of the report.
  if (ts_sampler != nullptr) {
    ts_sampler->stop();
    if (!ts_out.empty()) std::cerr << "wrote " << ts_out << "\n";
  }

  if (ts_overhead_guard > 0.0) {
    // A/B on the hot organization: a plain replay against the same replay
    // with a TimeSeriesSampler ticking on its own thread. The sampler never
    // touches the simulation, so the simulated metrics must stay
    // bit-identical; the throughput cost is whatever its periodic registry
    // snapshots steal from the replay core, and that must stay under the
    // budget. Same batching discipline as --overhead-guard: each timing
    // sample is sized to ~100ms so the tight percentage budget is measured
    // above clock/scheduler noise.
    const auto scope = phases.scope("ts_overhead_guard");
    const core::OrgKind kind = core::OrgKind::kBrowsersAware;
    double start = obs::monotonic_seconds();
    const sim::Metrics off_metrics = sim::run_organization(kind, cfg, t);
    const double calib_secs = obs::monotonic_seconds() - start;
    std::uint64_t iters = 1;
    if (calib_secs > 0.0 && calib_secs < 0.1) {
      iters = static_cast<std::uint64_t>(0.1 / calib_secs) + 1;
    }
    const std::uint64_t guard_reps = reps < 5 ? 5 : reps;
    double best_off = 0.0;
    for (std::uint64_t rep = 0; rep < guard_reps; ++rep) {
      start = obs::monotonic_seconds();
      for (std::uint64_t it = 0; it < iters; ++it) {
        sim::run_organization(kind, cfg, t);
      }
      const double off_secs = obs::monotonic_seconds() - start;
      if (rep == 0 || off_secs < best_off) best_off = off_secs;
    }
    obs::TimeSeriesSampler::Params gp;
    gp.interval_seconds = ts_interval > 0.0 ? ts_interval : 0.05;
    obs::TimeSeriesSampler guard_sampler(gp);
    guard_sampler.start();
    const sim::Metrics on_metrics = sim::run_organization(kind, cfg, t);
    double best_on = 0.0;
    for (std::uint64_t rep = 0; rep < guard_reps; ++rep) {
      start = obs::monotonic_seconds();
      for (std::uint64_t it = 0; it < iters; ++it) {
        sim::run_organization(kind, cfg, t);
      }
      const double on_secs = obs::monotonic_seconds() - start;
      if (rep == 0 || on_secs < best_on) best_on = on_secs;
    }
    guard_sampler.stop();
    // Bit-identical first: a running sampler must not perturb a single
    // simulated counter, histogram bucket, or derived ratio.
    const std::string off_json = obs::metrics_to_json(off_metrics).dump();
    const std::string on_json = obs::metrics_to_json(on_metrics).dump();
    if (off_json != on_json) {
      std::cerr << "ts-overhead-guard: simulated metrics differ with the "
                   "sampler running\n";
      return 1;
    }
    const double regression_pct =
        best_off > 0.0 ? (best_on - best_off) / best_off * 100.0 : 0.0;
    obs::Registry::global()
        .gauge("replay_timeseries_overhead_pct",
               {{"org", sim::org_name(kind)}})
        .set(regression_pct);
    std::cout << "ts-overhead-guard: sampler at " << gp.interval_seconds
              << "s costs " << regression_pct << "% (budget "
              << ts_overhead_guard << "%, " << guard_sampler.intervals_captured()
              << " intervals captured)\n";
    if (regression_pct > ts_overhead_guard) {
      std::cerr << "ts-overhead-guard: regression " << regression_pct
                << "% exceeds budget " << ts_overhead_guard << "%\n";
      return 1;
    }
  }

  bench::write_report(args, "bench_replay", "Trace-replay throughput, BU-95",
                      t, {point}, phases);
  return 0;
}
