// Figure 2: hit ratios (left) and byte hit ratios (right) of the five
// caching policies on the NLANR-uc trace, proxy cache scaled over
// {0.5, 1, 5, 10, 20}% of the infinite cache size, browser caches at the
// §3.2 MINIMUM (C_proxy / 10N).
//
// Expected shape (paper §4.1): browsers-aware-proxy-server highest at every
// size; proxy-and-local-browser ≈ proxy-cache-only; local-browser-cache-only
// lowest; global-browsers-cache-only in between.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  obs::PhaseTimers phases;
  trace::Trace t;
  {
    const auto scope = phases.scope("load_trace");
    t = bench::load(trace::Preset::kNlanrUc, args);
  }

  core::RunSpec spec;
  spec.sizing = core::BrowserSizing::kMinimum;
  ThreadPool pool(args.threads);
  const std::vector<core::OrgKind> orgs(std::begin(sim::kAllOrganizations),
                                        std::end(sim::kAllOrganizations));
  std::vector<core::CacheSizePoint> points;
  {
    const auto scope = phases.scope("sweep");
    points = core::sweep_cache_sizes(t, bench::kRelativeSizes, orgs, spec,
                                     &pool, bench::progress_fn(args));
  }

  for (const bool bytes : {false, true}) {
    Table table({bytes ? "Byte Hit Ratio" : "Hit Ratio", "0.5%", "1%", "5%",
                 "10%", "20%"});
    for (const core::OrgKind org : orgs) {
      auto& row = table.row().cell(sim::org_name(org));
      for (const auto& p : points) {
        const sim::Metrics& m = p.by_org.at(org);
        row.cell_percent(bytes ? m.byte_hit_ratio() : m.hit_ratio());
      }
    }
    std::cout << "Figure 2 (" << (bytes ? "byte hit" : "hit")
              << " ratios), NLANR-uc, minimum browser caches\n";
    bench::emit(table, args);
  }
  bench::write_report(args, "bench_fig2", "Figure 2", t, points, phases);
  return 0;
}
