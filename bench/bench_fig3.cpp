// Figure 3: breakdowns of the browsers-aware proxy server's hit ratio and
// byte hit ratio into local-browser / proxy / remote-browser components, on
// NLANR-uc with minimum browser caches.
//
// Expected shape: the remote-browser share is non-negligible at every cache
// size, even the smallest.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::Trace t = bench::load(trace::Preset::kNlanrUc, args);
  const trace::TraceStats stats = trace::compute_stats(t);

  core::RunSpec spec;
  spec.sizing = core::BrowserSizing::kMinimum;

  Table hits({"Relative Cache Size", "local-browser", "proxy",
              "remote-browsers", "total"});
  Table bytes({"Relative Cache Size", "local-browser", "proxy",
               "remote-browsers", "total"});
  for (const double size : bench::kRelativeSizes) {
    core::RunSpec point = spec;
    point.relative_cache_size = size;
    const sim::Metrics m =
        core::run_one(core::OrgKind::kBrowsersAware, t, stats, point);
    const auto total_requests = static_cast<double>(m.hits.total());
    const auto total_bytes = static_cast<double>(m.byte_hits.total());
    const std::string label = std::to_string(size * 100.0) + "%";
    hits.row()
        .cell(label)
        .cell_percent(static_cast<double>(m.local_browser_hits) /
                      total_requests)
        .cell_percent(static_cast<double>(m.proxy_hits) / total_requests)
        .cell_percent(static_cast<double>(m.remote_browser_hits) /
                      total_requests)
        .cell_percent(m.hit_ratio());
    bytes.row()
        .cell(label)
        .cell_percent(static_cast<double>(m.local_browser_hit_bytes) /
                      total_bytes)
        .cell_percent(static_cast<double>(m.proxy_hit_bytes) / total_bytes)
        .cell_percent(static_cast<double>(m.remote_browser_hit_bytes) /
                      total_bytes)
        .cell_percent(m.byte_hit_ratio());
  }
  std::cout << "Figure 3 (hit ratio breakdowns), browsers-aware proxy, "
               "NLANR-uc\n";
  bench::emit(hits, args);
  std::cout << "Figure 3 (byte hit ratio breakdowns)\n";
  bench::emit(bytes, args);
  return 0;
}
