// Table 1: Selected Web Traces — the characteristics of the five workload
// presets standing in for the paper's NLANR / BU / CA*netII logs.
//
// Columns mirror the paper: #requests, total GB, infinite cache GB,
// #clients, max hit ratio, max byte hit ratio. Absolute volumes are scaled
// to laptop runs (documented in DESIGN.md §2); the shape columns — client
// counts, the BU-95 > BU-98 locality ordering, hit > byte-hit — are the
// calibration targets.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Table table({"Trace", "#Requests", "Total GB", "Infinite Cache (GB)",
               "#Clients", "Max Hit Ratio", "Max Byte Hit Ratio"});
  for (const trace::Preset preset : trace::all_presets()) {
    const trace::Trace t = bench::load(preset, args);
    const trace::TraceStats s = trace::compute_stats(t);
    const auto gb = [](std::uint64_t bytes) {
      return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
    };
    table.row()
        .cell(trace::preset_name(preset))
        .cell(s.num_requests)
        .cell(gb(s.total_bytes), 3)
        .cell(gb(s.infinite_cache_bytes), 3)
        .cell(std::uint64_t{s.num_clients})
        .cell_percent(s.max_hit_ratio)
        .cell_percent(s.max_byte_hit_ratio);
  }
  std::cout << "Table 1: Selected Web Traces (synthetic presets)\n";
  bench::emit(table, args);
  return 0;
}
