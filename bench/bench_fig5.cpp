// Figure 5: browsers-aware-proxy-server vs proxy-and-local-browser on the
// BU-95 trace, browser caches at the §3.2 AVERAGE sizing.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = baps::bench::parse_args(argc, argv);
  baps::bench::run_compare_figure(baps::trace::Preset::kBu95, "Figure 5",
                                  args,
                                  "bench_fig5");
  return 0;
}
