// §4.2 memory-tier experiment: at comparable byte hit ratios (BAPS at 5% of
// the infinite cache size vs proxy-and-local-browser at 10%), the
// browsers-aware proxy serves a larger share of its hit bytes from MEMORY,
// because the aggregated browser memory tiers add RAM the hierarchy cannot
// reach. The paper reports memory byte hit ratios of ~3.5% vs ~1.9% and a
// ~5% total-hit-latency reduction.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::Trace t = bench::load(trace::Preset::kNlanrUc, args);
  const trace::TraceStats stats = trace::compute_stats(t);

  core::RunSpec spec;
  spec.sizing = core::BrowserSizing::kMinimum;
  spec.memory_fraction = 0.1;  // Rousskov & Soloviev's Squid memory ratio

  spec.relative_cache_size = 0.05;
  const sim::Metrics baps_m =
      core::run_one(core::OrgKind::kBrowsersAware, t, stats, spec);
  spec.relative_cache_size = 0.10;
  const sim::Metrics pal_m =
      core::run_one(core::OrgKind::kProxyAndLocalBrowser, t, stats, spec);

  Table table({"Scheme", "Rel. Cache Size", "Hit Ratio", "Byte Hit Ratio",
               "Memory Byte Hit Ratio", "Total Hit Latency", "p50 Latency",
               "p99 Latency"});
  table.row()
      .cell("browsers-aware-proxy-server")
      .cell("5%")
      .cell_percent(baps_m.hit_ratio())
      .cell_percent(baps_m.byte_hit_ratio())
      .cell_percent(baps_m.memory_byte_hit_ratio())
      .cell(format_seconds(baps_m.total_hit_latency_s))
      .cell(format_seconds(baps_m.latency_quantile(0.5)))
      .cell(format_seconds(baps_m.latency_quantile(0.99)));
  table.row()
      .cell("proxy-and-local-browser")
      .cell("10%")
      .cell_percent(pal_m.hit_ratio())
      .cell_percent(pal_m.byte_hit_ratio())
      .cell_percent(pal_m.memory_byte_hit_ratio())
      .cell(format_seconds(pal_m.total_hit_latency_s))
      .cell(format_seconds(pal_m.latency_quantile(0.5)))
      .cell(format_seconds(pal_m.latency_quantile(0.99)));
  std::cout << "Section 4.2: memory byte hit ratios at comparable byte hit "
               "ratios, NLANR-uc\n";
  bench::emit(table, args);

  const double ratio =
      pal_m.memory_byte_hit_ratio() > 0.0
          ? baps_m.memory_byte_hit_ratio() / pal_m.memory_byte_hit_ratio()
          : 0.0;
  std::cout << "Memory byte hit ratio advantage of BAPS: " << ratio
            << "x (paper: ~1.8x, 3.5% vs 1.9%)\n";
  if (pal_m.total_hit_latency_s > 0.0) {
    const double reduction = 100.0 *
                             (pal_m.total_hit_latency_s -
                              baps_m.total_hit_latency_s) /
                             pal_m.total_hit_latency_s;
    std::cout << "Total hit latency reduction: " << reduction
              << "% (paper: ~5.2%)\n";
  }
  return 0;
}
