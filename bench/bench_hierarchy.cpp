// Extension experiment (beyond the paper; in the direction of its TKDE 2004
// follow-up): does the browsers-aware gain survive inside a multi-proxy
// hierarchy, and does it compose with sibling (ICP-style) cooperation?
//
// Four configurations over the NLANR-uc workload with 4 leaf proxies:
//   plain hierarchy / +siblings / +browsers-aware / +both.
#include "bench_common.hpp"

#include "sim/hierarchy.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::Trace t = bench::load(trace::Preset::kNlanrUc, args);
  const trace::TraceStats stats = trace::compute_stats(t);

  // Split the 10%-of-infinite budget: 60% across leaves, 40% to the parent;
  // browsers at the §3.2 minimum against the combined proxy space.
  const std::uint64_t total_proxy = sim::proxy_cache_bytes_for(stats, 0.10);
  sim::HierarchyConfig base;
  base.num_leaf_proxies = 4;
  base.leaf_cache_bytes = total_proxy * 6 / 10 / base.num_leaf_proxies;
  base.parent_cache_bytes = total_proxy * 4 / 10;
  base.browser_cache_bytes.assign(
      stats.num_clients,
      sim::min_browser_cache_bytes(total_proxy, stats.num_clients));

  Table table({"Configuration", "Hit Ratio", "Byte Hit Ratio", "Leaf Hits",
               "Sibling Hits", "Remote Browser Hits", "Parent Hits"});
  struct Variant {
    const char* name;
    bool siblings;
    bool aware;
  };
  for (const Variant v : {Variant{"plain hierarchy", false, false},
                          Variant{"+ sibling cooperation", true, false},
                          Variant{"+ browsers-aware", false, true},
                          Variant{"+ both", true, true}}) {
    sim::HierarchyConfig cfg = base;
    cfg.sibling_cooperation = v.siblings;
    cfg.browsers_aware = v.aware;
    const sim::HierarchyMetrics m = sim::run_hierarchy(cfg, t);
    table.row()
        .cell(v.name)
        .cell_percent(m.hit_ratio())
        .cell_percent(m.byte_hit_ratio())
        .cell(m.leaf_proxy_hits)
        .cell(m.sibling_proxy_hits)
        .cell(m.remote_browser_hits)
        .cell(m.parent_proxy_hits);
  }
  std::cout << "Extension: browsers-awareness inside a 4-leaf proxy "
               "hierarchy, NLANR-uc @ 10% total proxy budget\n";
  bench::emit(table, args);
  std::cout << "Expected shape: each mechanism adds hits; browsers-awareness "
               "helps even when\nsibling cooperation already recovers "
               "cross-leaf locality, because browser\ncopies outlive proxy "
               "copies (the paper's two types of misses).\n";
  return 0;
}
