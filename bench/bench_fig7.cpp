// Figure 7: the limit of the browsers-aware proxy server — the CA*netII
// trace has only 3 clients, so the accumulated browser space is tiny and the
// BAPS gain over proxy-and-local-browser nearly vanishes (< 1% average
// increase in the paper).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const auto args = bench::parse_args(argc, argv);
  bench::run_compare_figure(trace::Preset::kCanet2, "Figure 7", args,
                            "bench_fig7");

  // Quantify the limit: average increments across the cache sizes.
  const trace::Trace t = bench::load(trace::Preset::kCanet2, args);
  core::RunSpec spec;
  spec.sizing = core::BrowserSizing::kAverage;
  ThreadPool pool(args.threads);
  const std::vector<core::OrgKind> orgs = {
      core::OrgKind::kProxyAndLocalBrowser, core::OrgKind::kBrowsersAware};
  const auto points =
      core::sweep_cache_sizes(t, bench::kRelativeSizes, orgs, spec, &pool);
  double hit_inc = 0.0, byte_inc = 0.0;
  for (const auto& p : points) {
    const auto& baps_m = p.by_org.at(core::OrgKind::kBrowsersAware);
    const auto& pal_m = p.by_org.at(core::OrgKind::kProxyAndLocalBrowser);
    hit_inc += 100.0 * (baps_m.hit_ratio() - pal_m.hit_ratio());
    byte_inc += 100.0 * (baps_m.byte_hit_ratio() - pal_m.byte_hit_ratio());
  }
  hit_inc /= static_cast<double>(points.size());
  byte_inc /= static_cast<double>(points.size());
  std::cout << "Average absolute increase over proxy-and-local-browser: "
            << "hit ratio +" << hit_inc << " points, byte hit ratio +"
            << byte_inc << " points (paper: both below 1%)\n";
  return 0;
}
