// Figure 6: browsers-aware-proxy-server vs proxy-and-local-browser on the
// BU-98 trace, browser caches at the §3.2 AVERAGE sizing.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = baps::bench::parse_args(argc, argv);
  baps::bench::run_compare_figure(baps::trace::Preset::kBu98, "Figure 6",
                                  args,
                                  "bench_fig6");
  return 0;
}
