// Substrate micro-benchmarks (google-benchmark): throughput of the hot
// primitives the simulator and runtime engine are built on.
#include <benchmark/benchmark.h>

#include "cache/object_cache.hpp"
#include "crypto/des.hpp"
#include "crypto/hmac.hpp"
#include "crypto/md5.hpp"
#include "crypto/rsa.hpp"
#include "index/bloom.hpp"
#include "trace/generator.hpp"
#include "trace/zipf.hpp"
#include "util/rng.hpp"

namespace {

void BM_Md5_8KB(benchmark::State& state) {
  const std::string body(8192, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(baps::crypto::md5(body));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_Md5_8KB);

void BM_RsaSignDigest(benchmark::State& state) {
  const auto keys = baps::crypto::generate_rsa_keypair(256, 5);
  const auto digest = baps::crypto::md5("document");
  for (auto _ : state) {
    benchmark::DoNotOptimize(baps::crypto::rsa_sign_digest(digest, keys.priv));
  }
}
BENCHMARK(BM_RsaSignDigest);

void BM_RsaVerifyDigest(benchmark::State& state) {
  const auto keys = baps::crypto::generate_rsa_keypair(256, 5);
  const auto digest = baps::crypto::md5("document");
  const auto sig = baps::crypto::rsa_sign_digest(digest, keys.priv);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baps::crypto::rsa_verify_digest(digest, sig, keys.pub));
  }
}
BENCHMARK(BM_RsaVerifyDigest);

void BM_HmacMd5_IndexUpdate(benchmark::State& state) {
  const std::string key = "per-client shared key";
  const std::string msg = "remove:17:1234567890123456";
  for (auto _ : state) {
    benchmark::DoNotOptimize(baps::crypto::hmac_md5(key, msg));
  }
}
BENCHMARK(BM_HmacMd5_IndexUpdate);

void BM_DesCbc_8KB(benchmark::State& state) {
  const std::vector<std::uint8_t> body(8192, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baps::crypto::des_cbc_encrypt(body, 0x0E329232EA6D0D73ULL, 7));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_DesCbc_8KB);

void BM_ZipfSample(benchmark::State& state) {
  const baps::trace::ZipfSampler zipf(
      static_cast<std::uint64_t>(state.range(0)), 0.75);
  baps::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_LruCacheChurn(benchmark::State& state) {
  baps::cache::ObjectCache cache(1 << 20, baps::cache::PolicyKind::kLru);
  baps::Xoshiro256 rng(2);
  for (auto _ : state) {
    const baps::trace::DocId doc = rng.below(4096);
    if (!cache.touch(doc)) cache.insert(doc, 1 + rng.below(2048));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheChurn);

void BM_CountingBloomAddRemove(benchmark::State& state) {
  auto bloom = baps::index::CountingBloomFilter::sized_for(10000, 0.01);
  std::uint64_t i = 0;
  for (auto _ : state) {
    bloom.add(i);
    if (i >= 1000) bloom.remove(i - 1000);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CountingBloomAddRemove);

void BM_TraceGeneration(benchmark::State& state) {
  baps::trace::GeneratorParams p;
  p.num_requests = static_cast<std::uint64_t>(state.range(0));
  p.num_clients = 20;
  p.shared_docs = 10000;
  p.private_docs_per_client = 500;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baps::trace::generate_trace("bm", p, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
