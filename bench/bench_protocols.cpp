// §6 reliability/security protocols: measures the runtime engine's
// integrity-watermark and anonymizing-relay overheads and demonstrates the
// protocols working end to end.
//
// The paper's claim: "the associated overheads are trivial" — trivial here
// means microseconds of CPU per document against milliseconds of LAN / WAN
// time per transfer.
#include <chrono>

#include "bench_common.hpp"
#include "runtime/system.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  using Clock = std::chrono::steady_clock;
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  // --- crypto primitive costs ----------------------------------------------
  {
    const auto keys = crypto::generate_rsa_keypair(256, 7);
    const std::string body(8192, 'x');  // the paper's 8KB average document
    constexpr int kIters = 200;

    const auto t0 = Clock::now();
    crypto::Watermark mark;
    for (int i = 0; i < kIters; ++i) {
      mark = crypto::issue_watermark(body, keys.priv);
    }
    const auto t1 = Clock::now();
    bool ok = true;
    for (int i = 0; i < kIters; ++i) {
      ok &= crypto::verify_watermark(body, mark, keys.pub);
    }
    const auto t2 = Clock::now();
    if (!ok) return 1;

    const auto secs = [](auto d) {
      return std::chrono::duration<double>(d).count();
    };
    const double issue_s = secs(t1 - t0) / kIters;
    const double verify_s = secs(t2 - t1) / kIters;
    // Compare against moving the same document across the paper's LAN.
    net::LanModel lan;
    const double lan_s = lan.transfer_time(body.size());

    Table table({"Operation", "Time per 8KB document", "vs one LAN hop"});
    table.row()
        .cell("issue watermark (proxy, RSA-sign MD5)")
        .cell(format_seconds(issue_s))
        .cell_percent(issue_s / lan_s, 2);
    table.row()
        .cell("verify watermark (client)")
        .cell(format_seconds(verify_s))
        .cell_percent(verify_s / lan_s, 2);
    table.row().cell("LAN transfer (10 Mbps + setup)").cell(
        format_seconds(lan_s)).cell_percent(1.0, 0);
    std::cout << "Section 6: integrity protocol cost (paper: trivial)\n";
    bench::emit(table, args);
  }

  // --- end-to-end protocol behaviour ----------------------------------------
  {
    runtime::BapsSystem::Params p;
    p.num_clients = 8;
    p.proxy_cache_bytes = 24 << 10;
    p.browser_cache_bytes = 48 << 10;
    runtime::BapsSystem sys(p);

    // Drive a shared-hot-set workload with one tampering client.
    sys.set_tampering(3, true);
    baps::Xoshiro256 rng(13);
    constexpr int kRequests = 2500;
    for (int i = 0; i < kRequests; ++i) {
      const auto client =
          static_cast<runtime::ClientId>(rng.below(p.num_clients));
      const auto doc = rng.below(60);
      const auto out = sys.browse(
          client, "http://hot.example/doc" + std::to_string(doc));
      if (!out.verified) return 1;  // every served document must verify
    }

    Table table({"Counter", "Value"});
    table.row().cell("requests").cell(std::uint64_t{kRequests});
    table.row().cell("local browser hits").cell(sys.local_hits());
    table.row().cell("proxy hits").cell(sys.proxy_hits());
    table.row().cell("remote browser (peer) hits").cell(sys.peer_hits());
    table.row().cell("origin fetches").cell(sys.origin_fetches());
    table.row().cell("tampered deliveries detected").cell(
        sys.tamper_detections());
    table.row().cell("false forwards").cell(sys.false_forwards());
    table.row().cell("index add messages").cell(
        sys.messages().count(runtime::MsgKind::kIndexAdd));
    table.row().cell("index remove messages").cell(
        sys.messages().count(runtime::MsgKind::kIndexRemove));
    std::cout << "\nSection 6: end-to-end run with a tampering client "
                 "(every delivery verified, all tampering detected)\n";
    bench::emit(table, args);
  }
  return 0;
}
