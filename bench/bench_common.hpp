// Shared plumbing for the figure/table bench harnesses.
//
// Every harness accepts:
//   --csv          emit CSV instead of an aligned table
//   --scale <f>    shrink the preset traces by factor f in (0,1] (default 1:
//                  the full paper-scale runs; use e.g. 0.1 for a quick look)
//   --metrics-out <file>  write a baps.report.v1 JSON report of the runs
//   --progress     print sweep progress to stderr
//   --threads <n>  sweep worker threads (default 0 = hardware_concurrency).
//                  These parallelize ACROSS independent simulations — one
//                  (organization, cache size) point per task. Parallelism
//                  INSIDE a single replay is a different axis: bench_replay's
//                  --shards N splits one replay over N shared-nothing shards
//                  (see sim/sharded_replay.hpp). The two do not compose;
//                  bench_replay rejects --threads with a pointer to --shards.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/api.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"

namespace baps::bench {

struct BenchArgs {
  bool csv = false;
  double scale = 1.0;
  std::string metrics_out;
  bool progress = false;
  /// Sweep worker threads — parallelism ACROSS independent simulations; 0
  /// lets ThreadPool pick hardware_concurrency. Not to be confused with
  /// bench_replay's --shards, which parallelizes INSIDE one replay.
  std::uint64_t threads = 0;
  /// Client churn (§5 spirit): per-request churn probability and its seed.
  double churn_rate = 0.0;
  std::uint64_t churn_seed = 0;
  int argc = 0;
  char** argv = nullptr;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  args.argc = argc;
  args.argv = argv;
  util::ArgParser parser(argv[0]);
  parser.flag("--csv", &args.csv, "emit CSV instead of an aligned table")
      .option("--scale", &args.scale, "F",
              "shrink the preset traces by F in (0,1]")
      .option("--metrics-out", &args.metrics_out, "FILE",
              "write a baps.report.v1 JSON report of the runs")
      .flag("--progress", &args.progress, "print sweep progress to stderr")
      .option("--threads", &args.threads, "N",
              "sweep worker threads across independent simulations "
              "(0 = hardware_concurrency); intra-replay parallelism is "
              "bench_replay --shards")
      .option("--churn-rate", &args.churn_rate, "P",
              "per-request client churn probability in [0,1] (default 0)")
      .option("--churn-seed", &args.churn_seed, "S",
              "seed for the churn event stream");
  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    std::exit(2);
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    std::exit(0);
  }
  if (args.scale <= 0.0 || args.scale > 1.0) {
    std::cerr << "--scale must be in (0,1]\n";
    std::exit(2);
  }
  if (args.churn_rate < 0.0 || args.churn_rate > 1.0) {
    std::cerr << "--churn-rate must be in [0,1]\n";
    std::exit(2);
  }
  return args;
}

/// stderr progress callback when --progress was given, else a null fn.
inline core::ProgressFn progress_fn(const BenchArgs& args) {
  if (!args.progress) return nullptr;
  return [](std::size_t done, std::size_t total) {
    std::cerr << "progress: " << done << "/" << total << "\n";
  };
}

/// Writes the standard report for a cache-size sweep when --metrics-out was
/// given. Exits nonzero on I/O failure so CI catches it.
inline void write_report(const BenchArgs& args, const std::string& tool,
                         const std::string& title, const trace::Trace& t,
                         const std::vector<core::CacheSizePoint>& points,
                         const obs::PhaseTimers& phases) {
  if (args.metrics_out.empty()) return;
  std::string error;
  const bool ok = obs::ReportBuilder(tool)
                      .set_title(title)
                      .set_args(args.argc, args.argv)
                      .set_trace(t)
                      .add_phases(phases)
                      .add_sweep(points)
                      .set_registry(obs::Registry::global().snapshot())
                      .write(args.metrics_out, &error);
  if (!ok) {
    std::cerr << "cannot write " << args.metrics_out << ": " << error << "\n";
    std::exit(1);
  }
  std::cerr << "wrote " << args.metrics_out << "\n";
}

inline trace::Trace load(trace::Preset preset, const BenchArgs& args) {
  return args.scale >= 1.0 ? trace::load_preset(preset)
                           : trace::load_preset_scaled(preset, args.scale);
}

inline void emit(const Table& table, const BenchArgs& args) {
  if (args.csv) {
    std::cout << table.to_csv();
  } else {
    std::cout << table << '\n';
  }
}

/// The relative cache sizes of Figures 2–7 (fractions of the infinite
/// cache size): 0.5%, 1%, 5%, 10%, 20%.
inline const std::vector<double> kRelativeSizes = {0.005, 0.01, 0.05, 0.10,
                                                   0.20};

/// Figures 4–7 all share one shape: browsers-aware-proxy-server vs
/// proxy-and-local-browser across the relative cache sizes, with browser
/// caches at the §3.2 AVERAGE sizing.
inline void run_compare_figure(trace::Preset preset, const std::string& title,
                               const BenchArgs& args,
                               const std::string& tool) {
  obs::PhaseTimers phases;
  trace::Trace t;
  {
    const auto scope = phases.scope("load_trace");
    t = load(preset, args);
  }
  core::RunSpec spec;
  spec.sizing = core::BrowserSizing::kAverage;
  spec.churn_rate = args.churn_rate;
  spec.churn_seed = args.churn_seed;
  ThreadPool pool(args.threads);
  const std::vector<core::OrgKind> orgs = {
      core::OrgKind::kProxyAndLocalBrowser, core::OrgKind::kBrowsersAware};
  std::vector<core::CacheSizePoint> points;
  {
    const auto scope = phases.scope("sweep");
    points = core::sweep_cache_sizes(t, kRelativeSizes, orgs, spec, &pool,
                                     progress_fn(args));
  }

  for (const bool bytes : {false, true}) {
    Table table({bytes ? "Byte Hit Ratio" : "Hit Ratio", "0.5%", "1%", "5%",
                 "10%", "20%"});
    for (const core::OrgKind org : orgs) {
      auto& row = table.row().cell(sim::org_name(org));
      for (const auto& p : points) {
        const sim::Metrics& m = p.by_org.at(org);
        row.cell_percent(bytes ? m.byte_hit_ratio() : m.hit_ratio());
      }
    }
    std::cout << title << " (" << (bytes ? "byte hit" : "hit")
              << " ratios), " << trace::preset_name(preset)
              << ", average browser caches\n";
    emit(table, args);
  }
  write_report(args, tool, title, t, points, phases);
}

}  // namespace baps::bench
