// Figure 8: hit-ratio and byte-hit-ratio increments of the browsers-aware
// proxy server over proxy-and-local-browser as the relative number of
// clients grows from 25% to 100%, for NLANR-bo1, BU-95 and BU-98.
// The proxy cache is FIXED at 10% of the full-population infinite cache
// size for every point (per the paper's §4.3 setup).
//
// Expected shape: both increments grow monotonically with the number of
// clients for every trace.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::vector<double> fractions = {0.25, 0.50, 0.75, 1.00};
  const std::vector<trace::Preset> presets = {
      trace::Preset::kNlanrBo1, trace::Preset::kBu95, trace::Preset::kBu98};

  core::RunSpec spec;
  spec.relative_cache_size = 0.10;
  spec.sizing = core::BrowserSizing::kAverage;
  ThreadPool pool(args.threads);

  obs::PhaseTimers phases;
  obs::ReportBuilder report("bench_fig8");
  report.set_title("Figure 8").set_args(args.argc, args.argv);

  Table hit({"Hit Ratio Increment (%)", "25%", "50%", "75%", "100%"});
  Table byte({"Byte Hit Ratio Increment (%)", "25%", "50%", "75%", "100%"});
  for (const trace::Preset preset : presets) {
    const auto scope = phases.scope(trace::preset_name(preset));
    const trace::Trace t = bench::load(preset, args);
    const auto points = core::client_scaling_sweep(t, fractions, spec, &pool,
                                                   bench::progress_fn(args));
    report.add_client_scaling(points, trace::preset_name(preset));
    auto& hrow = hit.row().cell(trace::preset_name(preset));
    auto& brow = byte.row().cell(trace::preset_name(preset));
    for (const auto& p : points) {
      hrow.cell(p.hit_ratio_increment_pct, 2);
      brow.cell(p.byte_hit_ratio_increment_pct, 2);
    }
  }
  std::cout << "Figure 8 (left): hit ratio increment vs relative number of "
               "clients\n";
  bench::emit(hit, args);
  std::cout << "Figure 8 (right): byte hit ratio increment vs relative "
               "number of clients\n";
  bench::emit(byte, args);

  if (!args.metrics_out.empty()) {
    report.add_phases(phases).set_registry(obs::Registry::global().snapshot());
    std::string error;
    if (!report.write(args.metrics_out, &error)) {
      std::cerr << "cannot write " << args.metrics_out << ": " << error
                << "\n";
      return 1;
    }
    std::cerr << "wrote " << args.metrics_out << "\n";
  }
  return 0;
}
