// Figure 4: browsers-aware-proxy-server vs proxy-and-local-browser on the
// NLANR-bo1 trace, browser caches at the §3.2 AVERAGE sizing.
// Expected shape: BAPS consistently above P+LB on both metrics.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = baps::bench::parse_args(argc, argv);
  baps::bench::run_compare_figure(baps::trace::Preset::kNlanrBo1, "Figure 4",
                                  args,
                                  "bench_fig4");
  return 0;
}
