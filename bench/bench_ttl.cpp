// Extension experiment: the consistency/hit-ratio tradeoff behind the
// paper's TTL field (§2) and its §6 reliability concern.
//
// The paper's simulator counts hits on changed documents as misses — an
// oracle no deployment has. Running the browsers-aware organization
// WITHOUT the oracle measures how many stale documents would really be
// served, and sweeping a TTL shows what freshness costs in hit ratio.
#include "bench_common.hpp"

#include "sim/ttl_study.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::Trace t = bench::load(trace::Preset::kNlanrUc, args);
  const trace::TraceStats stats = trace::compute_stats(t);

  sim::TtlStudyConfig cfg;
  cfg.proxy_cache_bytes = sim::proxy_cache_bytes_for(stats, 0.10);
  cfg.browser_cache_bytes = sim::min_browser_caches(cfg.proxy_cache_bytes,
                                                    stats.num_clients);

  Table table({"TTL", "Hit Ratio", "Stale Hits", "Stale/Hits",
               "Stale Remote Hits", "Expirations"});
  const double day = 86'400.0;
  struct Point {
    const char* label;
    double ttl;
  };
  for (const Point p : {Point{"infinite", cache::ExpiringCache::kNeverExpires},
                        Point{"1 day", day},
                        Point{"1 hour", 3600.0},
                        Point{"10 min", 600.0},
                        Point{"1 min", 60.0}}) {
    cfg.ttl_seconds = p.ttl;
    const sim::TtlStudyMetrics m = sim::run_ttl_study(cfg, t);
    table.row()
        .cell(p.label)
        .cell_percent(m.hit_ratio())
        .cell(m.stale_hits)
        .cell_percent(m.stale_hit_fraction())
        .cell(m.stale_remote_hits)
        .cell(m.expirations);
  }
  std::cout << "Extension: TTL consistency/hit-ratio tradeoff, oracle-less "
               "browsers-aware org, NLANR-uc @ 10%\n";
  bench::emit(table, args);
  std::cout << "Reading: without the paper's size-change oracle some served "
               "copies are stale;\nTTLs bound that staleness at a measured "
               "hit-ratio cost. (The paper's oracle\nrule corresponds to a "
               "perfect invalidation protocol.)\n";
  return 0;
}
