// Ablation (beyond the paper): is the browsers-aware gain an artifact of
// LRU? Runs BAPS and proxy-and-local-browser under every replacement policy
// at the 10% cache size on NLANR-uc. The increment column shows the gain
// survives across policies (the paper only evaluates LRU).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace baps;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::Trace t = bench::load(trace::Preset::kNlanrUc, args);
  const trace::TraceStats stats = trace::compute_stats(t);

  Table table({"Policy", "P+LB Hit", "BAPS Hit", "Hit Increment (pts)",
               "P+LB Byte Hit", "BAPS Byte Hit", "Byte Increment (pts)"});
  for (const cache::PolicyKind policy : cache::kAllPolicies) {
    core::RunSpec spec;
    spec.relative_cache_size = 0.10;
    spec.sizing = core::BrowserSizing::kMinimum;
    spec.policy = policy;
    const sim::Metrics pal =
        core::run_one(core::OrgKind::kProxyAndLocalBrowser, t, stats, spec);
    const sim::Metrics baps_m =
        core::run_one(core::OrgKind::kBrowsersAware, t, stats, spec);
    table.row()
        .cell(cache::policy_name(policy))
        .cell_percent(pal.hit_ratio())
        .cell_percent(baps_m.hit_ratio())
        .cell(100.0 * (baps_m.hit_ratio() - pal.hit_ratio()), 2)
        .cell_percent(pal.byte_hit_ratio())
        .cell_percent(baps_m.byte_hit_ratio())
        .cell(100.0 * (baps_m.byte_hit_ratio() - pal.byte_hit_ratio()), 2);
  }
  std::cout << "Ablation: replacement policy vs browsers-aware gain, "
               "NLANR-uc @ 10%\n";
  bench::emit(table, args);
  return 0;
}
