// baps_proxyd — the BAPS proxy as a standalone TCP daemon.
//
// Serves the wire protocol (Hello, FetchRequest, IndexUpdate, StatsRequest,
// Bye) on a TCP port. Clients connect with baps_fetch or any TcpTransport.
// Runs until SIGINT/SIGTERM (or --max-seconds in scripted runs), then shuts
// down cleanly and optionally writes a baps.report.v1 JSON report with the
// final proxy counters and the wire/netio metric registry.
//
//   baps_proxyd --port 4160 --clients 8 --seed 7
//   baps_proxyd --port 0 --max-seconds 30 --metrics-out proxyd.json
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "obs/report.hpp"
#include "runtime/proxy_server.hpp"
#include "util/args.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace baps;

  runtime::ProxyServer::Params params;
  std::uint16_t port = 0;
  std::uint32_t clients = 4;
  std::uint64_t proxy_cache = 256 << 10;
  std::uint64_t seed = 7;
  std::uint32_t rsa_bits = 256;
  std::uint64_t workers = 0;
  std::uint64_t max_seconds = 0;
  std::string metrics_out;

  util::ArgParser parser("baps_proxyd",
                         "Serve the BAPS proxy over TCP on 127.0.0.1.");
  parser.option("--port", &port, "P", "listen port (default 0: ephemeral)")
      .option("--clients", &clients, "N", "number of clients (default 4)")
      .option("--proxy-cache", &proxy_cache, "BYTES",
              "proxy cache capacity (default 262144)")
      .option("--seed", &seed, "S", "key-derivation seed (default 7)")
      .option("--rsa-bits", &rsa_bits, "B",
              "watermark RSA modulus bits (default 256)")
      .option("--workers", &workers, "N",
              "session worker threads (default 0: clients + 2, so every "
              "persistent client session gets a worker with spare capacity "
              "for transient observer sessions)")
      .option("--max-seconds", &max_seconds, "S",
              "exit after S seconds (default 0: run until signalled)")
      .option("--metrics-out", &metrics_out, "FILE",
              "write a baps.report.v1 JSON report on shutdown");

  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  if (clients == 0) {
    std::cerr << "--clients must be at least 1\n";
    return 2;
  }

  params.core.num_clients = clients;
  params.core.proxy_cache_bytes = proxy_cache;
  params.core.seed = seed;
  params.core.rsa_modulus_bits = rsa_bits;
  params.net.port = port;
  params.net.worker_threads = workers != 0 ? workers : clients + 2;

  runtime::ProxyServer server(params);
  if (!server.start(&error)) {
    std::cerr << "cannot start proxy: " << error << "\n";
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // Scripts parse this line to find the ephemeral port.
  std::cout << "baps_proxyd listening on 127.0.0.1:" << server.port()
            << " (clients=" << clients << " seed=" << seed << ")"
            << std::endl;

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(max_seconds);
  while (!g_stop.load()) {
    if (max_seconds != 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();

  const runtime::ProxyStats stats = server.core().stats();
  std::cerr << "proxyd: proxy_hits=" << stats.proxy_hits
            << " peer_hits=" << stats.peer_hits
            << " origin_fetches=" << stats.origin_fetches
            << " false_forwards=" << stats.false_forwards
            << " rejected_index_updates=" << stats.rejected_index_updates
            << "\n";

  if (!metrics_out.empty()) {
    const bool ok = obs::ReportBuilder("baps_proxyd")
                        .set_title("proxy daemon run")
                        .set_args(argc, argv)
                        .set_registry(obs::Registry::global().snapshot())
                        .write(metrics_out, &error);
    if (!ok) {
      std::cerr << "cannot write " << metrics_out << ": " << error << "\n";
      return 1;
    }
    std::cerr << "wrote " << metrics_out << "\n";
  }
  return 0;
}
