// baps_proxyd — the BAPS proxy as a standalone TCP daemon.
//
// Serves the wire protocol (Hello, FetchRequest, IndexUpdate, StatsRequest,
// Bye) on a TCP port. Clients connect with baps_fetch or any TcpTransport.
// Runs until SIGINT/SIGTERM (or --max-seconds in scripted runs), then shuts
// down cleanly and optionally writes a baps.report.v1 JSON report with the
// final proxy counters and the wire/netio metric registry.
//
// With --trace-sample the daemon traces its side of every sampled request
// (span JSONL to --trace-out) and serves live introspection snapshots to
// `baps_fetch --stats`.
//
//   baps_proxyd --port 4160 --clients 8 --seed 7
//   baps_proxyd --port 0 --max-seconds 30 --metrics-out proxyd.json
//   baps_proxyd --port 4160 --trace-sample 1.0 --trace-out proxyd.spans.jsonl
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "fault/fault_plan.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "runtime/proxy_server.hpp"
#include "store/tiered_store.hpp"
#include "util/args.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace baps;

  runtime::ProxyServer::Params params;
  std::uint16_t port = 0;
  std::uint32_t clients = 4;
  std::uint64_t proxy_cache = 256 << 10;
  std::uint64_t seed = 7;
  std::uint32_t rsa_bits = 256;
  std::uint64_t workers = 0;
  bool event_driven = false;
  std::uint64_t max_connections = 0;
  double idle_timeout = 0.0;
  std::uint64_t max_seconds = 0;
  std::string store_dir;
  std::uint64_t store_capacity = 64 << 20;
  std::string metrics_out;
  double trace_sample = 0.0;
  std::string trace_out;
  double ts_interval = 0.0;
  std::string ts_out;

  util::ArgParser parser("baps_proxyd",
                         "Serve the BAPS proxy over TCP on 127.0.0.1.");
  parser.option("--port", &port, "P", "listen port (default 0: ephemeral)")
      .option("--clients", &clients, "N", "number of clients (default 4)")
      .option("--proxy-cache", &proxy_cache, "BYTES",
              "proxy cache capacity (default 262144)")
      .option("--seed", &seed, "S", "key-derivation seed (default 7)")
      .option("--rsa-bits", &rsa_bits, "B",
              "watermark RSA modulus bits (default 256)")
      .option("--workers", &workers, "N",
              "session worker threads (default 0: clients + 2, so every "
              "persistent client session gets a worker with spare capacity "
              "for transient observer sessions)")
      .flag("--event-driven", &event_driven,
            "serve with the edge-triggered epoll event loop (one thread, "
            "10k+ concurrent connections) instead of the blocking worker "
            "pool; --workers is ignored in this mode")
      .option("--max-connections", &max_connections, "N",
              "epoll mode: accept at most N concurrent connections "
              "(default 0: bounded only by fds)")
      .duration("--idle-timeout", &idle_timeout, "DUR",
                "epoll mode: close connections silent for DUR, e.g. 30s "
                "(default 0: never)")
      .option("--max-seconds", &max_seconds, "S",
              "exit after S seconds (default 0: run until signalled)")
      .option("--store-dir", &store_dir, "DIR",
              "durable cache tier directory (default: no disk tier); a "
              "restarted daemon pointed at the same DIR warm-starts from it")
      .bytes("--store-capacity", &store_capacity, "BYTES",
              "disk tier capacity, k/m/g suffixes ok (default 64m)")
      .option("--metrics-out", &metrics_out, "FILE",
              "write a baps.report.v1 JSON report on shutdown")
      .option("--trace-sample", &trace_sample, "RATE",
              "trace sampling rate in [0,1] (default 0: tracing off)")
      .option("--trace-out", &trace_out, "FILE",
              "write sampled spans as JSONL (requires --trace-sample)")
      .duration("--ts-interval", &ts_interval, "DUR",
                "continuous time-series sampling interval, e.g. 1s / 250ms "
                "(default 0: sampler off)")
      .option("--ts-out", &ts_out, "FILE",
              "write baps.timeseries.v1 interval records as JSONL "
              "(requires --ts-interval)");

  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  if (clients == 0) {
    std::cerr << "--clients must be at least 1\n";
    return 2;
  }

  params.core.num_clients = clients;
  params.core.proxy_cache_bytes = proxy_cache;
  params.core.seed = seed;
  params.core.rsa_modulus_bits = rsa_bits;
  params.core.store.dir = store_dir;
  params.core.store.capacity_bytes = store_capacity;
  params.net.port = port;
  params.net.worker_threads = workers != 0 ? workers : clients + 2;
  params.event_driven = event_driven;
  params.epoll.max_connections = max_connections;
  params.epoll.idle_timeout_ms = static_cast<int>(idle_timeout * 1000.0);
  if (event_driven) {
    // The 10k-connection path needs fds; default shells cap at 1024 and the
    // loop would misreport the cap as EMFILE backpressure.
    netio::raise_fd_limit(max_connections != 0 ? max_connections + 64
                                               : 20000);
  }

  if (trace_sample < 0.0 || trace_sample > 1.0) {
    std::cerr << "--trace-sample must be in [0, 1]\n";
    return 2;
  }

  runtime::ProxyServer server(params);

  // Tracer + span sink live for the whole daemon run; attached before
  // start() so no request races the wiring. The sampler is seeded from the
  // same --seed as the proxy keys, so a given (seed, rate) samples the same
  // trace ids on every run.
  std::unique_ptr<obs::Tracer> tracer;
  std::ofstream span_stream;
  std::unique_ptr<obs::JsonlSink> span_sink;
  if (trace_sample > 0.0) {
    obs::Tracer::Params tp;
    tp.seed = seed;
    tp.sample_rate = trace_sample;
    tp.service = "proxyd";
    tracer = std::make_unique<obs::Tracer>(tp);
    if (!trace_out.empty()) {
      span_stream.open(trace_out);
      if (!span_stream) {
        std::cerr << "cannot open " << trace_out << "\n";
        return 1;
      }
      span_sink = std::make_unique<obs::JsonlSink>(span_stream);
      tracer->set_sink(span_sink.get());
    }
    server.set_tracer(tracer.get());
  } else if (!trace_out.empty()) {
    std::cerr << "--trace-out requires --trace-sample > 0\n";
    return 2;
  }

  // Continuous telemetry: pre-register every documented metric family so the
  // very first interval already carries the full schema (instead of families
  // popping into existence as traffic touches them), then start the sampler
  // before serving so interval #0 is a clean pre-traffic baseline.
  std::unique_ptr<obs::TimeSeriesSampler> sampler;
  std::ofstream ts_stream;
  if (ts_interval > 0.0) {
    store::register_store_metric_families();
    fault::register_fault_metric_families();
    obs::register_trace_metric_families();
    obs::TimeSeriesSampler::Params sp;
    sp.interval_seconds = ts_interval;
    sampler = std::make_unique<obs::TimeSeriesSampler>(sp);
    if (!ts_out.empty()) {
      ts_stream.open(ts_out);
      if (!ts_stream) {
        std::cerr << "cannot open " << ts_out << "\n";
        return 1;
      }
      sampler->set_sink(&ts_stream);
    }
    server.set_sampler(sampler.get());
  } else if (!ts_out.empty()) {
    std::cerr << "--ts-out requires --ts-interval > 0\n";
    return 2;
  }

  if (sampler != nullptr) sampler->start();
  if (!server.start(&error)) {
    std::cerr << "cannot start proxy: " << error << "\n";
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // Scripts parse this line to find the ephemeral port.
  std::cout << "baps_proxyd listening on 127.0.0.1:" << server.port()
            << " (clients=" << clients << " seed=" << seed << ")"
            << std::endl;

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(max_seconds);
  // Roughly one registry snapshot per second feeds the rolling window that
  // STATS responses compute rates from; ten poll ticks ≈ one capture.
  int ticks_until_capture = 0;
  while (!g_stop.load()) {
    if (max_seconds != 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    if (--ticks_until_capture <= 0) {
      server.capture_window_snapshot();
      ticks_until_capture = 10;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  // Stopped after the server so no session can touch a dead sampler and the
  // final flush tick captures the post-shutdown counter state.
  if (sampler != nullptr) sampler->stop();
  if (span_sink != nullptr) span_sink->flush();

  const runtime::ProxyStats stats = server.core().stats();
  std::cerr << "proxyd: proxy_hits=" << stats.proxy_hits
            << " peer_hits=" << stats.peer_hits
            << " origin_fetches=" << stats.origin_fetches
            << " false_forwards=" << stats.false_forwards
            << " rejected_index_updates=" << stats.rejected_index_updates
            << "\n";

  if (!metrics_out.empty()) {
    const bool ok = obs::ReportBuilder("baps_proxyd")
                        .set_title("proxy daemon run")
                        .set_args(argc, argv)
                        .set_registry(obs::Registry::global().snapshot())
                        .write(metrics_out, &error);
    if (!ok) {
      std::cerr << "cannot write " << metrics_out << ": " << error << "\n";
      return 1;
    }
    std::cerr << "wrote " << metrics_out << "\n";
  }
  return 0;
}
