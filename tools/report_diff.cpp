// report_diff — the CI perf-regression gate. Compares a current
// baps.report.v1 report against a committed baseline (another report, or the
// BENCH_hotpath.json history file) on the replay-throughput gauges and exits
// nonzero when the current side regressed beyond tolerance.
//
//   report_diff BASELINE CURRENT [--tolerance PCT] [--metric-tolerance
//   NAME=PCT]... [--inject-regression PCT]
//
// Mode is auto-detected from the schemas (see src/obs/report_diff.hpp):
// report-vs-report compares absolute values (same-machine A/B, default
// tolerance 20%); a BENCH_hotpath.json baseline switches to the
// geomean-normalized shape comparison (cross-machine, default 50%).
// --inject-regression is the gate's self-test: it scales the current side
// down so CI can prove the gate actually fails on a real throughput drop.
//
// Exit codes: 0 no regression, 1 regression (or unusable inputs),
// 2 usage error.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/report_diff.hpp"
#include "util/args.hpp"

namespace {

std::optional<baps::obs::JsonValue> load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto doc = baps::obs::json_parse(buf.str(), &error);
  if (!doc) {
    std::cerr << path << ": parse error: " << error << "\n";
    return std::nullopt;
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  baps::obs::ReportDiffOptions options;
  baps::util::ArgParser parser(
      "report_diff",
      "compare two baps.report.v1 / baps.bench_hotpath.v1 files and fail on "
      "throughput regressions");
  parser.allow_positionals("baseline.json current.json");
  parser.option("--tolerance", &options.tolerance_pct, "PCT",
                "allowed relative drop in percent (default: 20 for "
                "report-vs-report, 50 for hotpath shape mode)");
  parser.custom("--metric-tolerance", "NAME=PCT",
                "per-metric tolerance override (repeatable)",
                [&options](const std::string& v) {
                  const auto eq = v.find('=');
                  if (eq == std::string::npos || eq == 0) return false;
                  double pct = 0.0;
                  if (!baps::util::parse_number(v.substr(eq + 1), &pct)) {
                    return false;
                  }
                  options.metric_tolerances[v.substr(0, eq)] = pct;
                  return true;
                });
  parser.option("--inject-regression", &options.inject_regression_pct, "PCT",
                "self-test: scale current values down by PCT percent before "
                "comparing (the gate must then fail)");
  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  if (parser.positionals().size() != 2) {
    std::cerr << "need exactly two files\n" << parser.usage();
    return 2;
  }

  const auto baseline = load_json(parser.positionals()[0]);
  const auto current = load_json(parser.positionals()[1]);
  if (!baseline.has_value() || !current.has_value()) return 2;

  const baps::obs::ReportDiffResult result =
      baps::obs::diff_reports(*baseline, *current, options);
  for (const std::string& note : result.notes) {
    std::cout << "note: " << note << "\n";
  }
  for (const std::string& finding : result.findings) {
    std::cerr << "FAIL: " << finding << "\n";
  }
  if (!result.ok) return 1;
  if (result.compared == 0) {
    std::cerr << "FAIL: nothing to compare (no shared throughput metrics)\n";
    return 1;
  }
  std::cout << "ok: " << result.compared
            << " comparisons within tolerance\n";
  return 0;
}
