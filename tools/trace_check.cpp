// trace_check — validates that span JSONL logs from the two sides of a
// traced run stitch into whole traces.
//
// Takes two or more span logs (baps_fetch --trace-out on the client side,
// baps_proxyd --trace-out on the proxy side), parses every "span" event, and
// checks:
//   1. every file contains at least one span, every span has a non-zero
//      trace_id and span_id, and end_ns >= start_ns;
//   2. at least --min-shared trace ids (default 1) appear in ALL files —
//      the wire really propagated the context across processes;
//   3. within each shared trace, every span's parent_id is either 0 (a
//      root) or the span_id of another span of the same trace, where the
//      parent may live in a DIFFERENT file — the cross-process stitch;
//   4. each shared trace has exactly one root span overall.
//
// Exit 0 when every check passes (with a summary on stdout), 1 otherwise
// (first violation on stderr). scripts/check.sh runs this against a live
// proxyd + fetch pair with --trace-sample 1.0.
//
//   trace_check client.spans.jsonl proxyd.spans.jsonl
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/args.hpp"

namespace {

using baps::obs::JsonValue;

struct SpanRow {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::string kind;
  std::string file;
};

bool load_spans(const std::string& path, std::vector<SpanRow>* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  std::size_t spans = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    const auto doc = baps::obs::json_parse(line, &error);
    if (!doc.has_value()) {
      std::cerr << path << ":" << line_no << ": parse error: " << error
                << "\n";
      return false;
    }
    const JsonValue* event = doc->find("event");
    if (event == nullptr || !event->is_string() ||
        event->as_string() != "span") {
      continue;  // other event kinds may share the stream
    }
    SpanRow row;
    row.file = path;
    const std::pair<const char*, std::uint64_t*> ids[] = {
        {"trace_id", &row.trace_id},
        {"span_id", &row.span_id},
        {"parent_id", &row.parent_id}};
    for (const auto& [key, field] : ids) {
      const JsonValue* v = doc->find(key);
      if (v == nullptr || !v->is_number()) {
        std::cerr << path << ":" << line_no << ": span needs numeric " << key
                  << "\n";
        return false;
      }
      *field = v->as_uint();
    }
    const JsonValue* kind = doc->find("kind");
    row.kind = kind != nullptr && kind->is_string() ? kind->as_string() : "";
    const JsonValue* start = doc->find("start_ns");
    const JsonValue* end = doc->find("end_ns");
    if (start == nullptr || end == nullptr || !start->is_number() ||
        !end->is_number() || end->as_uint() < start->as_uint()) {
      std::cerr << path << ":" << line_no
                << ": span needs start_ns <= end_ns\n";
      return false;
    }
    if (row.trace_id == 0 || row.span_id == 0) {
      std::cerr << path << ":" << line_no
                << ": span needs non-zero trace_id and span_id\n";
      return false;
    }
    out->push_back(std::move(row));
    ++spans;
  }
  if (spans == 0) {
    std::cerr << path << ": no spans\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t min_shared = 1;
  baps::util::ArgParser parser(
      "trace_check", "Check that span JSONL logs stitch into whole traces.");
  parser.option("--min-shared", &min_shared, "N",
                "trace ids that must appear in every file (default 1)");
  parser.allow_positionals("spans.jsonl");
  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  const std::vector<std::string>& files = parser.positionals();
  if (files.size() < 2) {
    std::cerr << "usage: trace_check [--min-shared N] <spans.jsonl> "
                 "<spans.jsonl> [...]\n";
    return 2;
  }

  std::vector<SpanRow> all;
  // trace ids per file, to intersect.
  std::vector<std::set<std::uint64_t>> per_file(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::vector<SpanRow> rows;
    if (!load_spans(files[i], &rows)) return 1;
    for (const SpanRow& row : rows) per_file[i].insert(row.trace_id);
    all.insert(all.end(), rows.begin(), rows.end());
  }

  std::set<std::uint64_t> shared = per_file[0];
  for (std::size_t i = 1; i < per_file.size(); ++i) {
    std::set<std::uint64_t> next;
    for (const std::uint64_t id : shared) {
      if (per_file[i].count(id) != 0) next.insert(id);
    }
    shared = std::move(next);
  }
  if (shared.size() < min_shared) {
    std::cerr << "only " << shared.size() << " trace ids appear in all "
              << files.size() << " files (need " << min_shared
              << "): the context did not propagate\n";
    return 1;
  }

  // Within each shared trace, every parent link must resolve somewhere in
  // the union of the files, and exactly one span is the root.
  std::map<std::uint64_t, std::set<std::uint64_t>> span_ids_by_trace;
  for (const SpanRow& row : all) {
    span_ids_by_trace[row.trace_id].insert(row.span_id);
  }
  std::size_t stitched_spans = 0;
  for (const std::uint64_t trace_id : shared) {
    std::size_t roots = 0;
    for (const SpanRow& row : all) {
      if (row.trace_id != trace_id) continue;
      ++stitched_spans;
      if (row.parent_id == 0) {
        ++roots;
        continue;
      }
      if (span_ids_by_trace[trace_id].count(row.parent_id) == 0) {
        std::cerr << row.file << ": span " << row.span_id << " of trace "
                  << trace_id << " has dangling parent " << row.parent_id
                  << "\n";
        return 1;
      }
    }
    if (roots != 1) {
      std::cerr << "trace " << trace_id << " has " << roots
                << " root spans (want exactly 1)\n";
      return 1;
    }
  }

  std::cout << "trace_check: " << all.size() << " spans across "
            << files.size() << " files, " << shared.size()
            << " stitched traces (" << stitched_spans
            << " spans), all parent links resolve\n";
  return 0;
}
