// report_check — validates baps.report.v1 JSON reports.
//
// Parses each file, checks the schema structurally, recomputes every derived
// ratio from its exact integer counters, and validates the transport metric
// families (wire_*/netio_* counters: dir labels, bytes-vs-frames
// consistency) plus the fault-injection families (fault_injected_total /
// fault_recovered_total need a kind label, non-negative values, and per-kind
// recovered <= injected; stale_index_hits_total must be non-negative), the
// tracing families (trace_spans_total needs a kind label,
// trace_stage_seconds a stage label), and the derived latency gauges
// (latency_quantile_seconds / replay_latency_quantile_seconds need a
// q label in {p50,p95,p99,p999} plus a stage/org scope label, finite
// non-negative values, and per-scope monotone quantiles), and the durable
// store family (store_* counters non-negative, store_bytes_total carries a
// read/written dir label, store_stage_seconds carries an op label, and
// store_hits_total + store_misses_total == store_probes_total), and the
// sharded-replay family (per organization, shard_requests_total{org,shard}
// summed over shards must equal shard_merged_requests_total{org} exactly —
// the counter half of the sharded engine's merge contract).
// Given several files, they are treated as successive
// snapshots of one process and every shared wire_*/netio_*/store_* counter
// must be monotone non-decreasing in argument order. Exit 0 when valid, 1
// when not
// (with the first violation on stderr). Used by scripts/check.sh to gate
// the bench artifacts.
//
// --timeseries FILE validates a baps.timeseries.v1 JSONL export instead
// (per-line schema plus the cross-record delta/rate/quantile invariants);
// the flag may repeat and mix with report files.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "obs/timeseries.hpp"

namespace {

std::optional<baps::obs::JsonValue> load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto doc = baps::obs::json_parse(buf.str(), &error);
  if (!doc) {
    std::cerr << path << ": parse error: " << error << "\n";
    return std::nullopt;
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: report_check [--timeseries <stream.jsonl>]... "
                 "[<report.json> ...]\n";
    return 2;
  }
  std::vector<baps::obs::JsonValue> reports;
  std::vector<std::string> report_names;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--timeseries") {
      if (i + 1 >= argc) {
        std::cerr << "--timeseries needs a file\n";
        return 2;
      }
      const std::string path = argv[++i];
      std::string error;
      if (!baps::obs::validate_timeseries_file(path, &error)) {
        std::cerr << path << ": invalid time series: " << error << "\n";
        return 1;
      }
      std::cout << path << ": valid " << baps::obs::kTimeSeriesSchema << "\n";
      continue;
    }
    auto doc = load_report(argv[i]);
    if (!doc.has_value()) return 1;
    std::string error;
    if (!baps::obs::validate_report(*doc, &error)) {
      std::cerr << argv[i] << ": invalid report: " << error << "\n";
      return 1;
    }
    reports.push_back(std::move(*doc));
    report_names.push_back(argv[i]);
    std::cout << argv[i] << ": valid " << baps::obs::kReportSchema << "\n";
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    std::string error;
    if (!baps::obs::validate_transport_monotonicity(reports[i - 1],
                                                    reports[i], &error)) {
      std::cerr << report_names[i - 1] << " vs " << report_names[i] << ": "
                << error << "\n";
      return 1;
    }
  }
  if (reports.size() > 1) {
    std::cout << "transport counters monotone across " << reports.size()
              << " reports\n";
  }
  return 0;
}
