// report_check — validates a baps.report.v1 JSON report.
//
// Parses the file, checks the schema structurally, and recomputes every
// derived ratio from its exact integer counters. Exit 0 when valid, 1 when
// not (with the first violation on stderr). Used by scripts/check.sh to
// gate the bench artifacts.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/report.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: report_check <report.json>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string error;
  const auto doc = baps::obs::json_parse(buf.str(), &error);
  if (!doc) {
    std::cerr << argv[1] << ": parse error: " << error << "\n";
    return 1;
  }
  if (!baps::obs::validate_report(*doc, &error)) {
    std::cerr << argv[1] << ": invalid report: " << error << "\n";
    return 1;
  }
  std::cout << argv[1] << ": valid " << baps::obs::kReportSchema << "\n";
  return 0;
}
