// baps_fetch — drive BAPS clients against a proxy, over TCP or in-process.
//
// Runs a workload (one URL or a slice of a preset trace) through a
// BapsSystem whose clients talk to the proxy either over the wire
// (--transport tcp, against a running baps_proxyd) or through the in-process
// loopback (--transport loopback, which embeds the proxy). The same seed and
// client count on both ends derive the same keys, so the two transports must
// produce byte-identical per-request outcomes: --sources-out writes one
// "<client> <source>" line per request for exactly that comparison.
//
//   baps_proxyd --port 4160 --clients 8 &
//   baps_fetch --transport tcp --port 4160 --clients 8
//       --preset bu95 --requests 1000 --sources-out tcp.txt
//   baps_fetch --transport loopback --clients 8
//       --preset bu95 --requests 1000 --sources-out loop.txt
//   diff tcp.txt loop.txt
//
// With --trace-sample the client side of every sampled request is traced
// (root client_fetch span + frame spans, JSONL to --trace-out) and the
// sampled trace context rides the wire, so a proxy running with tracing on
// records spans under the same trace ids. `--stats` asks a running proxyd
// for its live introspection snapshot (baps.trace_stats.v1) and exits:
//
//   baps_fetch --transport tcp --port 4160 --stats
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "fault/fault_plan.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "runtime/system.hpp"
#include "store/tiered_store.hpp"
#include "runtime/tcp_transport.hpp"
#include "trace/presets.hpp"
#include "util/args.hpp"

namespace {

using namespace baps;

// Same CLI-style names as baps_cli.
std::optional<trace::Preset> preset_by_name(const std::string& name) {
  if (name == "nlanr-uc") return trace::Preset::kNlanrUc;
  if (name == "nlanr-bo1") return trace::Preset::kNlanrBo1;
  if (name == "bu95") return trace::Preset::kBu95;
  if (name == "bu98") return trace::Preset::kBu98;
  if (name == "canet2") return trace::Preset::kCanet2;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string transport_name = "tcp";
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t clients = 4;
  std::uint64_t seed = 7;
  std::uint64_t browser_cache = 64 << 10;
  std::uint64_t proxy_cache = 256 << 10;
  std::uint32_t rsa_bits = 256;
  std::string store_dir;
  std::uint64_t store_capacity = 64 << 20;
  std::string url;
  std::uint32_t client = 0;
  std::string preset_name;
  std::uint64_t requests = 1000;
  std::string sources_out, metrics_out;
  std::string fault_rates_spec;
  std::uint64_t fault_seed = 1;
  bool fault_strict = false;
  bool stats = false;
  std::uint32_t stats_spans = 32;
  double trace_sample = 0.0;
  std::string trace_out;
  double ts_interval = 0.0;
  std::string ts_out;

  util::ArgParser parser("baps_fetch",
                         "Fetch documents through a BAPS proxy.");
  parser.option("--transport", &transport_name, "T",
                "tcp | loopback (default tcp)")
      .option("--host", &host, "H", "proxy host (default 127.0.0.1)")
      .option("--port", &port, "P", "proxy port (required for tcp)")
      .option("--clients", &clients, "N",
              "number of clients; must match the proxy (default 4)")
      .option("--seed", &seed, "S",
              "key-derivation seed; must match the proxy (default 7)")
      .option("--browser-cache", &browser_cache, "BYTES",
              "per-client browser cache capacity (default 65536)")
      .option("--proxy-cache", &proxy_cache, "BYTES",
              "embedded proxy cache capacity, loopback only (default 262144)")
      .option("--rsa-bits", &rsa_bits, "B",
              "embedded proxy RSA bits, loopback only (default 256)")
      .option("--store-dir", &store_dir, "DIR",
              "embedded proxy durable cache tier, loopback only (default: no "
              "disk tier); proxy-restart faults warm-start from it")
      .bytes("--store-capacity", &store_capacity, "BYTES",
              "disk tier capacity, k/m/g suffixes ok (default 64m)")
      .option("--url", &url, "URL", "fetch one URL and exit")
      .option("--client", &client, "C", "client id for --url (default 0)")
      .option("--preset", &preset_name, "NAME",
              "replay a preset trace slice (nlanr-uc, bu95, ...)")
      .option("--requests", &requests, "N",
              "trace slice length for --preset (default 1000)")
      .option("--sources-out", &sources_out, "FILE",
              "write one '<client> <source>' line per request")
      .option("--metrics-out", &metrics_out, "FILE",
              "write a baps.report.v1 JSON report")
      .option("--fault-rates", &fault_rates_spec, "SPEC",
              "inject faults, e.g. disconnect=0.05,corrupt=0.02,slow=0.1")
      .option("--fault-seed", &fault_seed, "S",
              "seed for the fault decision streams (default 1)")
      .flag("--fault-strict", &fault_strict,
            "exit 1 unless every injected fault was recovered")
      .flag("--stats", &stats,
            "print the proxy's live trace/metric snapshot and exit (tcp only)")
      .option("--stats-spans", &stats_spans, "N",
              "recent spans to include with --stats (default 32)")
      .option("--trace-sample", &trace_sample, "RATE",
              "trace sampling rate in [0,1] (default 0: tracing off)")
      .option("--trace-out", &trace_out, "FILE",
              "write sampled spans as JSONL (requires --trace-sample)")
      .duration("--ts-interval", &ts_interval, "DUR",
                "continuous time-series sampling interval, e.g. 1s / 250ms "
                "(default 0: sampler off)")
      .option("--ts-out", &ts_out, "FILE",
              "write baps.timeseries.v1 interval records as JSONL "
              "(requires --ts-interval)");

  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  const bool use_tcp = transport_name == "tcp";
  if (!use_tcp && transport_name != "loopback") {
    std::cerr << "--transport must be tcp or loopback\n";
    return 2;
  }
  if (use_tcp && port == 0) {
    std::cerr << "--port is required with --transport tcp\n";
    return 2;
  }
  if (trace_sample < 0.0 || trace_sample > 1.0) {
    std::cerr << "--trace-sample must be in [0, 1]\n";
    return 2;
  }
  if (!trace_out.empty() && trace_sample <= 0.0) {
    std::cerr << "--trace-out requires --trace-sample > 0\n";
    return 2;
  }
  if (!ts_out.empty() && ts_interval <= 0.0) {
    std::cerr << "--ts-out requires --ts-interval > 0\n";
    return 2;
  }
  if (stats) {
    // Pure observer: connect, ask for the live snapshot, print, exit.
    if (!use_tcp) {
      std::cerr << "--stats needs --transport tcp (a running baps_proxyd)\n";
      return 2;
    }
    runtime::TcpTransport::Params tp;
    tp.proxy_host = host;
    tp.proxy_port = port;
    runtime::TcpTransport transport(tp);
    std::cout << transport.trace_stats(stats_spans) << "\n";
    return 0;
  }
  if (url.empty() == preset_name.empty()) {
    std::cerr << "pick exactly one of --url / --preset\n" << parser.usage();
    return 2;
  }
  if (clients == 0) {
    std::cerr << "--clients must be at least 1\n";
    return 2;
  }
  std::unique_ptr<fault::FaultPlan> plan;
  if (!fault_rates_spec.empty()) {
    const auto rates = fault::FaultRates::parse(fault_rates_spec, &error);
    if (!rates.has_value()) {
      std::cerr << "--fault-rates: " << error << "\n";
      return 2;
    }
    plan = std::make_unique<fault::FaultPlan>(fault_seed, *rates);
  }
  if (fault_strict && plan == nullptr) {
    std::cerr << "--fault-strict requires --fault-rates\n";
    return 2;
  }

  if (use_tcp && !store_dir.empty()) {
    std::cerr << "--store-dir is loopback-only (the daemon owns its store; "
                 "pass --store-dir to baps_proxyd instead)\n";
    return 2;
  }

  runtime::BapsSystem::Params params;
  params.num_clients = clients;
  params.browser_cache_bytes = browser_cache;
  params.proxy_cache_bytes = proxy_cache;
  params.seed = seed;
  params.rsa_modulus_bits = rsa_bits;
  params.store.dir = store_dir;
  params.store.capacity_bytes = store_capacity;

  // Declared before the transport/system so it outlives them: channels keep
  // a raw tracer pointer until they are torn down.
  std::unique_ptr<obs::Tracer> tracer;
  std::ofstream span_stream;
  std::unique_ptr<obs::JsonlSink> span_sink;

  std::unique_ptr<runtime::TcpTransport> transport;
  std::unique_ptr<runtime::BapsSystem> sys;
  if (use_tcp) {
    runtime::TcpTransport::Params tp;
    tp.proxy_host = host;
    tp.proxy_port = port;
    transport = std::make_unique<runtime::TcpTransport>(tp);
    sys = std::make_unique<runtime::BapsSystem>(params, *transport);
  } else {
    sys = std::make_unique<runtime::BapsSystem>(params);
  }
  if (plan != nullptr) sys->attach_fault_plan(plan.get());

  // Client-side tracer: every browse() roots a client_fetch span and the
  // sampled context rides the wire to the proxy. Seeded from --seed, so the
  // client and the proxy sample the same trace ids.
  if (trace_sample > 0.0) {
    obs::Tracer::Params tp;
    tp.seed = seed;
    tp.sample_rate = trace_sample;
    tp.service = "client";
    tracer = std::make_unique<obs::Tracer>(tp);
    if (!trace_out.empty()) {
      span_stream.open(trace_out);
      if (!span_stream) {
        std::cerr << "cannot open " << trace_out << "\n";
        return 1;
      }
      span_sink = std::make_unique<obs::JsonlSink>(span_stream);
      tracer->set_sink(span_sink.get());
    }
    sys->set_tracer(tracer.get());
  }

  std::ofstream sources;
  if (!sources_out.empty()) {
    sources.open(sources_out);
    if (!sources) {
      std::cerr << "cannot open " << sources_out << "\n";
      return 1;
    }
  }

  // Continuous telemetry over the workload: pre-register the documented
  // families so interval #0 carries the full schema, then sample on a
  // dedicated thread until the run finishes.
  std::unique_ptr<obs::TimeSeriesSampler> ts_sampler;
  std::ofstream ts_stream;
  if (ts_interval > 0.0) {
    store::register_store_metric_families();
    fault::register_fault_metric_families();
    obs::register_trace_metric_families();
    obs::TimeSeriesSampler::Params sp;
    sp.interval_seconds = ts_interval;
    ts_sampler = std::make_unique<obs::TimeSeriesSampler>(sp);
    if (!ts_out.empty()) {
      ts_stream.open(ts_out);
      if (!ts_stream) {
        std::cerr << "cannot open " << ts_out << "\n";
        return 1;
      }
      ts_sampler->set_sink(&ts_stream);
    }
    ts_sampler->start();
  }

  obs::PhaseTimers phases;
  std::uint64_t done = 0, verified = 0, tampered = 0;
  const auto run_one = [&](runtime::ClientId c, const std::string& u) {
    const runtime::FetchOutcome out = sys->browse(c, u);
    ++done;
    if (out.verified) ++verified;
    if (out.tamper_recovered) ++tampered;
    if (sources.is_open()) {
      sources << c << " " << runtime::source_name(out.source) << "\n";
    }
  };

  if (!url.empty()) {
    if (client >= clients) {
      std::cerr << "--client must be below --clients\n";
      return 2;
    }
    const auto fetch_scope = phases.scope("fetch");
    run_one(client, url);
  } else {
    const auto preset = preset_by_name(preset_name);
    if (!preset.has_value()) {
      std::cerr << "unknown preset: " << preset_name << "\n";
      return 2;
    }
    trace::Trace t;
    {
      const auto load_scope = phases.scope("load_trace");
      t = trace::load_preset(*preset);
    }
    const auto fetch_scope = phases.scope("fetch");
    for (const trace::Request& req : t.requests()) {
      if (done >= requests) break;
      run_one(static_cast<runtime::ClientId>(req.client % clients),
              t.url_of(req.doc));
    }
  }

  if (ts_sampler != nullptr) {
    ts_sampler->stop();  // final tick captures the end-of-run state
    if (!ts_out.empty()) std::cerr << "wrote " << ts_out << "\n";
  }

  std::cout << "requests=" << done << " verified=" << verified
            << " tamper_recovered=" << tampered
            << " local_hits=" << sys->local_hits()
            << " proxy_hits=" << sys->proxy_hits()
            << " peer_hits=" << sys->peer_hits()
            << " origin_fetches=" << sys->origin_fetches()
            << " false_forwards=" << sys->false_forwards();
  if (plan != nullptr) {
    std::cout << " fault_injected=" << plan->injected_total()
              << " fault_recovered=" << plan->recovered_total();
  }
  std::cout << "\n";

  if (span_sink != nullptr) {
    span_sink->flush();
    if (!trace_out.empty()) std::cerr << "wrote " << trace_out << "\n";
  }
  if (sources.is_open()) {
    sources.close();
    std::cerr << "wrote " << sources_out << "\n";
  }
  if (!metrics_out.empty()) {
    const bool ok = obs::ReportBuilder("baps_fetch")
                        .set_title(url.empty() ? preset_name : url)
                        .set_args(argc, argv)
                        .add_phases(phases)
                        .set_registry(obs::Registry::global().snapshot())
                        .write(metrics_out, &error);
    if (!ok) {
      std::cerr << "cannot write " << metrics_out << ": " << error << "\n";
      return 1;
    }
    std::cerr << "wrote " << metrics_out << "\n";
  }
  if (fault_strict) {
    if (!plan->fully_recovered()) {
      std::cerr << "fault-strict: unrecovered faults (injected="
                << plan->injected_total()
                << " recovered=" << plan->recovered_total() << ")\n";
      return 1;
    }
    if (verified != done) {
      std::cerr << "fault-strict: " << (done - verified) << " of " << done
                << " requests were not verified\n";
      return 1;
    }
  }
  return 0;
}
