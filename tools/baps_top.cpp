// baps_top — live terminal dashboard for a running baps_proxyd. Polls the
// daemon's TimeSeriesRequest frame (the sampler's interval ring) and renders
// per-interval request rate, hit ratio, store tier movement, fault/churn
// counters, and latency quantiles. Nothing is computed client-side from raw
// counters: every rate/quantile shown is what the daemon's TimeSeriesSampler
// put in the interval record, so the dashboard and the JSONL export always
// agree.
//
//   baps_top --port 4160                 # full-screen, refresh every second
//   baps_top --port 4160 --plain --iterations 1   # one scripted frame
//
// Exits 0 after --iterations frames (0 = run until killed), 1 when the
// daemon cannot be reached or answers with an unusable window.
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "obs/timeseries.hpp"
#include "runtime/tcp_transport.hpp"
#include "util/args.hpp"

namespace {

using baps::obs::JsonValue;

/// Finds an entry with `name` (and, when `label_key` is nonempty, a matching
/// label) in a record's counters/gauges/histograms array.
const JsonValue* find_entry(const JsonValue& record, const char* section,
                            const std::string& name,
                            const std::string& label_key = {},
                            const std::string& label_value = {}) {
  const JsonValue* arr = record.find(section);
  if (arr == nullptr || !arr->is_array()) return nullptr;
  for (const JsonValue& e : arr->as_array()) {
    if (!e.is_object()) continue;
    const JsonValue* n = e.find("name");
    if (n == nullptr || !n->is_string() || n->as_string() != name) continue;
    if (label_key.empty()) return &e;
    const JsonValue* labels = e.find("labels");
    const JsonValue* v = labels != nullptr ? labels->find(label_key) : nullptr;
    if (v != nullptr && v->is_string() && v->as_string() == label_value) {
      return &e;
    }
  }
  return nullptr;
}

double counter_field(const JsonValue& record, const std::string& name,
                     const char* field, const std::string& label_key = {},
                     const std::string& label_value = {}) {
  const JsonValue* e =
      find_entry(record, "counters", name, label_key, label_value);
  const JsonValue* v = e != nullptr ? e->find(field) : nullptr;
  return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

/// Sums `field` over every instance of a counter family (labels ignored).
double counter_family_field(const JsonValue& record, const std::string& name,
                            const char* field) {
  const JsonValue* arr = record.find("counters");
  if (arr == nullptr || !arr->is_array()) return 0.0;
  double sum = 0.0;
  for (const JsonValue& e : arr->as_array()) {
    if (!e.is_object()) continue;
    const JsonValue* n = e.find("name");
    if (n == nullptr || !n->is_string() || n->as_string() != name) continue;
    const JsonValue* v = e.find(field);
    if (v != nullptr && v->is_number()) sum += v->as_double();
  }
  return sum;
}

std::string fmt_rate(double v) {
  char buf[48];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f", v);
  }
  return buf;
}

std::string fmt_seconds(double v) {
  char buf[48];
  if (v <= 0.0) {
    return "-";
  } else if (v < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.0fus", v * 1e6);
  } else if (v < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", v * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", v);
  }
  return buf;
}

void render(const JsonValue& window, bool plain) {
  const JsonValue* intervals = window.find("intervals");
  if (intervals == nullptr || !intervals->is_array() ||
      intervals->as_array().empty()) {
    std::cout << "no intervals yet (sampler warming up)\n";
    return;
  }
  const JsonValue& rec = intervals->as_array().back();
  if (!plain) std::cout << "\x1b[H\x1b[2J";  // home + clear

  const JsonValue* seq = rec.find("seq");
  const JsonValue* interval = rec.find("interval_seconds");
  std::cout << "baps_top — interval #"
            << (seq != nullptr ? seq->as_uint() : 0) << " ("
            << (interval != nullptr ? interval->as_double() : 0.0)
            << "s), ring depth " << intervals->as_array().size() << "\n\n";

  const double req_rate =
      counter_field(rec, "proxy_fetch_requests_total", "per_second");
  const double req_delta =
      counter_field(rec, "proxy_fetch_requests_total", "delta");
  const double hit_proxy = counter_field(rec, "proxy_fetch_served_total",
                                         "delta", "source", "proxy-cache");
  const double hit_peer = counter_field(rec, "proxy_fetch_served_total",
                                        "delta", "source", "remote-browser");
  const double origin = counter_field(rec, "proxy_fetch_served_total",
                                      "delta", "source", "origin-server");
  const double hit_ratio =
      req_delta > 0.0 ? (hit_proxy + hit_peer) / req_delta : 0.0;
  std::cout << "requests   " << fmt_rate(req_rate) << "/s"
            << "   hit ratio " << std::round(hit_ratio * 1000.0) / 10.0
            << "%  (proxy " << hit_proxy << ", peer " << hit_peer
            << ", origin " << origin << ")\n";

  const double ff =
      counter_field(rec, "proxy_false_forwards_total", "per_second");
  const double stale =
      counter_field(rec, "stale_index_hits_total", "per_second");
  std::cout << "staleness  false forwards " << fmt_rate(ff) << "/s"
            << "   stale index hits " << fmt_rate(stale) << "/s\n";

  const double tx = counter_field(rec, "wire_bytes_total", "per_second",
                                  "dir", "tx");
  const double rx = counter_field(rec, "wire_bytes_total", "per_second",
                                  "dir", "rx");
  std::cout << "wire       tx " << fmt_rate(tx) << " B/s   rx "
            << fmt_rate(rx) << " B/s\n";

  // Connection load: live count from the event loop's gauge, accept rate
  // from the accepted-connections counter. Absent (all zeros) on daemons
  // running the blocking transport, which predates these instruments.
  const JsonValue* active_g =
      find_entry(rec, "gauges", "netio_connections_active");
  const JsonValue* active_v =
      active_g != nullptr ? active_g->find("value") : nullptr;
  const double conns_active =
      active_v != nullptr && active_v->is_number() ? active_v->as_double()
                                                   : 0.0;
  const double accept_rate =
      counter_field(rec, "netio_connections_total", "per_second");
  const double idle_closes =
      counter_field(rec, "netio_epoll_idle_closes_total", "delta");
  if (active_g != nullptr || accept_rate > 0.0) {
    std::cout << "conns      active " << conns_active << "   accept "
              << fmt_rate(accept_rate) << "/s   idle closes "
              << idle_closes << " this interval\n";
  }

  const double demote =
      counter_field(rec, "store_demotions_total", "per_second");
  const double promote =
      counter_field(rec, "store_promotions_total", "per_second");
  const double sprobe = counter_field(rec, "store_probes_total", "delta");
  const double shit = counter_field(rec, "store_hits_total", "delta");
  std::cout << "store      demote " << fmt_rate(demote) << "/s   promote "
            << fmt_rate(promote) << "/s   disk probes " << sprobe
            << " (hits " << shit << ")\n";

  const double injected =
      counter_family_field(rec, "fault_injected_total", "per_second");
  const double recovered =
      counter_family_field(rec, "fault_recovered_total", "per_second");
  const double injected_total =
      counter_family_field(rec, "fault_injected_total", "value");
  std::cout << "faults     inject " << fmt_rate(injected) << "/s   recover "
            << fmt_rate(recovered) << "/s   injected total "
            << injected_total << "\n";

  const JsonValue* lat = find_entry(rec, "histograms",
                                    "netio_request_seconds", "op", "fetch");
  if (lat != nullptr) {
    const auto q = [&](const char* k) {
      const JsonValue* v = lat->find(k);
      return v != nullptr && v->is_number() ? v->as_double() : 0.0;
    };
    const JsonValue* n = lat->find("count_delta");
    std::cout << "latency    p50 " << fmt_seconds(q("p50")) << "   p95 "
              << fmt_seconds(q("p95")) << "   p99 " << fmt_seconds(q("p99"))
              << "   (" << (n != nullptr ? n->as_uint() : 0)
              << " fetches this interval)\n";
  }

  if (const JsonValue* proc = rec.find("process");
      proc != nullptr && proc->is_object()) {
    const JsonValue* rss = proc->find("rss_bytes");
    const JsonValue* cpu = proc->find("cpu_delta_seconds");
    const double interval_s =
        interval != nullptr && interval->as_double() > 0.0
            ? interval->as_double()
            : 1.0;
    std::cout << "process    rss "
              << fmt_rate(rss != nullptr ? rss->as_double() : 0.0)
              << "B   cpu "
              << std::round((cpu != nullptr ? cpu->as_double() : 0.0) /
                            interval_s * 1000.0) /
                     10.0
              << "%";
    if (const JsonValue* threads = proc->find("threads");
        threads != nullptr && threads->is_array()) {
      std::cout << "   threads " << threads->as_array().size();
    }
    std::cout << "\n";
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double interval = 1.0;
  std::uint64_t iterations = 0;
  std::uint32_t max_intervals = 8;
  bool plain = false;

  baps::util::ArgParser parser(
      "baps_top", "live per-interval dashboard for a running baps_proxyd");
  parser.option("--host", &host, "HOST", "proxy host (default 127.0.0.1)")
      .option("--port", &port, "PORT", "proxy port (required)")
      .duration("--interval", &interval,
                "DUR", "poll cadence, e.g. 1s / 250ms (default 1s)")
      .option("--iterations", &iterations, "N",
              "frames to render before exiting (default 0: run forever)")
      .option("--max-intervals", &max_intervals, "N",
              "interval records to request per poll (default 8)")
      .flag("--plain", &plain,
            "append frames without clearing the screen (for scripts/CI)");
  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << parser.usage();
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  if (port == 0) {
    std::cerr << "--port is required\n" << parser.usage();
    return 2;
  }

  baps::runtime::TcpTransport::Params tp;
  tp.proxy_host = host;
  tp.proxy_port = port;
  baps::runtime::TcpTransport transport(tp);

  for (std::uint64_t frame = 0; iterations == 0 || frame < iterations;
       ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
    const std::string json = transport.time_series(max_intervals);
    std::string perr;
    auto window = baps::obs::json_parse(json, &perr);
    if (!window) {
      std::cerr << "bad time-series window from proxy: " << perr << "\n";
      return 1;
    }
    const JsonValue* schema = window->find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != baps::obs::kTimeSeriesWindowSchema) {
      std::cerr << "unexpected schema in proxy answer\n";
      return 1;
    }
    render(*window, plain);
  }
  return 0;
}
