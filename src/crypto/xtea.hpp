// XTEA block cipher (Needham & Wheeler) with a CTR-mode stream wrapper.
//
// The paper's protocols assume "a symmetric key system (e.g. DES)". XTEA is
// our stand-in: same role (shared-secret confidentiality for relayed
// documents), trivially implementable from the published reference code, and
// unlike DES it has no export-era key-schedule baggage. 64-bit blocks,
// 128-bit keys, 32 rounds.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace baps::crypto {

using XteaKey = std::array<std::uint32_t, 4>;

/// Derives a key from raw bytes (e.g. an MD5 digest of a shared secret).
XteaKey xtea_key_from_bytes(std::span<const std::uint8_t> bytes);

/// One-block primitives (v is two 32-bit words).
void xtea_encrypt_block(std::array<std::uint32_t, 2>& v, const XteaKey& key);
void xtea_decrypt_block(std::array<std::uint32_t, 2>& v, const XteaKey& key);

/// CTR-mode keystream XOR: encryption and decryption are the same operation.
/// `nonce` must be unique per (key, message).
std::vector<std::uint8_t> xtea_ctr_crypt(std::span<const std::uint8_t> data,
                                         const XteaKey& key,
                                         std::uint64_t nonce);

}  // namespace baps::crypto
