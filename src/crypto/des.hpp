// DES (FIPS 46-3), the symmetric cipher the paper's §6 names for its
// shared-key protocols ("DES (Data Encryption Standard) is such an
// example"). 64-bit blocks, 56-bit effective keys, 16 Feistel rounds.
//
// DES has been brute-forceable since the late 1990s; it is provided for
// protocol fidelity and interoperability experiments. New code should use
// the XTEA-CTR wrapper (or a real AEAD outside this repo). A CBC mode is
// included because that is what deployed DES protocols of the era used.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace baps::crypto {

/// Key schedule: sixteen 48-bit round keys derived from a 64-bit key
/// (parity bits ignored, per the standard).
class DesKeySchedule {
 public:
  explicit DesKeySchedule(std::uint64_t key);

  const std::array<std::uint64_t, 16>& round_keys() const { return keys_; }

 private:
  std::array<std::uint64_t, 16> keys_{};
};

/// One-block ECB primitives.
std::uint64_t des_encrypt_block(std::uint64_t plaintext,
                                const DesKeySchedule& schedule);
std::uint64_t des_decrypt_block(std::uint64_t ciphertext,
                                const DesKeySchedule& schedule);

/// CBC mode over byte buffers with PKCS#5-style padding (always adds
/// 1..8 bytes, so any input length round-trips).
std::vector<std::uint8_t> des_cbc_encrypt(std::span<const std::uint8_t> data,
                                          std::uint64_t key,
                                          std::uint64_t iv);
/// Throws InvariantError on malformed ciphertext length or padding.
std::vector<std::uint8_t> des_cbc_decrypt(
    std::span<const std::uint8_t> ciphertext, std::uint64_t key,
    std::uint64_t iv);

}  // namespace baps::crypto
