// HMAC-MD5 (RFC 2104): keyed message authentication over the repo's MD5.
//
// Used by the runtime engine's index-update authentication: a client and
// the proxy share a symmetric key, and index add/remove messages carry an
// HMAC so no third party can forge invalidations for someone else's cache.
// (The paper's §6 protocols assume exactly such a shared-symmetric-key
// channel between each client and the proxy.)
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "crypto/md5.hpp"

namespace baps::crypto {

/// HMAC-MD5(key, message). Keys longer than the 64-byte block are hashed
/// first, per RFC 2104.
Md5Digest hmac_md5(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);

Md5Digest hmac_md5(std::string_view key, std::string_view message);

/// Constant-shape comparison (full-width, no early exit) for MAC checks.
bool digest_equal(const Md5Digest& a, const Md5Digest& b);

}  // namespace baps::crypto
