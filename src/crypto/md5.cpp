#include "crypto/md5.hpp"

#include <cstring>

#include "util/assert.hpp"
#include "util/hex.hpp"

namespace baps::crypto {
namespace {

// Per-round shift amounts, RFC 1321 §3.4.
constexpr std::uint32_t kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i+1)|), precomputed per RFC 1321.
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

std::uint32_t rotl(std::uint32_t x, std::uint32_t n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

Md5::Md5() : state_{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476} {}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t f;
    std::uint32_t g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(std::span<const std::uint8_t> data) {
  BAPS_REQUIRE(!finished_, "Md5::update after finish");
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Md5::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Md5Digest Md5::finish() {
  BAPS_REQUIRE(!finished_, "Md5::finish called twice");
  finished_ = true;
  const std::uint64_t bit_len = total_bytes_ * 8;
  // Padding: 0x80 then zeros to 56 mod 64, then the 64-bit little-endian
  // message length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  finished_ = false;  // allow the padding updates below
  update(std::span<const std::uint8_t>(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  total_bytes_ -= pad_len;  // length field reflects the original message only
  update(std::span<const std::uint8_t>(len_bytes, 8));
  finished_ = true;
  BAPS_ENSURE(buffered_ == 0, "md5 padding must end on a block boundary");

  Md5Digest out;
  for (int i = 0; i < 4; ++i) {
    out.bytes[static_cast<std::size_t>(i * 4)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
    out.bytes[static_cast<std::size_t>(i * 4 + 1)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    out.bytes[static_cast<std::size_t>(i * 4 + 2)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    out.bytes[static_cast<std::size_t>(i * 4 + 3)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
  }
  return out;
}

std::string Md5Digest::hex() const {
  return to_hex(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

std::uint64_t Md5Digest::prefix64() const {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  }
  return v;
}

Md5Digest md5(std::span<const std::uint8_t> data) {
  Md5 h;
  h.update(data);
  return h.finish();
}

Md5Digest md5(std::string_view data) {
  Md5 h;
  h.update(data);
  return h.finish();
}

}  // namespace baps::crypto
