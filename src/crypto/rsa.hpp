// Demonstration-grade RSA signatures for the paper's digital watermark.
//
// The proxy signs each document's MD5 digest with its private key; any client
// verifies with the proxy's public key but cannot forge a matching watermark.
// Keys are small (default 256-bit modulus) because the reproduction needs the
// protocol's algebraic shape, not production security; the sizes are knobs.
#pragma once

#include <cstdint>

#include "crypto/biguint.hpp"
#include "crypto/md5.hpp"

namespace baps::crypto {

struct RsaPublicKey {
  BigUInt n;  ///< modulus
  BigUInt e;  ///< public exponent (65537)
};

struct RsaPrivateKey {
  BigUInt n;
  BigUInt d;  ///< private exponent
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Miller–Rabin probabilistic primality test with `rounds` random witnesses.
bool is_probable_prime(const BigUInt& n, int rounds, std::uint64_t seed);

/// Random prime with exactly `bits` bits (top bit set), deterministic in seed.
BigUInt generate_prime(std::size_t bits, std::uint64_t seed);

/// RSA key pair with a modulus of ~`modulus_bits` bits. Deterministic in seed.
/// modulus_bits must be >= 136 so a 16-byte MD5 digest embeds below n.
RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits, std::uint64_t seed);

/// Signature over an MD5 digest: sig = digest^d mod n.
BigUInt rsa_sign_digest(const Md5Digest& digest, const RsaPrivateKey& key);

/// Verifies sig^e mod n == digest.
bool rsa_verify_digest(const Md5Digest& digest, const BigUInt& signature,
                       const RsaPublicKey& key);

}  // namespace baps::crypto
