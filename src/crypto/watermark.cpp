#include "crypto/watermark.hpp"

namespace baps::crypto {

Watermark issue_watermark(std::string_view body,
                          const RsaPrivateKey& proxy_key) {
  return Watermark{rsa_sign_digest(md5(body), proxy_key)};
}

bool verify_watermark(std::string_view body, const Watermark& mark,
                      const RsaPublicKey& proxy_key) {
  return rsa_verify_digest(md5(body), mark.signature, proxy_key);
}

}  // namespace baps::crypto
