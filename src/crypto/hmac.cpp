#include "crypto/hmac.hpp"

#include <array>

namespace baps::crypto {

Md5Digest hmac_md5(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    const Md5Digest kd = md5(key);
    std::copy(kd.bytes.begin(), kd.bytes.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Md5 inner;
  inner.update(ipad);
  inner.update(message);
  const Md5Digest inner_digest = inner.finish();

  Md5 outer;
  outer.update(opad);
  outer.update(inner_digest.bytes);
  return outer.finish();
}

Md5Digest hmac_md5(std::string_view key, std::string_view message) {
  return hmac_md5(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(message.data()),
          message.size()));
}

bool digest_equal(const Md5Digest& a, const Md5Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.bytes.size(); ++i) {
    diff = static_cast<std::uint8_t>(diff | (a.bytes[i] ^ b.bytes[i]));
  }
  return diff == 0;
}

}  // namespace baps::crypto
