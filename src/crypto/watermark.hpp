// The paper's data-integrity scheme (§6.1): when the proxy first fetches a
// document D from the origin, it produces a digital watermark
//   W = RSA_sign(proxy_private_key, MD5(D))
// and hands {D, W} to the caching client. When a remote browser later serves
// D peer-to-peer, the receiver recomputes MD5 and verifies W against the
// proxy's public key. No client can tamper with D and forge a matching W,
// because only the proxy knows its private key.
#pragma once

#include <span>
#include <string_view>

#include "crypto/md5.hpp"
#include "crypto/rsa.hpp"

namespace baps::crypto {

/// A watermark travels with the document through browser caches.
struct Watermark {
  BigUInt signature;

  friend bool operator==(const Watermark&, const Watermark&) = default;
};

/// Issues a watermark for a document body. Proxy-side only.
Watermark issue_watermark(std::string_view body, const RsaPrivateKey& proxy_key);

/// Client-side check that the received body matches its watermark.
bool verify_watermark(std::string_view body, const Watermark& mark,
                      const RsaPublicKey& proxy_key);

}  // namespace baps::crypto
