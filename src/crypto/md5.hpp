// MD5 message digest, implemented from RFC 1321.
//
// The paper's data-integrity protocol watermarks each shared document with an
// MD5 digest signed by the proxy ("a 16-byte MD5 signature" also keys the
// browser index file). MD5 is cryptographically broken for collision
// resistance today; we implement it because it is what the paper specifies,
// and the index/watermark code treats the digest type opaquely so it could be
// swapped for a modern hash.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace baps::crypto {

/// A 16-byte MD5 digest. Comparable and hashable so it can key maps.
struct Md5Digest {
  std::array<std::uint8_t, 16> bytes{};

  friend bool operator==(const Md5Digest&, const Md5Digest&) = default;
  friend auto operator<=>(const Md5Digest&, const Md5Digest&) = default;

  std::string hex() const;
  /// First 8 bytes as a little-endian integer — handy as a compact hash key.
  std::uint64_t prefix64() const;
};

/// Incremental MD5: update() any number of times, then finish().
class Md5 {
 public:
  Md5();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Finalizes and returns the digest. The object must not be reused after.
  Md5Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// One-shot helpers.
Md5Digest md5(std::span<const std::uint8_t> data);
Md5Digest md5(std::string_view data);

}  // namespace baps::crypto

template <>
struct std::hash<baps::crypto::Md5Digest> {
  std::size_t operator()(const baps::crypto::Md5Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};
