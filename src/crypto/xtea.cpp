#include "crypto/xtea.hpp"

namespace baps::crypto {
namespace {
constexpr std::uint32_t kDelta = 0x9E3779B9;
constexpr unsigned kRounds = 32;
}  // namespace

XteaKey xtea_key_from_bytes(std::span<const std::uint8_t> bytes) {
  XteaKey key{};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    key[(i / 4) % 4] ^= static_cast<std::uint32_t>(bytes[i])
                        << (8 * (i % 4));
  }
  return key;
}

void xtea_encrypt_block(std::array<std::uint32_t, 2>& v, const XteaKey& key) {
  std::uint32_t v0 = v[0], v1 = v[1], sum = 0;
  for (unsigned i = 0; i < kRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  v = {v0, v1};
}

void xtea_decrypt_block(std::array<std::uint32_t, 2>& v, const XteaKey& key) {
  std::uint32_t v0 = v[0], v1 = v[1], sum = kDelta * kRounds;
  for (unsigned i = 0; i < kRounds; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
  }
  v = {v0, v1};
}

std::vector<std::uint8_t> xtea_ctr_crypt(std::span<const std::uint8_t> data,
                                         const XteaKey& key,
                                         std::uint64_t nonce) {
  std::vector<std::uint8_t> out(data.size());
  std::uint64_t counter = 0;
  for (std::size_t off = 0; off < data.size(); off += 8, ++counter) {
    std::array<std::uint32_t, 2> block = {
        static_cast<std::uint32_t>(nonce ^ counter),
        static_cast<std::uint32_t>((nonce >> 32) ^ (counter * 0x9E3779B97F4AULL))};
    xtea_encrypt_block(block, key);
    std::uint8_t keystream[8];
    for (int i = 0; i < 4; ++i) {
      keystream[i] = static_cast<std::uint8_t>(block[0] >> (8 * i));
      keystream[4 + i] = static_cast<std::uint8_t>(block[1] >> (8 * i));
    }
    const std::size_t n = std::min<std::size_t>(8, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      out[off + i] = static_cast<std::uint8_t>(data[off + i] ^ keystream[i]);
    }
  }
  return out;
}

}  // namespace baps::crypto
