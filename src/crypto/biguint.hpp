// Arbitrary-precision unsigned integers, just enough for demonstration-grade
// RSA (schoolbook multiplication, binary long division, Montgomery-free
// modular exponentiation). Limbs are 32-bit so products fit in uint64_t.
//
// This is NOT a constant-time implementation and the library's RSA keys are
// deliberately small (256–512 bits): the reproduction needs the *protocol
// shape* of the paper's integrity scheme, not production cryptography.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace baps::crypto {

class BigUInt {
 public:
  BigUInt() = default;
  /// From a machine word.
  explicit BigUInt(std::uint64_t v);
  /// From big-endian bytes (as in a digest).
  static BigUInt from_bytes(std::span<const std::uint8_t> big_endian);
  /// From lowercase/uppercase hex.
  static BigUInt from_hex(const std::string& hex);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  /// Big-endian byte serialization, no leading zeros (empty for zero).
  std::vector<std::uint8_t> to_bytes() const;
  std::string to_hex() const;
  /// Value as uint64_t; requires bit_length() <= 64.
  std::uint64_t to_u64() const;

  friend std::strong_ordering operator<=>(const BigUInt& a, const BigUInt& b);
  friend bool operator==(const BigUInt& a, const BigUInt& b) {
    return a.limbs_ == b.limbs_;
  }

  friend BigUInt operator+(const BigUInt& a, const BigUInt& b);
  /// Requires a >= b.
  friend BigUInt operator-(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
  /// Quotient and remainder; divisor must be nonzero.
  static std::pair<BigUInt, BigUInt> divmod(const BigUInt& num,
                                            const BigUInt& den);
  friend BigUInt operator/(const BigUInt& a, const BigUInt& b) {
    return divmod(a, b).first;
  }
  friend BigUInt operator%(const BigUInt& a, const BigUInt& b) {
    return divmod(a, b).second;
  }

  BigUInt shifted_left(std::size_t bits) const;
  BigUInt shifted_right(std::size_t bits) const;

  /// (base ^ exp) mod m, square-and-multiply. m must be nonzero.
  static BigUInt mod_pow(const BigUInt& base, const BigUInt& exp,
                         const BigUInt& m);
  static BigUInt gcd(BigUInt a, BigUInt b);
  /// Modular inverse of a mod m; returns zero BigUInt if gcd(a, m) != 1.
  static BigUInt mod_inverse(const BigUInt& a, const BigUInt& m);

 private:
  void trim();

  // Little-endian 32-bit limbs; empty vector represents zero.
  std::vector<std::uint32_t> limbs_;
};

}  // namespace baps::crypto
