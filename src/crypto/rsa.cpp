#include "crypto/rsa.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::crypto {
namespace {

BigUInt random_biguint(std::size_t bits, Xoshiro256& rng) {
  BAPS_REQUIRE(bits >= 2, "need at least 2 bits");
  std::vector<std::uint8_t> bytes((bits + 7) / 8);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  // Force exactly `bits` bits and oddness (prime candidates).
  const std::size_t top_bit = (bits - 1) % 8;
  bytes[0] |= static_cast<std::uint8_t>(1u << top_bit);
  bytes[0] &= static_cast<std::uint8_t>((2u << top_bit) - 1u);
  bytes.back() |= 1;
  return BigUInt::from_bytes(bytes);
}

}  // namespace

bool is_probable_prime(const BigUInt& n, int rounds, std::uint64_t seed) {
  if (n < BigUInt(2)) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    const BigUInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // Write n - 1 = d * 2^r with d odd.
  const BigUInt n_minus_1 = n - BigUInt(1);
  BigUInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++r;
  }
  Xoshiro256 rng(seed);
  const std::size_t bits = n.bit_length();
  for (int round = 0; round < rounds; ++round) {
    // Witness in [2, n-2]: draw random values until one lands in range —
    // rejection terminates fast because bits matches n's size.
    BigUInt a;
    do {
      a = random_biguint(bits, rng) % n;
    } while (a < BigUInt(2) || a > n - BigUInt(2));
    BigUInt x = BigUInt::mod_pow(a, d, n);
    if (x == BigUInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUInt generate_prime(std::size_t bits, std::uint64_t seed) {
  BAPS_REQUIRE(bits >= 8, "prime size too small");
  SplitMix64 mixer(seed);
  Xoshiro256 rng(mixer.next());
  for (;;) {
    BigUInt candidate = random_biguint(bits, rng);
    if (is_probable_prime(candidate, 20, mixer.next())) return candidate;
  }
}

RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits, std::uint64_t seed) {
  BAPS_REQUIRE(modulus_bits >= 136,
               "modulus must exceed the 128-bit MD5 digest");
  SplitMix64 mixer(seed);
  const BigUInt e(65537);
  for (;;) {
    const std::size_t half = modulus_bits / 2;
    const BigUInt p = generate_prime(half, mixer.next());
    const BigUInt q = generate_prime(modulus_bits - half, mixer.next());
    if (p == q) continue;
    const BigUInt n = p * q;
    const BigUInt phi = (p - BigUInt(1)) * (q - BigUInt(1));
    if (!(BigUInt::gcd(e, phi) == BigUInt(1))) continue;
    const BigUInt d = BigUInt::mod_inverse(e, phi);
    if (d.is_zero()) continue;
    return RsaKeyPair{RsaPublicKey{n, e}, RsaPrivateKey{n, d}};
  }
}

BigUInt rsa_sign_digest(const Md5Digest& digest, const RsaPrivateKey& key) {
  const BigUInt m = BigUInt::from_bytes(digest.bytes);
  BAPS_REQUIRE(m < key.n, "digest must embed below the modulus");
  return BigUInt::mod_pow(m, key.d, key.n);
}

bool rsa_verify_digest(const Md5Digest& digest, const BigUInt& signature,
                       const RsaPublicKey& key) {
  if (!(signature < key.n)) return false;
  const BigUInt recovered = BigUInt::mod_pow(signature, key.e, key.n);
  return recovered == BigUInt::from_bytes(digest.bytes);
}

}  // namespace baps::crypto
