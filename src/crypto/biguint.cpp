#include "crypto/biguint.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace baps::crypto {

BigUInt::BigUInt(std::uint64_t v) {
  if (v) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigUInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_bytes(std::span<const std::uint8_t> big_endian) {
  BigUInt out;
  for (std::uint8_t byte : big_endian) {
    out = out.shifted_left(8);
    if (byte) {
      if (out.limbs_.empty()) out.limbs_.push_back(0);
      out.limbs_[0] |= byte;
    }
  }
  return out;
}

BigUInt BigUInt::from_hex(const std::string& hex) {
  BigUInt out;
  for (char c : hex) {
    std::uint32_t nib;
    if (c >= '0' && c <= '9') {
      nib = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nib = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nib = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      BAPS_REQUIRE(false, std::string("invalid hex character: ") + c);
      return out;
    }
    out = out.shifted_left(4);
    if (nib) {
      if (out.limbs_.empty()) out.limbs_.push_back(0);
      out.limbs_[0] |= nib;
    }
  }
  return out;
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::vector<std::uint8_t> BigUInt::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(limbs_.size() * 4);
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      out.push_back(static_cast<std::uint8_t>(*it >> shift));
    }
  }
  // Strip leading zeros.
  std::size_t first = 0;
  while (first < out.size() && out[first] == 0) ++first;
  out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(first));
  return out;
}

std::string BigUInt::to_hex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out += kDigits[(*it >> shift) & 0xF];
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::uint64_t BigUInt::to_u64() const {
  BAPS_REQUIRE(bit_length() <= 64, "BigUInt does not fit in 64 bits");
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

std::strong_ordering operator<=>(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUInt operator+(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUInt operator-(const BigUInt& a, const BigUInt& b) {
  BAPS_REQUIRE(a >= b, "BigUInt subtraction underflow");
  BigUInt out;
  out.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) d -= b.limbs_[i];
    if (d < 0) {
      d += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(d);
  }
  out.trim();
  return out;
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt();
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] +
                          static_cast<std::uint64_t>(a.limbs_[i]) * b.limbs_[j] +
                          carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigUInt BigUInt::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigUInt copy = *this;
    return copy;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigUInt BigUInt::shifted_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigUInt();
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >>
                      bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<BigUInt, BigUInt> BigUInt::divmod(const BigUInt& num,
                                            const BigUInt& den) {
  BAPS_REQUIRE(!den.is_zero(), "division by zero");
  if (num < den) return {BigUInt(), num};
  // Binary long division: O(bits * limbs); fine at our key sizes.
  BigUInt quotient;
  quotient.limbs_.assign(num.limbs_.size(), 0);
  BigUInt remainder;
  for (std::size_t i = num.bit_length(); i-- > 0;) {
    remainder = remainder.shifted_left(1);
    if (num.bit(i)) {
      if (remainder.limbs_.empty()) remainder.limbs_.push_back(0);
      remainder.limbs_[0] |= 1;
    }
    if (remainder >= den) {
      remainder = remainder - den;
      quotient.limbs_[i / 32] |= (1u << (i % 32));
    }
  }
  quotient.trim();
  return {quotient, remainder};
}

BigUInt BigUInt::mod_pow(const BigUInt& base, const BigUInt& exp,
                         const BigUInt& m) {
  BAPS_REQUIRE(!m.is_zero(), "mod_pow modulus must be nonzero");
  if (m == BigUInt(1)) return BigUInt();
  BigUInt result(1);
  BigUInt b = base % m;
  for (std::size_t i = 0, n = exp.bit_length(); i < n; ++i) {
    if (exp.bit(i)) result = (result * b) % m;
    b = (b * b) % m;
  }
  return result;
}

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUInt BigUInt::mod_inverse(const BigUInt& a, const BigUInt& m) {
  // Extended Euclid over non-negative values: track coefficients of 'a'
  // (mod m) as (sign, magnitude) to stay within unsigned arithmetic.
  BigUInt r0 = m, r1 = a % m;
  BigUInt t0, t1(1);
  bool neg0 = false, neg1 = false;
  while (!r1.is_zero()) {
    auto [q, r2] = divmod(r0, r1);
    // t2 = t0 - q * t1 with explicit sign handling.
    BigUInt qt = q * t1;
    BigUInt t2;
    bool neg2;
    if (neg0 == neg1) {
      if (t0 >= qt) {
        t2 = t0 - qt;
        neg2 = neg0;
      } else {
        t2 = qt - t0;
        neg2 = !neg0;
      }
    } else {
      t2 = t0 + qt;
      neg2 = neg0;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    neg0 = neg1;
    t1 = std::move(t2);
    neg1 = neg2;
  }
  if (!(r0 == BigUInt(1))) return BigUInt();  // not invertible
  if (neg0) return m - (t0 % m);
  return t0 % m;
}

}  // namespace baps::crypto
