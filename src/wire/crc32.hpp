// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges.
// Every wire frame carries a CRC of its payload so bit-level corruption —
// a flipped bit on the wire, a tampering middlebox, a short write — is
// detected before the payload is ever interpreted.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace baps::wire {

/// One-shot CRC-32 of a byte range.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Convenience overload for string payloads.
std::uint32_t crc32(std::string_view data);

/// Incremental form: feed `crc` from a previous call (start with 0).
std::uint32_t crc32_update(std::uint32_t crc,
                           std::span<const std::uint8_t> data);

}  // namespace baps::wire
