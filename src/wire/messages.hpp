// Typed payloads for every wire frame: the protocol messages of the runtime
// BAPS engine, serialized with wire/codec.hpp. Each message declares its
// FrameKind and round-trips through encode()/decode(); decode() is strict —
// truncated, oversized, or trailing-byte payloads are rejected.
//
// The §6.2 anonymity property is structural here: PeerFetch has exactly one
// field, the document key. There is no slot a requester identity could ride
// in, and the integration tests assert the frames a holder receives are
// byte-for-byte this minimal shape.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wire/frame.hpp"

namespace baps::wire {

// Field ceilings enforced by decode(); anything larger is rejected before
// allocation.
inline constexpr std::uint32_t kMaxUrlLen = 64u << 10;
inline constexpr std::uint32_t kMaxBodyLen = 8u << 20;
inline constexpr std::uint32_t kMaxWatermarkLen = 4u << 10;
inline constexpr std::uint32_t kMaxErrorLen = 4u << 10;
inline constexpr std::uint32_t kMaxKeyLen = 1u << 10;

/// Client id a stats/inspection connection identifies with: the proxy
/// answers Hello but registers nothing.
inline constexpr std::uint32_t kObserverClientId = 0xFFFFFFFFu;

/// Document source as it crosses the wire (a local-browser hit never does).
enum class WireSource : std::uint8_t {
  kProxy = 1,
  kRemoteBrowser = 2,
  kOrigin = 3,
};
bool wire_source_valid(std::uint8_t v);

struct Hello {
  static constexpr FrameKind kKind = FrameKind::kHello;
  std::uint32_t client_id = 0;
  /// Port of the client's peer-serving listener; 0 when the client does not
  /// serve peer fetches (or is an observer).
  std::uint16_t peer_port = 0;
};

struct HelloAck {
  static constexpr FrameKind kKind = FrameKind::kHelloAck;
  /// Proxy RSA public key, big-endian magnitude bytes (BigUInt::to_bytes).
  std::vector<std::uint8_t> rsa_n;
  std::vector<std::uint8_t> rsa_e;
  std::uint32_t max_clients = 0;
};

struct FetchRequest {
  static constexpr FrameKind kKind = FrameKind::kFetchRequest;
  std::string url;
  /// §6.1 retry: skip the browser index after a failed watermark.
  bool avoid_peers = false;
};

struct FetchResponse {
  static constexpr FrameKind kKind = FrameKind::kFetchResponse;
  WireSource source = WireSource::kOrigin;
  bool false_forward = false;
  std::string body;
  std::vector<std::uint8_t> watermark;  ///< RSA signature bytes
};

struct IndexUpdate {
  static constexpr FrameKind kKind = FrameKind::kIndexUpdate;
  bool is_add = false;
  std::uint64_t key = 0;
  std::array<std::uint8_t, 16> mac{};  ///< HMAC-MD5 under the sender's key
};

struct IndexAck {
  static constexpr FrameKind kKind = FrameKind::kIndexAck;
  bool accepted = false;
};

struct PeerFetch {
  static constexpr FrameKind kKind = FrameKind::kPeerFetch;
  std::uint64_t key = 0;  // the whole message: no requester identity (§6.2)
};

struct PeerDeliver {
  static constexpr FrameKind kKind = FrameKind::kPeerDeliver;
  bool found = false;
  std::string body;
  std::vector<std::uint8_t> watermark;
};

struct StatsRequest {
  static constexpr FrameKind kKind = FrameKind::kStatsRequest;
};

struct StatsResponse {
  static constexpr FrameKind kKind = FrameKind::kStatsResponse;
  std::uint64_t proxy_hits = 0;
  std::uint64_t peer_hits = 0;
  std::uint64_t origin_fetches = 0;
  std::uint64_t false_forwards = 0;
  std::uint64_t rejected_index_updates = 0;
};

struct ErrorMsg {
  static constexpr FrameKind kKind = FrameKind::kError;
  std::string message;
};

/// Live-introspection request: the proxy answers with a registry snapshot
/// (current counters/gauges/histograms + windowed rates) and up to
/// `max_spans` most recent spans, without interrupting service.
struct TraceStatsRequest {
  static constexpr FrameKind kKind = FrameKind::kTraceStatsRequest;
  /// 0 = no spans, just the metrics snapshot.
  std::uint32_t max_spans = 0;
};

/// Introspection payload: one JSON document (schema baps.trace_stats.v1,
/// produced by the proxy's tracer + snapshot window). JSON rather than a
/// fixed struct so the snapshot can grow fields without a wire rev.
struct TraceStatsResponse {
  static constexpr FrameKind kKind = FrameKind::kTraceStatsResponse;
  std::string json;
};

/// Live time-series request: the proxy answers with the most recent interval
/// records from its TimeSeriesSampler ring — per-interval counter rates,
/// gauge levels, and windowed histogram quantiles — without interrupting
/// service. `baps_top` polls this frame.
struct TimeSeriesRequest {
  static constexpr FrameKind kKind = FrameKind::kTimeSeriesRequest;
  /// 0 = everything in the ring.
  std::uint32_t max_intervals = 0;
};

/// Time-series payload: one JSON document (schema baps.timeseries_window.v1,
/// an envelope of baps.timeseries.v1 interval records). JSON rather than a
/// fixed struct so records can grow fields without a wire rev — the same
/// choice TraceStatsResponse made.
struct TimeSeriesResponse {
  static constexpr FrameKind kKind = FrameKind::kTimeSeriesResponse;
  std::string json;
};

struct Bye {
  static constexpr FrameKind kKind = FrameKind::kBye;
};

std::string encode(const Hello& m);
std::string encode(const HelloAck& m);
std::string encode(const FetchRequest& m);
std::string encode(const FetchResponse& m);
std::string encode(const IndexUpdate& m);
std::string encode(const IndexAck& m);
std::string encode(const PeerFetch& m);
std::string encode(const PeerDeliver& m);
std::string encode(const StatsRequest& m);
std::string encode(const StatsResponse& m);
std::string encode(const ErrorMsg& m);
std::string encode(const Bye& m);
std::string encode(const TraceStatsRequest& m);
std::string encode(const TraceStatsResponse& m);
std::string encode(const TimeSeriesRequest& m);
std::string encode(const TimeSeriesResponse& m);

bool decode(std::string_view payload, Hello* out);
bool decode(std::string_view payload, HelloAck* out);
bool decode(std::string_view payload, FetchRequest* out);
bool decode(std::string_view payload, FetchResponse* out);
bool decode(std::string_view payload, IndexUpdate* out);
bool decode(std::string_view payload, IndexAck* out);
bool decode(std::string_view payload, PeerFetch* out);
bool decode(std::string_view payload, PeerDeliver* out);
bool decode(std::string_view payload, StatsRequest* out);
bool decode(std::string_view payload, StatsResponse* out);
bool decode(std::string_view payload, ErrorMsg* out);
bool decode(std::string_view payload, Bye* out);
bool decode(std::string_view payload, TraceStatsRequest* out);
bool decode(std::string_view payload, TraceStatsResponse* out);
bool decode(std::string_view payload, TimeSeriesRequest* out);
bool decode(std::string_view payload, TimeSeriesResponse* out);

}  // namespace baps::wire
