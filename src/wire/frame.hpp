// The BAPS wire frame: the versioned envelope every protocol message crosses
// a socket in. Layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic        0x53504142 ("BAPS" as bytes)
//        4     1  version      kVersion (1)
//        5     1  kind         FrameKind
//        6     2  tc_len       trace-context bytes at the payload front
//        8     4  payload_len  bytes following the header (incl. tc block)
//       12     4  payload_crc  CRC-32 (IEEE), see below
//       16     …  [trace ctx]  tc_len bytes (normally 0 or kTraceContextSize)
//       16+tc  …  payload      message-specific encoding (wire/messages.hpp)
//
// Trace context (the distributed-tracing extension) rides in the first
// tc_len bytes of the payload region. tc_len was the must-be-zero reserved
// field through v1 of this format, so:
//   * frames WITHOUT a context (tc_len 0) are byte-identical to the original
//     format and the CRC covers exactly the payload bytes — full backward
//     compatibility both ways;
//   * frames WITH a context are rejected by the original decoder (it
//     required reserved == 0), so tracing needs both ends at this version —
//     the tracer only attaches contexts to sampled traces, never by default;
//   * a NEWER sender may use a larger tc block: this decoder parses the
//     kTraceContextSize-byte prefix it understands and skips the rest
//     (tc blocks shorter than kTraceContextSize are skipped entirely).
// When tc_len > 0 the CRC covers the two tc_len bytes themselves followed by
// the whole payload region, so a bit flip in tc_len cannot silently re-split
// the payload; when tc_len == 0 it covers just the payload, bit-identical to
// the original format.
//
// Decoding is bounded and total: any input — truncated, bit-flipped,
// oversized, or adversarial — yields a typed DecodeStatus, never undefined
// behaviour. kNeedMore distinguishes "keep reading" from hard rejection so a
// streaming reader can decode from a growing buffer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "obs/trace_context.hpp"

namespace baps::wire {

inline constexpr std::uint32_t kMagic = 0x53504142u;  // "BAPS"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
/// Default ceiling on a frame payload; decoders reject anything larger
/// before allocating. Document bodies are far smaller.
inline constexpr std::uint64_t kDefaultMaxPayload = 16ull << 20;

/// Every message kind that crosses the wire. Gaps are never reused;
/// new kinds append.
enum class FrameKind : std::uint8_t {
  kHello = 1,          ///< client → proxy: identify + peer listener port
  kHelloAck = 2,       ///< proxy → client: proxy public key
  kFetchRequest = 3,   ///< client → proxy: url (+ avoid-peers retry flag)
  kFetchResponse = 4,  ///< proxy → client: document + watermark + source
  kIndexUpdate = 5,    ///< client → proxy: MACed index add/remove
  kIndexAck = 6,       ///< proxy → client: update accepted?
  kPeerFetch = 7,      ///< proxy → holder: document key — nothing else (§6.2)
  kPeerDeliver = 8,    ///< holder → proxy: document + watermark
  kStatsRequest = 9,   ///< observer → proxy: counter snapshot request
  kStatsResponse = 10, ///< proxy → observer: counter snapshot
  kError = 11,         ///< either direction: terminal protocol error
  kBye = 12,           ///< orderly close
  kTraceStatsRequest = 13,   ///< observer → proxy: live snapshot + spans
  kTraceStatsResponse = 14,  ///< proxy → observer: introspection JSON
  kTimeSeriesRequest = 15,   ///< observer → proxy: recent interval records
  kTimeSeriesResponse = 16,  ///< proxy → observer: time-series window JSON
};

inline constexpr std::uint8_t kMinFrameKind = 1;
inline constexpr std::uint8_t kMaxFrameKind = 16;

/// Bytes of the trace-context block this version reads and writes:
/// u64 trace_id, u64 span_id, u8 flags (bit 0 = sampled).
inline constexpr std::uint16_t kTraceContextSize = 17;

bool frame_kind_valid(std::uint8_t kind);
std::string frame_kind_name(FrameKind kind);

struct Frame {
  FrameKind kind = FrameKind::kBye;
  std::string payload;
  /// Trace context carried by the frame; !valid() when none was attached.
  obs::TraceContext trace;
};

enum class DecodeStatus {
  kOk,
  kNeedMore,            ///< valid so far, frame incomplete
  kBadMagic,
  kBadVersion,
  kBadTraceContext,     ///< tc_len larger than the payload region
  kBadKind,
  kOversized,           ///< payload_len exceeds the decoder's ceiling
  kBadCrc,
};

std::string decode_status_name(DecodeStatus status);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;
  std::size_t consumed = 0;  ///< bytes to drop from the buffer when kOk
};

/// Serializes one frame (header + payload), with no trace context — the
/// output is byte-identical to the pre-tracing frame format.
std::string encode_frame(FrameKind kind, std::string_view payload);

/// Serializes one frame carrying `trace`. An invalid (trace_id 0) context
/// degrades to the plain encoding, so call sites can pass their context
/// unconditionally.
std::string encode_frame(FrameKind kind, std::string_view payload,
                         const obs::TraceContext& trace);

/// Decodes the frame at the front of `buf`. On kOk, `frame` holds the
/// payload and `consumed` the total frame size; on kNeedMore the buffer is
/// merely short; every other status is a hard protocol violation and the
/// connection should be dropped.
DecodeResult decode_frame(std::span<const std::uint8_t> buf,
                          std::uint64_t max_payload = kDefaultMaxPayload);
DecodeResult decode_frame(std::string_view buf,
                          std::uint64_t max_payload = kDefaultMaxPayload);

}  // namespace baps::wire
