// The BAPS wire frame: the versioned envelope every protocol message crosses
// a socket in. Layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic        0x53504142 ("BAPS" as bytes)
//        4     1  version      kVersion (1)
//        5     1  kind         FrameKind
//        6     2  reserved     must be zero
//        8     4  payload_len  bytes following the header
//       12     4  payload_crc  CRC-32 (IEEE) of the payload bytes
//       16     …  payload      message-specific encoding (wire/messages.hpp)
//
// Decoding is bounded and total: any input — truncated, bit-flipped,
// oversized, or adversarial — yields a typed DecodeStatus, never undefined
// behaviour. kNeedMore distinguishes "keep reading" from hard rejection so a
// streaming reader can decode from a growing buffer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace baps::wire {

inline constexpr std::uint32_t kMagic = 0x53504142u;  // "BAPS"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
/// Default ceiling on a frame payload; decoders reject anything larger
/// before allocating. Document bodies are far smaller.
inline constexpr std::uint64_t kDefaultMaxPayload = 16ull << 20;

/// Every message kind that crosses the wire. Gaps are never reused;
/// new kinds append.
enum class FrameKind : std::uint8_t {
  kHello = 1,          ///< client → proxy: identify + peer listener port
  kHelloAck = 2,       ///< proxy → client: proxy public key
  kFetchRequest = 3,   ///< client → proxy: url (+ avoid-peers retry flag)
  kFetchResponse = 4,  ///< proxy → client: document + watermark + source
  kIndexUpdate = 5,    ///< client → proxy: MACed index add/remove
  kIndexAck = 6,       ///< proxy → client: update accepted?
  kPeerFetch = 7,      ///< proxy → holder: document key — nothing else (§6.2)
  kPeerDeliver = 8,    ///< holder → proxy: document + watermark
  kStatsRequest = 9,   ///< observer → proxy: counter snapshot request
  kStatsResponse = 10, ///< proxy → observer: counter snapshot
  kError = 11,         ///< either direction: terminal protocol error
  kBye = 12,           ///< orderly close
};

inline constexpr std::uint8_t kMinFrameKind = 1;
inline constexpr std::uint8_t kMaxFrameKind = 12;

bool frame_kind_valid(std::uint8_t kind);
std::string frame_kind_name(FrameKind kind);

struct Frame {
  FrameKind kind = FrameKind::kBye;
  std::string payload;
};

enum class DecodeStatus {
  kOk,
  kNeedMore,     ///< valid so far, frame incomplete
  kBadMagic,
  kBadVersion,
  kBadReserved,
  kBadKind,
  kOversized,    ///< payload_len exceeds the decoder's ceiling
  kBadCrc,
};

std::string decode_status_name(DecodeStatus status);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;
  std::size_t consumed = 0;  ///< bytes to drop from the buffer when kOk
};

/// Serializes one frame (header + payload).
std::string encode_frame(FrameKind kind, std::string_view payload);

/// Decodes the frame at the front of `buf`. On kOk, `frame` holds the
/// payload and `consumed` the total frame size; on kNeedMore the buffer is
/// merely short; every other status is a hard protocol violation and the
/// connection should be dropped.
DecodeResult decode_frame(std::span<const std::uint8_t> buf,
                          std::uint64_t max_payload = kDefaultMaxPayload);
DecodeResult decode_frame(std::string_view buf,
                          std::uint64_t max_payload = kDefaultMaxPayload);

}  // namespace baps::wire
