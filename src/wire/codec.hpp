// Bounds-checked little-endian payload encoding. Writer appends fixed-width
// integers and length-prefixed byte strings; Reader is the strict inverse —
// every read checks the remaining bytes and every variable-length field
// checks a caller-supplied ceiling, so a truncated or hostile payload decodes
// to `false`, never to out-of-bounds access.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace baps::wire {

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { append_le(v, 2); }
  void u32(std::uint32_t v) { append_le(v, 4); }
  void u64(std::uint64_t v) { append_le(v, 8); }

  /// u32 length prefix + raw bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    str({reinterpret_cast<const char*>(b.data()), b.size()});
  }
  /// Fixed-width raw bytes, no length prefix (e.g. a 16-byte MAC).
  void raw(const std::uint8_t* p, std::size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  void append_le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view buf) : buf_(buf) {}

  bool u8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<std::uint8_t>(buf_[pos_++]);
    return true;
  }
  bool u16(std::uint16_t* v) { return read_le(v, 2); }
  bool u32(std::uint32_t* v) { return read_le(v, 4); }
  bool u64(std::uint64_t* v) { return read_le(v, 8); }

  /// Length-prefixed string; rejects lengths beyond `max_len` or the buffer.
  bool str(std::string* out, std::uint32_t max_len) {
    std::uint32_t n = 0;
    if (!u32(&n)) return false;
    if (n > max_len || n > remaining()) return false;
    out->assign(buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool bytes(std::vector<std::uint8_t>* out, std::uint32_t max_len) {
    std::string s;
    if (!str(&s, max_len)) return false;
    out->assign(s.begin(), s.end());
    return true;
  }
  bool raw(std::uint8_t* p, std::size_t n) {
    if (n > remaining()) return false;
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::size_t remaining() const { return buf_.size() - pos_; }
  /// Decoders require the payload to be fully consumed: trailing bytes mean
  /// a different (newer or corrupted) message shape.
  bool at_end() const { return pos_ == buf_.size(); }

 private:
  template <typename T>
  bool read_le(T* v, int width) {
    if (remaining() < static_cast<std::size_t>(width)) return false;
    std::uint64_t acc = 0;
    for (int i = 0; i < width; ++i) {
      acc |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    pos_ += static_cast<std::size_t>(width);
    *v = static_cast<T>(acc);
    return true;
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace baps::wire
