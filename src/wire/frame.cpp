#include "wire/frame.hpp"

#include "util/assert.hpp"
#include "wire/codec.hpp"
#include "wire/crc32.hpp"

namespace baps::wire {

bool frame_kind_valid(std::uint8_t kind) {
  return kind >= kMinFrameKind && kind <= kMaxFrameKind;
}

std::string frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello: return "hello";
    case FrameKind::kHelloAck: return "hello-ack";
    case FrameKind::kFetchRequest: return "fetch-request";
    case FrameKind::kFetchResponse: return "fetch-response";
    case FrameKind::kIndexUpdate: return "index-update";
    case FrameKind::kIndexAck: return "index-ack";
    case FrameKind::kPeerFetch: return "peer-fetch";
    case FrameKind::kPeerDeliver: return "peer-deliver";
    case FrameKind::kStatsRequest: return "stats-request";
    case FrameKind::kStatsResponse: return "stats-response";
    case FrameKind::kError: return "error";
    case FrameKind::kBye: return "bye";
    case FrameKind::kTraceStatsRequest: return "trace-stats-request";
    case FrameKind::kTraceStatsResponse: return "trace-stats-response";
    case FrameKind::kTimeSeriesRequest: return "time-series-request";
    case FrameKind::kTimeSeriesResponse: return "time-series-response";
  }
  BAPS_REQUIRE(false, "unknown frame kind");
  return {};
}

std::string decode_status_name(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadTraceContext: return "bad-trace-context";
    case DecodeStatus::kBadKind: return "bad-kind";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  BAPS_REQUIRE(false, "unknown decode status");
  return {};
}

namespace {

// CRC as the decoder recomputes it: over the payload region alone when no
// trace context rides along (the original format), and over the tc_len
// field's own two bytes followed by the full payload region otherwise — so
// a bit flip in tc_len can never silently re-split the region into a
// different (context, payload) pair.
std::uint32_t frame_crc(std::uint16_t tc_len, std::string_view region) {
  const auto bytes = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(region.data()), region.size());
  if (tc_len == 0) return crc32(bytes);
  const std::uint8_t len_le[2] = {
      static_cast<std::uint8_t>(tc_len & 0xff),
      static_cast<std::uint8_t>(tc_len >> 8),
  };
  return crc32_update(crc32({len_le, 2}), bytes);
}

}  // namespace

std::string encode_frame(FrameKind kind, std::string_view payload) {
  Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u16(0);  // no trace context
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  std::string out = w.take();
  out.append(payload.data(), payload.size());
  return out;
}

std::string encode_frame(FrameKind kind, std::string_view payload,
                         const obs::TraceContext& trace) {
  if (!trace.valid()) return encode_frame(kind, payload);
  Writer tc;
  tc.u64(trace.trace_id);
  tc.u64(trace.span_id);
  tc.u8(trace.sampled ? 1 : 0);
  std::string region = tc.take();
  BAPS_REQUIRE(region.size() == kTraceContextSize,
               "trace context block size drifted from kTraceContextSize");
  region.append(payload.data(), payload.size());
  Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u16(kTraceContextSize);
  w.u32(static_cast<std::uint32_t>(region.size()));
  w.u32(frame_crc(kTraceContextSize, region));
  std::string out = w.take();
  out.append(region);
  return out;
}

DecodeResult decode_frame(std::span<const std::uint8_t> buf,
                          std::uint64_t max_payload) {
  DecodeResult result;
  if (buf.size() < kHeaderSize) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  Reader r({reinterpret_cast<const char*>(buf.data()), buf.size()});
  std::uint32_t magic = 0, payload_len = 0, crc = 0;
  std::uint16_t tc_len = 0;
  std::uint8_t version = 0, kind = 0;
  // kHeaderSize bytes are present, so the fixed-width reads cannot fail.
  r.u32(&magic);
  r.u8(&version);
  r.u8(&kind);
  r.u16(&tc_len);
  r.u32(&payload_len);
  r.u32(&crc);
  if (magic != kMagic) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  if (version != kVersion) {
    result.status = DecodeStatus::kBadVersion;
    return result;
  }
  if (!frame_kind_valid(kind)) {
    result.status = DecodeStatus::kBadKind;
    return result;
  }
  if (payload_len > max_payload) {
    result.status = DecodeStatus::kOversized;
    return result;
  }
  if (tc_len > payload_len) {
    result.status = DecodeStatus::kBadTraceContext;
    return result;
  }
  if (buf.size() - kHeaderSize < payload_len) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  const std::string_view region(
      reinterpret_cast<const char*>(buf.data()) + kHeaderSize, payload_len);
  if (frame_crc(tc_len, region) != crc) {
    result.status = DecodeStatus::kBadCrc;
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.frame.kind = static_cast<FrameKind>(kind);
  result.frame.payload.assign(region.substr(tc_len));
  if (tc_len >= kTraceContextSize) {
    // Parse the prefix this version understands; a longer block from a newer
    // sender keeps its extra bytes ignored (they are still CRC-covered).
    Reader tc(region.substr(0, kTraceContextSize));
    std::uint64_t trace_id = 0, span_id = 0;
    std::uint8_t flags = 0;
    tc.u64(&trace_id);
    tc.u64(&span_id);
    tc.u8(&flags);
    result.frame.trace.trace_id = trace_id;
    result.frame.trace.span_id = span_id;
    result.frame.trace.sampled = (flags & 1) != 0;
  }
  result.consumed = kHeaderSize + payload_len;
  return result;
}

DecodeResult decode_frame(std::string_view buf, std::uint64_t max_payload) {
  return decode_frame(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(buf.data()), buf.size()),
      max_payload);
}

}  // namespace baps::wire
