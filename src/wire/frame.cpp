#include "wire/frame.hpp"

#include "util/assert.hpp"
#include "wire/codec.hpp"
#include "wire/crc32.hpp"

namespace baps::wire {

bool frame_kind_valid(std::uint8_t kind) {
  return kind >= kMinFrameKind && kind <= kMaxFrameKind;
}

std::string frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello: return "hello";
    case FrameKind::kHelloAck: return "hello-ack";
    case FrameKind::kFetchRequest: return "fetch-request";
    case FrameKind::kFetchResponse: return "fetch-response";
    case FrameKind::kIndexUpdate: return "index-update";
    case FrameKind::kIndexAck: return "index-ack";
    case FrameKind::kPeerFetch: return "peer-fetch";
    case FrameKind::kPeerDeliver: return "peer-deliver";
    case FrameKind::kStatsRequest: return "stats-request";
    case FrameKind::kStatsResponse: return "stats-response";
    case FrameKind::kError: return "error";
    case FrameKind::kBye: return "bye";
  }
  BAPS_REQUIRE(false, "unknown frame kind");
  return {};
}

std::string decode_status_name(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadReserved: return "bad-reserved";
    case DecodeStatus::kBadKind: return "bad-kind";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  BAPS_REQUIRE(false, "unknown decode status");
  return {};
}

std::string encode_frame(FrameKind kind, std::string_view payload) {
  Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u16(0);  // reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  std::string out = w.take();
  out.append(payload.data(), payload.size());
  return out;
}

DecodeResult decode_frame(std::span<const std::uint8_t> buf,
                          std::uint64_t max_payload) {
  DecodeResult result;
  if (buf.size() < kHeaderSize) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  Reader r({reinterpret_cast<const char*>(buf.data()), buf.size()});
  std::uint32_t magic = 0, payload_len = 0, crc = 0;
  std::uint16_t reserved = 0;
  std::uint8_t version = 0, kind = 0;
  // kHeaderSize bytes are present, so the fixed-width reads cannot fail.
  r.u32(&magic);
  r.u8(&version);
  r.u8(&kind);
  r.u16(&reserved);
  r.u32(&payload_len);
  r.u32(&crc);
  if (magic != kMagic) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  if (version != kVersion) {
    result.status = DecodeStatus::kBadVersion;
    return result;
  }
  if (reserved != 0) {
    result.status = DecodeStatus::kBadReserved;
    return result;
  }
  if (!frame_kind_valid(kind)) {
    result.status = DecodeStatus::kBadKind;
    return result;
  }
  if (payload_len > max_payload) {
    result.status = DecodeStatus::kOversized;
    return result;
  }
  if (buf.size() - kHeaderSize < payload_len) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  const std::string_view payload(
      reinterpret_cast<const char*>(buf.data()) + kHeaderSize, payload_len);
  if (crc32(payload) != crc) {
    result.status = DecodeStatus::kBadCrc;
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.frame.kind = static_cast<FrameKind>(kind);
  result.frame.payload.assign(payload);
  result.consumed = kHeaderSize + payload_len;
  return result;
}

DecodeResult decode_frame(std::string_view buf, std::uint64_t max_payload) {
  return decode_frame(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(buf.data()), buf.size()),
      max_payload);
}

}  // namespace baps::wire
