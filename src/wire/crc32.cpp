#include "wire/crc32.hpp"

#include <array>

namespace baps::wire {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc,
                           std::span<const std::uint8_t> data) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_update(0, data);
}

std::uint32_t crc32(std::string_view data) {
  return crc32({reinterpret_cast<const std::uint8_t*>(data.data()),
                data.size()});
}

}  // namespace baps::wire
