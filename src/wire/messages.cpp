#include "wire/messages.hpp"

#include "wire/codec.hpp"

namespace baps::wire {

bool wire_source_valid(std::uint8_t v) { return v >= 1 && v <= 3; }

namespace {

bool read_bool(Reader& r, bool* out) {
  std::uint8_t v = 0;
  if (!r.u8(&v) || v > 1) return false;  // anything but 0/1 is corruption
  *out = (v != 0);
  return true;
}

}  // namespace

// --- Hello ----------------------------------------------------------------

std::string encode(const Hello& m) {
  Writer w;
  w.u32(m.client_id);
  w.u16(m.peer_port);
  return w.take();
}

bool decode(std::string_view payload, Hello* out) {
  Reader r(payload);
  return r.u32(&out->client_id) && r.u16(&out->peer_port) && r.at_end();
}

// --- HelloAck -------------------------------------------------------------

std::string encode(const HelloAck& m) {
  Writer w;
  w.bytes(m.rsa_n);
  w.bytes(m.rsa_e);
  w.u32(m.max_clients);
  return w.take();
}

bool decode(std::string_view payload, HelloAck* out) {
  Reader r(payload);
  return r.bytes(&out->rsa_n, kMaxKeyLen) && r.bytes(&out->rsa_e, kMaxKeyLen) &&
         r.u32(&out->max_clients) && r.at_end();
}

// --- FetchRequest ---------------------------------------------------------

std::string encode(const FetchRequest& m) {
  Writer w;
  w.str(m.url);
  w.u8(m.avoid_peers ? 1 : 0);
  return w.take();
}

bool decode(std::string_view payload, FetchRequest* out) {
  Reader r(payload);
  return r.str(&out->url, kMaxUrlLen) && read_bool(r, &out->avoid_peers) &&
         r.at_end();
}

// --- FetchResponse --------------------------------------------------------

std::string encode(const FetchResponse& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(m.source));
  w.u8(m.false_forward ? 1 : 0);
  w.str(m.body);
  w.bytes(m.watermark);
  return w.take();
}

bool decode(std::string_view payload, FetchResponse* out) {
  Reader r(payload);
  std::uint8_t source = 0;
  if (!r.u8(&source) || !wire_source_valid(source)) return false;
  out->source = static_cast<WireSource>(source);
  return read_bool(r, &out->false_forward) && r.str(&out->body, kMaxBodyLen) &&
         r.bytes(&out->watermark, kMaxWatermarkLen) && r.at_end();
}

// --- IndexUpdate ----------------------------------------------------------

std::string encode(const IndexUpdate& m) {
  Writer w;
  w.u8(m.is_add ? 1 : 0);
  w.u64(m.key);
  w.raw(m.mac.data(), m.mac.size());
  return w.take();
}

bool decode(std::string_view payload, IndexUpdate* out) {
  Reader r(payload);
  return read_bool(r, &out->is_add) && r.u64(&out->key) &&
         r.raw(out->mac.data(), out->mac.size()) && r.at_end();
}

// --- IndexAck -------------------------------------------------------------

std::string encode(const IndexAck& m) {
  Writer w;
  w.u8(m.accepted ? 1 : 0);
  return w.take();
}

bool decode(std::string_view payload, IndexAck* out) {
  Reader r(payload);
  return read_bool(r, &out->accepted) && r.at_end();
}

// --- PeerFetch ------------------------------------------------------------

std::string encode(const PeerFetch& m) {
  Writer w;
  w.u64(m.key);
  return w.take();
}

bool decode(std::string_view payload, PeerFetch* out) {
  Reader r(payload);
  return r.u64(&out->key) && r.at_end();
}

// --- PeerDeliver ----------------------------------------------------------

std::string encode(const PeerDeliver& m) {
  Writer w;
  w.u8(m.found ? 1 : 0);
  w.str(m.body);
  w.bytes(m.watermark);
  return w.take();
}

bool decode(std::string_view payload, PeerDeliver* out) {
  Reader r(payload);
  return read_bool(r, &out->found) && r.str(&out->body, kMaxBodyLen) &&
         r.bytes(&out->watermark, kMaxWatermarkLen) && r.at_end();
}

// --- StatsRequest ---------------------------------------------------------

std::string encode(const StatsRequest&) { return {}; }

bool decode(std::string_view payload, StatsRequest*) {
  return payload.empty();
}

// --- StatsResponse --------------------------------------------------------

std::string encode(const StatsResponse& m) {
  Writer w;
  w.u64(m.proxy_hits);
  w.u64(m.peer_hits);
  w.u64(m.origin_fetches);
  w.u64(m.false_forwards);
  w.u64(m.rejected_index_updates);
  return w.take();
}

bool decode(std::string_view payload, StatsResponse* out) {
  Reader r(payload);
  return r.u64(&out->proxy_hits) && r.u64(&out->peer_hits) &&
         r.u64(&out->origin_fetches) && r.u64(&out->false_forwards) &&
         r.u64(&out->rejected_index_updates) && r.at_end();
}

// --- ErrorMsg -------------------------------------------------------------

std::string encode(const ErrorMsg& m) {
  Writer w;
  w.str(m.message);
  return w.take();
}

bool decode(std::string_view payload, ErrorMsg* out) {
  Reader r(payload);
  return r.str(&out->message, kMaxErrorLen) && r.at_end();
}

// --- Bye ------------------------------------------------------------------

std::string encode(const Bye&) { return {}; }

bool decode(std::string_view payload, Bye*) { return payload.empty(); }

// --- TraceStatsRequest ----------------------------------------------------

std::string encode(const TraceStatsRequest& m) {
  Writer w;
  w.u32(m.max_spans);
  return w.take();
}

bool decode(std::string_view payload, TraceStatsRequest* out) {
  Reader r(payload);
  return r.u32(&out->max_spans) && r.at_end();
}

// --- TraceStatsResponse ---------------------------------------------------

std::string encode(const TraceStatsResponse& m) {
  Writer w;
  w.str(m.json);
  return w.take();
}

bool decode(std::string_view payload, TraceStatsResponse* out) {
  Reader r(payload);
  return r.str(&out->json, kMaxBodyLen) && r.at_end();
}

// --- TimeSeriesRequest ----------------------------------------------------

std::string encode(const TimeSeriesRequest& m) {
  Writer w;
  w.u32(m.max_intervals);
  return w.take();
}

bool decode(std::string_view payload, TimeSeriesRequest* out) {
  Reader r(payload);
  return r.u32(&out->max_intervals) && r.at_end();
}

// --- TimeSeriesResponse ---------------------------------------------------

std::string encode(const TimeSeriesResponse& m) {
  Writer w;
  w.str(m.json);
  return w.take();
}

bool decode(std::string_view payload, TimeSeriesResponse* out) {
  Reader r(payload);
  return r.str(&out->json, kMaxBodyLen) && r.at_end();
}

}  // namespace baps::wire
