// Simulation configuration: the five organizations plus the sizing rules of
// §3.2 ("minimum" and "average" browser cache sizes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/policy.hpp"
#include "net/lan_model.hpp"
#include "sim/latency_model.hpp"
#include "trace/stats.hpp"

namespace baps::sim {

/// The five web caching organizations of §3.2.
enum class OrgKind {
  kProxyOnly,             ///< 1. proxy-cache-only
  kLocalBrowserOnly,      ///< 2. local-browser-cache-only
  kGlobalBrowsersOnly,    ///< 3. global-browsers-cache-only
  kProxyAndLocalBrowser,  ///< 4. proxy-and-local-browser
  kBrowsersAware,         ///< 5. browsers-aware-proxy-server
};

inline constexpr OrgKind kAllOrganizations[] = {
    OrgKind::kProxyOnly, OrgKind::kLocalBrowserOnly,
    OrgKind::kGlobalBrowsersOnly, OrgKind::kProxyAndLocalBrowser,
    OrgKind::kBrowsersAware};

std::string org_name(OrgKind kind);

/// How the browsers-aware index is maintained (§2, §5).
enum class IndexMode { kImmediate, kPeriodic };

/// What the proxy stores per client: the exact directory (16-byte MD5
/// entries) or a counting-Bloom summary (Summary-Cache compression — may
/// produce false forwards, costs far less memory).
enum class IndexKind { kExact, kBloomSummary };

struct SimConfig {
  std::uint64_t proxy_cache_bytes = 0;
  /// Per-client browser cache sizes (unused by proxy-only).
  std::vector<std::uint64_t> browser_cache_bytes;

  cache::PolicyKind policy = cache::PolicyKind::kLru;
  /// RAM share of every cache (§4.2; Squid-measured 1/10).
  double memory_fraction = 0.1;

  IndexMode index_mode = IndexMode::kImmediate;
  /// PeriodicUpdateProtocol flush threshold (fraction of cached docs).
  double index_threshold = 0.1;

  IndexKind index_kind = IndexKind::kExact;
  /// Bloom-summary sizing (per client). Only used with kBloomSummary;
  /// updates are applied immediately in that mode.
  std::uint64_t bloom_expected_docs_per_client = 4096;
  double bloom_target_fp = 0.001;

  /// If true, remote-browser hits are relayed through the proxy (two LAN
  /// hops and the proxy keeps a copy); if false the source client forwards
  /// directly (one hop), the paper's first alternative.
  bool relay_via_proxy = false;

  net::LanParams lan{};
  LatencyParams latency{};

  // --- client churn (§5 spirit: browsers join and leave over the trace) ----
  /// Per-request probability of one churn event (0 disables churn entirely —
  /// bit-identical to the pre-churn simulator).
  double churn_rate = 0.0;
  /// Seed for the churn event stream (independent of every other stream).
  std::uint64_t churn_seed = 0;

  // --- capacity hints (perf only — never change simulated behavior) -------
  /// Bound on document ids (TraceStats::doc_universe). Pre-sizes the flat
  /// browser-index table; 0 grows on demand.
  std::uint64_t doc_universe = 0;
  /// Distinct documents in the trace (TraceStats::unique_docs). Reserves the
  /// proxy cache's tables; 0 skips the reservation.
  std::uint64_t distinct_docs = 0;
  /// Distinct documents per client (TraceStats::distinct_docs_per_client).
  /// Reserves each browser cache's tables and index set; empty skips.
  std::vector<std::uint32_t> client_distinct_docs;
};

// ---------------------------------------------------------------------------
// §3.2 sizing rules.

/// Minimum browser cache: C_proxy / (10 · N) for N clients.
std::uint64_t min_browser_cache_bytes(std::uint64_t proxy_cache_bytes,
                                      std::uint32_t num_clients);

/// Uniform per-client vector at the minimum size.
std::vector<std::uint64_t> min_browser_caches(std::uint64_t proxy_cache_bytes,
                                              std::uint32_t num_clients);

/// "Average" browser cache: relative_size × the average infinite browser
/// cache size from the trace (the paper scales browser caches by the same
/// percentage as the proxy cache).
std::vector<std::uint64_t> avg_browser_caches(
    const trace::TraceStats& stats, double relative_size);

/// Proxy cache: relative_size × infinite proxy cache size.
std::uint64_t proxy_cache_bytes_for(const trace::TraceStats& stats,
                                    double relative_size);

}  // namespace baps::sim
