// TTL consistency study.
//
// The paper's simulator detects document changes by oracle: it knows the
// current size of every document and counts a hit on a changed document as
// a miss (§3.2). A real browsers-aware deployment has no such oracle — a
// cached copy (local, proxy, or a *peer's* browser copy, which §6 worries
// about explicitly) is served as long as it is cached, however stale. The
// classical defense is the TTL the paper's index entries carry (§2):
// expire copies after a bound, trading refetches for freshness.
//
// This simulator runs the browsers-aware organization WITHOUT the oracle,
// with every cache layer TTL-enforcing (cache::ExpiringCache), and measures
// the tradeoff: stale hits served vs hit ratio as the TTL sweeps from
// infinite (maximum staleness) toward zero (no caching at all).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/expiring_cache.hpp"
#include "index/browser_index.hpp"
#include "trace/record.hpp"
#include "util/stats.hpp"

namespace baps::sim {

struct TtlStudyConfig {
  std::uint64_t proxy_cache_bytes = 0;
  std::vector<std::uint64_t> browser_cache_bytes;
  cache::PolicyKind policy = cache::PolicyKind::kLru;
  /// Uniform TTL assigned to every cached copy, seconds;
  /// ExpiringCache::kNeverExpires disables expiry.
  double ttl_seconds = cache::ExpiringCache::kNeverExpires;
  /// If false, run plain proxy-and-local-browser (no peer serving).
  bool browsers_aware = true;
};

struct TtlStudyMetrics {
  baps::RatioCounter hits;   ///< requests served from any cache
  std::uint64_t fresh_hits = 0;
  /// Hits that served a copy whose size no longer matches the live
  /// document — the consistency violations the oracle rule hides.
  std::uint64_t stale_hits = 0;
  std::uint64_t stale_remote_hits = 0;  ///< stale copies served peer-to-peer
  std::uint64_t remote_hits = 0;
  std::uint64_t expirations = 0;        ///< copies reclaimed by TTL

  double hit_ratio() const { return hits.ratio(); }
  double stale_hit_fraction() const {
    return hits.hits() ? static_cast<double>(stale_hits) /
                             static_cast<double>(hits.hits())
                       : 0.0;
  }
};

/// Runs the study over a trace. Request sizes are the live document sizes
/// (the generator guarantees this), so "stale" is checkable by comparing a
/// cached copy's recorded size against the request's.
TtlStudyMetrics run_ttl_study(const TtlStudyConfig& config,
                              const trace::Trace& trace);

}  // namespace baps::sim
