#include "sim/orgs.hpp"

#include "util/assert.hpp"

namespace baps::sim {
namespace {

std::vector<cache::TieredCache> make_browsers(const SimConfig& config,
                                              std::uint32_t num_clients) {
  BAPS_REQUIRE(config.browser_cache_bytes.size() == num_clients,
               "need one browser cache size per client");
  std::vector<cache::TieredCache> browsers;
  browsers.reserve(num_clients);
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    browsers.emplace_back(config.browser_cache_bytes[c],
                          config.memory_fraction, config.policy);
  }
  return browsers;
}

}  // namespace

// ---------------------------------------------------------------------------
// 1. proxy-cache-only

ProxyOnlyOrg::ProxyOnlyOrg(const SimConfig& config, std::uint32_t num_clients)
    : Organization(config, num_clients),
      proxy_(config.proxy_cache_bytes, config.memory_fraction, config.policy) {}

void ProxyOnlyOrg::process(const trace::Request& r) {
  if (const auto hit = lookup_current(proxy_, r)) {
    record_proxy_hit(r, hit->tier);
    return;
  }
  record_miss(r);
  proxy_.insert(r.doc, r.size);
}

// ---------------------------------------------------------------------------
// 2. local-browser-cache-only

LocalBrowserOnlyOrg::LocalBrowserOnlyOrg(const SimConfig& config,
                                         std::uint32_t num_clients)
    : Organization(config, num_clients),
      browsers_(make_browsers(config, num_clients)) {}

void LocalBrowserOnlyOrg::process(const trace::Request& r) {
  cache::TieredCache& browser = browsers_[r.client];
  if (const auto hit = lookup_current(browser, r)) {
    record_local_browser_hit(r, hit->tier);
    return;
  }
  record_miss(r);
  browser.insert(r.doc, r.size);
}

// ---------------------------------------------------------------------------
// 3. global-browsers-cache-only

GlobalBrowsersOnlyOrg::GlobalBrowsersOnlyOrg(const SimConfig& config,
                                             std::uint32_t num_clients)
    : Organization(config, num_clients),
      browsers_(make_browsers(config, num_clients)),
      index_(num_clients) {
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    browsers_[c].set_eviction_listener(
        [this, c](trace::DocId doc, std::uint64_t) { index_.remove(c, doc); });
  }
}

void GlobalBrowsersOnlyOrg::fill_browser(trace::ClientId client,
                                         const trace::Request& r) {
  if (browsers_[client].insert(r.doc, r.size)) index_.add(client, r.doc);
}

void GlobalBrowsersOnlyOrg::process(const trace::Request& r) {
  cache::TieredCache& browser = browsers_[r.client];
  const auto on_stale = [this, &r](trace::DocId doc) {
    index_.remove(r.client, doc);
  };
  if (const auto hit = lookup_current(browser, r, on_stale)) {
    record_local_browser_hit(r, hit->tier);
    return;
  }
  // Replicated index lookup: one remote probe, direct client→client forward.
  if (const auto holder = index_.find_holder(r.doc, r.client)) {
    cache::TieredCache& remote = browsers_[*holder];
    const auto remote_size = remote.peek_size(r.doc);
    BAPS_ENSURE(remote_size.has_value(),
                "immediate index out of sync with browser cache");
    if (*remote_size == r.size) {
      const auto hit = remote.touch(r.doc);
      record_remote_browser_hit(r, hit->tier, /*hops=*/1);
      // §3.2 item 3: the requester does NOT cache a document fetched from
      // another browser in this organization.
      return;
    }
    ++metrics_.stale_remote_probes;
  }
  record_miss(r);
  fill_browser(r.client, r);
}

// ---------------------------------------------------------------------------
// 4. proxy-and-local-browser

ProxyAndLocalBrowserOrg::ProxyAndLocalBrowserOrg(const SimConfig& config,
                                                 std::uint32_t num_clients)
    : Organization(config, num_clients),
      browsers_(make_browsers(config, num_clients)),
      proxy_(config.proxy_cache_bytes, config.memory_fraction, config.policy) {}

void ProxyAndLocalBrowserOrg::fill_browser(trace::ClientId client,
                                           const trace::Request& r) {
  browsers_[client].insert(r.doc, r.size);
}

void ProxyAndLocalBrowserOrg::process(const trace::Request& r) {
  cache::TieredCache& browser = browsers_[r.client];
  if (const auto hit = lookup_current(browser, r)) {
    record_local_browser_hit(r, hit->tier);
    return;
  }
  if (const auto hit = lookup_current(proxy_, r)) {
    record_proxy_hit(r, hit->tier);
    fill_browser(r.client, r);  // the document passes through the browser
    return;
  }
  record_miss(r);
  proxy_.insert(r.doc, r.size);
  fill_browser(r.client, r);
}

// ---------------------------------------------------------------------------
// 5. browsers-aware-proxy-server

BrowsersAwareOrg::BrowsersAwareOrg(const SimConfig& config,
                                   std::uint32_t num_clients)
    : Organization(config, num_clients),
      browsers_(make_browsers(config, num_clients)),
      proxy_(config.proxy_cache_bytes, config.memory_fraction,
             config.policy) {
  if (config.index_kind == IndexKind::kExact) {
    exact_index_ = std::make_unique<index::BrowserIndex>(num_clients);
    if (config.index_mode == IndexMode::kImmediate) {
      protocol_ =
          std::make_unique<index::ImmediateUpdateProtocol>(*exact_index_);
    } else {
      protocol_ = std::make_unique<index::PeriodicUpdateProtocol>(
          *exact_index_, num_clients, config.index_threshold);
    }
  } else {
    summary_index_ = std::make_unique<index::SummaryIndex>(
        num_clients, config.bloom_expected_docs_per_client,
        config.bloom_target_fp);
  }
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    browsers_[c].set_eviction_listener(
        [this, c](trace::DocId doc, std::uint64_t) {
          index_remove(c, doc);
        });
  }
}

void BrowsersAwareOrg::index_insert(trace::ClientId client,
                                    trace::DocId doc) {
  if (protocol_) {
    protocol_->on_cache_insert(client, doc);
  } else {
    summary_index_->add(client, doc);
    ++summary_messages_;
  }
}

void BrowsersAwareOrg::index_remove(trace::ClientId client,
                                    trace::DocId doc) {
  if (protocol_) {
    protocol_->on_cache_remove(client, doc);
  } else {
    summary_index_->remove(client, doc);
    ++summary_messages_;
  }
}

std::optional<trace::ClientId> BrowsersAwareOrg::index_lookup(
    trace::DocId doc, trace::ClientId requester) const {
  if (exact_index_) return exact_index_->find_holder(doc, requester);
  return summary_index_->find_candidate(doc, requester);
}

std::uint64_t BrowsersAwareOrg::index_bytes() const {
  if (exact_index_) {
    // 16-byte MD5 signature + client id + timestamp/TTL, per §5.
    return exact_index_->entry_count() * (16 + 4 + 4);
  }
  return summary_index_->byte_size();
}

void BrowsersAwareOrg::fill_browser(trace::ClientId client,
                                    const trace::Request& r) {
  if (browsers_[client].insert(r.doc, r.size)) {
    index_insert(client, r.doc);
  }
}

void BrowsersAwareOrg::process(const trace::Request& r) {
  cache::TieredCache& browser = browsers_[r.client];
  const auto on_stale = [this, &r](trace::DocId doc) {
    index_remove(r.client, doc);
  };
  if (const auto hit = lookup_current(browser, r, on_stale)) {
    record_local_browser_hit(r, hit->tier);
    return;
  }
  if (const auto hit = lookup_current(proxy_, r)) {
    record_proxy_hit(r, hit->tier);
    fill_browser(r.client, r);
    return;
  }
  // Proxy and local caches missed: consult the browser index (§2).
  if (const auto holder = index_lookup(r.doc, r.client)) {
    cache::TieredCache& remote = browsers_[*holder];
    const auto remote_size = remote.peek_size(r.doc);
    if (!remote_size) {
      // Stale index entry (periodic mode) or Bloom false positive: the
      // probe comes back empty.
      ++metrics_.false_forwards;
    } else if (*remote_size == r.size) {
      const auto hit = remote.touch(r.doc);
      const int hops = config_.relay_via_proxy ? 2 : 1;
      record_remote_browser_hit(r, hit->tier, hops);
      fill_browser(r.client, r);  // the requester's browser keeps a copy
      return;
    } else {
      ++metrics_.stale_remote_probes;
    }
  }
  record_miss(r);
  proxy_.insert(r.doc, r.size);
  fill_browser(r.client, r);
}

void BrowsersAwareOrg::finish() {
  if (protocol_) {
    protocol_->flush_all();
    metrics_.index_messages = protocol_->messages_sent();
  } else {
    metrics_.index_messages = summary_messages_;
  }
}

}  // namespace baps::sim
