#include "sim/orgs.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace baps::sim {
namespace {

std::vector<cache::TieredCache> make_browsers(const SimConfig& config,
                                              std::uint32_t num_clients) {
  BAPS_REQUIRE(config.browser_cache_bytes.size() == num_clients,
               "need one browser cache size per client");
  std::vector<cache::TieredCache> browsers;
  browsers.reserve(num_clients);
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    browsers.emplace_back(config.browser_cache_bytes[c],
                          config.memory_fraction, config.policy);
    if (c < config.client_distinct_docs.size()) {
      browsers.back().reserve(config.client_distinct_docs[c]);
    }
  }
  return browsers;
}

/// Empties one browser cache for a churn departure: `fn(doc)` runs before
/// each erase so callers can propagate the removal to their directory
/// structures (or not — a silent wipe is the stale-index failure shape).
/// Docs are wiped in sorted order for cross-run determinism; erase() fires
/// no eviction listeners, so nothing else observes the wipe.
template <typename PerDoc>
std::uint64_t wipe_browser(cache::TieredCache& browser, PerDoc&& fn) {
  std::vector<trace::DocId> docs;
  docs.reserve(browser.count());
  browser.full().for_each(
      [&docs](trace::DocId doc, std::uint64_t) { docs.push_back(doc); });
  std::sort(docs.begin(), docs.end());
  for (const trace::DocId doc : docs) {
    fn(doc);
    browser.erase(doc);
  }
  return docs.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// 1. proxy-cache-only

ProxyOnlyOrg::ProxyOnlyOrg(const SimConfig& config, std::uint32_t num_clients)
    : Organization(config, num_clients),
      proxy_(config.proxy_cache_bytes, config.memory_fraction, config.policy) {
  proxy_.reserve(config.distinct_docs);
}

void ProxyOnlyOrg::process(const trace::Request& r) {
  if (const auto hit = lookup_current(proxy_, r)) {
    record_proxy_hit(r, hit->tier);
    return;
  }
  record_miss(r);
  proxy_.insert(r.doc, r.size);
}

// ---------------------------------------------------------------------------
// 2. local-browser-cache-only

LocalBrowserOnlyOrg::LocalBrowserOnlyOrg(const SimConfig& config,
                                         std::uint32_t num_clients)
    : Organization(config, num_clients),
      browsers_(make_browsers(config, num_clients)) {}

void LocalBrowserOnlyOrg::wipe_client(trace::ClientId client) {
  metrics_.churn_wiped_docs +=
      wipe_browser(browsers_[client], [](trace::DocId) {});
}

void LocalBrowserOnlyOrg::process(const trace::Request& r) {
  cache::TieredCache& browser = browsers_[r.client];
  if (const auto hit = lookup_current(browser, r)) {
    record_local_browser_hit(r, hit->tier);
    return;
  }
  record_miss(r);
  browser.insert(r.doc, r.size);
}

// ---------------------------------------------------------------------------
// 3. global-browsers-cache-only

GlobalBrowsersOnlyOrg::GlobalBrowsersOnlyOrg(const SimConfig& config,
                                             std::uint32_t num_clients)
    : Organization(config, num_clients),
      browsers_(make_browsers(config, num_clients)),
      index_(num_clients, config.doc_universe, config.client_distinct_docs) {
  evict_ctx_.resize(num_clients);
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    evict_ctx_[c] = EvictCtx{this, c};
    browsers_[c].set_raw_eviction_listener(
        &GlobalBrowsersOnlyOrg::on_browser_eviction, &evict_ctx_[c]);
  }
}

void GlobalBrowsersOnlyOrg::on_browser_eviction(void* ctx, trace::DocId doc,
                                                std::uint64_t /*size*/) {
  auto* e = static_cast<EvictCtx*>(ctx);
  e->org->index_.remove(e->client, doc);
}

void GlobalBrowsersOnlyOrg::fill_browser(trace::ClientId client,
                                         const trace::Request& r) {
  if (browsers_[client].insert(r.doc, r.size)) index_.add(client, r.doc);
}

void GlobalBrowsersOnlyOrg::wipe_client(trace::ClientId client) {
  metrics_.churn_wiped_docs += wipe_browser(
      browsers_[client],
      [this, client](trace::DocId doc) { index_.remove(client, doc); });
}

void GlobalBrowsersOnlyOrg::process(const trace::Request& r) {
  cache::TieredCache& browser = browsers_[r.client];
  const auto on_stale = [this, &r](trace::DocId doc) {
    index_.remove(r.client, doc);
  };
  if (const auto hit = lookup_current(browser, r, on_stale)) {
    record_local_browser_hit(r, hit->tier);
    return;
  }
  // Replicated index lookup: one remote probe, direct client→client forward.
  if (const auto holder = index_.find_holder(r.doc, r.client)) {
    cache::TieredCache& remote = browsers_[*holder];
    const auto probe = remote.touch_expected(r.doc, r.size);
    BAPS_ENSURE(probe.outcome != cache::LookupOutcome::kMiss,
                "immediate index out of sync with browser cache");
    if (probe.outcome == cache::LookupOutcome::kHit) {
      record_remote_browser_hit(r, probe.tier, /*hops=*/1);
      // §3.2 item 3: the requester does NOT cache a document fetched from
      // another browser in this organization.
      return;
    }
    ++metrics_.stale_remote_probes;
  }
  record_miss(r);
  fill_browser(r.client, r);
}

// ---------------------------------------------------------------------------
// 4. proxy-and-local-browser

ProxyAndLocalBrowserOrg::ProxyAndLocalBrowserOrg(const SimConfig& config,
                                                 std::uint32_t num_clients)
    : Organization(config, num_clients),
      browsers_(make_browsers(config, num_clients)),
      proxy_(config.proxy_cache_bytes, config.memory_fraction, config.policy) {
  proxy_.reserve(config.distinct_docs);
}

void ProxyAndLocalBrowserOrg::fill_browser(trace::ClientId client,
                                           const trace::Request& r) {
  browsers_[client].insert(r.doc, r.size);
}

void ProxyAndLocalBrowserOrg::wipe_client(trace::ClientId client) {
  metrics_.churn_wiped_docs +=
      wipe_browser(browsers_[client], [](trace::DocId) {});
}

void ProxyAndLocalBrowserOrg::process(const trace::Request& r) {
  cache::TieredCache& browser = browsers_[r.client];
  if (const auto hit = lookup_current(browser, r)) {
    record_local_browser_hit(r, hit->tier);
    return;
  }
  if (const auto hit = lookup_current(proxy_, r)) {
    record_proxy_hit(r, hit->tier);
    fill_browser(r.client, r);  // the document passes through the browser
    return;
  }
  record_miss(r);
  proxy_.insert(r.doc, r.size);
  fill_browser(r.client, r);
}

// ---------------------------------------------------------------------------
// 5. browsers-aware-proxy-server

BrowsersAwareOrg::BrowsersAwareOrg(const SimConfig& config,
                                   std::uint32_t num_clients)
    : Organization(config, num_clients),
      browsers_(make_browsers(config, num_clients)),
      proxy_(config.proxy_cache_bytes, config.memory_fraction,
             config.policy) {
  proxy_.reserve(config.distinct_docs);
  if (config.index_kind == IndexKind::kExact) {
    exact_index_ = std::make_unique<index::BrowserIndex>(
        num_clients, config.doc_universe, config.client_distinct_docs);
    if (config.index_mode == IndexMode::kImmediate) {
      auto immediate =
          std::make_unique<index::ImmediateUpdateProtocol>(*exact_index_);
      immediate_ = immediate.get();
      protocol_ = std::move(immediate);
    } else {
      protocol_ = std::make_unique<index::PeriodicUpdateProtocol>(
          *exact_index_, num_clients, config.index_threshold);
    }
  } else {
    summary_index_ = std::make_unique<index::SummaryIndex>(
        num_clients, config.bloom_expected_docs_per_client,
        config.bloom_target_fp);
  }
  evict_ctx_.resize(num_clients);
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    evict_ctx_[c] = EvictCtx{this, c};
    browsers_[c].set_raw_eviction_listener(
        &BrowsersAwareOrg::on_browser_eviction, &evict_ctx_[c]);
  }
}

void BrowsersAwareOrg::on_browser_eviction(void* ctx, trace::DocId doc,
                                           std::uint64_t /*size*/) {
  auto* e = static_cast<EvictCtx*>(ctx);
  e->org->index_remove(e->client, doc);
}

std::optional<trace::ClientId> BrowsersAwareOrg::index_lookup(
    trace::DocId doc, trace::ClientId requester) const {
  if (exact_index_) return exact_index_->find_holder(doc, requester);
  return summary_index_->find_candidate(doc, requester);
}

std::uint64_t BrowsersAwareOrg::index_bytes() const {
  if (exact_index_) {
    // 16-byte MD5 signature + client id + timestamp/TTL, per §5.
    return exact_index_->entry_count() * (16 + 4 + 4);
  }
  return summary_index_->byte_size();
}

void BrowsersAwareOrg::fill_browser(trace::ClientId client,
                                    const trace::Request& r) {
  if (browsers_[client].insert(r.doc, r.size)) {
    index_insert(client, r.doc);
  }
}

void BrowsersAwareOrg::wipe_client(trace::ClientId client) {
  // Silent wipe: no index_remove calls, so the proxy's view of this client
  // goes stale — its entries are discovered (and counted as false forwards)
  // only when the next lookup probes the empty browser.
  metrics_.churn_wiped_docs +=
      wipe_browser(browsers_[client], [](trace::DocId) {});
}

void BrowsersAwareOrg::process(const trace::Request& r) {
  cache::TieredCache& browser = browsers_[r.client];
  const auto on_stale = [this, &r](trace::DocId doc) {
    index_remove(r.client, doc);
  };
  if (const auto hit = lookup_current(browser, r, on_stale)) {
    record_local_browser_hit(r, hit->tier);
    return;
  }
  if (const auto hit = lookup_current(proxy_, r)) {
    record_proxy_hit(r, hit->tier);
    fill_browser(r.client, r);
    return;
  }
  // Proxy and local caches missed: consult the browser index (§2).
  if (const auto holder = index_lookup(r.doc, r.client)) {
    cache::TieredCache& remote = browsers_[*holder];
    const auto probe = remote.touch_expected(r.doc, r.size);
    if (probe.outcome == cache::LookupOutcome::kMiss) {
      // Stale index entry (periodic mode, or a churn departure) or Bloom
      // false positive: the probe comes back empty.
      ++metrics_.false_forwards;
      // Under churn the proxy invalidates the entry it just disproved —
      // otherwise a departed client's stale entries cost a false forward on
      // every future lookup. Gated on churn so the zero-churn replay stays
      // bit-identical (immediate mode never reaches here without churn).
      if (churn_active() && exact_index_) exact_index_->remove(*holder, r.doc);
    } else if (probe.outcome == cache::LookupOutcome::kHit) {
      const int hops = config_.relay_via_proxy ? 2 : 1;
      record_remote_browser_hit(r, probe.tier, hops);
      fill_browser(r.client, r);  // the requester's browser keeps a copy
      return;
    } else {
      ++metrics_.stale_remote_probes;
    }
  }
  record_miss(r);
  proxy_.insert(r.doc, r.size);
  fill_browser(r.client, r);
}

void BrowsersAwareOrg::finish() {
  if (protocol_) {
    protocol_->flush_all();
    metrics_.index_messages = protocol_->messages_sent();
  } else {
    metrics_.index_messages = summary_messages_;
  }
}

// ---------------------------------------------------------------------------

namespace {

// One kind dispatch per trace, not one vtable dispatch per request: with the
// concrete (final) type the per-request process() call is direct and inlines
// into the replay loop.
template <typename Org>
Metrics run_concrete(const SimConfig& config, const trace::Trace& trace) {
  Org org(config, trace.num_clients());
  for (const trace::Request& r : trace.requests()) {
    org.churn_step(r);  // inlines to a null check when churn is off
    org.process(r);
  }
  org.finish();
  return org.metrics();
}

}  // namespace

Metrics run_organization(OrgKind kind, const SimConfig& config,
                         const trace::Trace& trace) {
  switch (kind) {
    case OrgKind::kProxyOnly:
      return run_concrete<ProxyOnlyOrg>(config, trace);
    case OrgKind::kLocalBrowserOnly:
      return run_concrete<LocalBrowserOnlyOrg>(config, trace);
    case OrgKind::kGlobalBrowsersOnly:
      return run_concrete<GlobalBrowsersOnlyOrg>(config, trace);
    case OrgKind::kProxyAndLocalBrowser:
      return run_concrete<ProxyAndLocalBrowserOrg>(config, trace);
    case OrgKind::kBrowsersAware:
      return run_concrete<BrowsersAwareOrg>(config, trace);
  }
  BAPS_REQUIRE(false, "unknown organization kind");
  return {};
}

}  // namespace baps::sim
