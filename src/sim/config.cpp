#include "sim/config.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace baps::sim {

std::string org_name(OrgKind kind) {
  switch (kind) {
    case OrgKind::kProxyOnly: return "proxy-cache-only";
    case OrgKind::kLocalBrowserOnly: return "local-browser-cache-only";
    case OrgKind::kGlobalBrowsersOnly: return "global-browsers-cache-only";
    case OrgKind::kProxyAndLocalBrowser: return "proxy-and-local-browser";
    case OrgKind::kBrowsersAware: return "browsers-aware-proxy-server";
  }
  BAPS_REQUIRE(false, "unknown organization kind");
  return {};
}

std::uint64_t min_browser_cache_bytes(std::uint64_t proxy_cache_bytes,
                                      std::uint32_t num_clients) {
  BAPS_REQUIRE(num_clients > 0, "need at least one client");
  return std::max<std::uint64_t>(
      1, proxy_cache_bytes / (10ULL * num_clients));
}

std::vector<std::uint64_t> min_browser_caches(std::uint64_t proxy_cache_bytes,
                                              std::uint32_t num_clients) {
  return std::vector<std::uint64_t>(
      num_clients, min_browser_cache_bytes(proxy_cache_bytes, num_clients));
}

std::vector<std::uint64_t> avg_browser_caches(const trace::TraceStats& stats,
                                              double relative_size) {
  BAPS_REQUIRE(relative_size > 0.0 && relative_size <= 1.0,
               "relative size must be in (0,1]");
  const auto size = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::llround(static_cast<double>(
                              stats.avg_infinite_browser_bytes()) *
                          relative_size)));
  return std::vector<std::uint64_t>(stats.num_clients, size);
}

std::uint64_t proxy_cache_bytes_for(const trace::TraceStats& stats,
                                    double relative_size) {
  BAPS_REQUIRE(relative_size > 0.0 && relative_size <= 1.0,
               "relative size must be in (0,1]");
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::llround(static_cast<double>(stats.infinite_cache_bytes) *
                          relative_size)));
}

}  // namespace baps::sim
