#include "sim/sharded_replay.hpp"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "fault/churn.hpp"
#include "net/lan_model.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "sim/orgs.hpp"
#include "sim/replay_log.hpp"
#include "util/assert.hpp"
#include "util/shard_router.hpp"

namespace baps::sim {

namespace {

/// The churn event stream is a pure function of (seed, rate, requester-id
/// sequence) — nothing the organizations do feeds back into it — so the
/// whole schedule precomputes in one cheap pass. Shards then interleave the
/// departures with their own requests at the right global positions; the
/// rejoin/departure totals are counted here, once, not per shard.
struct ChurnSchedule {
  struct Departure {
    std::uint32_t index = 0;  ///< applies before the request at this index
    trace::ClientId client = 0;
  };
  std::vector<Departure> departures;
  std::uint64_t total_departures = 0;
  std::uint64_t total_rejoins = 0;
};

ChurnSchedule precompute_churn(const SimConfig& config,
                               const trace::Trace& trace) {
  ChurnSchedule s;
  fault::ChurnModel churn(config.churn_seed, config.churn_rate,
                          trace.num_clients());
  const auto& requests = trace.requests();
  for (std::uint32_t i = 0; i < requests.size(); ++i) {
    const trace::ClientId requester = requests[i].client;
    if (churn.ensure_present(requester)) ++s.total_rejoins;
    if (const auto ev = churn.tick(requester)) {
      if (ev->kind == fault::ChurnModel::Event::Kind::kDepart) {
        ++s.total_departures;
        s.departures.push_back({i, ev->client});
      } else {
        ++s.total_rejoins;
      }
    }
  }
  return s;
}

/// Builds shard `shard`'s view of the whole-organization config. Doc-routed
/// organizations split every byte budget into slices that sum back to the
/// original (shard 0 of 1 gets the budget untouched); the client-routed
/// organization keeps whole budgets, because whole browsers move with their
/// owning shard. Churn is stripped — the engine drives the precomputed
/// schedule externally.
SimConfig shard_config(const SimConfig& config, bool by_client,
                       std::uint32_t shard, std::uint32_t shards) {
  SimConfig cfg = config;
  cfg.churn_rate = 0.0;
  if (!by_client) {
    cfg.proxy_cache_bytes =
        util::slice_bytes(config.proxy_cache_bytes, shard, shards);
    for (auto& bytes : cfg.browser_cache_bytes) {
      bytes = util::slice_bytes(bytes, shard, shards);
    }
    if (shards > 1) {
      // Reservation hints only (never behavior): a shard sees ~1/N of the
      // distinct docs.
      cfg.distinct_docs = cfg.distinct_docs / shards + 1;
      for (auto& docs : cfg.client_distinct_docs) {
        docs = docs / shards + 1;
      }
    }
  }
  return cfg;
}

/// One shard's replay: a private organization instance over the shard's
/// request stream, with order-dependent accounting deferred into `log`.
/// Runs on its own thread in parallel mode; touches nothing shared beyond
/// the read-only trace and schedule.
template <typename Org>
void replay_shard(const SimConfig& cfg, const trace::Trace& trace,
                  const std::vector<std::uint32_t>& indices, bool churning,
                  const ChurnSchedule& churn, ReplayLog& log, Metrics& out,
                  double& seconds) {
  Org org(cfg, trace.num_clients());
  org.set_replay_log(&log);
  org.set_external_churn(churning);
  log.reserve(indices.size());
  const auto& requests = trace.requests();
  const double start = obs::monotonic_seconds();
  std::size_t next_departure = 0;
  for (const std::uint32_t idx : indices) {
    // Departures scheduled at or before this global position wipe first —
    // the unsharded driver churns before it processes.
    while (churning && next_departure < churn.departures.size() &&
           churn.departures[next_departure].index <= idx) {
      org.apply_churn_wipe(churn.departures[next_departure].client);
      ++next_departure;
    }
    org.set_log_index(idx);
    org.process(requests[idx]);
  }
  // Departures after this shard's last request still wipe its slice (the
  // unsharded run applies every event; wiped-doc counts must match).
  while (churning && next_departure < churn.departures.size()) {
    org.apply_churn_wipe(churn.departures[next_departure].client);
    ++next_departure;
  }
  org.finish();
  seconds = obs::monotonic_seconds() - start;
  out = org.metrics();
}

using ShardFn = void (*)(const SimConfig&, const trace::Trace&,
                         const std::vector<std::uint32_t>&, bool,
                         const ChurnSchedule&, ReplayLog&, Metrics&, double&);

/// Concrete (final-type) shard function per organization, mirroring
/// run_organization's one-dispatch-per-trace pattern: the per-request loop
/// inlines the concrete process().
ShardFn shard_fn(OrgKind kind) {
  switch (kind) {
    case OrgKind::kProxyOnly:
      return &replay_shard<ProxyOnlyOrg>;
    case OrgKind::kLocalBrowserOnly:
      return &replay_shard<LocalBrowserOnlyOrg>;
    case OrgKind::kGlobalBrowsersOnly:
      return &replay_shard<GlobalBrowsersOnlyOrg>;
    case OrgKind::kProxyAndLocalBrowser:
      return &replay_shard<ProxyAndLocalBrowserOrg>;
    case OrgKind::kBrowsersAware:
      return &replay_shard<BrowsersAwareOrg>;
  }
  BAPS_REQUIRE(false, "unknown organization kind");
  return nullptr;
}

void publish_shard_metrics(OrgKind kind, const ShardedReplayResult& result) {
  auto& reg = obs::Registry::global();
  const std::string org = org_name(kind);
  std::uint64_t merged_total = 0;
  for (std::uint32_t s = 0; s < result.shards; ++s) {
    reg.counter("shard_requests_total",
                {{"org", org}, {"shard", std::to_string(s)}})
        .inc(result.shard_requests[s]);
    reg.gauge("shard_replay_seconds",
              {{"org", org}, {"shard", std::to_string(s)}})
        .set(result.shard_seconds[s]);
    merged_total += result.shard_requests[s];
  }
  reg.counter("shard_merged_requests_total", {{"org", org}})
      .inc(merged_total);
  reg.gauge("shard_merge_seconds", {{"org", org}}).set(result.merge_seconds);
  reg.gauge("shard_count", {{"org", org}})
      .set(static_cast<double>(result.shards));
}

}  // namespace

void register_shard_metric_families() {
  // Zero-valued unlabeled members so the families appear in every export —
  // the same always-present contract store_integrity_failures_total keeps —
  // and report_check can validate the sum(shard) == merged invariant even
  // on reports from runs that never sharded.
  auto& reg = obs::Registry::global();
  reg.counter("shard_requests_total");
  reg.counter("shard_merged_requests_total");
  reg.gauge("shard_merge_seconds");
  reg.gauge("shard_replay_seconds");
  reg.gauge("shard_count");
}

bool routes_by_client(OrgKind kind) {
  return kind == OrgKind::kLocalBrowserOnly;
}

double ShardedReplayResult::critical_path_seconds() const {
  const double slowest =
      shard_seconds.empty()
          ? 0.0
          : *std::max_element(shard_seconds.begin(), shard_seconds.end());
  return route_seconds + slowest + merge_seconds;
}

double ShardedReplayResult::critical_path_requests_per_second() const {
  const double seconds = critical_path_seconds();
  std::uint64_t total = 0;
  for (const std::uint64_t n : shard_requests) total += n;
  return seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0;
}

ShardedReplayResult run_organization_sharded(OrgKind kind,
                                             const SimConfig& config,
                                             const trace::Trace& trace,
                                             const ShardedReplayOptions& opts) {
  const std::uint32_t n = opts.shards;
  BAPS_REQUIRE(n >= 1, "need at least one shard");
  BAPS_REQUIRE(n <= 1024, "shard count is implausibly large");
  register_shard_metric_families();

  const auto& requests = trace.requests();
  const bool by_client = routes_by_client(kind);
  const bool churning = config.churn_rate > 0.0;

  ShardedReplayResult result;
  result.shards = n;

  // --- route: split the trace into per-shard streams, precompute churn ---
  const double route_start = obs::monotonic_seconds();
  std::vector<std::uint32_t> owner(requests.size());
  std::vector<std::vector<std::uint32_t>> streams(n);
  {
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint32_t i = 0; i < requests.size(); ++i) {
      const std::uint64_t key =
          by_client ? requests[i].client : requests[i].doc;
      const std::uint32_t s = util::shard_of(key, n);
      owner[i] = s;
      ++counts[s];
    }
    for (std::uint32_t s = 0; s < n; ++s) {
      streams[s].reserve(counts[s]);
    }
    for (std::uint32_t i = 0; i < requests.size(); ++i) {
      streams[owner[i]].push_back(i);
    }
  }
  ChurnSchedule churn;
  if (churning) churn = precompute_churn(config, trace);
  result.route_seconds = obs::monotonic_seconds() - route_start;

  // --- replay: every shard on its own thread, nothing shared mutable ----
  std::vector<SimConfig> configs;
  configs.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    configs.push_back(shard_config(config, by_client, s, n));
  }
  std::vector<ReplayLog> logs(n);
  result.per_shard.resize(n);
  result.shard_seconds.assign(n, 0.0);
  result.shard_requests.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    result.shard_requests[s] = streams[s].size();
  }

  const ShardFn fn = shard_fn(kind);
  const double replay_start = obs::monotonic_seconds();
  if (opts.parallel && n > 1) {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      workers.emplace_back([&, s] {
        fn(configs[s], trace, streams[s], churning, churn, logs[s],
           result.per_shard[s], result.shard_seconds[s]);
      });
    }
    for (std::thread& w : workers) w.join();
  } else {
    for (std::uint32_t s = 0; s < n; ++s) {
      fn(configs[s], trace, streams[s], churning, churn, logs[s],
         result.per_shard[s], result.shard_seconds[s]);
    }
  }
  result.replay_seconds = obs::monotonic_seconds() - replay_start;

  // --- merge: order-independent sums, then the ordered double replay ----
  const double merge_start = obs::monotonic_seconds();
  Metrics& merged = result.merged;
  for (std::uint32_t s = 0; s < n; ++s) {
    merged.accumulate_counters(result.per_shard[s]);
  }
  if (churning) {
    // Counted once from the schedule — shards only counted the docs their
    // slice lost (churn_wiped_docs, already summed above).
    merged.churn_departures += churn.total_departures;
    merged.churn_rejoins += churn.total_rejoins;
  }

  // The shared LAN bus and the double accumulators replay in global trace
  // order: each addition happens in exactly the sequence the unsharded run
  // would have used, so the sums match bit for bit. The same entries also
  // complete each shard's own Metrics (its doubles use its own sub-order).
  net::LanModel lan(config.lan);
  std::vector<std::size_t> cursor(n, 0);
  for (std::uint32_t i = 0; i < requests.size(); ++i) {
    const std::uint32_t s = owner[i];
    BAPS_ENSURE(cursor[s] < logs[s].entries.size(),
                "shard log shorter than its request stream");
    const ReplayLog::Entry& e = logs[s].entries[cursor[s]++];
    BAPS_ENSURE(e.index == i, "shard log out of order");
    Metrics& shard = result.per_shard[s];
    switch (e.kind) {
      case ReplayLog::Kind::kLocal:
      case ReplayLog::Kind::kProxy:
        merged.total_service_time_s += e.latency_s;
        merged.total_hit_latency_s += e.latency_s;
        shard.total_service_time_s += e.latency_s;
        shard.total_hit_latency_s += e.latency_s;
        break;
      case ReplayLog::Kind::kMiss:
        merged.total_service_time_s += e.latency_s;
        shard.total_service_time_s += e.latency_s;
        break;
      case ReplayLog::Kind::kRemote: {
        double t = e.latency_s;
        double shard_transfer = 0.0;
        double shard_wait = 0.0;
        for (std::uint8_t h = 0; h < e.hops; ++h) {
          const net::TransferResult x = lan.transfer(e.timestamp, e.size);
          merged.remote_transfer_time_s += x.transfer_s;
          merged.remote_contention_time_s += x.wait_s;
          shard_transfer += x.transfer_s;
          shard_wait += x.wait_s;
          t += x.transfer_s + x.wait_s;
        }
        merged.total_service_time_s += t;
        merged.total_hit_latency_s += t;
        merged.observe_latency(t);
        shard.remote_transfer_time_s += shard_transfer;
        shard.remote_contention_time_s += shard_wait;
        shard.total_service_time_s += t;
        shard.total_hit_latency_s += t;
        shard.observe_latency(t);
        break;
      }
    }
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    BAPS_ENSURE(cursor[s] == logs[s].entries.size(),
                "shard log longer than its request stream");
  }
  result.merge_seconds = obs::monotonic_seconds() - merge_start;

  publish_shard_metrics(kind, result);
  return result;
}

}  // namespace baps::sim
