// Shared-nothing sharded replay engine: the multi-core hot path.
//
// The flat-memory rewrite made one organization fast on one core; this
// engine partitions a replay across N shards, each owning a disjoint slice
// of the document space — its own slab-backed LRU caches, FlatMap tables,
// and BrowserIndex holder lists — and replays its requests on a dedicated
// worker thread with no cross-shard locks, no shared mutable state, and no
// atomics on the request path. This is the cooperative-caching partition
// the literature uses (each node owns a hash range of the key space),
// applied inside one process.
//
// Routing: documents hash to shards via util::shard_of (splitmix64), so
// every structure keyed by doc — cache entries, holder lists, per-client
// browser-set slices — lives with exactly one shard. The exception is the
// local-browser-only organization, which has no cross-client structures at
// all: it routes by CLIENT, each browser living whole in one shard, which
// keeps even its eviction behavior exactly decomposable.
//
// Determinism contract (enforced by tests/sim/sharded_replay_test.cpp and
// the check.sh smoke):
//   * one shard  == the unsharded replay, bit-identical, on ANY config —
//     routing degenerates to the identity and the merge replays the double
//     additions in exactly the original order;
//   * parallel   == sequential shard execution, bit-identical, for any N —
//     shards share nothing, so scheduling cannot change any outcome;
//   * N shards   == unsharded, bit-identical, for any N, on configs where
//     per-request outcomes are per-doc decomposable: caches large enough
//     that nothing evicts, one memory tier, and the immediate exact index.
//     (Under capacity pressure a global LRU's evictions depend on the
//     *interleaving* of all documents, which no doc partition can
//     reproduce — then N>1 models an N-node cooperative cache instead, and
//     the sum(shard) == merged counter invariants still hold exactly.)
//
// Merge semantics: integer counters and histogram buckets are summed
// (order-independent); the double accumulators and the shared LAN bus are
// replayed from per-shard ReplayLogs in global trace order, reproducing the
// unsharded addition sequence bit for bit (see sim/replay_log.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "trace/record.hpp"

namespace baps::sim {

struct ShardedReplayOptions {
  std::uint32_t shards = 1;
  /// false runs the shard loops back-to-back on the calling thread — the
  /// reference schedule the parallel execution must be bit-identical to
  /// (and the useful mode under instrumented builds).
  bool parallel = true;
};

struct ShardedReplayResult {
  Metrics merged;                   ///< bit-identical contract holder
  std::vector<Metrics> per_shard;   ///< each shard's own view
  std::vector<std::uint64_t> shard_requests;  ///< requests routed per shard
  std::vector<double> shard_seconds;  ///< per-shard replay time (no setup)
  double route_seconds = 0.0;   ///< trace split + churn schedule precompute
  double replay_seconds = 0.0;  ///< wall time of the whole replay section
  double merge_seconds = 0.0;   ///< counter sums + ordered double replay
  std::uint32_t shards = 1;

  /// Aggregate throughput over the critical path — route once, shards run
  /// concurrently (bounded by the slowest), merge once. On a machine whose
  /// affinity mask actually spans N cores this is what replay_seconds
  /// converges to; reported separately so a core-restricted CI box still
  /// measures the shard-parallel speedup honestly.
  double critical_path_seconds() const;
  double critical_path_requests_per_second() const;
};

/// True for organizations routed by client id instead of document id (no
/// cross-client state, so whole browsers move to their owning shard and
/// the partition is exact in every configuration).
bool routes_by_client(OrgKind kind);

/// Replays `trace` through `kind` split over opts.shards shards. The
/// config describes the WHOLE organization; doc-routed shards get 1/N
/// capacity slices (util::slice_bytes — they sum to the original budget).
/// Publishes shard_requests_total / shard_replay_seconds /
/// shard_merge_seconds to the global registry.
ShardedReplayResult run_organization_sharded(OrgKind kind,
                                             const SimConfig& config,
                                             const trace::Trace& trace,
                                             const ShardedReplayOptions& opts);

/// Eagerly materializes the shard_* metric families (zero-valued) so every
/// baps.report.v1 export carries them and report_check can always validate
/// the sum(shard) == merged invariant. Called by the engine itself and by
/// bench mains before their first export.
void register_shard_metric_families();

}  // namespace baps::sim
