// Simulation metrics: everything the paper's figures and overhead tables
// report, gathered in one result struct.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/stats.hpp"

namespace baps::sim {

/// Where a request was served from.
enum class HitLocation { kLocalBrowser, kProxy, kRemoteBrowser, kMiss };

struct Metrics {
  // --- headline ratios (Figures 2, 4–7) ---------------------------------
  baps::RatioCounter hits;        ///< request-weighted
  baps::RatioCounter byte_hits;   ///< byte-weighted

  // --- hit-location breakdowns (Figure 3) -------------------------------
  std::uint64_t local_browser_hits = 0;
  std::uint64_t proxy_hits = 0;
  std::uint64_t remote_browser_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t local_browser_hit_bytes = 0;
  std::uint64_t proxy_hit_bytes = 0;
  std::uint64_t remote_browser_hit_bytes = 0;
  std::uint64_t miss_bytes = 0;

  // --- memory-tier accounting (§4.2) -------------------------------------
  std::uint64_t memory_hit_bytes = 0;  ///< hit bytes served from RAM tiers
  std::uint64_t disk_hit_bytes = 0;    ///< hit bytes served from disk tiers

  // --- size-change misses (§3.2 rule) ------------------------------------
  std::uint64_t size_change_misses = 0;

  // --- overheads (§5) -----------------------------------------------------
  double remote_transfer_time_s = 0.0;   ///< LAN time for remote-browser hits
  double remote_contention_time_s = 0.0; ///< bus waiting for those transfers
  std::uint64_t remote_transfer_bytes = 0;
  std::uint64_t index_messages = 0;      ///< browser→proxy index traffic
  std::uint64_t false_forwards = 0;      ///< index said yes, browser said no
  std::uint64_t stale_remote_probes = 0; ///< remote copy had changed size

  // --- client churn (§5 spirit) -------------------------------------------
  std::uint64_t churn_departures = 0;  ///< clients that left mid-trace
  std::uint64_t churn_rejoins = 0;     ///< departed clients that came back
  std::uint64_t churn_wiped_docs = 0;  ///< browser docs lost to departures

  // --- service time (denominator for §5's "portion of total workload
  //     service time") ----------------------------------------------------
  double total_service_time_s = 0.0;
  double total_hit_latency_s = 0.0;  ///< service time excluding miss fetches

  /// Per-request service-time distribution, log10-seconds over [1 µs, 1000 s)
  /// — spans memory reads through WAN fetches of tail documents.
  baps::Histogram log_latency{-6.0, 3.0, 90};

  void observe_latency(double seconds) {
    // Sub-µs samples land in the histogram's explicit underflow bucket (the
    // domain floor is 1 µs = log10 −6); the clamp only keeps log10 finite
    // for nonpositive inputs, it no longer drops samples below the first
    // bucket.
    log_latency.add(std::log10(std::max(seconds, 1e-300)));
  }
  /// Request-latency quantile in seconds (bucket resolution). Well-defined
  /// at the edges: under/overflow mass resolves to the domain bounds, so the
  /// result is always within [1 µs, 1000 s].
  double latency_quantile(double q) const {
    return std::pow(10.0, log_latency.quantile(q));
  }

  // Derived helpers ---------------------------------------------------------
  double hit_ratio() const { return hits.ratio(); }
  double byte_hit_ratio() const { return byte_hits.ratio(); }

  /// Fraction of hit *bytes* served from memory tiers, normalized by total
  /// requested bytes (the paper's "memory byte hit ratio").
  double memory_byte_hit_ratio() const {
    const auto total = byte_hits.total();
    return total ? static_cast<double>(memory_hit_bytes) /
                       static_cast<double>(total)
                 : 0.0;
  }

  double remote_overhead_fraction() const {
    return total_service_time_s > 0.0
               ? (remote_transfer_time_s + remote_contention_time_s) /
                     total_service_time_s
               : 0.0;
  }

  double contention_fraction_of_comm() const {
    const double comm = remote_transfer_time_s + remote_contention_time_s;
    return comm > 0.0 ? remote_contention_time_s / comm : 0.0;
  }
};

}  // namespace baps::sim
