// Simulation metrics: everything the paper's figures and overhead tables
// report, gathered in one result struct.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "util/stats.hpp"

namespace baps::sim {

/// Where a request was served from.
enum class HitLocation { kLocalBrowser, kProxy, kRemoteBrowser, kMiss };

struct Metrics {
  // --- headline ratios (Figures 2, 4–7) ---------------------------------
  baps::RatioCounter hits;        ///< request-weighted
  baps::RatioCounter byte_hits;   ///< byte-weighted

  // --- hit-location breakdowns (Figure 3) -------------------------------
  std::uint64_t local_browser_hits = 0;
  std::uint64_t proxy_hits = 0;
  std::uint64_t remote_browser_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t local_browser_hit_bytes = 0;
  std::uint64_t proxy_hit_bytes = 0;
  std::uint64_t remote_browser_hit_bytes = 0;
  std::uint64_t miss_bytes = 0;

  // --- memory-tier accounting (§4.2) -------------------------------------
  std::uint64_t memory_hit_bytes = 0;  ///< hit bytes served from RAM tiers
  std::uint64_t disk_hit_bytes = 0;    ///< hit bytes served from disk tiers

  // --- size-change misses (§3.2 rule) ------------------------------------
  std::uint64_t size_change_misses = 0;

  // --- overheads (§5) -----------------------------------------------------
  double remote_transfer_time_s = 0.0;   ///< LAN time for remote-browser hits
  double remote_contention_time_s = 0.0; ///< bus waiting for those transfers
  std::uint64_t remote_transfer_bytes = 0;
  std::uint64_t index_messages = 0;      ///< browser→proxy index traffic
  std::uint64_t false_forwards = 0;      ///< index said yes, browser said no
  std::uint64_t stale_remote_probes = 0; ///< remote copy had changed size

  // --- client churn (§5 spirit) -------------------------------------------
  std::uint64_t churn_departures = 0;  ///< clients that left mid-trace
  std::uint64_t churn_rejoins = 0;     ///< departed clients that came back
  std::uint64_t churn_wiped_docs = 0;  ///< browser docs lost to departures

  // --- service time (denominator for §5's "portion of total workload
  //     service time") ----------------------------------------------------
  double total_service_time_s = 0.0;
  double total_hit_latency_s = 0.0;  ///< service time excluding miss fetches

  /// Per-request service-time distribution, log10-seconds over [1 µs, 1000 s)
  /// — spans memory reads through WAN fetches of tail documents.
  baps::Histogram log_latency{-6.0, 3.0, 90};

  void observe_latency(double seconds) {
    // Sub-µs samples land in the histogram's explicit underflow bucket (the
    // domain floor is 1 µs = log10 −6); the clamp only keeps log10 finite
    // for nonpositive inputs, it no longer drops samples below the first
    // bucket.
    log_latency.add(std::log10(std::max(seconds, 1e-300)));
  }
  /// Request-latency quantile in seconds (bucket resolution). Well-defined
  /// at the edges: under/overflow mass resolves to the domain bounds, so the
  /// result is always within [1 µs, 1000 s].
  double latency_quantile(double q) const {
    return std::pow(10.0, log_latency.quantile(q));
  }

  /// Folds another shard's order-independent state into this one: ratio
  /// counters, integer counters, and histogram bucket counts — all exact
  /// under reordering. Deliberately does NOT touch the double accumulators
  /// (total_service_time_s, total_hit_latency_s, remote_transfer_time_s,
  /// remote_contention_time_s): double addition is order-dependent, so the
  /// sharded engine replays those in global trace order from the ReplayLogs
  /// instead (see sim/sharded_replay).
  void accumulate_counters(const Metrics& other) {
    hits.merge_from(other.hits);
    byte_hits.merge_from(other.byte_hits);
    local_browser_hits += other.local_browser_hits;
    proxy_hits += other.proxy_hits;
    remote_browser_hits += other.remote_browser_hits;
    misses += other.misses;
    local_browser_hit_bytes += other.local_browser_hit_bytes;
    proxy_hit_bytes += other.proxy_hit_bytes;
    remote_browser_hit_bytes += other.remote_browser_hit_bytes;
    miss_bytes += other.miss_bytes;
    memory_hit_bytes += other.memory_hit_bytes;
    disk_hit_bytes += other.disk_hit_bytes;
    size_change_misses += other.size_change_misses;
    remote_transfer_bytes += other.remote_transfer_bytes;
    index_messages += other.index_messages;
    false_forwards += other.false_forwards;
    stale_remote_probes += other.stale_remote_probes;
    churn_departures += other.churn_departures;
    churn_rejoins += other.churn_rejoins;
    churn_wiped_docs += other.churn_wiped_docs;
    log_latency.merge_from(other.log_latency);
  }

  // Derived helpers ---------------------------------------------------------
  double hit_ratio() const { return hits.ratio(); }
  double byte_hit_ratio() const { return byte_hits.ratio(); }

  /// Fraction of hit *bytes* served from memory tiers, normalized by total
  /// requested bytes (the paper's "memory byte hit ratio").
  double memory_byte_hit_ratio() const {
    const auto total = byte_hits.total();
    return total ? static_cast<double>(memory_hit_bytes) /
                       static_cast<double>(total)
                 : 0.0;
  }

  double remote_overhead_fraction() const {
    return total_service_time_s > 0.0
               ? (remote_transfer_time_s + remote_contention_time_s) /
                     total_service_time_s
               : 0.0;
  }

  double contention_fraction_of_comm() const {
    const double comm = remote_transfer_time_s + remote_contention_time_s;
    return comm > 0.0 ? remote_contention_time_s / comm : 0.0;
  }
};

/// Exact comparison down to the floating-point bit patterns (`==` would
/// conflate +0.0/-0.0 and choke on NaN; the sharded-vs-unsharded contract
/// is about the bits). This is the check behind the differential tests and
/// the check.sh sharded smoke.
inline bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

inline bool bit_identical(const Metrics& a, const Metrics& b) {
  return a.hits.hits() == b.hits.hits() && a.hits.total() == b.hits.total() &&
         a.byte_hits.hits() == b.byte_hits.hits() &&
         a.byte_hits.total() == b.byte_hits.total() &&
         a.local_browser_hits == b.local_browser_hits &&
         a.proxy_hits == b.proxy_hits &&
         a.remote_browser_hits == b.remote_browser_hits &&
         a.misses == b.misses &&
         a.local_browser_hit_bytes == b.local_browser_hit_bytes &&
         a.proxy_hit_bytes == b.proxy_hit_bytes &&
         a.remote_browser_hit_bytes == b.remote_browser_hit_bytes &&
         a.miss_bytes == b.miss_bytes &&
         a.memory_hit_bytes == b.memory_hit_bytes &&
         a.disk_hit_bytes == b.disk_hit_bytes &&
         a.size_change_misses == b.size_change_misses &&
         a.remote_transfer_bytes == b.remote_transfer_bytes &&
         a.index_messages == b.index_messages &&
         a.false_forwards == b.false_forwards &&
         a.stale_remote_probes == b.stale_remote_probes &&
         a.churn_departures == b.churn_departures &&
         a.churn_rejoins == b.churn_rejoins &&
         a.churn_wiped_docs == b.churn_wiped_docs &&
         same_bits(a.remote_transfer_time_s, b.remote_transfer_time_s) &&
         same_bits(a.remote_contention_time_s, b.remote_contention_time_s) &&
         same_bits(a.total_service_time_s, b.total_service_time_s) &&
         same_bits(a.total_hit_latency_s, b.total_hit_latency_s) &&
         a.log_latency.buckets() == b.log_latency.buckets() &&
         a.log_latency.underflow() == b.log_latency.underflow() &&
         a.log_latency.overflow() == b.log_latency.overflow() &&
         a.log_latency.count() == b.log_latency.count();
}

}  // namespace baps::sim
