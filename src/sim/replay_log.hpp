// Deferred-accounting log for the sharded replay engine (sim/sharded_replay).
//
// Two pieces of the per-request accounting are order-dependent across the
// whole trace and therefore cannot be computed inside an isolated shard:
//
//   1. the floating-point accumulators (total_service_time_s,
//      total_hit_latency_s, remote_transfer_time_s,
//      remote_contention_time_s) — double addition is not associative, so
//      summing per-shard partials would drift from the unsharded run's
//      bit pattern even though the math is "the same";
//   2. the shared-LAN bus (net::LanModel) — a remote-browser transfer's
//      wait time depends on when every *earlier* transfer, from any shard,
//      released the bus.
//
// When a ReplayLog is attached to an Organization, the record_* helpers
// keep all order-independent accounting (integer counters, histogram
// bucket counts for latencies that are pure functions of the request) in
// the shard's own Metrics, and append one Entry per request carrying the
// order-dependent remainder. The merge pass walks the logs in global trace
// order, replays the bus and the double additions in exactly the unsharded
// sequence, and lands on bit-identical merged metrics.
#pragma once

#include <cstdint>
#include <vector>

namespace baps::sim {

struct ReplayLog {
  /// How the request was served; decides what the merge pass replays.
  enum class Kind : std::uint8_t { kLocal, kProxy, kRemote, kMiss };

  struct Entry {
    /// Full service latency for kLocal/kProxy/kMiss (a pure function of the
    /// request, computed in-shard); for kRemote only the cache-read base —
    /// the bus hops are replayed at merge time.
    double latency_s = 0.0;
    double timestamp = 0.0;   ///< request arrival (kRemote: drives the bus)
    std::uint64_t size = 0;   ///< document bytes (kRemote: transfer size)
    std::uint32_t index = 0;  ///< global trace position (merge-order check)
    Kind kind = Kind::kMiss;
    std::uint8_t hops = 0;    ///< kRemote: 1 direct, 2 via proxy relay
  };

  std::vector<Entry> entries;

  void reserve(std::size_t n) { entries.reserve(n); }
};

}  // namespace baps::sim
