// Multi-proxy hierarchy extension.
//
// The paper situates BAPS inside the standard late-90s caching hierarchy
// ("the proxy will immediately send the request to its cooperative caches,
// if any, or to an upper level proxy cache, or to the web server") and its
// journal follow-up (Xiao, Zhang & Xu, TKDE 2004) grew the idea into a
// hybrid proxy+browser P2P system. This module implements that larger
// topology so the composition question can be measured:
//
//   clients → leaf proxy (per group) → [sibling proxies, ICP-style]
//           → parent proxy → origin
//
// with browsers-awareness optionally enabled at each leaf. Clients are
// partitioned across leaves; sibling cooperation queries the other leaves'
// caches on a leaf miss (one LAN hop, like a remote-browser hit); the
// parent is a shared second-level cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/browser_index.hpp"
#include "sim/organization.hpp"

namespace baps::sim {

struct HierarchyConfig {
  std::uint32_t num_leaf_proxies = 4;
  bool sibling_cooperation = false;  ///< ICP-style sibling queries
  bool browsers_aware = false;       ///< BAPS at each leaf

  std::uint64_t leaf_cache_bytes = 0;
  std::uint64_t parent_cache_bytes = 0;
  std::vector<std::uint64_t> browser_cache_bytes;  ///< per client

  cache::PolicyKind policy = cache::PolicyKind::kLru;
  double memory_fraction = 0.1;
  net::LanParams lan{};
  LatencyParams latency{};
};

/// Where a request was served from, hierarchy edition.
struct HierarchyMetrics {
  baps::RatioCounter hits;
  baps::RatioCounter byte_hits;

  std::uint64_t local_browser_hits = 0;
  std::uint64_t leaf_proxy_hits = 0;
  std::uint64_t remote_browser_hits = 0;
  std::uint64_t sibling_proxy_hits = 0;
  std::uint64_t parent_proxy_hits = 0;
  std::uint64_t misses = 0;

  double total_service_time_s = 0.0;

  double hit_ratio() const { return hits.ratio(); }
  double byte_hit_ratio() const { return byte_hits.ratio(); }
};

/// Trace-driven simulation of the hierarchy. Clients are assigned to leaf
/// proxy (client id mod num_leaf_proxies).
class HierarchySim {
 public:
  HierarchySim(const HierarchyConfig& config, std::uint32_t num_clients);

  void process(const trace::Request& r);
  const HierarchyMetrics& metrics() const { return metrics_; }

  std::uint32_t leaf_of(trace::ClientId client) const {
    return client % config_.num_leaf_proxies;
  }

 private:
  /// Size-change-aware lookup (erases stale copies, counts nothing).
  static std::optional<cache::TieredLookup> fresh_lookup(
      cache::TieredCache& cache, const trace::Request& r);

  void serve(const trace::Request& r, double latency_s,
             std::uint64_t* counter);

  HierarchyConfig config_;
  LatencyModel latency_;
  net::LanModel lan_;
  std::vector<cache::TieredCache> browsers_;
  std::vector<cache::TieredCache> leaves_;
  cache::TieredCache parent_;
  // One browser index per leaf (a leaf only knows its own clients).
  std::vector<std::unique_ptr<index::BrowserIndex>> indexes_;
  HierarchyMetrics metrics_;
};

/// Convenience runner.
HierarchyMetrics run_hierarchy(const HierarchyConfig& config,
                               const trace::Trace& trace);

}  // namespace baps::sim
