// The five web caching organizations of §3.2, behind one interface.
//
// An Organization consumes a trace request-by-request, maintains whatever
// caches/indexes its scheme prescribes, and accumulates Metrics. All five
// share the §3.2 ground rules:
//   * replacement policy per SimConfig (the paper: LRU);
//   * a hit on a document whose size has changed counts as a miss and the
//     stale copy is discarded;
//   * caches are two-tier (RAM/disk) for §4.2's memory accounting.
//
// Latency/overhead accounting (§4.2, §5):
//   * local browser hit: tiered cache read;
//   * proxy hit: tiered read at the proxy + an uncontended LAN delivery to
//     the client;
//   * remote browser hit: tiered read at the peer + a *shared-bus* LAN
//     transfer (one hop direct, two hops when relayed via the proxy) — only
//     these transfers contend, matching the paper's overhead definition;
//   * miss: WAN origin fetch.
#pragma once

#include <memory>
#include <optional>

#include "cache/tiered_cache.hpp"
#include "fault/churn.hpp"
#include "net/lan_model.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "sim/replay_log.hpp"
#include "trace/record.hpp"
#include "util/assert.hpp"

namespace baps::sim {

class Organization {
 public:
  static std::unique_ptr<Organization> create(OrgKind kind,
                                              const SimConfig& config,
                                              std::uint32_t num_clients);

  virtual ~Organization() = default;

  virtual OrgKind kind() const = 0;

  /// Processes one trace request. Requests must arrive in trace order.
  virtual void process(const trace::Request& r) = 0;

  /// End-of-trace hook (flush index protocols, close accounting).
  virtual void finish() {}

  /// One churn decision per request, called by the driver BEFORE process().
  /// With churn disabled (config.churn_rate == 0) this is a null check and
  /// nothing else — the zero-churn replay stays bit-identical.
  void churn_step(const trace::Request& r) {
    if (churn_) churn_step_slow(r);
  }

  const Metrics& metrics() const { return metrics_; }

  // --- sharded-replay hooks (sim/sharded_replay) -------------------------

  /// Attaches a deferred-accounting log: order-dependent accounting (double
  /// accumulators, shared-bus transfers) is appended to `log` instead of
  /// being applied, for replay in global trace order at merge time. Pass
  /// nullptr to restore normal in-place accounting.
  void set_replay_log(ReplayLog* log) { log_ = log; }

  /// Global trace position of the next process() call; recorded into log
  /// entries so the merge pass can verify it interleaves shards correctly.
  void set_log_index(std::uint32_t index) { log_index_ = index; }

  /// Externally-driven churn departure: empties `client`'s browser slice in
  /// this organization (the sharded engine owns the churn schedule and
  /// applies each event to every shard). Bumps churn_wiped_docs only — the
  /// departure itself is counted once, by the engine.
  void apply_churn_wipe(trace::ClientId client) { wipe_client(client); }

  /// Marks churn as active even though churn_ is null (the sharded engine
  /// drives the schedule externally); churn-gated behavior like stale-entry
  /// invalidation must match an unsharded churning run.
  void set_external_churn(bool on) { external_churn_ = on; }

 protected:
  Organization(const SimConfig& config, std::uint32_t num_clients);

  /// Looks up `r.doc` in `cache` applying the size-change rule: a cached
  /// copy at a different size is erased and reported as a miss
  /// (metrics_.size_change_misses incremented). `on_stale_erase` fires when
  /// that happens, so index-maintaining organizations can propagate the
  /// removal. A template so call-site lambdas inline instead of constructing
  /// a std::function per request.
  template <typename OnStale>
  std::optional<cache::TieredLookup> lookup_current(cache::TieredCache& cache,
                                                    const trace::Request& r,
                                                    OnStale&& on_stale_erase) {
    const cache::TieredProbe probe = cache.touch_expected(r.doc, r.size);
    if (probe.outcome == cache::LookupOutcome::kMiss) return std::nullopt;
    if (probe.outcome == cache::LookupOutcome::kStale) {
      // §3.2: a hit on a size-changed document is a miss; drop the stale
      // copy.
      cache.erase(r.doc);
      ++metrics_.size_change_misses;
      on_stale_erase(r.doc);
      return std::nullopt;
    }
    return cache::TieredLookup{r.size, probe.tier};
  }
  std::optional<cache::TieredLookup> lookup_current(cache::TieredCache& cache,
                                                    const trace::Request& r) {
    return lookup_current(cache, r, [](trace::DocId) {});
  }

  // The record_* helpers run once per request; defined here so the org
  // process() loops in orgs.cpp inline them instead of calling across TUs.

  void record_local_browser_hit(const trace::Request& r,
                                cache::HitTier tier) {
    metrics_.hits.hit();
    metrics_.byte_hits.hit(r.size);
    ++metrics_.local_browser_hits;
    metrics_.local_browser_hit_bytes += r.size;
    count_memory_bytes(r, tier);
    const double t = latency_.cache_read(r.size, tier);
    if (log_ == nullptr) {
      metrics_.total_service_time_s += t;
      metrics_.total_hit_latency_s += t;
    } else {
      log_->entries.push_back(
          {t, 0.0, 0, log_index_, ReplayLog::Kind::kLocal, 0});
    }
    metrics_.observe_latency(t);
  }

  void record_proxy_hit(const trace::Request& r, cache::HitTier tier) {
    metrics_.hits.hit();
    metrics_.byte_hits.hit(r.size);
    ++metrics_.proxy_hits;
    metrics_.proxy_hit_bytes += r.size;
    count_memory_bytes(r, tier);
    // Proxy→client delivery rides the LAN but is not part of the paper's
    // remote-browser overhead; it is uncontended here.
    const double t =
        latency_.cache_read(r.size, tier) + lan_.transfer_time(r.size);
    if (log_ == nullptr) {
      metrics_.total_service_time_s += t;
      metrics_.total_hit_latency_s += t;
    } else {
      log_->entries.push_back(
          {t, 0.0, 0, log_index_, ReplayLog::Kind::kProxy, 0});
    }
    metrics_.observe_latency(t);
  }

  /// hops: 1 for direct client→client forwarding, 2 for proxy relay.
  void record_remote_browser_hit(const trace::Request& r, cache::HitTier tier,
                                 int hops) {
    BAPS_REQUIRE(hops == 1 || hops == 2,
                 "remote hits take one or two LAN hops");
    metrics_.hits.hit();
    metrics_.byte_hits.hit(r.size);
    ++metrics_.remote_browser_hits;
    metrics_.remote_browser_hit_bytes += r.size;
    count_memory_bytes(r, tier);

    if (log_ != nullptr) {
      // The bus hops are order-dependent across shards: defer them (and the
      // latency observation, which needs the bus wait) to the merge pass.
      // The transfer byte count is order-independent, so it stays here.
      metrics_.remote_transfer_bytes +=
          r.size * static_cast<std::uint64_t>(hops);
      log_->entries.push_back({latency_.cache_read(r.size, tier), r.timestamp,
                               r.size, log_index_, ReplayLog::Kind::kRemote,
                               static_cast<std::uint8_t>(hops)});
      return;
    }
    double t = latency_.cache_read(r.size, tier);
    for (int h = 0; h < hops; ++h) {
      const net::TransferResult x = lan_.transfer(r.timestamp, r.size);
      metrics_.remote_transfer_time_s += x.transfer_s;
      metrics_.remote_contention_time_s += x.wait_s;
      metrics_.remote_transfer_bytes += r.size;
      t += x.transfer_s + x.wait_s;
    }
    metrics_.total_service_time_s += t;
    metrics_.total_hit_latency_s += t;
    metrics_.observe_latency(t);
  }

  void record_miss(const trace::Request& r) {
    metrics_.hits.miss();
    metrics_.byte_hits.miss(r.size);
    ++metrics_.misses;
    metrics_.miss_bytes += r.size;
    const double t = latency_.origin_fetch(r.size);
    if (log_ == nullptr) {
      metrics_.total_service_time_s += t;
    } else {
      log_->entries.push_back(
          {t, 0.0, 0, log_index_, ReplayLog::Kind::kMiss, 0});
    }
    metrics_.observe_latency(t);
  }

  void count_memory_bytes(const trace::Request& r, cache::HitTier tier) {
    if (tier == cache::HitTier::kMemory) {
      metrics_.memory_hit_bytes += r.size;
    } else {
      metrics_.disk_hit_bytes += r.size;
    }
  }

  /// A churned client's browser cache empties. Each organization decides
  /// what its directory structures learn about it: the replicated index of
  /// organization 3 stays synced (every browser sees every departure), the
  /// browsers-aware proxy of organization 5 is left with stale entries —
  /// the §5 failure shape the false-forward counter measures.
  virtual void wipe_client(trace::ClientId client) { (void)client; }

  /// True when clients churn, whether the schedule is driven internally
  /// (churn_) or by the sharded engine (external_churn_). Churn-gated
  /// behavior (e.g. stale-index invalidation on a disproved probe) keys off
  /// this so sharded and unsharded churning runs agree.
  bool churn_active() const { return churn_ != nullptr || external_churn_; }

  SimConfig config_;
  std::uint32_t num_clients_;
  LatencyModel latency_;
  net::LanModel lan_;
  Metrics metrics_;
  std::unique_ptr<fault::ChurnModel> churn_;  ///< null when churn is off
  ReplayLog* log_ = nullptr;        ///< non-null in sharded replay workers
  std::uint32_t log_index_ = 0;     ///< global trace position for log entries
  bool external_churn_ = false;

 private:
  void churn_step_slow(const trace::Request& r);
};

/// Convenience: run a whole trace through a fresh organization.
Metrics run_organization(OrgKind kind, const SimConfig& config,
                         const trace::Trace& trace);

}  // namespace baps::sim
