// The five web caching organizations of §3.2, behind one interface.
//
// An Organization consumes a trace request-by-request, maintains whatever
// caches/indexes its scheme prescribes, and accumulates Metrics. All five
// share the §3.2 ground rules:
//   * replacement policy per SimConfig (the paper: LRU);
//   * a hit on a document whose size has changed counts as a miss and the
//     stale copy is discarded;
//   * caches are two-tier (RAM/disk) for §4.2's memory accounting.
//
// Latency/overhead accounting (§4.2, §5):
//   * local browser hit: tiered cache read;
//   * proxy hit: tiered read at the proxy + an uncontended LAN delivery to
//     the client;
//   * remote browser hit: tiered read at the peer + a *shared-bus* LAN
//     transfer (one hop direct, two hops when relayed via the proxy) — only
//     these transfers contend, matching the paper's overhead definition;
//   * miss: WAN origin fetch.
#pragma once

#include <functional>
#include <memory>

#include "cache/tiered_cache.hpp"
#include "net/lan_model.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "trace/record.hpp"

namespace baps::sim {

class Organization {
 public:
  static std::unique_ptr<Organization> create(OrgKind kind,
                                              const SimConfig& config,
                                              std::uint32_t num_clients);

  virtual ~Organization() = default;

  virtual OrgKind kind() const = 0;

  /// Processes one trace request. Requests must arrive in trace order.
  virtual void process(const trace::Request& r) = 0;

  /// End-of-trace hook (flush index protocols, close accounting).
  virtual void finish() {}

  const Metrics& metrics() const { return metrics_; }

 protected:
  Organization(const SimConfig& config, std::uint32_t num_clients);

  /// Looks up `r.doc` in `cache` applying the size-change rule: a cached
  /// copy at a different size is erased and reported as a miss
  /// (metrics_.size_change_misses incremented). `on_stale_erase` fires when
  /// that happens, so index-maintaining organizations can propagate the
  /// removal.
  std::optional<cache::TieredLookup> lookup_current(
      cache::TieredCache& cache, const trace::Request& r,
      const std::function<void(trace::DocId)>& on_stale_erase = nullptr);

  void record_local_browser_hit(const trace::Request& r, cache::HitTier tier);
  void record_proxy_hit(const trace::Request& r, cache::HitTier tier);
  /// hops: 1 for direct client→client forwarding, 2 for proxy relay.
  void record_remote_browser_hit(const trace::Request& r, cache::HitTier tier,
                                 int hops);
  void record_miss(const trace::Request& r);

  void count_memory_bytes(const trace::Request& r, cache::HitTier tier);

  SimConfig config_;
  std::uint32_t num_clients_;
  LatencyModel latency_;
  net::LanModel lan_;
  Metrics metrics_;
};

/// Convenience: run a whole trace through a fresh organization.
Metrics run_organization(OrgKind kind, const SimConfig& config,
                         const trace::Trace& trace);

}  // namespace baps::sim
