// Storage and origin latency model for §4.2 (memory byte hit ratios) and
// §5 (overhead as a fraction of total workload service time).
//
// The paper's constants, with OCR-lost units restored to the only physically
// sensible interpretation and recorded in EXPERIMENTS.md:
//   * one memory access of a 16-byte cache block: 2 µs ("the memory access
//     time is lower than this in many advanced workstations", year 2000);
//   * one disk access of a 4 KB page: 10 ms.
// Origin (web-server) fetches are not broken out by the paper; we model them
// with a year-2000 WAN: fixed round-trip latency plus serialization at WAN
// bandwidth. They dominate total service time, which is exactly why the
// paper's remote-transfer overhead looks so small against it.
#pragma once

#include <cstdint>

#include "cache/tiered_cache.hpp"

namespace baps::sim {

struct LatencyParams {
  double memory_block_s = 2e-6;       ///< per 16-byte block
  std::uint64_t memory_block_bytes = 16;
  double disk_page_s = 10e-3;         ///< per 4 KiB page
  std::uint64_t disk_page_bytes = 4096;
  double origin_rtt_s = 1.0;          ///< WAN connection + server time
  double origin_bandwidth_bps = 0.5e6;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyParams params = {});

  /// Time to read `bytes` from the given cache tier. Inline: this runs once
  /// per simulated hit, and the callers sit in other translation units.
  double cache_read(std::uint64_t bytes, cache::HitTier tier) const {
    if (tier == cache::HitTier::kMemory) {
      const std::uint64_t blocks =
          (bytes + params_.memory_block_bytes - 1) /
          params_.memory_block_bytes;
      return static_cast<double>(blocks) * params_.memory_block_s;
    }
    const std::uint64_t pages =
        (bytes + params_.disk_page_bytes - 1) / params_.disk_page_bytes;
    return static_cast<double>(pages) * params_.disk_page_s;
  }

  /// Time to fetch `bytes` from the origin server across the WAN.
  double origin_fetch(std::uint64_t bytes) const {
    return params_.origin_rtt_s +
           static_cast<double>(bytes) * 8.0 / params_.origin_bandwidth_bps;
  }

  const LatencyParams& params() const { return params_; }

 private:
  LatencyParams params_;
};

}  // namespace baps::sim
