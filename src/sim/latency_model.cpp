#include "sim/latency_model.hpp"

#include "util/assert.hpp"

namespace baps::sim {

LatencyModel::LatencyModel(LatencyParams params) : params_(params) {
  BAPS_REQUIRE(params_.memory_block_bytes > 0, "block size must be positive");
  BAPS_REQUIRE(params_.disk_page_bytes > 0, "page size must be positive");
  BAPS_REQUIRE(params_.origin_bandwidth_bps > 0.0,
               "origin bandwidth must be positive");
}

}  // namespace baps::sim
