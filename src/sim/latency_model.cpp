#include "sim/latency_model.hpp"

#include "util/assert.hpp"

namespace baps::sim {

LatencyModel::LatencyModel(LatencyParams params) : params_(params) {
  BAPS_REQUIRE(params_.memory_block_bytes > 0, "block size must be positive");
  BAPS_REQUIRE(params_.disk_page_bytes > 0, "page size must be positive");
  BAPS_REQUIRE(params_.origin_bandwidth_bps > 0.0,
               "origin bandwidth must be positive");
}

double LatencyModel::cache_read(std::uint64_t bytes,
                                cache::HitTier tier) const {
  if (tier == cache::HitTier::kMemory) {
    const std::uint64_t blocks =
        (bytes + params_.memory_block_bytes - 1) / params_.memory_block_bytes;
    return static_cast<double>(blocks) * params_.memory_block_s;
  }
  const std::uint64_t pages =
      (bytes + params_.disk_page_bytes - 1) / params_.disk_page_bytes;
  return static_cast<double>(pages) * params_.disk_page_s;
}

double LatencyModel::origin_fetch(std::uint64_t bytes) const {
  return params_.origin_rtt_s +
         static_cast<double>(bytes) * 8.0 / params_.origin_bandwidth_bps;
}

}  // namespace baps::sim
