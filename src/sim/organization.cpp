#include "sim/organization.hpp"

#include "sim/orgs.hpp"
#include "util/assert.hpp"

namespace baps::sim {

Organization::Organization(const SimConfig& config, std::uint32_t num_clients)
    : config_(config),
      num_clients_(num_clients),
      latency_(config.latency),
      lan_(config.lan) {
  BAPS_REQUIRE(num_clients > 0, "simulation needs at least one client");
  if (config.churn_rate > 0.0) {
    churn_ = std::make_unique<fault::ChurnModel>(config.churn_seed,
                                                 config.churn_rate,
                                                 num_clients);
  }
}

void Organization::churn_step_slow(const trace::Request& r) {
  // A request from a departed client means it came back online (cold cache:
  // wiped when it left).
  if (churn_->ensure_present(r.client)) ++metrics_.churn_rejoins;
  if (const auto ev = churn_->tick(r.client)) {
    if (ev->kind == fault::ChurnModel::Event::Kind::kDepart) {
      ++metrics_.churn_departures;
      wipe_client(ev->client);
    } else {
      ++metrics_.churn_rejoins;
    }
  }
}

std::unique_ptr<Organization> Organization::create(OrgKind kind,
                                                   const SimConfig& config,
                                                   std::uint32_t num_clients) {
  switch (kind) {
    case OrgKind::kProxyOnly:
      return std::make_unique<ProxyOnlyOrg>(config, num_clients);
    case OrgKind::kLocalBrowserOnly:
      return std::make_unique<LocalBrowserOnlyOrg>(config, num_clients);
    case OrgKind::kGlobalBrowsersOnly:
      return std::make_unique<GlobalBrowsersOnlyOrg>(config, num_clients);
    case OrgKind::kProxyAndLocalBrowser:
      return std::make_unique<ProxyAndLocalBrowserOrg>(config, num_clients);
    case OrgKind::kBrowsersAware:
      return std::make_unique<BrowsersAwareOrg>(config, num_clients);
  }
  BAPS_REQUIRE(false, "unknown organization kind");
  return nullptr;
}

}  // namespace baps::sim
