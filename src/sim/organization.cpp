#include "sim/organization.hpp"

#include "sim/orgs.hpp"
#include "util/assert.hpp"

namespace baps::sim {

Organization::Organization(const SimConfig& config, std::uint32_t num_clients)
    : config_(config),
      num_clients_(num_clients),
      latency_(config.latency),
      lan_(config.lan) {
  BAPS_REQUIRE(num_clients > 0, "simulation needs at least one client");
}

std::unique_ptr<Organization> Organization::create(OrgKind kind,
                                                   const SimConfig& config,
                                                   std::uint32_t num_clients) {
  switch (kind) {
    case OrgKind::kProxyOnly:
      return std::make_unique<ProxyOnlyOrg>(config, num_clients);
    case OrgKind::kLocalBrowserOnly:
      return std::make_unique<LocalBrowserOnlyOrg>(config, num_clients);
    case OrgKind::kGlobalBrowsersOnly:
      return std::make_unique<GlobalBrowsersOnlyOrg>(config, num_clients);
    case OrgKind::kProxyAndLocalBrowser:
      return std::make_unique<ProxyAndLocalBrowserOrg>(config, num_clients);
    case OrgKind::kBrowsersAware:
      return std::make_unique<BrowsersAwareOrg>(config, num_clients);
  }
  BAPS_REQUIRE(false, "unknown organization kind");
  return nullptr;
}

}  // namespace baps::sim
