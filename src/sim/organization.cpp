#include "sim/organization.hpp"

#include "sim/orgs.hpp"
#include "util/assert.hpp"

namespace baps::sim {

Organization::Organization(const SimConfig& config, std::uint32_t num_clients)
    : config_(config),
      num_clients_(num_clients),
      latency_(config.latency),
      lan_(config.lan) {
  BAPS_REQUIRE(num_clients > 0, "simulation needs at least one client");
}

std::optional<cache::TieredLookup> Organization::lookup_current(
    cache::TieredCache& cache, const trace::Request& r,
    const std::function<void(trace::DocId)>& on_stale_erase) {
  const auto cached_size = cache.peek_size(r.doc);
  if (!cached_size) return std::nullopt;
  if (*cached_size != r.size) {
    // §3.2: a hit on a size-changed document is a miss; drop the stale copy.
    cache.erase(r.doc);
    ++metrics_.size_change_misses;
    if (on_stale_erase) on_stale_erase(r.doc);
    return std::nullopt;
  }
  return cache.touch(r.doc);
}

void Organization::count_memory_bytes(const trace::Request& r,
                                      cache::HitTier tier) {
  if (tier == cache::HitTier::kMemory) {
    metrics_.memory_hit_bytes += r.size;
  } else {
    metrics_.disk_hit_bytes += r.size;
  }
}

void Organization::record_local_browser_hit(const trace::Request& r,
                                            cache::HitTier tier) {
  metrics_.hits.hit();
  metrics_.byte_hits.hit(r.size);
  ++metrics_.local_browser_hits;
  metrics_.local_browser_hit_bytes += r.size;
  count_memory_bytes(r, tier);
  const double t = latency_.cache_read(r.size, tier);
  metrics_.total_service_time_s += t;
  metrics_.total_hit_latency_s += t;
  metrics_.observe_latency(t);
}

void Organization::record_proxy_hit(const trace::Request& r,
                                    cache::HitTier tier) {
  metrics_.hits.hit();
  metrics_.byte_hits.hit(r.size);
  ++metrics_.proxy_hits;
  metrics_.proxy_hit_bytes += r.size;
  count_memory_bytes(r, tier);
  // Proxy→client delivery rides the LAN but is not part of the paper's
  // remote-browser overhead; it is uncontended here.
  const double t =
      latency_.cache_read(r.size, tier) + lan_.transfer_time(r.size);
  metrics_.total_service_time_s += t;
  metrics_.total_hit_latency_s += t;
  metrics_.observe_latency(t);
}

void Organization::record_remote_browser_hit(const trace::Request& r,
                                             cache::HitTier tier, int hops) {
  BAPS_REQUIRE(hops == 1 || hops == 2, "remote hits take one or two LAN hops");
  metrics_.hits.hit();
  metrics_.byte_hits.hit(r.size);
  ++metrics_.remote_browser_hits;
  metrics_.remote_browser_hit_bytes += r.size;
  count_memory_bytes(r, tier);

  double t = latency_.cache_read(r.size, tier);
  for (int h = 0; h < hops; ++h) {
    const net::TransferResult x = lan_.transfer(r.timestamp, r.size);
    metrics_.remote_transfer_time_s += x.transfer_s;
    metrics_.remote_contention_time_s += x.wait_s;
    metrics_.remote_transfer_bytes += r.size;
    t += x.transfer_s + x.wait_s;
  }
  metrics_.total_service_time_s += t;
  metrics_.total_hit_latency_s += t;
  metrics_.observe_latency(t);
}

void Organization::record_miss(const trace::Request& r) {
  metrics_.hits.miss();
  metrics_.byte_hits.miss(r.size);
  ++metrics_.misses;
  metrics_.miss_bytes += r.size;
  const double t = latency_.origin_fetch(r.size);
  metrics_.total_service_time_s += t;
  metrics_.observe_latency(t);
}

std::unique_ptr<Organization> Organization::create(OrgKind kind,
                                                   const SimConfig& config,
                                                   std::uint32_t num_clients) {
  switch (kind) {
    case OrgKind::kProxyOnly:
      return std::make_unique<ProxyOnlyOrg>(config, num_clients);
    case OrgKind::kLocalBrowserOnly:
      return std::make_unique<LocalBrowserOnlyOrg>(config, num_clients);
    case OrgKind::kGlobalBrowsersOnly:
      return std::make_unique<GlobalBrowsersOnlyOrg>(config, num_clients);
    case OrgKind::kProxyAndLocalBrowser:
      return std::make_unique<ProxyAndLocalBrowserOrg>(config, num_clients);
    case OrgKind::kBrowsersAware:
      return std::make_unique<BrowsersAwareOrg>(config, num_clients);
  }
  BAPS_REQUIRE(false, "unknown organization kind");
  return nullptr;
}

Metrics run_organization(OrgKind kind, const SimConfig& config,
                         const trace::Trace& trace) {
  auto org = Organization::create(kind, config, trace.num_clients());
  for (const trace::Request& r : trace.requests()) org->process(r);
  org->finish();
  return org->metrics();
}

}  // namespace baps::sim
