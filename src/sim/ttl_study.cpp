#include "sim/ttl_study.hpp"

#include "util/assert.hpp"

namespace baps::sim {
namespace {

/// One TTL-enforcing cache layer plus its bookkeeping.
class TtlLayer {
 public:
  TtlLayer(std::uint64_t capacity, cache::PolicyKind policy, double ttl,
           TtlStudyMetrics& metrics)
      : cache_(capacity, policy), ttl_(ttl), metrics_(metrics) {
    cache_.set_expiry_listener([this](trace::DocId) {
      ++metrics_.expirations;
    });
  }

  cache::ExpiringCache& cache() { return cache_; }

  /// Serves whatever copy is cached and unexpired — stale or not. Returns
  /// the cached size.
  std::optional<std::uint64_t> lookup(const trace::Request& r) {
    return cache_.touch(r.doc, r.timestamp);
  }

  bool fill(const trace::Request& r) {
    cache_.erase(r.doc);  // replace any expired-or-stale leftover record
    const double expires_at =
        ttl_ == cache::ExpiringCache::kNeverExpires
            ? cache::ExpiringCache::kNeverExpires
            : r.timestamp + ttl_;
    return cache_.insert(r.doc, r.size, expires_at);
  }

 private:
  cache::ExpiringCache cache_;
  double ttl_;
  TtlStudyMetrics& metrics_;
};

}  // namespace

TtlStudyMetrics run_ttl_study(const TtlStudyConfig& config,
                              const trace::Trace& trace) {
  BAPS_REQUIRE(config.browser_cache_bytes.size() == trace.num_clients(),
               "need one browser cache size per client");
  BAPS_REQUIRE(config.ttl_seconds > 0.0, "ttl must be positive");
  TtlStudyMetrics metrics;

  TtlLayer proxy(config.proxy_cache_bytes, config.policy, config.ttl_seconds,
                 metrics);
  std::vector<TtlLayer> browsers;
  browsers.reserve(trace.num_clients());
  for (std::uint32_t c = 0; c < trace.num_clients(); ++c) {
    browsers.emplace_back(config.browser_cache_bytes[c], config.policy,
                          config.ttl_seconds, metrics);
  }
  index::BrowserIndex index(trace.num_clients());
  if (config.browsers_aware) {
    for (std::uint32_t c = 0; c < trace.num_clients(); ++c) {
      browsers[c].cache().set_eviction_listener(
          [&index, c](trace::DocId doc, std::uint64_t) {
            index.remove(c, doc);
          });
      browsers[c].cache().set_expiry_listener(
          [&index, &metrics, c](trace::DocId doc) {
            index.remove(c, doc);
            ++metrics.expirations;
          });
    }
  }

  const auto record_hit = [&](const trace::Request& r,
                              std::uint64_t served_size, bool remote) {
    metrics.hits.hit();
    if (remote) ++metrics.remote_hits;
    if (served_size == r.size) {
      ++metrics.fresh_hits;
    } else {
      ++metrics.stale_hits;
      if (remote) ++metrics.stale_remote_hits;
    }
  };

  for (const trace::Request& r : trace.requests()) {
    TtlLayer& browser = browsers[r.client];
    // No oracle anywhere: whatever unexpired copy exists gets served.
    if (const auto size = browser.lookup(r)) {
      record_hit(r, *size, /*remote=*/false);
      continue;
    }
    if (const auto size = proxy.lookup(r)) {
      record_hit(r, *size, /*remote=*/false);
      if (browser.fill(trace::Request{r.timestamp, r.client, r.doc, *size}) &&
          config.browsers_aware) {
        index.add(r.client, r.doc);
      }
      continue;
    }
    if (config.browsers_aware) {
      if (const auto holder = index.find_holder(r.doc, r.client)) {
        if (const auto size = browsers[*holder].lookup(r)) {
          record_hit(r, *size, /*remote=*/true);
          if (browser.fill(
                  trace::Request{r.timestamp, r.client, r.doc, *size})) {
            index.add(r.client, r.doc);
          }
          continue;
        }
        index.remove(*holder, r.doc);  // expired under us: repair the index
      }
    }
    // Origin fetch: always fresh, fills proxy + browser.
    metrics.hits.miss();
    proxy.fill(r);
    if (browser.fill(r) && config.browsers_aware) {
      index.add(r.client, r.doc);
    }
  }
  return metrics;
}

}  // namespace baps::sim
