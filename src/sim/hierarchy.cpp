#include "sim/hierarchy.hpp"

#include "util/assert.hpp"

namespace baps::sim {

HierarchySim::HierarchySim(const HierarchyConfig& config,
                           std::uint32_t num_clients)
    : config_(config),
      latency_(config.latency),
      lan_(config.lan),
      parent_(config.parent_cache_bytes, config.memory_fraction,
              config.policy) {
  BAPS_REQUIRE(config.num_leaf_proxies > 0, "need at least one leaf proxy");
  BAPS_REQUIRE(config.browser_cache_bytes.size() == num_clients,
               "need one browser cache size per client");
  browsers_.reserve(num_clients);
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    browsers_.emplace_back(config.browser_cache_bytes[c],
                           config.memory_fraction, config.policy);
  }
  leaves_.reserve(config.num_leaf_proxies);
  for (std::uint32_t l = 0; l < config.num_leaf_proxies; ++l) {
    leaves_.emplace_back(config.leaf_cache_bytes, config.memory_fraction,
                         config.policy);
  }
  if (config.browsers_aware) {
    indexes_.resize(config.num_leaf_proxies);
    for (std::uint32_t l = 0; l < config.num_leaf_proxies; ++l) {
      indexes_[l] = std::make_unique<index::BrowserIndex>(num_clients);
    }
    for (std::uint32_t c = 0; c < num_clients; ++c) {
      index::BrowserIndex& idx = *indexes_[leaf_of(c)];
      browsers_[c].set_eviction_listener(
          [&idx, c](trace::DocId doc, std::uint64_t) { idx.remove(c, doc); });
    }
  }
}

std::optional<cache::TieredLookup> HierarchySim::fresh_lookup(
    cache::TieredCache& cache, const trace::Request& r) {
  const auto size = cache.peek_size(r.doc);
  if (!size) return std::nullopt;
  if (*size != r.size) {
    cache.erase(r.doc);  // §3.2 size-change rule, applied at every level
    return std::nullopt;
  }
  return cache.touch(r.doc);
}

void HierarchySim::serve(const trace::Request& r, double latency_s,
                         std::uint64_t* counter) {
  metrics_.hits.hit();
  metrics_.byte_hits.hit(r.size);
  ++*counter;
  metrics_.total_service_time_s += latency_s;
}

void HierarchySim::process(const trace::Request& r) {
  const std::uint32_t leaf = leaf_of(r.client);
  cache::TieredCache& browser = browsers_[r.client];
  index::BrowserIndex* idx =
      config_.browsers_aware ? indexes_[leaf].get() : nullptr;

  // 1. Local browser.
  if (const auto hit = fresh_lookup(browser, r)) {
    // A stale local erase leaves a dangling index entry; sweep it.
    serve(r, latency_.cache_read(r.size, hit->tier),
          &metrics_.local_browser_hits);
    return;
  }
  if (idx && idx->holds(r.client, r.doc) && !browser.contains(r.doc)) {
    idx->remove(r.client, r.doc);  // stale copy was just dropped above
  }

  const auto fill_browser = [&] {
    if (browser.insert(r.doc, r.size) && idx) idx->add(r.client, r.doc);
  };

  // 2. Own leaf proxy.
  if (const auto hit = fresh_lookup(leaves_[leaf], r)) {
    serve(r,
          latency_.cache_read(r.size, hit->tier) + lan_.transfer_time(r.size),
          &metrics_.leaf_proxy_hits);
    fill_browser();
    return;
  }

  // 3. Browsers-aware: this leaf's browser index.
  if (idx) {
    if (const auto holder = idx->find_holder(r.doc, r.client)) {
      cache::TieredCache& remote = browsers_[*holder];
      const auto remote_size = remote.peek_size(r.doc);
      if (remote_size && *remote_size == r.size) {
        const auto hit = remote.touch(r.doc);
        const auto x = lan_.transfer(r.timestamp, r.size);
        serve(r,
              latency_.cache_read(r.size, hit->tier) + x.transfer_s + x.wait_s,
              &metrics_.remote_browser_hits);
        fill_browser();
        return;
      }
    }
  }

  // 4. Sibling leaf proxies (ICP-style: query all, fetch from a holder).
  if (config_.sibling_cooperation) {
    for (std::uint32_t s = 0; s < leaves_.size(); ++s) {
      if (s == leaf) continue;
      if (const auto hit = fresh_lookup(leaves_[s], r)) {
        const auto x = lan_.transfer(r.timestamp, r.size);
        serve(r,
              latency_.cache_read(r.size, hit->tier) + x.transfer_s +
                  x.wait_s + lan_.transfer_time(r.size),
              &metrics_.sibling_proxy_hits);
        // The requesting leaf caches the sibling's copy (standard ICP).
        leaves_[leaf].erase(r.doc);
        leaves_[leaf].insert(r.doc, r.size);
        fill_browser();
        return;
      }
    }
  }

  // 5. Parent proxy.
  if (const auto hit = fresh_lookup(parent_, r)) {
    serve(r,
          latency_.cache_read(r.size, hit->tier) +
              2.0 * lan_.transfer_time(r.size),
          &metrics_.parent_proxy_hits);
    leaves_[leaf].erase(r.doc);
    leaves_[leaf].insert(r.doc, r.size);
    fill_browser();
    return;
  }

  // 6. Origin.
  metrics_.hits.miss();
  metrics_.byte_hits.miss(r.size);
  ++metrics_.misses;
  metrics_.total_service_time_s += latency_.origin_fetch(r.size);
  parent_.erase(r.doc);
  parent_.insert(r.doc, r.size);
  leaves_[leaf].erase(r.doc);
  leaves_[leaf].insert(r.doc, r.size);
  fill_browser();
}

HierarchyMetrics run_hierarchy(const HierarchyConfig& config,
                               const trace::Trace& trace) {
  HierarchySim sim(config, trace.num_clients());
  for (const trace::Request& r : trace.requests()) sim.process(r);
  return sim.metrics();
}

}  // namespace baps::sim
