// Concrete implementations of the five caching organizations (§3.2).
#pragma once

#include <memory>
#include <vector>

#include "index/browser_index.hpp"
#include "index/summary_index.hpp"
#include "index/update_protocol.hpp"
#include "sim/organization.hpp"

namespace baps::sim {

/// 1. proxy-cache-only: no browser caches; every request goes to the proxy.
class ProxyOnlyOrg final : public Organization {
 public:
  ProxyOnlyOrg(const SimConfig& config, std::uint32_t num_clients);
  OrgKind kind() const override { return OrgKind::kProxyOnly; }
  void process(const trace::Request& r) override;

 private:
  cache::TieredCache proxy_;
};

/// 2. local-browser-cache-only: private browser caches, no proxy.
class LocalBrowserOnlyOrg final : public Organization {
 public:
  LocalBrowserOnlyOrg(const SimConfig& config, std::uint32_t num_clients);
  OrgKind kind() const override { return OrgKind::kLocalBrowserOnly; }
  void process(const trace::Request& r) override;

 protected:
  void wipe_client(trace::ClientId client) override;

 private:
  std::vector<cache::TieredCache> browsers_;
};

/// 3. global-browsers-cache-only: browser caches shared through a replicated
/// index, no proxy cache. A browser does NOT cache documents fetched from
/// another browser (§3.2 item 3).
class GlobalBrowsersOnlyOrg final : public Organization {
 public:
  GlobalBrowsersOnlyOrg(const SimConfig& config, std::uint32_t num_clients);
  OrgKind kind() const override { return OrgKind::kGlobalBrowsersOnly; }
  void process(const trace::Request& r) override;

 protected:
  /// The index is replicated across all browsers here: every one of them
  /// observes a departure, so the index stays exactly synced (the in-process
  /// invariant check requires it).
  void wipe_client(trace::ClientId client) override;

 private:
  /// Raw eviction-listener context, one per client (stable addresses: the
  /// vector is sized once in the constructor and never grows).
  struct EvictCtx {
    GlobalBrowsersOnlyOrg* org = nullptr;
    trace::ClientId client = 0;
  };
  static void on_browser_eviction(void* ctx, trace::DocId doc,
                                  std::uint64_t size);

  void fill_browser(trace::ClientId client, const trace::Request& r);

  std::vector<cache::TieredCache> browsers_;
  index::BrowserIndex index_;
  std::vector<EvictCtx> evict_ctx_;
};

/// 4. proxy-and-local-browser: the conventional hierarchy.
class ProxyAndLocalBrowserOrg final : public Organization {
 public:
  ProxyAndLocalBrowserOrg(const SimConfig& config, std::uint32_t num_clients);
  OrgKind kind() const override { return OrgKind::kProxyAndLocalBrowser; }
  void process(const trace::Request& r) override;

 protected:
  void wipe_client(trace::ClientId client) override;

 private:
  void fill_browser(trace::ClientId client, const trace::Request& r);

  std::vector<cache::TieredCache> browsers_;
  cache::TieredCache proxy_;
};

/// 5. browsers-aware-proxy-server: hierarchy + browser index + remote hits.
class BrowsersAwareOrg final : public Organization {
 public:
  BrowsersAwareOrg(const SimConfig& config, std::uint32_t num_clients);
  OrgKind kind() const override { return OrgKind::kBrowsersAware; }
  void process(const trace::Request& r) override;
  void finish() override;

  /// Bytes the proxy spends on the index in this configuration (for the §5
  /// footprint comparisons): exact entries at 24 B each, or the summary
  /// filters' actual size.
  std::uint64_t index_bytes() const;

 protected:
  /// A departing browser wipes silently — no invalidation messages reach
  /// the proxy, so its index entries go stale (the §5 failure shape; the
  /// resulting empty probes are counted as false forwards).
  void wipe_client(trace::ClientId client) override;

 private:
  /// Raw eviction-listener context, one per client (stable addresses: the
  /// vector is sized once in the constructor and never grows).
  struct EvictCtx {
    BrowsersAwareOrg* org = nullptr;
    trace::ClientId client = 0;
  };
  static void on_browser_eviction(void* ctx, trace::DocId doc,
                                  std::uint64_t size);

  void fill_browser(trace::ClientId client, const trace::Request& r);

  // The index mutation helpers run on every browser insert/evict; the
  // immediate-mode protocol (the paper's default and the replay hot path)
  // is fast-pathed through a concrete pointer so the call inlines instead
  // of going through the UpdateProtocol vtable.
  void index_insert(trace::ClientId client, trace::DocId doc) {
    if (immediate_ != nullptr) {
      immediate_->on_cache_insert(client, doc);
    } else if (protocol_) {
      protocol_->on_cache_insert(client, doc);
    } else {
      summary_index_->add(client, doc);
      ++summary_messages_;
    }
  }

  void index_remove(trace::ClientId client, trace::DocId doc) {
    if (immediate_ != nullptr) {
      immediate_->on_cache_remove(client, doc);
    } else if (protocol_) {
      protocol_->on_cache_remove(client, doc);
    } else {
      summary_index_->remove(client, doc);
      ++summary_messages_;
    }
  }

  /// The index's best candidate holder for `doc`, or nullopt.
  std::optional<trace::ClientId> index_lookup(trace::DocId doc,
                                              trace::ClientId requester) const;

  std::vector<cache::TieredCache> browsers_;
  cache::TieredCache proxy_;
  // Exactly one of the two indexes is active, per config_.index_kind.
  std::unique_ptr<index::BrowserIndex> exact_index_;
  std::unique_ptr<index::UpdateProtocol> protocol_;  // exact mode only
  index::ImmediateUpdateProtocol* immediate_ = nullptr;  // == protocol_.get()
  std::unique_ptr<index::SummaryIndex> summary_index_;
  std::vector<EvictCtx> evict_ctx_;
  std::uint64_t summary_messages_ = 0;
};

}  // namespace baps::sim
