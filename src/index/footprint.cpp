#include "index/footprint.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace baps::index {

FootprintEstimate estimate_footprint(const FootprintParams& p) {
  BAPS_REQUIRE(p.avg_doc_bytes > 0, "average document size must be positive");
  BAPS_REQUIRE(p.num_clients > 0, "need at least one client");
  FootprintEstimate e;
  e.docs_per_browser = p.browser_cache_bytes / p.avg_doc_bytes;
  e.total_entries = e.docs_per_browser * p.num_clients;
  e.exact_index_bytes = e.total_entries * p.bytes_per_exact_entry;
  e.bloom_index_bytes = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(e.total_entries) * p.bloom_bits_per_doc /
                8.0));
  return e;
}

}  // namespace baps::index
