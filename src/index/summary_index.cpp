#include "index/summary_index.hpp"

#include "util/assert.hpp"

namespace baps::index {

SummaryIndex::SummaryIndex(std::uint32_t num_clients,
                           std::uint64_t expected_docs_per_client,
                           double target_fp_rate) {
  BAPS_REQUIRE(num_clients > 0, "summary index needs at least one client");
  filters_.reserve(num_clients);
  for (std::uint32_t i = 0; i < num_clients; ++i) {
    filters_.push_back(CountingBloomFilter::sized_for(
        expected_docs_per_client, target_fp_rate));
  }
}

void SummaryIndex::add(ClientId client, DocId doc) {
  BAPS_REQUIRE(client < filters_.size(), "client id out of range");
  filters_[client].add(doc);
}

void SummaryIndex::remove(ClientId client, DocId doc) {
  BAPS_REQUIRE(client < filters_.size(), "client id out of range");
  filters_[client].remove(doc);
}

bool SummaryIndex::maybe_holds(ClientId client, DocId doc) const {
  BAPS_REQUIRE(client < filters_.size(), "client id out of range");
  return filters_[client].maybe_contains(doc);
}

std::optional<ClientId> SummaryIndex::find_candidate(
    DocId doc, ClientId requester) const {
  const std::size_t n = filters_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto candidate = static_cast<ClientId>((rr_ + i) % n);
    if (candidate == requester) continue;
    if (filters_[candidate].maybe_contains(doc)) {
      rr_ = (rr_ + i + 1) % n;
      return candidate;
    }
  }
  return std::nullopt;
}

std::vector<ClientId> SummaryIndex::candidates(DocId doc,
                                               ClientId requester) const {
  std::vector<ClientId> out;
  for (ClientId c = 0; c < filters_.size(); ++c) {
    if (c != requester && filters_[c].maybe_contains(doc)) out.push_back(c);
  }
  return out;
}

std::uint64_t SummaryIndex::byte_size() const {
  std::uint64_t total = 0;
  for (const auto& f : filters_) total += f.byte_size();
  return total;
}

}  // namespace baps::index
