#include "index/update_protocol.hpp"

#include "util/assert.hpp"

namespace baps::index {

PeriodicUpdateProtocol::PeriodicUpdateProtocol(BrowserIndex& idx,
                                               std::uint32_t num_clients,
                                               double threshold)
    : index_(idx), threshold_(threshold), clients_(num_clients) {
  BAPS_REQUIRE(threshold > 0.0 && threshold <= 1.0,
               "flush threshold must be in (0,1]");
}

void PeriodicUpdateProtocol::on_cache_insert(ClientId client, DocId doc) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  ClientState& st = clients_[client];
  ++st.cached_docs;
  // A remove pending for this doc cancels; the proxy still believes the old
  // state, which happens to be correct again.
  if (st.pending_remove.erase(doc) == 0) st.pending_add.insert(doc);
  maybe_flush(client);
}

void PeriodicUpdateProtocol::on_cache_remove(ClientId client, DocId doc) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  ClientState& st = clients_[client];
  BAPS_REQUIRE(st.cached_docs > 0, "remove without matching insert");
  --st.cached_docs;
  if (st.pending_add.erase(doc) == 0) st.pending_remove.insert(doc);
  maybe_flush(client);
}

void PeriodicUpdateProtocol::maybe_flush(ClientId client) {
  const ClientState& st = clients_[client];
  const auto changed = st.pending_add.size() + st.pending_remove.size();
  if (changed == 0) return;
  // Flush when the delta reaches threshold × current population. The +1
  // keeps a nearly-empty cache from flushing on every single event.
  const double population = static_cast<double>(st.cached_docs) + 1.0;
  if (static_cast<double>(changed) >= threshold_ * population) flush(client);
}

void PeriodicUpdateProtocol::flush(ClientId client) {
  ClientState& st = clients_[client];
  if (st.pending_add.empty() && st.pending_remove.empty()) return;
  // One batched message per flush regardless of delta size (the paper's
  // point: batching makes index maintenance traffic negligible).
  ++messages_;
  ++flushes_;
  for (DocId doc : st.pending_add) {
    index_.add(client, doc);
    ++applied_;
  }
  for (DocId doc : st.pending_remove) {
    index_.remove(client, doc);
    ++applied_;
  }
  st.pending_add.clear();
  st.pending_remove.clear();
}

void PeriodicUpdateProtocol::flush_all() {
  for (ClientId c = 0; c < clients_.size(); ++c) flush(c);
}

}  // namespace baps::index
