// Bloom filters, the compression technique the paper cites (Fan et al.'s
// Summary Cache, and URL-table compression) for shrinking the browser index
// when exact MD5 directories are too big.
//
// BloomFilter: classic m-bit / k-hash filter (no deletions).
// CountingBloomFilter: 4-bit counters supporting remove — what a proxy needs
// because browser caches evict constantly.
//
// Hashing: double hashing h_i(x) = h1(x) + i*h2(x) (Kirsch–Mitzenmacher)
// over SplitMix64-derived values; independence is plenty for the accuracy
// the index needs, and it keeps membership checks allocation-free.
#pragma once

#include <cstdint>
#include <vector>

namespace baps::index {

class BloomFilter {
 public:
  /// m bits, k hash functions. Prefer sized_for() to pick them.
  BloomFilter(std::uint64_t bits, unsigned hashes);

  /// Filter dimensioned for `expected_items` at `target_fp_rate`.
  static BloomFilter sized_for(std::uint64_t expected_items,
                               double target_fp_rate);

  void add(std::uint64_t key);
  bool maybe_contains(std::uint64_t key) const;
  void clear();

  std::uint64_t bit_count() const { return bits_; }
  unsigned hash_count() const { return hashes_; }
  std::uint64_t byte_size() const { return (bits_ + 7) / 8; }
  std::uint64_t items_added() const { return items_; }

  /// Expected false-positive rate at the current load:
  /// (1 - e^{-kn/m})^k.
  double expected_fp_rate() const;

 private:
  std::uint64_t bit_index(std::uint64_t key, unsigned i) const;

  std::uint64_t bits_;
  unsigned hashes_;
  std::vector<std::uint64_t> words_;
  std::uint64_t items_ = 0;
};

class CountingBloomFilter {
 public:
  CountingBloomFilter(std::uint64_t counters, unsigned hashes);

  static CountingBloomFilter sized_for(std::uint64_t expected_items,
                                       double target_fp_rate);

  void add(std::uint64_t key);
  /// Decrements the key's counters. Removing a key that was never added
  /// corrupts the filter (standard counting-Bloom caveat) — callers must
  /// pair adds and removes.
  void remove(std::uint64_t key);
  bool maybe_contains(std::uint64_t key) const;

  std::uint64_t counter_count() const { return counters_; }
  unsigned hash_count() const { return hashes_; }
  /// 4 bits per counter, the Summary Cache recommendation.
  std::uint64_t byte_size() const { return (counters_ + 1) / 2; }
  std::uint64_t items() const { return items_; }
  /// True if any counter has ever saturated at 15 (further removes on such
  /// a counter could under-count; Summary Cache shows this is rare).
  bool overflowed() const { return overflowed_; }

 private:
  std::uint64_t counter_index(std::uint64_t key, unsigned i) const;
  std::uint8_t get(std::uint64_t idx) const;
  void set(std::uint64_t idx, std::uint8_t v);

  std::uint64_t counters_;
  unsigned hashes_;
  std::vector<std::uint8_t> nibbles_;  // two counters per byte
  std::uint64_t items_ = 0;
  bool overflowed_ = false;
};

}  // namespace baps::index
