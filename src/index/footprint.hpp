// Index storage-footprint model (§5).
//
// The paper's example: each URL keyed by a 16-byte MD5 signature; 100
// clients with 100 MB browser caches and ~8 KB average documents give ~12.8K
// pages per browser → the proxy stores the whole browser index in ~tens of
// MB, and compression (Bloom summaries) shrinks it several-fold further.
// bench_overhead reproduces that arithmetic against measured index sizes.
#pragma once

#include <cstdint>

namespace baps::index {

struct FootprintParams {
  std::uint32_t num_clients = 100;
  std::uint64_t browser_cache_bytes = 8ULL << 20;  ///< per client
  std::uint64_t avg_doc_bytes = 8ULL << 10;
  /// Exact-index entry: 16-byte MD5 signature + client id + timestamp/TTL.
  std::uint64_t bytes_per_exact_entry = 16 + 4 + 4;
  /// Summary-cache compression budget, bits per cached document.
  double bloom_bits_per_doc = 16.0;
};

struct FootprintEstimate {
  std::uint64_t docs_per_browser = 0;
  std::uint64_t total_entries = 0;
  std::uint64_t exact_index_bytes = 0;
  std::uint64_t bloom_index_bytes = 0;
};

/// Pure arithmetic; see bench_overhead for the paper-matching instantiation.
FootprintEstimate estimate_footprint(const FootprintParams& params);

}  // namespace baps::index
