#include "index/bloom.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::index {
namespace {

/// Two independent 64-bit hashes for double hashing.
struct HashPair {
  std::uint64_t h1;
  std::uint64_t h2;
};

HashPair hash_key(std::uint64_t key) {
  baps::SplitMix64 sm(key ^ 0x5bf03635bd1b79a1ULL);
  const std::uint64_t h1 = sm.next();
  std::uint64_t h2 = sm.next();
  if (h2 == 0) h2 = 0x9E3779B97F4A7C15ULL;  // stride must be nonzero
  return {h1, h2};
}

struct Dimensions {
  std::uint64_t slots;
  unsigned hashes;
};

Dimensions dimension_for(std::uint64_t expected_items, double target_fp) {
  BAPS_REQUIRE(expected_items > 0, "expected_items must be positive");
  BAPS_REQUIRE(target_fp > 0.0 && target_fp < 1.0,
               "target fp rate must be in (0,1)");
  const double n = static_cast<double>(expected_items);
  const double m = std::ceil(-n * std::log(target_fp) /
                             (std::numbers::ln2_v<double> *
                              std::numbers::ln2_v<double>));
  const double k =
      std::max(1.0, std::round(m / n * std::numbers::ln2_v<double>));
  return {static_cast<std::uint64_t>(m), static_cast<unsigned>(k)};
}

}  // namespace

BloomFilter::BloomFilter(std::uint64_t bits, unsigned hashes)
    : bits_(bits), hashes_(hashes), words_((bits + 63) / 64, 0) {
  BAPS_REQUIRE(bits > 0, "bloom filter needs at least one bit");
  BAPS_REQUIRE(hashes > 0, "bloom filter needs at least one hash");
}

BloomFilter BloomFilter::sized_for(std::uint64_t expected_items,
                                   double target_fp_rate) {
  const Dimensions d = dimension_for(expected_items, target_fp_rate);
  return BloomFilter(d.slots, d.hashes);
}

std::uint64_t BloomFilter::bit_index(std::uint64_t key, unsigned i) const {
  const HashPair h = hash_key(key);
  return (h.h1 + static_cast<std::uint64_t>(i) * h.h2) % bits_;
}

void BloomFilter::add(std::uint64_t key) {
  for (unsigned i = 0; i < hashes_; ++i) {
    const std::uint64_t b = bit_index(key, i);
    words_[b / 64] |= (1ULL << (b % 64));
  }
  ++items_;
}

bool BloomFilter::maybe_contains(std::uint64_t key) const {
  for (unsigned i = 0; i < hashes_; ++i) {
    const std::uint64_t b = bit_index(key, i);
    if ((words_[b / 64] & (1ULL << (b % 64))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
  items_ = 0;
}

double BloomFilter::expected_fp_rate() const {
  const double kn = static_cast<double>(hashes_) * static_cast<double>(items_);
  const double m = static_cast<double>(bits_);
  return std::pow(1.0 - std::exp(-kn / m), static_cast<double>(hashes_));
}

CountingBloomFilter::CountingBloomFilter(std::uint64_t counters,
                                         unsigned hashes)
    : counters_(counters), hashes_(hashes), nibbles_((counters + 1) / 2, 0) {
  BAPS_REQUIRE(counters > 0, "counting bloom needs at least one counter");
  BAPS_REQUIRE(hashes > 0, "counting bloom needs at least one hash");
}

CountingBloomFilter CountingBloomFilter::sized_for(
    std::uint64_t expected_items, double target_fp_rate) {
  const Dimensions d = dimension_for(expected_items, target_fp_rate);
  return CountingBloomFilter(d.slots, d.hashes);
}

std::uint64_t CountingBloomFilter::counter_index(std::uint64_t key,
                                                 unsigned i) const {
  const HashPair h = hash_key(key);
  return (h.h1 + static_cast<std::uint64_t>(i) * h.h2) % counters_;
}

std::uint8_t CountingBloomFilter::get(std::uint64_t idx) const {
  const std::uint8_t byte = nibbles_[idx / 2];
  return (idx % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
}

void CountingBloomFilter::set(std::uint64_t idx, std::uint8_t v) {
  std::uint8_t& byte = nibbles_[idx / 2];
  if (idx % 2 == 0) {
    byte = static_cast<std::uint8_t>((byte & 0xF0) | (v & 0x0F));
  } else {
    byte = static_cast<std::uint8_t>((byte & 0x0F) | (v << 4));
  }
}

void CountingBloomFilter::add(std::uint64_t key) {
  for (unsigned i = 0; i < hashes_; ++i) {
    const std::uint64_t idx = counter_index(key, i);
    const std::uint8_t c = get(idx);
    if (c == 15) {
      overflowed_ = true;  // saturate; do not wrap
    } else {
      set(idx, static_cast<std::uint8_t>(c + 1));
    }
  }
  ++items_;
}

void CountingBloomFilter::remove(std::uint64_t key) {
  BAPS_REQUIRE(items_ > 0, "remove from empty counting bloom");
  for (unsigned i = 0; i < hashes_; ++i) {
    const std::uint64_t idx = counter_index(key, i);
    const std::uint8_t c = get(idx);
    // A zero counter here means an unmatched remove (caller bug) or a prior
    // saturation; leave it at zero rather than wrapping to 15.
    if (c > 0 && c < 15) set(idx, static_cast<std::uint8_t>(c - 1));
  }
  --items_;
}

bool CountingBloomFilter::maybe_contains(std::uint64_t key) const {
  for (unsigned i = 0; i < hashes_; ++i) {
    if (get(counter_index(key, i)) == 0) return false;
  }
  return true;
}

}  // namespace baps::index
