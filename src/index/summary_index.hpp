// Summary-cache-style compressed browser index: one counting Bloom filter
// per client instead of an exact per-client directory.
//
// Trades memory for false positives: a lookup can name a client that does
// not actually hold the document ("false forward" — the proxy probes the
// client, gets a miss, and falls through to the origin path). The ablation
// bench (bench_ablation_bloom) sweeps target FP rates against measured
// false-forward rates and memory versus the exact index.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "index/bloom.hpp"
#include "trace/record.hpp"

namespace baps::index {

using trace::ClientId;
using trace::DocId;

class SummaryIndex {
 public:
  /// One filter per client, each sized for `expected_docs_per_client` at
  /// `target_fp_rate`.
  SummaryIndex(std::uint32_t num_clients,
               std::uint64_t expected_docs_per_client, double target_fp_rate);

  std::uint32_t num_clients() const {
    return static_cast<std::uint32_t>(filters_.size());
  }

  void add(ClientId client, DocId doc);
  void remove(ClientId client, DocId doc);
  bool maybe_holds(ClientId client, DocId doc) const;

  /// First candidate holder ≠ requester (round-robin start). May be a false
  /// positive — the caller must verify against the real browser cache.
  std::optional<ClientId> find_candidate(DocId doc, ClientId requester) const;

  /// All candidate holders ≠ requester.
  std::vector<ClientId> candidates(DocId doc, ClientId requester) const;

  /// Total index memory (all filters).
  std::uint64_t byte_size() const;

 private:
  std::vector<CountingBloomFilter> filters_;
  mutable std::uint64_t rr_ = 0;
};

}  // namespace baps::index
