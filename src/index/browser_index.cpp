#include "index/browser_index.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace baps::index {

BrowserIndex::BrowserIndex(std::uint32_t num_clients, DocId doc_universe,
                           const std::vector<std::uint32_t>& client_doc_hints)
    : per_client_(num_clients) {
  BAPS_REQUIRE(num_clients > 0, "index needs at least one client");
  if (doc_universe > 0) {
    by_doc_.resize(doc_universe);
    rr_by_doc_.resize(doc_universe, 0);
  }
  for (std::uint32_t c = 0;
       c < std::min<std::size_t>(num_clients, client_doc_hints.size()); ++c) {
    per_client_[c].reserve(client_doc_hints[c]);
  }
}

std::vector<ClientId> BrowserIndex::holders(DocId doc) const {
  const HolderList* holders =
      doc < by_doc_.size() ? &by_doc_[doc] : sparse_.find(doc);
  if (holders == nullptr) return {};
  return std::vector<ClientId>(holders->begin(), holders->end());
}

std::uint64_t BrowserIndex::client_entry_count(ClientId client) const {
  BAPS_REQUIRE(client < per_client_.size(), "client id out of range");
  return per_client_[client].size();
}

std::uint64_t BrowserIndex::remove_all(ClientId client) {
  BAPS_REQUIRE(client < per_client_.size(), "client id out of range");
  std::vector<DocId> docs;
  docs.reserve(per_client_[client].size());
  per_client_[client].for_each([&docs](std::uint64_t doc) {
    docs.push_back(static_cast<DocId>(doc));
  });
  std::sort(docs.begin(), docs.end());  // set order is table order; fix it
  for (const DocId doc : docs) remove(client, doc);
  return docs.size();
}

void BrowserIndex::clear() {
  for (auto& holders : by_doc_) holders.clear();
  sparse_ = util::FlatMap<HolderList>();
  for (auto& set : per_client_) set.clear();
  entries_ = 0;
  std::fill(rr_by_doc_.begin(), rr_by_doc_.end(), 0u);
  sparse_rr_ = util::FlatMap<std::uint32_t>();
}

}  // namespace baps::index
