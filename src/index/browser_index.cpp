#include "index/browser_index.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace baps::index {

BrowserIndex::BrowserIndex(std::uint32_t num_clients)
    : per_client_(num_clients) {
  BAPS_REQUIRE(num_clients > 0, "index needs at least one client");
}

void BrowserIndex::add(ClientId client, DocId doc) {
  BAPS_REQUIRE(client < per_client_.size(), "client id out of range");
  if (!per_client_[client].insert(doc).second) return;  // already indexed
  by_doc_[doc].push_back(client);
  ++entries_;
}

void BrowserIndex::remove(ClientId client, DocId doc) {
  BAPS_REQUIRE(client < per_client_.size(), "client id out of range");
  if (per_client_[client].erase(doc) == 0) return;  // not indexed
  const auto it = by_doc_.find(doc);
  BAPS_ENSURE(it != by_doc_.end(), "per-client/by-doc views out of sync");
  auto& holders = it->second;
  const auto pos = std::find(holders.begin(), holders.end(), client);
  BAPS_ENSURE(pos != holders.end(), "holder list missing client");
  // Order within the holder list is not meaningful: swap-erase.
  *pos = holders.back();
  holders.pop_back();
  if (holders.empty()) by_doc_.erase(it);
  --entries_;
}

bool BrowserIndex::holds(ClientId client, DocId doc) const {
  BAPS_REQUIRE(client < per_client_.size(), "client id out of range");
  return per_client_[client].contains(doc);
}

std::optional<ClientId> BrowserIndex::find_holder(DocId doc,
                                                  ClientId requester) const {
  const auto it = by_doc_.find(doc);
  if (it == by_doc_.end()) return std::nullopt;
  const auto& holders = it->second;
  const std::size_t n = holders.size();
  for (std::size_t i = 0; i < n; ++i) {
    const ClientId candidate = holders[(rr_ + i) % n];
    if (candidate != requester) {
      rr_ = (rr_ + i + 1) % n;
      return candidate;
    }
  }
  return std::nullopt;
}

std::vector<ClientId> BrowserIndex::holders(DocId doc) const {
  const auto it = by_doc_.find(doc);
  if (it == by_doc_.end()) return {};
  return it->second;
}

std::uint64_t BrowserIndex::client_entry_count(ClientId client) const {
  BAPS_REQUIRE(client < per_client_.size(), "client id out of range");
  return per_client_[client].size();
}

}  // namespace baps::index
