// Index maintenance protocols (§2, §5).
//
// The browser-cache side generates a stream of (add, remove) events; the
// protocol decides when the proxy's BrowserIndex sees them:
//
//  * ImmediateUpdateProtocol — every event is applied at once. One message
//    per event; the proxy's view is always exact.
//  * PeriodicUpdateProtocol — per-client deltas accumulate and flush when
//    the number of *changed* documents exceeds `threshold` × (docs currently
//    cached by the client), the delay rule the paper adopts from Fan et al.
//    (1%–50% thresholds → update every few minutes to an hour). Between
//    flushes the proxy view is stale in both directions: it misses fresh
//    documents (lost remote hits) and still advertises evicted ones (false
//    forwards). Message accounting lets bench_overhead report traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "index/browser_index.hpp"

namespace baps::index {

class UpdateProtocol {
 public:
  virtual ~UpdateProtocol() = default;

  /// Client-side events, forwarded per the protocol's schedule.
  virtual void on_cache_insert(ClientId client, DocId doc) = 0;
  virtual void on_cache_remove(ClientId client, DocId doc) = 0;

  /// Messages sent from browsers to the proxy so far (index traffic).
  virtual std::uint64_t messages_sent() const = 0;
  /// Index mutations applied at the proxy so far.
  virtual std::uint64_t updates_applied() const = 0;

  /// Forces all pending deltas out (end-of-run flush for accounting).
  virtual void flush_all() = 0;
};

class ImmediateUpdateProtocol final : public UpdateProtocol {
 public:
  explicit ImmediateUpdateProtocol(BrowserIndex& idx) : index_(idx) {}

  // In-class so the browsers-aware hot path (which keeps a concrete pointer
  // to this protocol) inlines the one-message-per-event bookkeeping.
  void on_cache_insert(ClientId client, DocId doc) override {
    index_.add(client, doc);
    ++messages_;
  }
  void on_cache_remove(ClientId client, DocId doc) override {
    index_.remove(client, doc);
    ++messages_;
  }
  std::uint64_t messages_sent() const override { return messages_; }
  std::uint64_t updates_applied() const override { return messages_; }
  void flush_all() override {}

 private:
  BrowserIndex& index_;
  std::uint64_t messages_ = 0;
};

class PeriodicUpdateProtocol final : public UpdateProtocol {
 public:
  /// threshold: fraction of a client's cached documents that must change
  /// before its delta flushes (e.g. 0.1 = Fan et al.'s 10%).
  PeriodicUpdateProtocol(BrowserIndex& idx, std::uint32_t num_clients,
                         double threshold);

  void on_cache_insert(ClientId client, DocId doc) override;
  void on_cache_remove(ClientId client, DocId doc) override;
  std::uint64_t messages_sent() const override { return messages_; }
  std::uint64_t updates_applied() const override { return applied_; }
  void flush_all() override;

  std::uint64_t flush_count() const { return flushes_; }

 private:
  struct ClientState {
    // Net effect since last flush. A doc inserted then removed cancels out.
    std::unordered_set<DocId> pending_add;
    std::unordered_set<DocId> pending_remove;
    std::uint64_t cached_docs = 0;  // client's current cache population
  };

  void maybe_flush(ClientId client);
  void flush(ClientId client);

  BrowserIndex& index_;
  double threshold_;
  std::vector<ClientState> clients_;
  std::uint64_t messages_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace baps::index
