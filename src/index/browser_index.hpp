// The browser index file (§2): the proxy-resident directory of every
// client's browser-cache contents. Each entry is conceptually
// (client id, URL-digest, timestamp/TTL); here documents are already
// interned, so entries are (client, doc) pairs with the digest footprint
// accounted separately (see index/footprint.hpp).
//
// Two maintenance protocols from the paper:
//  * immediate invalidation — the client tells the proxy on every browser
//    cache insert/replace/delete (accurate view, one message per event);
//  * periodic batch update — each client accumulates a delta and flushes it
//    when the fraction of changed documents crosses a threshold (Fan et
//    al.'s summary-cache delay rule). Between flushes the proxy's view is
//    stale; the simulator measures the resulting hit-ratio degradation and
//    false forwards.
//
// This class is the *view* the proxy holds; the update protocols live in
// index/update_protocol.hpp and feed mutations into it.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/record.hpp"

namespace baps::index {

using trace::ClientId;
using trace::DocId;

class BrowserIndex {
 public:
  explicit BrowserIndex(std::uint32_t num_clients);

  std::uint32_t num_clients() const {
    return static_cast<std::uint32_t>(per_client_.size());
  }
  std::uint64_t entry_count() const { return entries_; }

  /// Records that `client`'s browser cache now holds `doc`. Idempotent.
  void add(ClientId client, DocId doc);
  /// Records that `client` no longer holds `doc`. Idempotent.
  void remove(ClientId client, DocId doc);
  bool holds(ClientId client, DocId doc) const;

  /// Some client (≠ requester) the index believes holds `doc`. Holders are
  /// chosen round-robin so repeated lookups spread load across peers.
  std::optional<ClientId> find_holder(DocId doc, ClientId requester) const;

  /// All believed holders of `doc` (unspecified order), for fan-out checks.
  std::vector<ClientId> holders(DocId doc) const;

  /// Number of docs indexed for one client.
  std::uint64_t client_entry_count(ClientId client) const;

 private:
  std::unordered_map<DocId, std::vector<ClientId>> by_doc_;
  std::vector<std::unordered_set<DocId>> per_client_;
  std::uint64_t entries_ = 0;
  mutable std::uint64_t rr_ = 0;  // round-robin cursor
};

}  // namespace baps::index
