// The browser index file (§2): the proxy-resident directory of every
// client's browser-cache contents. Each entry is conceptually
// (client id, URL-digest, timestamp/TTL); here documents are already
// interned, so entries are (client, doc) pairs with the digest footprint
// accounted separately (see index/footprint.hpp).
//
// Two maintenance protocols from the paper:
//  * immediate invalidation — the client tells the proxy on every browser
//    cache insert/replace/delete (accurate view, one message per event);
//  * periodic batch update — each client accumulates a delta and flushes it
//    when the fraction of changed documents crosses a threshold (Fan et
//    al.'s summary-cache delay rule). Between flushes the proxy's view is
//    stale; the simulator measures the resulting hit-ratio degradation and
//    false forwards.
//
// Memory layout: simulation document ids are dense (the Trace constructor
// enforces doc < num_docs), so the doc → holders view for ids inside the
// construction-time universe is a flat table indexed directly by doc id,
// each slot an inline-capacity-2 SmallVector (most docs have 0–2 holders at
// any instant — only popular documents spill to the heap). Ids outside the
// universe — the runtime layer indexes sparse 64-bit URL-digest prefixes,
// and callers may pass doc_universe = 0 — fall back to an open-addressing
// FlatMap of holder lists. The per-client doc sets are open-addressing
// FlatSets. A lookup on the simulation hot path is one array index, no
// hashing at all; sparse ids cost one mixed hash, same as the sets.
//
// This class is the *view* the proxy holds; the update protocols live in
// index/update_protocol.hpp and feed mutations into it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "trace/record.hpp"
#include "util/assert.hpp"
#include "util/flat_map.hpp"
#include "util/small_vector.hpp"

namespace baps::index {

using trace::ClientId;
using trace::DocId;

class BrowserIndex {
 public:
  /// `doc_universe` sizes the flat doc → holders table (pass
  /// Trace::num_docs()); ids at or above it — including everything when 0 —
  /// live in the sparse overflow map. `client_doc_hints` pre-sizes each
  /// client's doc set (pass TraceStats::distinct_docs_per_client; an empty
  /// vector skips the reservation).
  explicit BrowserIndex(std::uint32_t num_clients, DocId doc_universe = 0,
                        const std::vector<std::uint32_t>& client_doc_hints = {});

  std::uint32_t num_clients() const {
    return static_cast<std::uint32_t>(per_client_.size());
  }
  std::uint64_t entry_count() const { return entries_; }

  // add/remove/holds/find_holder run once per simulated request in the
  // index-using organizations; they live here so callers inline them.

  /// Records that `client`'s browser cache now holds `doc`. Idempotent.
  void add(ClientId client, DocId doc) {
    BAPS_REQUIRE(client < per_client_.size(), "client id out of range");
    if (!per_client_[client].insert(doc)) return;  // already indexed
    if (doc < by_doc_.size()) {
      by_doc_[doc].push_back(client);
    } else {
      HolderList* holders = sparse_.find(doc);
      if (holders == nullptr) {
        sparse_.insert(doc, HolderList{});
        holders = sparse_.find(doc);
      }
      holders->push_back(client);
    }
    ++entries_;
  }

  /// Records that `client` no longer holds `doc`. Idempotent.
  void remove(ClientId client, DocId doc) {
    BAPS_REQUIRE(client < per_client_.size(), "client id out of range");
    if (!per_client_[client].erase(doc)) return;  // not indexed
    HolderList* holders =
        doc < by_doc_.size() ? &by_doc_[doc] : sparse_.find(doc);
    BAPS_ENSURE(holders != nullptr, "per-client/by-doc views out of sync");
    const auto pos = std::find(holders->begin(), holders->end(), client);
    BAPS_ENSURE(pos != holders->end(), "holder list missing client");
    // Order within the holder list is not meaningful: swap-erase.
    *pos = holders->back();
    holders->pop_back();
    if (holders->empty()) {
      if (doc < by_doc_.size()) {
        if (doc < rr_by_doc_.size()) rr_by_doc_[doc] = 0;
      } else {
        sparse_.erase(doc);
        sparse_rr_.erase(doc);
      }
    }
    --entries_;
  }

  bool holds(ClientId client, DocId doc) const {
    BAPS_REQUIRE(client < per_client_.size(), "client id out of range");
    return per_client_[client].contains(doc);
  }

  /// Some client (≠ requester) the index believes holds `doc`. Holders are
  /// chosen round-robin *per document* so repeated lookups of the same doc
  /// spread load across its peers. The cursor is per-doc state on purpose:
  /// holder choice is then a pure function of the doc's own lookup history,
  /// so a doc-sharded index (sim/sharded_replay) picks the same holders as
  /// the unsharded one no matter how lookups of other docs interleave.
  std::optional<ClientId> find_holder(DocId doc, ClientId requester) const {
    const HolderList* holders =
        doc < by_doc_.size() ? &by_doc_[doc] : sparse_.find(doc);
    if (holders == nullptr) return std::nullopt;
    const std::size_t n = holders->size();
    if (n == 0) return std::nullopt;
    std::uint32_t& rr = cursor_for(doc);
    for (std::size_t i = 0; i < n; ++i) {
      const ClientId candidate = (*holders)[(rr + i) % n];
      if (candidate != requester) {
        rr = static_cast<std::uint32_t>((rr + i + 1) % n);
        return candidate;
      }
    }
    return std::nullopt;
  }

  /// All believed holders of `doc` (unspecified order), for fan-out checks.
  std::vector<ClientId> holders(DocId doc) const;

  /// Number of docs indexed for one client.
  std::uint64_t client_entry_count(ClientId client) const;

  /// Drops every entry for one client (a believed-dead or departed peer);
  /// returns how many were removed. Deterministic: docs are removed in
  /// sorted order so the round-robin cursor evolution is reproducible.
  std::uint64_t remove_all(ClientId client);

  /// Empties the whole index (a proxy restart); keeps sizing/hints.
  void clear();

 private:
  using HolderList = util::SmallVector<ClientId, 2>;

  std::vector<HolderList> by_doc_;  // in-universe docs, indexed by doc id
  util::FlatMap<HolderList> sparse_;  // out-of-universe docs (runtime keys)
  std::vector<util::FlatSet> per_client_;
  std::uint64_t entries_ = 0;

  // Per-doc round-robin cursors, parallel to the two holder views. Mutable
  // because find_holder is logically const (index contents are unchanged)
  // yet advances the queried doc's cursor. A cursor is reset when its
  // holder list empties, so cursor state lives and dies with the entry.
  mutable std::vector<std::uint32_t> rr_by_doc_;
  mutable util::FlatMap<std::uint32_t> sparse_rr_;

  std::uint32_t& cursor_for(DocId doc) const {
    if (doc < rr_by_doc_.size()) return rr_by_doc_[doc];
    std::uint32_t* cursor = sparse_rr_.find(doc);
    if (cursor == nullptr) {
      sparse_rr_.insert(doc, 0);
      cursor = sparse_rr_.find(doc);
    }
    return *cursor;
  }
};

}  // namespace baps::index
