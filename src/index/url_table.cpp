#include "index/url_table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace baps::index {
namespace {

std::size_t common_prefix(std::string_view a, std::string_view b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

UrlTable::UrlTable(std::vector<std::string> urls, std::size_t bucket_size)
    : bucket_size_(bucket_size) {
  BAPS_REQUIRE(bucket_size_ > 0, "bucket size must be positive");
  std::sort(urls.begin(), urls.end());
  urls.erase(std::unique(urls.begin(), urls.end()), urls.end());
  count_ = urls.size();
  entries_.reserve(count_);
  for (std::size_t i = 0; i < urls.size(); ++i) {
    raw_bytes_ += urls[i].size();
    std::size_t prefix = 0;
    if (i % bucket_size_ != 0) {
      prefix = common_prefix(urls[i - 1], urls[i]);
    }
    const std::string_view suffix = std::string_view(urls[i]).substr(prefix);
    entries_.push_back(Entry{static_cast<std::uint32_t>(prefix),
                             static_cast<std::uint32_t>(pool_.size()),
                             static_cast<std::uint32_t>(suffix.size())});
    pool_.append(suffix);
  }
}

std::string UrlTable::decode(std::size_t i) const {
  BAPS_REQUIRE(i < count_, "url index out of range");
  const std::size_t head = bucket_of(i) * bucket_size_;
  std::string url;
  for (std::size_t j = head; j <= i; ++j) {
    const Entry& e = entries_[j];
    url.resize(e.prefix_len);  // keep the shared prefix, drop the rest
    url.append(pool_, e.suffix_off, e.suffix_len);
  }
  return url;
}

std::string UrlTable::at(std::size_t i) const { return decode(i); }

std::optional<std::size_t> UrlTable::find(std::string_view url) const {
  if (count_ == 0) return std::nullopt;
  // Binary search over bucket heads (stored with prefix_len 0, so their
  // suffix IS the full URL)...
  const std::size_t buckets = (count_ + bucket_size_ - 1) / bucket_size_;
  std::size_t lo = 0, hi = buckets;  // first bucket whose head > url
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    const Entry& head = entries_[mid * bucket_size_];
    const std::string_view head_url(pool_.data() + head.suffix_off,
                                    head.suffix_len);
    if (head_url <= url) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return std::nullopt;  // url sorts before every head
  // ...then decode one bucket linearly.
  const std::size_t start = (lo - 1) * bucket_size_;
  const std::size_t end = std::min(start + bucket_size_, count_);
  std::string candidate;
  for (std::size_t j = start; j < end; ++j) {
    const Entry& e = entries_[j];
    candidate.resize(e.prefix_len);
    candidate.append(pool_, e.suffix_off, e.suffix_len);
    if (candidate == url) return j;
    if (std::string_view(candidate) > url) return std::nullopt;
  }
  return std::nullopt;
}

std::size_t UrlTable::compressed_bytes() const {
  // Suffix pool + per-entry metadata (prefix len byte-packed as u16 + u32
  // offset omitted in a production layout; we charge u16 prefix + u16
  // suffix length per entry plus one u32 per bucket head offset).
  const std::size_t buckets = (count_ + bucket_size_ - 1) / bucket_size_;
  return pool_.size() + count_ * 4 + buckets * 4;
}

}  // namespace baps::index
