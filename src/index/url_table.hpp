// Compressed URL table: front-coded storage of a sorted URL set.
//
// §5 of the paper notes that applying URL-table compression (its refs [4]
// and [10] — Summary Cache and "URL Forwarding and Compression in Adaptive
// Web Caching") shrinks the browser index further. URLs share long prefixes
// (scheme, host, directory), so front coding — store each URL as
// (shared-prefix length with its predecessor, distinct suffix) — compresses
// typical web URL sets several-fold while keeping O(log n) membership
// queries: entries are bucketed, each bucket starts with a full URL, and a
// lookup binary-searches bucket heads then decodes one bucket.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace baps::index {

class UrlTable {
 public:
  /// Builds from any URL collection (sorted + deduplicated internally).
  /// bucket_size trades lookup cost against compression (heads are stored
  /// uncompressed).
  explicit UrlTable(std::vector<std::string> urls,
                    std::size_t bucket_size = 16);

  std::size_t size() const { return count_; }

  /// i-th URL in sorted order.
  std::string at(std::size_t i) const;

  /// Sorted-order index of the URL, if present.
  std::optional<std::size_t> find(std::string_view url) const;
  bool contains(std::string_view url) const { return find(url).has_value(); }

  /// Bytes of the compressed representation (suffix pool + prefix lengths +
  /// bucket offsets).
  std::size_t compressed_bytes() const;
  /// Bytes the raw strings would take (sum of lengths).
  std::size_t raw_bytes() const { return raw_bytes_; }
  double compression_ratio() const {
    return compressed_bytes() > 0
               ? static_cast<double>(raw_bytes_) /
                     static_cast<double>(compressed_bytes())
               : 0.0;
  }

 private:
  struct Entry {
    std::uint32_t prefix_len;   // shared with predecessor (0 for heads)
    std::uint32_t suffix_off;   // into pool_
    std::uint32_t suffix_len;
  };

  /// Decodes URLs [bucket start .. i] and returns the i-th.
  std::string decode(std::size_t i) const;
  std::size_t bucket_of(std::size_t i) const { return i / bucket_size_; }

  std::size_t bucket_size_;
  std::size_t count_ = 0;
  std::string pool_;             // concatenated suffixes
  std::vector<Entry> entries_;   // one per URL, sorted order
  std::size_t raw_bytes_ = 0;
};

}  // namespace baps::index
