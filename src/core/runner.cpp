#include "core/runner.hpp"

#include <mutex>

#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "sim/config.hpp"
#include "sim/sharded_replay.hpp"
#include "util/assert.hpp"

namespace baps::core {

namespace {

/// Folds one finished run's Metrics into the global registry. This is the
/// labeled-family backbone of the report: counts keyed by organization and,
/// for hits, by the location that served them (§4's three hit locations).
void publish_run(OrgKind kind, const Metrics& m, double wall_seconds) {
  auto& reg = obs::Registry::global();
  const std::string org = sim::org_name(kind);
  reg.histogram("runner_run_seconds", -3.0, 4.0, 70, obs::HistScale::kLog10,
                {{"org", org}})
      .observe(wall_seconds);
  reg.counter("sim_requests_total", {{"org", org}}).inc(m.hits.total());
  reg.counter("sim_hits_total", {{"org", org}, {"location", "local_browser"}})
      .inc(m.local_browser_hits);
  reg.counter("sim_hits_total", {{"org", org}, {"location", "proxy"}})
      .inc(m.proxy_hits);
  reg.counter("sim_hits_total", {{"org", org}, {"location", "remote_browser"}})
      .inc(m.remote_browser_hits);
  reg.counter("sim_misses_total", {{"org", org}})
      .inc(m.hits.total() - m.hits.hits());
}

/// Times a whole sweep into `sweep_seconds{kind=...}`.
class SweepTimer {
 public:
  explicit SweepTimer(const char* kind)
      : hist_(&obs::Registry::global().histogram(
            "sweep_seconds", -3.0, 5.0, 80, obs::HistScale::kLog10,
            {{"kind", kind}})),
        start_(obs::monotonic_seconds()) {}
  ~SweepTimer() { hist_->observe(obs::monotonic_seconds() - start_); }

  SweepTimer(const SweepTimer&) = delete;
  SweepTimer& operator=(const SweepTimer&) = delete;

 private:
  obs::Histogram* hist_;
  double start_;
};

}  // namespace

sim::SimConfig build_config(const trace::TraceStats& stats,
                            const RunSpec& spec) {
  sim::SimConfig cfg;
  cfg.proxy_cache_bytes =
      sim::proxy_cache_bytes_for(stats, spec.relative_cache_size);
  if (spec.sizing == BrowserSizing::kMinimum) {
    cfg.browser_cache_bytes =
        sim::min_browser_caches(cfg.proxy_cache_bytes, stats.num_clients);
  } else {
    cfg.browser_cache_bytes =
        sim::avg_browser_caches(stats, spec.relative_cache_size);
  }
  cfg.policy = spec.policy;
  cfg.memory_fraction = spec.memory_fraction;
  cfg.index_mode = spec.index_mode;
  cfg.index_threshold = spec.index_threshold;
  cfg.index_kind = spec.index_kind;
  cfg.bloom_expected_docs_per_client = spec.bloom_expected_docs_per_client;
  cfg.bloom_target_fp = spec.bloom_target_fp;
  cfg.relay_via_proxy = spec.relay_via_proxy;
  cfg.lan = spec.lan;
  cfg.latency = spec.latency;
  cfg.churn_rate = spec.churn_rate;
  cfg.churn_seed = spec.churn_seed;
  // Capacity hints: let every cache table and the browser index reserve up
  // front instead of rehashing through the replay.
  cfg.doc_universe = stats.doc_universe;
  cfg.distinct_docs = stats.unique_docs;
  cfg.client_distinct_docs = stats.distinct_docs_per_client;
  return cfg;
}

Metrics run_one(OrgKind kind, const trace::Trace& trace,
                const trace::TraceStats& stats, const RunSpec& spec) {
  const double start = obs::monotonic_seconds();
  Metrics m;
  if (spec.shards > 1) {
    sim::ShardedReplayOptions opts;
    opts.shards = spec.shards;
    m = sim::run_organization_sharded(kind, build_config(stats, spec), trace,
                                      opts)
            .merged;
  } else {
    m = sim::run_organization(kind, build_config(stats, spec), trace);
  }
  publish_run(kind, m, obs::monotonic_seconds() - start);
  return m;
}

std::vector<CacheSizePoint> sweep_cache_sizes(
    const trace::Trace& trace, const std::vector<double>& relative_sizes,
    const std::vector<OrgKind>& orgs, const RunSpec& spec, ThreadPool* pool,
    ProgressFn progress) {
  BAPS_REQUIRE(!relative_sizes.empty(), "sweep needs at least one size");
  BAPS_REQUIRE(!orgs.empty(), "sweep needs at least one organization");
  const SweepTimer sweep_timer("cache_sizes");
  const trace::TraceStats stats = trace::compute_stats(trace);

  std::vector<CacheSizePoint> points(relative_sizes.size());
  for (std::size_t i = 0; i < relative_sizes.size(); ++i) {
    points[i].relative_cache_size = relative_sizes[i];
  }

  struct Task {
    std::size_t point;
    OrgKind org;
  };
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < relative_sizes.size(); ++i) {
    for (const OrgKind org : orgs) tasks.push_back({i, org});
  }

  std::mutex mu;  // guards the result maps and the progress count
  std::size_t done = 0;
  const auto run_task = [&](std::size_t t) {
    const Task& task = tasks[t];
    RunSpec point_spec = spec;
    point_spec.relative_cache_size = relative_sizes[task.point];
    Metrics m = run_one(task.org, trace, stats, point_spec);
    std::scoped_lock lock(mu);
    points[task.point].by_org.emplace(task.org, std::move(m));
    ++done;
    if (progress) progress(done, tasks.size());
  };

  if (pool) {
    pool->parallel_for(tasks.size(), run_task);
  } else {
    for (std::size_t t = 0; t < tasks.size(); ++t) run_task(t);
  }
  return points;
}

std::vector<ClientScalingPoint> client_scaling_sweep(
    const trace::Trace& trace, const std::vector<double>& client_fractions,
    const RunSpec& spec, ThreadPool* pool, ProgressFn progress) {
  BAPS_REQUIRE(!client_fractions.empty(), "sweep needs at least one fraction");
  const SweepTimer sweep_timer("client_scaling");
  // The proxy size is pinned to the FULL population's infinite cache size.
  const trace::TraceStats full_stats = trace::compute_stats(trace);
  const std::uint64_t fixed_proxy_bytes =
      sim::proxy_cache_bytes_for(full_stats, spec.relative_cache_size);

  std::vector<ClientScalingPoint> points(client_fractions.size());
  std::mutex mu;  // guards the progress count
  std::size_t done = 0;
  const auto run_point = [&](std::size_t i) {
    const double start = obs::monotonic_seconds();
    const double fraction = client_fractions[i];
    const trace::Trace sub = trace.restrict_clients(fraction);
    const trace::TraceStats sub_stats = trace::compute_stats(sub);

    sim::SimConfig cfg = build_config(sub_stats, spec);
    cfg.proxy_cache_bytes = fixed_proxy_bytes;
    if (spec.sizing == BrowserSizing::kMinimum) {
      // Minimum sizing derives from the (fixed) proxy size and the subset's
      // population.
      cfg.browser_cache_bytes =
          sim::min_browser_caches(fixed_proxy_bytes, sub_stats.num_clients);
    }

    ClientScalingPoint p;
    p.client_fraction = fraction;
    p.num_clients = sub.num_clients();
    p.browsers_aware =
        sim::run_organization(OrgKind::kBrowsersAware, cfg, sub);
    p.proxy_and_local =
        sim::run_organization(OrgKind::kProxyAndLocalBrowser, cfg, sub);

    const auto increment = [](double baps, double base) {
      return base > 0.0 ? 100.0 * (baps - base) / base : 0.0;
    };
    p.hit_ratio_increment_pct = increment(p.browsers_aware.hit_ratio(),
                                          p.proxy_and_local.hit_ratio());
    p.byte_hit_ratio_increment_pct =
        increment(p.browsers_aware.byte_hit_ratio(),
                  p.proxy_and_local.byte_hit_ratio());
    // Both organizations share one wall-clock sample: the point is the unit
    // of work here, and the split is visible in the per-org counters anyway.
    const double wall = (obs::monotonic_seconds() - start) / 2.0;
    publish_run(OrgKind::kBrowsersAware, p.browsers_aware, wall);
    publish_run(OrgKind::kProxyAndLocalBrowser, p.proxy_and_local, wall);
    points[i] = std::move(p);
    std::scoped_lock lock(mu);
    ++done;
    if (progress) progress(done, points.size());
  };

  if (pool) {
    pool->parallel_for(points.size(), run_point);
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) run_point(i);
  }
  return points;
}

}  // namespace baps::core
