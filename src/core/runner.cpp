#include "core/runner.hpp"

#include <mutex>

#include "util/assert.hpp"

namespace baps::core {

sim::SimConfig build_config(const trace::TraceStats& stats,
                            const RunSpec& spec) {
  sim::SimConfig cfg;
  cfg.proxy_cache_bytes =
      sim::proxy_cache_bytes_for(stats, spec.relative_cache_size);
  if (spec.sizing == BrowserSizing::kMinimum) {
    cfg.browser_cache_bytes =
        sim::min_browser_caches(cfg.proxy_cache_bytes, stats.num_clients);
  } else {
    cfg.browser_cache_bytes =
        sim::avg_browser_caches(stats, spec.relative_cache_size);
  }
  cfg.policy = spec.policy;
  cfg.memory_fraction = spec.memory_fraction;
  cfg.index_mode = spec.index_mode;
  cfg.index_threshold = spec.index_threshold;
  cfg.index_kind = spec.index_kind;
  cfg.bloom_expected_docs_per_client = spec.bloom_expected_docs_per_client;
  cfg.bloom_target_fp = spec.bloom_target_fp;
  cfg.relay_via_proxy = spec.relay_via_proxy;
  cfg.lan = spec.lan;
  cfg.latency = spec.latency;
  return cfg;
}

Metrics run_one(OrgKind kind, const trace::Trace& trace,
                const trace::TraceStats& stats, const RunSpec& spec) {
  return sim::run_organization(kind, build_config(stats, spec), trace);
}

std::vector<CacheSizePoint> sweep_cache_sizes(
    const trace::Trace& trace, const std::vector<double>& relative_sizes,
    const std::vector<OrgKind>& orgs, const RunSpec& spec, ThreadPool* pool) {
  BAPS_REQUIRE(!relative_sizes.empty(), "sweep needs at least one size");
  BAPS_REQUIRE(!orgs.empty(), "sweep needs at least one organization");
  const trace::TraceStats stats = trace::compute_stats(trace);

  std::vector<CacheSizePoint> points(relative_sizes.size());
  for (std::size_t i = 0; i < relative_sizes.size(); ++i) {
    points[i].relative_cache_size = relative_sizes[i];
  }

  struct Task {
    std::size_t point;
    OrgKind org;
  };
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < relative_sizes.size(); ++i) {
    for (const OrgKind org : orgs) tasks.push_back({i, org});
  }

  std::mutex mu;  // guards the result maps
  const auto run_task = [&](std::size_t t) {
    const Task& task = tasks[t];
    RunSpec point_spec = spec;
    point_spec.relative_cache_size = relative_sizes[task.point];
    Metrics m = run_one(task.org, trace, stats, point_spec);
    std::scoped_lock lock(mu);
    points[task.point].by_org.emplace(task.org, std::move(m));
  };

  if (pool) {
    pool->parallel_for(tasks.size(), run_task);
  } else {
    for (std::size_t t = 0; t < tasks.size(); ++t) run_task(t);
  }
  return points;
}

std::vector<ClientScalingPoint> client_scaling_sweep(
    const trace::Trace& trace, const std::vector<double>& client_fractions,
    const RunSpec& spec, ThreadPool* pool) {
  BAPS_REQUIRE(!client_fractions.empty(), "sweep needs at least one fraction");
  // The proxy size is pinned to the FULL population's infinite cache size.
  const trace::TraceStats full_stats = trace::compute_stats(trace);
  const std::uint64_t fixed_proxy_bytes =
      sim::proxy_cache_bytes_for(full_stats, spec.relative_cache_size);

  std::vector<ClientScalingPoint> points(client_fractions.size());
  const auto run_point = [&](std::size_t i) {
    const double fraction = client_fractions[i];
    const trace::Trace sub = trace.restrict_clients(fraction);
    const trace::TraceStats sub_stats = trace::compute_stats(sub);

    sim::SimConfig cfg = build_config(sub_stats, spec);
    cfg.proxy_cache_bytes = fixed_proxy_bytes;
    if (spec.sizing == BrowserSizing::kMinimum) {
      // Minimum sizing derives from the (fixed) proxy size and the subset's
      // population.
      cfg.browser_cache_bytes =
          sim::min_browser_caches(fixed_proxy_bytes, sub_stats.num_clients);
    }

    ClientScalingPoint p;
    p.client_fraction = fraction;
    p.num_clients = sub.num_clients();
    p.browsers_aware =
        sim::run_organization(OrgKind::kBrowsersAware, cfg, sub);
    p.proxy_and_local =
        sim::run_organization(OrgKind::kProxyAndLocalBrowser, cfg, sub);

    const auto increment = [](double baps, double base) {
      return base > 0.0 ? 100.0 * (baps - base) / base : 0.0;
    };
    p.hit_ratio_increment_pct = increment(p.browsers_aware.hit_ratio(),
                                          p.proxy_and_local.hit_ratio());
    p.byte_hit_ratio_increment_pct =
        increment(p.browsers_aware.byte_hit_ratio(),
                  p.proxy_and_local.byte_hit_ratio());
    points[i] = std::move(p);
  };

  if (pool) {
    pool->parallel_for(points.size(), run_point);
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) run_point(i);
  }
  return points;
}

}  // namespace baps::core
