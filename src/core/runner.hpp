// High-level experiment runner: the public API a downstream user drives.
//
// Wraps trace loading, §3.2 cache sizing, the five organizations, and the
// parameter sweeps behind a few calls; every figure-level bench binary and
// example is written against this header.
//
// Parallelism: sweeps fan out one simulation per (organization, cache size)
// or per client fraction onto a fixed thread pool. Each simulation owns all
// of its mutable state; the trace is shared immutably (CP.31: pass by
// reference only into joined tasks).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "sim/organization.hpp"
#include "trace/record.hpp"
#include "trace/stats.hpp"
#include "util/thread_pool.hpp"

namespace baps::core {

using sim::Metrics;
using sim::OrgKind;

/// Invoked after each completed sweep task with (done, total). Called under
/// the sweep's result lock, so keep it cheap (print a line, bump a bar).
using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

/// §3.2 browser-cache sizing rules.
enum class BrowserSizing {
  kMinimum,  ///< C_proxy / (10 N) per client (Figures 2–3)
  kAverage,  ///< relative_size × average infinite browser size (Figures 4–7)
};

/// One experiment point: everything but the organization and the trace.
struct RunSpec {
  /// Proxy cache = relative_cache_size × infinite proxy cache size; with
  /// kAverage sizing, browser caches scale by the same fraction.
  double relative_cache_size = 0.1;
  BrowserSizing sizing = BrowserSizing::kMinimum;

  cache::PolicyKind policy = cache::PolicyKind::kLru;
  double memory_fraction = 0.1;
  sim::IndexMode index_mode = sim::IndexMode::kImmediate;
  double index_threshold = 0.1;
  sim::IndexKind index_kind = sim::IndexKind::kExact;
  std::uint64_t bloom_expected_docs_per_client = 4096;
  double bloom_target_fp = 0.001;
  bool relay_via_proxy = false;
  net::LanParams lan{};
  sim::LatencyParams latency{};

  /// Client churn (§5 spirit): per-request probability of a churn event and
  /// the seed of its stream. 0 disables churn (bit-identical replay).
  double churn_rate = 0.0;
  std::uint64_t churn_seed = 0;

  /// Shared-nothing shards INSIDE one replay (sim/sharded_replay): documents
  /// partition by hash, each shard replays on its own worker thread, and the
  /// per-shard metrics merge at finish(). 1 = the classic unsharded engine.
  /// Distinct from a sweep's worker threads, which parallelize across
  /// independent simulations.
  std::uint32_t shards = 1;
};

/// Materializes a SimConfig from a spec and the trace's statistics.
sim::SimConfig build_config(const trace::TraceStats& stats,
                            const RunSpec& spec);

/// Runs one organization over the trace. Publishes per-run observability to
/// the global registry: wall time into `runner_run_seconds{org}` and the
/// resulting request counts into `sim_requests_total{org}` /
/// `sim_hits_total{org,location}` / `sim_misses_total{org}`.
Metrics run_one(OrgKind kind, const trace::Trace& trace,
                const trace::TraceStats& stats, const RunSpec& spec);

// ---------------------------------------------------------------------------
// Cache-size sweeps (Figures 2, 4, 5, 6, 7).

struct CacheSizePoint {
  double relative_cache_size = 0.0;
  std::map<OrgKind, Metrics> by_org;
};

/// Runs `orgs` × `relative_sizes` in parallel on `pool` (sequentially when
/// pool is null). The spec's relative_cache_size is overridden per point.
std::vector<CacheSizePoint> sweep_cache_sizes(
    const trace::Trace& trace, const std::vector<double>& relative_sizes,
    const std::vector<OrgKind>& orgs, const RunSpec& spec,
    ThreadPool* pool = nullptr, ProgressFn progress = nullptr);

// ---------------------------------------------------------------------------
// Client-count scaling (Figure 8).

struct ClientScalingPoint {
  double client_fraction = 0.0;
  std::uint32_t num_clients = 0;
  Metrics browsers_aware;
  Metrics proxy_and_local;
  /// (BAPS − P+LB) / P+LB, in percent — the paper's increment metric.
  double hit_ratio_increment_pct = 0.0;
  double byte_hit_ratio_increment_pct = 0.0;
};

/// For each fraction, restricts the trace to the first fraction of clients
/// and compares BAPS against proxy-and-local-browser. Per the paper, the
/// proxy cache size is FIXED at spec.relative_cache_size × the infinite
/// cache size of the FULL trace, regardless of the client subset.
std::vector<ClientScalingPoint> client_scaling_sweep(
    const trace::Trace& trace, const std::vector<double>& client_fractions,
    const RunSpec& spec, ThreadPool* pool = nullptr,
    ProgressFn progress = nullptr);

}  // namespace baps::core
