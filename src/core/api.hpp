// Umbrella header: the public API of the baps library.
//
//   #include "core/api.hpp"
//
//   auto trace = baps::trace::load_preset(baps::trace::Preset::kNlanrUc);
//   baps::core::RunSpec spec;
//   spec.relative_cache_size = 0.10;
//   auto metrics = baps::core::run_one(
//       baps::core::OrgKind::kBrowsersAware, trace,
//       baps::trace::compute_stats(trace), spec);
//   std::cout << metrics.hit_ratio() << '\n';
//
// Layering (each header is usable on its own):
//   trace/   workload model: generator, presets, parsers, statistics
//   cache/   replacement policies, object cache, two-tier cache
//   index/   browser index, update protocols, Bloom summaries
//   net/     shared-Ethernet LAN model
//   sim/     the five caching organizations and their metrics
//   core/    experiment runner and parameter sweeps (this layer)
//   crypto/  MD5 / RSA / XTEA and the document watermark
//   runtime/ in-process message-passing BAPS protocol engine
#pragma once

#include "core/runner.hpp"
#include "crypto/watermark.hpp"
#include "index/footprint.hpp"
#include "sim/orgs.hpp"
#include "trace/generator.hpp"
#include "trace/log_parser.hpp"
#include "trace/presets.hpp"
#include "trace/stats.hpp"
#include "util/table.hpp"
