#include "runtime/loopback_transport.hpp"

#include "util/assert.hpp"

namespace baps::runtime {

void LoopbackTransport::bind_peer_host(PeerHost* host) {
  BAPS_REQUIRE(host != nullptr, "loopback needs a peer host");
  BAPS_REQUIRE(host->num_clients() == core_.num_clients(),
               "peer host and proxy disagree on client count");
  // The trace context stops here: the in-process serve is already inside
  // the core's peer_transfer span, so there is nothing downstream to stitch.
  core_.set_peer_fetch([host](ClientId holder, DocStore::Key key,
                              const obs::TraceContext&) {
    return host->serve_peer_fetch(holder, key);
  });
}

}  // namespace baps::runtime
