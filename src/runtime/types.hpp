// Shared vocabulary of the runtime protocol engine: URL keys and the
// message-trace records the anonymity tests audit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/md5.hpp"
#include "obs/events.hpp"
#include "trace/record.hpp"

namespace baps::runtime {

using Url = std::string;
using trace::ClientId;

/// Documents are keyed by the first 8 bytes of the URL's MD5 signature —
/// the paper's index keys entries by a 16-byte MD5 of the URL; the 64-bit
/// prefix keeps in-memory keys compact (collision odds are negligible at
/// browser-cache scale and a collision only costs a false forward).
inline std::uint64_t url_key(const Url& url) {
  return crypto::md5(url).prefix64();
}

/// The node name a client appears under in message envelopes.
inline std::string client_name(ClientId c) {
  return "client" + std::to_string(c);
}

/// What a client-side fetch ultimately resolved to.
struct FetchOutcome {
  enum class Source { kLocalBrowser, kProxy, kRemoteBrowser, kOrigin };
  Source source = Source::kOrigin;
  bool verified = false;         ///< watermark check passed at the requester
  bool tamper_recovered = false; ///< a peer delivery failed verification and
                                 ///< the request was re-served from origin
  std::string body;
};

std::string source_name(FetchOutcome::Source source);

/// The per-client symmetric keys shared with the proxy that authenticate
/// index updates (§6 assumes such a channel; establishment is out of band).
/// Deterministic in the seed so a client daemon and a proxy daemon started
/// with the same seed agree without any key exchange on the wire.
std::vector<std::string> derive_client_mac_keys(std::uint64_t seed,
                                                std::uint32_t num_clients);

/// Every protocol message kind that crosses the simulated wire.
enum class MsgKind {
  kClientRequest,   ///< client → proxy: "I want this URL"
  kProxyResponse,   ///< proxy → client: document (+watermark)
  kPeerFetch,       ///< proxy → holder: "send me this URL" (no requester id!)
  kPeerDeliver,     ///< holder → proxy: document
  kOriginFetch,     ///< proxy → origin server
  kOriginResponse,  ///< origin server → proxy
  kIndexAdd,        ///< client → proxy: "my cache now holds this URL"
  kIndexRemove,     ///< client → proxy: "I replaced/deleted this URL"
};

std::string msg_kind_name(MsgKind kind);

/// Envelope metadata recorded for every delivered message. The payloads are
/// typed C++ structs passed by call; this record is what an on-path observer
/// (or a curious peer) could see — which is precisely what the §6.2
/// anonymity property constrains.
struct MsgRecord {
  MsgKind kind;
  std::string from;
  std::string to;
  std::uint64_t url = 0;  ///< url_key of the subject document (0 if none)
};

/// Append-only message trace shared by all nodes. When a sink is attached,
/// every envelope is also emitted as a structured "message" event — the
/// JSONL mirror of what the in-memory log holds.
class MessageTrace {
 public:
  void record(MsgKind kind, std::string from, std::string to,
              std::uint64_t url) {
    if (sink_ != nullptr) {
      sink_->emit(obs::Event("message")
                      .with("kind", msg_kind_name(kind))
                      .with("from", from)
                      .with("to", to)
                      .with("url", url));
    }
    log_.push_back(MsgRecord{kind, std::move(from), std::move(to), url});
  }
  const std::vector<MsgRecord>& log() const { return log_; }
  std::uint64_t count(MsgKind kind) const {
    std::uint64_t n = 0;
    for (const auto& r : log_) {
      if (r.kind == kind) ++n;
    }
    return n;
  }
  void clear() { log_.clear(); }

  /// Mirrors future envelopes to `sink` (nullptr detaches). Not owned.
  void set_sink(obs::EventSink* sink) { sink_ = sink; }

 private:
  std::vector<MsgRecord> log_;
  obs::EventSink* sink_ = nullptr;
};

}  // namespace baps::runtime
