// The deterministic in-process transport: every Transport call dispatches
// synchronously into an owned ProxyCore, and peer fetches are plain function
// calls back into the client host. This is the pre-wire behaviour of
// BapsSystem, preserved bit-for-bit — same call order, same cache and
// round-robin state evolution, same MessageTrace interleaving.
#pragma once

#include "runtime/proxy_core.hpp"
#include "runtime/transport.hpp"

namespace baps::runtime {

class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(const ProxyCore::Params& params) : core_(params) {}

  void bind_peer_host(PeerHost* host) override;

  ProxyCore::Reply fetch(ClientId client, const Url& url, bool avoid_peers,
                         const obs::TraceContext& trace) override {
    return core_.handle_fetch(client, url, avoid_peers, trace);
  }

  bool index_update(ClientId claimed_sender, bool is_add, DocStore::Key key,
                    const crypto::Md5Digest& mac) override {
    return core_.apply_index_update(claimed_sender, is_add, key, mac);
  }

  crypto::RsaPublicKey proxy_public_key() override {
    return core_.public_key();
  }

  ProxyStats stats() override { return core_.stats(); }

  /// In-process: the embedded core records the proxy-side stage spans; no
  /// frames exist, so client and proxy spans already share one tracer.
  void set_tracer(obs::Tracer* tracer) override { core_.set_tracer(tracer); }

  /// The embedded proxy — loopback-only observability (origin, index).
  ProxyCore& core() { return core_; }
  const ProxyCore& core() const { return core_; }

 private:
  ProxyCore core_;
};

}  // namespace baps::runtime
