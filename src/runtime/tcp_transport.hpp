// The client side of the wire protocol: a Transport that speaks to a
// ProxyServer over TCP. Each client id gets one persistent proxy connection
// (established lazily with Hello/HelloAck) and one peer listener — a tiny
// FrameServer that answers PeerFetch frames out of the client host's browser
// stores. Observer traffic (stats, public key, live telemetry) identifies
// as kObserverClientId, registers nothing, and reuses one pooled
// connection across polls.
//
// Failure policy: refused/reset proxy connections are retried with bounded
// backoff (the daemon may still be starting); timeouts are not retried.
// A request that cannot complete after the retry budget is an invariant
// violation — the engine's callers assume fetch() returns a document.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netio/frame_channel.hpp"
#include "netio/retry.hpp"
#include "netio/server.hpp"
#include "runtime/transport.hpp"

namespace baps::runtime {

class TcpTransport final : public Transport {
 public:
  struct Params {
    std::string proxy_host = "127.0.0.1";
    std::uint16_t proxy_port = 0;
    netio::Deadlines deadlines;
    netio::RetryPolicy retry;
    std::uint64_t max_frame_payload = wire::kDefaultMaxPayload;
  };

  explicit TcpTransport(const Params& params);
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void bind_peer_host(PeerHost* host) override;
  ProxyCore::Reply fetch(ClientId client, const Url& url, bool avoid_peers,
                         const obs::TraceContext& trace) override;
  bool index_update(ClientId claimed_sender, bool is_add, DocStore::Key key,
                    const crypto::Md5Digest& mac) override;
  crypto::RsaPublicKey proxy_public_key() override;
  ProxyStats stats() override;

  /// Client-side tracer: request frames carry sampled contexts, proxy and
  /// peer channels record frame spans, and the peer listeners record a
  /// peer_transfer span for each serve. Attach before traffic flows.
  void set_tracer(obs::Tracer* tracer) override { tracer_ = tracer; }

  /// One-shot observer TraceStatsRequest: the proxy's live introspection
  /// JSON (baps.trace_stats.v1), `max_spans` most recent spans included.
  std::string trace_stats(std::uint32_t max_spans);

  /// One-shot observer TimeSeriesRequest: the proxy's live interval window
  /// JSON (baps.timeseries_window.v1), up to `max_intervals` most recent
  /// interval records (0 = everything in the sampler's ring).
  std::string time_series(std::uint32_t max_intervals);

  // --- fault injection ----------------------------------------------------
  /// Kills `client`'s peer listener without telling the proxy: its index
  /// registration stays, so the next peer fetch routed there finds a dead
  /// port and must degrade to an origin fetch within the peer deadline.
  void kill_peer_server(ClientId client);

  /// Frame faults (drop/corrupt) are injected on real wire frames in the
  /// peer-deliver path. Attach before traffic flows.
  void set_fault_plan(fault::FaultPlan* plan) override { plan_ = plan; }

 private:
  /// The proxy connection for `client`, dialing + Hello on first use.
  netio::FrameChannel* channel_for(ClientId client);
  void drop_channel(ClientId client);
  /// Observer exchange over the pooled observer connection (dialed +
  /// Hello(kObserverClientId) on first use, re-dialed after failures).
  bool observer_session(
      const std::function<bool(netio::FrameChannel&, wire::HelloAck&)>& op);

  Params params_;
  PeerHost* host_ = nullptr;
  fault::FaultPlan* plan_ = nullptr;  ///< optional, not owned
  obs::Tracer* tracer_ = nullptr;     ///< optional, not owned
  /// Peer listeners, one per client id; null after kill_peer_server.
  std::vector<std::unique_ptr<netio::FrameServer>> peer_servers_;
  std::vector<std::uint16_t> peer_ports_;
  /// Persistent proxy connections, one per client id.
  std::vector<std::unique_ptr<netio::FrameChannel>> channels_;
  /// The pooled observer connection: Hello'd once as kObserverClientId and
  /// reused across stats/trace/time-series polls (a dashboard polling every
  /// second used to dial a fresh socket per poll). Dropped on any failed
  /// exchange; the next poll re-dials.
  std::unique_ptr<netio::FrameChannel> observer_channel_;
  wire::HelloAck observer_ack_;
};

}  // namespace baps::runtime
