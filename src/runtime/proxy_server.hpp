// The BAPS proxy daemon core: a ProxyCore served over TCP by either frame
// server. Sessions speak the wire protocol — Hello/HelloAck,
// FetchRequest/Response, IndexUpdate/Ack, StatsRequest/Response, Bye — and
// peer fetches go out over pooled connections to the holder's registered
// peer listener, carrying only the document key (§6.2).
//
// Both transports drive ONE session state machine (on_session_frame): the
// blocking FrameServer loops recv() per worker thread, the epoll server
// invokes it per decoded frame on the loop thread. Identical inputs produce
// identical frame outputs and identical wire metrics on either path — the
// epoll↔blocking differential test pins that down.
//
// Proxy state is serialized under one mutex: requests are handled one at a
// time, which keeps cache, index, and round-robin evolution identical to the
// in-process loopback for any serial client workload. A holder that is dead
// or unreachable costs one bounded peer-deadline wait and then degrades to
// an origin fetch (a false forward) — never a hang.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "netio/channel_pool.hpp"
#include "netio/epoll_server.hpp"
#include "netio/server.hpp"
#include "obs/snapshot_window.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "runtime/proxy_core.hpp"

namespace baps::runtime {

class ProxyServer {
 public:
  struct Params {
    ProxyCore::Params core;
    netio::FrameServer::Params net;
    /// Deadlines for outbound peer fetches — kept short so a dead holder
    /// degrades to origin quickly.
    netio::Deadlines peer_deadlines{500, 1000, 1000};
    /// Serve with the edge-triggered epoll loop instead of the blocking
    /// worker pool. host/port/max_frame_payload come from `net`; loop
    /// behaviour (idle timeout, write budget, drain, connection ceiling)
    /// from `epoll`.
    bool event_driven = false;
    netio::EpollFrameServer::Params epoll;
    /// Idle peer-fetch connections kept per holder.
    std::size_t peer_pool_idle = 4;
  };

  explicit ProxyServer(const Params& params);
  ~ProxyServer();
  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;

  /// Binds and serves. False (with *error) if the listener cannot bind.
  bool start(std::string* error);
  void stop();

  bool running() const;
  std::uint16_t port() const;
  bool event_driven() const { return params_.event_driven; }

  /// Direct access to the proxy state, for in-process inspection by tests
  /// and the daemon's shutdown report. Not synchronized with live sessions —
  /// use while no client traffic is in flight, or go through the wire.
  ProxyCore& core() { return core_; }

  /// Attaches the proxy-side tracer: sessions record frame spans, the core
  /// records stage spans, and TraceStatsRequest answers include its recent
  /// spans. Attach before start(); nullptr detaches; not owned.
  void set_tracer(obs::Tracer* tracer);

  /// Attaches the daemon's time-series sampler so TimeSeriesRequest frames
  /// serve its live interval ring. Attach before start(); nullptr detaches;
  /// not owned. Without a sampler the proxy answers with an empty window —
  /// still a valid baps.timeseries_window.v1 document.
  void set_sampler(obs::TimeSeriesSampler* sampler);

  /// Captures one timestamped registry snapshot into the rolling window
  /// (the daemon's poll loop calls this ~once a second).
  void capture_window_snapshot();

  /// The baps.trace_stats.v1 introspection document served to
  /// TraceStatsRequest: live registry snapshot with latency quantiles,
  /// windowed counter rates, tracer totals, recent spans (up to
  /// `max_spans`), and the top-K slowest trace trees.
  obs::JsonValue trace_stats_json(std::uint32_t max_spans);

 private:
  /// Per-session protocol state, shared by both transports.
  struct Session {
    bool hello_done = false;
    bool observer = false;
    ClientId client_id = 0;
  };

  /// How a session emits one frame; bound to FrameChannel::send on the
  /// blocking path and Connection::send on the epoll path.
  using SessionSender = std::function<bool(
      wire::FrameKind, std::string_view, const obs::TraceContext&)>;

  /// Advances one session by one inbound frame. Returns false when the
  /// session must end (protocol error, Bye, or a failed send).
  bool on_session_frame(Session& s, const wire::Frame& frame,
                        const SessionSender& send);

  void session(netio::FrameChannel& channel, const std::atomic<bool>& stop);
  std::optional<Document> peer_fetch(ClientId holder, DocStore::Key key,
                                     const obs::TraceContext& trace);

  Params params_;
  ProxyCore core_;
  std::mutex core_mu_;
  obs::Tracer* tracer_ = nullptr;  ///< optional, not owned
  obs::TimeSeriesSampler* sampler_ = nullptr;  ///< optional, not owned
  obs::SnapshotWindow window_;

  std::mutex ports_mu_;
  std::unordered_map<ClientId, std::uint16_t> peer_ports_;

  netio::ChannelPool peer_pool_;
  std::unique_ptr<netio::FrameServer> blocking_server_;
  std::unique_ptr<netio::EpollFrameServer> epoll_server_;
};

}  // namespace baps::runtime
