// Decentralized mutual-anonymity protocol: layered (onion) peer-to-peer
// forwarding.
//
// §6.2 of the paper implements anonymity through the proxy acting as a
// trusted relay, and points at its companion report (Xu, Xiao & Zhang,
// HPL-2001-204) for "anonymity protocols that hide identities among peer
// browsers with no or limited centralized controls". This module implements
// that decentralized variant: the initiator wraps the payload in one
// encryption layer per relay, and each relay can decrypt exactly one layer —
// learning only its predecessor and successor, never the endpoints.
//
// Construction (hybrid encryption, innermost first):
//   layer_i = RSA_pub(relay_i){session_key_i}
//             || nonce_i || XTEA-CTR(session_key_i){ type, next, inner }
// The exit layer carries the payload; every other layer carries the next
// hop id and the next blob. Key sizes are the repo's demonstration-grade
// RSA — protocol shape, not production crypto.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/rsa.hpp"
#include "trace/record.hpp"

namespace baps::runtime {

using trace::ClientId;

/// A relay's identity: node id + RSA key pair (public part known to all
/// peers, as the paper's §6 assumes).
struct RelayKeys {
  ClientId node = 0;
  crypto::RsaPublicKey pub;
};

/// What one relay learns when it peels its layer.
struct PeeledLayer {
  /// Set for intermediate layers: forward `blob` to this node.
  std::optional<ClientId> next;
  /// Intermediate: the next onion blob. Exit: the payload bytes.
  std::vector<std::uint8_t> blob;
};

/// Builds an onion for `path` (first element = first relay, last = exit)
/// around `payload`. Deterministic in `seed` (session keys and nonces).
/// Requires a non-empty path and every RSA modulus ≥ 136 bits.
std::vector<std::uint8_t> build_onion(
    const std::vector<RelayKeys>& path,
    std::vector<std::uint8_t> payload, std::uint64_t seed);

/// Peels one layer with the relay's private key. Returns nullopt if the
/// blob is malformed or was not encrypted for this key (tampering or
/// misrouting — the relay just drops it).
std::optional<PeeledLayer> peel_onion(std::span<const std::uint8_t> blob,
                                      const crypto::RsaPrivateKey& priv);

}  // namespace baps::runtime
