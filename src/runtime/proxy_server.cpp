#include "runtime/proxy_server.hpp"

#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "runtime/wire_bridge.hpp"
#include "util/assert.hpp"

namespace baps::runtime {

using netio::NetError;

namespace {

obs::Histogram& request_hist(const std::string& op) {
  // Log10-seconds domain spanning 100 ns .. 1000 s (thread-pool idiom).
  return obs::Registry::global().histogram("netio_request_seconds", -7.0, 3.0,
                                           50, obs::HistScale::kLog10,
                                           {{"op", op}});
}

}  // namespace

ProxyServer::ProxyServer(const Params& params)
    : params_(params),
      core_(params.core),
      peer_pool_(netio::ChannelPool::Params{
          params.peer_deadlines, params.net.max_frame_payload,
          params.peer_pool_idle}) {
  core_.set_peer_fetch([this](ClientId holder, DocStore::Key key,
                              const obs::TraceContext& trace) {
    return peer_fetch(holder, key, trace);
  });
}

ProxyServer::~ProxyServer() { stop(); }

bool ProxyServer::start(std::string* error) {
  if (params_.event_driven) {
    netio::EpollFrameServer::Params ep = params_.epoll;
    ep.host = params_.net.host;
    ep.port = params_.net.port;
    ep.max_frame_payload = params_.net.max_frame_payload;
    ep.tracer = tracer_;
    epoll_server_ = std::make_unique<netio::EpollFrameServer>(
        ep, [this](netio::EpollFrameServer::Connection& conn,
                   wire::Frame&& frame) {
          auto state = std::static_pointer_cast<Session>(conn.state());
          if (state == nullptr) {
            state = std::make_shared<Session>();
            conn.state() = state;
          }
          const SessionSender send =
              [&conn](wire::FrameKind kind, std::string_view payload,
                      const obs::TraceContext& trace) {
                return conn.send(kind, payload, trace);
              };
          return on_session_frame(*state, frame, send);
        });
    return epoll_server_->start(error);
  }
  blocking_server_ = std::make_unique<netio::FrameServer>(
      params_.net, [this](netio::FrameChannel& channel,
                          const std::atomic<bool>& stop) {
        session(channel, stop);
      });
  return blocking_server_->start(error);
}

void ProxyServer::stop() {
  if (epoll_server_ != nullptr) epoll_server_->stop();
  if (blocking_server_ != nullptr) blocking_server_->stop();
  peer_pool_.clear();
}

bool ProxyServer::running() const {
  if (epoll_server_ != nullptr) return epoll_server_->running();
  return blocking_server_ != nullptr && blocking_server_->running();
}

std::uint16_t ProxyServer::port() const {
  if (epoll_server_ != nullptr) return epoll_server_->port();
  return blocking_server_ != nullptr ? blocking_server_->port() : 0;
}

void ProxyServer::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  core_.set_tracer(tracer);
}

void ProxyServer::set_sampler(obs::TimeSeriesSampler* sampler) {
  sampler_ = sampler;
}

void ProxyServer::capture_window_snapshot() {
  window_.capture(obs::Registry::global().snapshot(),
                  obs::monotonic_seconds());
}

obs::JsonValue ProxyServer::trace_stats_json(std::uint32_t max_spans) {
  obs::JsonValue out = obs::json_object({});
  out.set("schema", obs::JsonValue("baps.trace_stats.v1"));
  out.set("registry", obs::to_json(obs::with_latency_quantiles(
                          obs::Registry::global().snapshot())));
  out.set("window", window_.window_json());
  if (tracer_ != nullptr) {
    obs::JsonArray spans;
    for (const obs::SpanRecord& rec : tracer_->recent_spans(max_spans)) {
      spans.push_back(rec.to_json());
    }
    out.set("spans_recorded", obs::JsonValue(tracer_->spans_recorded()));
    out.set("spans_evicted", obs::JsonValue(tracer_->spans_evicted()));
    out.set("recent_spans", obs::JsonValue(std::move(spans)));
    out.set("slow_traces", tracer_->slow_traces_json());
  }
  return out;
}

std::optional<Document> ProxyServer::peer_fetch(
    ClientId holder, DocStore::Key key, const obs::TraceContext& trace) {
  std::uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(ports_mu_);
    const auto it = peer_ports_.find(holder);
    if (it == peer_ports_.end()) return std::nullopt;
    port = it->second;
  }
  wire::PeerFetch request;
  request.key = key;
  // A pooled connection per peer fetch: reuse a warm socket when one is
  // parked, dial otherwise. Any failure — refused (holder died), timeout
  // (holder wedged), tampered framing — collapses to "no delivery", which
  // handle_fetch treats as a false forward and recovers from origin. A
  // failed exchange on a REUSED socket retries once on a fresh dial: the
  // holder may simply have closed the parked connection.
  for (int attempt = 0; attempt < 2; ++attempt) {
    NetError err;
    auto acquired = peer_pool_.acquire(params_.net.host, port, &err);
    if (acquired.channel == nullptr) return std::nullopt;
    acquired.channel->set_tracer(tracer_);
    // The context rides the frame so the holder's serve span stitches in;
    // it carries span ids only, never the requester (§6.2 still holds).
    if (acquired.channel->send_msg(request, trace, &err)) {
      auto deliver = acquired.channel->recv_msg<wire::PeerDeliver>(&err);
      if (deliver.has_value()) {
        peer_pool_.release(params_.net.host, port,
                           std::move(acquired.channel));
        if (!deliver->found) return std::nullopt;
        return Document{std::move(deliver->body),
                        watermark_from_bytes(deliver->watermark)};
      }
    }
    if (!acquired.reused) break;  // fresh dial failed: the holder is gone
  }
  return std::nullopt;
}

bool ProxyServer::on_session_frame(Session& s, const wire::Frame& frame,
                                   const SessionSender& send) {
  const auto send_msg = [&send](const auto& m, const obs::TraceContext& trace =
                                                   obs::TraceContext{}) {
    using Msg = std::decay_t<decltype(m)>;
    return send(Msg::kKind, wire::encode(m), trace);
  };

  if (!s.hello_done) {
    // The first frame of every session must be a well-formed Hello; anything
    // else drops the connection without a reply (matching the original
    // recv_msg<Hello> behaviour).
    if (frame.kind != wire::Hello::kKind) return false;
    wire::Hello hello;
    if (!wire::decode(frame.payload, &hello)) return false;
    wire::HelloAck ack;
    {
      std::lock_guard<std::mutex> lock(core_mu_);
      ack.rsa_n = core_.public_key().n.to_bytes();
      ack.rsa_e = core_.public_key().e.to_bytes();
      ack.max_clients = core_.num_clients();
    }
    s.observer = hello.client_id == wire::kObserverClientId;
    s.client_id = hello.client_id;
    if (!s.observer && hello.client_id >= ack.max_clients) {
      send_msg(wire::ErrorMsg{"client id out of range"});
      return false;
    }
    if (!send_msg(ack)) return false;
    if (!s.observer && hello.peer_port != 0) {
      std::lock_guard<std::mutex> lock(ports_mu_);
      peer_ports_[hello.client_id] = hello.peer_port;
    }
    s.hello_done = true;
    return true;
  }

  switch (frame.kind) {
    case wire::FrameKind::kFetchRequest: {
      wire::FetchRequest request;
      if (s.observer || !wire::decode(frame.payload, &request)) {
        send_msg(wire::ErrorMsg{"bad fetch request"});
        return false;
      }
      const double start = obs::monotonic_seconds();
      ProxyCore::Reply reply;
      {
        std::lock_guard<std::mutex> lock(core_mu_);
        // The frame's context (the client's root span) parents the core's
        // stage spans — this is where cross-process stitching happens on
        // the proxy side.
        reply = core_.handle_fetch(s.client_id, request.url,
                                   request.avoid_peers, frame.trace);
      }
      request_hist("fetch").observe(obs::monotonic_seconds() - start);
      wire::FetchResponse response;
      response.source = to_wire_source(reply.source);
      response.false_forward = reply.false_forward;
      response.body = std::move(reply.doc.body);
      response.watermark = watermark_to_bytes(reply.doc.mark);
      return send_msg(response, frame.trace);
    }
    case wire::FrameKind::kIndexUpdate: {
      wire::IndexUpdate update;
      if (s.observer || !wire::decode(frame.payload, &update)) {
        send_msg(wire::ErrorMsg{"bad index update"});
        return false;
      }
      const double start = obs::monotonic_seconds();
      bool accepted = false;
      {
        std::lock_guard<std::mutex> lock(core_mu_);
        // The wire says who the update claims to be from — the session's
        // own id. Spoofing tests impersonate here and the MAC rejects it.
        accepted = core_.apply_index_update(s.client_id, update.is_add,
                                            update.key,
                                            mac_from_wire(update.mac));
      }
      request_hist("index_update").observe(obs::monotonic_seconds() - start);
      wire::IndexAck ack_msg;
      ack_msg.accepted = accepted;
      return send_msg(ack_msg);
    }
    case wire::FrameKind::kStatsRequest: {
      wire::StatsResponse response;
      {
        std::lock_guard<std::mutex> lock(core_mu_);
        const ProxyStats& st = core_.stats();
        response.proxy_hits = st.proxy_hits;
        response.peer_hits = st.peer_hits;
        response.origin_fetches = st.origin_fetches;
        response.false_forwards = st.false_forwards;
        response.rejected_index_updates = st.rejected_index_updates;
      }
      return send_msg(response);
    }
    case wire::FrameKind::kTraceStatsRequest: {
      wire::TraceStatsRequest request;
      if (!wire::decode(frame.payload, &request)) {
        send_msg(wire::ErrorMsg{"bad trace stats request"});
        return false;
      }
      // Registry and tracer have their own locks — no core_mu_ needed, so
      // introspection never stalls behind a slow fetch.
      wire::TraceStatsResponse response;
      response.json = trace_stats_json(request.max_spans).dump();
      return send_msg(response);
    }
    case wire::FrameKind::kTimeSeriesRequest: {
      wire::TimeSeriesRequest request;
      if (!wire::decode(frame.payload, &request)) {
        send_msg(wire::ErrorMsg{"bad time series request"});
        return false;
      }
      // The sampler has its own lock — like trace stats, live telemetry
      // never queues behind core_mu_.
      wire::TimeSeriesResponse response;
      if (sampler_ != nullptr) {
        response.json = sampler_->window_json(request.max_intervals).dump();
      } else {
        obs::JsonValue empty = obs::json_object({});
        empty.set("schema", obs::JsonValue(obs::kTimeSeriesWindowSchema));
        empty.set("interval_seconds", obs::JsonValue(0.0));
        empty.set("intervals", obs::JsonValue(obs::JsonArray{}));
        response.json = empty.dump();
      }
      return send_msg(response);
    }
    case wire::FrameKind::kBye:
      return false;
    default:
      send_msg(wire::ErrorMsg{"unexpected frame kind " +
                              wire::frame_kind_name(frame.kind)});
      return false;
  }
}

void ProxyServer::session(netio::FrameChannel& channel,
                          const std::atomic<bool>& stop) {
  channel.set_tracer(tracer_);
  Session s;
  const SessionSender send = [&channel](wire::FrameKind kind,
                                        std::string_view payload,
                                        const obs::TraceContext& trace) {
    NetError err;
    return channel.send(kind, payload, trace, &err);
  };
  while (!stop.load()) {
    NetError recv_err;
    const auto frame = channel.recv(&recv_err);
    if (!frame.has_value()) {
      if (recv_err.status == netio::NetStatus::kTimeout) {
        // Pre-Hello silence is a dead dial — drop it (the original
        // recv_msg<Hello> deadline). Established sessions just check the
        // stop flag and keep waiting.
        if (!s.hello_done) return;
        continue;
      }
      return;  // closed, reset, or rejected frame — drop the connection
    }
    if (!on_session_frame(s, *frame, send)) return;
  }
}

}  // namespace baps::runtime
