#include "runtime/proxy_server.hpp"

#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "runtime/wire_bridge.hpp"
#include "util/assert.hpp"

namespace baps::runtime {

using netio::NetError;

namespace {

obs::Histogram& request_hist(const std::string& op) {
  // Log10-seconds domain spanning 100 ns .. 1000 s (thread-pool idiom).
  return obs::Registry::global().histogram("netio_request_seconds", -7.0, 3.0,
                                           50, obs::HistScale::kLog10,
                                           {{"op", op}});
}

}  // namespace

ProxyServer::ProxyServer(const Params& params)
    : params_(params),
      core_(params.core),
      server_(params.net,
              [this](netio::FrameChannel& channel,
                     const std::atomic<bool>& stop) { session(channel, stop); }) {
  core_.set_peer_fetch([this](ClientId holder, DocStore::Key key,
                              const obs::TraceContext& trace) {
    return peer_fetch(holder, key, trace);
  });
}

ProxyServer::~ProxyServer() { stop(); }

bool ProxyServer::start(std::string* error) { return server_.start(error); }

void ProxyServer::stop() { server_.stop(); }

void ProxyServer::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  core_.set_tracer(tracer);
}

void ProxyServer::set_sampler(obs::TimeSeriesSampler* sampler) {
  sampler_ = sampler;
}

void ProxyServer::capture_window_snapshot() {
  window_.capture(obs::Registry::global().snapshot(),
                  obs::monotonic_seconds());
}

obs::JsonValue ProxyServer::trace_stats_json(std::uint32_t max_spans) {
  obs::JsonValue out = obs::json_object({});
  out.set("schema", obs::JsonValue("baps.trace_stats.v1"));
  out.set("registry", obs::to_json(obs::with_latency_quantiles(
                          obs::Registry::global().snapshot())));
  out.set("window", window_.window_json());
  if (tracer_ != nullptr) {
    obs::JsonArray spans;
    for (const obs::SpanRecord& rec : tracer_->recent_spans(max_spans)) {
      spans.push_back(rec.to_json());
    }
    out.set("spans_recorded", obs::JsonValue(tracer_->spans_recorded()));
    out.set("spans_evicted", obs::JsonValue(tracer_->spans_evicted()));
    out.set("recent_spans", obs::JsonValue(std::move(spans)));
    out.set("slow_traces", tracer_->slow_traces_json());
  }
  return out;
}

std::optional<Document> ProxyServer::peer_fetch(
    ClientId holder, DocStore::Key key, const obs::TraceContext& trace) {
  std::uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(ports_mu_);
    const auto it = peer_ports_.find(holder);
    if (it == peer_ports_.end()) return std::nullopt;
    port = it->second;
  }
  // A fresh connection per peer fetch: any failure — refused (holder died),
  // timeout (holder wedged), tampered framing — collapses to "no delivery",
  // which handle_fetch treats as a false forward and recovers from origin.
  NetError err;
  auto conn = netio::TcpConnection::connect(
      params_.net.host, port, params_.peer_deadlines.connect_ms, &err);
  if (!conn.has_value()) return std::nullopt;
  netio::FrameChannel channel(std::move(*conn), params_.peer_deadlines,
                              params_.net.max_frame_payload);
  channel.set_tracer(tracer_);
  wire::PeerFetch request;
  request.key = key;
  // The context rides the frame so the holder's serve span stitches in; it
  // carries span ids only, never the requester (§6.2 still holds).
  if (!channel.send_msg(request, trace, &err)) return std::nullopt;
  auto deliver = channel.recv_msg<wire::PeerDeliver>(&err);
  if (!deliver.has_value() || !deliver->found) return std::nullopt;
  return Document{std::move(deliver->body),
                  watermark_from_bytes(deliver->watermark)};
}

void ProxyServer::session(netio::FrameChannel& channel,
                          const std::atomic<bool>& stop) {
  NetError err;
  channel.set_tracer(tracer_);
  const auto hello = channel.recv_msg<wire::Hello>(&err);
  if (!hello.has_value()) return;

  wire::HelloAck ack;
  {
    std::lock_guard<std::mutex> lock(core_mu_);
    ack.rsa_n = core_.public_key().n.to_bytes();
    ack.rsa_e = core_.public_key().e.to_bytes();
    ack.max_clients = core_.num_clients();
  }
  const bool observer = hello->client_id == wire::kObserverClientId;
  if (!observer && hello->client_id >= ack.max_clients) {
    channel.send_msg(wire::ErrorMsg{"client id out of range"}, &err);
    return;
  }
  if (!channel.send_msg(ack, &err)) return;
  if (!observer && hello->peer_port != 0) {
    std::lock_guard<std::mutex> lock(ports_mu_);
    peer_ports_[hello->client_id] = hello->peer_port;
  }

  while (!stop.load()) {
    NetError recv_err;
    const auto frame = channel.recv(&recv_err);
    if (!frame.has_value()) {
      // Read deadline without traffic: check the stop flag, keep waiting.
      if (recv_err.status == netio::NetStatus::kTimeout) continue;
      return;  // closed, reset, or rejected frame — drop the connection
    }
    switch (frame->kind) {
      case wire::FrameKind::kFetchRequest: {
        wire::FetchRequest request;
        if (observer || !wire::decode(frame->payload, &request)) {
          channel.send_msg(wire::ErrorMsg{"bad fetch request"}, &err);
          return;
        }
        const double start = obs::monotonic_seconds();
        ProxyCore::Reply reply;
        {
          std::lock_guard<std::mutex> lock(core_mu_);
          // The frame's context (the client's root span) parents the
          // core's stage spans — this is where cross-process stitching
          // happens on the proxy side.
          reply = core_.handle_fetch(hello->client_id, request.url,
                                     request.avoid_peers, frame->trace);
        }
        request_hist("fetch").observe(obs::monotonic_seconds() - start);
        wire::FetchResponse response;
        response.source = to_wire_source(reply.source);
        response.false_forward = reply.false_forward;
        response.body = std::move(reply.doc.body);
        response.watermark = watermark_to_bytes(reply.doc.mark);
        if (!channel.send_msg(response, frame->trace, &err)) return;
        break;
      }
      case wire::FrameKind::kIndexUpdate: {
        wire::IndexUpdate update;
        if (observer || !wire::decode(frame->payload, &update)) {
          channel.send_msg(wire::ErrorMsg{"bad index update"}, &err);
          return;
        }
        const double start = obs::monotonic_seconds();
        bool accepted = false;
        {
          std::lock_guard<std::mutex> lock(core_mu_);
          // The wire says who the update claims to be from — the session's
          // own id. Spoofing tests impersonate here and the MAC rejects it.
          accepted = core_.apply_index_update(hello->client_id, update.is_add,
                                              update.key,
                                              mac_from_wire(update.mac));
        }
        request_hist("index_update").observe(obs::monotonic_seconds() - start);
        wire::IndexAck ack_msg;
        ack_msg.accepted = accepted;
        if (!channel.send_msg(ack_msg, &err)) return;
        break;
      }
      case wire::FrameKind::kStatsRequest: {
        wire::StatsResponse response;
        {
          std::lock_guard<std::mutex> lock(core_mu_);
          const ProxyStats& s = core_.stats();
          response.proxy_hits = s.proxy_hits;
          response.peer_hits = s.peer_hits;
          response.origin_fetches = s.origin_fetches;
          response.false_forwards = s.false_forwards;
          response.rejected_index_updates = s.rejected_index_updates;
        }
        if (!channel.send_msg(response, &err)) return;
        break;
      }
      case wire::FrameKind::kTraceStatsRequest: {
        wire::TraceStatsRequest request;
        if (!wire::decode(frame->payload, &request)) {
          channel.send_msg(wire::ErrorMsg{"bad trace stats request"}, &err);
          return;
        }
        // Registry and tracer have their own locks — no core_mu_ needed, so
        // introspection never stalls behind a slow fetch.
        wire::TraceStatsResponse response;
        response.json = trace_stats_json(request.max_spans).dump();
        if (!channel.send_msg(response, &err)) return;
        break;
      }
      case wire::FrameKind::kTimeSeriesRequest: {
        wire::TimeSeriesRequest request;
        if (!wire::decode(frame->payload, &request)) {
          channel.send_msg(wire::ErrorMsg{"bad time series request"}, &err);
          return;
        }
        // The sampler has its own lock — like trace stats, live telemetry
        // never queues behind core_mu_.
        wire::TimeSeriesResponse response;
        if (sampler_ != nullptr) {
          response.json = sampler_->window_json(request.max_intervals).dump();
        } else {
          obs::JsonValue empty = obs::json_object({});
          empty.set("schema", obs::JsonValue(obs::kTimeSeriesWindowSchema));
          empty.set("interval_seconds", obs::JsonValue(0.0));
          empty.set("intervals", obs::JsonValue(obs::JsonArray{}));
          response.json = empty.dump();
        }
        if (!channel.send_msg(response, &err)) return;
        break;
      }
      case wire::FrameKind::kBye:
        return;
      default:
        channel.send_msg(
            wire::ErrorMsg{"unexpected frame kind " +
                           wire::frame_kind_name(frame->kind)},
            &err);
        return;
    }
  }
}

}  // namespace baps::runtime
