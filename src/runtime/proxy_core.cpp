#include "runtime/proxy_core.hpp"

#include "crypto/watermark.hpp"
#include "obs/registry.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::runtime {

std::vector<std::string> derive_client_mac_keys(std::uint64_t seed,
                                                std::uint32_t num_clients) {
  std::vector<std::string> keys;
  keys.reserve(num_clients);
  baps::SplitMix64 key_mixer(seed ^ 0x4D41434B4559ULL);
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    keys.push_back("k" + std::to_string(key_mixer.next()));
  }
  return keys;
}

ProxyCore::RequestCounters::RequestCounters()
    : requests(obs::Registry::global().counter("proxy_fetch_requests_total")),
      served_proxy(obs::Registry::global().counter(
          "proxy_fetch_served_total", {{"source", "proxy-cache"}})),
      served_peer(obs::Registry::global().counter(
          "proxy_fetch_served_total", {{"source", "remote-browser"}})),
      served_origin(obs::Registry::global().counter(
          "proxy_fetch_served_total", {{"source", "origin-server"}})),
      false_forwards(
          obs::Registry::global().counter("proxy_false_forwards_total")) {
  // Resolving the handles above eagerly registers the whole family (zeros
  // included), so the sampler's first interval and fetch-free reports still
  // carry every proxy_* instrument; same contract for the staleness counter.
  obs::Registry::global().counter("stale_index_hits_total");
}

ProxyCore::ProxyCore(const Params& params)
    : origin_(params.seed),
      keys_(crypto::generate_rsa_keypair(params.rsa_modulus_bits,
                                         params.seed ^ 0x4B455953454544ULL)),
      proxy_cache_(store::TieredObjectStore::Params{params.proxy_cache_bytes,
                                                    params.store}),
      index_(params.num_clients),
      mac_keys_(derive_client_mac_keys(params.seed, params.num_clients)) {
  BAPS_REQUIRE(params.num_clients > 0, "proxy needs at least one client");
  std::string store_error;
  BAPS_REQUIRE(proxy_cache_.open(&store_error),
               "cannot open object store: " + store_error);
}

void ProxyCore::record(MsgKind kind, std::string from, std::string to,
                       DocStore::Key key) {
  if (trace_ != nullptr) {
    trace_->record(kind, std::move(from), std::move(to), key);
  }
}

crypto::Md5Digest ProxyCore::index_update_mac(ClientId sender, bool is_add,
                                              DocStore::Key key) const {
  BAPS_REQUIRE(sender < mac_keys_.size(), "client id out of range");
  std::string msg = is_add ? "add:" : "remove:";
  msg += std::to_string(sender);
  msg += ':';
  msg += std::to_string(key);
  return crypto::hmac_md5(mac_keys_[sender], msg);
}

bool ProxyCore::apply_index_update(ClientId claimed_sender, bool is_add,
                                   DocStore::Key key,
                                   const crypto::Md5Digest& mac) {
  BAPS_REQUIRE(claimed_sender < mac_keys_.size(), "client id out of range");
  // The proxy recomputes the MAC under the claimed sender's key: only the
  // real owner of that key can mutate its own index entries.
  if (!crypto::digest_equal(mac,
                            index_update_mac(claimed_sender, is_add, key))) {
    ++stats_.rejected_index_updates;
    return false;
  }
  if (is_add) {
    index_.add(claimed_sender, key);
  } else {
    index_.remove(claimed_sender, key);
  }
  return true;
}

void ProxyCore::restart() {
  // RAM tier and browser index are lost; the disk tier reopens and rebuilds
  // its index from the segment files — that surviving index is the warm
  // start.
  std::string store_error;
  BAPS_ENSURE(proxy_cache_.restart(&store_error),
              "cannot reopen object store: " + store_error);
  index_.clear();
}

ProxyCore::Reply ProxyCore::handle_fetch(ClientId requester, const Url& url,
                                         bool avoid_peers,
                                         const obs::TraceContext& trace) {
  BAPS_REQUIRE(requester < mac_keys_.size(), "client id out of range");
  const DocStore::Key key = url_key(url);
  counters_.requests.inc();
  bool false_forward = false;
  // One branch on the unsampled path: `traced` is false and every stage()
  // call below hands back an inert span.
  const bool traced = tracer_ != nullptr && trace.sampled;
  const auto stage = [&](obs::SpanKind kind) {
    return traced ? tracer_->start_span(kind, trace) : obs::Span();
  };

  // 1. The proxy's own cache.
  {
    const obs::Span probe = stage(obs::SpanKind::kCacheProbe);
    if (auto doc = proxy_cache_.get(key)) {
      ++stats_.proxy_hits;
      counters_.served_proxy.inc();
      return {std::move(*doc), FetchOutcome::Source::kProxy, false};
    }
  }

  // 2. The browser index. The peer-fetch message deliberately carries only
  //    the document key: the holder never learns who asked (§6.2).
  if (!avoid_peers) {
    std::optional<ClientId> holder;
    {
      const obs::Span lookup = stage(obs::SpanKind::kIndexLookup);
      holder = index_.find_holder(key, requester);
    }
    if (holder.has_value()) {
      record(MsgKind::kPeerFetch, "proxy", client_name(*holder), key);
      std::optional<Document> doc;
      {
        const obs::Span transfer = stage(obs::SpanKind::kPeerTransfer);
        doc = peer_fetch_ ? peer_fetch_(*holder, key, transfer.context())
                          : std::nullopt;
      }
      if (doc.has_value()) {
        record(MsgKind::kPeerDeliver, client_name(*holder), "proxy", key);
        ++stats_.peer_hits;
        counters_.served_peer.inc();
        return {std::move(*doc), FetchOutcome::Source::kRemoteBrowser, false};
      }
      // Stale index entry (or dead peer): no delivery came back.
      ++stats_.false_forwards;
      counters_.false_forwards.inc();
      false_forward = true;
      obs::Registry::global().counter("stale_index_hits_total").inc();
      if (drop_failed_holders_) {
        index_.remove_all(*holder);
      } else {
        index_.remove(*holder, key);
      }
    }
  }

  // 3. The origin server. The proxy issues the watermark here — the only
  //    place documents enter the system (§6.1).
  const obs::Span origin_span = stage(obs::SpanKind::kOriginFetch);
  record(MsgKind::kOriginFetch, "proxy", "origin", key);
  std::string body = origin_.fetch(url);
  record(MsgKind::kOriginResponse, "origin", "proxy", key);
  ++stats_.origin_fetches;
  counters_.served_origin.inc();
  Document doc{std::move(body), crypto::Watermark{}};
  doc.mark = crypto::issue_watermark(doc.body, keys_.priv);
  proxy_cache_.put(key, doc);
  return {std::move(doc), FetchOutcome::Source::kOrigin, false_forward};
}

}  // namespace baps::runtime
