// The client↔proxy exchange boundary of the runtime engine. BapsSystem's
// client side speaks only this interface; behind it sits either the
// deterministic in-process loopback (LoopbackTransport — synchronous
// dispatch into a ProxyCore, bit-for-bit the pre-transport behaviour) or a
// real TCP connection to a proxy daemon (TcpTransport ↔ ProxyServer).
//
// The peer direction (proxy → holder) flows the other way: the transport
// reaches back into the client host through PeerHost, which serves a
// holder's browser-cache contents. A PeerFetch carries only the document
// key in both implementations (§6.2).
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/md5.hpp"
#include "crypto/rsa.hpp"
#include "obs/trace_context.hpp"
#include "runtime/proxy_core.hpp"
#include "runtime/types.hpp"

namespace baps::fault {
class FaultPlan;
}
namespace baps::obs {
class Tracer;
}

namespace baps::runtime {

/// The client host's peer-serving surface: lets a transport deliver
/// peer-fetch requests to the browser stores it fronts.
class PeerHost {
 public:
  virtual ~PeerHost() = default;
  virtual std::uint32_t num_clients() const = 0;
  /// Serve `key` from `holder`'s browser cache (tampering clients corrupt
  /// the copy they serve). nullopt when the holder no longer has it.
  virtual std::optional<Document> serve_peer_fetch(ClientId holder,
                                                   DocStore::Key key) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Wires the transport to the client host so proxy-initiated peer fetches
  /// can reach the browser stores. Called once before any other method.
  virtual void bind_peer_host(PeerHost* host) = 0;

  /// Client `client` asks the proxy for `url`; avoid_peers is the §6.1
  /// retry that bypasses the browser index. `trace` is the caller's span
  /// context: the loopback hands it to the core directly, the TCP transport
  /// embeds it in the request frame (sampled traces only) so the proxy's
  /// spans stitch to the client's.
  virtual ProxyCore::Reply fetch(ClientId client, const Url& url,
                                 bool avoid_peers,
                                 const obs::TraceContext& trace) = 0;

  /// Index add/remove for `claimed_sender`, authenticated by `mac`.
  /// Returns whether the proxy accepted it.
  virtual bool index_update(ClientId claimed_sender, bool is_add,
                            DocStore::Key key,
                            const crypto::Md5Digest& mac) = 0;

  /// The proxy's watermark-verification key.
  virtual crypto::RsaPublicKey proxy_public_key() = 0;

  /// Proxy-side protocol counters.
  virtual ProxyStats stats() = 0;

  /// Attaches a fault plan so the transport can inject faults at its own
  /// seam (frame drops/corruption on the wire, delivery delays). nullptr
  /// detaches; the plan is not owned and must outlive the transport's use
  /// of it. Transports without an injectable seam ignore it.
  virtual void set_fault_plan(fault::FaultPlan* plan) { (void)plan; }

  /// Attaches a tracer for the transport's own spans (frame send/recv,
  /// peer-serve). nullptr detaches; not owned. Attach before traffic flows.
  /// Transports with nothing of their own to trace ignore it.
  virtual void set_tracer(obs::Tracer* tracer) { (void)tracer; }
};

}  // namespace baps::runtime
