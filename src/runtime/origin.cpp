#include "runtime/origin.hpp"

#include "util/rng.hpp"

namespace baps::runtime {

std::string OriginServer::fetch(const Url& url) const {
  ++fetches_;
  const std::uint64_t key = url_key(url);
  std::uint32_t version = 0;
  if (const auto it = versions_.find(key); it != versions_.end()) {
    version = it->second;
  }
  // Body: a recognizable header plus deterministic filler whose length
  // varies by URL (128–2175 bytes).
  baps::SplitMix64 sm(seed_ ^ key ^ (static_cast<std::uint64_t>(version) << 32));
  const std::size_t len = 128 + (sm.next() % 2048);
  std::string body = "<html><!-- " + url + " v" + std::to_string(version) +
                     " -->";
  while (body.size() < len) {
    body += static_cast<char>('a' + (sm.next() % 26));
  }
  return body;
}

void OriginServer::mutate(const Url& url) { ++versions_[url_key(url)]; }

}  // namespace baps::runtime
