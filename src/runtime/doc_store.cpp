#include "runtime/doc_store.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace baps::runtime {

DocStore::DocStore(std::uint64_t capacity_bytes)
    : cache_(capacity_bytes, cache::PolicyKind::kLru) {
  cache_.set_eviction_listener([this](trace::DocId key, std::uint64_t) {
    const auto it = docs_.find(key);
    BAPS_ENSURE(it != docs_.end(), "cache and body map out of sync");
    // Listener first, erase second: demotion needs the body alive.
    if (on_evict_) on_evict_(key, it->second);
    docs_.erase(it);
  });
}

std::optional<Document> DocStore::get(Key key) {
  if (!cache_.touch(key)) return std::nullopt;
  const auto it = docs_.find(key);
  BAPS_ENSURE(it != docs_.end(), "cache and body map out of sync");
  return it->second;
}

bool DocStore::put(Key key, Document doc) {
  if (cache_.contains(key)) {
    cache_.erase(key);
    docs_.erase(key);
  }
  if (!cache_.insert(key, doc.body.size())) return false;
  docs_[key] = std::move(doc);
  return true;
}

bool DocStore::erase(Key key) {
  docs_.erase(key);
  return cache_.erase(key);
}

std::vector<DocStore::Key> DocStore::keys() const {
  std::vector<Key> out;
  out.reserve(docs_.size());
  for (const auto& [key, doc] : docs_) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

void DocStore::clear() {
  // ObjectCache::erase never fires the eviction listener, so nothing
  // observes the wipe — the silent-departure semantics callers want.
  for (const auto& [key, doc] : docs_) cache_.erase(key);
  docs_.clear();
}

void DocStore::set_eviction_listener(EvictionListener listener) {
  on_evict_ = std::move(listener);
}

bool DocStore::corrupt(Key key) {
  const auto it = docs_.find(key);
  if (it == docs_.end() || it->second.body.empty()) return false;
  it->second.body[0] = static_cast<char>(it->second.body[0] ^ 0x5A);
  return true;
}

}  // namespace baps::runtime
