#include "runtime/tcp_transport.hpp"

#include "fault/fault_plan.hpp"
#include "runtime/wire_bridge.hpp"
#include "util/assert.hpp"

namespace baps::runtime {

using netio::NetError;

TcpTransport::TcpTransport(const Params& params) : params_(params) {
  BAPS_REQUIRE(params.proxy_port != 0, "transport needs the proxy's port");
}

TcpTransport::~TcpTransport() {
  for (auto& channel : channels_) {
    if (channel != nullptr && channel->valid()) {
      NetError err;
      channel->send_msg(wire::Bye{}, &err);
      channel->close();
    }
  }
  if (observer_channel_ != nullptr && observer_channel_->valid()) {
    NetError err;
    observer_channel_->send_msg(wire::Bye{}, &err);
    observer_channel_->close();
  }
  for (auto& server : peer_servers_) {
    if (server != nullptr) server->stop();
  }
}

void TcpTransport::bind_peer_host(PeerHost* host) {
  BAPS_REQUIRE(host != nullptr, "transport needs a peer host");
  BAPS_REQUIRE(host_ == nullptr, "peer host already bound");
  host_ = host;
  const std::uint32_t n = host->num_clients();
  channels_.resize(n);
  peer_servers_.resize(n);
  peer_ports_.resize(n, 0);
  // One peer listener per client: answers PeerFetch out of that client's
  // browser store. A single worker suffices — the proxy serializes peer
  // fetches — and keeps the listener's resource cost trivial.
  for (std::uint32_t c = 0; c < n; ++c) {
    netio::FrameServer::Params net;
    net.host = params_.proxy_host;
    net.port = 0;
    net.worker_threads = 1;
    net.deadlines = params_.deadlines;
    net.max_frame_payload = params_.max_frame_payload;
    peer_servers_[c] = std::make_unique<netio::FrameServer>(
        net, [this, c](netio::FrameChannel& channel,
                       const std::atomic<bool>& stop) {
          // Reads tracer_ per connection: the tracer is attached after
          // construction but before any traffic flows.
          channel.set_tracer(tracer_);
          while (!stop.load()) {
            NetError err;
            // recv (not recv_msg): the holder needs the frame's trace
            // context to stitch its serve span into the request's trace.
            const auto frame = channel.recv(&err);
            if (!frame.has_value()) return;
            wire::PeerFetch request;
            if (frame->kind != wire::PeerFetch::kKind ||
                !wire::decode(frame->payload, &request)) {
              return;
            }
            wire::PeerDeliver deliver;
            const bool traced = tracer_ != nullptr && frame->trace.sampled;
            const std::uint64_t t0 = traced ? obs::monotonic_ns() : 0;
            // The frame carries only the key — this handler cannot know,
            // and therefore cannot leak, who originally asked (§6.2).
            if (auto doc = host_->serve_peer_fetch(c, request.key)) {
              deliver.found = true;
              deliver.body = std::move(doc->body);
              deliver.watermark = watermark_to_bytes(doc->mark);
            }
            if (traced) {
              tracer_->record_span(obs::SpanKind::kPeerTransfer,
                                   frame->trace, t0, obs::monotonic_ns());
            }
            if (plan_ != nullptr && deliver.found) {
              if (plan_->should_inject(fault::FaultKind::kDropFrame)) {
                // The frame is lost in flight: the proxy's peer read
                // deadline expires and the fetch degrades to origin.
                continue;
              }
              if (plan_->should_inject(fault::FaultKind::kCorruptFrame)) {
                // Flip one payload byte after encoding so the frame CRC no
                // longer matches: the proxy rejects it at the wire layer.
                std::string raw = wire::encode_frame(
                    wire::PeerDeliver::kKind, wire::encode(deliver));
                raw.back() = static_cast<char>(raw.back() ^ 0x01);
                NetError raw_err;
                if (!channel.connection().write_all(
                        raw.data(), raw.size(),
                        channel.deadlines().write_ms, &raw_err)) {
                  return;
                }
                continue;
              }
            }
            if (!channel.send_msg(deliver, frame->trace, &err)) return;
          }
        });
    std::string error;
    BAPS_REQUIRE(peer_servers_[c]->start(&error),
                 "peer listener failed to start: " + error);
    peer_ports_[c] = peer_servers_[c]->port();
  }
}

void TcpTransport::kill_peer_server(ClientId client) {
  BAPS_REQUIRE(client < peer_servers_.size(), "client id out of range");
  if (peer_servers_[client] != nullptr) {
    peer_servers_[client]->stop();
    peer_servers_[client].reset();
  }
}

void TcpTransport::drop_channel(ClientId client) {
  if (client < channels_.size() && channels_[client] != nullptr) {
    channels_[client]->close();
    channels_[client].reset();
  }
}

netio::FrameChannel* TcpTransport::channel_for(ClientId client) {
  BAPS_REQUIRE(host_ != nullptr, "peer host not bound");
  BAPS_REQUIRE(client < channels_.size(), "client id out of range");
  if (channels_[client] != nullptr && channels_[client]->valid()) {
    return channels_[client].get();
  }
  NetError err;
  const bool connected = netio::retry_with_backoff(
      params_.retry, "connect",
      [&](NetError* e) {
        auto conn = netio::TcpConnection::connect(params_.proxy_host,
                                                  params_.proxy_port,
                                                  params_.deadlines.connect_ms,
                                                  e);
        if (!conn.has_value()) return false;
        auto channel = std::make_unique<netio::FrameChannel>(
            std::move(*conn), params_.deadlines, params_.max_frame_payload);
        channel->set_tracer(tracer_);
        wire::Hello hello;
        hello.client_id = client;
        hello.peer_port = peer_ports_[client];
        if (!channel->send_msg(hello, e)) return false;
        const auto ack = channel->recv_msg<wire::HelloAck>(e);
        if (!ack.has_value()) return false;
        BAPS_REQUIRE(client < ack->max_clients,
                     "proxy rejected client id: out of range");
        channels_[client] = std::move(channel);
        return true;
      },
      &err);
  BAPS_REQUIRE(connected, "cannot reach proxy at " + params_.proxy_host + ":" +
                              std::to_string(params_.proxy_port) + ": " +
                              err.message);
  return channels_[client].get();
}

ProxyCore::Reply TcpTransport::fetch(ClientId client, const Url& url,
                                     bool avoid_peers,
                                     const obs::TraceContext& trace) {
  wire::FetchRequest request;
  request.url = url;
  request.avoid_peers = avoid_peers;
  std::optional<wire::FetchResponse> response;
  NetError err;
  const bool ok = netio::retry_with_backoff(
      params_.retry, "fetch",
      [&](NetError* e) {
        netio::FrameChannel* channel = channel_for(client);
        if (!channel->send_msg(request, trace, e)) {
          drop_channel(client);  // reconnect on the next attempt
          return false;
        }
        response = channel->recv_msg<wire::FetchResponse>(e);
        if (!response.has_value()) {
          drop_channel(client);
          return false;
        }
        return true;
      },
      &err);
  BAPS_REQUIRE(ok, "fetch failed over transport: " + err.message);
  BAPS_REQUIRE(response.has_value(), "fetch produced no response");
  ProxyCore::Reply reply;
  reply.doc.body = std::move(response->body);
  reply.doc.mark = watermark_from_bytes(response->watermark);
  reply.source = from_wire_source(response->source);
  reply.false_forward = response->false_forward;
  return reply;
}

bool TcpTransport::index_update(ClientId claimed_sender, bool is_add,
                                DocStore::Key key,
                                const crypto::Md5Digest& mac) {
  // The connection identity IS the claimed sender: an attacker spoofing
  // another client sends over a session Hello'd with the victim's id, and
  // only the MAC (which it cannot forge) gives it away.
  wire::IndexUpdate update;
  update.is_add = is_add;
  update.key = key;
  update.mac = mac_to_wire(mac);
  std::optional<wire::IndexAck> ack;
  NetError err;
  const bool ok = netio::retry_with_backoff(
      params_.retry, "index_update",
      [&](NetError* e) {
        netio::FrameChannel* channel = channel_for(claimed_sender);
        if (!channel->send_msg(update, e)) {
          drop_channel(claimed_sender);
          return false;
        }
        ack = channel->recv_msg<wire::IndexAck>(e);
        if (!ack.has_value()) {
          drop_channel(claimed_sender);
          return false;
        }
        return true;
      },
      &err);
  BAPS_REQUIRE(ok, "index update failed over transport: " + err.message);
  return ack->accepted;
}

bool TcpTransport::observer_session(
    const std::function<bool(netio::FrameChannel&, wire::HelloAck&)>& op) {
  NetError err;
  return netio::retry_with_backoff(
      params_.retry, "observer",
      [&](NetError* e) {
        if (observer_channel_ == nullptr || !observer_channel_->valid()) {
          auto conn = netio::TcpConnection::connect(
              params_.proxy_host, params_.proxy_port,
              params_.deadlines.connect_ms, e);
          if (!conn.has_value()) return false;
          auto channel = std::make_unique<netio::FrameChannel>(
              std::move(*conn), params_.deadlines, params_.max_frame_payload);
          wire::Hello hello;
          hello.client_id = wire::kObserverClientId;
          if (!channel->send_msg(hello, e)) return false;
          auto ack = channel->recv_msg<wire::HelloAck>(e);
          if (!ack.has_value()) return false;
          observer_ack_ = *ack;
          observer_channel_ = std::move(channel);
        }
        wire::HelloAck ack = observer_ack_;
        const bool done = op(*observer_channel_, ack);
        if (!done) {
          // Failed exchange: the pooled socket may be mid-frame or dead —
          // never reuse it. The retry (or the next poll) re-dials.
          observer_channel_->close();
          observer_channel_.reset();
        }
        return done;
      },
      &err);
}

crypto::RsaPublicKey TcpTransport::proxy_public_key() {
  crypto::RsaPublicKey key;
  const bool ok = observer_session(
      [&](netio::FrameChannel&, wire::HelloAck& ack) {
        key.n = crypto::BigUInt::from_bytes(ack.rsa_n);
        key.e = crypto::BigUInt::from_bytes(ack.rsa_e);
        return true;
      });
  BAPS_REQUIRE(ok, "cannot fetch proxy public key");
  return key;
}

ProxyStats TcpTransport::stats() {
  ProxyStats stats;
  const bool ok = observer_session(
      [&](netio::FrameChannel& channel, wire::HelloAck&) {
        NetError err;
        if (!channel.send_msg(wire::StatsRequest{}, &err)) return false;
        const auto response = channel.recv_msg<wire::StatsResponse>(&err);
        if (!response.has_value()) return false;
        stats.proxy_hits = response->proxy_hits;
        stats.peer_hits = response->peer_hits;
        stats.origin_fetches = response->origin_fetches;
        stats.false_forwards = response->false_forwards;
        stats.rejected_index_updates = response->rejected_index_updates;
        return true;
      });
  BAPS_REQUIRE(ok, "cannot fetch proxy stats");
  return stats;
}

std::string TcpTransport::trace_stats(std::uint32_t max_spans) {
  std::string json;
  const bool ok = observer_session(
      [&](netio::FrameChannel& channel, wire::HelloAck&) {
        NetError err;
        wire::TraceStatsRequest request;
        request.max_spans = max_spans;
        if (!channel.send_msg(request, &err)) return false;
        const auto response = channel.recv_msg<wire::TraceStatsResponse>(&err);
        if (!response.has_value()) return false;
        json = std::move(response->json);
        return true;
      });
  BAPS_REQUIRE(ok, "cannot fetch proxy trace stats");
  return json;
}

std::string TcpTransport::time_series(std::uint32_t max_intervals) {
  std::string json;
  const bool ok = observer_session(
      [&](netio::FrameChannel& channel, wire::HelloAck&) {
        NetError err;
        wire::TimeSeriesRequest request;
        request.max_intervals = max_intervals;
        if (!channel.send_msg(request, &err)) return false;
        const auto response = channel.recv_msg<wire::TimeSeriesResponse>(&err);
        if (!response.has_value()) return false;
        json = std::move(response->json);
        return true;
      });
  BAPS_REQUIRE(ok, "cannot fetch proxy time series");
  return json;
}

}  // namespace baps::runtime
