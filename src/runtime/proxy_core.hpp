// The proxy side of the BAPS protocol, independent of any transport: the
// proxy cache, the browser index, the origin connection, the watermark key
// pair (§6.1), and HMAC-authenticated index maintenance. BapsSystem embeds
// one behind the in-process loopback transport; ProxyServer serves the same
// core over TCP. Behaviour here is the single source of truth — both
// transports produce identical FetchOutcome streams because they dispatch
// into the same code.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "index/browser_index.hpp"
#include "obs/span.hpp"
#include "runtime/doc_store.hpp"
#include "runtime/origin.hpp"
#include "runtime/types.hpp"
#include "store/tiered_store.hpp"

namespace baps::runtime {

/// Proxy-side protocol counters, snapshot-able over any transport.
struct ProxyStats {
  std::uint64_t proxy_hits = 0;
  std::uint64_t peer_hits = 0;
  std::uint64_t origin_fetches = 0;
  std::uint64_t false_forwards = 0;
  std::uint64_t rejected_index_updates = 0;
};

class ProxyCore {
 public:
  struct Params {
    std::uint32_t num_clients = 4;
    std::uint64_t proxy_cache_bytes = 256 << 10;
    std::uint64_t seed = 7;
    std::size_t rsa_modulus_bits = 256;
    /// Durable second cache tier. store.dir empty (the default) keeps the
    /// proxy RAM-only with behaviour and metrics bit-identical to a build
    /// without the tier.
    store::DiskStoreConfig store;
  };

  struct Reply {
    Document doc;
    FetchOutcome::Source source = FetchOutcome::Source::kOrigin;
    bool false_forward = false;  ///< a stale index entry was hit on the way
  };

  /// Reaches a holder's browser store. Returning nullopt means the holder
  /// did not serve the document — stale entry, dead peer, or timeout; the
  /// proxy treats all of them as a false forward and recovers from origin.
  /// `trace` is the peer_transfer span's context: the TCP path embeds it in
  /// the PeerFetch frame so the holder's spans stitch into the trace. Note
  /// the context carries span ids only — never the requester (§6.2).
  using PeerFetchFn = std::function<std::optional<Document>(
      ClientId holder, DocStore::Key key, const obs::TraceContext& trace)>;

  explicit ProxyCore(const Params& params);

  /// How peer fetches reach holders (in-process call or TCP connection).
  void set_peer_fetch(PeerFetchFn fn) { peer_fetch_ = std::move(fn); }
  /// Mirrors proxy-side envelopes into `trace` (nullptr detaches; not owned).
  void set_trace(MessageTrace* trace) { trace_ = trace; }
  /// Records per-stage spans (cache_probe, index_lookup, peer_transfer,
  /// origin_fetch) for sampled requests (nullptr detaches; not owned).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Proxy-side request handling; avoid_peers=true skips the index (the
  /// requester's retry path after a failed watermark, §6.1). `trace` is the
  /// requesting span's context; stage spans attach under it when sampled.
  Reply handle_fetch(ClientId requester, const Url& url, bool avoid_peers,
                     const obs::TraceContext& trace = {});

  /// Applies an index update iff the MAC verifies under the claimed
  /// sender's key.
  bool apply_index_update(ClientId claimed_sender, bool is_add,
                          DocStore::Key key, const crypto::Md5Digest& mac);

  /// MAC the proxy expects over an index update:
  /// HMAC(key_of(sender), op | sender | url key).
  crypto::Md5Digest index_update_mac(ClientId sender, bool is_add,
                                     DocStore::Key key) const;

  /// Robustness policy: when a peer fetch fails, drop ALL of the holder's
  /// index entries rather than just the failed one — a dead peer costs one
  /// false forward instead of one per stale entry.
  void set_drop_failed_holders(bool on) { drop_failed_holders_ = on; }

  /// Simulates a proxy crash/restart: the RAM cache and browser index are
  /// lost (the RSA watermark keys and client MAC keys persist — they are
  /// provisioned state, not runtime state). With a disk tier configured the
  /// store reopens and rebuilds its index from the segment files, so the
  /// restarted proxy warm-starts instead of going back to the origin for
  /// everything. Callers rebuild the browser index by replaying the clients'
  /// holdings.
  void restart();

  std::uint32_t num_clients() const {
    return static_cast<std::uint32_t>(mac_keys_.size());
  }
  OriginServer& origin() { return origin_; }
  /// The proxy's two-tier object store (RAM DocStore + optional disk tier).
  store::TieredObjectStore& object_store() { return proxy_cache_; }
  const store::TieredObjectStore& object_store() const { return proxy_cache_; }
  const index::BrowserIndex& index() const { return index_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.pub; }
  const crypto::RsaPrivateKey& private_key() const { return keys_.priv; }
  const ProxyStats& stats() const { return stats_; }

 private:
  void record(MsgKind kind, std::string from, std::string to,
              DocStore::Key key);

  /// Registry mirrors of the ProxyStats protocol counters, resolved once at
  /// construction so the per-request cost is one relaxed atomic increment.
  /// These are what makes the live time-series useful: request rate, hit
  /// ratio, and false-forward rate become per-interval deltas instead of
  /// being visible only through the one-shot StatsRequest frame.
  struct RequestCounters {
    obs::Counter& requests;
    obs::Counter& served_proxy;
    obs::Counter& served_peer;
    obs::Counter& served_origin;
    obs::Counter& false_forwards;
    RequestCounters();
  };

  OriginServer origin_;
  crypto::RsaKeyPair keys_;
  store::TieredObjectStore proxy_cache_;
  index::BrowserIndex index_;
  std::vector<std::string> mac_keys_;
  PeerFetchFn peer_fetch_;
  MessageTrace* trace_ = nullptr;   ///< optional, not owned
  obs::Tracer* tracer_ = nullptr;   ///< optional, not owned
  ProxyStats stats_;
  RequestCounters counters_;
  bool drop_failed_holders_ = false;
};

}  // namespace baps::runtime
