// Byte-capacity LRU store of actual document bodies (+ watermarks) for the
// runtime protocol engine. Wraps cache::ObjectCache for the eviction
// machinery and keeps the payloads alongside.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/object_cache.hpp"
#include "crypto/watermark.hpp"

namespace baps::runtime {

/// A document as it travels through the system: body plus the proxy-issued
/// integrity watermark (§6.1).
struct Document {
  std::string body;
  crypto::Watermark mark;
};

class DocStore {
 public:
  using Key = std::uint64_t;  ///< URL-digest prefix (see runtime/types.hpp)
  /// Receives the evicted document while it is still intact — the disk tier
  /// demotes the body instead of letting it vanish.
  using EvictionListener = std::function<void(Key, const Document&)>;

  explicit DocStore(std::uint64_t capacity_bytes);

  bool contains(Key key) const { return docs_.contains(key); }
  std::size_t count() const { return docs_.size(); }
  std::uint64_t used_bytes() const { return cache_.used_bytes(); }

  /// LRU-touching fetch.
  std::optional<Document> get(Key key);

  /// Inserts or replaces; returns false if the body exceeds capacity.
  bool put(Key key, Document doc);

  bool erase(Key key);

  /// Every stored key, sorted (the map iterates in hash order; callers that
  /// replay the contents need a deterministic order).
  std::vector<Key> keys() const;

  /// Drops everything WITHOUT firing the eviction listener — models a crash
  /// or departure, where no invalidation messages go out.
  void clear();

  /// Fired for capacity evictions only (mirrors ObjectCache semantics).
  void set_eviction_listener(EvictionListener listener);

  /// Test hook: mutate a stored body in place (models a tampering client).
  bool corrupt(Key key);

 private:
  cache::ObjectCache cache_;
  std::unordered_map<Key, Document> docs_;
  EvictionListener on_evict_;
};

}  // namespace baps::runtime
