#include "runtime/system.hpp"

#include "util/assert.hpp"

namespace baps::runtime {

std::string msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kClientRequest: return "client-request";
    case MsgKind::kProxyResponse: return "proxy-response";
    case MsgKind::kPeerFetch: return "peer-fetch";
    case MsgKind::kPeerDeliver: return "peer-deliver";
    case MsgKind::kOriginFetch: return "origin-fetch";
    case MsgKind::kOriginResponse: return "origin-response";
    case MsgKind::kIndexAdd: return "index-add";
    case MsgKind::kIndexRemove: return "index-remove";
  }
  BAPS_REQUIRE(false, "unknown message kind");
  return {};
}

std::string source_name(FetchOutcome::Source source) {
  switch (source) {
    case FetchOutcome::Source::kLocalBrowser: return "local-browser";
    case FetchOutcome::Source::kProxy: return "proxy-cache";
    case FetchOutcome::Source::kRemoteBrowser: return "remote-browser";
    case FetchOutcome::Source::kOrigin: return "origin-server";
  }
  BAPS_REQUIRE(false, "unknown source");
  return {};
}

BapsSystem::BapsSystem(const Params& params)
    : params_(params),
      loopback_(std::make_unique<LoopbackTransport>(ProxyCore::Params{
          params.num_clients, params.proxy_cache_bytes, params.seed,
          params.rsa_modulus_bits})),
      transport_(loopback_.get()) {
  init_clients();
  transport_->bind_peer_host(this);
  // The embedded proxy writes its envelopes into the same trace, so the
  // in-process log interleaves client- and proxy-side messages exactly as
  // the synchronous dispatch produces them.
  loopback_->core().set_trace(&trace_);
  pub_key_ = transport_->proxy_public_key();
}

BapsSystem::BapsSystem(const Params& params, Transport& transport)
    : params_(params), transport_(&transport) {
  init_clients();
  transport_->bind_peer_host(this);
  pub_key_ = transport_->proxy_public_key();
}

BapsSystem::~BapsSystem() = default;

void BapsSystem::init_clients() {
  BAPS_REQUIRE(params_.num_clients > 0, "system needs at least one client");
  clients_.resize(params_.num_clients);
  // Per-client symmetric keys shared with the proxy (key establishment is
  // out of band, as the paper's §6 assumes): both ends derive them from the
  // common seed, so nothing key-shaped ever crosses the transport.
  std::vector<std::string> mac_keys =
      derive_client_mac_keys(params_.seed, params_.num_clients);
  for (ClientId c = 0; c < params_.num_clients; ++c) {
    clients_[c].browser =
        std::make_unique<DocStore>(params_.browser_cache_bytes);
    clients_[c].mac_key = std::move(mac_keys[c]);
    // Browser-cache replacement sends the paper's invalidation message.
    clients_[c].browser->set_eviction_listener([this, c](DocStore::Key key) {
      trace_.record(MsgKind::kIndexRemove, client_name(c), "proxy", key);
      transport_->index_update(c, /*is_add=*/false, key,
                               index_update_mac(c, false, key));
    });
  }
}

crypto::Md5Digest BapsSystem::index_update_mac(ClientId sender, bool is_add,
                                               DocStore::Key key) const {
  std::string msg = is_add ? "add:" : "remove:";
  msg += std::to_string(sender);
  msg += ':';
  msg += std::to_string(key);
  return crypto::hmac_md5(clients_[sender].mac_key, msg);
}

std::optional<Document> BapsSystem::serve_peer_fetch(ClientId holder,
                                                     DocStore::Key key) {
  BAPS_REQUIRE(holder < clients_.size(), "holder id out of range");
  ClientState& peer = clients_[holder];
  if (peer.tampering) peer.browser->corrupt(key);
  return peer.browser->get(key);
}

void BapsSystem::emit_fetch(ClientId client, DocStore::Key key,
                            const FetchOutcome& out, bool false_forward) {
  if (sink_ == nullptr) return;
  sink_->emit(obs::Event("fetch")
                  .with("client", client_name(client))
                  .with("url", key)
                  .with("source", source_name(out.source))
                  .with("verified", out.verified)
                  .with("tamper_recovered", out.tamper_recovered)
                  .with("false_forward", false_forward));
}

void BapsSystem::client_store(ClientId client, const Url& url, Document doc) {
  const DocStore::Key key = url_key(url);
  if (clients_[client].browser->put(key, std::move(doc))) {
    trace_.record(MsgKind::kIndexAdd, client_name(client), "proxy", key);
    transport_->index_update(client, /*is_add=*/true, key,
                             index_update_mac(client, true, key));
  }
}

FetchOutcome BapsSystem::browse(ClientId client, const Url& url) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  const DocStore::Key key = url_key(url);

  // Local browser cache first. A local copy that fails its watermark (e.g.
  // corrupted on disk, or self-tampered) is discarded and refetched rather
  // than served: the client tells the proxy it no longer holds the URL and
  // falls through to the normal request path.
  if (auto doc = clients_[client].browser->get(key)) {
    if (crypto::verify_watermark(doc->body, doc->mark, pub_key_)) {
      ++local_hits_;
      FetchOutcome out;
      out.source = FetchOutcome::Source::kLocalBrowser;
      out.verified = true;
      out.body = std::move(doc->body);
      emit_fetch(client, key, out, /*false_forward=*/false);
      return out;
    }
    ++tamper_detections_;
    clients_[client].browser->erase(key);
    trace_.record(MsgKind::kIndexRemove, client_name(client), "proxy", key);
    transport_->index_update(client, /*is_add=*/false, key,
                             index_update_mac(client, false, key));
  }

  trace_.record(MsgKind::kClientRequest, client_name(client), "proxy", key);
  ProxyCore::Reply reply = transport_->fetch(client, url,
                                             /*avoid_peers=*/false);
  trace_.record(MsgKind::kProxyResponse, "proxy", client_name(client), key);
  bool false_forward = reply.false_forward;

  FetchOutcome out;
  out.source = reply.source;
  out.verified =
      crypto::verify_watermark(reply.doc.body, reply.doc.mark, pub_key_);

  if (!out.verified) {
    // §6.1: a failed watermark means the peer copy was tampered with. The
    // client rejects it and re-requests, bypassing peers; the proxy serves
    // a fresh, correctly watermarked copy from the origin.
    ++tamper_detections_;
    trace_.record(MsgKind::kClientRequest, client_name(client), "proxy", key);
    reply = transport_->fetch(client, url, /*avoid_peers=*/true);
    trace_.record(MsgKind::kProxyResponse, "proxy", client_name(client), key);
    out.source = reply.source;
    out.verified =
        crypto::verify_watermark(reply.doc.body, reply.doc.mark, pub_key_);
    out.tamper_recovered = true;
    BAPS_ENSURE(out.verified, "origin-served document must verify");
    false_forward = false_forward || reply.false_forward;
  }

  out.body = reply.doc.body;
  client_store(client, url, std::move(reply.doc));
  emit_fetch(client, key, out, false_forward);
  return out;
}

OriginServer& BapsSystem::origin() {
  BAPS_REQUIRE(loopback_ != nullptr,
               "origin() is only reachable on the loopback transport");
  return loopback_->core().origin();
}

const index::BrowserIndex& BapsSystem::browser_index() const {
  BAPS_REQUIRE(loopback_ != nullptr,
               "browser_index() is only reachable on the loopback transport");
  return loopback_->core().index();
}

void BapsSystem::set_tampering(ClientId client, bool tampering) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  clients_[client].tampering = tampering;
}

bool BapsSystem::spoof_index_remove(ClientId attacker, ClientId victim,
                                    const Url& url) {
  BAPS_REQUIRE(attacker < clients_.size() && victim < clients_.size(),
               "client id out of range");
  const DocStore::Key key = url_key(url);
  // The attacker claims to be the victim but can only MAC with its own key.
  trace_.record(MsgKind::kIndexRemove, client_name(attacker), "proxy", key);
  return transport_->index_update(victim, /*is_add=*/false, key,
                                  index_update_mac(attacker, false, key));
}

void BapsSystem::drop_silently(ClientId client, const Url& url) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  // Bypass the eviction listener: erase() in DocStore routes through
  // ObjectCache::erase, which never fires the listener — so the proxy's
  // index keeps the stale entry, exactly the failure this hook models.
  clients_[client].browser->erase(url_key(url));
}

bool BapsSystem::client_has(ClientId client, const Url& url) const {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  return clients_[client].browser->contains(url_key(url));
}

}  // namespace baps::runtime
