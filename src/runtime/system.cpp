#include "runtime/system.hpp"

#include <chrono>
#include <thread>

#include "util/assert.hpp"

namespace baps::runtime {

std::string msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kClientRequest: return "client-request";
    case MsgKind::kProxyResponse: return "proxy-response";
    case MsgKind::kPeerFetch: return "peer-fetch";
    case MsgKind::kPeerDeliver: return "peer-deliver";
    case MsgKind::kOriginFetch: return "origin-fetch";
    case MsgKind::kOriginResponse: return "origin-response";
    case MsgKind::kIndexAdd: return "index-add";
    case MsgKind::kIndexRemove: return "index-remove";
  }
  BAPS_REQUIRE(false, "unknown message kind");
  return {};
}

std::string source_name(FetchOutcome::Source source) {
  switch (source) {
    case FetchOutcome::Source::kLocalBrowser: return "local-browser";
    case FetchOutcome::Source::kProxy: return "proxy-cache";
    case FetchOutcome::Source::kRemoteBrowser: return "remote-browser";
    case FetchOutcome::Source::kOrigin: return "origin-server";
  }
  BAPS_REQUIRE(false, "unknown source");
  return {};
}

BapsSystem::BapsSystem(const Params& params)
    : params_(params),
      loopback_(std::make_unique<LoopbackTransport>(ProxyCore::Params{
          params.num_clients, params.proxy_cache_bytes, params.seed,
          params.rsa_modulus_bits, params.store})),
      transport_(loopback_.get()) {
  init_clients();
  transport_->bind_peer_host(this);
  // The embedded proxy writes its envelopes into the same trace, so the
  // in-process log interleaves client- and proxy-side messages exactly as
  // the synchronous dispatch produces them.
  loopback_->core().set_trace(&trace_);
  pub_key_ = transport_->proxy_public_key();
}

BapsSystem::BapsSystem(const Params& params, Transport& transport)
    : params_(params), transport_(&transport) {
  init_clients();
  transport_->bind_peer_host(this);
  pub_key_ = transport_->proxy_public_key();
}

BapsSystem::~BapsSystem() = default;

void BapsSystem::init_clients() {
  BAPS_REQUIRE(params_.num_clients > 0, "system needs at least one client");
  clients_.resize(params_.num_clients);
  // Per-client symmetric keys shared with the proxy (key establishment is
  // out of band, as the paper's §6 assumes): both ends derive them from the
  // common seed, so nothing key-shaped ever crosses the transport.
  std::vector<std::string> mac_keys =
      derive_client_mac_keys(params_.seed, params_.num_clients);
  for (ClientId c = 0; c < params_.num_clients; ++c) {
    clients_[c].browser =
        std::make_unique<DocStore>(params_.browser_cache_bytes);
    clients_[c].mac_key = std::move(mac_keys[c]);
    // Browser-cache replacement sends the paper's invalidation message.
    clients_[c].browser->set_eviction_listener(
        [this, c](DocStore::Key key, const Document&) {
          trace_.record(MsgKind::kIndexRemove, client_name(c), "proxy", key);
          transport_->index_update(c, /*is_add=*/false, key,
                                   index_update_mac(c, false, key));
        });
  }
}

crypto::Md5Digest BapsSystem::index_update_mac(ClientId sender, bool is_add,
                                               DocStore::Key key) const {
  std::string msg = is_add ? "add:" : "remove:";
  msg += std::to_string(sender);
  msg += ':';
  msg += std::to_string(key);
  return crypto::hmac_md5(clients_[sender].mac_key, msg);
}

std::optional<Document> BapsSystem::serve_peer_fetch(ClientId holder,
                                                     DocStore::Key key) {
  BAPS_REQUIRE(holder < clients_.size(), "holder id out of range");
  ClientState& peer = clients_[holder];
  // A departed peer serves nothing: the proxy's entry for it is stale and
  // this fetch becomes a false forward recovered from the origin.
  if (peer.departed) return std::nullopt;
  if (plan_ != nullptr) {
    if (plan_->should_inject(fault::FaultKind::kPeerDisconnect)) {
      return std::nullopt;  // vanished mid-transfer: no delivery
    }
    if (plan_->should_inject(fault::FaultKind::kSlowPeer)) {
      const fault::FaultRates& rates = plan_->rates();
      if (loopback_ != nullptr) {
        // Loopback time is virtual: a delay above the proxy's peer-read
        // budget counts as an undelivered fetch, anything under it is
        // tolerated (just recorded).
        if (rates.slow_peer_budget_ms > 0 &&
            rates.slow_peer_delay_ms > rates.slow_peer_budget_ms) {
          return std::nullopt;
        }
      } else {
        // Over a real transport the delay is real; the proxy's peer read
        // deadline decides whether the delivery still counts.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rates.slow_peer_delay_ms));
      }
    }
  }
  if (peer.tampering) peer.browser->corrupt(key);
  std::optional<Document> doc = peer.browser->get(key);
  if (plan_ != nullptr && loopback_ != nullptr && doc.has_value()) {
    // Frame faults: a real transport injects these on the wire (see
    // TcpTransport); loopback emulates them on the in-flight copy.
    if (plan_->should_inject(fault::FaultKind::kDropFrame)) {
      return std::nullopt;
    }
    if (plan_->should_inject(fault::FaultKind::kCorruptFrame) &&
        !doc->body.empty()) {
      doc->body[0] = static_cast<char>(doc->body[0] ^ 0x20);
    }
  }
  return doc;
}

void BapsSystem::emit_fetch(ClientId client, DocStore::Key key,
                            const FetchOutcome& out, bool false_forward) {
  if (sink_ == nullptr) return;
  sink_->emit(obs::Event("fetch")
                  .with("client", client_name(client))
                  .with("url", key)
                  .with("source", source_name(out.source))
                  .with("verified", out.verified)
                  .with("tamper_recovered", out.tamper_recovered)
                  .with("false_forward", false_forward));
}

void BapsSystem::client_store(ClientId client, const Url& url, Document doc) {
  const DocStore::Key key = url_key(url);
  if (clients_[client].browser->put(key, std::move(doc))) {
    trace_.record(MsgKind::kIndexAdd, client_name(client), "proxy", key);
    transport_->index_update(client, /*is_add=*/true, key,
                             index_update_mac(client, true, key));
  }
}

FetchOutcome BapsSystem::browse(ClientId client, const Url& url) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  const DocStore::Key key = url_key(url);
  // Every browse roots a new trace; the sampler decides per trace id whether
  // anything is recorded. Without a tracer this is a single null check.
  obs::Span root = tracer_ != nullptr
                       ? tracer_->start_root_span(obs::SpanKind::kClientFetch)
                       : obs::Span();
  if (plan_ != nullptr) fault_tick(client);

  // Local browser cache first. A local copy that fails its watermark (e.g.
  // corrupted on disk, or self-tampered) is discarded and refetched rather
  // than served: the client tells the proxy it no longer holds the URL and
  // falls through to the normal request path.
  if (auto doc = clients_[client].browser->get(key)) {
    if (crypto::verify_watermark(doc->body, doc->mark, pub_key_)) {
      ++local_hits_;
      FetchOutcome out;
      out.source = FetchOutcome::Source::kLocalBrowser;
      out.verified = true;
      out.body = std::move(doc->body);
      emit_fetch(client, key, out, /*false_forward=*/false);
      if (plan_ != nullptr) plan_->end_request_ok();
      return out;
    }
    ++tamper_detections_;
    clients_[client].browser->erase(key);
    trace_.record(MsgKind::kIndexRemove, client_name(client), "proxy", key);
    transport_->index_update(client, /*is_add=*/false, key,
                             index_update_mac(client, false, key));
  }

  trace_.record(MsgKind::kClientRequest, client_name(client), "proxy", key);
  ProxyCore::Reply reply = transport_->fetch(client, url,
                                             /*avoid_peers=*/false,
                                             root.context());
  trace_.record(MsgKind::kProxyResponse, "proxy", client_name(client), key);
  bool false_forward = reply.false_forward;

  FetchOutcome out;
  out.source = reply.source;
  out.verified =
      crypto::verify_watermark(reply.doc.body, reply.doc.mark, pub_key_);

  if (!out.verified) {
    // §6.1: a failed watermark means the peer copy was tampered with. The
    // client rejects it and re-requests, bypassing peers; the proxy serves
    // a fresh, correctly watermarked copy from the origin.
    ++tamper_detections_;
    trace_.record(MsgKind::kClientRequest, client_name(client), "proxy", key);
    reply = transport_->fetch(client, url, /*avoid_peers=*/true,
                              root.context());
    trace_.record(MsgKind::kProxyResponse, "proxy", client_name(client), key);
    out.source = reply.source;
    out.verified =
        crypto::verify_watermark(reply.doc.body, reply.doc.mark, pub_key_);
    out.tamper_recovered = true;
    BAPS_ENSURE(out.verified, "origin-served document must verify");
    false_forward = false_forward || reply.false_forward;
  }

  out.body = reply.doc.body;
  client_store(client, url, std::move(reply.doc));
  emit_fetch(client, key, out, false_forward);
  // The request was served with verified content (the BAPS_ENSURE above
  // guarantees it on the retry path): every fault injected in its window
  // was absorbed.
  if (plan_ != nullptr) plan_->end_request_ok();
  return out;
}

OriginServer& BapsSystem::origin() {
  BAPS_REQUIRE(loopback_ != nullptr,
               "origin() is only reachable on the loopback transport");
  return loopback_->core().origin();
}

const index::BrowserIndex& BapsSystem::browser_index() const {
  BAPS_REQUIRE(loopback_ != nullptr,
               "browser_index() is only reachable on the loopback transport");
  return loopback_->core().index();
}

void BapsSystem::attach_fault_plan(fault::FaultPlan* plan) {
  plan_ = plan;
  transport_->set_fault_plan(plan);
  if (loopback_ != nullptr) {
    loopback_->core().set_drop_failed_holders(plan != nullptr &&
                                              plan->rates().drop_failed_holders);
  }
}

void BapsSystem::fault_tick(ClientId requester) {
  plan_->begin_request();
  // A request from a departed client is that client coming back online;
  // membership repair, not an injection.
  if (clients_[requester].departed) rejoin_client(requester);
  if (loopback_ != nullptr &&
      plan_->should_inject(fault::FaultKind::kProxyRestart)) {
    restart_proxy();
  }
  if (plan_->decide(fault::FaultKind::kPeerDepart)) {
    std::vector<ClientId> candidates;
    for (ClientId c = 0; c < params_.num_clients; ++c) {
      if (c != requester && !clients_[c].departed) candidates.push_back(c);
    }
    if (!candidates.empty()) {
      plan_->note_injected(fault::FaultKind::kPeerDepart);
      const ClientId victim = candidates[plan_->pick(
          fault::FaultKind::kPeerDepart,
          static_cast<std::uint32_t>(candidates.size()))];
      depart_client(victim, plan_->rates().polite_departures);
    }
  }
  if (plan_->decide(fault::FaultKind::kPeerJoin)) {
    std::vector<ClientId> candidates;
    for (ClientId c = 0; c < params_.num_clients; ++c) {
      if (clients_[c].departed) candidates.push_back(c);
    }
    if (!candidates.empty()) {
      plan_->note_injected(fault::FaultKind::kPeerJoin);
      rejoin_client(candidates[plan_->pick(
          fault::FaultKind::kPeerJoin,
          static_cast<std::uint32_t>(candidates.size()))]);
    }
  }
}

void BapsSystem::depart_client(ClientId client, bool polite) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  ClientState& state = clients_[client];
  BAPS_REQUIRE(!state.departed, "client is already departed");
  if (polite) {
    // Clean shutdown: the browser tells the proxy about every copy it is
    // about to lose, so no stale entries remain.
    for (const DocStore::Key key : state.browser->keys()) {
      trace_.record(MsgKind::kIndexRemove, client_name(client), "proxy", key);
      transport_->index_update(client, /*is_add=*/false, key,
                               index_update_mac(client, false, key));
    }
  }
  // Crash semantics otherwise: the cache empties with no invalidations, and
  // the proxy's entries for this client go stale (§5).
  state.browser->clear();
  state.departed = true;
}

void BapsSystem::rejoin_client(ClientId client) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  BAPS_REQUIRE(clients_[client].departed, "client is not departed");
  clients_[client].departed = false;  // cold cache: cleared on departure
}

bool BapsSystem::client_departed(ClientId client) const {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  return clients_[client].departed;
}

void BapsSystem::restart_proxy() {
  BAPS_REQUIRE(loopback_ != nullptr,
               "restart_proxy() is only reachable on the loopback transport");
  loopback_->core().restart();
  // Index rebuild: every present client re-announces its actual holdings
  // (sorted keys — deterministic rebuild order).
  for (ClientId c = 0; c < params_.num_clients; ++c) {
    if (clients_[c].departed) continue;
    for (const DocStore::Key key : clients_[c].browser->keys()) {
      trace_.record(MsgKind::kIndexAdd, client_name(c), "proxy", key);
      transport_->index_update(c, /*is_add=*/true, key,
                               index_update_mac(c, true, key));
    }
  }
}

void BapsSystem::set_tampering(ClientId client, bool tampering) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  clients_[client].tampering = tampering;
}

bool BapsSystem::spoof_index_remove(ClientId attacker, ClientId victim,
                                    const Url& url) {
  BAPS_REQUIRE(attacker < clients_.size() && victim < clients_.size(),
               "client id out of range");
  const DocStore::Key key = url_key(url);
  // The attacker claims to be the victim but can only MAC with its own key.
  trace_.record(MsgKind::kIndexRemove, client_name(attacker), "proxy", key);
  return transport_->index_update(victim, /*is_add=*/false, key,
                                  index_update_mac(attacker, false, key));
}

void BapsSystem::drop_silently(ClientId client, const Url& url) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  // Bypass the eviction listener: erase() in DocStore routes through
  // ObjectCache::erase, which never fires the listener — so the proxy's
  // index keeps the stale entry, exactly the failure this hook models.
  clients_[client].browser->erase(url_key(url));
}

bool BapsSystem::client_has(ClientId client, const Url& url) const {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  return clients_[client].browser->contains(url_key(url));
}

}  // namespace baps::runtime
