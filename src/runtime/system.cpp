#include "runtime/system.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::runtime {

std::string msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kClientRequest: return "client-request";
    case MsgKind::kProxyResponse: return "proxy-response";
    case MsgKind::kPeerFetch: return "peer-fetch";
    case MsgKind::kPeerDeliver: return "peer-deliver";
    case MsgKind::kOriginFetch: return "origin-fetch";
    case MsgKind::kOriginResponse: return "origin-response";
    case MsgKind::kIndexAdd: return "index-add";
    case MsgKind::kIndexRemove: return "index-remove";
  }
  BAPS_REQUIRE(false, "unknown message kind");
  return {};
}

std::string source_name(FetchOutcome::Source source) {
  switch (source) {
    case FetchOutcome::Source::kLocalBrowser: return "local-browser";
    case FetchOutcome::Source::kProxy: return "proxy-cache";
    case FetchOutcome::Source::kRemoteBrowser: return "remote-browser";
    case FetchOutcome::Source::kOrigin: return "origin-server";
  }
  BAPS_REQUIRE(false, "unknown source");
  return {};
}

BapsSystem::BapsSystem(const Params& params)
    : params_(params),
      origin_(params.seed),
      keys_(crypto::generate_rsa_keypair(params.rsa_modulus_bits,
                                         params.seed ^ 0x4B455953454544ULL)),
      proxy_cache_(params.proxy_cache_bytes),
      index_(params.num_clients) {
  BAPS_REQUIRE(params.num_clients > 0, "system needs at least one client");
  clients_.resize(params.num_clients);
  baps::SplitMix64 key_mixer(params.seed ^ 0x4D41434B4559ULL);
  for (ClientId c = 0; c < params.num_clients; ++c) {
    clients_[c].browser =
        std::make_unique<DocStore>(params.browser_cache_bytes);
    // Per-client symmetric key shared with the proxy (key establishment is
    // out of band, as the paper's §6 assumes).
    clients_[c].mac_key = "k" + std::to_string(key_mixer.next());
    // Browser-cache replacement sends the paper's invalidation message.
    clients_[c].browser->set_eviction_listener([this, c](DocStore::Key key) {
      trace_.record(MsgKind::kIndexRemove, client_name(c), "proxy", key);
      proxy_apply_index_update(c, /*is_add=*/false, key,
                               index_update_mac(c, false, key));
    });
  }
}

crypto::Md5Digest BapsSystem::index_update_mac(ClientId sender, bool is_add,
                                               DocStore::Key key) const {
  std::string msg = is_add ? "add:" : "remove:";
  msg += std::to_string(sender);
  msg += ':';
  msg += std::to_string(key);
  return crypto::hmac_md5(clients_[sender].mac_key, msg);
}

bool BapsSystem::proxy_apply_index_update(ClientId claimed_sender,
                                          bool is_add, DocStore::Key key,
                                          const crypto::Md5Digest& mac) {
  // The proxy recomputes the MAC under the claimed sender's key: only the
  // real owner of that key can mutate its own index entries.
  if (!crypto::digest_equal(mac,
                            index_update_mac(claimed_sender, is_add, key))) {
    ++rejected_index_updates_;
    return false;
  }
  if (is_add) {
    index_.add(claimed_sender, key);
  } else {
    index_.remove(claimed_sender, key);
  }
  return true;
}

std::string BapsSystem::client_name(ClientId c) const {
  return "client" + std::to_string(c);
}

void BapsSystem::emit_fetch(ClientId client, DocStore::Key key,
                            const FetchOutcome& out, bool false_forward) {
  if (sink_ == nullptr) return;
  sink_->emit(obs::Event("fetch")
                  .with("client", client_name(client))
                  .with("url", key)
                  .with("source", source_name(out.source))
                  .with("verified", out.verified)
                  .with("tamper_recovered", out.tamper_recovered)
                  .with("false_forward", false_forward));
}

void BapsSystem::client_store(ClientId client, const Url& url, Document doc) {
  const DocStore::Key key = url_key(url);
  if (clients_[client].browser->put(key, std::move(doc))) {
    trace_.record(MsgKind::kIndexAdd, client_name(client), "proxy", key);
    proxy_apply_index_update(client, /*is_add=*/true, key,
                             index_update_mac(client, true, key));
  }
}

BapsSystem::ProxyReply BapsSystem::proxy_handle(ClientId requester,
                                                const Url& url,
                                                bool avoid_peers) {
  const DocStore::Key key = url_key(url);
  bool false_forward = false;

  // 1. The proxy's own cache.
  if (auto doc = proxy_cache_.get(key)) {
    ++proxy_hits_;
    return {std::move(*doc), FetchOutcome::Source::kProxy, false};
  }

  // 2. The browser index. The peer-fetch message deliberately carries only
  //    the document key: the holder never learns who asked (§6.2).
  if (!avoid_peers) {
    if (const auto holder = index_.find_holder(key, requester)) {
      trace_.record(MsgKind::kPeerFetch, "proxy", client_name(*holder), key);
      ClientState& peer = clients_[*holder];
      if (peer.tampering) peer.browser->corrupt(key);
      if (auto doc = peer.browser->get(key)) {
        trace_.record(MsgKind::kPeerDeliver, client_name(*holder), "proxy",
                      key);
        ++peer_hits_;
        return {std::move(*doc), FetchOutcome::Source::kRemoteBrowser, false};
      }
      // Stale index entry: the peer no longer holds the document.
      ++false_forwards_;
      false_forward = true;
      index_.remove(*holder, key);
    }
  }

  // 3. The origin server. The proxy issues the watermark here — the only
  //    place documents enter the system (§6.1).
  trace_.record(MsgKind::kOriginFetch, "proxy", "origin", key);
  std::string body = origin_.fetch(url);
  trace_.record(MsgKind::kOriginResponse, "origin", "proxy", key);
  ++origin_fetches_;
  Document doc{std::move(body), crypto::Watermark{}};
  doc.mark = crypto::issue_watermark(doc.body, keys_.priv);
  proxy_cache_.put(key, doc);
  return {std::move(doc), FetchOutcome::Source::kOrigin, false_forward};
}

FetchOutcome BapsSystem::browse(ClientId client, const Url& url) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  const DocStore::Key key = url_key(url);

  // Local browser cache first. A local copy that fails its watermark (e.g.
  // corrupted on disk, or self-tampered) is discarded and refetched rather
  // than served: the client tells the proxy it no longer holds the URL and
  // falls through to the normal request path.
  if (auto doc = clients_[client].browser->get(key)) {
    if (crypto::verify_watermark(doc->body, doc->mark, keys_.pub)) {
      ++local_hits_;
      FetchOutcome out;
      out.source = FetchOutcome::Source::kLocalBrowser;
      out.verified = true;
      out.body = std::move(doc->body);
      emit_fetch(client, key, out, /*false_forward=*/false);
      return out;
    }
    ++tamper_detections_;
    clients_[client].browser->erase(key);
    trace_.record(MsgKind::kIndexRemove, client_name(client), "proxy", key);
    proxy_apply_index_update(client, /*is_add=*/false, key,
                             index_update_mac(client, false, key));
  }

  trace_.record(MsgKind::kClientRequest, client_name(client), "proxy", key);
  ProxyReply reply = proxy_handle(client, url, /*avoid_peers=*/false);
  trace_.record(MsgKind::kProxyResponse, "proxy", client_name(client), key);
  bool false_forward = reply.false_forward;

  FetchOutcome out;
  out.source = reply.source;
  out.verified =
      crypto::verify_watermark(reply.doc.body, reply.doc.mark, keys_.pub);

  if (!out.verified) {
    // §6.1: a failed watermark means the peer copy was tampered with. The
    // client rejects it and re-requests, bypassing peers; the proxy serves
    // a fresh, correctly watermarked copy from the origin.
    ++tamper_detections_;
    trace_.record(MsgKind::kClientRequest, client_name(client), "proxy", key);
    reply = proxy_handle(client, url, /*avoid_peers=*/true);
    trace_.record(MsgKind::kProxyResponse, "proxy", client_name(client), key);
    out.source = reply.source;
    out.verified =
        crypto::verify_watermark(reply.doc.body, reply.doc.mark, keys_.pub);
    out.tamper_recovered = true;
    BAPS_ENSURE(out.verified, "origin-served document must verify");
    false_forward = false_forward || reply.false_forward;
  }

  out.body = reply.doc.body;
  client_store(client, url, std::move(reply.doc));
  emit_fetch(client, key, out, false_forward);
  return out;
}

void BapsSystem::set_tampering(ClientId client, bool tampering) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  clients_[client].tampering = tampering;
}

bool BapsSystem::spoof_index_remove(ClientId attacker, ClientId victim,
                                    const Url& url) {
  BAPS_REQUIRE(attacker < clients_.size() && victim < clients_.size(),
               "client id out of range");
  const DocStore::Key key = url_key(url);
  // The attacker claims to be the victim but can only MAC with its own key.
  trace_.record(MsgKind::kIndexRemove, client_name(attacker), "proxy", key);
  return proxy_apply_index_update(victim, /*is_add=*/false, key,
                                  index_update_mac(attacker, false, key));
}

void BapsSystem::drop_silently(ClientId client, const Url& url) {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  // Bypass the eviction listener: erase() in DocStore routes through
  // ObjectCache::erase, which never fires the listener — so the proxy's
  // index keeps the stale entry, exactly the failure this hook models.
  clients_[client].browser->erase(url_key(url));
}

bool BapsSystem::client_has(ClientId client, const Url& url) const {
  BAPS_REQUIRE(client < clients_.size(), "client id out of range");
  return clients_[client].browser->contains(url_key(url));
}

}  // namespace baps::runtime
