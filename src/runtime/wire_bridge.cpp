#include "runtime/wire_bridge.hpp"

#include <span>

#include "util/assert.hpp"

namespace baps::runtime {

wire::WireSource to_wire_source(FetchOutcome::Source source) {
  switch (source) {
    case FetchOutcome::Source::kProxy: return wire::WireSource::kProxy;
    case FetchOutcome::Source::kRemoteBrowser:
      return wire::WireSource::kRemoteBrowser;
    case FetchOutcome::Source::kOrigin: return wire::WireSource::kOrigin;
    case FetchOutcome::Source::kLocalBrowser: break;
  }
  BAPS_REQUIRE(false, "local-browser hits never cross the wire");
  return wire::WireSource::kOrigin;
}

FetchOutcome::Source from_wire_source(wire::WireSource source) {
  switch (source) {
    case wire::WireSource::kProxy: return FetchOutcome::Source::kProxy;
    case wire::WireSource::kRemoteBrowser:
      return FetchOutcome::Source::kRemoteBrowser;
    case wire::WireSource::kOrigin: return FetchOutcome::Source::kOrigin;
  }
  BAPS_REQUIRE(false, "invalid wire source");
  return FetchOutcome::Source::kOrigin;
}

std::vector<std::uint8_t> watermark_to_bytes(const crypto::Watermark& mark) {
  return mark.signature.to_bytes();
}

crypto::Watermark watermark_from_bytes(
    const std::vector<std::uint8_t>& bytes) {
  return crypto::Watermark{
      crypto::BigUInt::from_bytes(std::span<const std::uint8_t>(bytes))};
}

}  // namespace baps::runtime
