// Simulated origin web server: deterministic bodies per URL, with explicit
// mutation (publishing a new version) for staleness scenarios.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "runtime/types.hpp"

namespace baps::runtime {

class OriginServer {
 public:
  explicit OriginServer(std::uint64_t seed = 1) : seed_(seed) {}

  /// Current body of a URL. Deterministic in (url, version, seed).
  std::string fetch(const Url& url) const;

  /// Publishes a new version of the document (its body changes).
  void mutate(const Url& url);

  std::uint64_t fetch_count() const { return fetches_; }

 private:
  std::uint64_t seed_;
  std::unordered_map<std::uint64_t, std::uint32_t> versions_;
  mutable std::uint64_t fetches_ = 0;
};

}  // namespace baps::runtime
