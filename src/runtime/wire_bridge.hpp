// Conversions between runtime protocol types and their wire shapes: document
// sources, watermark signatures (big-endian magnitude bytes), and index-update
// MACs. Both TCP endpoints funnel through these, so a document that
// round-trips the wire verifies against the exact same watermark bytes the
// proxy issued.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/md5.hpp"
#include "crypto/watermark.hpp"
#include "runtime/doc_store.hpp"
#include "runtime/types.hpp"
#include "wire/messages.hpp"

namespace baps::runtime {

/// FetchOutcome::Source → wire (kLocalBrowser never crosses the wire).
wire::WireSource to_wire_source(FetchOutcome::Source source);
FetchOutcome::Source from_wire_source(wire::WireSource source);

std::vector<std::uint8_t> watermark_to_bytes(const crypto::Watermark& mark);
crypto::Watermark watermark_from_bytes(const std::vector<std::uint8_t>& bytes);

inline std::array<std::uint8_t, 16> mac_to_wire(const crypto::Md5Digest& mac) {
  return mac.bytes;
}
inline crypto::Md5Digest mac_from_wire(const std::array<std::uint8_t, 16>& w) {
  crypto::Md5Digest d;
  d.bytes = w;
  return d;
}

}  // namespace baps::runtime
