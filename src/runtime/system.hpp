// The runtime BAPS protocol engine: an in-process implementation of the full
// browsers-aware proxy protocol — clients with real browser caches, a proxy
// with a cache + browser index, an origin server, integrity watermarks
// (§6.1), and the anonymizing relay (§6.2).
//
// Message passing is synchronous in-process dispatch; every message's
// envelope (kind, from, to, url digest) is recorded in a MessageTrace so
// tests can audit exactly what each party could observe. The §6.2 property
// holds by construction — a kPeerFetch carries no requester identity and a
// requester only ever talks to the proxy — and the tests verify it against
// the recorded traffic.
//
// The paper's decentralized anonymity protocols (its reference [17],
// HPL-2001-204) are out of scope; the proxy-relay mode implemented here is
// the variant the paper itself specifies in §6.2.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "index/browser_index.hpp"
#include "runtime/doc_store.hpp"
#include "runtime/origin.hpp"
#include "runtime/types.hpp"

namespace baps::runtime {

using trace::ClientId;

struct FetchOutcome {
  enum class Source { kLocalBrowser, kProxy, kRemoteBrowser, kOrigin };
  Source source = Source::kOrigin;
  bool verified = false;         ///< watermark check passed at the requester
  bool tamper_recovered = false; ///< a peer delivery failed verification and
                                 ///< the request was re-served from origin
  std::string body;
};

std::string source_name(FetchOutcome::Source source);

class BapsSystem {
 public:
  struct Params {
    std::uint32_t num_clients = 4;
    std::uint64_t proxy_cache_bytes = 256 << 10;
    std::uint64_t browser_cache_bytes = 64 << 10;
    std::uint64_t seed = 7;
    std::size_t rsa_modulus_bits = 256;
  };

  explicit BapsSystem(const Params& params);

  /// A full client-side page fetch, end to end.
  FetchOutcome browse(ClientId client, const Url& url);

  // --- observability ------------------------------------------------------
  OriginServer& origin() { return origin_; }
  const MessageTrace& messages() const { return trace_; }
  MessageTrace& messages() { return trace_; }

  /// Streams structured events to `sink` (nullptr detaches; not owned):
  /// one "fetch" event per browse() with the outcome (source, verified,
  /// tamper_recovered, false_forward), plus a "message" event per protocol
  /// envelope, mirroring the MessageTrace. The message events carry exactly
  /// the envelope fields — in particular a peer-fetch event names only the
  /// proxy and the holder, never the requester (§6.2), and tests audit the
  /// emitted stream for that.
  void set_event_sink(obs::EventSink* sink) {
    sink_ = sink;
    trace_.set_sink(sink);
  }
  const crypto::RsaPublicKey& proxy_public_key() const { return keys_.pub; }
  const index::BrowserIndex& browser_index() const { return index_; }

  std::uint64_t peer_hits() const { return peer_hits_; }
  std::uint64_t proxy_hits() const { return proxy_hits_; }
  std::uint64_t local_hits() const { return local_hits_; }
  std::uint64_t origin_fetches() const { return origin_fetches_; }
  std::uint64_t false_forwards() const { return false_forwards_; }
  std::uint64_t tamper_detections() const { return tamper_detections_; }

  // --- fault injection ----------------------------------------------------
  /// A tampering client corrupts every document it serves to peers.
  void set_tampering(ClientId client, bool tampering);
  /// Drops a document from a client's browser WITHOUT telling the proxy —
  /// produces a stale index entry (false forward on the next lookup).
  void drop_silently(ClientId client, const Url& url);

  /// Attempts to forge an index-remove for `victim`'s copy of `url`, MACed
  /// with `attacker`'s key. Returns true if the proxy accepted it (it must
  /// not: index updates are HMAC-authenticated per sender). For testing the
  /// authentication path.
  bool spoof_index_remove(ClientId attacker, ClientId victim, const Url& url);

  std::uint64_t rejected_index_updates() const {
    return rejected_index_updates_;
  }

  bool client_has(ClientId client, const Url& url) const;

 private:
  struct ClientState {
    std::unique_ptr<DocStore> browser;
    bool tampering = false;
    /// Symmetric key shared with the proxy; authenticates index updates
    /// (the §6 protocols assume such a per-client shared-key channel).
    std::string mac_key;
  };

  struct ProxyReply {
    Document doc;
    FetchOutcome::Source source;
    bool false_forward = false;  ///< a stale index entry was hit on the way
  };

  std::string client_name(ClientId c) const;
  /// Emits the per-browse "fetch" event (no-op without a sink).
  void emit_fetch(ClientId client, DocStore::Key key, const FetchOutcome& out,
                  bool false_forward);
  /// MAC over an index update: HMAC(key_of(sender), op | sender | url key).
  crypto::Md5Digest index_update_mac(ClientId sender, bool is_add,
                                     DocStore::Key key) const;
  /// Proxy-side handler: applies the update iff the MAC verifies under the
  /// claimed sender's key.
  bool proxy_apply_index_update(ClientId claimed_sender, bool is_add,
                                DocStore::Key key,
                                const crypto::Md5Digest& mac);
  /// Proxy-side request handling; avoid_peers=true skips the index (the
  /// requester's retry path after a failed watermark).
  ProxyReply proxy_handle(ClientId requester, const Url& url,
                          bool avoid_peers);
  void client_store(ClientId client, const Url& url, Document doc);

  Params params_;
  OriginServer origin_;
  crypto::RsaKeyPair keys_;
  DocStore proxy_cache_;
  index::BrowserIndex index_;
  std::vector<ClientState> clients_;
  MessageTrace trace_;
  obs::EventSink* sink_ = nullptr;  ///< optional, not owned

  std::uint64_t peer_hits_ = 0;
  std::uint64_t proxy_hits_ = 0;
  std::uint64_t local_hits_ = 0;
  std::uint64_t origin_fetches_ = 0;
  std::uint64_t false_forwards_ = 0;
  std::uint64_t tamper_detections_ = 0;
  std::uint64_t rejected_index_updates_ = 0;
};

}  // namespace baps::runtime
