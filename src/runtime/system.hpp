// The runtime BAPS protocol engine: the client side of the full
// browsers-aware proxy protocol — clients with real browser caches talking
// to a proxy (cache + browser index + origin + watermark issuance, §6.1)
// through a pluggable Transport.
//
// By default the transport is the in-process loopback: synchronous dispatch
// into an embedded ProxyCore, every message envelope (kind, from, to, url
// digest) recorded in a MessageTrace so tests can audit exactly what each
// party could observe. Constructed with an external Transport (TcpTransport)
// the same client logic runs against a proxy daemon over real sockets and
// produces an identical FetchOutcome stream.
//
// The §6.2 property holds by construction — a peer fetch carries only the
// document key, never the requester — and the tests verify it against both
// the recorded traffic and the raw frames on the wire.
//
// The paper's decentralized anonymity protocols (its reference [17],
// HPL-2001-204) are out of scope; the proxy-relay mode implemented here is
// the variant the paper itself specifies in §6.2.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "fault/fault_plan.hpp"
#include "index/browser_index.hpp"
#include "runtime/doc_store.hpp"
#include "runtime/loopback_transport.hpp"
#include "runtime/origin.hpp"
#include "runtime/transport.hpp"
#include "runtime/types.hpp"
#include "store/disk_store.hpp"

namespace baps::runtime {

class BapsSystem : private PeerHost {
 public:
  struct Params {
    std::uint32_t num_clients = 4;
    std::uint64_t proxy_cache_bytes = 256 << 10;
    std::uint64_t browser_cache_bytes = 64 << 10;
    std::uint64_t seed = 7;
    std::size_t rsa_modulus_bits = 256;
    /// Embedded proxy's durable cache tier (loopback only; dir empty ⇒ off).
    store::DiskStoreConfig store;
  };

  /// Loopback system: embeds the proxy in-process (deterministic, traced).
  explicit BapsSystem(const Params& params);

  /// Runs the same client engine over an external transport (e.g. TCP to a
  /// proxy daemon). `transport` must outlive the system and its proxy end
  /// must be derived from the same seed/params for watermarks and index
  /// MACs to line up.
  BapsSystem(const Params& params, Transport& transport);

  ~BapsSystem() override;

  /// A full client-side page fetch, end to end.
  FetchOutcome browse(ClientId client, const Url& url);

  // --- observability ------------------------------------------------------
  /// Loopback-only: the embedded proxy's origin server.
  OriginServer& origin();
  const MessageTrace& messages() const { return trace_; }
  MessageTrace& messages() { return trace_; }

  /// Streams structured events to `sink` (nullptr detaches; not owned):
  /// one "fetch" event per browse() with the outcome (source, verified,
  /// tamper_recovered, false_forward), plus a "message" event per protocol
  /// envelope, mirroring the MessageTrace. The message events carry exactly
  /// the envelope fields — in particular a peer-fetch event names only the
  /// proxy and the holder, never the requester (§6.2), and tests audit the
  /// emitted stream for that.
  void set_event_sink(obs::EventSink* sink) {
    sink_ = sink;
    trace_.set_sink(sink);
  }

  /// Attaches a tracer (nullptr detaches; not owned, must outlive its use):
  /// every browse() becomes the root client_fetch span of a new trace, and
  /// the context flows through the transport — in-process for loopback, on
  /// the wire for TCP — so proxy- and peer-side spans share its trace_id.
  /// Attach before traffic flows. With no tracer, or a sample rate of 0,
  /// behaviour and metrics are unchanged.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    transport_->set_tracer(tracer);
  }
  const crypto::RsaPublicKey& proxy_public_key() const { return pub_key_; }
  /// Loopback-only: the embedded proxy's browser index.
  const index::BrowserIndex& browser_index() const;

  std::uint64_t peer_hits() const { return transport_->stats().peer_hits; }
  std::uint64_t proxy_hits() const { return transport_->stats().proxy_hits; }
  std::uint64_t local_hits() const { return local_hits_; }
  std::uint64_t origin_fetches() const {
    return transport_->stats().origin_fetches;
  }
  std::uint64_t false_forwards() const {
    return transport_->stats().false_forwards;
  }
  std::uint64_t tamper_detections() const { return tamper_detections_; }

  // --- fault injection ----------------------------------------------------
  /// Attaches a seeded fault plan (nullptr detaches; not owned, must outlive
  /// its use). Once attached, browse() draws churn/restart decisions from it
  /// per request, serve_peer_fetch() injects delivery faults, and the
  /// transport injects frame faults at its own seam. With no plan attached —
  /// or a zero-rate plan — behaviour is unchanged.
  void attach_fault_plan(fault::FaultPlan* plan);

  /// A peer departs: its browser cache empties and (impolite departure) the
  /// proxy keeps believing the stale index entries — the §5 failure shape.
  /// Polite departure sends authenticated index removes first.
  void depart_client(ClientId client, bool polite);
  /// A departed peer rejoins with a cold cache.
  void rejoin_client(ClientId client);
  bool client_departed(ClientId client) const;

  /// Loopback-only: crash-restarts the embedded proxy (cache + index lost)
  /// and rebuilds the index from the present clients' actual holdings.
  void restart_proxy();

  /// A tampering client corrupts every document it serves to peers.
  void set_tampering(ClientId client, bool tampering);
  /// Drops a document from a client's browser WITHOUT telling the proxy —
  /// produces a stale index entry (false forward on the next lookup).
  void drop_silently(ClientId client, const Url& url);

  /// Attempts to forge an index-remove for `victim`'s copy of `url`, MACed
  /// with `attacker`'s key. Returns true if the proxy accepted it (it must
  /// not: index updates are HMAC-authenticated per sender). For testing the
  /// authentication path.
  bool spoof_index_remove(ClientId attacker, ClientId victim, const Url& url);

  std::uint64_t rejected_index_updates() const {
    return transport_->stats().rejected_index_updates;
  }

  bool client_has(ClientId client, const Url& url) const;

 private:
  struct ClientState {
    std::unique_ptr<DocStore> browser;
    bool tampering = false;
    bool departed = false;  ///< a departed peer serves nothing
    /// Symmetric key shared with the proxy; authenticates index updates
    /// (the §6 protocols assume such a per-client shared-key channel).
    std::string mac_key;
  };

  void init_clients();
  /// Per-request fault decisions: churn (depart/join) and proxy restart.
  void fault_tick(ClientId requester);

  // PeerHost: the transport delivers proxy-initiated peer fetches here.
  std::uint32_t num_clients() const override { return params_.num_clients; }
  std::optional<Document> serve_peer_fetch(ClientId holder,
                                           DocStore::Key key) override;

  /// Emits the per-browse "fetch" event (no-op without a sink).
  void emit_fetch(ClientId client, DocStore::Key key, const FetchOutcome& out,
                  bool false_forward);
  /// MAC over an index update: HMAC(key_of(sender), op | sender | url key).
  crypto::Md5Digest index_update_mac(ClientId sender, bool is_add,
                                     DocStore::Key key) const;
  void client_store(ClientId client, const Url& url, Document doc);

  Params params_;
  std::unique_ptr<LoopbackTransport> loopback_;  ///< null with an external
                                                 ///< transport
  Transport* transport_;                         ///< never null; not owned
                                                 ///< when external
  crypto::RsaPublicKey pub_key_;
  std::vector<ClientState> clients_;
  MessageTrace trace_;
  obs::EventSink* sink_ = nullptr;    ///< optional, not owned
  obs::Tracer* tracer_ = nullptr;     ///< optional, not owned

  fault::FaultPlan* plan_ = nullptr;  ///< optional, not owned

  std::uint64_t local_hits_ = 0;
  std::uint64_t tamper_detections_ = 0;
};

}  // namespace baps::runtime
