#include "runtime/onion.hpp"

#include <cstring>

#include "crypto/xtea.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace baps::runtime {
namespace {

constexpr std::uint8_t kMagic[4] = {'O', 'N', 'I', '1'};
constexpr std::uint8_t kTypeRelay = 0;
constexpr std::uint8_t kTypeExit = 1;
constexpr std::size_t kSessionKeyBytes = 16;

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// One encryption layer around `inner` for one relay.
std::vector<std::uint8_t> wrap_layer(const crypto::RsaPublicKey& pub,
                                     std::uint8_t type,
                                     std::optional<ClientId> next,
                                     std::span<const std::uint8_t> inner,
                                     baps::SplitMix64& mixer) {
  BAPS_REQUIRE(pub.n.bit_length() >= 136,
               "relay modulus must exceed the 128-bit session key");
  // Fresh session key and nonce per layer.
  std::array<std::uint8_t, kSessionKeyBytes> key_bytes{};
  for (std::size_t i = 0; i < kSessionKeyBytes; i += 8) {
    const std::uint64_t w = mixer.next();
    for (std::size_t j = 0; j < 8; ++j) {
      key_bytes[i + j] = static_cast<std::uint8_t>(w >> (8 * j));
    }
  }
  const std::uint64_t nonce = mixer.next();

  // Plaintext: magic | type | [next] | inner.
  std::vector<std::uint8_t> plain;
  plain.insert(plain.end(), std::begin(kMagic), std::end(kMagic));
  plain.push_back(type);
  if (type == kTypeRelay) append_u32(plain, *next);
  plain.insert(plain.end(), inner.begin(), inner.end());

  const crypto::XteaKey xkey = crypto::xtea_key_from_bytes(key_bytes);
  const std::vector<std::uint8_t> body =
      crypto::xtea_ctr_crypt(plain, xkey, nonce);

  // Session key travels RSA-encrypted to the relay.
  const crypto::BigUInt m = crypto::BigUInt::from_bytes(key_bytes);
  const std::vector<std::uint8_t> ct =
      crypto::BigUInt::mod_pow(m, pub.e, pub.n).to_bytes();
  BAPS_ENSURE(ct.size() <= 0xFFFF, "rsa ciphertext too large to frame");

  std::vector<std::uint8_t> out;
  append_u16(out, static_cast<std::uint16_t>(ct.size()));
  out.insert(out.end(), ct.begin(), ct.end());
  append_u64(out, nonce);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

std::vector<std::uint8_t> build_onion(const std::vector<RelayKeys>& path,
                                      std::vector<std::uint8_t> payload,
                                      std::uint64_t seed) {
  BAPS_REQUIRE(!path.empty(), "onion path needs at least one relay");
  baps::SplitMix64 mixer(seed ^ 0x04010A);
  // Innermost (exit) layer first, then wrap outward.
  std::vector<std::uint8_t> blob =
      wrap_layer(path.back().pub, kTypeExit, std::nullopt, payload, mixer);
  for (std::size_t i = path.size() - 1; i-- > 0;) {
    blob = wrap_layer(path[i].pub, kTypeRelay, path[i + 1].node, blob, mixer);
  }
  return blob;
}

std::optional<PeeledLayer> peel_onion(std::span<const std::uint8_t> blob,
                                      const crypto::RsaPrivateKey& priv) {
  // Frame: [2B ct_len][ct][8B nonce][body].
  if (blob.size() < 2) return std::nullopt;
  const std::size_t ct_len =
      (static_cast<std::size_t>(blob[0]) << 8) | blob[1];
  if (blob.size() < 2 + ct_len + 8) return std::nullopt;

  const crypto::BigUInt ct =
      crypto::BigUInt::from_bytes(blob.subspan(2, ct_len));
  if (!(ct < priv.n)) return std::nullopt;
  const std::vector<std::uint8_t> key_raw =
      crypto::BigUInt::mod_pow(ct, priv.d, priv.n).to_bytes();
  if (key_raw.size() > kSessionKeyBytes) return std::nullopt;
  // Left-pad to the fixed key width (to_bytes strips leading zeros).
  std::array<std::uint8_t, kSessionKeyBytes> key_bytes{};
  std::memcpy(key_bytes.data() + (kSessionKeyBytes - key_raw.size()),
              key_raw.data(), key_raw.size());

  std::uint64_t nonce = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    nonce = (nonce << 8) | blob[2 + ct_len + i];
  }
  const auto body = blob.subspan(2 + ct_len + 8);
  const crypto::XteaKey xkey = crypto::xtea_key_from_bytes(key_bytes);
  const std::vector<std::uint8_t> plain =
      crypto::xtea_ctr_crypt(body, xkey, nonce);

  // Validate: wrong keys or tampering garble the magic with overwhelming
  // probability, and the relay just drops the message.
  if (plain.size() < sizeof(kMagic) + 1 ||
      std::memcmp(plain.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  const std::uint8_t type = plain[4];
  PeeledLayer out;
  if (type == kTypeRelay) {
    if (plain.size() < 9) return std::nullopt;
    ClientId next = 0;
    for (std::size_t i = 0; i < 4; ++i) next = (next << 8) | plain[5 + i];
    out.next = next;
    out.blob.assign(plain.begin() + 9, plain.end());
  } else if (type == kTypeExit) {
    out.blob.assign(plain.begin() + 5, plain.end());
  } else {
    return std::nullopt;
  }
  return out;
}

}  // namespace baps::runtime
