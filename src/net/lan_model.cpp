#include "net/lan_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace baps::net {

LanModel::LanModel(LanParams params) : params_(params) {
  BAPS_REQUIRE(params_.bandwidth_bps > 0.0, "bandwidth must be positive");
  BAPS_REQUIRE(params_.connection_setup_s >= 0.0,
               "setup time cannot be negative");
}

double LanModel::transfer_time(std::uint64_t bytes) const {
  return params_.connection_setup_s +
         static_cast<double>(bytes) * 8.0 / params_.bandwidth_bps;
}

TransferResult LanModel::transfer(double now, std::uint64_t bytes) {
  const double start = std::max(now, bus_free_at_);
  TransferResult r;
  r.wait_s = start - now;
  r.transfer_s = transfer_time(bytes);
  r.finish_time = start + r.transfer_s;
  bus_free_at_ = r.finish_time;

  ++transfers_;
  bytes_ += bytes;
  total_transfer_s_ += r.transfer_s;
  total_wait_s_ += r.wait_s;
  return r;
}

}  // namespace baps::net
