#include "net/lan_model.hpp"

#include "util/assert.hpp"

namespace baps::net {

LanModel::LanModel(LanParams params) : params_(params) {
  BAPS_REQUIRE(params_.bandwidth_bps > 0.0, "bandwidth must be positive");
  BAPS_REQUIRE(params_.connection_setup_s >= 0.0,
               "setup time cannot be negative");
}

}  // namespace baps::net
