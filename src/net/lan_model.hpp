// Shared-Ethernet LAN model for §5's overhead estimation.
//
// The paper assumes a 10 Mbps Ethernet with 0.1 s connection setup per
// remote-browser transfer, and measures (a) total data-transfer time for
// remote-browser hits and (b) bus-contention time. We model the LAN as a
// single shared bus: a transfer that arrives while the bus is busy waits
// until it frees (that wait is the contention time), then occupies the bus
// for setup + bytes/bandwidth.
#pragma once

#include <algorithm>
#include <cstdint>

namespace baps::net {

struct LanParams {
  double bandwidth_bps = 10e6;      ///< 10 Mbps Ethernet
  double connection_setup_s = 0.1;  ///< per-transfer connection time
};

struct TransferResult {
  double wait_s = 0.0;      ///< contention: time spent waiting for the bus
  double transfer_s = 0.0;  ///< setup + serialization time
  double finish_time = 0.0; ///< absolute completion time
};

class LanModel {
 public:
  explicit LanModel(LanParams params = {});

  /// Serialization + setup time for a payload, ignoring contention.
  /// Inline: runs once per simulated proxy/remote hit from other TUs.
  double transfer_time(std::uint64_t bytes) const {
    return params_.connection_setup_s +
           static_cast<double>(bytes) * 8.0 / params_.bandwidth_bps;
  }

  /// Performs a transfer requested at absolute time `now`; advances the
  /// bus-busy horizon and accumulates totals. `now` values must be
  /// non-decreasing across calls (the simulator replays in trace order).
  TransferResult transfer(double now, std::uint64_t bytes) {
    const double start = std::max(now, bus_free_at_);
    TransferResult r;
    r.wait_s = start - now;
    r.transfer_s = transfer_time(bytes);
    r.finish_time = start + r.transfer_s;
    bus_free_at_ = r.finish_time;

    ++transfers_;
    bytes_ += bytes;
    total_transfer_s_ += r.transfer_s;
    total_wait_s_ += r.wait_s;
    return r;
  }

  std::uint64_t transfer_count() const { return transfers_; }
  std::uint64_t bytes_moved() const { return bytes_; }
  double total_transfer_time() const { return total_transfer_s_; }
  double total_contention_time() const { return total_wait_s_; }

 private:
  LanParams params_;
  double bus_free_at_ = 0.0;
  std::uint64_t transfers_ = 0;
  std::uint64_t bytes_ = 0;
  double total_transfer_s_ = 0.0;
  double total_wait_s_ = 0.0;
};

}  // namespace baps::net
